// Package fibbing is a from-scratch Go reproduction of "Fibbing in
// action: On-demand load-balancing for better video delivery" (Tilmans,
// Vissicchio, Vanbever, Rexford — SIGCOMM 2016 demo), including every
// substrate the demo runs on: a link-state IGP with wire-encoded LSAs and
// reliable flooding, weighted-ECMP FIBs, a fluid data-plane simulator, an
// SNMPv2c monitoring stack, video streaming with QoE accounting, the
// traffic-engineering solvers (min-max LP, weight search, RSVP-TE/CSPF),
// and the Fibbing controller itself.
//
// The implementation lives under internal/; see README.md for the map,
// DESIGN.md for the system inventory, and EXPERIMENTS.md for the
// paper-vs-measured record. The root-level benchmarks (bench_test.go)
// regenerate every figure of the paper:
//
//	go test -bench=. -benchmem .
//
// Runnable entry points:
//
//	go run ./examples/quickstart     # topology -> requirement -> lies
//	go run ./examples/videodelivery  # the paper's Figure 2 timeline
//	go run ./examples/unevenlb       # uneven ECMP ratios on the wire
//	go run ./examples/flashcrowd     # Poisson crowd on a random network
//	go run ./cmd/experiments         # every figure/table, checked
//	go run ./cmd/fibsim              # analytic what-if for any topology
//	go run ./cmd/fibbingd            # live demo daemon with real SNMP/UDP
package fibbing
