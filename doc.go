// Package fibbing is a from-scratch Go reproduction of "Fibbing in
// action: On-demand load-balancing for better video delivery" (Tilmans,
// Vissicchio, Vanbever, Rexford — SIGCOMM 2016 demo), including every
// substrate the demo runs on: a link-state IGP with wire-encoded LSAs and
// reliable flooding, weighted-ECMP FIBs, a fluid data-plane simulator
// whose flows collapse into per-path-class aggregates (100k-viewer crowds
// cost what their distinct paths cost — see README.md, "The traffic
// plane"), an SNMPv2c monitoring stack, video streaming with QoE
// accounting, the traffic-engineering solvers (min-max LP, weight search,
// RSVP-TE/CSPF), and the Fibbing controller itself.
//
// The controller is a policy engine with a pluggable reaction-strategy
// API: a Strategy proposes, a Plan is the typed proposal (per-prefix lie
// sets plus predicted max utilisation), and a southbound.Transaction
// commits the winner all-or-nothing. The Planner fans registered
// strategies out concurrently and scores them; the paper's tiers are the
// stock strategies (local-ecmp, lp-optimal, ksp, withdraw) and custom
// policies register via controller.New(..., WithStrategies(...)). See
// README.md ("The reaction-strategy API").
//
// All traffic magnitudes are bit/s and the planning pipeline is
// scale-invariant: the LP is normalised by te.ProblemScale and every
// solver tolerance is relative, so Mbit/s and 100 Gbit/s versions of
// the same relative problem produce identical plans (README.md, "Units
// & numerics").
//
// The implementation lives under internal/; see README.md for the
// package map and how to run the examples, experiments and benchmarks,
// and docs/ARCHITECTURE.md for how the paper's concepts (fibbing lies,
// augmented topology, min-max LP, the reaction loop) map onto the
// packages and how data flows between them.
// The root-level benchmarks (bench_test.go) regenerate every figure of
// the paper and time the scenario-matrix stress harness:
//
//	go test -bench=. -benchmem .
//
// Runnable entry points:
//
//	go run ./examples/quickstart     # topology -> requirement -> lies
//	go run ./examples/videodelivery  # the paper's Figure 2 timeline
//	go run ./examples/unevenlb       # uneven ECMP ratios on the wire
//	go run ./examples/flashcrowd     # Poisson crowd on a random network
//	go run ./cmd/experiments         # every figure/table, checked
//	go run ./cmd/fibsim              # analytic what-if for any topology
//	go run ./cmd/fibbingd            # live demo daemon with real SNMP/UDP
//	go run ./cmd/fiblab -matrix      # the scenario-matrix stress harness
//	go run ./cmd/fiblab -scale       # large-topology cells with cost telemetry
package fibbing
