// Videodelivery replays the paper's demo (Figure 2): video waves arrive
// at t=0, t=15s and t=35s; the Fibbing controller reacts to SNMP alarms
// by injecting fake nodes. The example runs the timeline twice — with and
// without the controller — and prints the link-throughput series and the
// per-session playback quality, reproducing "smooth with Fibbing,
// stuttering without".
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"fibbing.net/fibbing/internal/controller"
	"fibbing.net/fibbing/internal/metrics"
	"fibbing.net/fibbing/internal/video"
)

func main() {
	for _, withCtrl := range []bool{true, false} {
		label := "WITH Fibbing controller"
		if !withCtrl {
			label = "WITHOUT controller"
		}
		fmt.Printf("==== %s ====\n", label)
		sim, res, err := controller.RunFig2(withCtrl, 60*time.Second, 0)
		if err != nil {
			log.Fatal(err)
		}

		fmt.Println("link throughput (byte/s), as in the paper's Figure 2:")
		if err := metrics.SeriesTable(5*time.Second, res.Series...).Render(os.Stdout); err != nil {
			log.Fatal(err)
		}

		for _, d := range res.Decisions {
			fmt.Printf("controller @%-4v: %s (%d lies) — %s\n", d.At, d.Strategy, d.Lies, d.Detail)
		}

		agg := video.AggregateQoE(res.QoE)
		fmt.Printf("\nplayback: %d sessions, %d smooth, %d stalls, mean rebuffer %.1f%% (worst %.1f%%)\n",
			agg.Sessions, agg.SmoothSessions, agg.TotalStalls,
			100*agg.MeanRebuffer, 100*agg.WorstRebuffer)
		fmt.Printf("delivered %.1f of %.1f Mbit/s demanded; max link utilisation %.2f; %d live lies\n\n",
			sim.Net.TotalThroughput()/1e6, 62*0.5, res.MaxUtilisation, res.LiveLies)
	}
}
