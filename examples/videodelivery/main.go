// Videodelivery replays the paper's demo (Figure 2): video waves arrive
// at t=0, t=15s and t=35s; the Fibbing controller reacts to SNMP alarms
// by injecting fake nodes. The example runs the timeline twice — with and
// without the controller — and prints the link-throughput series and the
// per-session playback quality, reproducing "smooth with Fibbing,
// stuttering without".
//
// The -viewers flag scales the same demand to an arbitrary crowd size
// (e.g. -viewers 100000): per-session bitrate shrinks so the total stays
// the demo's, and the run reports how few aggregates the traffic plane
// needed to carry them.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"fibbing.net/fibbing/internal/controller"
	"fibbing.net/fibbing/internal/flashcrowd"
	"fibbing.net/fibbing/internal/metrics"
	"fibbing.net/fibbing/internal/topo"
	"fibbing.net/fibbing/internal/video"
)

func main() {
	viewers := flag.Int("viewers", 0, "scale the demo crowd to this many sessions (0 keeps the paper's 62)")
	flag.Parse()
	if *viewers > 0 {
		runScaled(*viewers)
		return
	}
	for _, withCtrl := range []bool{true, false} {
		label := "WITH Fibbing controller"
		if !withCtrl {
			label = "WITHOUT controller"
		}
		fmt.Printf("==== %s ====\n", label)
		sim, res, err := controller.RunFig2(withCtrl, 60*time.Second, 0)
		if err != nil {
			log.Fatal(err)
		}

		fmt.Println("link throughput (byte/s), as in the paper's Figure 2:")
		if err := metrics.SeriesTable(5*time.Second, res.Series...).Render(os.Stdout); err != nil {
			log.Fatal(err)
		}

		for _, d := range res.Decisions {
			fmt.Printf("controller @%-4v: %s (%d lies) — %s\n", d.At, d.Strategy, d.Lies, d.Detail)
		}

		agg := video.AggregateQoE(res.QoE)
		fmt.Printf("\nplayback: %d sessions, %d smooth, %d stalls, mean rebuffer %.1f%% (worst %.1f%%)\n",
			agg.Sessions, agg.SmoothSessions, agg.TotalStalls,
			100*agg.MeanRebuffer, 100*agg.WorstRebuffer)
		fmt.Printf("delivered %.1f of %.1f Mbit/s demanded; max link utilisation %.2f; %d live lies\n\n",
			sim.Net.TotalThroughput()/1e6, 62*0.5, res.MaxUtilisation, res.LiveLies)
	}
}

// runScaled replays the Figure 2 timeline with the demo's total demand
// sliced into the requested number of sessions — the aggregate traffic
// plane carries them in a handful of path-classes.
func runScaled(viewers int) {
	// The demo's totals: 31 sessions behind B, 31 behind A, 0.5 Mbit/s
	// each. Keep the aggregate demand, shrink the per-session rate.
	rate := flashcrowd.DefaultVideoRate * 62 / float64(viewers)
	fromB := viewers / 2
	fromA := viewers - fromB - 1
	var waves []flashcrowd.Wave
	for _, w := range []flashcrowd.Wave{
		{At: 0, Ingress: topo.Fig1B, Flows: 1, Rate: rate},
		{At: 15 * time.Second, Ingress: topo.Fig1B, Flows: fromB, Rate: rate},
		{At: 35 * time.Second, Ingress: topo.Fig1A, Flows: fromA, Rate: rate},
	} {
		if w.Flows > 0 { // tiny -viewers can empty a surge step
			waves = append(waves, w)
		}
	}
	for _, withCtrl := range []bool{true, false} {
		label := "WITH Fibbing controller"
		if !withCtrl {
			label = "WITHOUT controller"
		}
		fmt.Printf("==== %s, %d viewers ====\n", label, viewers)
		sim, err := controller.NewSim(controller.SimOpts{WithCtrl: withCtrl, TrackPlayers: true})
		if err != nil {
			log.Fatal(err)
		}
		if err := sim.Runner.Schedule(waves); err != nil {
			log.Fatal(err)
		}
		sim.Run(60 * time.Second)

		agg := video.AggregateQoE(sim.QoE())
		stats := sim.Net.Stats()
		fmt.Printf("playback: %d sessions, %d smooth, %d stalls, mean rebuffer %.1f%%\n",
			agg.Sessions, agg.SmoothSessions, agg.TotalStalls, 100*agg.MeanRebuffer)
		fmt.Printf("traffic plane: %d flows in %d aggregates; reshare %d incremental / %d full; max utilisation %.2f; %d lies\n\n",
			stats.Flows, stats.Aggregates, stats.ReshareIncremental, stats.ReshareFull,
			sim.Net.MaxUtilisation(), sim.Lies.LieCount())
	}
}
