// Quickstart: build the paper's Figure 1 network, look at its IGP
// routing, express the Figure 1c requirement (even split at B, 1:2 split
// at A), compile it into fake nodes, and verify the result — all in a few
// calls against the public API.
package main

import (
	"fmt"
	"log"

	"fibbing.net/fibbing/internal/controller"
	"fibbing.net/fibbing/internal/fibbing"
	"fibbing.net/fibbing/internal/te"
	"fibbing.net/fibbing/internal/topo"
)

func main() {
	// 1. The topology of the paper's Figure 1 (weights as published).
	network := topo.Fig1(topo.Fig1Opts{})
	fmt.Println("topology:")
	fmt.Print(indent(network.String()))

	// 2. Plain IGP routing towards the blue prefix.
	views, err := fibbing.IGPView(network, topo.Fig1BluePrefixName)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nIGP next hops towards blue:")
	for _, name := range []string{"A", "B", "R1", "R2", "R3", "R4"} {
		n := network.MustNode(name)
		fmt.Printf("  %-3s -> %s\n", name, formatHops(network, views[n]))
	}

	// 3. The flash crowd: 8 Mbit/s surges at A and B overload B-R2.
	demands := topo.Fig1Demands(network, 8e6)
	loads, err := te.IGPLoads(network, demands)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmax utilisation before Fibbing: %.2f\n", te.MaxUtilOfLoads(network, loads))

	// 4. The requirement of Figure 1c/1d: B splits evenly over R2/R3,
	//    A splits 1/3 : 2/3 over B/R1.
	requirement := fibbing.Fig1DAG(network)
	aug, err := fibbing.AugmentAddPaths(network, topo.Fig1BluePrefixName, requirement)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncompiled %d lies:\n", aug.LieCount())
	for _, l := range aug.Lies {
		fmt.Printf("  fake node at %s, forwarding to %s, announced cost %d\n",
			network.Name(l.Attach), network.Name(l.Via), l.Cost)
	}

	// 5. Verify and measure the effect.
	if err := fibbing.Verify(network, topo.Fig1BluePrefixName, aug.Lies, requirement); err != nil {
		log.Fatal(err)
	}
	after, err := te.LoadsWithLies(network,
		map[string][]fibbing.Lie{topo.Fig1BluePrefixName: aug.Lies}, demands)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("max utilisation after Fibbing:  %.2f\n", te.MaxUtilOfLoads(network, after))
	fmt.Println("\nper-link loads after Fibbing (bit/s):")
	for _, line := range te.FormatLoads(network, after) {
		fmt.Println("  " + line)
	}

	// 6. The controller's pluggable reaction-strategy API: fan the stock
	//    strategies out concurrently against the surge and see which plan
	//    the planner would commit. Custom policies implement
	//    controller.Strategy and register via WithStrategies.
	alarm, _ := controller.HottestLinkAlarm(network, loads)
	planner := controller.NewPlanner(controller.DefaultStrategies()...)
	ctx := controller.AnalyticPlanContext(network, demands, nil,
		controller.AlarmEvent(alarm), controller.Config{})
	fmt.Printf("\nstrategy proposals for the %s alarm (base util %.2f):\n", alarm.Name, ctx.BaseUtil)
	plans, _ := planner.ProposeAll(ctx)
	for _, p := range plans {
		fmt.Printf("  %-10s %d lies -> predicted util %.2f\n", p.Strategy, p.TotalLies(), p.PredictedUtil)
	}
	if winner := planner.Select(ctx, plans); winner != nil {
		fmt.Printf("planner commits: %s (%s)\n", winner.Strategy, winner.Rationale)
	}
}

func formatHops(t *topo.Topology, v fibbing.RouteView) string {
	if v.Local {
		return "local delivery"
	}
	out := ""
	for nh, w := range v.NextHops {
		if out != "" {
			out += ", "
		}
		out += fmt.Sprintf("%s (weight %d)", t.Name(nh), w)
	}
	if out == "" {
		return "unreachable"
	}
	return out
}

func indent(s string) string {
	out := ""
	for _, line := range splitLines(s) {
		out += "  " + line + "\n"
	}
	return out
}

func splitLines(s string) []string {
	var out []string
	cur := ""
	for _, r := range s {
		if r == '\n' {
			out = append(out, cur)
			cur = ""
			continue
		}
		cur += string(r)
	}
	if cur != "" {
		out = append(out, cur)
	}
	return out
}
