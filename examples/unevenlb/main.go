// Unevenlb demonstrates Fibbing's second headline capability in
// isolation: uneven load-balancing ratios with zero data-plane overhead.
// It asks for a sequence of target splits at router A, quantises each
// into ECMP weights, injects the duplicated fake nodes into a *running
// IGP*, and measures the split that per-flow hashing actually produces on
// the wire.
package main

import (
	"fmt"
	"log"
	"time"

	"fibbing.net/fibbing/internal/event"
	"fibbing.net/fibbing/internal/fib"
	"fibbing.net/fibbing/internal/fibbing"
	"fibbing.net/fibbing/internal/netsim"
	"fibbing.net/fibbing/internal/ospf"
	"fibbing.net/fibbing/internal/southbound"
	"fibbing.net/fibbing/internal/topo"
)

func main() {
	network := topo.Fig1(topo.Fig1Opts{})
	sched := event.NewScheduler()
	net := netsim.New(network, sched, time.Second)
	domain := ospf.NewDomain(network, sched, ospf.Config{})
	domain.OnFIBChange = func(n topo.NodeID, t *fib.Table) { net.SetTable(n, t) }
	domain.Start()
	if _, err := domain.RunUntilConverged(30 * time.Second); err != nil {
		log.Fatal(err)
	}

	pop := domain.Router(network.MustNode("R3"))
	mgr := southbound.NewLieManager(southbound.DirectInjector{Router: pop}, ospf.ControllerIDBase)

	a := network.MustNode("A")
	b := network.MustNode("B")
	r1 := network.MustNode("R1")

	for _, target := range []struct {
		fracB, fracR1 float64
	}{
		{1.0 / 3, 2.0 / 3},
		{1.0 / 4, 3.0 / 4},
		{2.0 / 5, 3.0 / 5},
		{1.0 / 8, 7.0 / 8},
	} {
		// Quantise the target into ECMP weights.
		weights, err := fibbing.ApproxWeights([]float64{target.fracB, target.fracR1}, 16)
		if err != nil {
			log.Fatal(err)
		}
		dag := fibbing.DAG{a: fibbing.NextHopWeights{b: weights[0], r1: weights[1]}}
		aug, err := fibbing.AugmentAddPaths(network, topo.Fig1BluePrefixName, dag)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := mgr.Apply(topo.Fig1BluePrefixName, aug.Lies); err != nil {
			log.Fatal(err)
		}
		if _, err := domain.RunUntilConverged(sched.Now() + 60*time.Second); err != nil {
			log.Fatal(err)
		}

		// Measure the actual split over 4000 hashed flows.
		table := domain.Router(a).FIB()
		viaR1 := 0
		const flows = 4000
		for i := 0; i < flows; i++ {
			key := fib.FlowKey{
				Src:     ospf.Loopback(a),
				Dst:     ospf.HostAddr(topo.Fig1BluePrefix, i),
				SrcPort: uint16(20000 + i), DstPort: 8080, Proto: 6,
			}
			nh, _, ok := table.Select(key.Dst, key)
			if !ok {
				log.Fatalf("flow %d has no route", i)
			}
			if nh.Node == r1 {
				viaR1++
			}
		}
		measured := float64(viaR1) / flows
		fmt.Printf("target %4.0f%% via R1 -> weights {B:%d, R1:%d} (%d fake nodes) -> measured %5.1f%% via R1\n",
			100*target.fracR1, weights[0], weights[1], aug.LieCount(), 100*measured)
	}

	// Clean up: withdraw everything; A reverts to single-path routing.
	if err := mgr.WithdrawAll(); err != nil {
		log.Fatal(err)
	}
	if _, err := domain.RunUntilConverged(sched.Now() + 60*time.Second); err != nil {
		log.Fatal(err)
	}
	route, _ := domain.Router(a).FIB().Lookup(topo.Fig1BluePrefix.Addr())
	fmt.Printf("after withdrawal, A's next hops: %d (plain IGP again)\n", len(route.NextHops))
}
