// Flashcrowd stresses the controller beyond the paper's scripted demo: a
// Poisson flash crowd of video sessions hits a random 12-router network.
// The controller reacts to whatever congestion emerges and withdraws its
// lies when the crowd drains — demonstrating that the machinery is not
// specific to the Figure 1 gadget.
package main

import (
	"fmt"
	"log"
	"time"

	"fibbing.net/fibbing/internal/controller"
	"fibbing.net/fibbing/internal/flashcrowd"
	"fibbing.net/fibbing/internal/topo"
)

func main() {
	// A random connected network with one content prefix ("d0").
	network := topo.RandomConnected(topo.RandomOpts{
		Nodes:     12,
		Degree:    3,
		MaxWeight: 4,
		Capacity:  10e6,
		Prefixes:  1,
		Seed:      7,
	})
	if err := network.Validate(); err != nil {
		log.Fatal(err)
	}
	p, _ := network.PrefixByName("d0")
	fmt.Printf("random network: %d routers, %d links, content prefix %v\n",
		network.NumNodes(), network.NumLinks()/2, p.Prefix)

	// Pick the reaction-strategy set explicitly (the same set the
	// -strategies flags of fiblab/fibbingd select); any custom
	// controller.Strategy implementation could ride along here.
	strategies, err := controller.ParseStrategies("localecmp,ksp,lpoptimal")
	if err != nil {
		log.Fatal(err)
	}
	sim, err := controller.NewSim(controller.SimOpts{
		Topology:   network,
		Prefix:     "d0",
		AttachAt:   network.Name(p.Attachments[0].Node), // PoP next to the content
		WithCtrl:   true,
		Strategies: strategies,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reaction strategies: %v\n", sim.Ctrl.Planner().Strategies())

	// A 90-second Poisson crowd from the two farthest routers (~0.8
	// sessions/s each, mean hold 40 s, 400 kbit/s per session). Two
	// ingresses matter: their shortest paths overlap mid-network — the
	// Figure 1 situation at random-topology scale — so rerouting can
	// genuinely relieve the congestion (a single saturated source's
	// egress cut cannot be routed around, and the planner refuses
	// zero-gain plans).
	in1, in2 := farthestRouters(network, p.Attachments[0].Node)
	waves := flashcrowd.PoissonWaves(network.Name(in1), 90*time.Second,
		0.8, 40*time.Second, 0.4e6, 42)
	waves = append(waves, flashcrowd.PoissonWaves(network.Name(in2), 90*time.Second,
		0.8, 40*time.Second, 0.4e6, 43)...)
	fmt.Printf("flash crowd: %d sessions arriving at %s and %s over 90s\n",
		len(waves), network.Name(in1), network.Name(in2))
	if err := sim.Runner.Schedule(waves); err != nil {
		log.Fatal(err)
	}

	sim.Run(180 * time.Second)

	fmt.Println("\ncontroller decisions:")
	if len(sim.Ctrl.Decisions) == 0 {
		fmt.Println("  (none — no strategy could improve on IGP routing; try a higher rate)")
	}
	for _, d := range sim.Ctrl.Decisions {
		fmt.Printf("  t=%-6v %-18s lies=%d  %s\n", d.At, d.Strategy, d.Lies, d.Detail)
	}
	fmt.Printf("\nend state: %d live lies, %d live flows, max utilisation %.2f\n",
		sim.Lies.LieCount(), sim.Net.FlowCount(), sim.Net.MaxUtilisation())
	if len(sim.Ctrl.Errors) > 0 {
		fmt.Printf("controller errors: %v\n", sim.Ctrl.Errors)
	}
}

// farthestRouters picks the two routers with the greatest IGP distance
// from the content, so the crowd crosses as much of the network as
// possible and the two shortest paths overlap mid-network.
func farthestRouters(t *topo.Topology, from topo.NodeID) (topo.NodeID, topo.NodeID) {
	// Cheap BFS-by-weight approximation: reuse demand helper semantics by
	// scanning all nodes and picking the max shortest-path costs.
	type item struct {
		n topo.NodeID
		d int64
	}
	dist := map[topo.NodeID]int64{from: 0}
	queue := []item{{from, 0}}
	for len(queue) > 0 {
		// simple Dijkstra-ish relaxation (small graphs)
		cur := queue[0]
		queue = queue[1:]
		for _, lid := range t.OutLinks(cur.n) {
			l := t.Link(lid)
			nd := cur.d + l.Weight
			if old, ok := dist[l.To]; !ok || nd < old {
				dist[l.To] = nd
				queue = append(queue, item{l.To, nd})
			}
		}
	}
	best, second := from, from
	var bestD, secondD int64 = -1, -1
	for n, d := range dist {
		if t.Node(n).Host || n == from {
			continue
		}
		switch {
		case d > bestD:
			second, secondD = best, bestD
			best, bestD = n, d
		case d > secondD:
			second, secondD = n, d
		}
	}
	return best, second
}
