module fibbing.net/fibbing

go 1.24.0
