// Command experiments regenerates every figure and quantitative claim of
// the paper and prints a report with one table per experiment.
//
// Usage:
//
//	experiments [-fig2 60s] [-only fig1d] [-csv]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"fibbing.net/fibbing/internal/experiments"
)

func main() {
	fig2 := flag.Duration("fig2", 60*time.Second, "duration of the Figure 2 timeline")
	only := flag.String("only", "", "run only the experiment with this id (e.g. fig1d, fig2-with)")
	csv := flag.Bool("csv", false, "emit tables as CSV instead of aligned text")
	flag.Parse()

	results, err := experiments.All(*fig2)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
	failed := false
	for _, r := range results {
		if *only != "" && r.ID != *only {
			continue
		}
		if *csv {
			fmt.Printf("# %s: %s\n", r.ID, r.Caption)
			if err := r.Table.RenderCSV(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				os.Exit(1)
			}
			fmt.Println()
		} else {
			var b strings.Builder
			r.Render(&b)
			fmt.Print(b.String())
		}
		if len(r.Check) > 0 {
			failed = true
		}
	}
	if failed {
		fmt.Fprintln(os.Stderr, "experiments: some paper-pinned checks FAILED (see above)")
		os.Exit(1)
	}
}
