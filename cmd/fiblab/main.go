// Command fiblab runs the scenario-matrix stress harness: a named
// scenario cell, an ad-hoc spec, or the whole matrix, with the Fibbing
// controller on and off, and reports the comparison as text or JSON.
//
// Usage:
//
//	fiblab -list                    # print the matrix cells
//	fiblab -run ring/surge          # one cell, both controller modes
//	fiblab -matrix                  # the full matrix
//	fiblab -topo waxman -size 20 -seed 4 -workload flash -failure flap
//	fiblab -matrix -json > out.json # machine-readable reports
//	fiblab -run ring/surge -strategies=localecmp,ksp
//	                                # restrict the reaction-strategy set
//	fiblab -run ring/surge -viewers 100000
//	                                # same demand sliced into 100k sessions
//	fiblab -run abilene/surge -capacity 10G
//	                                # the same relative problem at 10 Gbit/s
//	fiblab -scale                   # scaling cells (Gbit-capacity defaults)
//	fiblab -failover                # BFD+standby vs SNMP failover cells
//	fiblab -qoe                     # qoe vs util score-mode comparison cells
//	fiblab -run ring/surge -score-mode qoe
//	                                # plan for fewer stalls, not cooler links
//	fiblab -topo fig1 -workload steady -failure hotlink -bfd -standby-k 3
//	                                # ad-hoc run with fast failover enabled
//	fiblab -run ring/surge -cache-stats
//	                                # plus planner amortisation telemetry
//
// The exit status is non-zero when any executed cell violates its
// invariants, so fiblab doubles as a CI gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"fibbing.net/fibbing/internal/controller"
	"fibbing.net/fibbing/internal/scenarios"
	"fibbing.net/fibbing/internal/topo"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list the matrix cells and exit")
		run      = flag.String("run", "", "run one matrix cell by name (e.g. ring/surge)")
		matrix   = flag.Bool("matrix", false, "run the full scenario matrix")
		scale    = flag.Bool("scale", false, "run the large-topology scaling cells (controller on), reporting wall-clock and events executed")
		jsonOut  = flag.Bool("json", false, "emit JSON instead of text")
		duration = flag.Duration("duration", 0, "override the scenario duration")
		strats   = flag.String("strategies", "", "comma-separated reaction strategies (e.g. localecmp,ksp,lpoptimal); empty keeps the stock set")
		scoreMd  = flag.String("score-mode", "", "planner scoring objective: util (default), qoe (predicted stall-seconds first) or blended")

		topoF    = flag.String("topo", "", "ad-hoc run: topology family (fig1, abilene, fattree, ring, grid, waxman, random)")
		capacity = flag.String("capacity", "", "uniform link capacity, e.g. 1G or 10G (ad-hoc runs and overriding matrix/scale cells; empty keeps the cell's own)")
		size     = flag.Int("size", 0, "ad-hoc run: topology size knob")
		seed     = flag.Int64("seed", 0, "ad-hoc run: seed")
		workload = flag.String("workload", "surge", "ad-hoc run: workload (surge, flash, ramp, dual, steady, skew)")
		failure  = flag.String("failure", "", "ad-hoc run: failure schedule (hotlink, flap)")
		viewers  = flag.Int("viewers", 0, "scale the crowd to about this many sessions (exact for surge; same total demand, finer slices; 0 keeps the default sizing)")
		workers  = flag.Int("workers", 0, "simulation worker-pool width: 0 uses GOMAXPROCS, 1 forces the sequential core (output is byte-identical either way)")

		cacheStats = flag.Bool("cache-stats", false, "after each cell, print the planner amortisation telemetry: plan-cache hit/miss, warm-LP warm/cold/fallback solves, parallel reshare component count, and per-strategy propose timings (always present in -json output)")

		failover = flag.Bool("failover", false, "run the fast-failover cells: each compares BFD+standby against SNMP-poll failure detection")
		qoeCells = flag.Bool("qoe", false, "run the score-mode comparison cells: each runs qoe scoring against util scoring (and plain IGP) on the same schedule")
		bfd      = flag.Bool("bfd", false, "attach BFD-style per-link liveness sessions (50ms hellos, detect multiplier 3) feeding the controller")
		standbyK = flag.Int("standby-k", 0, "with -bfd, precompute failover plans for the K busiest links during controller idle time (0 disables the cache)")
	)
	flag.Parse()

	// Parse the capacity override once (topo.ParseBits understands the
	// 1G/10G/100M suffix forms FormatBits emits).
	capOverride := 0.0
	if *capacity != "" {
		v, err := topo.ParseBits(*capacity)
		if err != nil || v <= 0 {
			fmt.Fprintf(os.Stderr, "fiblab: bad -capacity %q (want e.g. 100M, 1G, 10G)\n", *capacity)
			os.Exit(2)
		}
		capOverride = v
	}

	// Validate the score mode up front so a typo is a usage error, not a
	// per-cell runtime failure.
	if _, err := controller.ParseScoreMode(*scoreMd); err != nil {
		fmt.Fprintf(os.Stderr, "fiblab: %v\n", err)
		os.Exit(2)
	}

	// Resolve the strategy set once, up front: a bad name is a usage
	// error, and the canonical names feed Spec.Strategies.
	var strategyNames []string
	if *strats != "" {
		set, err := controller.ParseStrategies(*strats)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fiblab: %v\n", err)
			os.Exit(2)
		}
		strategyNames = controller.StrategyNames(set)
	}

	if *list {
		for _, s := range scenarios.MatrixSpecs() {
			fmt.Println(s.Name)
		}
		return
	}

	if *scale {
		runScale(*duration, *jsonOut, strategyNames, *viewers, capOverride, *workers, *cacheStats)
		return
	}

	if *failover {
		runFailover(*duration, *jsonOut, *workers)
		return
	}

	if *qoeCells {
		runQoE(*duration, *jsonOut, *workers, *cacheStats)
		return
	}

	var specs []scenarios.Spec
	switch {
	case *run != "":
		s, ok := scenarios.SpecByName(*run)
		if !ok {
			fmt.Fprintf(os.Stderr, "fiblab: no matrix cell %q (see -list)\n", *run)
			os.Exit(2)
		}
		specs = append(specs, s)
	case *topoF != "":
		specs = append(specs, scenarios.Spec{
			Topo:     scenarios.TopoSpec{Family: *topoF, Size: *size, Seed: *seed, Capacity: capOverride},
			Workload: *workload,
			Failure:  *failure,
			Seed:     *seed,
		})
	case *matrix:
		specs = scenarios.MatrixSpecs()
	default:
		flag.Usage()
		os.Exit(2)
	}

	var results []*scenarios.Comparison
	failed := false
	start := time.Now()
	for _, spec := range specs {
		if *duration > 0 {
			spec.Duration = *duration
		}
		if len(strategyNames) > 0 {
			spec.Strategies = strategyNames
		}
		if *viewers > 0 {
			spec.Viewers = *viewers
		}
		if capOverride > 0 {
			spec.Topo.Capacity = capOverride
		}
		spec.Workers = *workers
		if *scoreMd != "" {
			spec.ScoreMode = *scoreMd
		}
		if *bfd {
			spec.BFD = true
		}
		if *standbyK > 0 {
			spec.StandbyK = *standbyK
		}
		cmp, err := scenarios.Compare(spec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fiblab: %v\n", err)
			os.Exit(1)
		}
		results = append(results, cmp)
		if len(cmp.Violations) > 0 {
			failed = true
		}
		if !*jsonOut {
			var b strings.Builder
			cmp.Render(&b)
			if *cacheStats {
				cmp.On.RenderCacheStats(&b, "  ")
			}
			fmt.Print(b.String())
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fmt.Fprintf(os.Stderr, "fiblab: %v\n", err)
			os.Exit(1)
		}
	} else {
		fmt.Printf("%d cells in %.1fs\n", len(results), time.Since(start).Seconds())
	}
	if failed {
		fmt.Fprintln(os.Stderr, "fiblab: invariant violations (see above)")
		os.Exit(1)
	}
}

// runFailover executes the fast-failover cells: each spec runs twice
// with the controller on — BFD + standby cache against SNMP-poll
// detection — and the comparison checks the order-of-magnitude latency
// and stall-ratio invariants between them.
func runFailover(duration time.Duration, jsonOut bool, workers int) {
	var results []*scenarios.FailoverComparison
	failed := false
	for _, spec := range scenarios.FailoverSpecs() {
		if duration > 0 {
			spec.Duration = duration
		}
		spec.Workers = workers
		cmp, err := scenarios.CompareFailover(spec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fiblab: %v\n", err)
			os.Exit(1)
		}
		results = append(results, cmp)
		if len(cmp.Violations) > 0 {
			failed = true
		}
		if !jsonOut {
			var b strings.Builder
			cmp.Render(&b)
			fmt.Print(b.String())
		}
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fmt.Fprintf(os.Stderr, "fiblab: %v\n", err)
			os.Exit(1)
		}
	}
	if failed {
		fmt.Fprintln(os.Stderr, "fiblab: failover invariant violations (see above)")
		os.Exit(1)
	}
}

// runQoE executes the score-mode comparison cells: each spec runs three
// times — controller off, utilisation scoring, QoE scoring — and the
// comparison checks that stall-aware planning buys strictly fewer
// stalled viewer-seconds (predicted and simulated) without worsening on
// plain IGP.
func runQoE(duration time.Duration, jsonOut bool, workers int, cacheStats bool) {
	var results []*scenarios.ScoreModeComparison
	failed := false
	for _, spec := range scenarios.QoESpecs() {
		if duration > 0 {
			spec.Duration = duration
		}
		spec.Workers = workers
		cmp, err := scenarios.CompareScoreModes(spec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fiblab: %v\n", err)
			os.Exit(1)
		}
		results = append(results, cmp)
		if len(cmp.Violations) > 0 {
			failed = true
		}
		if !jsonOut {
			var b strings.Builder
			cmp.Render(&b)
			if cacheStats {
				cmp.QoE.RenderCacheStats(&b, "  ")
			}
			fmt.Print(b.String())
		}
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fmt.Fprintf(os.Stderr, "fiblab: %v\n", err)
			os.Exit(1)
		}
	}
	if failed {
		fmt.Fprintln(os.Stderr, "fiblab: score-mode invariant violations (see above)")
		os.Exit(1)
	}
}

// scaleResult is one scaling cell's cost record.
type scaleResult struct {
	Report    *scenarios.Report `json:"report"`
	WallClock float64           `json:"wall_clock_seconds"`
}

// runScale executes the large-topology cells (controller on, no
// counterfactual side: these measure cost, not invariants) and prints
// per-cell wall-clock and scheduler events executed.
func runScale(duration time.Duration, jsonOut bool, strategyNames []string, viewers int, capOverride float64, workers int, cacheStats bool) {
	var results []scaleResult
	for _, spec := range scenarios.ScaleSpecs() {
		if duration > 0 {
			spec.Duration = duration
		}
		if len(strategyNames) > 0 {
			spec.Strategies = strategyNames
		}
		if viewers > 0 {
			spec.Viewers = viewers
		}
		if capOverride > 0 {
			spec.Topo.Capacity = capOverride
		}
		spec.Workers = workers
		start := time.Now()
		rep, err := scenarios.Run(spec, true)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fiblab: %v\n", err)
			os.Exit(1)
		}
		wall := time.Since(start)
		results = append(results, scaleResult{Report: rep, WallClock: wall.Seconds()})
		if !jsonOut {
			fmt.Printf("%-24s wall=%8.2fs events=%9d spf=%d inc/%d full reshare=%d inc/%d full sessions=%d aggs=%d settled=%.2f lies=%d workers=%d batches=%d par-spf=%d/%d max-batch=%d\n",
				spec.Name, wall.Seconds(), rep.Events,
				rep.SPFIncrementalRuns, rep.SPFFullRuns,
				rep.ReshareIncremental, rep.ReshareFull,
				rep.Sessions, rep.Aggregates, rep.SettledUtilisation, rep.Lies,
				rep.Workers, rep.ParallelBatches, rep.ParallelSPFRuns,
				rep.ParallelSPFRuns+rep.SequentialSPFRuns, rep.MaxBatch)
			if cacheStats {
				var b strings.Builder
				rep.RenderCacheStats(&b, "  ")
				fmt.Print(b.String())
			}
		}
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fmt.Fprintf(os.Stderr, "fiblab: %v\n", err)
			os.Exit(1)
		}
	}
}
