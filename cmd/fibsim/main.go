// Command fibsim is a one-shot analytic what-if tool: given a topology
// (the paper's Figure 1 by default, or a topology file) and a demand set,
// it prints the plain-IGP link loads, the LP-optimal min-max utilisation,
// the Fibbing realisation (lies and achieved utilisation), and the
// RSVP-TE baseline — the full §2 comparison for arbitrary inputs.
//
// Usage:
//
//	fibsim [-topo file] [-demand ingress:prefix:bps]... [-denom 16]
//	fibsim -demand B:blue:8M -demand A:blue:8M
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"fibbing.net/fibbing/internal/metrics"
	"fibbing.net/fibbing/internal/te"
	"fibbing.net/fibbing/internal/topo"
)

type demandFlags []string

func (d *demandFlags) String() string { return strings.Join(*d, ",") }
func (d *demandFlags) Set(s string) error {
	*d = append(*d, s)
	return nil
}

func main() {
	topoFile := flag.String("topo", "", "topology file (default: the paper's Figure 1)")
	denom := flag.Int("denom", 16, "max ECMP weight denominator for split quantisation")
	var demands demandFlags
	flag.Var(&demands, "demand", "demand as ingress:prefix:bps (repeatable), e.g. B:blue:8M")
	flag.Parse()

	if err := run(*topoFile, demands, *denom); err != nil {
		fmt.Fprintf(os.Stderr, "fibsim: %v\n", err)
		os.Exit(1)
	}
}

func run(topoFile string, demandSpecs []string, denom int) error {
	var t *topo.Topology
	if topoFile == "" {
		t = topo.Fig1(topo.Fig1Opts{})
	} else {
		f, err := os.Open(topoFile)
		if err != nil {
			return err
		}
		defer f.Close()
		t, err = topo.Parse(f)
		if err != nil {
			return err
		}
	}

	var demands []topo.Demand
	if len(demandSpecs) == 0 {
		demands = topo.Fig1Demands(t, 8e6)
		fmt.Println("no -demand given: using the Figure 1 surge (8 Mbit/s at A and B)")
	}
	for _, spec := range demandSpecs {
		d, err := topo.ParseDemandSpec(t, spec)
		if err != nil {
			return err
		}
		demands = append(demands, d)
	}

	// Plain IGP.
	loads, err := te.IGPLoads(t, demands)
	if err != nil {
		return err
	}
	fmt.Println("\n-- plain IGP (ECMP shortest paths) --")
	for _, line := range te.FormatLoads(t, loads) {
		fmt.Println("  ", line)
	}
	fmt.Printf("  max utilisation: %.3f\n", te.MaxUtilOfLoads(t, loads))

	// LP + Fibbing.
	fb, err := te.RealizeMinMax(t, demands, denom)
	if err != nil {
		return err
	}
	fmt.Println("\n-- Fibbing (LP-optimal splits realised with fake nodes) --")
	fmt.Printf("  LP optimum θ*: %.3f\n", fb.Optimal)
	fmt.Printf("  realised:      %.3f (quantised to ECMP weights, denominator <= %d)\n", fb.Realised, denom)
	fmt.Printf("  lies injected: %d\n", fb.Lies)
	for prefix, lies := range fb.PerPrefixLies {
		for _, l := range lies {
			fmt.Printf("    %s: fake node at %s via %s cost %d\n",
				prefix, t.Name(l.Attach), t.Name(l.Via), l.Cost)
		}
	}

	// RSVP-TE baseline.
	rsvp, err := te.PlaceTunnels(t, demands)
	if err != nil {
		return err
	}
	fmt.Println("\n-- MPLS RSVP-TE baseline (CSPF tunnels) --")
	tb := metrics.NewTable("tunnels", "signal msgs", "state entries", "encap B/pkt", "max util")
	tb.AddRow(len(rsvp.Tunnels), rsvp.SignalingMessages, rsvp.StateEntries,
		rsvp.EncapBytesPerPacket, rsvp.MaxUtilisation)
	if err := tb.Render(os.Stdout); err != nil {
		return err
	}
	if len(rsvp.Unplaced) > 0 {
		fmt.Printf("  unplaced demands: %v\n", rsvp.Unplaced)
	}
	return nil
}
