// Command fibsim is a one-shot analytic what-if tool: given a topology
// (the paper's Figure 1 by default, or a topology file) and a demand set,
// it prints the plain-IGP link loads, the LP-optimal min-max utilisation,
// the Fibbing realisation (lies and achieved utilisation), the RSVP-TE
// baseline — the full §2 comparison for arbitrary inputs — and what the
// controller's strategy planner would do about the hottest link.
//
// Usage:
//
//	fibsim [-topo file] [-demand ingress:prefix:bps]... [-denom 16]
//	fibsim -demand B:blue:8M -demand A:blue:8M
//	fibsim -strategies localecmp,ksp,lpoptimal   # what-if planner run
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"fibbing.net/fibbing/internal/controller"
	"fibbing.net/fibbing/internal/metrics"
	"fibbing.net/fibbing/internal/te"
	"fibbing.net/fibbing/internal/topo"
)

type demandFlags []string

func (d *demandFlags) String() string { return strings.Join(*d, ",") }
func (d *demandFlags) Set(s string) error {
	*d = append(*d, s)
	return nil
}

func main() {
	topoFile := flag.String("topo", "", "topology file (default: the paper's Figure 1)")
	denom := flag.Int("denom", 16, "max ECMP weight denominator for split quantisation")
	strategies := flag.String("strategies", "localecmp,lpoptimal,ksp",
		"reaction strategies for the planner what-if section (empty disables it)")
	var demands demandFlags
	flag.Var(&demands, "demand", "demand as ingress:prefix:bps (repeatable), e.g. B:blue:8M")
	flag.Parse()

	if err := run(*topoFile, demands, *denom, *strategies); err != nil {
		fmt.Fprintf(os.Stderr, "fibsim: %v\n", err)
		os.Exit(1)
	}
}

func run(topoFile string, demandSpecs []string, denom int, strategies string) error {
	var t *topo.Topology
	if topoFile == "" {
		t = topo.Fig1(topo.Fig1Opts{})
	} else {
		f, err := os.Open(topoFile)
		if err != nil {
			return err
		}
		defer f.Close()
		t, err = topo.Parse(f)
		if err != nil {
			return err
		}
	}

	var demands []topo.Demand
	if len(demandSpecs) == 0 {
		demands = topo.Fig1Demands(t, 8e6)
		fmt.Println("no -demand given: using the Figure 1 surge (8 Mbit/s at A and B)")
	}
	for _, spec := range demandSpecs {
		d, err := topo.ParseDemandSpec(t, spec)
		if err != nil {
			return err
		}
		demands = append(demands, d)
	}

	// Plain IGP.
	loads, err := te.IGPLoads(t, demands)
	if err != nil {
		return err
	}
	fmt.Println("\n-- plain IGP (ECMP shortest paths) --")
	for _, line := range te.FormatLoads(t, loads) {
		fmt.Println("  ", line)
	}
	fmt.Printf("  max utilisation: %.3f\n", te.MaxUtilOfLoads(t, loads))

	// LP + Fibbing.
	fb, err := te.RealizeMinMax(t, demands, denom)
	if err != nil {
		return err
	}
	fmt.Println("\n-- Fibbing (LP-optimal splits realised with fake nodes) --")
	fmt.Printf("  LP optimum θ*: %.3f\n", fb.Optimal)
	fmt.Printf("  realised:      %.3f (quantised to ECMP weights, denominator <= %d)\n", fb.Realised, denom)
	fmt.Printf("  lies injected: %d\n", fb.Lies)
	for prefix, lies := range fb.PerPrefixLies {
		for _, l := range lies {
			fmt.Printf("    %s: fake node at %s via %s cost %d\n",
				prefix, t.Name(l.Attach), t.Name(l.Via), l.Cost)
		}
	}

	// RSVP-TE baseline.
	rsvp, err := te.PlaceTunnels(t, demands)
	if err != nil {
		return err
	}
	fmt.Println("\n-- MPLS RSVP-TE baseline (CSPF tunnels) --")
	tb := metrics.NewTable("tunnels", "signal msgs", "state entries", "encap B/pkt", "max util")
	tb.AddRow(len(rsvp.Tunnels), rsvp.SignalingMessages, rsvp.StateEntries,
		rsvp.EncapBytesPerPacket, rsvp.MaxUtilisation)
	if err := tb.Render(os.Stdout); err != nil {
		return err
	}
	if len(rsvp.Unplaced) > 0 {
		fmt.Printf("  unplaced demands: %v\n", rsvp.Unplaced)
	}

	return planWhatIf(t, demands, loads, strategies)
}

// planWhatIf runs the controller's strategy planner analytically: it
// synthesises an alarm on the hottest link of the plain-IGP routing,
// fans the selected strategies out, and prints every proposal plus the
// plan the planner would commit.
func planWhatIf(t *topo.Topology, demands []topo.Demand, loads map[topo.LinkID]float64, strategies string) error {
	set, err := controller.ParseStrategies(strategies)
	if err != nil {
		return err
	}
	if len(set) == 0 {
		return nil
	}
	alarm, ok := controller.HottestLinkAlarm(t, loads)
	if !ok {
		return nil // uncapacitated topology: nothing to react to
	}
	planner := controller.NewPlanner(set...)
	ctx := controller.AnalyticPlanContext(t, demands, nil,
		controller.AlarmEvent(alarm), controller.Config{})
	fmt.Printf("\n-- reaction-strategy planner (alarm on %s at %.0f%%, base util %.3f) --\n",
		alarm.Name, 100*alarm.Utilisation, ctx.BaseUtil)

	plans, errs := planner.ProposeAll(ctx)
	tb := metrics.NewTable("strategy", "lies", "predicted util", "meets target", "rationale")
	for _, p := range plans {
		tb.AddRow(p.Strategy, p.TotalLies(), fmt.Sprintf("%.3f", p.PredictedUtil),
			p.PredictedUtil <= ctx.Target, p.Rationale)
	}
	if err := tb.Render(os.Stdout); err != nil {
		return err
	}
	for _, e := range errs {
		fmt.Printf("  strategy error: %v\n", e)
	}
	if winner := planner.Select(ctx, plans); winner != nil {
		fmt.Printf("  planner would commit: %s (%d lies, predicted util %.3f)\n",
			winner.Strategy, winner.TotalLies(), winner.PredictedUtil)
	} else {
		fmt.Println("  planner would commit: nothing (no admissible plan)")
	}
	return nil
}
