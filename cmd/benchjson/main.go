// Command benchjson converts `go test -bench` text output (read from
// stdin) into a JSON benchmark record, so baselines can be committed and
// diffed across PRs:
//
//	go test -run '^$' -bench . -benchmem -benchtime 1x . | go run ./cmd/benchjson -o BENCH_baseline.json
//
// With -baseline it becomes a regression gate instead: benchmarks on
// stdin whose names match -gate are compared against the committed
// baseline, and the command fails when ns/op regressed by more than
// -max-ratio. Run the benchmark with -count > 1 and the best of the
// repeats is compared, which keeps single-shot scheduler noise out of CI:
//
//	go test -run '^$' -bench IncrementalVsFull -benchtime 1x -count 5 . |
//	  go run ./cmd/benchjson -baseline BENCH_baseline.json -gate '/incremental$' -max-ratio 2
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"` // unit -> value, e.g. "ns/op"
}

// Baseline is the whole converted run.
type Baseline struct {
	GOOS   string `json:"goos,omitempty"`
	GOARCH string `json:"goarch,omitempty"`
	CPU    string `json:"cpu,omitempty"`
	// GOMAXPROCS of the run that produced the record (parsed from the
	// -N name suffix Go appends): parallel-core numbers only compare
	// meaningfully at equal pool widths.
	GOMAXPROCS int         `json:"gomaxprocs,omitempty"`
	Package    string      `json:"pkg,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	baselinePath := flag.String("baseline", "", "gate mode: compare stdin against this committed baseline instead of converting")
	gate := flag.String("gate", ".", "gate mode: regexp selecting which benchmark names are checked")
	maxRatio := flag.Float64("max-ratio", 2.0, "gate mode: fail when ns/op exceeds baseline by more than this factor")
	maxAllocs := flag.Float64("max-allocs-ratio", 0, "gate mode: fail when allocs/op exceeds baseline by more than this factor (0 disables; needs -benchmem on both sides)")
	flag.Parse()

	base := Baseline{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			base.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			base.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			base.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			base.Package = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBench(line); ok {
				base.Benchmarks = append(base.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(base.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	base.GOMAXPROCS = stripProcsSuffix(base.Benchmarks)

	if *baselinePath != "" {
		os.Exit(gateAgainstBaseline(base, *baselinePath, *gate, *maxRatio, *maxAllocs))
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(base); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// gateAgainstBaseline compares the current run (best ns/op and allocs/op
// per name over -count repeats) against the committed baseline and
// returns the exit code: 1 when any gated benchmark regressed beyond
// maxRatio (ns/op) or maxAllocs (allocs/op; 0 skips the alloc check), 0
// otherwise. Gated benchmarks missing from either side fail too — a
// silently dropped benchmark must not pass the gate.
func gateAgainstBaseline(cur Baseline, path, gate string, maxRatio, maxAllocs float64) int {
	re, err := regexp.Compile(gate)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: bad -gate: %v\n", err)
		return 2
	}
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 2
	}
	var base Baseline
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", path, err)
		return 2
	}
	best := make(map[string]float64)
	bestAllocs := make(map[string]float64)
	for _, b := range cur.Benchmarks {
		ns, ok := b.Metrics["ns/op"]
		if !ok || !re.MatchString(b.Name) {
			continue
		}
		if old, seen := best[b.Name]; !seen || ns < old {
			best[b.Name] = ns
		}
		if al, ok := b.Metrics["allocs/op"]; ok {
			if old, seen := bestAllocs[b.Name]; !seen || al < old {
				bestAllocs[b.Name] = al
			}
		}
	}
	failed := false
	matchedBase := 0
	for _, b := range base.Benchmarks {
		ns, ok := b.Metrics["ns/op"]
		if !ok || !re.MatchString(b.Name) {
			continue
		}
		matchedBase++
		got, ok := best[b.Name]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchjson: GATE FAIL %s: in baseline but not in this run\n", b.Name)
			failed = true
			continue
		}
		ratio := got / ns
		status := "ok"
		if got > ns*maxRatio {
			status = "GATE FAIL"
			failed = true
		}
		fmt.Printf("benchjson: %-9s %-60s %12.0f ns/op vs baseline %12.0f (%.2fx, limit %.1fx)\n",
			status, b.Name, got, ns, ratio, maxRatio)
		baseAl, haveBase := b.Metrics["allocs/op"]
		gotAl, haveCur := bestAllocs[b.Name]
		if maxAllocs <= 0 || !haveBase || baseAl == 0 {
			continue
		}
		if !haveCur {
			fmt.Fprintf(os.Stderr, "benchjson: GATE FAIL %s: baseline has allocs/op but this run does not (run with -benchmem)\n", b.Name)
			failed = true
			continue
		}
		status = "ok"
		if gotAl > baseAl*maxAllocs {
			status = "GATE FAIL"
			failed = true
		}
		fmt.Printf("benchjson: %-9s %-60s %12.0f allocs/op vs baseline %12.0f (%.2fx, limit %.2fx)\n",
			status, b.Name, gotAl, baseAl, gotAl/baseAl, maxAllocs)
	}
	if matchedBase == 0 {
		fmt.Fprintf(os.Stderr, "benchjson: GATE FAIL: no baseline benchmark matches %q\n", gate)
		return 1
	}
	if failed {
		return 1
	}
	return 0
}

// parseBench parses one result line:
//
//	BenchmarkName-8    1    15077193 ns/op    6367784 B/op    0.012 worst-ratio-error
func parseBench(line string) (Benchmark, bool) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{
		Name:       f[0],
		Iterations: iters,
		Metrics:    make(map[string]float64),
	}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[f[i+1]] = v
	}
	if len(b.Metrics) == 0 {
		return Benchmark{}, false
	}
	return b, true
}

// stripProcsSuffix removes the -GOMAXPROCS marker from every benchmark
// name so baselines from machines with different core counts stay
// diffable. The marker cannot be recognised from a single name (a
// sub-benchmark may legitimately end in -<number>, e.g.
// ScenarioScaling/waxman-24), but it is constant across a run and
// unambiguous on names without a '/': a Go identifier cannot contain
// '-'. Detect it there, then strip that exact suffix everywhere. If
// every name has sub-benchmarks (or GOMAXPROCS is 1, which adds no
// suffix) the names are left untouched.
//
// It returns the GOMAXPROCS the marker encodes (1 when a top-level name
// has no marker, 0 when no top-level name exists to decide from).
func stripProcsSuffix(benchmarks []Benchmark) int {
	marker := ""
	procs := 0
	for _, b := range benchmarks {
		if strings.ContainsRune(b.Name, '/') {
			continue
		}
		i := strings.LastIndexByte(b.Name, '-')
		if i < 0 {
			return 1 // top-level name without marker: GOMAXPROCS == 1
		}
		n, err := strconv.Atoi(b.Name[i+1:])
		if err != nil {
			return 1
		}
		marker, procs = b.Name[i:], n
		break
	}
	if marker == "" {
		return 0
	}
	for i := range benchmarks {
		benchmarks[i].Name = strings.TrimSuffix(benchmarks[i].Name, marker)
	}
	return procs
}
