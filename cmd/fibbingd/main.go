// Command fibbingd runs the demo as a live daemon: the emulated network
// and its Fibbing controller advance in real time (virtual clock paced to
// the wall clock), the network-wide SNMP agent listens on a real UDP port
// (snmpwalk-able with community "public"), and controller decisions are
// printed as they happen.
//
// Usage:
//
//	fibbingd [-listen 127.0.0.1:1161] [-duration 60s] [-rate 500K] [-no-controller]
//
// While it runs, inspect the live counters with e.g.:
//
//	snmpwalk -v2c -c public 127.0.0.1:1161 1.3.6.1.2.1.2.2.1.16
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"fibbing.net/fibbing/internal/controller"
	"fibbing.net/fibbing/internal/flashcrowd"
	"fibbing.net/fibbing/internal/metrics"
	"fibbing.net/fibbing/internal/snmp"
	"fibbing.net/fibbing/internal/topo"
	"fibbing.net/fibbing/internal/video"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:1161", "UDP address for the SNMP agent")
	duration := flag.Duration("duration", 60*time.Second, "how long to run the demo timeline")
	rate := flag.String("rate", "500K", "per-video bitrate")
	noCtrl := flag.Bool("no-controller", false, "disable the Fibbing controller (to see the stutter)")
	pace := flag.Float64("pace", 1.0, "virtual seconds per wall second (e.g. 10 for a fast replay)")
	strategies := flag.String("strategies", "", "comma-separated reaction strategies (empty keeps the stock set)")
	flag.Parse()

	if err := run(*listen, *duration, *rate, !*noCtrl, *pace, *strategies); err != nil {
		fmt.Fprintf(os.Stderr, "fibbingd: %v\n", err)
		os.Exit(1)
	}
}

// lockedTransport serialises SNMP agent access with the pacing loop, so
// external snmpwalks observe a consistent simulation snapshot.
type lockedTransport struct {
	mu    *sync.Mutex
	agent *snmp.Agent
}

func (l lockedTransport) handle(req []byte) []byte {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.agent.HandleRequest(req)
}

func run(listen string, duration time.Duration, rateSpec string, withCtrl bool, pace float64, strategies string) error {
	videoRate, err := topo.ParseBits(rateSpec)
	if err != nil {
		return err
	}
	if pace <= 0 {
		return fmt.Errorf("pace must be positive")
	}
	strategySet, err := controller.ParseStrategies(strategies)
	if err != nil {
		return err
	}

	sim, err := controller.NewSim(controller.SimOpts{
		WithCtrl: withCtrl, TrackPlayers: true, Strategies: strategySet,
	})
	if err != nil {
		return err
	}
	if err := sim.Runner.Schedule(flashcrowd.Fig2Schedule(videoRate)); err != nil {
		return err
	}

	// Real SNMP agent over the simulated counters, guarded by the pacing
	// mutex: only one of (scheduler step, SNMP query) runs at a time.
	var mu sync.Mutex
	mib := snmp.NewMIB()
	snmp.BindIFMIB(mib, sim.Net, topo.NoNode)
	agent := snmp.NewAgent("public", mib)
	lt := lockedTransport{mu: &mu, agent: agent}

	conn, err := net.ListenPacket("udp", listen)
	if err != nil {
		return err
	}
	defer conn.Close()
	go serveLocked(conn, lt)
	fmt.Printf("fibbingd: SNMP agent on %s (community public); controller=%v; running %v at %gx\n",
		conn.LocalAddr(), withCtrl, duration, pace)

	start := time.Now()
	decisionsSeen := 0
	ticker := time.NewTicker(100 * time.Millisecond)
	defer ticker.Stop()
	for now := range ticker.C {
		virtual := time.Duration(float64(now.Sub(start)) * pace)
		if virtual > duration {
			virtual = duration
		}
		mu.Lock()
		sim.Run(virtual)
		for _, d := range sim.Ctrl.Decisions[decisionsSeen:] {
			fmt.Printf("t=%-6v %-18s lies=%d  %s\n", d.At, d.Strategy, d.Lies, d.Detail)
			decisionsSeen++
		}
		mu.Unlock()
		if virtual >= duration {
			break
		}
	}

	mu.Lock()
	defer mu.Unlock()
	fmt.Println("\nfinal link throughput (byte/s):")
	var series []*metrics.Series
	for _, pair := range [][2]string{{"A", "R1"}, {"B", "R2"}, {"B", "R3"}} {
		s, err := sim.Net.SeriesBetween(pair[0], pair[1])
		if err != nil {
			return err
		}
		series = append(series, s)
	}
	if err := metrics.SeriesTable(5*time.Second, series...).Render(os.Stdout); err != nil {
		return err
	}
	agg := video.AggregateQoE(sim.QoE())
	fmt.Printf("\nQoE: %d sessions, %d smooth, %d stalls, mean rebuffer %.1f%%\n",
		agg.Sessions, agg.SmoothSessions, agg.TotalStalls, 100*agg.MeanRebuffer)
	fmt.Printf("live lies: %d, max utilisation: %.2f\n", sim.Lies.LieCount(), sim.Net.MaxUtilisation())
	return nil
}

func serveLocked(conn net.PacketConn, lt lockedTransport) {
	buf := make([]byte, 64*1024)
	for {
		n, addr, err := conn.ReadFrom(buf)
		if err != nil {
			return
		}
		if resp := lt.handle(buf[:n]); resp != nil {
			if _, err := conn.WriteTo(resp, addr); err != nil {
				return
			}
		}
	}
}
