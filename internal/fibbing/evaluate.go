package fibbing

import (
	"fmt"

	"fibbing.net/fibbing/internal/spf"
	"fibbing.net/fibbing/internal/topo"
)

// RouteView is the analytically computed forwarding behaviour of one
// router for one prefix.
type RouteView struct {
	// Local marks the prefix's attachment router(s).
	Local bool
	// Dist is the router's distance to the prefix (through lies if they
	// win), spf.Infinity if unreachable.
	Dist int64
	// NextHops is the weighted ECMP next-hop set.
	NextHops NextHopWeights
}

// Evaluate computes, for every router, the route it would install for the
// named prefix given a set of lies. It mirrors the route computation of
// internal/ospf exactly (same announcement and next-hop-weight semantics)
// but runs on the topology directly, without protocol machinery — this is
// what the controller uses to predict the effect of an augmentation before
// injecting it.
func Evaluate(t *topo.Topology, prefixName string, lies []Lie) (map[topo.NodeID]RouteView, error) {
	p, ok := t.PrefixByName(prefixName)
	if !ok {
		return nil, fmt.Errorf("fibbing: unknown prefix %q", prefixName)
	}
	for _, l := range lies {
		if l.Prefix != p.Prefix {
			return nil, fmt.Errorf("fibbing: lie %v targets a different prefix than %v", l, p.Prefix)
		}
		if _, ok := t.FindLink(l.Attach, l.Via); !ok {
			return nil, fmt.Errorf("fibbing: lie %v forwards via a non-neighbor", l)
		}
		if l.Cost < 0 {
			return nil, fmt.Errorf("fibbing: lie %v has negative cost", l)
		}
	}

	// Augmented graph: real topology plus one leaf node per lie.
	g := spf.FromTopology(t)
	lieNode := make(map[topo.NodeID]Lie, len(lies)) // graph node -> lie
	for _, l := range lies {
		idx := g.AddNode()
		g.AddEdge(l.Attach, spf.Edge{To: idx, Weight: l.Cost, Link: topo.NoLink})
		lieNode[idx] = l
	}
	attached := make(map[topo.NodeID]int64, len(p.Attachments))
	for _, a := range p.Attachments {
		attached[a.Node] = a.Cost
	}

	out := make(map[topo.NodeID]RouteView, t.NumNodes())
	for _, n := range t.Nodes() {
		if n.Host {
			continue
		}
		u := n.ID
		if _, ok := attached[u]; ok {
			out[u] = RouteView{Local: true, NextHops: NextHopWeights{}}
			continue
		}
		tree := spf.ComputeRouters(g, t, u)

		best := spf.Infinity
		for a, cost := range attached {
			if tree.Reachable(a) && tree.Dist[a]+cost < best {
				best = tree.Dist[a] + cost
			}
		}
		for idx := range lieNode {
			if tree.Reachable(idx) && tree.Dist[idx] < best {
				best = tree.Dist[idx]
			}
		}
		view := RouteView{Dist: best, NextHops: NextHopWeights{}}
		if best == spf.Infinity {
			out[u] = view
			continue
		}
		set := make(map[topo.NodeID]bool)
		for a, cost := range attached {
			if !tree.Reachable(a) || tree.Dist[a]+cost != best {
				continue
			}
			for _, nh := range tree.NextHops(a) {
				set[nh.Node] = true
			}
		}
		for idx, l := range lieNode {
			if !tree.Reachable(idx) || tree.Dist[idx] != best {
				continue
			}
			if l.Attach == u {
				// Own fake: one extra RIB path to its forwarding
				// address (additive — the Fibbing trick).
				view.NextHops[l.Via]++
				continue
			}
			for _, nh := range tree.NextHops(idx) {
				if _, isLie := lieNode[nh.Node]; isLie {
					// First hop is a fake node: only possible when
					// u == attach, handled above.
					continue
				}
				set[nh.Node] = true
			}
		}
		for v := range set {
			view.NextHops[v]++
		}
		out[u] = view
	}
	return out, nil
}

// IGPView computes the plain-IGP routes for a prefix (no lies).
func IGPView(t *topo.Topology, prefixName string) (map[topo.NodeID]RouteView, error) {
	return Evaluate(t, prefixName, nil)
}

// ForwardingGraph extracts the per-destination forwarding edges from a set
// of route views: one edge per (router, next hop).
func ForwardingGraph(views map[topo.NodeID]RouteView) map[topo.NodeID][]topo.NodeID {
	out := make(map[topo.NodeID][]topo.NodeID, len(views))
	for u, v := range views {
		for nh := range v.NextHops {
			out[u] = append(out[u], nh)
		}
	}
	return out
}

// CheckDelivery verifies that the forwarding graph induced by views is
// loop-free and that every router with a route eventually reaches a Local
// router. This is the safety property every augmentation must preserve.
func CheckDelivery(t *topo.Topology, views map[topo.NodeID]RouteView) error {
	const (
		white = 0 // unvisited
		grey  = 1 // on stack
		black = 2 // proven to deliver
	)
	state := make(map[topo.NodeID]int, len(views))
	var visit func(u topo.NodeID) error
	visit = func(u topo.NodeID) error {
		v, ok := views[u]
		if !ok {
			return fmt.Errorf("fibbing: traffic forwarded to %s which has no route", t.Name(u))
		}
		if v.Local {
			return nil
		}
		switch state[u] {
		case grey:
			return fmt.Errorf("fibbing: forwarding loop through %s", t.Name(u))
		case black:
			return nil
		}
		if len(v.NextHops) == 0 {
			return fmt.Errorf("fibbing: %s has no next hops and is not local", t.Name(u))
		}
		state[u] = grey
		for nh := range v.NextHops {
			if err := visit(nh); err != nil {
				return err
			}
		}
		state[u] = black
		return nil
	}
	for u, v := range views {
		if v.Dist == spf.Infinity && !v.Local {
			continue // unreachable routers carry no traffic
		}
		if err := visit(u); err != nil {
			return err
		}
	}
	return nil
}
