package fibbing

import (
	"math"
	"testing"
)

// TestApproxWeightsDropsSolverNoise: an LP solved at Gbit magnitudes
// reports residual flows as split fractions of ~1e-12 relative size.
// Those must quantise to weight 0, not be pinned up to a real ECMP path.
func TestApproxWeightsDropsSolverNoise(t *testing.T) {
	w, err := ApproxWeights([]float64{0.6, 0.4, 1e-12}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if w[2] != 0 {
		t.Fatalf("noise fraction got weight %d, want 0 (weights %v)", w[2], w)
	}
	if w[0] != 3 || w[1] != 2 {
		t.Fatalf("weights %v, want [3 2 0]", w)
	}
	// At absolute Gbit magnitudes (ApproxWeights normalises internally).
	w, err = ApproxWeights([]float64{0.6e9, 0.4e9, 1e-3}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if w[0] != 3 || w[1] != 2 || w[2] != 0 {
		t.Fatalf("Gbit-scale weights %v, want [3 2 0]", w)
	}
}

// TestApproxWeightsNoiseOnlyVectorErrors: when every fraction is noise
// relative to the sum... it cannot happen (shares are relative), but a
// vector whose sum is carried by fractions all above the cutoff must be
// unaffected by uniform scaling, tiny or huge.
func TestApproxWeightsScaleInvariant(t *testing.T) {
	for _, scale := range []float64{1e-9, 1, 1e11} {
		w, err := ApproxWeights([]float64{2 * scale, 1 * scale}, 4)
		if err != nil {
			t.Fatalf("scale %g: %v", scale, err)
		}
		if w[0] != 2 || w[1] != 1 {
			t.Fatalf("scale %g: weights %v, want [2 1]", scale, w)
		}
	}
}

// TestNegligibleSplitBelowWeightResolution documents the invariant that
// makes the cutoff safe: no realisable weight vector could honour a
// dropped fraction anyway.
func TestNegligibleSplitBelowWeightResolution(t *testing.T) {
	const maxReasonableDenom = 1024
	if NegligibleSplit >= 1.0/maxReasonableDenom {
		t.Fatalf("NegligibleSplit %g not far below the smallest expressible share %g",
			NegligibleSplit, 1.0/maxReasonableDenom)
	}
	if math.IsNaN(NegligibleSplit) || NegligibleSplit <= 0 {
		t.Fatal("NegligibleSplit must be a small positive constant")
	}
}
