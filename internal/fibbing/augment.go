package fibbing

import (
	"fmt"
	"slices"

	"fibbing.net/fibbing/internal/topo"
)

// Augmentation is a computed set of lies realising a requirement, plus
// bookkeeping for the overhead experiments.
type Augmentation struct {
	Prefix string
	Lies   []Lie
	// Strategy records which algorithm produced the lies.
	Strategy string
}

// LieCount returns the number of fake nodes the augmentation injects — the
// control-plane overhead metric the paper compares against RSVP-TE tunnels.
func (a *Augmentation) LieCount() int { return len(a.Lies) }

// AugmentAddPaths computes lies for the demo's use case: routers in the
// DAG keep their current IGP next hops and gain additional (possibly
// duplicated) equal-cost paths. Each lie's cost equals the router's
// current IGP distance, which provably leaves every other router's routing
// unchanged: no distance in the network changes, and deduplicated
// first-hop sets stay identical.
//
// Requirements: for every constrained router, the desired next-hop set
// must include all current IGP next hops (you cannot remove a path with an
// equal-cost lie — use AugmentPinAll for that).
func AugmentAddPaths(t *topo.Topology, prefixName string, dag DAG) (*Augmentation, error) {
	if err := dag.Validate(t); err != nil {
		return nil, err
	}
	p, ok := t.PrefixByName(prefixName)
	if !ok {
		return nil, fmt.Errorf("fibbing: unknown prefix %q", prefixName)
	}
	igp, err := IGPView(t, prefixName)
	if err != nil {
		return nil, err
	}
	aug := &Augmentation{Prefix: prefixName, Strategy: "add-paths"}
	for _, u := range sortedRouters(dag) {
		desired := dag[u]
		view, ok := igp[u]
		if !ok || view.Local {
			return nil, fmt.Errorf("fibbing: cannot constrain attachment router %s", t.Name(u))
		}
		if view.NextHops.Equal(desired) {
			continue // already satisfied
		}
		// Scale check: desired must cover the IGP next hops.
		for nh := range view.NextHops {
			if desired[nh] == 0 {
				return nil, fmt.Errorf(
					"fibbing: add-paths cannot remove %s's IGP next hop %s (use pin-all)",
					t.Name(u), t.Name(nh))
			}
		}
		// The IGP contributes weight 1 per existing next hop; lies make
		// up the difference. Normalise to the smallest equivalent
		// weights first so we do not inject more fakes than needed.
		norm := normalise(desired)
		for _, v := range sortedNextHops(norm) {
			w := norm[v]
			need := w
			if view.NextHops[v] > 0 {
				need = w - 1 // the real path supplies one RIB entry
			}
			for i := 0; i < need; i++ {
				aug.Lies = append(aug.Lies, Lie{
					Prefix: p.Prefix, Attach: u, Via: v, Cost: view.Dist,
				})
			}
		}
	}
	return aug, nil
}

// AugmentPinAll realises an arbitrary acyclic forwarding DAG by pinning
// every non-attachment router with cost-0 lies (the paper's "Simple"-style
// global augmentation): a router whose announcements include a cost-0 fake
// prefers it over every real path (all link weights are >= 1) and over
// every remote fake (reaching another router costs >= 1), so each router's
// FIB becomes exactly its lies. Routers not constrained by the DAG are
// pinned to their current IGP next hops, preserving their behaviour.
//
// This realises any loop-free DAG — including ones that remove IGP paths —
// at the price of lying to every router; ReduceLies then shrinks the set.
func AugmentPinAll(t *topo.Topology, prefixName string, dag DAG) (*Augmentation, error) {
	if err := dag.Validate(t); err != nil {
		return nil, err
	}
	p, ok := t.PrefixByName(prefixName)
	if !ok {
		return nil, fmt.Errorf("fibbing: unknown prefix %q", prefixName)
	}
	igp, err := IGPView(t, prefixName)
	if err != nil {
		return nil, err
	}
	attached := make(map[topo.NodeID]bool, len(p.Attachments))
	for _, a := range p.Attachments {
		attached[a.Node] = true
	}
	aug := &Augmentation{Prefix: prefixName, Strategy: "pin-all"}
	for _, n := range t.Nodes() {
		if n.Host || attached[n.ID] {
			continue
		}
		u := n.ID
		nhs, constrained := dag[u]
		if !constrained {
			view := igp[u]
			if len(view.NextHops) == 0 {
				continue // disconnected from the prefix
			}
			nhs = view.NextHops
		}
		if constrained {
			if v, ok := dag[u]; ok && attachedLoopCheck(v, u) {
				return nil, fmt.Errorf("fibbing: %s lists itself as next hop", t.Name(u))
			}
		}
		norm := normalise(nhs)
		for _, v := range sortedNextHops(norm) {
			for i := 0; i < norm[v]; i++ {
				aug.Lies = append(aug.Lies, Lie{Prefix: p.Prefix, Attach: u, Via: v, Cost: 0})
			}
		}
	}
	// Safety: the realised forwarding must deliver without loops.
	views, err := Evaluate(t, prefixName, aug.Lies)
	if err != nil {
		return nil, err
	}
	if err := CheckDelivery(t, views); err != nil {
		return nil, fmt.Errorf("fibbing: pin-all would not deliver: %w", err)
	}
	return aug, nil
}

func attachedLoopCheck(w NextHopWeights, u topo.NodeID) bool {
	_, ok := w[u]
	return ok
}

// ReduceLies greedily removes lies whose removal keeps the network
// consistent with the requirement (the Merger-style minimisation pass):
// it drops one router's lie group at a time, re-evaluates the whole
// network, and keeps the removal when every constrained router still
// realises its desired split and every other router still matches the
// routing it had under the full augmentation.
func ReduceLies(t *topo.Topology, prefixName string, aug *Augmentation, dag DAG) (*Augmentation, error) {
	target, err := Evaluate(t, prefixName, aug.Lies)
	if err != nil {
		return nil, err
	}
	current := append([]Lie(nil), aug.Lies...)

	// Group lies by attachment router; removal is attempted per group
	// (removing half a router's lies changes its split).
	groups := make(map[topo.NodeID][]Lie)
	for _, l := range current {
		groups[l.Attach] = append(groups[l.Attach], l)
	}
	routers := make([]topo.NodeID, 0, len(groups))
	for u := range groups {
		routers = append(routers, u)
	}
	slices.Sort(routers)

	for _, u := range routers {
		if _, constrained := dag[u]; constrained {
			// Never drop a constrained router's lies wholesale if its
			// IGP routing differs from the requirement; the check
			// below would catch it, but skipping saves evaluations
			// when the requirement is clearly non-default.
			igp, err := IGPView(t, prefixName)
			if err != nil {
				return nil, err
			}
			if !igp[u].NextHops.Equal(dag[u]) {
				continue
			}
		}
		trial := withoutGroup(current, u)
		views, err := Evaluate(t, prefixName, trial)
		if err != nil {
			return nil, err
		}
		if viewsMatch(views, target) && CheckDelivery(t, views) == nil {
			current = trial
		}
	}
	return &Augmentation{
		Prefix:   aug.Prefix,
		Lies:     current,
		Strategy: aug.Strategy + "+reduced",
	}, nil
}

func withoutGroup(lies []Lie, u topo.NodeID) []Lie {
	out := make([]Lie, 0, len(lies))
	for _, l := range lies {
		if l.Attach != u {
			out = append(out, l)
		}
	}
	return out
}

func viewsMatch(got, want map[topo.NodeID]RouteView) bool {
	if len(got) != len(want) {
		return false
	}
	for u, w := range want {
		g, ok := got[u]
		if !ok || g.Local != w.Local {
			return false
		}
		if !g.NextHops.Equal(w.NextHops) {
			return false
		}
	}
	return true
}

// Verify checks that a set of lies realises the requirement: every
// constrained router's evaluated next hops equal the desired weights (up
// to scaling), every unconstrained router still matches plain IGP routing,
// and forwarding delivers loop-free.
func Verify(t *topo.Topology, prefixName string, lies []Lie, dag DAG) error {
	views, err := Evaluate(t, prefixName, lies)
	if err != nil {
		return err
	}
	igp, err := IGPView(t, prefixName)
	if err != nil {
		return err
	}
	for u, want := range dag {
		got, ok := views[u]
		if !ok {
			return fmt.Errorf("fibbing: no route computed for %s", t.Name(u))
		}
		if !got.NextHops.Equal(want) {
			return fmt.Errorf("fibbing: %s realises %v, want %v", t.Name(u), got.NextHops, want)
		}
	}
	for u, ref := range igp {
		if _, constrained := dag[u]; constrained {
			continue
		}
		got := views[u]
		if got.Local != ref.Local || !got.NextHops.Equal(ref.NextHops) {
			return fmt.Errorf("fibbing: lie leaked: %s moved from %v to %v",
				t.Name(u), ref.NextHops, got.NextHops)
		}
	}
	return CheckDelivery(t, views)
}

func normalise(w NextHopWeights) NextHopWeights {
	g := w.gcd()
	if g <= 1 {
		return w
	}
	out := make(NextHopWeights, len(w))
	for n, v := range w {
		out[n] = v / g
	}
	return out
}

func sortedRouters(d DAG) []topo.NodeID {
	out := make([]topo.NodeID, 0, len(d))
	for u := range d {
		out = append(out, u)
	}
	slices.Sort(out)
	return out
}

func sortedNextHops(w NextHopWeights) []topo.NodeID {
	out := make([]topo.NodeID, 0, len(w))
	for v := range w {
		out = append(out, v)
	}
	slices.Sort(out)
	return out
}

// Fig1DAG returns the paper's Figure 1c/1d requirement on a Fig1 topology:
// B splits evenly over {R2, R3}; A splits 1/3 : 2/3 over {B, R1}.
func Fig1DAG(t *topo.Topology) DAG {
	return DAG{
		t.MustNode(topo.Fig1B): {t.MustNode(topo.Fig1R2): 1, t.MustNode(topo.Fig1R3): 1},
		t.MustNode(topo.Fig1A): {t.MustNode(topo.Fig1B): 1, t.MustNode(topo.Fig1R1): 2},
	}
}
