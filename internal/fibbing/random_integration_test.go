package fibbing

import (
	"math/rand"
	"testing"
	"time"

	"fibbing.net/fibbing/internal/event"
	"fibbing.net/fibbing/internal/ospf"
	"fibbing.net/fibbing/internal/spf"
	"fibbing.net/fibbing/internal/topo"
)

// TestRandomAugmentationsMatchProtocol is the strongest consistency check
// in the repository: on random topologies with randomly chosen safe
// (downhill) requirements, the lies computed by the augmentation are
// injected into a *running IGP* and every router's flooded, SPF-computed
// FIB must match the analytic evaluator's prediction, weight for weight.
func TestRandomAugmentationsMatchProtocol(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		tp := topo.RandomConnected(topo.RandomOpts{
			Nodes: 9, Degree: 3, MaxWeight: 4, Prefixes: 1, Seed: seed,
		})
		dag, ok := randomDownhillDAG(tp, "d0", seed)
		if !ok {
			continue // no safe candidate on this topology
		}
		aug, err := AugmentAddPaths(tp, "d0", dag)
		if err != nil {
			t.Fatalf("seed %d: augment: %v", seed, err)
		}
		if err := Verify(tp, "d0", aug.Lies, dag); err != nil {
			t.Fatalf("seed %d: verify: %v", seed, err)
		}
		want, err := Evaluate(tp, "d0", aug.Lies)
		if err != nil {
			t.Fatalf("seed %d: evaluate: %v", seed, err)
		}

		d := ospf.NewDomain(tp, event.NewScheduler(), ospf.Config{})
		d.Start()
		if _, err := d.RunUntilConverged(120 * time.Second); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		inj := d.Router(topo.NodeID(0))
		for i, lie := range aug.Lies {
			if err := inj.OriginateForeign(lie.ToLSA(ospf.ControllerIDBase, uint32(i)+1, 1)); err != nil {
				t.Fatalf("seed %d: inject: %v", seed, err)
			}
		}
		if _, err := d.RunUntilConverged(d.Scheduler().Now() + 300*time.Second); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(d.Errors) > 0 {
			t.Fatalf("seed %d: protocol errors: %v", seed, d.Errors)
		}

		p, _ := tp.PrefixByName("d0")
		for node, view := range want {
			r := d.Router(node)
			route, ok := r.FIB().Lookup(p.Prefix.Addr())
			switch {
			case view.Local:
				if !ok || !route.Local {
					t.Fatalf("seed %d: %s want local, got %+v", seed, tp.Name(node), route)
				}
			case len(view.NextHops) == 0:
				if ok && !route.Local {
					t.Fatalf("seed %d: %s unexpected route %+v", seed, tp.Name(node), route)
				}
			default:
				if !ok {
					t.Fatalf("seed %d: %s missing route, want %v", seed, tp.Name(node), view.NextHops)
				}
				got := NextHopWeights{}
				for _, nh := range route.NextHops {
					got[nh.Node] += nh.Weight
				}
				if !got.Equal(view.NextHops) {
					t.Fatalf("seed %d: %s FIB %v != evaluator %v", seed, tp.Name(node), got, view.NextHops)
				}
			}
		}
	}
}

// randomDownhillDAG builds a random safe requirement: pick up to two
// routers, each keeping its IGP next hops and adding one unused downhill
// neighbor with a random weight.
func randomDownhillDAG(tp *topo.Topology, prefix string, seed int64) (DAG, bool) {
	views, err := IGPView(tp, prefix)
	if err != nil {
		return nil, false
	}
	rng := rand.New(rand.NewSource(seed))
	dag := DAG{}
	nodes := tp.Nodes()
	rng.Shuffle(len(nodes), func(i, j int) { nodes[i], nodes[j] = nodes[j], nodes[i] })
	for _, n := range nodes {
		if len(dag) == 2 {
			break
		}
		u := n.ID
		uv, ok := views[u]
		if !ok || uv.Local || len(uv.NextHops) == 0 || uv.Dist == spf.Infinity {
			continue
		}
		var candidate topo.NodeID = topo.NoNode
		for _, lid := range tp.OutLinks(u) {
			v := tp.Link(lid).To
			vv, ok := views[v]
			if !ok || uv.NextHops[v] > 0 {
				continue
			}
			if vv.Local || (len(vv.NextHops) > 0 && vv.Dist < uv.Dist) {
				candidate = v
				break
			}
		}
		if candidate == topo.NoNode {
			continue
		}
		desired := NextHopWeights{candidate: 1 + rng.Intn(3)}
		for nh := range uv.NextHops {
			desired[nh] = 1
		}
		dag[u] = desired
	}
	return dag, len(dag) > 0
}
