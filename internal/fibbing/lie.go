// Package fibbing implements the paper's contribution: computing the fake
// nodes ("lies") a Fibbing controller injects into a link-state IGP so the
// routers' ECMP machinery realises an arbitrary per-destination forwarding
// DAG — including uneven splitting ratios obtained by injecting duplicate
// equal-cost fake next hops.
//
// The package is pure control-plane logic: it reasons about a topology and
// produces lies. Turning lies into flooded LSAs is the southbound's job;
// an analytic evaluator (Evaluate) mirrors the routers' route computation
// so augmentations can be verified before touching the network.
package fibbing

import (
	"fmt"
	"net/netip"

	"fibbing.net/fibbing/internal/ospf"
	"fibbing.net/fibbing/internal/topo"
)

// Lie is one fake node: attached to Attach, announcing Prefix at total
// cost Cost (as seen from Attach), resolving to physical next hop Via.
type Lie struct {
	Prefix netip.Prefix
	// Attach is the router the fake node hangs off; only this router's
	// FIB resolves the fake node to a physical next hop.
	Attach topo.NodeID
	// Via is the physical neighbor of Attach that receives the traffic
	// (the forwarding address of the fake announcement).
	Via topo.NodeID
	// Cost is the total cost of the path through the fake node as seen
	// by Attach. Equal to the router's current IGP distance it adds an
	// equal-cost path; lower, it overrides the IGP path.
	Cost int64
}

func (l Lie) String() string {
	return fmt.Sprintf("lie{%v @%d via %d cost %d}", l.Prefix, l.Attach, l.Via, l.Cost)
}

// ToLSA converts the lie to its protocol representation. lsid must be
// unique per live lie within the advertising controller; seq orders
// re-originations.
func (l Lie) ToLSA(adv ospf.RouterID, lsid, seq uint32) *ospf.LSA {
	// Decomposition: the fake link carries the whole cost, the fake
	// node's announcement is free. Any split summing to Cost behaves
	// identically; this one keeps Metric=0 so the LSA mirrors the
	// paper's "fake node announcing the prefix" picture.
	return &ospf.LSA{
		Header:     ospf.Header{Type: ospf.TypeFake, AdvRouter: adv, LSID: lsid, Seq: seq},
		Prefix:     l.Prefix,
		Metric:     0,
		AttachedTo: ospf.NodeRouterID(l.Attach),
		AttachCost: uint32(l.Cost),
		ForwardVia: ospf.NodeRouterID(l.Via),
	}
}

// NextHopWeights is a desired (or computed) weighted next-hop set for one
// router: next-hop node -> number of equal-cost RIB paths.
type NextHopWeights map[topo.NodeID]int

// Total returns the sum of the weights.
func (w NextHopWeights) Total() int {
	total := 0
	for _, v := range w {
		total += v
	}
	return total
}

// Equal compares two weighted sets after normalising by their GCD, so
// {B:1,R1:2} equals {B:2,R1:4} (identical split behaviour).
func (w NextHopWeights) Equal(other NextHopWeights) bool {
	if len(w) != len(other) {
		return false
	}
	gw, go_ := w.gcd(), other.gcd()
	if gw == 0 || go_ == 0 {
		return len(w) == 0 && len(other) == 0
	}
	for n, v := range w {
		ov, ok := other[n]
		if !ok || v/gw != ov/go_ {
			return false
		}
	}
	return true
}

func (w NextHopWeights) gcd() int {
	g := 0
	for _, v := range w {
		g = gcd(g, v)
	}
	return g
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// DAG is a desired per-destination forwarding DAG: the routers whose
// forwarding behaviour the controller constrains, each with its weighted
// next hops. Routers absent from the map keep their IGP routing.
type DAG map[topo.NodeID]NextHopWeights

// Validate checks structural sanity against a topology: every next hop is
// a direct neighbor, weights are positive, and the DAG (combined with IGP
// defaults for unconstrained routers) will be checked for loops by Verify.
func (d DAG) Validate(t *topo.Topology) error {
	for u, nhs := range d {
		if t.Node(u).Host {
			return fmt.Errorf("fibbing: DAG constrains host %s", t.Name(u))
		}
		if len(nhs) == 0 {
			return fmt.Errorf("fibbing: DAG entry for %s has no next hops", t.Name(u))
		}
		for v, w := range nhs {
			if w < 1 {
				return fmt.Errorf("fibbing: weight %d for %s->%s", w, t.Name(u), t.Name(v))
			}
			if _, ok := t.FindLink(u, v); !ok {
				return fmt.Errorf("fibbing: %s->%s is not a link", t.Name(u), t.Name(v))
			}
		}
	}
	return nil
}
