package fibbing

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"fibbing.net/fibbing/internal/spf"
	"fibbing.net/fibbing/internal/topo"
)

func fig1() *topo.Topology { return topo.Fig1(topo.Fig1Opts{}) }

func nodeByName(t *topo.Topology, name string) topo.NodeID { return t.MustNode(name) }

func TestIGPViewFig1a(t *testing.T) {
	tp := fig1()
	views, err := IGPView(tp, topo.Fig1BluePrefixName)
	if err != nil {
		t.Fatal(err)
	}
	a, b, c := tp.MustNode("A"), tp.MustNode("B"), tp.MustNode("C")
	if !views[c].Local {
		t.Fatalf("C should be local")
	}
	if views[a].Dist != 3 || len(views[a].NextHops) != 1 || views[a].NextHops[b] != 1 {
		t.Fatalf("A view = %+v", views[a])
	}
	if views[b].Dist != 2 || views[b].NextHops[tp.MustNode("R2")] != 1 || len(views[b].NextHops) != 1 {
		t.Fatalf("B view = %+v", views[b])
	}
}

// TestFig1cAugmentation pins the headline result: the paper's requirement
// is realised by exactly three lies with the paper's costs — fB at B with
// cost 2 via R3, and two fA at A with cost 3 via R1.
func TestFig1cAugmentation(t *testing.T) {
	tp := fig1()
	dag := Fig1DAG(tp)
	aug, err := AugmentAddPaths(tp, topo.Fig1BluePrefixName, dag)
	if err != nil {
		t.Fatal(err)
	}
	if aug.LieCount() != 3 {
		t.Fatalf("lie count = %d, want 3: %v", aug.LieCount(), aug.Lies)
	}
	a, b := tp.MustNode("A"), tp.MustNode("B")
	r1, r3 := tp.MustNode("R1"), tp.MustNode("R3")
	var fB, fA int
	for _, l := range aug.Lies {
		switch {
		case l.Attach == b && l.Via == r3 && l.Cost == 2:
			fB++
		case l.Attach == a && l.Via == r1 && l.Cost == 3:
			fA++
		default:
			t.Fatalf("unexpected lie %v", l)
		}
	}
	if fB != 1 || fA != 2 {
		t.Fatalf("fB=%d fA=%d, want 1 and 2", fB, fA)
	}
	if err := Verify(tp, topo.Fig1BluePrefixName, aug.Lies, dag); err != nil {
		t.Fatal(err)
	}
}

func TestFig1dSplitRatios(t *testing.T) {
	tp := fig1()
	dag := Fig1DAG(tp)
	aug, err := AugmentAddPaths(tp, topo.Fig1BluePrefixName, dag)
	if err != nil {
		t.Fatal(err)
	}
	views, err := Evaluate(tp, topo.Fig1BluePrefixName, aug.Lies)
	if err != nil {
		t.Fatal(err)
	}
	a, b := tp.MustNode("A"), tp.MustNode("B")
	// A: 1/3 to B, 2/3 to R1.
	av := views[a].NextHops
	if av[b] != 1 || av[tp.MustNode("R1")] != 2 {
		t.Fatalf("A splits = %v", av)
	}
	// B: even between R2 and R3.
	bv := views[b].NextHops
	if bv[tp.MustNode("R2")] != 1 || bv[tp.MustNode("R3")] != 1 {
		t.Fatalf("B splits = %v", bv)
	}
}

func TestAddPathsNoopWhenSatisfied(t *testing.T) {
	tp := fig1()
	dag := DAG{tp.MustNode("A"): NextHopWeights{tp.MustNode("B"): 1}}
	aug, err := AugmentAddPaths(tp, topo.Fig1BluePrefixName, dag)
	if err != nil {
		t.Fatal(err)
	}
	if aug.LieCount() != 0 {
		t.Fatalf("satisfied requirement produced %d lies", aug.LieCount())
	}
}

func TestAddPathsRejectsRemoval(t *testing.T) {
	tp := fig1()
	// A's IGP next hop is B; requiring R1-only removes it.
	dag := DAG{tp.MustNode("A"): NextHopWeights{tp.MustNode("R1"): 1}}
	if _, err := AugmentAddPaths(tp, topo.Fig1BluePrefixName, dag); err == nil {
		t.Fatalf("removal requirement accepted by add-paths")
	}
}

func TestAddPathsRejectsAttachmentRouter(t *testing.T) {
	tp := fig1()
	dag := DAG{tp.MustNode("C"): NextHopWeights{tp.MustNode("R2"): 1}}
	if _, err := AugmentAddPaths(tp, topo.Fig1BluePrefixName, dag); err == nil {
		t.Fatalf("constraining attachment router accepted")
	}
}

func TestDAGValidate(t *testing.T) {
	tp := topo.Fig1(topo.Fig1Opts{WithHosts: true})
	bad := []DAG{
		{tp.MustNode("A"): NextHopWeights{tp.MustNode("R2"): 1}}, // not a neighbor
		{tp.MustNode("A"): NextHopWeights{tp.MustNode("B"): 0}},  // zero weight
		{tp.MustNode("A"): NextHopWeights{}},                     // empty
		{tp.MustNode("S1"): NextHopWeights{tp.MustNode("B"): 1}}, // host
	}
	for i, d := range bad {
		if err := d.Validate(tp); err == nil {
			t.Errorf("case %d: invalid DAG accepted", i)
		}
	}
}

// TestPinAllOverridesIGP exercises the general augmentation: force B to use
// R3 only (removing the IGP path via R2), which add-paths cannot do.
func TestPinAllOverridesIGP(t *testing.T) {
	tp := fig1()
	dag := DAG{tp.MustNode("B"): NextHopWeights{tp.MustNode("R3"): 1}}
	aug, err := AugmentPinAll(tp, topo.Fig1BluePrefixName, dag)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(tp, topo.Fig1BluePrefixName, aug.Lies, dag); err != nil {
		t.Fatal(err)
	}
	views, err := Evaluate(tp, topo.Fig1BluePrefixName, aug.Lies)
	if err != nil {
		t.Fatal(err)
	}
	b := views[tp.MustNode("B")]
	if len(b.NextHops) != 1 || b.NextHops[tp.MustNode("R3")] == 0 {
		t.Fatalf("B pinned = %v", b.NextHops)
	}
	// A must still reach the prefix (its routing is pinned to IGP).
	a := views[tp.MustNode("A")]
	if a.NextHops[tp.MustNode("B")] == 0 {
		t.Fatalf("A = %v", a.NextHops)
	}
}

func TestPinAllRealisesFig1DAG(t *testing.T) {
	tp := fig1()
	dag := Fig1DAG(tp)
	aug, err := AugmentPinAll(tp, topo.Fig1BluePrefixName, dag)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(tp, topo.Fig1BluePrefixName, aug.Lies, dag); err != nil {
		t.Fatal(err)
	}
	// Pin-all lies to every non-attachment router.
	if aug.LieCount() <= 3 {
		t.Fatalf("pin-all suspiciously small: %d", aug.LieCount())
	}
}

func TestReduceLiesShrinksPinAll(t *testing.T) {
	tp := fig1()
	dag := Fig1DAG(tp)
	aug, err := AugmentPinAll(tp, topo.Fig1BluePrefixName, dag)
	if err != nil {
		t.Fatal(err)
	}
	red, err := ReduceLies(tp, topo.Fig1BluePrefixName, aug, dag)
	if err != nil {
		t.Fatal(err)
	}
	if red.LieCount() >= aug.LieCount() {
		t.Fatalf("reduction did not shrink: %d -> %d", aug.LieCount(), red.LieCount())
	}
	if err := Verify(tp, topo.Fig1BluePrefixName, red.Lies, dag); err != nil {
		t.Fatalf("reduced lies no longer verify: %v", err)
	}
	// The constrained routers must still carry lies (their requirement
	// differs from IGP routing). Unconstrained routers may keep pins when
	// removing them would let a remote cost-0 fake attract them at equal
	// cost — the reducer is deliberately conservative there.
	hasLie := map[string]bool{}
	for _, l := range red.Lies {
		hasLie[tp.Name(l.Attach)] = true
	}
	if !hasLie["A"] || !hasLie["B"] {
		t.Fatalf("reduction dropped required lies: %v", red.Lies)
	}
}

func TestEvaluateRejectsBadLies(t *testing.T) {
	tp := fig1()
	blue := topo.Fig1BluePrefix
	cases := []Lie{
		{Prefix: blue, Attach: tp.MustNode("B"), Via: tp.MustNode("R4"), Cost: 2}, // not a neighbor
		{Prefix: blue, Attach: tp.MustNode("B"), Via: tp.MustNode("R3"), Cost: -1},
	}
	for i, lie := range cases {
		if _, err := Evaluate(tp, topo.Fig1BluePrefixName, []Lie{lie}); err == nil {
			t.Errorf("case %d: bad lie accepted", i)
		}
	}
	if _, err := Evaluate(tp, "nope", nil); err == nil {
		t.Errorf("unknown prefix accepted")
	}
}

func TestCheckDeliveryDetectsLoop(t *testing.T) {
	tp := fig1()
	a, b := tp.MustNode("A"), tp.MustNode("B")
	views := map[topo.NodeID]RouteView{
		a: {Dist: 1, NextHops: NextHopWeights{b: 1}},
		b: {Dist: 1, NextHops: NextHopWeights{a: 1}},
	}
	if err := CheckDelivery(tp, views); err == nil {
		t.Fatalf("loop not detected")
	}
}

func TestCheckDeliveryDetectsBlackhole(t *testing.T) {
	tp := fig1()
	a, b := tp.MustNode("A"), tp.MustNode("B")
	views := map[topo.NodeID]RouteView{
		a: {Dist: 1, NextHops: NextHopWeights{b: 1}},
		// b missing entirely: traffic forwarded into the void.
	}
	if err := CheckDelivery(tp, views); err == nil {
		t.Fatalf("blackhole not detected")
	}
	views[b] = RouteView{Dist: spf.Infinity, NextHops: NextHopWeights{}}
	if err := CheckDelivery(tp, views); err == nil {
		t.Fatalf("next hop without route not detected")
	}
}

func TestNextHopWeightsEqual(t *testing.T) {
	w1 := NextHopWeights{1: 1, 2: 2}
	w2 := NextHopWeights{1: 2, 2: 4}
	w3 := NextHopWeights{1: 2, 2: 2}
	if !w1.Equal(w2) {
		t.Fatalf("scaled weights should be equal")
	}
	if w1.Equal(w3) {
		t.Fatalf("different ratios reported equal")
	}
	if w1.Equal(NextHopWeights{1: 1}) {
		t.Fatalf("different sizes reported equal")
	}
}

func TestApproxWeightsExact(t *testing.T) {
	cases := []struct {
		in   []float64
		want []int
	}{
		{[]float64{2.0 / 3, 1.0 / 3}, []int{2, 1}},
		{[]float64{0.5, 0.5}, []int{1, 1}},
		{[]float64{1}, []int{1}},
		{[]float64{0.25, 0.75}, []int{1, 3}},
		{[]float64{0.4, 0.4, 0.2}, []int{2, 2, 1}},
	}
	for _, c := range cases {
		got, err := ApproxWeights(c.in, 16)
		if err != nil {
			t.Fatalf("%v: %v", c.in, err)
		}
		if len(got) != len(c.want) {
			t.Fatalf("%v -> %v, want %v", c.in, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("%v -> %v, want %v", c.in, got, c.want)
			}
		}
	}
}

func TestApproxWeightsPositiveGetsWeight(t *testing.T) {
	w, err := ApproxWeights([]float64{0.98, 0.01, 0.01}, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range w {
		if v < 1 {
			t.Fatalf("positive fraction %d got weight %d: %v", i, v, w)
		}
	}
}

func TestApproxWeightsErrors(t *testing.T) {
	if _, err := ApproxWeights(nil, 4); err == nil {
		t.Fatalf("empty accepted")
	}
	if _, err := ApproxWeights([]float64{1}, 0); err == nil {
		t.Fatalf("maxDenom 0 accepted")
	}
	if _, err := ApproxWeights([]float64{-1, 2}, 4); err == nil {
		t.Fatalf("negative accepted")
	}
	if _, err := ApproxWeights([]float64{0, 0}, 4); err == nil {
		t.Fatalf("all-zero accepted")
	}
	if _, err := ApproxWeights([]float64{0.2, 0.2, 0.2, 0.2, 0.2}, 3); err == nil {
		t.Fatalf("infeasible denominator accepted")
	}
}

// Property: approximated weights sum to at most maxDenom, and the realised
// split error is no worse than 1/denominator (up to rounding slack).
func TestApproxWeightsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(4)
		fr := make([]float64, n)
		for i := range fr {
			fr[i] = rng.Float64()
		}
		fr[rng.Intn(n)] += 0.1 // ensure nonzero sum
		const maxDenom = 16
		w, err := ApproxWeights(fr, maxDenom)
		if err != nil {
			return false
		}
		sum := 0
		for _, v := range w {
			sum += v
		}
		if sum < 1 || sum > maxDenom {
			return false
		}
		// Each positive fraction is pinned to weight >= 1, so in the
		// worst case (many near-zero fractions) one component can be
		// off by up to (n-1)/sum, plus 1/sum of rounding.
		return WeightsError(w, fr) <= float64(n)/float64(sum)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitsToDAG(t *testing.T) {
	tp := fig1()
	a, b, r1 := tp.MustNode("A"), tp.MustNode("B"), tp.MustNode("R1")
	splits := map[topo.NodeID]map[topo.NodeID]float64{
		a: {b: 1.0 / 3, r1: 2.0 / 3},
	}
	dag, err := SplitsToDAG(splits, 16)
	if err != nil {
		t.Fatal(err)
	}
	if dag[a][b] != 1 || dag[a][r1] != 2 {
		t.Fatalf("dag = %v", dag)
	}
}

// Property: adding a "downhill" neighbor (strictly closer to the prefix,
// not already a next hop) as an extra equal-cost path always verifies:
// no loops, no leakage to other routers.
func TestDownhillAdditionAlwaysSafe(t *testing.T) {
	f := func(seed int64) bool {
		tp := topo.RandomConnected(topo.RandomOpts{
			Nodes: 12, Degree: 3, MaxWeight: 4, Prefixes: 1, Seed: seed,
		})
		views, err := IGPView(tp, "d0")
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		// Find a router with a downhill neighbor not already used.
		nodes := tp.Nodes()
		for try := 0; try < 50; try++ {
			u := nodes[rng.Intn(len(nodes))].ID
			uv, ok := views[u]
			if !ok || uv.Local || len(uv.NextHops) == 0 {
				continue
			}
			var candidate topo.NodeID = topo.NoNode
			for _, lid := range tp.OutLinks(u) {
				v := tp.Link(lid).To
				vv, ok := views[v]
				if !ok || uv.NextHops[v] > 0 {
					continue
				}
				if vv.Local || (vv.Dist < uv.Dist && vv.Dist != spf.Infinity) {
					candidate = v
					break
				}
			}
			if candidate == topo.NoNode {
				continue
			}
			desired := NextHopWeights{candidate: 1 + rng.Intn(3)}
			for nh := range uv.NextHops {
				desired[nh] = 1
			}
			dag := DAG{u: desired}
			aug, err := AugmentAddPaths(tp, "d0", dag)
			if err != nil {
				t.Logf("seed %d: augment failed: %v", seed, err)
				return false
			}
			if err := Verify(tp, "d0", aug.Lies, dag); err != nil {
				t.Logf("seed %d: verify failed: %v", seed, err)
				return false
			}
			return true
		}
		return true // no candidate found; vacuous
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestWeightsError(t *testing.T) {
	if e := WeightsError([]int{2, 1}, []float64{2.0 / 3, 1.0 / 3}); e > 1e-12 {
		t.Fatalf("exact weights have error %v", e)
	}
	if e := WeightsError([]int{1, 1}, []float64{0.75, 0.25}); math.Abs(e-0.25) > 1e-12 {
		t.Fatalf("error = %v, want 0.25", e)
	}
}

func BenchmarkFig1cAugmentation(b *testing.B) {
	tp := fig1()
	dag := Fig1DAG(tp)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := AugmentAddPaths(tp, topo.Fig1BluePrefixName, dag); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAugmentSimpleVsMerged(b *testing.B) {
	tp := fig1()
	dag := Fig1DAG(tp)
	b.Run("pin-all", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := AugmentPinAll(tp, topo.Fig1BluePrefixName, dag); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pin-all+reduce", func(b *testing.B) {
		aug, err := AugmentPinAll(tp, topo.Fig1BluePrefixName, dag)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ReduceLies(tp, topo.Fig1BluePrefixName, aug, dag); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkRatioApproximation(b *testing.B) {
	fr := []float64{0.37, 0.21, 0.42}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ApproxWeights(fr, 16); err != nil {
			b.Fatal(err)
		}
	}
}
