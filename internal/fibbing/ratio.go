package fibbing

import (
	"cmp"
	"fmt"
	"math"
	"slices"

	"fibbing.net/fibbing/internal/topo"
)

// NegligibleSplit is the relative share below which a split ratio is
// treated as zero by ApproxWeights: a next hop asked to carry less than
// this fraction of a router's traffic is numerical noise (an LP solved
// at Gbit magnitudes legitimately reports such residues), not a path
// worth a fake node. The cutoff is relative to the fraction vector's own
// sum, so it is invariant under uniform rescaling of the inputs — and
// far below anything a realisable ECMP weight vector could honour
// anyway: the smallest nonzero share a denominator-q vector can express
// is 1/q, orders of magnitude above this.
const NegligibleSplit = 1e-6

// ApproxWeights converts fractional split ratios into small integer ECMP
// weights, the quantity Fibbing can realise by duplicating fake next hops.
//
// It searches all denominators q in [1, maxDenom] and returns the weight
// vector (summing to the chosen q) minimising the maximum absolute error
// |w_i/q - f_i|, preferring smaller q on ties (fewer fake nodes). Every
// fraction above NegligibleSplit (relative to the vector's sum) is
// guaranteed a weight of at least 1, so no requested path is silently
// dropped; fractions at or below it are quantisation noise and get
// weight 0.
func ApproxWeights(fractions []float64, maxDenom int) ([]int, error) {
	if maxDenom < 1 {
		return nil, fmt.Errorf("fibbing: maxDenom %d < 1", maxDenom)
	}
	if len(fractions) == 0 {
		return nil, fmt.Errorf("fibbing: empty fraction vector")
	}
	sum := 0.0
	for _, f := range fractions {
		if f < 0 || math.IsNaN(f) || math.IsInf(f, 0) {
			return nil, fmt.Errorf("fibbing: bad fraction %v", f)
		}
		sum += f
	}
	if sum <= 0 {
		return nil, fmt.Errorf("fibbing: fractions sum to zero")
	}
	norm := make([]float64, len(fractions))
	positive := 0
	for i, f := range fractions {
		norm[i] = f / sum
		if norm[i] <= NegligibleSplit {
			norm[i] = 0 // solver noise, not a requested path
		} else {
			positive++
		}
	}
	if positive == 0 {
		return nil, fmt.Errorf("fibbing: fractions sum to zero")
	}
	if positive > maxDenom {
		return nil, fmt.Errorf("fibbing: %d positive fractions need denominator > %d", positive, maxDenom)
	}

	bestErr := math.Inf(1)
	var best []int
	for q := positive; q <= maxDenom; q++ {
		w := roundToSum(norm, q)
		if w == nil {
			continue
		}
		e := 0.0
		for i := range w {
			if d := math.Abs(float64(w[i])/float64(q) - norm[i]); d > e {
				e = d
			}
		}
		if e < bestErr-1e-12 {
			bestErr, best = e, w
		}
	}
	if best == nil {
		return nil, fmt.Errorf("fibbing: no feasible weight vector within denominator %d", maxDenom)
	}
	return best, nil
}

// roundToSum rounds norm*q to integers summing exactly to q, keeping every
// positive fraction at weight >= 1. Returns nil if infeasible for this q.
func roundToSum(norm []float64, q int) []int {
	w := make([]int, len(norm))
	frac := make([]float64, len(norm))
	total := 0
	for i, f := range norm {
		x := f * float64(q)
		w[i] = int(math.Floor(x))
		if f > 0 && w[i] == 0 {
			w[i] = 1
			frac[i] = -1 // pinned up; avoid removing below
		} else {
			frac[i] = x - float64(w[i])
		}
		total += w[i]
	}
	type cand struct {
		idx  int
		frac float64
	}
	switch {
	case total < q:
		// Distribute the remaining units to the largest remainders.
		cands := make([]cand, 0, len(norm))
		for i := range norm {
			cands = append(cands, cand{i, frac[i]})
		}
		slices.SortFunc(cands, func(a, b cand) int { return cmp.Compare(b.frac, a.frac) })
		for k := 0; total < q; k++ {
			w[cands[k%len(cands)].idx]++
			total++
		}
	case total > q:
		// Remove units from the smallest remainders, never below 1 for
		// positive fractions.
		cands := make([]cand, 0, len(norm))
		for i := range norm {
			cands = append(cands, cand{i, frac[i]})
		}
		slices.SortFunc(cands, func(a, b cand) int { return cmp.Compare(a.frac, b.frac) })
		for k := 0; total > q && k < 10*len(cands); k++ {
			i := cands[k%len(cands)].idx
			min := 0
			if norm[i] > 0 {
				min = 1
			}
			if w[i] > min {
				w[i]--
				total--
			}
		}
		if total > q {
			return nil
		}
	}
	return w
}

// WeightsError returns the maximum absolute deviation between the realised
// ratios w/sum(w) and the target fractions (after normalisation).
func WeightsError(weights []int, fractions []float64) float64 {
	sumW := 0
	for _, w := range weights {
		sumW += w
	}
	sumF := 0.0
	for _, f := range fractions {
		sumF += f
	}
	if sumW == 0 || sumF == 0 {
		return math.Inf(1)
	}
	e := 0.0
	for i := range weights {
		d := math.Abs(float64(weights[i])/float64(sumW) - fractions[i]/sumF)
		if d > e {
			e = d
		}
	}
	return e
}

// SplitsToDAG converts per-router fractional splits (from a TE solver)
// into a weighted forwarding DAG using ApproxWeights per router.
func SplitsToDAG(splits map[topo.NodeID]map[topo.NodeID]float64, maxDenom int) (DAG, error) {
	dag := make(DAG, len(splits))
	for u, frac := range splits {
		if len(frac) == 0 {
			continue
		}
		nodes := make([]topo.NodeID, 0, len(frac))
		for v := range frac {
			nodes = append(nodes, v)
		}
		slices.Sort(nodes)
		fr := make([]float64, len(nodes))
		for i, v := range nodes {
			fr[i] = frac[v]
		}
		w, err := ApproxWeights(fr, maxDenom)
		if err != nil {
			return nil, fmt.Errorf("fibbing: router %d: %w", u, err)
		}
		nhw := NextHopWeights{}
		for i, v := range nodes {
			if w[i] > 0 {
				nhw[v] = w[i]
			}
		}
		if len(nhw) > 0 {
			dag[u] = nhw
		}
	}
	return dag, nil
}
