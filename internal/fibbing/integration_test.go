package fibbing

import (
	"testing"
	"time"

	"fibbing.net/fibbing/internal/event"
	"fibbing.net/fibbing/internal/ospf"
	"fibbing.net/fibbing/internal/topo"
)

// TestEvaluatorMatchesProtocol is the consistency bridge between the
// controller's analytic prediction (Evaluate) and what the distributed
// protocol actually installs: lies computed by the augmentation are
// injected as fake LSAs into a running IGP domain, and every router's
// FIB must match the evaluator's view, weight for weight.
func TestEvaluatorMatchesProtocol(t *testing.T) {
	for _, tc := range []struct {
		name string
		dag  func(tp *topo.Topology) DAG
		pin  bool
	}{
		{"fig1c-add-paths", Fig1DAG, false},
		{"override-pin-all", func(tp *topo.Topology) DAG {
			return DAG{tp.MustNode("B"): NextHopWeights{tp.MustNode("R3"): 1}}
		}, true},
		{"heavy-uneven", func(tp *topo.Topology) DAG {
			return DAG{tp.MustNode("A"): NextHopWeights{
				tp.MustNode("B"): 1, tp.MustNode("R1"): 4,
			}}
		}, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			tp := topo.Fig1(topo.Fig1Opts{})
			dag := tc.dag(tp)

			var aug *Augmentation
			var err error
			if tc.pin {
				aug, err = AugmentPinAll(tp, topo.Fig1BluePrefixName, dag)
			} else {
				aug, err = AugmentAddPaths(tp, topo.Fig1BluePrefixName, dag)
			}
			if err != nil {
				t.Fatal(err)
			}
			want, err := Evaluate(tp, topo.Fig1BluePrefixName, aug.Lies)
			if err != nil {
				t.Fatal(err)
			}

			d := ospf.NewDomain(tp, event.NewScheduler(), ospf.Config{})
			d.Start()
			if _, err := d.RunUntilConverged(60 * time.Second); err != nil {
				t.Fatal(err)
			}
			inj := d.Router(tp.MustNode("R3")) // controller attaches at R3
			for i, lie := range aug.Lies {
				lsa := lie.ToLSA(ospf.ControllerIDBase, uint32(i)+1, 1)
				if err := inj.OriginateForeign(lsa); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := d.RunUntilConverged(300 * time.Second); err != nil {
				t.Fatal(err)
			}
			if len(d.Errors) > 0 {
				t.Fatalf("protocol errors: %v", d.Errors)
			}

			for node, view := range want {
				r := d.Router(node)
				route, ok := r.FIB().Lookup(topo.Fig1BluePrefix.Addr())
				if view.Local {
					if !ok || !route.Local {
						t.Fatalf("%s: want local, got %+v", tp.Name(node), route)
					}
					continue
				}
				if len(view.NextHops) == 0 {
					if ok && !route.Local {
						t.Fatalf("%s: evaluator says unreachable, FIB has %+v", tp.Name(node), route)
					}
					continue
				}
				if !ok {
					t.Fatalf("%s: no FIB route, evaluator has %v", tp.Name(node), view.NextHops)
				}
				got := NextHopWeights{}
				for _, nh := range route.NextHops {
					got[nh.Node] += nh.Weight
				}
				if !got.Equal(view.NextHops) {
					t.Fatalf("%s: FIB %v != evaluator %v", tp.Name(node), got, view.NextHops)
				}
			}
		})
	}
}
