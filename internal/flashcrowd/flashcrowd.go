// Package flashcrowd generates the traffic workloads of the paper: the
// demo's scripted video-request schedule (1 flow at t=0, +30 at t=15, +31
// from the second source at t=35) and Poisson-burst flash crowds for the
// extended experiments.
package flashcrowd

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"fibbing.net/fibbing/internal/event"
	"fibbing.net/fibbing/internal/fib"
	"fibbing.net/fibbing/internal/netsim"
	"fibbing.net/fibbing/internal/ospf"
	"fibbing.net/fibbing/internal/topo"
)

// Wave is one batch of client arrivals.
type Wave struct {
	At      time.Duration
	Ingress string  // router where the flows enter (the server's side)
	Flows   int     // number of simultaneous clients joining
	Rate    float64 // per-flow media bitrate, bit/s
	Hold    time.Duration
	// Hold = 0 keeps flows until the end of the simulation.
}

// DefaultVideoRate is the demo's per-video bitrate: 500 kbit/s, sized so
// ~31 videos fill one 16 Mbit/s link, matching Figure 2's scale.
const DefaultVideoRate = 0.5e6

// Fig2Schedule reproduces the demo timeline on the Fig1 topology: one
// client of S1 (behind B) at t=0, 30 more at t=15 s, then 31 clients of
// S2 (behind A) at t=35 s.
func Fig2Schedule(rate float64) []Wave {
	if rate <= 0 {
		rate = DefaultVideoRate
	}
	return []Wave{
		{At: 0, Ingress: topo.Fig1B, Flows: 1, Rate: rate},
		{At: 15 * time.Second, Ingress: topo.Fig1B, Flows: 30, Rate: rate},
		{At: 35 * time.Second, Ingress: topo.Fig1A, Flows: 31, Rate: rate},
	}
}

// Runner schedules waves of flows into a simulated network and reports
// client arrivals/departures to the controller (the paper's "servers
// notify the controller when they have a new client").
type Runner struct {
	Net    *netsim.Network
	Sched  *event.Scheduler
	Prefix string // destination prefix name

	// OnJoin/OnLeave fire per flow, before it starts / after it ends.
	OnJoin  func(ingress topo.NodeID, rate float64)
	OnLeave func(ingress topo.NodeID, rate float64)
	// OnFlowStarted fires after the flow is injected, with its ID
	// (used to attach video players).
	OnFlowStarted func(id netsim.FlowID, rate float64)

	nextPort uint16
	nextHost int
	flows    []netsim.FlowID
}

// Flows returns the IDs of all flows started so far.
func (r *Runner) Flows() []netsim.FlowID { return r.flows }

// Schedule arms all waves on the scheduler. Must be called before running
// the scheduler past the first wave time.
func (r *Runner) Schedule(waves []Wave) error {
	tp := r.Net.Topology()
	p, ok := tp.PrefixByName(r.Prefix)
	if !ok {
		return fmt.Errorf("flashcrowd: unknown prefix %q", r.Prefix)
	}
	for _, w := range waves {
		w := w
		ingress, ok := tp.NodeByName(w.Ingress)
		if !ok {
			return fmt.Errorf("flashcrowd: unknown ingress %q", w.Ingress)
		}
		if w.Flows <= 0 || w.Rate <= 0 {
			return fmt.Errorf("flashcrowd: bad wave %+v", w)
		}
		r.Sched.At(w.At, func() {
			for i := 0; i < w.Flows; i++ {
				r.startFlow(ingress, p, w.Rate, w.Hold)
			}
		})
	}
	return nil
}

func (r *Runner) startFlow(ingress topo.NodeID, p topo.Prefix, rate float64, hold time.Duration) {
	r.nextPort++
	r.nextHost++
	key := fib.FlowKey{
		Src:     ospf.Loopback(ingress),
		Dst:     ospf.HostAddr(p.Prefix, r.nextHost),
		SrcPort: 10000 + r.nextPort,
		DstPort: 8080,
		Proto:   6,
	}
	if r.OnJoin != nil {
		r.OnJoin(ingress, rate)
	}
	id := r.Net.AddFlow(ingress, key, rate)
	r.flows = append(r.flows, id)
	if r.OnFlowStarted != nil {
		r.OnFlowStarted(id, rate)
	}
	if hold > 0 {
		r.Sched.After(hold, func() {
			r.Net.RemoveFlow(id)
			if r.OnLeave != nil {
				r.OnLeave(ingress, rate)
			}
		})
	}
}

// PoissonWaves draws a random flash crowd: sessions arrive as a Poisson
// process with the given rate (sessions/second) over the window, each
// holding for an exponential duration with the given mean. Deterministic
// for a seed.
func PoissonWaves(ingress string, window time.Duration, arrivalRate float64, meanHold time.Duration, videoRate float64, seed int64) []Wave {
	rng := rand.New(rand.NewSource(seed))
	var out []Wave
	t := 0.0
	end := window.Seconds()
	for {
		t += rng.ExpFloat64() / arrivalRate
		if t >= end {
			return out
		}
		hold := time.Duration(math.Max(1, rng.ExpFloat64()*meanHold.Seconds()) * float64(time.Second))
		out = append(out, Wave{
			At:      time.Duration(t * float64(time.Second)),
			Ingress: ingress,
			Flows:   1,
			Rate:    videoRate,
			Hold:    hold,
		})
	}
}
