package flashcrowd

import (
	"testing"
	"time"

	"fibbing.net/fibbing/internal/event"
	"fibbing.net/fibbing/internal/fib"
	"fibbing.net/fibbing/internal/netsim"
	"fibbing.net/fibbing/internal/ospf"
	"fibbing.net/fibbing/internal/topo"
)

// rig wires a Fig1 IGP + netsim so flows actually route.
func rig(t *testing.T) (*topo.Topology, *event.Scheduler, *netsim.Network) {
	t.Helper()
	tp := topo.Fig1(topo.Fig1Opts{})
	sched := event.NewScheduler()
	net := netsim.New(tp, sched, time.Second)
	dom := ospf.NewDomain(tp, sched, ospf.Config{})
	dom.OnFIBChange = func(n topo.NodeID, tab *fib.Table) { net.SetTable(n, tab) }
	dom.Start()
	return tp, sched, net
}

func TestFig2ScheduleShape(t *testing.T) {
	waves := Fig2Schedule(0)
	if len(waves) != 3 {
		t.Fatalf("waves = %d", len(waves))
	}
	if waves[0].At != 0 || waves[0].Flows != 1 || waves[0].Ingress != topo.Fig1B {
		t.Fatalf("wave 0 = %+v", waves[0])
	}
	if waves[1].At != 15*time.Second || waves[1].Flows != 30 || waves[1].Ingress != topo.Fig1B {
		t.Fatalf("wave 1 = %+v", waves[1])
	}
	if waves[2].At != 35*time.Second || waves[2].Flows != 31 || waves[2].Ingress != topo.Fig1A {
		t.Fatalf("wave 2 = %+v", waves[2])
	}
	for _, w := range waves {
		if w.Rate != DefaultVideoRate {
			t.Fatalf("default rate not applied: %+v", w)
		}
	}
}

func TestRunnerSchedulesWaves(t *testing.T) {
	_, sched, net := rig(t)
	var joins, leaves int
	r := &Runner{
		Net: net, Sched: sched, Prefix: topo.Fig1BluePrefixName,
		OnJoin:  func(topo.NodeID, float64) { joins++ },
		OnLeave: func(topo.NodeID, float64) { leaves++ },
	}
	err := r.Schedule([]Wave{
		{At: time.Second, Ingress: "B", Flows: 3, Rate: 1e6},
		{At: 2 * time.Second, Ingress: "A", Flows: 2, Rate: 1e6, Hold: 3 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	sched.RunUntil(10 * time.Second)
	if joins != 5 || leaves != 2 {
		t.Fatalf("joins=%d leaves=%d", joins, leaves)
	}
	if net.FlowCount() != 3 {
		t.Fatalf("live flows = %d", net.FlowCount())
	}
	if len(r.Flows()) != 5 {
		t.Fatalf("started flows = %d", len(r.Flows()))
	}
	// Flows must actually deliver (routes converged, prefix reachable).
	for _, id := range r.Flows()[:3] {
		f := net.Flow(id)
		if f == nil || f.Blocked() || f.Rate() != 1e6 {
			t.Fatalf("flow %d not delivering: %+v", id, f)
		}
	}
}

func TestRunnerValidation(t *testing.T) {
	_, sched, net := rig(t)
	r := &Runner{Net: net, Sched: sched, Prefix: "nope"}
	if err := r.Schedule([]Wave{{At: 0, Ingress: "B", Flows: 1, Rate: 1}}); err == nil {
		t.Fatalf("unknown prefix accepted")
	}
	r2 := &Runner{Net: net, Sched: sched, Prefix: topo.Fig1BluePrefixName}
	if err := r2.Schedule([]Wave{{At: 0, Ingress: "ZZZ", Flows: 1, Rate: 1}}); err == nil {
		t.Fatalf("unknown ingress accepted")
	}
	if err := r2.Schedule([]Wave{{At: 0, Ingress: "B", Flows: 0, Rate: 1}}); err == nil {
		t.Fatalf("empty wave accepted")
	}
}

func TestPoissonWavesDeterministic(t *testing.T) {
	a := PoissonWaves("B", time.Minute, 0.5, 10*time.Second, 1e6, 42)
	b := PoissonWaves("B", time.Minute, 0.5, 10*time.Second, 1e6, 42)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("wave %d differs", i)
		}
	}
	// Roughly arrivalRate * window sessions (loose bound).
	if len(a) < 10 || len(a) > 60 {
		t.Fatalf("poisson count = %d, expected ~30", len(a))
	}
	for _, w := range a {
		if w.At < 0 || w.At >= time.Minute || w.Hold <= 0 {
			t.Fatalf("bad wave %+v", w)
		}
	}
}

func TestPoissonDifferentSeedsDiffer(t *testing.T) {
	a := PoissonWaves("B", time.Minute, 0.5, 10*time.Second, 1e6, 1)
	b := PoissonWaves("B", time.Minute, 0.5, 10*time.Second, 1e6, 2)
	same := len(a) == len(b)
	if same {
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatalf("different seeds produced identical workloads")
	}
}
