// Package monitor implements the controller's link-load monitoring: a
// periodic SNMP poller that converts interface octet counters into rates,
// smooths them with an EWMA, and raises/clears utilisation alarms with
// hysteresis. This is the "monitors link loads using SNMP" component of
// the paper's demo setup.
package monitor

import (
	"fmt"
	"time"

	"fibbing.net/fibbing/internal/event"
	"fibbing.net/fibbing/internal/metrics"
	"fibbing.net/fibbing/internal/snmp"
	"fibbing.net/fibbing/internal/topo"
)

// WatchedLink declares one directed link to poll.
type WatchedLink struct {
	Link     topo.LinkID
	OID      snmp.OID // octet counter to poll (ifOutOctets/ifHCOutOctets)
	Capacity float64  // bit/s, for utilisation
	Name     string   // for reports
}

// LinkLoad is one link's smoothed load at a poll instant.
type LinkLoad struct {
	Link        topo.LinkID
	Name        string
	RateBps     float64 // smoothed, bits per second
	Utilisation float64 // RateBps / Capacity (0 if uncapacitated)
}

// Report is one poll cycle's output.
type Report struct {
	At    time.Duration
	Loads []LinkLoad
}

// MaxUtilisation returns the highest utilisation in the report.
func (r Report) MaxUtilisation() (LinkLoad, bool) {
	var best LinkLoad
	found := false
	for _, l := range r.Loads {
		if !found || l.Utilisation > best.Utilisation {
			best = l
			found = true
		}
	}
	return best, found
}

// Alarm signals a link crossing the utilisation thresholds.
type Alarm struct {
	Link        topo.LinkID
	Name        string
	Utilisation float64
	// Raised is true when the link went above the high threshold, false
	// when it dropped below the low threshold.
	Raised bool
}

// Config parameterises a Poller. Fields whose zero value is a legitimate
// setting are pointers (Float/Int build them); nil means "use the
// default", so an explicit zero is never silently replaced.
type Config struct {
	Interval time.Duration // poll period (default 2s)
	// Alpha is the EWMA smoothing factor (default 0.5).
	Alpha float64
	// HighThreshold raises an alarm (default 0.7).
	HighThreshold float64
	// LowThreshold clears a raised alarm (nil: default 0.3); hysteresis
	// avoids flapping. Float(0) clears only on a fully idle link; a
	// negative threshold never clears.
	LowThreshold *float64
	// RaiseAfter / ClearAfter demand k consecutive polls beyond the
	// threshold (default 1 / 2).
	RaiseAfter int
	ClearAfter int
	// RepeatEvery re-fires the raised alarm every k consecutive
	// above-threshold polls while the alarm stays raised, so the
	// controller learns that its last reaction was insufficient (or a
	// new surge hit the same link). nil or Int(0) disables repeats
	// (callers layering their own default, e.g. controller.NewSim,
	// distinguish the two).
	RepeatEvery *int
}

// Float wraps a float64 for Config's optional fields.
func Float(v float64) *float64 { return &v }

// Int wraps an int for Config's optional fields.
func Int(v int) *int { return &v }

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = 2 * time.Second
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.5
	}
	if c.HighThreshold <= 0 {
		c.HighThreshold = 0.7
	}
	if c.LowThreshold == nil {
		c.LowThreshold = Float(0.3)
	}
	if c.RaiseAfter <= 0 {
		c.RaiseAfter = 1
	}
	if c.ClearAfter <= 0 {
		c.ClearAfter = 2
	}
	if c.RepeatEvery == nil {
		c.RepeatEvery = Int(0)
	}
	return c
}

// Poller drives periodic SNMP polls inside a virtual-time scheduler.
type Poller struct {
	client *snmp.Client
	sched  *event.Scheduler
	cfg    Config
	links  []WatchedLink

	// OnReport fires after every poll cycle.
	OnReport func(Report)
	// OnAlarm fires on threshold crossings (after hysteresis).
	OnAlarm func(Alarm)

	state  map[topo.LinkID]*linkState
	ticker *event.Ticker
	// Errors keeps the first maxPollErrors poll failures for diagnosis
	// (an unreachable agent must not kill the loop — nor, over a long
	// run, grow an unbounded error list). PollFailures counts every
	// failure regardless.
	Errors []error
	// PollFailures counts failed link polls over the poller's lifetime.
	PollFailures metrics.Counter
}

// maxPollErrors bounds the retained error list: an agent that stays
// unreachable fails every link on every tick, and a multi-day run must
// not turn that into gigabytes of identical errors. The counter keeps
// the true total.
const maxPollErrors = 32

type linkState struct {
	last     uint64
	lastAt   time.Duration
	seeded   bool
	ewma     metrics.EWMA
	raised   bool
	hiStreak int
	loStreak int
}

// NewPoller builds a poller; call Start to begin polling.
func NewPoller(client *snmp.Client, sched *event.Scheduler, cfg Config, links []WatchedLink) *Poller {
	p := &Poller{
		client: client,
		sched:  sched,
		cfg:    cfg.withDefaults(),
		links:  links,
		state:  make(map[topo.LinkID]*linkState, len(links)),
	}
	for _, l := range links {
		p.state[l.Link] = &linkState{ewma: metrics.EWMA{Alpha: p.cfg.Alpha}}
	}
	return p
}

// Start begins polling on the scheduler.
func (p *Poller) Start() {
	if p.ticker != nil {
		return
	}
	p.ticker = p.sched.NewTicker(p.cfg.Interval, p.poll)
}

// Stop halts polling.
func (p *Poller) Stop() {
	if p.ticker != nil {
		p.ticker.Stop()
		p.ticker = nil
	}
}

func (p *Poller) poll() {
	now := p.sched.Now()
	report := Report{At: now}
	for _, wl := range p.links {
		st := p.state[wl.Link]
		count, err := p.client.GetCounter(wl.OID)
		if err != nil {
			p.PollFailures.Add(1)
			if len(p.Errors) < maxPollErrors {
				p.Errors = append(p.Errors, fmt.Errorf("monitor: poll %s: %w", wl.Name, err))
			}
			continue
		}
		if !st.seeded {
			st.last, st.lastAt, st.seeded = count, now, true
			continue
		}
		rate := metrics.Rate(st.last, count, now-st.lastAt) * 8 // octets -> bits
		st.last, st.lastAt = count, now
		smoothed := st.ewma.Update(rate)
		util := 0.0
		if wl.Capacity > 0 {
			util = smoothed / wl.Capacity
		}
		report.Loads = append(report.Loads, LinkLoad{
			Link: wl.Link, Name: wl.Name, RateBps: smoothed, Utilisation: util,
		})
		p.updateAlarm(wl, st, util)
	}
	if p.OnReport != nil && len(report.Loads) > 0 {
		p.OnReport(report)
	}
}

func (p *Poller) updateAlarm(wl WatchedLink, st *linkState, util float64) {
	switch {
	case util >= p.cfg.HighThreshold:
		st.hiStreak++
		st.loStreak = 0
	case util <= *p.cfg.LowThreshold:
		st.loStreak++
		st.hiStreak = 0
	default:
		st.hiStreak = 0
		st.loStreak = 0
	}
	if !st.raised && st.hiStreak >= p.cfg.RaiseAfter {
		st.raised = true
		if p.OnAlarm != nil {
			p.OnAlarm(Alarm{Link: wl.Link, Name: wl.Name, Utilisation: util, Raised: true})
		}
	} else if st.raised && *p.cfg.RepeatEvery > 0 &&
		st.hiStreak > 0 && st.hiStreak%*p.cfg.RepeatEvery == 0 {
		if p.OnAlarm != nil {
			p.OnAlarm(Alarm{Link: wl.Link, Name: wl.Name, Utilisation: util, Raised: true})
		}
	}
	if st.raised && st.loStreak >= p.cfg.ClearAfter {
		st.raised = false
		if p.OnAlarm != nil {
			p.OnAlarm(Alarm{Link: wl.Link, Name: wl.Name, Utilisation: util, Raised: false})
		}
	}
}

// WatchAllLinks builds the watch list for every capacitated router-router
// link of a topology, polling the 64-bit IF-MIB counters.
func WatchAllLinks(t *topo.Topology) []WatchedLink {
	var out []WatchedLink
	for _, l := range t.Links() {
		if t.Node(l.From).Host || t.Node(l.To).Host || l.Capacity <= 0 {
			continue
		}
		out = append(out, WatchedLink{
			Link:     l.ID,
			OID:      snmp.OIDIfHCOutOctets.Append(snmp.IfIndex(l.ID)),
			Capacity: l.Capacity,
			Name:     fmt.Sprintf("%s-%s", t.Name(l.From), t.Name(l.To)),
		})
	}
	return out
}
