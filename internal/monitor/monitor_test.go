package monitor

import (
	"math"
	"testing"
	"time"

	"fibbing.net/fibbing/internal/event"
	"fibbing.net/fibbing/internal/fib"
	"fibbing.net/fibbing/internal/netsim"
	"fibbing.net/fibbing/internal/snmp"
	"fibbing.net/fibbing/internal/topo"
	"net/netip"
)

// rig builds a 2-router network with one 10 Mbit/s link, an SNMP agent
// over the simulator, and a poller.
type rig struct {
	tp    *topo.Topology
	sched *event.Scheduler
	net   *netsim.Network
	pol   *Poller
	link  topo.LinkID
}

func newRig(t *testing.T, cfg Config) *rig {
	t.Helper()
	tp := topo.New()
	a := tp.AddNode("a")
	b := tp.AddNode("b")
	ab, _ := tp.AddLink(a, b, 1, topo.LinkOpts{Capacity: 10e6})
	pfx := netip.MustParsePrefix("10.100.0.0/16")
	tp.AddPrefix(pfx, "p", topo.Attachment{Node: b})

	sched := event.NewScheduler()
	net := netsim.New(tp, sched, time.Second)
	ta := fib.NewTable(a)
	if err := ta.Install(fib.Route{Prefix: pfx, NextHops: []fib.NextHop{{Node: b, Link: ab, Weight: 1}}}); err != nil {
		t.Fatal(err)
	}
	tb := fib.NewTable(b)
	if err := tb.Install(fib.Route{Prefix: pfx, Local: true}); err != nil {
		t.Fatal(err)
	}
	net.SetTable(a, ta)
	net.SetTable(b, tb)

	mib := snmp.NewMIB()
	snmp.BindIFMIB(mib, net, topo.NoNode)
	agent := snmp.NewAgent("public", mib)
	client := snmp.NewClient(snmp.DirectTransport{Agent: agent}, "public")
	pol := NewPoller(client, sched, cfg, WatchAllLinks(tp))
	return &rig{tp: tp, sched: sched, net: net, pol: pol, link: ab}
}

func (r *rig) addFlow(port uint16, rate float64) netsim.FlowID {
	key := fib.FlowKey{
		Src: netip.MustParseAddr("10.0.0.1"), Dst: netip.MustParseAddr("10.100.0.1"),
		SrcPort: port, DstPort: 80, Proto: 6,
	}
	return r.net.AddFlow(r.tp.MustNode("a"), key, rate)
}

func TestPollerMeasuresRate(t *testing.T) {
	r := newRig(t, Config{Interval: time.Second, Alpha: 1})
	var reports []Report
	r.pol.OnReport = func(rep Report) { reports = append(reports, rep) }
	r.pol.Start()
	r.addFlow(1, 4e6)
	r.sched.RunUntil(10 * time.Second)
	if len(r.pol.Errors) > 0 {
		t.Fatalf("poll errors: %v", r.pol.Errors)
	}
	if len(reports) < 5 {
		t.Fatalf("reports = %d", len(reports))
	}
	last := reports[len(reports)-1]
	load, ok := last.MaxUtilisation()
	if !ok {
		t.Fatalf("empty report")
	}
	if math.Abs(load.RateBps-4e6) > 1e5 {
		t.Fatalf("rate = %v, want ~4e6", load.RateBps)
	}
	if math.Abs(load.Utilisation-0.4) > 0.02 {
		t.Fatalf("util = %v, want ~0.4", load.Utilisation)
	}
}

func TestAlarmRaiseAndClearWithHysteresis(t *testing.T) {
	r := newRig(t, Config{
		Interval: time.Second, Alpha: 1,
		HighThreshold: 0.7, LowThreshold: Float(0.3),
		RaiseAfter: 2, ClearAfter: 2,
	})
	var alarms []Alarm
	r.pol.OnAlarm = func(a Alarm) { alarms = append(alarms, a) }
	r.pol.Start()

	id := r.addFlow(1, 9e6) // util 0.9
	r.sched.RunUntil(10 * time.Second)
	if len(alarms) != 1 || !alarms[0].Raised {
		t.Fatalf("alarms after surge = %+v", alarms)
	}

	r.net.RemoveFlow(id)
	r.sched.RunUntil(20 * time.Second)
	if len(alarms) != 2 || alarms[1].Raised {
		t.Fatalf("alarms after drain = %+v", alarms)
	}
}

func TestAlarmNotRaisedBelowThreshold(t *testing.T) {
	r := newRig(t, Config{Interval: time.Second, Alpha: 1, HighThreshold: 0.7})
	var alarms []Alarm
	r.pol.OnAlarm = func(a Alarm) { alarms = append(alarms, a) }
	r.pol.Start()
	r.addFlow(1, 5e6) // util 0.5: in the hysteresis band, no alarm
	r.sched.RunUntil(10 * time.Second)
	if len(alarms) != 0 {
		t.Fatalf("alarms = %+v", alarms)
	}
}

func TestRaiseAfterRequiresConsecutivePolls(t *testing.T) {
	r := newRig(t, Config{
		Interval: time.Second, Alpha: 1,
		HighThreshold: 0.7, RaiseAfter: 3,
	})
	var raisedAt time.Duration
	r.pol.OnAlarm = func(a Alarm) {
		if a.Raised && raisedAt == 0 {
			raisedAt = r.sched.Now()
		}
	}
	r.pol.Start()
	r.addFlow(1, 9e6)
	r.sched.RunUntil(12 * time.Second)
	// Poll 1 seeds, polls 2-4 measure: raise on the 3rd measurement at 4s
	// at the earliest.
	if raisedAt < 4*time.Second {
		t.Fatalf("alarm raised too early: %v", raisedAt)
	}
	if raisedAt == 0 {
		t.Fatalf("alarm never raised")
	}
}

func TestEWMASmoothsSpikes(t *testing.T) {
	r := newRig(t, Config{Interval: time.Second, Alpha: 0.3, HighThreshold: 0.95})
	var alarms []Alarm
	r.pol.OnAlarm = func(a Alarm) { alarms = append(alarms, a) }
	r.pol.Start()
	// One-second 10 Mbit/s burst: raw util 1.0, smoothed well below 0.95.
	r.sched.RunUntil(3 * time.Second)
	id := r.addFlow(1, 10e6)
	r.sched.RunUntil(4 * time.Second)
	r.net.RemoveFlow(id)
	r.sched.RunUntil(10 * time.Second)
	if len(alarms) != 0 {
		t.Fatalf("EWMA did not absorb spike: %+v", alarms)
	}
}

func TestWatchAllLinksSkipsHostsAndUncapacitated(t *testing.T) {
	tp := topo.Fig1(topo.Fig1Opts{WithHosts: true})
	links := WatchAllLinks(tp)
	for _, wl := range links {
		l := tp.Link(wl.Link)
		if tp.Node(l.From).Host || tp.Node(l.To).Host {
			t.Fatalf("host link watched: %s", wl.Name)
		}
	}
	// Fig1 has 8 symmetric core links = 16 directed.
	if len(links) != 16 {
		t.Fatalf("watched %d links, want 16", len(links))
	}
}

func TestStopHaltsPolling(t *testing.T) {
	r := newRig(t, Config{Interval: time.Second, Alpha: 1})
	count := 0
	r.pol.OnReport = func(Report) { count++ }
	r.pol.Start()
	r.addFlow(1, 1e6)
	r.sched.RunUntil(5 * time.Second)
	r.pol.Stop()
	at := count
	r.sched.RunUntil(10 * time.Second)
	if count != at {
		t.Fatalf("polling continued after Stop: %d -> %d", at, count)
	}
}

// TestPollerSurvivesAgentErrors points the poller at an agent with a
// mismatched community: every poll fails, errors accumulate, and the loop
// keeps running (an unreachable agent must never kill monitoring).
func TestPollerSurvivesAgentErrors(t *testing.T) {
	r := newRig(t, Config{Interval: time.Second, Alpha: 1})
	// Swap in a client with the wrong community.
	mib := snmp.NewMIB()
	snmp.BindIFMIB(mib, r.net, topo.NoNode)
	badAgent := snmp.NewAgent("secret", mib)
	badClient := snmp.NewClient(snmp.DirectTransport{Agent: badAgent}, "wrong")
	pol := NewPoller(badClient, r.sched, Config{Interval: time.Second, Alpha: 1}, WatchAllLinks(r.tp))
	reports := 0
	pol.OnReport = func(Report) { reports++ }
	pol.Start()
	r.sched.RunUntil(10 * time.Second)
	if len(pol.Errors) < 5 {
		t.Fatalf("errors = %d, want one per poll per link", len(pol.Errors))
	}
	if reports != 0 {
		t.Fatalf("reports despite failing polls: %d", reports)
	}
	// Poller still ticking: more errors accrue.
	before := len(pol.Errors)
	r.sched.RunUntil(15 * time.Second)
	if len(pol.Errors) <= before {
		t.Fatalf("poll loop died after errors")
	}
}

// TestPollerHCCounterCrosses32BitBoundary verifies the reason the poller
// watches the 64-bit HC counters: a counter crossing the 2^32 boundary
// (where a Counter32 would wrap and corrupt the delta) yields a clean
// rate, because Counter64 deltas are exact.
func TestPollerHCCounterCrosses32BitBoundary(t *testing.T) {
	sched := event.NewScheduler()
	mib := snmp.NewMIB()
	oid := snmp.MustOID("1.3.6.1.2.1.2.2.1.16.1")
	count := uint64(1<<32 - 2500) // crosses 2^32 on the third poll
	mib.Register(oid, func() snmp.Value {
		count += 1000 // 1000 octets/s at 1s polling
		return snmp.Counter64Value(count)
	})
	client := snmp.NewClient(snmp.DirectTransport{Agent: snmp.NewAgent("c", mib)}, "c")
	pol := NewPoller(client, sched, Config{Interval: time.Second, Alpha: 1}, []WatchedLink{
		{Link: 0, OID: oid, Capacity: 1e6, Name: "wrap"},
	})
	var rates []float64
	pol.OnReport = func(rep Report) {
		for _, l := range rep.Loads {
			rates = append(rates, l.RateBps)
		}
	}
	pol.Start()
	sched.RunUntil(6 * time.Second)
	if len(rates) < 3 {
		t.Fatalf("rates = %v", rates)
	}
	for i, r := range rates {
		// 1000 octets/s = 8000 bit/s; a wrap mishandled as signed delta
		// would produce a huge or negative spike.
		if math.Abs(r-8000) > 1 {
			t.Fatalf("rate %d = %v across wrap, want 8000", i, r)
		}
	}
}

// TestPollErrorsCappedAndCounted: a permanently unreachable agent keeps
// failing every link on every tick; the retained error list stops at
// maxPollErrors while the metrics counter keeps the true total.
func TestPollErrorsCappedAndCounted(t *testing.T) {
	r := newRig(t, Config{Interval: time.Second, Alpha: 1})
	mib := snmp.NewMIB()
	snmp.BindIFMIB(mib, r.net, topo.NoNode)
	badClient := snmp.NewClient(snmp.DirectTransport{Agent: snmp.NewAgent("secret", mib)}, "wrong")
	pol := NewPoller(badClient, r.sched, Config{Interval: time.Second, Alpha: 1}, WatchAllLinks(r.tp))
	pol.Start()
	r.sched.RunUntil(60 * time.Second)
	if len(pol.Errors) != maxPollErrors {
		t.Fatalf("retained errors = %d, want capped at %d", len(pol.Errors), maxPollErrors)
	}
	if got := pol.PollFailures.Value(); got <= uint64(maxPollErrors) {
		t.Fatalf("PollFailures = %d, want the uncapped total (> %d)", got, maxPollErrors)
	}
}
