package qoe

import (
	"math"
	"net/netip"
	"testing"
	"time"

	"fibbing.net/fibbing/internal/fibbing"
	"fibbing.net/fibbing/internal/topo"
)

// starTopo builds the delivery tests' gadget: two ingress routers a and b
// feeding a shared router m, which reaches the prefix router d over the
// only capacitated link.
func starTopo(capacity float64) (*topo.Topology, topo.NodeID, topo.NodeID) {
	tp := topo.New()
	a := tp.AddNode("a")
	b := tp.AddNode("b")
	m := tp.AddNode("m")
	d := tp.AddNode("d")
	tp.AddLink(a, m, 1, topo.LinkOpts{})
	tp.AddLink(b, m, 1, topo.LinkOpts{})
	tp.AddLink(m, d, 1, topo.LinkOpts{Capacity: capacity})
	tp.AddPrefix(netip.MustParsePrefix("10.0.0.0/24"), "vid", topo.Attachment{Node: d})
	return tp, a, b
}

// TestPredictPlanSingleMember pins the degenerate aggregate: one session,
// enough capacity — the viewer waits out the startup buffer once and
// never stalls.
func TestPredictPlanSingleMember(t *testing.T) {
	tp, a, _ := starTopo(10e6)
	views, err := fibbing.Evaluate(tp, "vid", nil)
	if err != nil {
		t.Fatal(err)
	}
	q, err := PredictPlan(tp,
		map[string]map[topo.NodeID]fibbing.RouteView{"vid": views},
		[]topo.Demand{{Ingress: a, PrefixName: "vid", Volume: 4e6}},
		Model{})
	if err != nil {
		t.Fatal(err)
	}
	if q.Sessions != 1 {
		t.Fatalf("sessions = %d, want 1", q.Sessions)
	}
	if q.StallSeconds != 0 {
		t.Errorf("uncongested single session stalls %.2fs, want 0", q.StallSeconds)
	}
	// Full rate: startup wait is exactly the startup buffer (2 media-s).
	if math.Abs(q.StartupWaitSeconds-2) > 1e-9 {
		t.Errorf("startup wait = %.3fs, want 2s", q.StartupWaitSeconds)
	}
}

// TestPredictPlanProtectsThinSessions pins the water-filling pass: a thin
// crowd and a fat crowd share one saturated link, and max-min fair
// sharing must starve only the fat sessions. The expected figures are
// closed-form: with thin demand fully satisfied, the fat sessions split
// the residual capacity evenly.
func TestPredictPlanProtectsThinSessions(t *testing.T) {
	const cap = 10e6
	tp, a, b := starTopo(cap)
	views, err := fibbing.Evaluate(tp, "vid", nil)
	if err != nil {
		t.Fatal(err)
	}
	demands := []topo.Demand{
		{Ingress: a, PrefixName: "vid", Volume: 5.5e6}, // 40 thin sessions
		{Ingress: b, PrefixName: "vid", Volume: 5.5e6}, // 5 fat sessions
	}
	m := Model{Members: map[string]map[topo.NodeID]int{"vid": {a: 40, b: 5}}}
	q, err := PredictPlan(tp, map[string]map[topo.NodeID]fibbing.RouteView{"vid": views}, demands, m)
	if err != nil {
		t.Fatal(err)
	}
	if q.Sessions != 45 {
		t.Fatalf("sessions = %d, want 45", q.Sessions)
	}
	// Water-fill by hand: thin rate 137.5k < fair share, so the 40 thin
	// sessions are whole (no stalls); the 5 fat sessions split the
	// residual 4.5 Mbit/s: phi = 0.9/1.1 of their 1.1 Mbit/s rate.
	f := (cap - 5.5e6) / 5 / (5.5e6 / 5)
	T := DefaultHorizon.Seconds()
	wantFatStall := 5 * (1 - f) * (T - 2/f)
	wantWait := 40*2.0 + 5*(2/f) // thin at full rate wait 2s, fat wait B/f
	if math.Abs(q.StallSeconds-wantFatStall) > 1e-6 {
		t.Errorf("stalls = %.6fs, want %.6fs (fat sessions only)", q.StallSeconds, wantFatStall)
	}
	if math.Abs(q.StartupWaitSeconds-wantWait) > 1e-6 {
		t.Errorf("startup wait = %.6fs, want %.6fs", q.StartupWaitSeconds, wantWait)
	}
}

// TestPredictPlanDeterministic runs the same congested prediction twice
// and expects bit-identical totals: every iteration in the delivery model
// is explicitly sorted, so map layout must not leak into the floats.
func TestPredictPlanDeterministic(t *testing.T) {
	tp, a, b := starTopo(10e6)
	views, err := fibbing.Evaluate(tp, "vid", nil)
	if err != nil {
		t.Fatal(err)
	}
	demands := []topo.Demand{
		{Ingress: a, PrefixName: "vid", Volume: 7e6},
		{Ingress: b, PrefixName: "vid", Volume: 6e6},
	}
	m := Model{
		Members: map[string]map[topo.NodeID]int{"vid": {a: 17, b: 3}},
		Session: SessionConfig{Ladder: []float64{0.2e6, 0.5e6, 1.0e6}},
		Horizon: 17 * time.Second,
	}
	first, err := PredictPlan(tp, map[string]map[topo.NodeID]fibbing.RouteView{"vid": views}, demands, m)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		again, err := PredictPlan(tp, map[string]map[topo.NodeID]fibbing.RouteView{"vid": views}, demands, m)
		if err != nil {
			t.Fatal(err)
		}
		if again != first {
			t.Fatalf("run %d: %+v != %+v", i, again, first)
		}
	}
}
