// Package qoe predicts viewer experience from delivered bandwidth: an
// analytic model mapping a session's delivered rate to the stall-seconds,
// startup wait and bitrate-switch count the internal/video player models
// would accrue over a horizon, and a plan-level aggregator mapping a
// routing outcome (topology + per-prefix route views + demands) to the
// predicted experience of every member session behind the demand
// aggregates.
//
// The point is closing the paper's loop: fibbing exists to serve video
// delivery, so the planner should be able to score a candidate lie set on
// what viewers would feel, not only on max link utilisation. The session
// model is calibrated against internal/video's ABR simulation
// (TestPredictorMatchesSimulation pins the agreement); the plan model is
// an analytic approximation of the fluid data plane's max-min fair
// allocation — per-link water-filling over the offered aggregates,
// bottleneck (min) combination along forwarding paths — cheap enough to
// memoise per candidate plan inside the planner's artifact cache.
package qoe

import (
	"math"
	"time"
)

// DefaultHorizon is the prediction window the controller scores plans
// over when no horizon is configured: long enough that steady-state
// stall rates dominate startup transients, short enough that the scores
// react to demand changes.
const DefaultHorizon = 30 * time.Second

// SessionConfig describes one member session's playback model. It
// mirrors video.ABRConfig field for field (the property tests in this
// package pin the two against each other); a single-rung ladder
// degenerates to the fixed-bitrate Player the scenario harness tracks.
type SessionConfig struct {
	// Ladder is the set of available bitrates in bit/s, ascending. A
	// single entry models a fixed-rate player.
	Ladder []float64
	// SegmentDuration of media per segment (default 2 s).
	SegmentDuration time.Duration
	// SafetyFactor scales the throughput estimate when choosing a rung
	// (default 0.8).
	SafetyFactor float64
	// StartupBuffer in media seconds that must accumulate before
	// playback starts or resumes (default 2).
	StartupBuffer float64
}

// withDefaults resolves the zero values exactly as video.ABRConfig does,
// and drops non-positive or non-finite rungs so a hostile ladder cannot
// poison the arithmetic.
func (c SessionConfig) withDefaults() SessionConfig {
	ladder := make([]float64, 0, len(c.Ladder))
	for _, r := range c.Ladder {
		if r > 0 && !math.IsInf(r, 0) && !math.IsNaN(r) {
			ladder = append(ladder, r)
		}
	}
	c.Ladder = ladder
	if c.SegmentDuration <= 0 {
		c.SegmentDuration = 2 * time.Second
	}
	if c.SafetyFactor <= 0 || math.IsNaN(c.SafetyFactor) || math.IsInf(c.SafetyFactor, 0) {
		c.SafetyFactor = 0.8
	}
	if c.StartupBuffer <= 0 || math.IsNaN(c.StartupBuffer) || math.IsInf(c.StartupBuffer, 0) {
		c.StartupBuffer = 2
	}
	sortFloats(c.Ladder)
	return c
}

// SessionPrediction is the predicted experience of one session watching
// for the horizon at a constant delivered rate.
type SessionPrediction struct {
	// StallSeconds is rebuffering time after playback started. A session
	// that never starts stalls zero seconds (matching video.Player,
	// which counts stall time only after the first start).
	StallSeconds float64
	// StartupWaitSeconds is time spent waiting for the first frame,
	// capped at the horizon (a starved session waits the whole run).
	StartupWaitSeconds float64
	// Switches is the predicted number of bitrate-rung changes.
	Switches float64
	// SteadyRate is the ladder rung (bit/s) the session settles on; 0
	// when the ladder is empty.
	SteadyRate float64
}

// Score folds a prediction into one pain figure: seconds of the horizon
// the viewer spends not watching (stalled or still waiting to start).
// Both terms are wall-clock seconds, so they add; the planner minimises
// this.
func (p SessionPrediction) Score() float64 {
	return p.StallSeconds + p.StartupWaitSeconds
}

// PredictSession models video.ABRSimSession at a constant delivered rate
// (bit/s) over the horizon.
//
// The model mirrors the simulation's mechanics: segments download at
// min(rate, 4x rung) — the session caps its flow at 4x the current rung —
// the throughput EWMA (alpha 0.4, first sample taken directly) drives
// chooseRung between segments, and the Player's buffer gates playback
// behind StartupBuffer media-seconds. At the steady rung L the playback
// duty cycle is f = delivered/L: for f < 1 the buffer drains, playback
// alternates B/(1-f) seconds of play with B/f of rebuffering, and the
// stalled share of post-startup time is (1-f).
func PredictSession(cfg SessionConfig, rate float64, horizon time.Duration) SessionPrediction {
	cfg = cfg.withDefaults()
	T := horizon.Seconds()
	if T <= 0 || len(cfg.Ladder) == 0 {
		return SessionPrediction{}
	}
	if math.IsNaN(rate) || rate < 0 {
		rate = 0
	}
	var p SessionPrediction

	// Walk the rung ramp segment by segment: measured throughput is
	// min(rate, 4x rung), the EWMA converges onto it, and chooseRung
	// reacts between segments. With a constant rate the walk is monotone
	// (the estimate only moves towards the current measured value, which
	// only grows with the rung), so it terminates at a fixed point.
	const alpha = 0.4
	est, started := 0.0, false
	rung := 0
	elapsed := 0.0
	for iter := 0; iter < 4*len(cfg.Ladder)+32; iter++ {
		delivered := math.Min(rate, 4*cfg.Ladder[rung])
		if delivered <= 0 {
			break // nothing arrives; the session sits at rung 0 forever
		}
		segTime := cfg.Ladder[rung] * cfg.SegmentDuration.Seconds() / delivered
		if elapsed+segTime > T {
			break // the horizon ends mid-ramp
		}
		elapsed += segTime
		if !started {
			est, started = delivered, true
		} else {
			est += alpha * (delivered - est)
		}
		next := chooseRung(cfg, est)
		if next != rung {
			p.Switches++
			rung = next
			continue
		}
		if math.Abs(delivered-est) <= 1e-6*math.Max(1, delivered) {
			break // estimate converged on the steady rung
		}
	}
	steady := cfg.Ladder[rung]
	p.SteadyRate = steady

	// Steady-state duty cycle at the settled rung.
	delivered := math.Min(rate, 4*steady)
	f := delivered / steady
	B := cfg.StartupBuffer
	if f <= 0 {
		// Nothing is ever delivered: the player waits for its first frame
		// the whole horizon and, never having started, never stalls.
		p.StartupWaitSeconds = T
		return p
	}
	startup := B / f
	if startup >= T {
		p.StartupWaitSeconds = T
		p.Switches = 0 // rung changes before the first frame are invisible
		return p
	}
	p.StartupWaitSeconds = startup
	if f < 1 {
		// Post-startup, the (1-f) share of remaining wall time is spent
		// rebuffering (play B/(1-f), stall B/f, repeat).
		p.StallSeconds = (1 - f) * (T - startup)
	}
	return p
}

// chooseRung mirrors ABRSimSession.chooseRung: the highest rung at or
// below SafetyFactor x estimate, defaulting to the lowest.
func chooseRung(cfg SessionConfig, estimate float64) int {
	best := 0
	for i, rate := range cfg.Ladder {
		if rate <= cfg.SafetyFactor*estimate {
			best = i
		}
	}
	return best
}

// sortFloats is a tiny insertion sort: ladders have a handful of rungs
// and this avoids pulling sort into the hot path's dependency surface.
func sortFloats(v []float64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}
