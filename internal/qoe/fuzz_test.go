package qoe

import (
	"math"
	"testing"
	"time"
)

// FuzzPredictSession drives the analytic session model with hostile
// inputs — zero and negative rates, delivered rates capped below the
// lowest ladder rung, NaN/Inf rates and config fields, degenerate
// horizons — and checks the predictions stay physical: every field
// finite and non-negative, stall plus startup wait never exceeding the
// horizon, and the steady rate drawn from the (sanitised) ladder.
func FuzzPredictSession(f *testing.F) {
	// rate, horizonSec, rung1, rung2, segMs, safety, startupBuffer
	f.Add(0.0, 30.0, 1e6, 2e6, int64(2000), 0.8, 2.0)      // starved session
	f.Add(5e4, 30.0, 1e6, 2e6, int64(2000), 0.8, 2.0)      // rate below lowest rung
	f.Add(1.5e6, 30.0, 1e6, 0.0, int64(2000), 0.8, 2.0)    // single-rung ladder
	f.Add(math.NaN(), 30.0, 1e6, 2e6, int64(2000), 0.8, 2.0)
	f.Add(math.Inf(1), 30.0, math.Inf(1), 2e6, int64(2000), 0.8, 2.0)
	f.Add(1e6, 0.0, 1e6, 2e6, int64(2000), 0.8, 2.0)       // zero horizon
	f.Add(-1e6, 30.0, -1e6, 2e6, int64(-5), math.NaN(), math.Inf(-1))
	f.Fuzz(func(t *testing.T, rate, horizonSec, rung1, rung2 float64, segMs int64, safety, buffer float64) {
		if math.IsNaN(horizonSec) || horizonSec < 0 || horizonSec > 1e6 {
			horizonSec = 30
		}
		horizon := time.Duration(horizonSec * float64(time.Second))
		cfg := SessionConfig{
			Ladder:          []float64{rung1, rung2},
			SegmentDuration: time.Duration(segMs) * time.Millisecond,
			SafetyFactor:    safety,
			StartupBuffer:   buffer,
		}
		p := PredictSession(cfg, rate, horizon)

		check := func(name string, v float64) {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				t.Errorf("PredictSession(%+v, rate=%v, horizon=%v): %s = %v is not finite and non-negative",
					cfg, rate, horizon, name, v)
			}
		}
		check("StallSeconds", p.StallSeconds)
		check("StartupWaitSeconds", p.StartupWaitSeconds)
		check("Switches", p.Switches)
		check("SteadyRate", p.SteadyRate)
		if s := p.Score(); math.IsNaN(s) || math.IsInf(s, 0) || s < 0 {
			t.Errorf("PredictSession(%+v, rate=%v, horizon=%v): Score() = %v", cfg, rate, horizon, s)
		}
		if T := horizon.Seconds(); p.StallSeconds+p.StartupWaitSeconds > T*(1+1e-9)+1e-9 {
			t.Errorf("PredictSession(%+v, rate=%v, horizon=%v): stall %v + wait %v exceeds horizon %vs",
				cfg, rate, horizon, p.StallSeconds, p.StartupWaitSeconds, T)
		}
	})
}
