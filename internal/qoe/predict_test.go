package qoe

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"fibbing.net/fibbing/internal/video"
)

// simAgreementTol is the stated tolerance of the calibration property:
// per session, the analytic predictor and the full ABR simulation may
// disagree by at most this fraction of the horizon on the pain score
// (stall + startup-wait seconds). The residual is real model error —
// the predictor's fluid duty cycle versus the simulation's discrete
// segments, 100 ms ticker and buffer hysteresis — and stays well under
// the differences the planner acts on (competing plans on the
// comparison cells differ by 3x, not 10%).
const simAgreementTol = 0.15

// TestPredictorMatchesSimulation is the calibration property of the
// analytic session model: across a table of ladder configurations and
// randomised delivered rates and member counts, PredictSession must
// agree with video.RunConstantRate — the real segment loop, EWMA
// estimator, rung chooser and player buffer, fed by a constant-rate tap
// — within simAgreementTol of the horizon per session. Failures print
// the offending aggregate spec so the case can be replayed directly.
func TestPredictorMatchesSimulation(t *testing.T) {
	ladders := []struct {
		name   string
		ladder []float64
	}{
		{"fixed-1M", []float64{1e6}},
		{"default", []float64{0.2e6, 0.5e6, 1.0e6}}, // video.DefaultLadder
		{"two-rung", []float64{0.5e6, 2e6}},
		{"dense", []float64{0.3e6, 0.7e6, 1.5e6, 4e6}},
	}
	const horizon = 30 * time.Second
	rng := rand.New(rand.NewSource(1))
	for _, lc := range ladders {
		lc := lc
		t.Run(lc.name, func(t *testing.T) {
			top := lc.ladder[len(lc.ladder)-1]
			for i := 0; i < 60; i++ {
				// Rates sweep starvation through saturation: [0, 2.5x top
				// rung], with a bias towards the contested band below the
				// top rung where stalls actually happen.
				rate := rng.Float64() * 2.5 * top
				if i%3 == 0 {
					rate = rng.Float64() * 1.2 * top
				}
				members := 1 + rng.Intn(200)

				// Both models sort their ladder in place: give each its own
				// copy so a shared backing array cannot couple the runs.
				pred := PredictSession(SessionConfig{
					Ladder: append([]float64(nil), lc.ladder...),
				}, rate, horizon)
				sim := video.RunConstantRate(video.ABRConfig{
					Ladder: append([]float64(nil), lc.ladder...),
				}, rate, horizon)

				simWait := sim.StartupDelay.Seconds()
				if sim.PlayedSec == 0 {
					// Playback never began: the viewer waited out the whole
					// run (the player leaves StartupDelay unset).
					simWait = horizon.Seconds()
				}
				simPain := sim.StallTime.Seconds() + simWait
				predPain := pred.Score()
				tol := simAgreementTol * horizon.Seconds()
				if diff := math.Abs(predPain - simPain); diff > tol {
					t.Errorf("aggregate {ladder=%s(%v) rate=%.0fbit/s members=%d horizon=%v}: "+
						"per-session pain: predicted %.2fs vs simulated %.2fs (|diff| %.2fs > tol %.2fs)\n"+
						"  aggregate pain: predicted %.1fs vs simulated %.1fs\n"+
						"  predicted %+v\n  simulated stall=%v startup=%v played=%.1fs switches=%d",
						lc.name, lc.ladder, rate, members, horizon,
						predPain, simPain, diff, tol,
						float64(members)*predPain, float64(members)*simPain,
						pred, sim.StallTime, sim.StartupDelay, sim.PlayedSec, sim.Switches)
				}
			}
		})
	}
}
