package qoe

import (
	"fmt"
	"math"
	"slices"
	"time"

	"fibbing.net/fibbing/internal/fibbing"
	"fibbing.net/fibbing/internal/topo"
)

// Model describes the viewer population behind a demand set, so a plan's
// routing outcome can be translated into per-session experience.
type Model struct {
	// Members counts the sessions behind each (prefix, ingress)
	// aggregate. A missing or non-positive entry means one session (the
	// aggregate is treated as a single fat flow).
	Members map[string]map[topo.NodeID]int
	// Session is the playback model shared by all sessions. A nil Ladder
	// means each aggregate's sessions play a fixed rate equal to their
	// natural per-session rate (volume/members) — the degenerate player
	// the scenario harness tracks when ABR is off.
	Session SessionConfig
	// Horizon is the prediction window (DefaultHorizon when zero).
	Horizon time.Duration
}

// PlanQoE is the predicted aggregate experience of every member session
// under one routing outcome.
type PlanQoE struct {
	// StallSeconds is the total predicted rebuffering time across
	// sessions.
	StallSeconds float64 `json:"stall_seconds"`
	// StartupWaitSeconds is the total predicted time-to-first-frame.
	StartupWaitSeconds float64 `json:"startup_wait_seconds"`
	// Switches is the total predicted bitrate-switch count.
	Switches float64 `json:"switches"`
	// Sessions is the member session count the totals cover.
	Sessions int `json:"sessions"`
}

// Score is the figure the planner minimises: total viewer-seconds spent
// not watching. See SessionPrediction.Score.
func (q PlanQoE) Score() float64 {
	return q.StallSeconds + q.StartupWaitSeconds
}

// aggregate is one (prefix, ingress) demand with its member population.
type aggregate struct {
	prefix  string
	ingress topo.NodeID
	volume  float64
	members float64
	rate    float64 // per-session offered rate: volume/members
}

// linkShare is one aggregate's offered volume on one link.
type linkShare struct {
	agg int     // index into the sorted aggregate slice
	vol float64 // offered volume (bit/s) of that aggregate on this link
}

// PredictPlan maps a routing outcome — topology, per-prefix route views
// (as produced by fibbing.Evaluate for a candidate lie set), demands —
// to the predicted aggregate experience of the member sessions.
//
// The delivered rate per session approximates the fluid data plane's
// max-min fair allocation in two passes:
//
//  1. Offered load: each aggregate's volume is pushed through its
//     forwarding DAG (ECMP-weight splits, like te.LinkLoads), recording
//     per-link per-aggregate offered volume.
//  2. Per-link water-filling: on each overloaded link, solve for the
//     fair share s with sum_i n_i*min(r_i, s) = capacity over the
//     (fractional) sessions present, giving each aggregate a survival
//     factor phi = min(1, s/r). Along a path factors combine by MIN —
//     a flow's rate is set by its tightest bottleneck, not the product
//     of independent losses — and at DAG merge points the per-path min
//     factors combine by volume-weighted mean.
//
// Every iteration order is explicitly sorted, so the result is
// byte-identical regardless of map layout or worker width.
func PredictPlan(t *topo.Topology, views map[string]map[topo.NodeID]fibbing.RouteView, demands []topo.Demand, m Model) (PlanQoE, error) {
	aggs := collectAggregates(demands, m)
	if len(aggs) == 0 {
		return PlanQoE{}, nil
	}
	horizon := m.Horizon
	if horizon <= 0 {
		horizon = DefaultHorizon
	}

	// Pass 1: per-aggregate offered volume on every link.
	offers := make(map[topo.LinkID][]linkShare)
	for i, a := range aggs {
		v, ok := views[a.prefix]
		if !ok {
			return PlanQoE{}, fmt.Errorf("qoe: no route views for prefix %q", a.prefix)
		}
		if err := offerVolumes(t, v, a.ingress, a.volume, i, offers); err != nil {
			return PlanQoE{}, fmt.Errorf("qoe: prefix %s: %w", a.prefix, err)
		}
	}

	// Pass 2a: water-fill each capacity-constrained link, yielding a
	// per-link per-aggregate survival factor (1 when unconstrained).
	factors := linkFactors(t, aggs, offers)

	// Pass 2b: per aggregate, bottleneck-combine the link factors along
	// its DAG to a delivered fraction, then predict the member sessions.
	var out PlanQoE
	for i, a := range aggs {
		frac := survivingFraction(t, views[a.prefix], a.ingress, i, factors)
		cfg := m.Session
		if cfg.Ladder == nil {
			cfg.Ladder = []float64{a.rate}
		}
		p := PredictSession(cfg, frac*a.rate, horizon)
		out.StallSeconds += a.members * p.StallSeconds
		out.StartupWaitSeconds += a.members * p.StartupWaitSeconds
		out.Switches += a.members * p.Switches
		out.Sessions += int(math.Round(a.members))
	}
	return out, nil
}

// collectAggregates merges demands per (prefix, ingress), attaches the
// member counts and sorts the result for deterministic iteration.
func collectAggregates(demands []topo.Demand, m Model) []aggregate {
	type key struct {
		prefix  string
		ingress topo.NodeID
	}
	merged := make(map[key]float64)
	for _, d := range demands {
		if d.Volume <= 0 || math.IsNaN(d.Volume) || math.IsInf(d.Volume, 0) {
			continue
		}
		merged[key{d.PrefixName, d.Ingress}] += d.Volume
	}
	aggs := make([]aggregate, 0, len(merged))
	for k, vol := range merged {
		n := 1
		if mm := m.Members[k.prefix]; mm != nil && mm[k.ingress] > 0 {
			n = mm[k.ingress]
		}
		aggs = append(aggs, aggregate{
			prefix:  k.prefix,
			ingress: k.ingress,
			volume:  vol,
			members: float64(n),
			rate:    vol / float64(n),
		})
	}
	slices.SortFunc(aggs, func(a, b aggregate) int {
		if a.prefix != b.prefix {
			if a.prefix < b.prefix {
				return -1
			}
			return 1
		}
		return int(a.ingress) - int(b.ingress)
	})
	return aggs
}

// topoWalk visits the forwarding DAG reachable from the rooted volume in
// a deterministic topological order, calling visit(u) for every node
// with the node's processing deferred until all its in-DAG predecessors
// ran. It mirrors te.propagate's indegree walk but always pops the
// smallest NodeID, so float accumulation order is reproducible.
func topoWalk(views map[topo.NodeID]fibbing.RouteView, visit func(u topo.NodeID) error) error {
	indeg := make(map[topo.NodeID]int, len(views))
	for u, v := range views {
		if _, ok := indeg[u]; !ok {
			indeg[u] = 0
		}
		for nh := range v.NextHops {
			indeg[nh]++
		}
	}
	queue := make([]topo.NodeID, 0, len(indeg))
	for u, d := range indeg {
		if d == 0 {
			queue = append(queue, u)
		}
	}
	slices.Sort(queue)
	processed := 0
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		processed++
		if err := visit(u); err != nil {
			return err
		}
		nhs := sortedHops(views[u].NextHops)
		for _, nh := range nhs {
			indeg[nh]--
			if indeg[nh] == 0 {
				at, _ := slices.BinarySearch(queue, nh)
				queue = slices.Insert(queue, at, nh)
			}
		}
	}
	if processed != len(indeg) {
		return fmt.Errorf("forwarding graph contains a cycle")
	}
	return nil
}

// sortedHops returns the next hops in NodeID order.
func sortedHops(w fibbing.NextHopWeights) []topo.NodeID {
	out := make([]topo.NodeID, 0, len(w))
	for nh := range w {
		out = append(out, nh)
	}
	slices.Sort(out)
	return out
}

// offerVolumes pushes one aggregate's volume through its forwarding DAG
// (ECMP-weight-proportional splits) and records the per-link offered
// volume under the aggregate's index.
func offerVolumes(t *topo.Topology, views map[topo.NodeID]fibbing.RouteView, ingress topo.NodeID, volume float64, agg int, offers map[topo.LinkID][]linkShare) error {
	vol := map[topo.NodeID]float64{ingress: volume}
	return topoWalk(views, func(u topo.NodeID) error {
		view := views[u]
		x := vol[u]
		if x <= 0 || view.Local {
			return nil
		}
		total := view.NextHops.Total()
		if total == 0 {
			return fmt.Errorf("traffic stranded at %s", t.Name(u))
		}
		for _, nh := range sortedHops(view.NextHops) {
			share := x * float64(view.NextHops[nh]) / float64(total)
			l, ok := t.FindLink(u, nh)
			if !ok {
				return fmt.Errorf("no link %s->%s", t.Name(u), t.Name(nh))
			}
			offers[l.ID] = append(offers[l.ID], linkShare{agg: agg, vol: share})
			vol[nh] += share
		}
		return nil
	})
}

// linkFactors water-fills every capacity-constrained link and returns,
// per link, the survival factor of each aggregate present on it: the
// fraction of a member session's rate that survives that hop under
// max-min fair sharing.
func linkFactors(t *topo.Topology, aggs []aggregate, offers map[topo.LinkID][]linkShare) map[topo.LinkID]map[int]float64 {
	ids := make([]topo.LinkID, 0, len(offers))
	for id := range offers {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	factors := make(map[topo.LinkID]map[int]float64, len(offers))
	for _, id := range ids {
		cap := t.Link(id).Capacity
		if cap <= 0 {
			continue // unconstrained link: factor 1 for everyone
		}
		shares := offers[id]
		// Merge duplicate entries for the same aggregate (a DAG can route
		// an aggregate onto the same link via several branches).
		byAgg := make(map[int]float64, len(shares))
		total := 0.0
		for _, s := range shares {
			byAgg[s.agg] += s.vol
			total += s.vol
		}
		if total <= cap {
			continue
		}
		// Water-fill: fractional session count per aggregate is the
		// member count scaled by the share of the aggregate's volume that
		// reaches this link; each such session asks for its rate r.
		type group struct {
			agg  int
			n    float64
			rate float64
		}
		groups := make([]group, 0, len(byAgg))
		for agg, vol := range byAgg {
			a := aggs[agg]
			groups = append(groups, group{agg: agg, n: a.members * vol / a.volume, rate: a.rate})
		}
		slices.SortFunc(groups, func(x, y group) int {
			if x.rate != y.rate {
				if x.rate < y.rate {
					return -1
				}
				return 1
			}
			return x.agg - y.agg
		})
		remCap, remN := cap, 0.0
		for _, g := range groups {
			remN += g.n
		}
		share := 0.0
		for _, g := range groups {
			if remN <= 0 {
				break
			}
			share = remCap / remN
			if g.rate <= share {
				// Fully satisfied demand: remove it and water-fill the rest.
				remCap -= g.n * g.rate
				remN -= g.n
				continue
			}
			break
		}
		f := make(map[int]float64, len(groups))
		for _, g := range groups {
			if g.rate <= share {
				f[g.agg] = 1
			} else if g.rate > 0 {
				f[g.agg] = share / g.rate
			}
		}
		factors[id] = f
	}
	return factors
}

// survivingFraction bottleneck-combines the per-link survival factors
// along one aggregate's forwarding DAG: traffic entering a link is
// damped to min(carried-so-far, link factor); at merge points the
// per-path minima combine by volume-weighted mean. The result is the
// fraction of a member session's rate that reaches the prefix.
func survivingFraction(t *topo.Topology, views map[topo.NodeID]fibbing.RouteView, ingress topo.NodeID, agg int, factors map[topo.LinkID]map[int]float64) float64 {
	arrived := map[topo.NodeID]float64{ingress: 1}
	damp := map[topo.NodeID]float64{ingress: 1} // arrival-weighted mean min-factor
	delivered := 0.0
	err := topoWalk(views, func(u topo.NodeID) error {
		view := views[u]
		a := arrived[u]
		if a <= 0 {
			return nil
		}
		if view.Local {
			delivered += a * damp[u]
			return nil
		}
		total := view.NextHops.Total()
		if total == 0 {
			return nil // stranded; offerVolumes already rejected this DAG
		}
		for _, nh := range sortedHops(view.NextHops) {
			share := a * float64(view.NextHops[nh]) / float64(total)
			phi := 1.0
			if l, ok := t.FindLink(u, nh); ok {
				if f, ok := factors[l.ID]; ok {
					if v, ok := f[agg]; ok {
						phi = v
					}
				}
			}
			m := math.Min(damp[u], phi)
			// Volume-weighted mean of the per-path min factors at the
			// merge point: damp holds sum(a_e*m_e)/sum(a_e).
			prev := arrived[nh]
			arrived[nh] = prev + share
			if arrived[nh] > 0 {
				damp[nh] = (damp[nh]*prev + m*share) / arrived[nh]
			}
		}
		return nil
	})
	if err != nil {
		return 0
	}
	if delivered < 0 {
		return 0
	}
	return math.Min(1, delivered)
}
