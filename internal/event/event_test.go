package event

import (
	"math/rand"
	"testing"
	"time"
)

func TestOrderingByTime(t *testing.T) {
	s := NewScheduler()
	var got []int
	s.At(30*time.Millisecond, func() { got = append(got, 3) })
	s.At(10*time.Millisecond, func() { got = append(got, 1) })
	s.At(20*time.Millisecond, func() { got = append(got, 2) })
	s.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("order = %v", got)
	}
	if s.Now() != 30*time.Millisecond {
		t.Fatalf("clock = %v", s.Now())
	}
}

func TestSameInstantFIFO(t *testing.T) {
	s := NewScheduler()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(time.Second, func() { got = append(got, i) })
	}
	s.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("FIFO violated: %v", got)
		}
	}
}

func TestAfterRelative(t *testing.T) {
	s := NewScheduler()
	var at time.Duration
	s.At(time.Second, func() {
		s.After(500*time.Millisecond, func() { at = s.Now() })
	})
	s.Run()
	if at != 1500*time.Millisecond {
		t.Fatalf("After fired at %v", at)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := NewScheduler()
	s.At(time.Second, func() {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Fatalf("want panic")
		}
	}()
	s.At(500*time.Millisecond, func() {})
}

func TestCancel(t *testing.T) {
	s := NewScheduler()
	fired := false
	h := s.At(time.Second, func() { fired = true })
	if !s.Cancel(h) {
		t.Fatalf("Cancel failed")
	}
	if s.Cancel(h) {
		t.Fatalf("double Cancel succeeded")
	}
	s.Run()
	if fired {
		t.Fatalf("cancelled event fired")
	}
}

func TestRunUntil(t *testing.T) {
	s := NewScheduler()
	var fired []time.Duration
	for _, d := range []time.Duration{time.Second, 2 * time.Second, 3 * time.Second} {
		d := d
		s.At(d, func() { fired = append(fired, d) })
	}
	s.RunUntil(2 * time.Second)
	if len(fired) != 2 {
		t.Fatalf("fired = %v", fired)
	}
	if s.Now() != 2*time.Second {
		t.Fatalf("clock = %v, want 2s", s.Now())
	}
	if s.Pending() != 1 {
		t.Fatalf("pending = %d", s.Pending())
	}
	// RunUntil past the last event advances the clock to the target.
	s.RunUntil(10 * time.Second)
	if s.Now() != 10*time.Second || len(fired) != 3 {
		t.Fatalf("clock = %v, fired = %v", s.Now(), fired)
	}
}

func TestStepEmpty(t *testing.T) {
	s := NewScheduler()
	if s.Step() {
		t.Fatalf("Step on empty queue returned true")
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	s := NewScheduler()
	count := 0
	var chain func()
	chain = func() {
		count++
		if count < 5 {
			s.After(time.Second, chain)
		}
	}
	s.After(time.Second, chain)
	s.Run()
	if count != 5 {
		t.Fatalf("count = %d", count)
	}
	if s.Now() != 5*time.Second {
		t.Fatalf("clock = %v", s.Now())
	}
	if s.Ran() != 5 {
		t.Fatalf("Ran = %d", s.Ran())
	}
}

func TestTicker(t *testing.T) {
	s := NewScheduler()
	var ticks []time.Duration
	tk := s.NewTicker(time.Second, func() {
		ticks = append(ticks, s.Now())
	})
	s.RunUntil(3500 * time.Millisecond)
	tk.Stop()
	s.RunUntil(10 * time.Second)
	if len(ticks) != 3 {
		t.Fatalf("ticks = %v", ticks)
	}
	for i, want := range []time.Duration{time.Second, 2 * time.Second, 3 * time.Second} {
		if ticks[i] != want {
			t.Fatalf("tick %d at %v, want %v", i, ticks[i], want)
		}
	}
}

func TestTickerStopFromCallback(t *testing.T) {
	s := NewScheduler()
	count := 0
	var tk *Ticker
	tk = s.NewTicker(time.Second, func() {
		count++
		if count == 2 {
			tk.Stop()
		}
	})
	s.Run()
	if count != 2 {
		t.Fatalf("count = %d", count)
	}
}

func TestNilCallbackPanics(t *testing.T) {
	s := NewScheduler()
	defer func() {
		if recover() == nil {
			t.Fatalf("want panic")
		}
	}()
	s.At(time.Second, nil)
}

// pendingScan is the O(n) definition Pending replaced: the number of
// queued events. Since Cancel now removes its entry from the heap
// immediately, every queued entry is live.
func pendingScan(s *Scheduler) int {
	return len(s.queue)
}

// TestPendingCounterMatchesScan churns the scheduler through random
// schedule/cancel/step sequences and asserts the O(1) live counter always
// equals the O(n) queue scan.
func TestPendingCounterMatchesScan(t *testing.T) {
	s := NewScheduler()
	rng := rand.New(rand.NewSource(7))
	var handles []Handle
	check := func(op string) {
		t.Helper()
		if got, want := s.Pending(), pendingScan(s); got != want {
			t.Fatalf("after %s: Pending() = %d, scan = %d", op, got, want)
		}
	}
	for i := 0; i < 2000; i++ {
		switch rng.Intn(4) {
		case 0, 1:
			h := s.At(s.Now()+time.Duration(rng.Intn(50))*time.Millisecond, func() {})
			handles = append(handles, h)
			check("At")
		case 2:
			if len(handles) > 0 {
				j := rng.Intn(len(handles))
				s.Cancel(handles[j]) // double-cancel and fired handles included
				check("Cancel")
			}
		case 3:
			s.Step()
			check("Step")
		}
	}
	s.Run()
	check("Run")
	if s.Pending() != 0 {
		t.Fatalf("drained queue has Pending() = %d", s.Pending())
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := NewScheduler()
		for j := 0; j < 100; j++ {
			s.At(time.Duration(j)*time.Millisecond, func() {})
		}
		s.Run()
	}
}
