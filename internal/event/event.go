// Package event provides the discrete-event simulation kernel shared by the
// IGP flooding simulation and the fluid data-plane simulator.
//
// A Scheduler owns a virtual clock and a time-ordered queue of callbacks.
// Events scheduled for the same instant fire in scheduling order (FIFO),
// which keeps simulations deterministic.
//
// # Parallel batches
//
// Most events are opaque closures and must run one at a time. Events
// scheduled with AtParallel/AfterParallel instead declare two phases: a
// compute phase that only reads shared state and writes state owned by the
// event, and a commit phase that publishes the result. When StepBatch finds
// a contiguous run of such events at the head instant it fans the compute
// phases out to a worker pool and then runs the commit phases sequentially
// in FIFO order — exactly the order the sequential core would have used, so
// the output is byte-identical regardless of worker count.
//
// The independence contract for same-batch parallel events: a compute phase
// must not write state read by another compute phase, must not touch the
// scheduler (At/After/Cancel), and a commit phase must not cancel another
// event in the same batch. Commits may schedule freely.
package event

import (
	"container/heap"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Scheduler is a discrete-event loop driven from one goroutine; worker
// goroutines exist only inside StepBatch and RunParallel, between fan-out
// and the WaitGroup barrier. It is not safe for concurrent use; simulations drive
// it from one goroutine and expose snapshots to others behind their own
// locks.
type Scheduler struct {
	now     time.Duration
	queue   eventHeap
	seq     uint64
	ran     uint64
	pending int

	workers int
	batch   []*scheduled // scratch reused across StepBatch calls
	free    []*scheduled // recycled event structs: At is allocation-free
	stats   ParallelStats
}

// ParallelStats is the scheduler's parallel-execution telemetry.
type ParallelStats struct {
	// Workers is the configured pool width (1 = sequential core).
	Workers int `json:"workers"`
	// Batches counts multi-event parallel batches executed.
	Batches uint64 `json:"batches"`
	// BatchedEvents counts events that ran inside those batches.
	BatchedEvents uint64 `json:"batched_events"`
	// SoloParallel counts parallel-capable events that ran alone (no
	// same-instant sibling to batch with).
	SoloParallel uint64 `json:"solo_parallel"`
	// MaxBatch is the largest batch seen.
	MaxBatch int `json:"max_batch"`
}

// Handle identifies a scheduled event so it can be cancelled. The zero
// Handle is valid and cancels nothing.
type Handle struct {
	ev *scheduled
	// seq guards against event-struct reuse: Cancel only acts when the
	// struct still holds the scheduling this handle was issued for.
	seq uint64
}

type scheduled struct {
	at      time.Duration
	seq     uint64
	fn      func() // the event body; for parallel events, the commit phase
	compute func() // non-nil marks a parallel-capable event
	index   int
}

// NewScheduler returns a scheduler with the clock at zero and a worker
// pool sized by GOMAXPROCS.
func NewScheduler() *Scheduler {
	s := &Scheduler{}
	s.SetWorkers(0)
	return s
}

// SetWorkers sets the parallel-batch pool width. n <= 0 means GOMAXPROCS;
// 1 selects the pure sequential core (parallel events still run, one at a
// time, in FIFO order). Changing the width mid-run is allowed but not
// between a batch's compute and commit phases (i.e. not from callbacks).
func (s *Scheduler) SetWorkers(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	s.workers = n
}

// Workers returns the configured pool width.
func (s *Scheduler) Workers() int { return s.workers }

// Parallel returns a snapshot of the parallel-execution telemetry.
func (s *Scheduler) Parallel() ParallelStats {
	st := s.stats
	st.Workers = s.workers
	return st
}

// Now returns the current virtual time.
func (s *Scheduler) Now() time.Duration { return s.now }

// Ran returns the number of events executed so far (telemetry for tests
// and benchmarks). Events run in a parallel batch count once each, so the
// total matches the sequential core exactly.
func (s *Scheduler) Ran() uint64 { return s.ran }

// Pending returns the number of events still queued (scheduled, not yet
// fired, not cancelled). The count is maintained live by At/Cancel/Step,
// so this is O(1) — simulations poll it inside hot loops.
func (s *Scheduler) Pending() int { return s.pending }

func (s *Scheduler) newEvent(t time.Duration, compute, fn func()) Handle {
	if t < s.now {
		panic(fmt.Sprintf("event: scheduling at %v before now %v", t, s.now))
	}
	var ev *scheduled
	if n := len(s.free); n > 0 {
		ev = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
	} else {
		ev = &scheduled{}
	}
	ev.at, ev.seq, ev.fn, ev.compute = t, s.seq, fn, compute
	s.seq++
	heap.Push(&s.queue, ev)
	s.pending++
	return Handle{ev: ev, seq: ev.seq}
}

// release returns a fired event struct to the freelist. The seq bump-proof
// is the Handle.seq check: a stale handle never matches a recycled struct.
func (s *Scheduler) release(ev *scheduled) {
	ev.fn, ev.compute = nil, nil
	ev.index = -1
	s.free = append(s.free, ev)
}

// At schedules fn at absolute virtual time t. Scheduling in the past
// (before Now) panics: that is always a simulation bug.
func (s *Scheduler) At(t time.Duration, fn func()) Handle {
	if fn == nil {
		panic("event: nil callback")
	}
	return s.newEvent(t, nil, fn)
}

// After schedules fn d after the current virtual time.
func (s *Scheduler) After(d time.Duration, fn func()) Handle {
	if d < 0 {
		panic("event: negative delay")
	}
	return s.At(s.now+d, fn)
}

// AtParallel schedules a two-phase event at absolute time t: compute may
// run concurrently with other same-instant parallel events' computes (see
// the package comment for the independence contract), then commit runs on
// the scheduler goroutine in FIFO order. commit may be nil.
func (s *Scheduler) AtParallel(t time.Duration, compute, commit func()) Handle {
	if compute == nil {
		panic("event: nil compute phase")
	}
	return s.newEvent(t, compute, commit)
}

// AfterParallel schedules a two-phase parallel event d after now.
func (s *Scheduler) AfterParallel(d time.Duration, compute, commit func()) Handle {
	if d < 0 {
		panic("event: negative delay")
	}
	return s.AtParallel(s.now+d, compute, commit)
}

// Cancel prevents a scheduled event from firing. Cancelling an event that
// already fired (or was already cancelled) is a no-op returning false.
// The entry is removed from the heap immediately, so cancel-heavy
// workloads (ticker stops, SPF debounce re-arms, retransmit acks) don't
// grow the queue unboundedly.
func (s *Scheduler) Cancel(h Handle) bool {
	if h.ev == nil || h.ev.index < 0 || h.ev.seq != h.seq {
		return false
	}
	ev := heap.Remove(&s.queue, h.ev.index).(*scheduled)
	s.pending--
	s.release(ev)
	return true
}

// runOne executes a single event sequentially (compute then commit for
// parallel events) and recycles its struct.
func (s *Scheduler) runOne(ev *scheduled) {
	s.ran++
	s.pending--
	compute, fn := ev.compute, ev.fn
	s.release(ev)
	if compute != nil {
		compute()
	}
	if fn != nil {
		fn()
	}
}

// Step runs the earliest pending event, advancing the clock to its time.
// It returns false when the queue is empty. Parallel events run both
// phases inline, preserving the sequential core's exact semantics.
func (s *Scheduler) Step() bool {
	if s.queue.Len() == 0 {
		return false
	}
	ev := heap.Pop(&s.queue).(*scheduled)
	s.now = ev.at
	s.runOne(ev)
	return true
}

// StepBatch runs the earliest pending event like Step, but when that event
// is parallel-capable it also drains the maximal contiguous FIFO run of
// same-instant parallel events, fanning their compute phases out to the
// worker pool before committing in FIFO order. With Workers() == 1 it is
// exactly Step. Returns false when the queue is empty.
func (s *Scheduler) StepBatch() bool {
	if s.queue.Len() == 0 {
		return false
	}
	ev := heap.Pop(&s.queue).(*scheduled)
	s.now = ev.at
	if ev.compute == nil || s.workers <= 1 {
		s.runOne(ev)
		return true
	}
	// Collect the batch: same instant, parallel, with no non-parallel
	// event interleaved in FIFO order (the heap head is always the next
	// FIFO event, so stopping at the first mismatch preserves ordering).
	batch := append(s.batch[:0], ev)
	for s.queue.Len() > 0 {
		next := s.queue[0]
		if next.at != ev.at || next.compute == nil {
			break
		}
		heap.Pop(&s.queue)
		batch = append(batch, next)
	}
	s.batch = batch[:0] // retain scratch capacity, drop references below
	if len(batch) == 1 {
		s.stats.SoloParallel++
		s.runOne(ev)
		return true
	}
	s.runBatch(batch)
	for i := range batch {
		batch[i] = nil
	}
	return true
}

// runBatch fans compute phases out to min(workers, len(batch)) goroutines
// coordinated by a WaitGroup and an atomic cursor, then commits in FIFO
// order on the scheduler goroutine. A panicking compute is re-panicked
// here after the pool drains, so the failure surfaces on the driving
// goroutine like any sequential event panic.
func (s *Scheduler) runBatch(batch []*scheduled) {
	n := len(batch)
	s.stats.Batches++
	s.stats.BatchedEvents += uint64(n)
	if n > s.stats.MaxBatch {
		s.stats.MaxBatch = n
	}
	w := s.workers
	if w > n {
		w = n
	}
	var (
		cursor atomic.Int64
		wg     sync.WaitGroup
	)
	panics := make([]any, w)
	wg.Add(w)
	for i := 0; i < w; i++ {
		go func(slot int) {
			defer wg.Done()
			for {
				j := cursor.Add(1) - 1
				if j >= int64(n) {
					return
				}
				func() {
					defer func() {
						if p := recover(); p != nil && panics[slot] == nil {
							panics[slot] = p
						}
					}()
					batch[j].compute()
				}()
			}
		}(i)
	}
	wg.Wait()
	for _, p := range panics {
		if p != nil {
			panic(p)
		}
	}
	for _, ev := range batch {
		s.ran++
		s.pending--
		fn := ev.fn
		s.release(ev)
		if fn != nil {
			fn()
		}
	}
}

// RunParallel executes independent tasks on a transient worker pool of the
// scheduler's configured width and returns when all have completed. It is
// the worker-pool primitive behind runBatch, exposed for simulation
// components (the netsim reshare fans per-component max-min solves through
// it) that need a join inside a single event rather than across a batch.
// Tasks must be mutually independent: no task may write state another task
// reads, and none may touch the scheduler. With Workers() <= 1 or a single
// task the tasks run inline, in slice order, on the calling goroutine — the
// deterministic core. A panicking task is re-panicked on the caller after
// the pool drains.
func (s *Scheduler) RunParallel(tasks []func()) {
	n := len(tasks)
	if n == 0 {
		return
	}
	w := s.workers
	if w > n {
		w = n
	}
	if w <= 1 {
		for _, task := range tasks {
			task()
		}
		return
	}
	var (
		cursor atomic.Int64
		wg     sync.WaitGroup
	)
	panics := make([]any, w)
	wg.Add(w)
	for i := 0; i < w; i++ {
		go func(slot int) {
			defer wg.Done()
			for {
				j := cursor.Add(1) - 1
				if j >= int64(n) {
					return
				}
				func() {
					defer func() {
						if p := recover(); p != nil && panics[slot] == nil {
							panics[slot] = p
						}
					}()
					tasks[j]()
				}()
			}
		}(i)
	}
	wg.Wait()
	for _, p := range panics {
		if p != nil {
			panic(p)
		}
	}
}

// RunUntil executes events until the clock would pass t; the clock is left
// at exactly t. Events scheduled for t itself do fire.
func (s *Scheduler) RunUntil(t time.Duration) {
	for s.queue.Len() > 0 && s.queue[0].at <= t {
		s.StepBatch()
	}
	if s.now < t {
		s.now = t
	}
}

// Run executes events until the queue drains.
func (s *Scheduler) Run() {
	for s.StepBatch() {
	}
}

// eventHeap orders by (time, sequence) so same-instant events fire FIFO.
type eventHeap []*scheduled

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*scheduled)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Ticker fires a callback at a fixed period until stopped, mirroring
// time.Ticker inside virtual time (used by the SNMP poller and LSA refresh).
type Ticker struct {
	s      *Scheduler
	period time.Duration
	fn     func()
	tick   func() // built once; re-arming allocates no closures
	handle Handle
	stop   bool
}

// NewTicker starts a ticker whose first tick fires one period from now.
func (s *Scheduler) NewTicker(period time.Duration, fn func()) *Ticker {
	if period <= 0 {
		panic("event: non-positive ticker period")
	}
	t := &Ticker{s: s, period: period, fn: fn}
	t.tick = func() {
		if t.stop {
			return
		}
		t.fn()
		if !t.stop {
			t.arm()
		}
	}
	t.arm()
	return t
}

func (t *Ticker) arm() {
	t.handle = t.s.After(t.period, t.tick)
}

// Stop cancels the ticker.
func (t *Ticker) Stop() {
	t.stop = true
	t.s.Cancel(t.handle)
}
