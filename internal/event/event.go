// Package event provides the discrete-event simulation kernel shared by the
// IGP flooding simulation and the fluid data-plane simulator.
//
// A Scheduler owns a virtual clock and a time-ordered queue of callbacks.
// Events scheduled for the same instant fire in scheduling order (FIFO),
// which keeps simulations deterministic.
package event

import (
	"container/heap"
	"fmt"
	"time"
)

// Scheduler is a single-threaded discrete-event loop. It is not safe for
// concurrent use; simulations drive it from one goroutine and expose
// snapshots to others behind their own locks.
type Scheduler struct {
	now     time.Duration
	queue   eventHeap
	seq     uint64
	ran     uint64
	pending int
}

// Handle identifies a scheduled event so it can be cancelled.
type Handle struct {
	ev *scheduled
}

type scheduled struct {
	at        time.Duration
	seq       uint64
	fn        func()
	cancelled bool
	index     int
}

// NewScheduler returns a scheduler with the clock at zero.
func NewScheduler() *Scheduler {
	return &Scheduler{}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() time.Duration { return s.now }

// Ran returns the number of events executed so far (telemetry for tests
// and benchmarks).
func (s *Scheduler) Ran() uint64 { return s.ran }

// Pending returns the number of events still queued (scheduled, not yet
// fired, not cancelled). The count is maintained live by At/Cancel/Step,
// so this is O(1) — simulations poll it inside hot loops.
func (s *Scheduler) Pending() int { return s.pending }

// At schedules fn at absolute virtual time t. Scheduling in the past
// (before Now) panics: that is always a simulation bug.
func (s *Scheduler) At(t time.Duration, fn func()) Handle {
	if t < s.now {
		panic(fmt.Sprintf("event: scheduling at %v before now %v", t, s.now))
	}
	if fn == nil {
		panic("event: nil callback")
	}
	ev := &scheduled{at: t, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.queue, ev)
	s.pending++
	return Handle{ev: ev}
}

// After schedules fn d after the current virtual time.
func (s *Scheduler) After(d time.Duration, fn func()) Handle {
	if d < 0 {
		panic("event: negative delay")
	}
	return s.At(s.now+d, fn)
}

// Cancel prevents a scheduled event from firing. Cancelling an event that
// already fired (or was already cancelled) is a no-op returning false.
func (s *Scheduler) Cancel(h Handle) bool {
	if h.ev == nil || h.ev.cancelled || h.ev.index < 0 {
		return false
	}
	h.ev.cancelled = true
	s.pending--
	return true
}

// Step runs the earliest pending event, advancing the clock to its time.
// It returns false when the queue is empty.
func (s *Scheduler) Step() bool {
	for s.queue.Len() > 0 {
		ev := heap.Pop(&s.queue).(*scheduled)
		if ev.cancelled {
			continue // already uncounted by Cancel
		}
		s.now = ev.at
		s.ran++
		s.pending--
		ev.fn()
		return true
	}
	return false
}

// RunUntil executes events until the clock would pass t; the clock is left
// at exactly t. Events scheduled for t itself do fire.
func (s *Scheduler) RunUntil(t time.Duration) {
	for s.queue.Len() > 0 {
		next := s.peek()
		if next == nil {
			break
		}
		if next.at > t {
			break
		}
		s.Step()
	}
	if s.now < t {
		s.now = t
	}
}

// Run executes events until the queue drains.
func (s *Scheduler) Run() {
	for s.Step() {
	}
}

func (s *Scheduler) peek() *scheduled {
	for s.queue.Len() > 0 {
		if s.queue[0].cancelled {
			heap.Pop(&s.queue)
			continue
		}
		return s.queue[0]
	}
	return nil
}

// eventHeap orders by (time, sequence) so same-instant events fire FIFO.
type eventHeap []*scheduled

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*scheduled)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Ticker fires a callback at a fixed period until stopped, mirroring
// time.Ticker inside virtual time (used by the SNMP poller and LSA refresh).
type Ticker struct {
	s      *Scheduler
	period time.Duration
	fn     func()
	handle Handle
	stop   bool
}

// NewTicker starts a ticker whose first tick fires one period from now.
func (s *Scheduler) NewTicker(period time.Duration, fn func()) *Ticker {
	if period <= 0 {
		panic("event: non-positive ticker period")
	}
	t := &Ticker{s: s, period: period, fn: fn}
	t.arm()
	return t
}

func (t *Ticker) arm() {
	t.handle = t.s.After(t.period, func() {
		if t.stop {
			return
		}
		t.fn()
		if !t.stop {
			t.arm()
		}
	})
}

// Stop cancels the ticker.
func (t *Ticker) Stop() {
	t.stop = true
	t.s.Cancel(t.handle)
}
