package event

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// TestParallelBatchCommitOrder schedules a mix of parallel and plain
// events at one instant and asserts the observable order matches the
// sequential core exactly: computes may run in any order, but commits and
// plain events fire in FIFO scheduling order.
func TestParallelBatchCommitOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			s := NewScheduler()
			s.SetWorkers(workers)
			var order []string
			for i := 0; i < 5; i++ {
				i := i
				s.AtParallel(time.Second, func() {}, func() {
					order = append(order, fmt.Sprintf("p%d", i))
				})
			}
			s.At(time.Second, func() { order = append(order, "plain") })
			for i := 5; i < 8; i++ {
				i := i
				s.AtParallel(time.Second, func() {}, func() {
					order = append(order, fmt.Sprintf("p%d", i))
				})
			}
			s.Run()
			want := "[p0 p1 p2 p3 p4 plain p5 p6 p7]"
			if got := fmt.Sprint(order); got != want {
				t.Fatalf("commit order = %v, want %v", got, want)
			}
			if s.Ran() != 9 {
				t.Fatalf("Ran() = %d, want 9", s.Ran())
			}
		})
	}
}

// TestParallelComputesRunConcurrently proves the fan-out is real: with a
// pool of 4, four compute phases block until all four have started, which
// deadlocks unless they run on distinct goroutines. Under GOMAXPROCS=1
// the goroutines still interleave (the spin loop yields via atomic ops and
// Gosched is not required because the barrier uses channels).
func TestParallelComputesRunConcurrently(t *testing.T) {
	s := NewScheduler()
	s.SetWorkers(4)
	started := make(chan struct{}, 4)
	release := make(chan struct{})
	var commits atomic.Int32
	for i := 0; i < 4; i++ {
		s.AtParallel(0, func() {
			started <- struct{}{}
			<-release
		}, func() { commits.Add(1) })
	}
	done := make(chan struct{})
	go func() {
		for i := 0; i < 4; i++ {
			<-started
		}
		close(release)
		close(done)
	}()
	s.Run()
	<-done
	if commits.Load() != 4 {
		t.Fatalf("commits = %d, want 4", commits.Load())
	}
}

// TestParallelBatchBoundary: a non-parallel event between two parallel
// runs at the same instant splits the batch, so the plain event's effects
// are visible to the later computes exactly as in the sequential core.
func TestParallelBatchBoundary(t *testing.T) {
	s := NewScheduler()
	s.SetWorkers(4)
	shared := 0
	var seen [2]int
	s.AtParallel(0, func() { seen[0] = shared }, nil)
	s.At(0, func() { shared = 42 })
	s.AtParallel(0, func() { seen[1] = shared }, nil)
	s.Run()
	if seen[0] != 0 || seen[1] != 42 {
		t.Fatalf("seen = %v, want [0 42]", seen)
	}
	st := s.Parallel()
	if st.Batches != 0 || st.SoloParallel != 2 {
		t.Fatalf("stats = %+v, want two solo parallel events", st)
	}
}

// TestParallelStats checks the batch telemetry counters.
func TestParallelStats(t *testing.T) {
	s := NewScheduler()
	s.SetWorkers(3)
	for i := 0; i < 5; i++ {
		s.AtParallel(time.Second, func() {}, nil)
	}
	s.AtParallel(2*time.Second, func() {}, nil)
	s.Run()
	st := s.Parallel()
	if st.Workers != 3 || st.Batches != 1 || st.BatchedEvents != 5 ||
		st.SoloParallel != 1 || st.MaxBatch != 5 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestParallelPanicPropagates: a panic in a compute phase must surface on
// the scheduler goroutine, not kill a worker silently.
func TestParallelPanicPropagates(t *testing.T) {
	s := NewScheduler()
	s.SetWorkers(2)
	s.AtParallel(0, func() { panic("boom") }, nil)
	s.AtParallel(0, func() {}, nil)
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recover = %v, want boom", r)
		}
	}()
	s.Run()
	t.Fatalf("no panic")
}

// TestCancelRemovesFromHeap asserts the cancelled-event leak is gone: the
// queue length shrinks immediately on Cancel instead of retaining dead
// entries until their instant is reached.
func TestCancelRemovesFromHeap(t *testing.T) {
	s := NewScheduler()
	var hs []Handle
	for i := 0; i < 100; i++ {
		hs = append(hs, s.At(time.Duration(i+1)*time.Hour, func() {}))
	}
	for i, h := range hs {
		if i%2 == 0 {
			if !s.Cancel(h) {
				t.Fatalf("cancel %d failed", i)
			}
		}
	}
	if len(s.queue) != 50 {
		t.Fatalf("queue holds %d entries after cancelling half, want 50", len(s.queue))
	}
	if s.Pending() != 50 {
		t.Fatalf("Pending() = %d, want 50", s.Pending())
	}
	// Double-cancel and cancel-after-fire stay no-ops with recycled
	// event structs: the handle's seq guard must reject stale structs.
	if s.Cancel(hs[0]) {
		t.Fatal("double cancel returned true")
	}
	h := s.At(time.Minute, func() {})
	for s.Step() {
	}
	if s.Cancel(h) {
		t.Fatal("cancel after fire returned true")
	}
}

// TestStaleHandleAfterReuse: firing an event recycles its struct; a new
// event reusing it must not be cancellable through the old handle.
func TestStaleHandleAfterReuse(t *testing.T) {
	s := NewScheduler()
	stale := s.At(0, func() {})
	s.Step() // fires, struct goes to the freelist
	ran := false
	s.At(time.Second, func() { ran = true }) // reuses the struct
	if s.Cancel(stale) {
		t.Fatal("stale handle cancelled a recycled event")
	}
	s.Run()
	if !ran {
		t.Fatal("recycled event did not fire")
	}
}

// TestTickerTickAllocFree: after warm-up, each tick re-arms without
// allocating (the hoisted closure plus the event-struct freelist).
func TestTickerTickAllocFree(t *testing.T) {
	s := NewScheduler()
	tick := 0
	s.NewTicker(time.Second, func() { tick++ })
	s.RunUntil(10 * time.Second) // warm the freelist and heap capacity
	allocs := testing.AllocsPerRun(100, func() {
		s.RunUntil(s.Now() + time.Second)
	})
	if allocs > 0 {
		t.Fatalf("ticker tick allocates %.1f times per period, want 0", allocs)
	}
	if tick < 100 {
		t.Fatalf("ticks = %d", tick)
	}
}

// TestSchedulingAllocFree: At on a warmed scheduler reuses freelist
// structs — the flood hot path schedules millions of events.
func TestSchedulingAllocFree(t *testing.T) {
	s := NewScheduler()
	fn := func() {}
	for i := 0; i < 100; i++ {
		s.At(time.Duration(i), fn)
	}
	for s.Step() {
	}
	allocs := testing.AllocsPerRun(100, func() {
		s.After(time.Millisecond, fn)
		s.Step()
	})
	if allocs > 0 {
		t.Fatalf("schedule+step allocates %.1f times, want 0", allocs)
	}
}

// TestRunUntilBatch: RunUntil must not run a batch whose instant is past
// the horizon, and leaves the clock at exactly t.
func TestRunUntilBatch(t *testing.T) {
	s := NewScheduler()
	s.SetWorkers(4)
	ran := 0
	for i := 0; i < 3; i++ {
		s.AtParallel(time.Second, func() {}, func() { ran++ })
		s.AtParallel(3*time.Second, func() {}, func() { ran++ })
	}
	s.RunUntil(2 * time.Second)
	if ran != 3 {
		t.Fatalf("ran = %d, want 3", ran)
	}
	if s.Now() != 2*time.Second {
		t.Fatalf("now = %v", s.Now())
	}
	s.RunUntil(3 * time.Second)
	if ran != 6 {
		t.Fatalf("ran = %d, want 6", ran)
	}
}

// TestParallelDeterminismUnderLoad runs the same randomised parallel
// workload with 1 and 8 workers and requires identical commit traces and
// telemetry-relevant counters. Run with -race this also exercises the
// worker pool for data races on the scheduler's own state.
func TestParallelDeterminismUnderLoad(t *testing.T) {
	trace := func(workers int) (string, uint64) {
		s := NewScheduler()
		s.SetWorkers(workers)
		var log []string
		// A self-expanding workload: each commit schedules more work,
		// some parallel, some not, some cancelled.
		var grow func(depth, id int)
		grow = func(depth, id int) {
			if depth == 0 {
				return
			}
			for i := 0; i < 3; i++ {
				i, id := i, id
				local := 0
				s.AfterParallel(time.Duration(i%2+1)*time.Millisecond,
					func() { local = id*10 + i },
					func() {
						log = append(log, fmt.Sprintf("c%d.%d=%d", depth, i, local))
						grow(depth-1, id+i)
					})
			}
			h := s.After(time.Millisecond, func() { log = append(log, "never") })
			s.Cancel(h)
			s.After(2*time.Millisecond, func() { log = append(log, fmt.Sprintf("plain%d", depth)) })
		}
		grow(4, 1)
		s.Run()
		return fmt.Sprint(log), s.Ran()
	}
	seqLog, seqRan := trace(1)
	parLog, parRan := trace(8)
	if seqLog != parLog {
		t.Fatalf("traces differ:\nseq: %s\npar: %s", seqLog, parLog)
	}
	if seqRan != parRan {
		t.Fatalf("Ran() differs: %d vs %d", seqRan, parRan)
	}
}
