package scenarios

// The scenario matrix: the cross product of the topology zoo and the
// workload/failure schedules that every scaling PR regresses against.

// MatrixTopologies is the zoo swept by the matrix: six families spanning
// the paper's gadget, a real ISP backbone, a data-center fabric, the
// minimal two-path ring, and two random WAN models. Seeds are pinned so
// every cell is deterministic.
func MatrixTopologies() []TopoSpec {
	return []TopoSpec{
		{Family: "fig1"},
		{Family: "abilene"},
		{Family: "fattree", Size: 4, Seed: 2},
		{Family: "ring", Size: 9},
		{Family: "waxman", Size: 16, Seed: 13},
		{Family: "random", Size: 12, Seed: 3},
	}
}

// MatrixSchedules is the workload x failure set of the matrix: a step
// surge, a Poisson flash crowd, and a ramp with a link flap mid-run.
func MatrixSchedules() []struct{ Workload, Failure string } {
	return []struct{ Workload, Failure string }{
		{"surge", ""},
		{"flash", ""},
		{"ramp", "flap"},
	}
}

// MatrixSpecs returns the full cross product (topologies x schedules),
// one Spec per cell, each with a per-cell seed.
func MatrixSpecs() []Spec {
	var specs []Spec
	for ti, ts := range MatrixTopologies() {
		for si, sc := range MatrixSchedules() {
			specs = append(specs, Spec{
				Topo:     ts,
				Workload: sc.Workload,
				Failure:  sc.Failure,
				Seed:     int64(100*ti + si + 1),
			}.withDefaults())
		}
	}
	return specs
}

// SpecByName finds a matrix cell by its derived name (e.g.
// "ring/ramp+flap"); ok is false when no cell matches.
func SpecByName(name string) (Spec, bool) {
	for _, s := range MatrixSpecs() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// ScaleSpecs returns the large-topology cells unlocked by the delta
// pipeline (incremental SPF + FIB diffs + selective flow re-routing):
// sizes a full-recompute control plane made too slow to sweep. They are
// run by `fiblab -scale`, which reports per-cell wall-clock and
// scheduler-events-executed so slowdowns stay visible; they are not part
// of the CI matrix gate.
func ScaleSpecs() []Spec {
	specs := []Spec{
		{Topo: TopoSpec{Family: "fattree", Size: 8, Seed: 2}, Workload: "surge", Seed: 1},
		{Topo: TopoSpec{Family: "ring", Size: 64}, Workload: "surge", Seed: 2},
		{Topo: TopoSpec{Family: "waxman", Size: 200, Seed: 7}, Workload: "surge", Seed: 3},
		// The viewer-scale cells: the same 1.7x overload sliced into 100k
		// sessions, at production link speeds. They exercise the aggregate
		// traffic plane — cost scales with path-classes
		// (Report.Aggregates), not viewers — and, since the planner
		// numerics went scale-invariant, run at 1 Gbit/s capacity (they
		// were pinned to 100 Mbit/s while the LP stalled above ~1 Gbit/s;
		// that ceiling is gone, see README "Units & numerics").
		{Name: "flashcrowd-100k", Topo: TopoSpec{Family: "fattree", Size: 4, Seed: 2, Capacity: 1e9},
			Workload: "surge", Viewers: 100_000, Seed: 4},
		{Name: "flashcrowd-100k-abilene", Topo: TopoSpec{Family: "abilene", Capacity: 1e9},
			Workload: "surge", Viewers: 100_000, Seed: 5},
		// The capacity-scale cells: the matrix's default 10 Mbit/s cells
		// re-run at Gbit and 10 Gbit uniform capacity. Same relative
		// problem, a thousand times the volume — the planner must make
		// the same decisions (TestPlannerScaleSweep pins the property;
		// these cells prove it end to end through monitoring, planning
		// and the fluid data plane).
		{Name: "abilene-gbit", Topo: TopoSpec{Family: "abilene", Capacity: 1e9},
			Workload: "surge", Seed: 6},
		{Name: "fattree-10gbit", Topo: TopoSpec{Family: "fattree", Size: 4, Seed: 2, Capacity: 10e9},
			Workload: "surge", Seed: 7},
		// The million-viewer tier unlocked by the parallel simulation core:
		// thousand-router topologies (Waxman-1000 WAN, fat-tree k=16 = 320
		// switches + 1024 hosts) at 10 Gbit/s with the 1.7x overload sliced
		// into a million sessions. Per-router SPF recomputes dominate these
		// cells; the worker pool fans them out per batch tick while keeping
		// the output byte-identical to the sequential core (Workers: 1).
		{Name: "waxman1000-1m", Topo: TopoSpec{Family: "waxman", Size: 1000, Seed: 11, Capacity: 10e9},
			Workload: "surge", Viewers: 1_000_000, Seed: 8},
		{Name: "fattree16-1m", Topo: TopoSpec{Family: "fattree", Size: 16, Seed: 2, Capacity: 10e9},
			Workload: "surge", Viewers: 1_000_000, Seed: 9},
	}
	for i := range specs {
		specs[i] = specs[i].withDefaults()
	}
	return specs
}
