package scenarios

import (
	"cmp"
	"fmt"
	"math"
	"slices"
	"time"

	"fibbing.net/fibbing/internal/flashcrowd"
	"fibbing.net/fibbing/internal/spf"
	"fibbing.net/fibbing/internal/topo"
)

// env is everything the workload builders derive from a built topology:
// where the crowd enters, how much a single IGP path can carry, and which
// link the failure schedules break.
type env struct {
	tp     *topo.Topology
	prefix string
	attach topo.NodeID

	// primary is the crowd's main ingress: the router farthest from the
	// attachment (ties broken by name) among routers with at least two
	// router neighbors, so alternative paths exist to spread onto.
	primary string
	// secondary is the next-farthest distinct ingress (the "dual"
	// workload's second source).
	secondary string
	// pathCap is the bottleneck capacity (bit/s) of the primary's
	// shortest path towards the attachment: the capacity the IGP alone
	// would funnel the whole crowd through.
	pathCap float64
	// viewers, when positive, slices the crowd's demand into that many
	// equal-rate sessions (exact for surge, approximate for the
	// fraction-derived workloads; see Spec.Viewers).
	viewers int
	// hop1A/hop1B name the first link of that shortest path (the failure
	// schedules' victim).
	hop1A, hop1B string
	// hop2A/hop2B name the first link of the shortest path that remains
	// once hop1 is gone: the second victim of the "cascade" schedule.
	// Empty when hop1's loss disconnects the ingress.
	hop2A, hop2B string
}

// buildEnv analyses a topology for the workload generators.
func buildEnv(tp *topo.Topology, prefix string) (*env, error) {
	p, ok := tp.PrefixByName(prefix)
	if !ok {
		return nil, fmt.Errorf("scenarios: no prefix %q", prefix)
	}
	attach := p.Attachments[0].Node

	// Distances from the attachment; links are symmetric so this equals
	// the distance towards it.
	g := spf.FromTopology(tp)
	tree := spf.Compute(g, attach, nil)

	type cand struct {
		id   topo.NodeID
		name string
		dist int64
	}
	var cands []cand
	for _, n := range tp.Nodes() {
		if n.Host || n.ID == attach || !tree.Reachable(n.ID) {
			continue
		}
		deg := 0
		for _, lid := range tp.OutLinks(n.ID) {
			if !tp.Node(tp.Link(lid).To).Host {
				deg++
			}
		}
		if deg < 2 {
			continue // a stub router cannot spread anything
		}
		cands = append(cands, cand{n.ID, n.Name, tree.Dist[n.ID]})
	}
	if len(cands) == 0 {
		return nil, fmt.Errorf("scenarios: no viable ingress router (all stubs)")
	}
	slices.SortFunc(cands, func(a, b cand) int {
		if c := cmp.Compare(b.dist, a.dist); c != 0 {
			return c
		}
		return cmp.Compare(a.name, b.name)
	})
	e := &env{tp: tp, prefix: prefix, attach: attach, primary: cands[0].name}
	if len(cands) > 1 {
		e.secondary = cands[1].name
	} else {
		e.secondary = cands[0].name
	}

	// Bottleneck capacity and first hop of the primary's shortest path.
	src := tp.MustNode(e.primary)
	fromSrc := spf.Compute(g, src, nil)
	paths := fromSrc.Paths(attach, 1)
	if len(paths) == 0 || len(paths[0]) < 2 {
		return nil, fmt.Errorf("scenarios: no path %s -> %s", e.primary, tp.Name(attach))
	}
	path := paths[0]
	e.pathCap = math.Inf(1)
	for i := 0; i+1 < len(path); i++ {
		l, ok := tp.FindLink(path[i], path[i+1])
		if !ok {
			return nil, fmt.Errorf("scenarios: path link %s -> %s missing", tp.Name(path[i]), tp.Name(path[i+1]))
		}
		if l.Capacity > 0 && l.Capacity < e.pathCap {
			e.pathCap = l.Capacity
		}
	}
	if math.IsInf(e.pathCap, 1) {
		return nil, fmt.Errorf("scenarios: shortest path from %s has no capacitated link", e.primary)
	}
	e.hop1A, e.hop1B = tp.Name(path[0]), tp.Name(path[1])

	// Second victim for the cascade schedule: where would the reroute go
	// once hop1 is dead? The first link of the shortest surviving path
	// whose loss does not partition the network — failing the reroute's
	// very first hop can isolate a degree-two ingress, and a partition is
	// a different experiment.
	if hop1, ok := tp.FindLink(path[0], path[1]); ok {
		reduced := tp.CloneWithoutLinks(hop1.ID)
		rg := spf.FromTopology(reduced)
		rt := spf.Compute(rg, src, nil)
		if rpaths := rt.Paths(attach, 1); len(rpaths) > 0 && len(rpaths[0]) >= 2 {
			rp := rpaths[0]
			for i := 0; i+1 < len(rp); i++ {
				l, ok := reduced.FindLink(rp[i], rp[i+1])
				if !ok {
					continue
				}
				if reduced.CloneWithoutLinks(l.ID).Validate() == nil {
					e.hop2A, e.hop2B = reduced.Name(rp[i]), reduced.Name(rp[i+1])
					break
				}
			}
		}
	}
	return e, nil
}

// overloadFactor is every workload's steady demand relative to the
// primary path's bottleneck capacity: plain IGP must saturate.
const overloadFactor = 1.7

// videoRate sizes the per-session bitrate so ~25 sessions fill one path;
// with an explicit viewer count the same total demand is sliced into that
// many sessions instead.
func (e *env) videoRate() float64 {
	if e.viewers > 0 {
		return overloadFactor * e.pathCap / float64(e.viewers)
	}
	return e.pathCap / 25
}

// flowsFor converts a fraction of the path capacity into a session count.
func (e *env) flowsFor(fraction float64) int {
	n := int(math.Round(fraction * e.pathCap / e.videoRate()))
	if n < 1 {
		n = 1
	}
	return n
}

// buildWaves produces the wave schedule of a workload kind. Every
// workload overloads the primary ingress's single shortest path (total
// demand ~1.7x its bottleneck capacity) so that plain IGP routing
// saturates while the LP optimum — which may spread over the ingress's
// other links — stays clearly below 1.
func buildWaves(kind string, e *env, duration time.Duration, seed int64) ([]flashcrowd.Wave, error) {
	rate := e.videoRate()
	switch kind {
	case "surge":
		// The demo's shape: a scout flow, then two surges from the same
		// ingress (1 / +N at 5 s / +M at 12 s). An explicit viewer count
		// splits exactly that many sessions over the two surges.
		first, second := e.flowsFor(0.85), e.flowsFor(0.80)
		if e.viewers > 0 {
			first = e.viewers / 2
			second = e.viewers - 1 - first
		}
		waves := []flashcrowd.Wave{
			{At: 1 * time.Second, Ingress: e.primary, Flows: 1, Rate: rate},
			{At: 5 * time.Second, Ingress: e.primary, Flows: first, Rate: rate},
			{At: 12 * time.Second, Ingress: e.primary, Flows: second, Rate: rate},
		}
		return nonEmptyWaves(waves), nil
	case "flash":
		// A persistent base plus a Poisson arrival burst with long mean
		// holds: demand ramps continuously instead of stepping.
		base := flashcrowd.Wave{At: 1 * time.Second, Ingress: e.primary, Flows: e.flowsFor(0.5), Rate: rate}
		window := duration*3/5 - 2*time.Second
		if window < 5*time.Second {
			window = 5 * time.Second
		}
		target := float64(e.flowsFor(1.2)) // arrivals wanted over the window
		arrivalRate := target / window.Seconds()
		waves := flashcrowd.PoissonWaves(e.primary, window, arrivalRate, 25*time.Second, rate, seed)
		for i := range waves {
			waves[i].At += 2 * time.Second
		}
		return append([]flashcrowd.Wave{base}, waves...), nil
	case "ramp":
		// Five equal steps every 2.5 s: a steady ramp to ~1.75x.
		var waves []flashcrowd.Wave
		for i := 0; i < 5; i++ {
			waves = append(waves, flashcrowd.Wave{
				At:      3*time.Second + time.Duration(i)*2500*time.Millisecond,
				Ingress: e.primary,
				Flows:   e.flowsFor(0.35),
				Rate:    rate,
			})
		}
		return waves, nil
	case "steady":
		// A fixed crowd sized to fit the surviving topology after a
		// single-link failure (0.8x the primary path's bottleneck): the
		// network sits comfortably below the alarm threshold before the
		// failure, so every stall measured afterwards is the failure's
		// fault. The failover cells use it to compare detection
		// pipelines without the 1.7x overload drowning the signal.
		return []flashcrowd.Wave{
			{At: 1 * time.Second, Ingress: e.primary, Flows: e.flowsFor(0.8), Rate: rate},
		}, nil
	case "skew":
		// Heterogeneous member density, the score-mode comparison cells'
		// schedule: a large crowd of thin sessions at the primary ingress
		// and a handful of fat sessions at the secondary, each crowd worth
		// 1.1x its own path's bottleneck. Both default paths saturate on
		// their own, and since the total demand exceeds what any routing
		// can carry, some crowd must eat the shortfall — the choice
		// utilisation scoring is blind to. Max-min fair sharing starves
		// fat sessions before thin ones, so total stall time collapses
		// when the crowds share links and explodes when a link carries
		// thin sessions alone: the stall predictor sees the difference,
		// the max-utilisation score (pinned at saturation either way)
		// does not.
		thin, fat := 80, 5
		if e.viewers > 0 {
			fat = e.viewers / 16
			if fat < 2 {
				fat = 2
			}
			thin = e.viewers - fat
		}
		const crowd = 1.1 // each crowd's demand relative to its path
		waves := []flashcrowd.Wave{
			{At: 1 * time.Second, Ingress: e.primary, Flows: 1, Rate: crowd * e.pathCap / float64(thin)},
			{At: 5 * time.Second, Ingress: e.primary, Flows: thin - 1, Rate: crowd * e.pathCap / float64(thin)},
			{At: 8 * time.Second, Ingress: e.secondary, Flows: fat, Rate: crowd * e.pathCap / float64(fat)},
		}
		return nonEmptyWaves(waves), nil
	case "dual":
		// Both ingresses surge, as in Figure 1b: overlap is only
		// guaranteed on topologies like Fig1/Abilene where the two
		// shortest paths share links.
		return []flashcrowd.Wave{
			{At: 1 * time.Second, Ingress: e.primary, Flows: 1, Rate: rate},
			{At: 5 * time.Second, Ingress: e.primary, Flows: e.flowsFor(0.85), Rate: rate},
			{At: 12 * time.Second, Ingress: e.secondary, Flows: e.flowsFor(0.85), Rate: rate},
		}, nil
	default:
		return nil, fmt.Errorf("scenarios: unknown workload %q", kind)
	}
}

// nonEmptyWaves drops zero-flow waves (tiny explicit viewer counts can
// empty a surge step, and the Runner rejects empty waves).
func nonEmptyWaves(waves []flashcrowd.Wave) []flashcrowd.Wave {
	out := waves[:0]
	for _, w := range waves {
		if w.Flows > 0 {
			out = append(out, w)
		}
	}
	return out
}

// buildFailures produces the failure schedule of a kind, aimed at the
// primary ingress's shortest-path first hop.
func buildFailures(kind string, e *env, duration time.Duration) ([]FailureEvent, error) {
	switch kind {
	case "":
		return nil, nil
	case "hotlink":
		return []FailureEvent{{At: 14 * time.Second, A: e.hop1A, B: e.hop1B, Up: false}}, nil
	case "flap":
		return []FailureEvent{
			{At: 14 * time.Second, A: e.hop1A, B: e.hop1B, Up: false},
			{At: 19 * time.Second, A: e.hop1A, B: e.hop1B, Up: true},
		}, nil
	case "cascade":
		// Two correlated failures: the primary path's first hop, then —
		// once traffic has rerouted onto it — the backup path's first hop.
		// Exercises the standby cache's miss + repopulation cycle: the
		// second failure invalidated every plan computed before the first.
		if e.hop2A == "" {
			return nil, fmt.Errorf("scenarios: no second path from %s survives losing %s-%s; cascade impossible",
				e.primary, e.hop1A, e.hop1B)
		}
		return []FailureEvent{
			{At: 14 * time.Second, A: e.hop1A, B: e.hop1B, Up: false},
			{At: 18 * time.Second, A: e.hop2A, B: e.hop2B, Up: false},
		}, nil
	default:
		return nil, fmt.Errorf("scenarios: unknown failure schedule %q", kind)
	}
}
