package scenarios

import (
	"fmt"
	"time"

	"fibbing.net/fibbing/internal/bfd"
	"fibbing.net/fibbing/internal/controller"
	"fibbing.net/fibbing/internal/fibbing"
	"fibbing.net/fibbing/internal/monitor"
	"fibbing.net/fibbing/internal/netsim"
	"fibbing.net/fibbing/internal/qoe"
	"fibbing.net/fibbing/internal/te"
	"fibbing.net/fibbing/internal/topo"
	"fibbing.net/fibbing/internal/video"
)

// flowTrack follows one flow through its life for delivery accounting.
type flowTrack struct {
	wave      int
	rate      float64
	delivered float64 // bytes, high-water from sampling
	session   *video.SimSession
}

// testHookSimBuilt, when set (property tests only), observes the freshly
// assembled simulation before any wave is scheduled — e.g. to arm a
// fair-share equivalence checker on the data plane.
var testHookSimBuilt func(*controller.Sim)

// Run executes one scenario with or without the Fibbing controller and
// returns its report. Each call builds a fresh topology and simulation,
// so concurrent Runs (the matrix test's parallel cells) are independent.
func Run(spec Spec, withCtrl bool) (*Report, error) {
	spec = spec.withDefaults()
	if spec.Viewers < 0 {
		return nil, fmt.Errorf("%s: negative viewer count %d", spec.Name, spec.Viewers)
	}
	if spec.Viewers == 1 {
		// One session carries the whole 1.7x overload as a single
		// indivisible flow: no routing can spread it, so every
		// controller-beats-IGP invariant would fail by construction.
		return nil, fmt.Errorf("%s: a single viewer cannot be load-balanced; use Viewers >= 2", spec.Name)
	}
	tp, prefix, err := spec.Topo.Build()
	if err != nil {
		return nil, err
	}
	e, err := buildEnv(tp, prefix)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", spec.Name, err)
	}
	e.viewers = spec.Viewers
	waves, err := buildWaves(spec.Workload, e, spec.Duration, spec.Seed)
	if err != nil {
		return nil, err
	}
	failures, err := buildFailures(spec.Failure, e, spec.Duration)
	if err != nil {
		return nil, err
	}
	// The schedules use absolute event times; a user-shortened duration
	// (fiblab -duration) that cuts events off would silently change the
	// scenario's meaning, so reject it instead.
	var lastEvent time.Duration
	for _, w := range waves {
		if w.At > lastEvent {
			lastEvent = w.At
		}
	}
	for _, f := range failures {
		if f.At > lastEvent {
			lastEvent = f.At
		}
	}
	if spec.Duration <= lastEvent {
		return nil, fmt.Errorf("%s: duration %v too short: last scheduled event at %v",
			spec.Name, spec.Duration, lastEvent)
	}

	p, _ := tp.PrefixByName(prefix)
	strategies, err := controller.StrategiesByName(spec.Strategies)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", spec.Name, err)
	}
	scoreMode, err := controller.ParseScoreMode(spec.ScoreMode)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", spec.Name, err)
	}
	// The alarm threshold is set explicitly so the report's first-hot
	// detection below measures against the same value the monitor uses.
	const hotThreshold = 0.85
	var bfdCfg *bfd.Config
	if spec.BFD {
		bfdCfg = &bfd.Config{Seed: spec.Seed}
	}
	sim, err := controller.NewSim(controller.SimOpts{
		Topology:     tp,
		Prefix:       prefix,
		AttachAt:     tp.Name(p.Attachments[0].Node),
		WithCtrl:     withCtrl,
		Strategies:   strategies,
		TrackPlayers: true,
		SampleEvery:  500 * time.Millisecond,
		VideoSample:  250 * time.Millisecond,
		Monitor:      monitor.Config{HighThreshold: hotThreshold},
		Controller:   controller.Config{ScoreMode: scoreMode},
		Workers:      spec.Workers,
		BFD:          bfdCfg,
		StandbyK:     spec.StandbyK,
	})
	if err != nil {
		return nil, fmt.Errorf("%s: %w", spec.Name, err)
	}
	if testHookSimBuilt != nil {
		testHookSimBuilt(sim)
	}

	// Map started flows back to their wave: wave w contributes exactly
	// w.Flows OnFlowStarted callbacks at time w.At.
	waveQueue := make(map[time.Duration][]int)
	for i, w := range waves {
		for f := 0; f < w.Flows; f++ {
			waveQueue[w.At] = append(waveQueue[w.At], i)
		}
	}
	tracks := make(map[netsim.FlowID]*flowTrack)
	var order []netsim.FlowID
	prevStarted := sim.Runner.OnFlowStarted
	sim.Runner.OnFlowStarted = func(id netsim.FlowID, rate float64) {
		if prevStarted != nil {
			prevStarted(id, rate) // attaches the video session
		}
		now := sim.Sched.Now()
		q := waveQueue[now]
		wi := -1
		if len(q) > 0 {
			wi, waveQueue[now] = q[0], q[1:]
		}
		tr := &flowTrack{wave: wi, rate: rate}
		if n := len(sim.Sessions); n > 0 {
			tr.session = sim.Sessions[n-1]
		}
		tracks[id] = tr
		order = append(order, id)
		// Departing viewers stop watching: freeze the session's QoE and
		// take a final delivery reading when the hold expires (the Runner
		// removes the flow at the same instant, after this event).
		if wi >= 0 && waves[wi].Hold > 0 {
			hold := waves[wi].Hold
			sim.Sched.After(hold, func() {
				if d, ok := sim.Net.Delivered(id); ok {
					tr.delivered = d
				}
				if tr.session != nil {
					tr.session.Stop()
				}
			})
		}
	}

	rep := &Report{
		Scenario:         spec.Name,
		Controller:       withCtrl,
		ScoreMode:        scoreMode.String(),
		Duration:         spec.Duration,
		TargetPrefix:     prefix,
		FirstHotAt:       -1,
		FirstReactionAt:  -1,
		ReactionLatency:  -1,
		FailureAt:        -1,
		FailoverCommitAt: -1,
		FailoverLatency:  -1,
	}

	// Failure schedule.
	for _, f := range failures {
		f := f
		sim.Sched.At(f.At, func() {
			if err := sim.SetLinkState(f.A, f.B, f.Up); err != nil {
				rep.ProtocolErrors = append(rep.ProtocolErrors, err.Error())
			}
		})
	}

	// Samplers: utilisation peaks, first-hot detection, per-flow delivery.
	settleStart := spec.settleStart()
	stallTotal := func() float64 {
		var s float64
		for _, sess := range sim.Sessions {
			s += sess.QoE().StallTime.Seconds()
		}
		return s
	}
	var stallAtSettle float64
	var demandsAtSettle []topo.Demand
	sim.Sched.NewTicker(250*time.Millisecond, func() {
		u := sim.Net.MaxUtilisation()
		if u > rep.PeakUtilisation {
			rep.PeakUtilisation = u
		}
		now := sim.Sched.Now()
		if now >= settleStart && u > rep.SettledUtilisation {
			rep.SettledUtilisation = u
		}
		if rep.FirstHotAt < 0 && u >= hotThreshold {
			rep.FirstHotAt = now
		}
		for id, tr := range tracks {
			if d, ok := sim.Net.Delivered(id); ok {
				tr.delivered = d
			}
		}
	})
	sim.Sched.At(settleStart, func() {
		stallAtSettle = stallTotal()
		demandsAtSettle = sim.Ctrl.Demands()
	})

	// Failover window accounting: stall totals at the first link-down
	// instant and failoverWindow later bracket the stalls the failure
	// itself causes — the figure the fast-failover invariant compares.
	var stallAtFailure, stallAfterFailover float64
	for _, f := range failures {
		if !f.Up {
			rep.FailureAt = f.At
			break
		}
	}
	if rep.FailureAt >= 0 {
		sim.Sched.At(rep.FailureAt, func() { stallAtFailure = stallTotal() })
		end := rep.FailureAt + failoverWindow
		if end > spec.Duration {
			end = spec.Duration
		}
		sim.Sched.At(end, func() { stallAfterFailover = stallTotal() })
	}

	if err := sim.Runner.Schedule(waves); err != nil {
		return nil, fmt.Errorf("%s: %w", spec.Name, err)
	}
	sim.Run(spec.Duration)

	// Final delivery reading for flows still alive.
	for id, tr := range tracks {
		if d, ok := sim.Net.Delivered(id); ok {
			tr.delivered = d
		}
	}

	rep.FinalUtilisation = sim.Net.MaxUtilisation()
	rep.Events = sim.Sched.Ran()
	igpStats := sim.Domain.Stats()
	rep.SPFIncrementalRuns = igpStats.SPFIncrementalRuns
	rep.SPFFullRuns = igpStats.SPFFullRuns
	netStats := sim.Net.Stats()
	rep.ReshareFull = netStats.ReshareFull
	rep.ReshareIncremental = netStats.ReshareIncremental
	rep.ReshareComponents = netStats.ReshareComponents
	rep.Aggregates = netStats.Aggregates
	par := sim.Sched.Parallel()
	rep.Workers = par.Workers
	rep.ParallelBatches = par.Batches
	rep.ParallelSPFRuns = par.BatchedEvents
	rep.SequentialSPFRuns = par.SoloParallel
	rep.MaxBatch = par.MaxBatch
	if len(demandsAtSettle) > 0 {
		// The dense-simplex LP bound is for reporting only; beyond the
		// controller's own LP size limit it would dominate the cell's
		// wall-clock (the scale cells would take hours), so skip it and
		// note the degradation. The LP-optimality invariant only fires
		// when LPOptimum is set.
		routers := 0
		for _, n := range tp.Nodes() {
			if !n.Host {
				routers++
			}
		}
		if routers > controller.DefaultMaxLPRouters {
			rep.Notes = append(rep.Notes, fmt.Sprintf("LP bound skipped: %d routers", routers))
		} else if opt, err := te.SolveMinMax(tp, demandsAtSettle); err == nil {
			rep.LPOptimum = opt.MaxUtilisation
		} else {
			rep.Notes = append(rep.Notes, fmt.Sprintf("LP bound unavailable: %v", err))
		}
		liesNow := map[string][]fibbing.Lie{prefix: sim.Lies.Installed(prefix)}
		if loads, err := te.LoadsWithLies(tp, liesNow, demandsAtSettle); err == nil {
			rep.AnalyticUtilisation = te.MaxUtilOfLoads(tp, loads)
		} else {
			rep.Notes = append(rep.Notes, fmt.Sprintf("analytic bound unavailable: %v", err))
		}
		// Predicted QoE of the final routing state: the analytic stall
		// predictor over the settled demands and the controller's member
		// census — the same estimate the qoe score mode plans against.
		// Reported for every run (any score mode, controller on or off)
		// so the score-mode comparison cells can check that predicted and
		// simulated stalls move together.
		views := make(map[string]map[topo.NodeID]fibbing.RouteView, len(tp.Prefixes()))
		var viewErr error
		for _, pr := range tp.Prefixes() {
			v, err := fibbing.Evaluate(tp, pr.Name, liesNow[pr.Name])
			if err != nil {
				viewErr = err
				break
			}
			views[pr.Name] = v
		}
		if viewErr == nil {
			if q, err := qoe.PredictPlan(tp, views, demandsAtSettle, sim.Ctrl.QoEModel()); err == nil {
				rep.PredictedStallSeconds = q.StallSeconds
			} else {
				viewErr = err
			}
		}
		if viewErr != nil {
			rep.Notes = append(rep.Notes, fmt.Sprintf("QoE prediction unavailable: %v", viewErr))
		}
	}

	agg := video.AggregateQoE(sim.QoE())
	rep.Sessions = agg.Sessions
	rep.SmoothSessions = agg.SmoothSessions
	rep.MeanRebuffer = agg.MeanRebuffer
	rep.StallSeconds = stallTotal()
	rep.LateStallSeconds = rep.StallSeconds - stallAtSettle

	rep.Lies = sim.Lies.LieCount()
	rep.LiesByPrefix = make(map[string]int)
	for _, pr := range tp.Prefixes() {
		if n := len(sim.Lies.Installed(pr.Name)); n > 0 {
			rep.LiesByPrefix[pr.Name] = n
		}
	}
	rep.Decisions = sim.Ctrl.Decisions
	rep.Strategies = sim.Ctrl.Planner().Strategies()
	rep.StrategyPerf = sim.Ctrl.Planner().Perf()
	artStats := sim.Ctrl.ArtifactStats()
	rep.PlanCacheHits, rep.PlanCacheMisses = artStats.Hits, artStats.Misses
	rep.QoECacheHits, rep.QoECacheMisses = artStats.QoEHits, artStats.QoEMisses
	lpStats := sim.Ctrl.LPStats()
	rep.LPWarmSolves, rep.LPColdSolves, rep.LPFallbackSolves = lpStats.Warm, lpStats.Cold, lpStats.Fallback
	if len(rep.Decisions) > 0 {
		rep.FirstReactionAt = rep.Decisions[0].At
		if rep.FirstHotAt >= 0 && rep.FirstReactionAt >= rep.FirstHotAt {
			rep.ReactionLatency = rep.FirstReactionAt - rep.FirstHotAt
		}
		rep.StrategyWins = make(map[string]int)
		for _, d := range rep.Decisions {
			rep.StrategyWins[d.Strategy]++
		}
	}
	if rep.FailureAt >= 0 {
		rep.FailoverStallSeconds = stallAfterFailover - stallAtFailure
		for _, d := range rep.Decisions {
			if d.At >= rep.FailureAt {
				rep.FailoverCommitAt = d.At
				break
			}
		}
		if rep.FailoverCommitAt >= 0 {
			rep.FailoverLatency = rep.FailoverCommitAt - rep.FailureAt
		}
	}
	rep.StandbyPrecomputed = sim.Ctrl.Standby.Precomputed
	rep.StandbyHits = sim.Ctrl.Standby.Hits
	rep.StandbyMisses = sim.Ctrl.Standby.Misses
	rep.StandbyStale = sim.Ctrl.Standby.Stale
	if sim.BFD != nil {
		bfdStats := sim.BFD.Stats()
		rep.BFDSessions = bfdStats.Sessions
		rep.BFDLinkDowns = bfdStats.DownEvents
		rep.BFDLinkUps = bfdStats.UpEvents
	}
	for _, err := range sim.Ctrl.Errors {
		rep.ControllerErrors = append(rep.ControllerErrors, err.Error())
	}
	for _, err := range sim.Domain.Errors {
		rep.ProtocolErrors = append(rep.ProtocolErrors, err.Error())
	}

	// Per-wave delivery accounting. A wave scheduled past the end of a
	// shortened run never fires: its lifetime clamps to zero.
	rep.Waves = make([]WaveDelivery, len(waves))
	for i, w := range waves {
		life := spec.Duration - w.At
		if life < 0 {
			life = 0
		}
		if w.Hold > 0 && w.Hold < life {
			life = w.Hold
		}
		rep.Waves[i] = WaveDelivery{
			At:       w.At,
			Flows:    w.Flows,
			Expected: w.Rate * life.Seconds() * float64(w.Flows) / 1e6,
		}
	}
	for _, id := range order {
		tr := tracks[id]
		rep.DeliveredMbit += tr.delivered * 8 / 1e6
		if tr.wave >= 0 {
			rep.Waves[tr.wave].Delivered += tr.delivered * 8 / 1e6
		}
	}
	for i := range rep.Waves {
		if rep.Waves[i].Expected > 0 {
			rep.Waves[i].Fraction = rep.Waves[i].Delivered / rep.Waves[i].Expected
		}
	}
	return rep, nil
}

// RunPair executes the spec with and without the controller.
func RunPair(spec Spec) (on, off *Report, err error) {
	if on, err = Run(spec, true); err != nil {
		return nil, nil, err
	}
	if off, err = Run(spec, false); err != nil {
		return nil, nil, err
	}
	return on, off, nil
}

// Compare runs both sides of a spec and checks the invariants.
func Compare(spec Spec) (*Comparison, error) {
	spec = spec.withDefaults()
	on, off, err := RunPair(spec)
	if err != nil {
		return nil, err
	}
	return &Comparison{Spec: spec, On: on, Off: off, Violations: Violations(spec, on, off)}, nil
}
