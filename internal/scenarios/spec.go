// Package scenarios is the stress harness of the repository: a
// declarative scenario engine that runs the full Fibbing stack — IGP,
// fluid data plane, SNMP monitoring, video players and the controller —
// across a matrix of topologies, demand schedules and failure patterns,
// and checks machine-readable invariants on every cell ("with the
// controller, the settled utilisation approaches the LP optimum", "lies
// touch only the target prefix", "no stalls after convergence").
//
// A Spec names a topology family from the zoo (Fig1, Abilene, fat-tree,
// ring, grid, Waxman, random), a workload (surge, flash crowd, ramp), an
// optional link-failure schedule and a duration; Run executes it with or
// without the controller and produces a Report. RunPair runs both and
// Violations compares them. MatrixSpecs is the cross product the matrix
// test and cmd/fiblab sweep.
package scenarios

import (
	"fmt"
	"time"

	"fibbing.net/fibbing/internal/topo"
)

// TopoSpec selects and parameterises one topology from the zoo.
type TopoSpec struct {
	// Family is one of "fig1", "abilene", "fattree", "ring", "grid",
	// "waxman", "random".
	Family string `json:"family"`
	// Size is the family's size knob: fat-tree arity k, ring length,
	// grid side, node count for waxman/random. Ignored by fig1/abilene.
	Size int `json:"size,omitempty"`
	// Capacity is the uniform core-link capacity in bit/s; 0 picks the
	// family default (10 Mbit/s). Any magnitude works — workloads size
	// themselves relative to path capacity and the planner numerics are
	// scale-invariant, so Gbit and 10 Gbit cells (see ScaleSpecs) run
	// the same relative problem as the Mbit matrix.
	Capacity float64 `json:"capacity,omitempty"`
	// Seed drives every random choice of the generator.
	Seed int64 `json:"seed,omitempty"`
}

// Build constructs the topology and returns it with the name of the
// destination prefix the flash crowd targets.
func (ts TopoSpec) Build() (*topo.Topology, string, error) {
	if ts.Capacity < 0 {
		return nil, "", fmt.Errorf("scenarios: negative capacity %v", ts.Capacity)
	}
	capacity := ts.Capacity
	if capacity == 0 {
		capacity = 10e6
	}
	var (
		tp     *topo.Topology
		prefix string
	)
	// Size is user input (cmd/fiblab flags): validate here so bad values
	// come back as errors instead of generator panics.
	switch ts.Family {
	case "fattree":
		if ts.Size != 0 && (ts.Size < 2 || ts.Size%2 != 0) {
			return nil, "", fmt.Errorf("scenarios: fat-tree arity %d must be even and >= 2", ts.Size)
		}
	case "ring":
		if ts.Size != 0 && ts.Size < 3 {
			return nil, "", fmt.Errorf("scenarios: ring size %d < 3", ts.Size)
		}
	case "grid":
		if ts.Size != 0 && ts.Size < 2 {
			return nil, "", fmt.Errorf("scenarios: grid side %d < 2", ts.Size)
		}
	case "waxman", "random":
		if ts.Size != 0 && ts.Size < 4 {
			return nil, "", fmt.Errorf("scenarios: %s size %d < 4", ts.Family, ts.Size)
		}
	default:
		if ts.Size < 0 {
			return nil, "", fmt.Errorf("scenarios: negative size %d", ts.Size)
		}
	}
	switch ts.Family {
	case "fig1":
		tp = topo.Fig1(topo.Fig1Opts{LinkCapacity: ts.Capacity})
		prefix = topo.Fig1BluePrefixName
	case "abilene":
		tp = topo.Abilene(capacity, time.Millisecond)
		prefix = "cdn-east"
	case "fattree":
		k := ts.Size
		if k == 0 {
			k = 4
		}
		// Weight jitter breaks the fabric's perfect ECMP symmetry so the
		// IGP concentrates traffic and the controller has work to do.
		tp = topo.FatTree(topo.FatTreeOpts{K: k, Capacity: capacity, MaxWeight: 3, Seed: ts.Seed})
		prefix = topo.FatTreePrefixName
	case "ring":
		n := ts.Size
		if n == 0 {
			n = 9
		}
		tp = topo.Ring(topo.RingOpts{N: n, Capacity: capacity})
		prefix = topo.RingPrefixName
	case "grid":
		n := ts.Size
		if n == 0 {
			n = 3
		}
		tp = topo.Grid(n, n, capacity)
		prefix = "corner"
	case "waxman":
		n := ts.Size
		if n == 0 {
			n = 16
		}
		tp = topo.Waxman(topo.WaxmanOpts{Nodes: n, Capacity: capacity, MaxWeight: 5, Seed: ts.Seed})
		prefix = topo.WaxmanPrefixName
	case "random":
		n := ts.Size
		if n == 0 {
			n = 12
		}
		tp = topo.RandomConnected(topo.RandomOpts{
			Nodes: n, Degree: 3, MaxWeight: 5, Prefixes: 2, Capacity: capacity, Seed: ts.Seed,
		})
		prefix = "d0"
	default:
		return nil, "", fmt.Errorf("scenarios: unknown topology family %q", ts.Family)
	}
	if err := tp.Validate(); err != nil {
		return nil, "", fmt.Errorf("scenarios: %s: %w", ts.Family, err)
	}
	if _, ok := tp.PrefixByName(prefix); !ok {
		return nil, "", fmt.Errorf("scenarios: %s: missing prefix %q", ts.Family, prefix)
	}
	return tp, prefix, nil
}

// FailureEvent is one link state change in a scenario.
type FailureEvent struct {
	At time.Duration `json:"at"`
	// A and B name the link's endpoints; filled by the schedule builder.
	A  string `json:"a,omitempty"`
	B  string `json:"b,omitempty"`
	Up bool   `json:"up"`
}

// Spec is one declarative scenario: a topology, a workload, an optional
// failure schedule and a duration.
type Spec struct {
	Name string   `json:"name"`
	Topo TopoSpec `json:"topo"`
	// Workload is one of "surge", "flash", "ramp", "dual", "steady",
	// "skew" (a thin crowd and a fat crowd with very different
	// per-session rates — the score-mode comparison cells' schedule).
	Workload string `json:"workload"`
	// Failure is "" (none), "hotlink" (fail the primary ingress's
	// shortest-path first hop mid-run), "flap" (fail then heal it) or
	// "cascade" (fail it, then 4 s later fail the backup path's first
	// hop too — two correlated failures).
	Failure string `json:"failure,omitempty"`
	// Duration is the virtual run length (default 30 s).
	Duration time.Duration `json:"duration,omitempty"`
	// Seed perturbs workload randomness (Poisson arrivals).
	Seed int64 `json:"seed,omitempty"`
	// Viewers scales the crowd to an explicit session count: the total
	// demand stays ~1.7x the primary path's bottleneck capacity, sliced
	// into equal-rate sessions (0 keeps the default ~42-session sizing).
	// The surge workload honours the count exactly; flash/ramp/dual
	// derive their per-wave counts from capacity fractions and land near
	// it. The flashcrowd-100k scale cells use it to push a hundred
	// thousand viewers through the aggregate traffic plane at 1 Gbit/s
	// link capacity.
	Viewers int `json:"viewers,omitempty"`
	// Strategies names the controller's reaction-strategy set (stock
	// names, e.g. "localecmp,ksp"; the withdraw strategy is implied).
	// Empty keeps controller.DefaultStrategies.
	Strategies []string `json:"strategies,omitempty"`
	// ScoreMode selects the planner's plan-scoring objective: "util"
	// (default — the historical max-utilisation ordering), "qoe"
	// (predicted stall score first, utilisation as tie-break) or
	// "blended". Parsed with controller.ParseScoreMode.
	ScoreMode string `json:"score_mode,omitempty"`
	// Workers sets the simulation core's worker-pool width: 0 means
	// GOMAXPROCS, 1 forces the sequential core. The run's outcome is
	// byte-identical either way (only wall-clock and the parallelism
	// telemetry change), so cells never need to pin it for determinism.
	Workers int `json:"workers,omitempty"`
	// BFD attaches per-link liveness sessions (default 50 ms hellos,
	// detect multiplier 3): link failures reach the controller in
	// milliseconds instead of at SNMP-poll timescale.
	BFD bool `json:"bfd,omitempty"`
	// StandbyK, with BFD, precomputes failover plans for the K links
	// carrying the most traffic during controller idle time; a BFD down
	// event then commits the cached plan instead of planning from
	// scratch. 0 disables the cache.
	StandbyK int `json:"standby_k,omitempty"`
}

func (s Spec) withDefaults() Spec {
	if s.Duration <= 0 {
		s.Duration = 30 * time.Second
	}
	if s.Name == "" {
		s.Name = fmt.Sprintf("%s/%s", s.Topo.Family, s.Workload)
		if s.Failure != "" {
			s.Name += "+" + s.Failure
		}
		if s.BFD {
			s.Name += "+bfd"
		}
		if s.ScoreMode != "" {
			s.Name += "@" + s.ScoreMode
		}
	}
	return s
}

// settleStart is the instant after which the network is expected to have
// converged: the last quarter of the run, but at least 8 s of window.
func (s Spec) settleStart() time.Duration {
	w := s.Duration / 4
	if w < 8*time.Second {
		w = 8 * time.Second
	}
	if w >= s.Duration {
		w = s.Duration / 2
	}
	return s.Duration - w
}
