package scenarios

// Fast failover comparison: each failover cell runs twice with the
// controller on — once with BFD liveness and the standby-plan cache
// (the fast path), once detecting failures at SNMP-poll/IGP timescale
// (the slow path) — and the invariants demand an order-of-magnitude
// gap in both failure-to-commit latency and viewer stall time.

import (
	"fmt"
	"strings"
	"time"
)

const (
	// failoverWindow bounds the post-failure stall accounting: stalls
	// accrued between the first link-down and failoverWindow later are
	// attributed to the failure (Report.FailoverStallSeconds). Six
	// seconds covers the slow path's worst case — the OSPF dead
	// interval (4 s) plus a monitor poll — with slack.
	failoverWindow = 6 * time.Second
	// failoverLatencyFactor is the minimum slow/fast ratio of
	// failure-to-commit latency: BFD detection (~150 ms) against the
	// dead-interval + SNMP-poll pipeline must win by 10x or more.
	failoverLatencyFactor = 10.0
	// failoverStallFactor is the same bar for stall seconds inside the
	// failover window.
	failoverStallFactor = 10.0
	// failoverMinSlowStall keeps the stall ratio non-vacuous: the slow
	// path must demonstrably hurt viewers (at least a second of stalls)
	// before a ratio over it means anything.
	failoverMinSlowStall = 1.0
)

// FailoverSpecs returns the fast-failover cells: failure schedules over
// three topology families, each with BFD liveness and a 3-deep standby
// cache. CompareFailover runs each against its SNMP-timescale twin.
func FailoverSpecs() []Spec {
	specs := []Spec{
		{Topo: TopoSpec{Family: "fig1"}, Workload: "steady", Failure: "hotlink",
			Seed: 21, BFD: true, StandbyK: 3},
		{Topo: TopoSpec{Family: "abilene"}, Workload: "steady", Failure: "cascade",
			Seed: 22, BFD: true, StandbyK: 3},
		{Topo: TopoSpec{Family: "fattree", Size: 4, Seed: 2}, Workload: "steady", Failure: "hotlink",
			Seed: 23, BFD: true, StandbyK: 3},
	}
	for i := range specs {
		specs[i] = specs[i].withDefaults()
	}
	return specs
}

// FailoverComparison pairs the BFD+standby run of a failover cell with
// its SNMP-poll twin and the invariant violations found between them.
type FailoverComparison struct {
	Spec Spec    `json:"spec"`
	Fast *Report `json:"fast"` // BFD + standby cache
	Slow *Report `json:"slow"` // SNMP poll + IGP dead interval
	// Violations lists the failed failover invariants (empty: cell holds).
	Violations []string `json:"violations,omitempty"`
}

// CompareFailover runs a failover cell both ways (controller on in
// both): as specified with BFD and the standby cache, and stripped back
// to SNMP-poll failure detection. The slow twin's name swaps the "+bfd"
// suffix for "+snmp".
func CompareFailover(spec Spec) (*FailoverComparison, error) {
	spec = spec.withDefaults()
	fast, err := Run(spec, true)
	if err != nil {
		return nil, fmt.Errorf("fast run: %w", err)
	}
	slow := spec
	slow.BFD = false
	slow.StandbyK = 0
	slow.Name = strings.TrimSuffix(spec.Name, "+bfd") + "+snmp"
	slowRep, err := Run(slow, true)
	if err != nil {
		return nil, fmt.Errorf("slow run: %w", err)
	}
	c := &FailoverComparison{Spec: spec, Fast: fast, Slow: slowRep}
	c.Violations = FailoverViolations(spec, fast, slowRep)
	return c, nil
}

// failoverSummary renders one run's failover line for Render.
func failoverSummary(r *Report) string {
	lat, commit := "-", "-"
	if r.FailoverLatency >= 0 {
		lat = r.FailoverLatency.String()
	}
	if r.FailoverCommitAt >= 0 {
		commit = r.FailoverCommitAt.String()
	}
	s := fmt.Sprintf("%-28s commit=%s latency=%s window-stalls=%.1fs",
		r.Scenario, commit, lat, r.FailoverStallSeconds)
	if r.BFDSessions > 0 {
		s += fmt.Sprintf(" bfd-downs=%d standby=%d/%d/%d (hit/stale/miss)",
			r.BFDLinkDowns, r.StandbyHits, r.StandbyStale, r.StandbyMisses)
	}
	return s
}

// Render writes the comparison as an indented human-readable block.
func (c *FailoverComparison) Render(b *strings.Builder) {
	fmt.Fprintf(b, "%s\n  %s\n  %s\n", c.Spec.Name, failoverSummary(c.Fast), failoverSummary(c.Slow))
	for _, v := range c.Violations {
		fmt.Fprintf(b, "  VIOLATION: %s\n", v)
	}
}

// FailoverViolations checks the fast-failover invariants between the
// BFD+standby run and its SNMP-poll twin.
func FailoverViolations(spec Spec, fast, slow *Report) []string {
	var v []string
	fail := func(format string, args ...any) { v = append(v, fmt.Sprintf(format, args...)) }

	// The schedule must actually fail a link, and both controllers must
	// have committed a plan after it — otherwise the ratios below
	// compare nothing.
	if fast.FailureAt < 0 || slow.FailureAt < 0 {
		fail("no link failure scheduled (failure_at fast=%v slow=%v)", fast.FailureAt, slow.FailureAt)
		return v
	}
	if fast.FailoverCommitAt < 0 {
		fail("fast run never committed a plan after the failure")
	}
	if slow.FailoverCommitAt < 0 {
		fail("slow run never committed a plan after the failure")
	}
	if len(v) > 0 {
		return v
	}

	// The tentpole ratio: BFD + standby must cut failure-to-commit
	// latency by an order of magnitude.
	if fast.FailoverLatency <= 0 {
		fail("fast failover latency %v is not positive", fast.FailoverLatency)
	} else if ratio := float64(slow.FailoverLatency) / float64(fast.FailoverLatency); ratio < failoverLatencyFactor {
		fail("failover latency ratio %.1fx below %.0fx (fast %v, slow %v)",
			ratio, failoverLatencyFactor, fast.FailoverLatency, slow.FailoverLatency)
	}

	// And the viewers must feel it: stalls inside the failover window
	// drop by the same order of magnitude, against a slow baseline that
	// demonstrably hurts.
	if slow.FailoverStallSeconds < failoverMinSlowStall {
		fail("slow run stalls only %.2fs inside the failover window; ratio would be vacuous",
			slow.FailoverStallSeconds)
	} else if fast.FailoverStallSeconds*failoverStallFactor > slow.FailoverStallSeconds {
		fail("failover stall ratio below %.0fx (fast %.2fs, slow %.2fs)",
			failoverStallFactor, fast.FailoverStallSeconds, slow.FailoverStallSeconds)
	}

	// The fast path must have gone through the machinery it claims:
	// BFD detected the failure(s) and the standby cache was primed and
	// consulted (every down-event is a hit, a stale entry or a miss).
	if fast.BFDLinkDowns == 0 {
		fail("fast run recorded no BFD down events")
	}
	if fast.StandbyPrecomputed == 0 {
		fail("standby cache never precomputed a plan")
	}
	if fast.StandbyHits+fast.StandbyStale+fast.StandbyMisses == 0 {
		fail("standby cache never consulted on failure")
	}

	// Neither run may corrupt the stack.
	for _, r := range []*Report{fast, slow} {
		if len(r.ProtocolErrors) > 0 {
			fail("protocol errors (%s): %v", r.Scenario, r.ProtocolErrors)
		}
		if len(r.ControllerErrors) > 0 {
			fail("controller errors (%s): %v", r.Scenario, r.ControllerErrors)
		}
	}
	return v
}
