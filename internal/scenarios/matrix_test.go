package scenarios

import (
	"testing"
)

// TestScenarioMatrix sweeps the full cross product (6 topology families x
// 3 workload/failure schedules): every cell runs the whole Fibbing stack
// twice — controller on and off — and must satisfy the cross-run
// invariants: the workload saturates plain IGP, the controller beats it
// on settled utilisation or stall time, the realised routing approaches
// the LP optimum, lies touch only the target prefix, playback is smooth
// after convergence, and no protocol machinery errors.
func TestScenarioMatrix(t *testing.T) {
	specs := MatrixSpecs()
	if len(specs) < 12 {
		t.Fatalf("matrix has %d cells, want >= 12", len(specs))
	}
	for _, spec := range specs {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			cmp, err := Compare(spec)
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range cmp.Violations {
				t.Errorf("invariant violated: %s", v)
			}
			if t.Failed() {
				t.Logf("on:  %s", cmp.On.Summary())
				t.Logf("off: %s", cmp.Off.Summary())
			}
		})
	}
}

// TestScenarioRunDeterminism re-runs one cell and requires identical
// headline metrics: the whole stack — IGP flooding, fluid sharing, SNMP
// polling, controller reactions — must be reproducible.
func TestScenarioRunDeterminism(t *testing.T) {
	t.Parallel()
	spec, ok := SpecByName("ring/surge")
	if !ok {
		t.Fatal("ring/surge not in matrix")
	}
	a, err := Run(spec, true)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(spec, true)
	if err != nil {
		t.Fatal(err)
	}
	if a.SettledUtilisation != b.SettledUtilisation || a.Lies != b.Lies ||
		a.StallSeconds != b.StallSeconds || a.DeliveredMbit != b.DeliveredMbit ||
		len(a.Decisions) != len(b.Decisions) {
		t.Fatalf("runs differ:\n%s\n%s", a.Summary(), b.Summary())
	}
}

// TestScenarioWaveAccounting checks the per-wave delivery bookkeeping on
// a cell with held (churning) flows: every wave must be accounted, and
// with the controller on the delivered fraction must be high.
func TestScenarioWaveAccounting(t *testing.T) {
	t.Parallel()
	spec, ok := SpecByName("fig1/flash")
	if !ok {
		t.Fatal("fig1/flash not in matrix")
	}
	rep, err := Run(spec, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Waves) < 2 {
		t.Fatalf("only %d waves accounted", len(rep.Waves))
	}
	var exp, got float64
	for _, w := range rep.Waves {
		if w.Expected <= 0 {
			t.Fatalf("wave at %v has expected %v", w.At, w.Expected)
		}
		exp += w.Expected
		got += w.Delivered
	}
	if frac := got / exp; frac < 0.9 {
		t.Fatalf("delivered fraction %.3f with controller, want >= 0.9", frac)
	}
	flows := 0
	for _, w := range rep.Waves {
		flows += w.Flows
	}
	if rep.Sessions != flows {
		t.Fatalf("sessions %d != scheduled flows %d", rep.Sessions, flows)
	}
}

// TestScaleSpecsBuild validates the scaling cells without running them:
// the topologies generate cleanly and every spec is named and bounded.
func TestScaleSpecsBuild(t *testing.T) {
	specs := ScaleSpecs()
	if len(specs) == 0 {
		t.Fatal("no scale specs")
	}
	for _, s := range specs {
		if s.Name == "" || s.Duration <= 0 {
			t.Fatalf("spec missing defaults: %+v", s)
		}
		if _, _, err := s.Topo.Build(); err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
	}
}
