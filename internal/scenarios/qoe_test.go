package scenarios

import (
	"strings"
	"testing"
)

// TestScoreModeComparison is the CI gate of the QoE tentpole claim: on
// every score-mode cell the qoe-scored run must end with strictly fewer
// stall-seconds — simulated and predicted — than the utilisation-scored
// run of the same topology and schedule, while never stalling viewers
// more than plain IGP (the admissibility contract restated in QoE
// terms). Cells run in parallel; each is three full simulations.
func TestScoreModeComparison(t *testing.T) {
	for _, spec := range QoESpecs() {
		spec := spec
		if spec.Viewers >= 100_000 && testing.Short() {
			continue // ~the most expensive cell; -short keeps quick loops quick
		}
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			c, err := CompareScoreModes(spec)
			if err != nil {
				t.Fatal(err)
			}
			var b strings.Builder
			c.Render(&b)
			t.Log("\n" + b.String())
			for _, v := range c.Violations {
				t.Errorf("violation: %s", v)
			}
		})
	}
}
