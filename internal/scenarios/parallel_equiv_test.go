package scenarios

import (
	"encoding/json"
	"fmt"
	"slices"
	"strings"
	"testing"

	"fibbing.net/fibbing/internal/controller"
	"fibbing.net/fibbing/internal/fib"
	"fibbing.net/fibbing/internal/topo"
)

// parallelCapture is everything the determinism property compares between
// worker counts: the ordered OnFIBDelta sequence, the final FIB of every
// router, and the whole Report (scrubbed of the parallelism telemetry,
// the only fields the contract allows to differ). Batches carries the
// unscrubbed parallel-batch count for the non-vacuity check.
type parallelCapture struct {
	Deltas  string
	FIBs    string
	Report  string
	Batches uint64
}

// runCaptured runs one cell at the given worker-pool width and snapshots
// the determinism artifacts. It arms the package test hook, so callers
// must be serial tests.
func runCaptured(t *testing.T, spec Spec, workers int) parallelCapture {
	t.Helper()
	spec.Workers = workers
	var (
		sim   *controller.Sim
		trace strings.Builder
	)
	testHookSimBuilt = func(s *controller.Sim) {
		sim = s
		// Chain-wrap the delta callback: record the diff, then forward it
		// to the data plane as before.
		prev := s.Domain.OnFIBDelta
		s.Domain.OnFIBDelta = func(n topo.NodeID, tb *fib.Table, d *fib.Diff) {
			fmt.Fprintf(&trace, "@%v %s\n", s.Sched.Now(), d)
			if prev != nil {
				prev(n, tb, d)
			}
		}
	}
	defer func() { testHookSimBuilt = nil }()
	rep, err := Run(spec, true)
	if err != nil {
		t.Fatalf("%s workers=%d: %v", spec.Name, workers, err)
	}
	batches := rep.ParallelBatches
	rep.Workers, rep.MaxBatch = 0, 0
	rep.ParallelBatches, rep.ParallelSPFRuns, rep.SequentialSPFRuns = 0, 0, 0
	// Strategy wall-time is real time, not virtual: scrub it. The proposal
	// and win counts — and every cache/LP/component counter — stay in the
	// compared payload; they are deterministic by construction.
	for name, perf := range rep.StrategyPerf {
		perf.Nanos = 0
		rep.StrategyPerf[name] = perf
	}
	repJSON, err := json.Marshal(rep)
	if err != nil {
		t.Fatalf("%s workers=%d: marshal report: %v", spec.Name, workers, err)
	}

	plane := sim.Domain.Plane()
	nodes := make([]topo.NodeID, 0, len(plane.Tables))
	for n := range plane.Tables {
		nodes = append(nodes, n)
	}
	slices.Sort(nodes)
	var fibs strings.Builder
	for _, n := range nodes {
		fmt.Fprintf(&fibs, "# %s\n%s", sim.Topo.Name(n), plane.Tables[n].String())
	}
	return parallelCapture{
		Deltas:  trace.String(),
		FIBs:    fibs.String(),
		Report:  string(repJSON),
		Batches: batches,
	}
}

// diffLine points at the first divergent line of two multi-line strings,
// so a determinism failure names the exact delta or FIB entry instead of
// dumping two full transcripts.
func diffLine(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) || i < len(bl); i++ {
		var la, lb string
		if i < len(al) {
			la = al[i]
		}
		if i < len(bl) {
			lb = bl[i]
		}
		if la != lb {
			return fmt.Sprintf("line %d:\n  seq: %q\n  par: %q", i+1, la, lb)
		}
	}
	return "equal"
}

// TestParallelCoreDeterminism is the zoo-wide determinism property of the
// parallel simulation core: for every matrix cell — and every cell again
// under a different seed — a run with a 4-wide worker pool must be
// byte-identical to the sequential core in (a) the full ordered sequence
// of OnFIBDelta emissions, (b) every router's final FIB, and (c) the
// whole Report except the parallelism telemetry. Because the pool width
// is a spec knob (not GOMAXPROCS), the parallel batch path is exercised
// even on a single-CPU host, and `go test -race` interleaves the worker
// goroutines over the shared SPF scratch pools and flood-buffer freelist.
//
// Serial on purpose: it arms the package test hook (see
// TestAggregateReshareMatchesGlobalSolve for the ordering argument).
func TestParallelCoreDeterminism(t *testing.T) {
	specs := MatrixSpecs()
	// A second seed per cell: reseeding shifts the Poisson arrivals and
	// generator randomness so the property is not an artifact of the
	// pinned matrix seeds.
	for _, spec := range MatrixSpecs() {
		spec.Seed += 7777
		spec.Name += "/reseed"
		specs = append(specs, spec)
	}
	// The failover cells ride along: BFD's jittered per-link hellos and
	// the standby cache's idle precompute add two more event sources the
	// worker pool must keep in deterministic order.
	specs = append(specs, FailoverSpecs()...)
	// The QoE-scored cells ride along too: the stall predictor's memoised
	// artifacts (QoE hit/miss counters included — store-time accounting,
	// like the plan cache's) and the qoe-greedy candidate sweep must not
	// introduce worker-width dependence. The 100k-viewer scale cell stays
	// out; the small cells carry the property.
	for _, spec := range QoESpecs() {
		if spec.Viewers >= 100_000 {
			continue
		}
		spec.ScoreMode = "qoe"
		spec.Name += "@qoe"
		specs = append(specs, spec)
	}
	var batched uint64
	for _, spec := range specs {
		seq := runCaptured(t, spec, 1)
		par := runCaptured(t, spec, 4)
		batched += par.Batches
		if seq.Deltas != par.Deltas {
			t.Errorf("%s: OnFIBDelta sequence diverged at %s", spec.Name, diffLine(seq.Deltas, par.Deltas))
		}
		if seq.FIBs != par.FIBs {
			t.Errorf("%s: final FIBs diverged at %s", spec.Name, diffLine(seq.FIBs, par.FIBs))
		}
		if seq.Report != par.Report {
			t.Errorf("%s: reports diverged:\n seq=%s\n par=%s", spec.Name, seq.Report, par.Report)
		}
		if seq.Batches != 0 {
			t.Errorf("%s: sequential core reported %d parallel batches", spec.Name, seq.Batches)
		}
		if t.Failed() {
			t.Fatalf("%s: parallel core is not byte-identical to sequential", spec.Name)
		}
	}
	// Non-vacuity: the zoo must actually drive multi-event SPF batches
	// through the pool, or the property proves nothing.
	if batched == 0 {
		t.Fatal("no matrix cell executed a parallel batch")
	}
}
