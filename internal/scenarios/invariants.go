package scenarios

import (
	"fmt"
	"time"

	"fibbing.net/fibbing/internal/controller"
)

// Tolerances of the invariant checks. The fluid simulator is
// deterministic but quantised ECMP splits, sampling granularity and
// monitor hysteresis put real slack between the LP optimum and what the
// controller achieves.
const (
	// lpSlack is how far above max(θ*, target utilisation) the analytic
	// utilisation may sit with the controller on: it absorbs ECMP-weight
	// quantisation and tier-1's even (rather than optimal) splits.
	lpSlack = 0.15
	// beatUtilMargin is the minimum settled-utilisation improvement that
	// counts as "beating" the no-controller run.
	beatUtilMargin = 0.02
	// beatStallMargin is the minimum stall-seconds improvement that
	// counts as "beating" the no-controller run.
	beatStallMargin = 1.0
	// saturated is the settled utilisation above which a link counts as
	// saturated (the fluid model caps utilisation at 1.0).
	saturated = 0.98
	// lateStallBudget is the stall time allowed inside the settle window
	// with the controller on ("no stalls after convergence").
	lateStallBudget = 0.75
	// maxReactionLatency bounds alarm-to-decision time (two monitor poll
	// intervals plus scheduling slack).
	maxReactionLatency = 10 * time.Second
	// targetUtilisation is the controller's reaction target, below which
	// it stops optimising.
	targetUtilisation = controller.DefaultTargetUtilisation
)

// MaxStallSeconds checks a single run's total stall time against a
// budget, returning a violation line when it is exceeded (empty slice
// means the budget holds). The score-mode cells use it to bound what a
// QoE-scored run may leave on the table.
func MaxStallSeconds(r *Report, budget float64) []string {
	if r.StallSeconds > budget {
		return []string{fmt.Sprintf("%s: %.2fs of stalls exceed the %.2fs budget",
			r.Scenario, r.StallSeconds, budget)}
	}
	return nil
}

// StallNoWorseThan checks the never-worsen admissibility contract in QoE
// terms: run r's simulated stall time may not exceed the baseline's by
// more than slack seconds. It returns the violation lines (empty means
// the contract holds).
func StallNoWorseThan(r, baseline *Report, slack float64) []string {
	if r.StallSeconds > baseline.StallSeconds+slack {
		return []string{fmt.Sprintf("%s: %.2fs of stalls vs %.2fs baseline (%s) exceeds +%.2fs slack",
			r.Scenario, r.StallSeconds, baseline.StallSeconds, baseline.Scenario, slack)}
	}
	return nil
}

// Violations checks every cross-run invariant of a scenario and returns
// human-readable violations (empty means the cell holds).
func Violations(spec Spec, on, off *Report) []string {
	spec = spec.withDefaults()
	var v []string
	fail := func(format string, args ...any) { v = append(v, fmt.Sprintf(format, args...)) }

	// Workload sanity: the schedule must actually stress the network —
	// without the controller the IGP path saturates.
	if off.SettledUtilisation < saturated {
		fail("workload does not stress the IGP path: settled utilisation %.3f without controller",
			off.SettledUtilisation)
	}
	if off.Lies != 0 {
		fail("controller-off run installed %d lies", off.Lies)
	}

	// The tentpole comparison: the controller must beat plain IGP on
	// settled max utilisation or on stall time.
	utilWin := on.SettledUtilisation <= off.SettledUtilisation-beatUtilMargin
	stallWin := on.StallSeconds <= off.StallSeconds-beatStallMargin
	if !utilWin && !stallWin {
		fail("controller does not beat IGP: settled %.3f vs %.3f, stalls %.1fs vs %.1fs",
			on.SettledUtilisation, off.SettledUtilisation, on.StallSeconds, off.StallSeconds)
	}

	// With the controller, the analytic utilisation of the final routing
	// state must approach the LP optimum for the settled demand (or the
	// controller's own target when the optimum is below it — the
	// controller stops optimising there). The analytic figure is used
	// because the measured one carries per-flow hash noise and saturates
	// at 1.0.
	if on.LPOptimum > 0 {
		bound := on.LPOptimum
		if bound < targetUtilisation {
			bound = targetUtilisation
		}
		if on.AnalyticUtilisation > bound+lpSlack {
			fail("analytic utilisation %.3f exceeds LP optimum %.3f (+%.2f slack)",
				on.AnalyticUtilisation, on.LPOptimum, lpSlack)
		}
	}

	// Lies must exist, target only the scenario's prefix, and react fast.
	if on.Lies == 0 {
		fail("controller never installed a lie")
	}
	for name, n := range on.LiesByPrefix {
		if name != on.TargetPrefix && n > 0 {
			fail("%d lies touch prefix %q (target %q)", n, name, on.TargetPrefix)
		}
	}
	if on.ReactionLatency >= 0 && on.ReactionLatency > maxReactionLatency {
		fail("reaction latency %v exceeds %v", on.ReactionLatency, maxReactionLatency)
	}

	// No stalls after convergence: once the settle window starts, the
	// controller-managed network must play back smoothly.
	if on.LateStallSeconds > lateStallBudget {
		fail("%.2fs of stalls inside the settle window with the controller on", on.LateStallSeconds)
	}

	// Neither run may corrupt the protocol machinery.
	for _, r := range []*Report{on, off} {
		if len(r.ProtocolErrors) > 0 {
			fail("protocol errors (controller=%v): %v", r.Controller, r.ProtocolErrors)
		}
		if len(r.ControllerErrors) > 0 {
			fail("controller errors (controller=%v): %v", r.Controller, r.ControllerErrors)
		}
	}
	return v
}
