package scenarios

import (
	"fmt"
	"strings"
)

// The score-mode comparison cells: the same topology and schedule run
// once per planner scoring objective, checking that QoE-aware scoring
// actually buys fewer stalled viewer-seconds — predicted and simulated —
// without breaking the never-worsen admissibility contract.

// QoESpecs returns the score-mode comparison cells. The skew schedule
// overloads both of the ring's disjoint directions, so every routing
// saturates and the planner's only real choice is which crowd eats the
// shortfall (see buildWaves); the flashcrowd-qoe cells are the same
// comparison with the overload sliced into tens of thousands of viewers
// at 1 Gbit/s links, driving the score-mode machinery through the
// aggregate traffic plane.
func QoESpecs() []Spec {
	specs := []Spec{
		{Topo: TopoSpec{Family: "ring", Size: 9}, Workload: "skew", Seed: 31},
		{Name: "ring5/skew", Topo: TopoSpec{Family: "ring", Size: 5}, Workload: "skew", Seed: 32},
		{Name: "flashcrowd-qoe-100k", Topo: TopoSpec{Family: "ring", Size: 9, Capacity: 1e9},
			Workload: "skew", Viewers: 100_000, Seed: 33},
	}
	for i := range specs {
		specs[i] = specs[i].withDefaults()
	}
	return specs
}

// ScoreModeComparison is the outcome of one spec run under both scoring
// objectives (plus the no-controller baseline) with the cross-mode
// invariant violations found between them.
type ScoreModeComparison struct {
	Spec Spec    `json:"spec"`
	Util *Report `json:"util"`
	QoE  *Report `json:"qoe"`
	Off  *Report `json:"off"`
	// Violations is empty when the cell holds.
	Violations []string `json:"violations,omitempty"`
}

// Render writes the comparison as an indented human-readable block.
func (c *ScoreModeComparison) Render(b *strings.Builder) {
	b.WriteString(c.Spec.Name + "\n")
	for _, r := range []*Report{c.QoE, c.Util, c.Off} {
		b.WriteString("  " + r.Summary() + "\n")
	}
	for _, r := range []*Report{c.QoE, c.Util} {
		fmt.Fprintf(b, "    %s: predicted stalls %.1fs\n", r.Scenario, r.PredictedStallSeconds)
	}
	for _, v := range c.Violations {
		b.WriteString("  VIOLATION: " + v + "\n")
	}
}

// CompareScoreModes runs one spec three times — controller off,
// controller on with utilisation scoring, controller on with QoE scoring
// — and checks the score-mode invariants.
func CompareScoreModes(spec Spec) (*ScoreModeComparison, error) {
	spec = spec.withDefaults()
	withMode := func(mode string) Spec {
		s := spec
		s.ScoreMode = mode
		s.Name = spec.Name + "@" + mode
		return s
	}
	off, err := Run(spec, false)
	if err != nil {
		return nil, err
	}
	util, err := Run(withMode("util"), true)
	if err != nil {
		return nil, err
	}
	qoe, err := Run(withMode("qoe"), true)
	if err != nil {
		return nil, err
	}
	c := &ScoreModeComparison{Spec: spec, Util: util, QoE: qoe, Off: off}
	c.Violations = ScoreModeViolations(spec, util, qoe, off)
	return c, nil
}

// ScoreModeViolations checks the cross-mode invariants of one score-mode
// comparison cell and returns human-readable violations (empty means the
// cell holds):
//
//   - the workload must actually stress the network (plain IGP saturates
//     and installs no lies),
//   - QoE scoring must commit plans: lies exist and touch only the
//     target prefix,
//   - the tentpole claim: the QoE-scored run ends with strictly fewer
//     simulated stall-seconds than the utilisation-scored run, and its
//     analytic prediction agrees about the direction,
//   - never-worsen, restated in QoE terms: however hot the QoE-scored
//     plan lets a link run, viewers must not stall more than under plain
//     IGP,
//   - no run may corrupt the protocol machinery.
func ScoreModeViolations(spec Spec, util, qoe, off *Report) []string {
	spec = spec.withDefaults()
	var v []string
	fail := func(format string, args ...any) { v = append(v, fmt.Sprintf(format, args...)) }

	if off.SettledUtilisation < saturated {
		fail("workload does not stress the IGP path: settled utilisation %.3f without controller",
			off.SettledUtilisation)
	}
	if off.Lies != 0 {
		fail("controller-off run installed %d lies", off.Lies)
	}
	if qoe.Lies == 0 {
		fail("qoe-scored run never installed a lie")
	}
	for name, n := range qoe.LiesByPrefix {
		if name != qoe.TargetPrefix && n > 0 {
			fail("%d lies touch prefix %q (target %q)", n, name, qoe.TargetPrefix)
		}
	}

	// The tentpole comparison, on both the simulated and the predicted
	// figure: QoE scoring must buy strictly fewer stalled seconds.
	if qoe.StallSeconds > util.StallSeconds-beatStallMargin {
		fail("qoe scoring does not beat util scoring on simulated stalls: %.1fs vs %.1fs (margin %.1fs)",
			qoe.StallSeconds, util.StallSeconds, beatStallMargin)
	}
	if qoe.PredictedStallSeconds >= util.PredictedStallSeconds {
		fail("qoe scoring does not beat util scoring on predicted stalls: %.1fs vs %.1fs",
			qoe.PredictedStallSeconds, util.PredictedStallSeconds)
	}

	// Never-worsen in QoE terms, against the plain-IGP baseline.
	v = append(v, StallNoWorseThan(qoe, off, 0)...)

	for _, r := range []*Report{util, qoe, off} {
		if len(r.ProtocolErrors) > 0 {
			fail("protocol errors (%s): %v", r.Scenario, r.ProtocolErrors)
		}
		if len(r.ControllerErrors) > 0 {
			fail("controller errors (%s): %v", r.Scenario, r.ControllerErrors)
		}
	}
	return v
}
