package scenarios

import (
	"encoding/json"
	"testing"
)

// TestFailoverInvariants runs every failover cell both ways (BFD +
// standby cache vs SNMP-poll detection) and checks the 10x latency and
// stall-ratio invariants between them.
func TestFailoverInvariants(t *testing.T) {
	for _, spec := range FailoverSpecs() {
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			c, err := CompareFailover(spec)
			if err != nil {
				t.Fatalf("CompareFailover: %v", err)
			}
			for _, v := range c.Violations {
				t.Errorf("violation: %s", v)
			}
			if t.Failed() {
				for _, r := range []*Report{c.Fast, c.Slow} {
					j, _ := json.MarshalIndent(r, "", "  ")
					t.Logf("%s report:\n%s", r.Scenario, j)
				}
			}
		})
	}
}
