package scenarios

import (
	"fmt"
	"slices"
	"strings"
	"time"

	"fibbing.net/fibbing/internal/controller"
)

// WaveDelivery accounts one wave's delivered volume against its demand.
type WaveDelivery struct {
	At        time.Duration `json:"at"`
	Flows     int           `json:"flows"`
	Expected  float64       `json:"expected_mbit"`
	Delivered float64       `json:"delivered_mbit"`
	Fraction  float64       `json:"fraction"`
}

// Report is the machine-checkable outcome of one scenario run.
type Report struct {
	Scenario   string        `json:"scenario"`
	Controller bool          `json:"controller"`
	Duration   time.Duration `json:"duration"`
	// TargetPrefix is the destination prefix the workload aims at (and
	// the only prefix lies may touch).
	TargetPrefix string `json:"target_prefix"`
	// ScoreMode is the planner's plan-scoring objective the run used
	// ("util", "qoe" or "blended"; see controller.ScoreMode).
	ScoreMode string `json:"score_mode,omitempty"`

	// Utilisation. The fluid data plane caps link rates at capacity, so
	// 1.0 means saturated (flows starve), not overloaded.
	PeakUtilisation    float64 `json:"peak_utilisation"`
	SettledUtilisation float64 `json:"settled_utilisation"` // max sample in the settle window
	FinalUtilisation   float64 `json:"final_utilisation"`
	// LPOptimum is θ* of the min-max LP for the demand set snapshotted at
	// the settle start: the best any routing could do.
	LPOptimum float64 `json:"lp_optimum"`
	// AnalyticUtilisation routes the settled demands over the final
	// routing state (IGP plus installed lies) with the fluid evaluator:
	// unlike the measured figures it is not capped at 1.0 and carries no
	// per-flow hash noise, so it is what the LP-optimality invariant
	// checks.
	AnalyticUtilisation float64 `json:"analytic_utilisation"`

	// Video QoE.
	Sessions         int     `json:"sessions"`
	SmoothSessions   int     `json:"smooth_sessions"`
	StallSeconds     float64 `json:"stall_seconds"`
	LateStallSeconds float64 `json:"late_stall_seconds"` // stalls accrued inside the settle window
	MeanRebuffer     float64 `json:"mean_rebuffer"`
	// PredictedStallSeconds is the analytic QoE predictor's stall
	// estimate for the settled demands routed over the final routing
	// state — the figure the qoe score mode plans against, reported for
	// every run so the score-mode cells can check that predicted and
	// simulated stalls move together. 0 when no demand settled.
	PredictedStallSeconds float64 `json:"predicted_stall_seconds,omitempty"`

	// Delivery.
	DeliveredMbit float64        `json:"delivered_mbit"`
	Waves         []WaveDelivery `json:"waves"`

	// Controller activity.
	Lies         int            `json:"lies"`
	LiesByPrefix map[string]int `json:"lies_by_prefix,omitempty"`
	// Strategies is the registered reaction-strategy set; StrategyWins
	// counts committed plans per winning strategy (each Decision also
	// carries its winner's name).
	Strategies      []string              `json:"strategies,omitempty"`
	StrategyWins    map[string]int        `json:"strategy_wins,omitempty"`
	// StrategyPerf is the planner's per-strategy telemetry: proposals,
	// wins, and cumulative Propose wall-time. Nanos is real time, so the
	// determinism harness scrubs it alongside Workers before comparing.
	StrategyPerf map[string]controller.StrategyPerf `json:"strategy_perf,omitempty"`
	Decisions       []controller.Decision `json:"decisions,omitempty"`
	FirstHotAt      time.Duration         `json:"first_hot_at"`      // first sample >= alarm threshold; -1 if never
	FirstReactionAt time.Duration         `json:"first_reaction_at"` // first decision; -1 if none
	ReactionLatency time.Duration         `json:"reaction_latency"`  // FirstReactionAt - FirstHotAt; -1 if n/a

	// Simulation cost telemetry: scheduler events executed, the SPF
	// strategy split, and the reshare strategy split, so scaling runs
	// (fiblab -scale) can show where the time goes and whether the
	// control- and data-plane delta pipelines carried the load.
	Events             uint64 `json:"events,omitempty"`
	SPFIncrementalRuns uint64 `json:"spf_incremental_runs,omitempty"`
	SPFFullRuns        uint64 `json:"spf_full_runs,omitempty"`
	// ReshareIncremental counts component-scoped max-min solves,
	// ReshareFull global ones; their ratio is the data plane's
	// incremental hit rate. Aggregates is the final path-class count —
	// against Sessions it shows the aggregate plane's compression.
	ReshareIncremental uint64 `json:"reshare_incremental_runs,omitempty"`
	ReshareFull        uint64 `json:"reshare_full_runs,omitempty"`
	// ReshareComponents counts the independent max-min components solved
	// across all reshares; the count is worker-width invariant because the
	// partition depends only on the incidence graph.
	ReshareComponents uint64 `json:"reshare_components,omitempty"`
	Aggregates        int    `json:"aggregates,omitempty"`

	// Planner amortisation telemetry: the PlanContext artifact cache's
	// hit/miss split (deterministic by store-time accounting, so it is
	// compared across worker widths) and the warm-started LP solver's
	// warm/cold/fallback solve counts.
	PlanCacheHits    uint64 `json:"plan_cache_hits,omitempty"`
	PlanCacheMisses  uint64 `json:"plan_cache_misses,omitempty"`
	// QoECacheHits/Misses split the artifact cache's memoised QoE
	// predictions (populated only when a QoE-aware score mode runs);
	// store-time accounting keeps them worker-width deterministic too.
	QoECacheHits   uint64 `json:"qoe_cache_hits,omitempty"`
	QoECacheMisses uint64 `json:"qoe_cache_misses,omitempty"`
	LPWarmSolves     uint64 `json:"lp_warm_solves,omitempty"`
	LPColdSolves     uint64 `json:"lp_cold_solves,omitempty"`
	LPFallbackSolves uint64 `json:"lp_fallback_solves,omitempty"`

	// Parallel-core telemetry: the scheduler's worker-pool width, how many
	// multi-event SPF batches it executed, how many SPF runs rode inside
	// them versus firing alone, and the largest batch. These fields are
	// the only report content allowed to differ between worker counts —
	// everything else is byte-identical by the determinism contract.
	Workers           int    `json:"workers,omitempty"`
	ParallelBatches   uint64 `json:"parallel_batches,omitempty"`
	ParallelSPFRuns   uint64 `json:"parallel_spf_runs,omitempty"`
	SequentialSPFRuns uint64 `json:"sequential_spf_runs,omitempty"`
	MaxBatch          int    `json:"max_batch,omitempty"`

	// Fast failover (meaningful when the spec schedules a failure).
	// FailureAt is the first scheduled link-down instant; FailoverCommitAt
	// the first plan committed at or after it; FailoverLatency their
	// difference — the failure-to-commit reaction time the BFD + standby
	// path is built to shrink. FailoverStallSeconds is the viewer stall
	// time accrued inside the failover window (failure to failure +
	// failoverWindow). All durations are -1 when not applicable.
	FailureAt            time.Duration `json:"failure_at"`
	FailoverCommitAt     time.Duration `json:"failover_commit_at"`
	FailoverLatency      time.Duration `json:"failover_latency"`
	FailoverStallSeconds float64       `json:"failover_stall_seconds,omitempty"`
	// Standby cache counters (zero unless Spec.StandbyK enabled it).
	StandbyPrecomputed int `json:"standby_precomputed,omitempty"`
	StandbyHits        int `json:"standby_hits,omitempty"`
	StandbyMisses      int `json:"standby_misses,omitempty"`
	StandbyStale       int `json:"standby_stale,omitempty"`
	// BFD liveness counters (zero unless Spec.BFD enabled the engine).
	BFDSessions  int    `json:"bfd_sessions,omitempty"`
	BFDLinkDowns uint64 `json:"bfd_link_downs,omitempty"`
	BFDLinkUps   uint64 `json:"bfd_link_ups,omitempty"`

	ControllerErrors []string `json:"controller_errors,omitempty"`
	ProtocolErrors   []string `json:"protocol_errors,omitempty"`
	// Notes carries non-fatal reporting degradations (e.g. the LP bound
	// being unavailable because the solver stalled): the run itself is
	// still valid, so these do not trip invariants.
	Notes []string `json:"notes,omitempty"`
}

// Summary renders a one-line human summary of the report.
func (r *Report) Summary() string {
	mode := "ctrl-off"
	if r.Controller {
		mode = "ctrl-on "
	}
	lat := "-"
	if r.ReactionLatency >= 0 {
		lat = r.ReactionLatency.String()
	}
	s := fmt.Sprintf("%-28s %s settled=%.2f peak=%.2f analytic=%.2f lp=%.2f lies=%d stalls=%.1fs late=%.1fs react=%s delivered=%.0fMbit",
		r.Scenario, mode, r.SettledUtilisation, r.PeakUtilisation, r.AnalyticUtilisation,
		r.LPOptimum, r.Lies, r.StallSeconds, r.LateStallSeconds, lat, r.DeliveredMbit)
	if len(r.StrategyWins) > 0 {
		names := make([]string, 0, len(r.StrategyWins))
		for name := range r.StrategyWins {
			names = append(names, name)
		}
		slices.Sort(names)
		parts := make([]string, len(names))
		for i, name := range names {
			parts[i] = fmt.Sprintf("%s:%d", name, r.StrategyWins[name])
		}
		s += " wins=" + strings.Join(parts, ",")
	}
	return s
}

// Comparison pairs the controller-on and controller-off runs of one spec
// with the invariant violations found between them.
type Comparison struct {
	Spec       Spec     `json:"spec"`
	On         *Report  `json:"on"`
	Off        *Report  `json:"off"`
	Violations []string `json:"violations,omitempty"`
}

// Render writes the comparison as an indented human-readable block.
func (c *Comparison) Render(b *strings.Builder) {
	fmt.Fprintf(b, "%s\n  %s\n  %s\n", c.Spec.Name, c.On.Summary(), c.Off.Summary())
	for _, v := range c.Violations {
		fmt.Fprintf(b, "  VIOLATION: %s\n", v)
	}
}

// RenderCacheStats writes the planner amortisation telemetry — the
// PlanContext artifact cache's hit/miss split, the warm-started LP
// solver's warm/cold/fallback counts, the parallel reshare's component
// count, and the per-strategy propose timings — as indented lines.
// fiblab prints it under -cache-stats; all fields are also present in
// the JSON report.
func (r *Report) RenderCacheStats(b *strings.Builder, indent string) {
	fmt.Fprintf(b, "%splan-cache %d hit / %d miss; qoe %d hit / %d miss; lp %d warm / %d cold / %d fallback; reshare components %d\n",
		indent, r.PlanCacheHits, r.PlanCacheMisses,
		r.QoECacheHits, r.QoECacheMisses,
		r.LPWarmSolves, r.LPColdSolves, r.LPFallbackSolves,
		r.ReshareComponents)
	names := make([]string, 0, len(r.StrategyPerf))
	for name := range r.StrategyPerf {
		names = append(names, name)
	}
	slices.Sort(names)
	for _, name := range names {
		p := r.StrategyPerf[name]
		fmt.Fprintf(b, "%sstrategy %-10s proposals=%d wins=%d propose=%s\n",
			indent, name, p.Proposals, p.Wins, time.Duration(p.Nanos))
	}
}
