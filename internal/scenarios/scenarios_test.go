package scenarios

import (
	"encoding/json"
	"testing"
	"time"
)

func TestTopoSpecBuild(t *testing.T) {
	t.Parallel()
	for _, ts := range MatrixTopologies() {
		tp, prefix, err := ts.Build()
		if err != nil {
			t.Fatalf("%s: %v", ts.Family, err)
		}
		if _, ok := tp.PrefixByName(prefix); !ok {
			t.Fatalf("%s: prefix %q missing", ts.Family, prefix)
		}
	}
	if _, _, err := (TopoSpec{Family: "nope"}).Build(); err == nil {
		t.Fatal("unknown family must error")
	}
}

func TestBuildEnvPicksSpreadableIngress(t *testing.T) {
	t.Parallel()
	for _, ts := range MatrixTopologies() {
		tp, prefix, err := ts.Build()
		if err != nil {
			t.Fatal(err)
		}
		e, err := buildEnv(tp, prefix)
		if err != nil {
			t.Fatalf("%s: %v", ts.Family, err)
		}
		ingress := tp.MustNode(e.primary)
		if ingress == e.attach {
			t.Fatalf("%s: ingress equals attachment", ts.Family)
		}
		deg := 0
		for _, lid := range tp.OutLinks(ingress) {
			if !tp.Node(tp.Link(lid).To).Host {
				deg++
			}
		}
		if deg < 2 {
			t.Fatalf("%s: primary ingress %s has router degree %d < 2", ts.Family, e.primary, deg)
		}
		if e.pathCap <= 0 {
			t.Fatalf("%s: path capacity %v", ts.Family, e.pathCap)
		}
		if e.hop1A != e.primary {
			t.Fatalf("%s: first hop starts at %s, want %s", ts.Family, e.hop1A, e.primary)
		}
	}
}

func TestWavesDeterministicAndOverloading(t *testing.T) {
	t.Parallel()
	tp, prefix, err := (TopoSpec{Family: "ring", Size: 9}).Build()
	if err != nil {
		t.Fatal(err)
	}
	e, err := buildEnv(tp, prefix)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []string{"surge", "flash", "ramp", "dual"} {
		a, err := buildWaves(kind, e, 30*time.Second, 42)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		b, _ := buildWaves(kind, e, 30*time.Second, 42)
		aj, _ := json.Marshal(a)
		bj, _ := json.Marshal(b)
		if string(aj) != string(bj) {
			t.Fatalf("%s: waves not deterministic", kind)
		}
		// The steady demand (hold-free waves plus long-hold arrivals) must
		// exceed the primary path's capacity so plain IGP saturates.
		var demand float64
		for _, w := range a {
			demand += float64(w.Flows) * w.Rate
		}
		if demand < 1.4*e.pathCap {
			t.Fatalf("%s: total demand %.0f < 1.4x path capacity %.0f", kind, demand, e.pathCap)
		}
	}
	if _, err := buildWaves("nope", e, 30*time.Second, 0); err == nil {
		t.Fatal("unknown workload must error")
	}
}

func TestFailureSchedules(t *testing.T) {
	t.Parallel()
	tp, prefix, err := (TopoSpec{Family: "fig1"}).Build()
	if err != nil {
		t.Fatal(err)
	}
	e, err := buildEnv(tp, prefix)
	if err != nil {
		t.Fatal(err)
	}
	if evs, err := buildFailures("", e, 30*time.Second); err != nil || len(evs) != 0 {
		t.Fatalf("none: %v %v", evs, err)
	}
	evs, err := buildFailures("flap", e, 30*time.Second)
	if err != nil || len(evs) != 2 {
		t.Fatalf("flap: %v %v", evs, err)
	}
	if evs[0].Up || !evs[1].Up || evs[1].At <= evs[0].At {
		t.Fatalf("flap order wrong: %+v", evs)
	}
	if evs[0].A != e.hop1A || evs[0].B != e.hop1B {
		t.Fatalf("flap targets %s-%s, want %s-%s", evs[0].A, evs[0].B, e.hop1A, e.hop1B)
	}
	if _, err := buildFailures("nope", e, 30*time.Second); err == nil {
		t.Fatal("unknown failure schedule must error")
	}
}

func TestMatrixShape(t *testing.T) {
	t.Parallel()
	specs := MatrixSpecs()
	if len(specs) < 12 {
		t.Fatalf("matrix has %d cells, want >= 12", len(specs))
	}
	families := map[string]bool{}
	schedules := map[string]bool{}
	names := map[string]bool{}
	for _, s := range specs {
		families[s.Topo.Family] = true
		schedules[s.Workload+"+"+s.Failure] = true
		if names[s.Name] {
			t.Fatalf("duplicate cell name %q", s.Name)
		}
		names[s.Name] = true
	}
	if len(families) < 4 {
		t.Fatalf("matrix spans %d topology families, want >= 4", len(families))
	}
	if len(schedules) < 3 {
		t.Fatalf("matrix spans %d schedules, want >= 3", len(schedules))
	}
	if _, ok := SpecByName(specs[0].Name); !ok {
		t.Fatalf("SpecByName cannot find %q", specs[0].Name)
	}
	if _, ok := SpecByName("no/such"); ok {
		t.Fatal("SpecByName found a ghost")
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	t.Parallel()
	rep := &Report{Scenario: "x", Controller: true, SettledUtilisation: 0.5,
		LiesByPrefix: map[string]int{"blue": 3}, FirstHotAt: -1}
	buf, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	if back.Scenario != "x" || back.LiesByPrefix["blue"] != 3 || back.FirstHotAt != -1 {
		t.Fatalf("round trip lost data: %+v", back)
	}
}
