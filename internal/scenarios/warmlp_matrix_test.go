package scenarios

import (
	"math"
	"testing"

	"fibbing.net/fibbing/internal/te"
	"fibbing.net/fibbing/internal/topo"
)

// TestWarmLPEqualsColdAcrossMatrix is the zoo-wide property test for the
// warm-started LP: on every matrix topology, a MinMaxSolver driven through
// a train of demand-volume changes must agree with an independent cold
// SolveMinMax on the objective and every per-link flow, within the
// solver's own tolerance. The multipliers span six orders of magnitude so
// the warm path also crosses ProblemScale renormalisations.
func TestWarmLPEqualsColdAcrossMatrix(t *testing.T) {
	t.Parallel()
	for _, ts := range MatrixTopologies() {
		t.Run(ts.Family, func(t *testing.T) {
			t.Parallel()
			tp, prefix, err := ts.Build()
			if err != nil {
				t.Fatal(err)
			}
			base := matrixDemands(t, tp, prefix)

			solver := te.NewMinMaxSolver()
			warmSeen := false
			for _, f := range []float64{1, 1.7, 0.3, 1e-3, 1e3, 42} {
				demands := append([]topo.Demand(nil), base...)
				for i := range demands {
					demands[i].Volume *= f
				}
				warm, err := solver.Solve(tp, demands)
				if err != nil {
					t.Fatalf("warm solve (f=%v): %v", f, err)
				}
				cold, err := te.SolveMinMax(tp, demands)
				if err != nil {
					t.Fatalf("cold solve (f=%v): %v", f, err)
				}
				assertMinMaxAgree(t, tp, warm, cold)
				warmSeen = warmSeen || solver.Stats().Warm > 0
			}
			// The structure never changes inside one family, so after the
			// first cold solve every revisit must ride the warm path.
			st := solver.Stats()
			if st.Warm == 0 {
				t.Fatalf("no warm solves on %s: %+v", ts.Family, st)
			}
		})
	}
}

// matrixDemands builds a deterministic demand set toward the family's
// target prefix from up to three distinct ingress routers.
func matrixDemands(t *testing.T, tp *topo.Topology, prefix string) []topo.Demand {
	t.Helper()
	pfx, ok := tp.PrefixByName(prefix)
	if !ok {
		t.Fatalf("prefix %q missing", prefix)
	}
	attached := make(map[topo.NodeID]bool)
	for _, a := range pfx.Attachments {
		attached[a.Node] = true
	}
	var demands []topo.Demand
	for _, n := range tp.Nodes() {
		if n.Host || attached[n.ID] {
			continue
		}
		// Stagger volumes so the optimal split is not symmetric.
		demands = append(demands, topo.Demand{
			Ingress:    n.ID,
			PrefixName: prefix,
			Volume:     4e6 + 1e6*float64(len(demands)),
		})
		if len(demands) == 3 {
			break
		}
	}
	if len(demands) == 0 {
		t.Fatalf("no ingress router available for %q", prefix)
	}
	return demands
}

// assertMinMaxAgree mirrors the te package's warm-vs-cold comparison:
// objectives and per-link flows within SolverRelTol of each commodity's
// own magnitude, and no extra flow on the warm side.
func assertMinMaxAgree(t *testing.T, tp *topo.Topology, got, want *te.MinMaxResult) {
	t.Helper()
	if math.Abs(got.MaxUtilisation-want.MaxUtilisation) > te.SolverRelTol*math.Max(1, want.MaxUtilisation) {
		t.Fatalf("warm θ* = %v, cold θ* = %v", got.MaxUtilisation, want.MaxUtilisation)
	}
	for name, flows := range want.Flow {
		volScale := 0.0
		for _, v := range flows {
			if v > volScale {
				volScale = v
			}
		}
		tol := te.SolverRelTol * math.Max(1, volScale)
		for id, v := range flows {
			if math.Abs(got.Flow[name][id]-v) > tol {
				l := tp.Link(id)
				t.Fatalf("warm flow[%s][%s->%s] = %v, cold = %v",
					name, tp.Name(l.From), tp.Name(l.To), got.Flow[name][id], v)
			}
		}
		for id, v := range got.Flow[name] {
			if _, ok := flows[id]; !ok && v > tol {
				t.Fatalf("warm has extra flow %v on link %v of %s", v, id, name)
			}
		}
	}
}
