package scenarios

import (
	"testing"
	"time"

	"fibbing.net/fibbing/internal/controller"
)

// TestAggregateReshareMatchesGlobalSolve is the traffic-plane equivalence
// property over the zoo: every matrix cell (all 6 topology families x 3
// workload/failure schedules) runs with the controller on — so lie churn,
// FIB diffs and, in the flap cells, link failures drive re-path storms —
// while a ticker repeatedly compares the live aggregate/incremental
// allocation against a from-scratch per-flow global max-min solve. Any
// drift beyond 1e-9 (relative) fails the cell.
//
// It must not run in parallel: it arms the package test hook, which the
// parallel matrix tests would otherwise observe (Go runs all serial tests
// before any parallel one starts, so ordering is guaranteed).
func TestAggregateReshareMatchesGlobalSolve(t *testing.T) {
	defer func() { testHookSimBuilt = nil }()
	incrementalCells := 0
	for _, spec := range MatrixSpecs() {
		spec := spec
		var checks int
		testHookSimBuilt = func(sim *controller.Sim) {
			// An off-grid period keeps the checks interleaved between the
			// samplers and wave events rather than synchronised with them.
			sim.Sched.NewTicker(333*time.Millisecond, func() {
				checks++
				if err := sim.Net.VerifyMaxMin(1e-9); err != nil {
					t.Errorf("%s @%v: %v", spec.Name, sim.Sched.Now(), err)
				}
			})
		}
		rep, err := Run(spec, true)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if checks == 0 {
			t.Fatalf("%s: equivalence ticker never fired", spec.Name)
		}
		if rep.ReshareIncremental > 0 {
			incrementalCells++
		}
		if t.Failed() {
			t.Fatalf("%s: aggregate allocation diverged from the per-flow global solve", spec.Name)
		}
	}
	// The property must actually exercise the incremental path, not pass
	// vacuously because every cell fell back to full solves.
	if incrementalCells == 0 {
		t.Fatal("no matrix cell ran a component-scoped reshare")
	}
}

// TestViewerScaledCellEquivalence runs a viewer-sliced surge (the
// flashcrowd-100k shape at testing scale) under the same equivalence
// ticker: thousands of members per aggregate, joins in bulk, and the
// allocation still matches the per-flow solve.
func TestViewerScaledCellEquivalence(t *testing.T) {
	defer func() { testHookSimBuilt = nil }()
	spec := Spec{
		Name:     "flashcrowd-mini",
		Topo:     TopoSpec{Family: "fattree", Size: 4, Seed: 2, Capacity: 100e6},
		Workload: "surge",
		Viewers:  5000,
		Seed:     4,
	}
	testHookSimBuilt = func(sim *controller.Sim) {
		sim.Sched.NewTicker(time.Second, func() {
			if err := sim.Net.VerifyMaxMin(1e-9); err != nil {
				t.Errorf("@%v: %v", sim.Sched.Now(), err)
			}
		})
	}
	rep, err := Run(spec, true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sessions != 5000 {
		t.Fatalf("sessions = %d, want 5000", rep.Sessions)
	}
	if rep.Aggregates == 0 || rep.Aggregates > 200 {
		t.Fatalf("aggregates = %d for %d viewers: aggregation not compressing", rep.Aggregates, rep.Sessions)
	}
}

// TestFlashcrowd100kCell runs the real 100k-viewer scale cell end to end
// with the controller on — the acceptance bar for the aggregate plane.
// Skipped in -short runs; the scenario-matrix CI gate still covers it
// through fiblab -scale.
func TestFlashcrowd100kCell(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-viewer cell skipped in -short mode")
	}
	spec, ok := scaleSpecByName("flashcrowd-100k")
	if !ok {
		t.Fatal("flashcrowd-100k not in ScaleSpecs")
	}
	start := time.Now()
	rep, err := Run(spec, true)
	if err != nil {
		t.Fatal(err)
	}
	wall := time.Since(start)
	t.Logf("flashcrowd-100k: wall=%v events=%d sessions=%d aggregates=%d reshare=%d inc/%d full settled=%.2f",
		wall, rep.Events, rep.Sessions, rep.Aggregates,
		rep.ReshareIncremental, rep.ReshareFull, rep.SettledUtilisation)
	if rep.Sessions != 100_000 {
		t.Fatalf("sessions = %d, want 100000", rep.Sessions)
	}
	if rep.Aggregates > 1000 {
		t.Fatalf("aggregates = %d: aggregation not compressing 100k viewers", rep.Aggregates)
	}
	if rep.Lies == 0 {
		t.Fatal("controller never reacted to the 100k crowd")
	}
	for _, e := range rep.ProtocolErrors {
		t.Errorf("protocol error: %s", e)
	}
	// Strategy errors are soft as long as a plan committed (the lies
	// check above); log them for visibility.
	for _, e := range rep.ControllerErrors {
		t.Logf("soft controller error: %s", e)
	}
}

func scaleSpecByName(name string) (Spec, bool) {
	for _, s := range ScaleSpecs() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}
