package topo

import (
	"fmt"
	"math"
	"math/rand"
	"net/netip"
)

// This file holds the seeded topology generators of the scenario matrix:
// fat-tree (data-center), ring (metro/backbone), and Waxman (random
// geometric WAN). Together with Fig1, Abilene, Grid and RandomConnected
// they form the topology zoo the stress harness sweeps over.
//
// Every generator is deterministic for a given option set (including the
// seed) and produces a Validate-clean topology: symmetric links, weights
// >= 1, positive capacities, and at least one destination prefix so the
// flash-crowd workloads have somewhere to aim.

// weightDrawer returns a deterministic weight generator in [1, maxWeight].
// maxWeight <= 1 yields constant unit weights (the common default for
// regular topologies); larger values add seeded weight jitter so equal-cost
// structure varies across seeds.
func weightDrawer(seed, maxWeight int64) func() int64 {
	if maxWeight <= 1 {
		return func() int64 { return 1 }
	}
	rng := rand.New(rand.NewSource(seed))
	return func() int64 { return 1 + rng.Int63n(maxWeight) }
}

// FatTreeOpts parameterises FatTree.
type FatTreeOpts struct {
	// K is the fat-tree arity; must be even and >= 2. A k-ary fat-tree has
	// (k/2)^2 core switches and k pods of k/2 aggregation + k/2 edge
	// switches each: 5k^2/4 routers total (k=4 -> 20).
	K int
	// Capacity is the uniform link capacity in bit/s (default 10 Mbit/s).
	Capacity float64
	// MaxWeight > 1 draws link weights uniformly from [1, MaxWeight] using
	// Seed; otherwise all weights are 1 (the classic ECMP fat-tree).
	MaxWeight int64
	// Seed drives the weight jitter. Ignored when MaxWeight <= 1.
	Seed int64
}

// FatTreePrefixName is the destination prefix FatTree attaches under the
// first edge switch of pod 0 (the "server rack" the crowd fetches from).
const FatTreePrefixName = "rack"

// FatTree builds a k-ary fat-tree: the canonical Clos data-center fabric
// with rich path diversity (every inter-pod pair has (k/2)^2 equal-cost
// paths at unit weights). Node names: core c<i>, aggregation p<p>a<i>,
// edge p<p>e<i>.
func FatTree(o FatTreeOpts) *Topology {
	if o.K < 2 || o.K%2 != 0 {
		panic(fmt.Sprintf("topo: fat-tree arity %d must be even and >= 2", o.K))
	}
	if o.Capacity == 0 {
		o.Capacity = 10e6
	}
	w := weightDrawer(o.Seed, o.MaxWeight)
	opts := LinkOpts{Capacity: o.Capacity}
	half := o.K / 2

	t := New()
	core := make([]NodeID, half*half)
	for i := range core {
		core[i] = t.AddNode(fmt.Sprintf("c%d", i))
	}
	for p := 0; p < o.K; p++ {
		agg := make([]NodeID, half)
		edge := make([]NodeID, half)
		for i := 0; i < half; i++ {
			agg[i] = t.AddNode(fmt.Sprintf("p%da%d", p, i))
		}
		for i := 0; i < half; i++ {
			edge[i] = t.AddNode(fmt.Sprintf("p%de%d", p, i))
		}
		for i, a := range agg {
			// Aggregation switch i of every pod uplinks to core group i.
			for j := 0; j < half; j++ {
				t.AddLink(a, core[i*half+j], w(), opts)
			}
			for _, e := range edge {
				t.AddLink(a, e, w(), opts)
			}
		}
	}
	t.AddPrefix(netip.MustParsePrefix("10.210.0.0/16"), FatTreePrefixName,
		Attachment{Node: t.MustNode("p0e0")})
	return t
}

// RingOpts parameterises Ring.
type RingOpts struct {
	// N is the number of routers on the cycle (>= 3).
	N int
	// Capacity is the uniform link capacity in bit/s (default 10 Mbit/s).
	Capacity float64
	// MaxWeight > 1 draws link weights uniformly from [1, MaxWeight] using
	// Seed; otherwise all weights are 1.
	MaxWeight int64
	// Seed drives the weight jitter. Ignored when MaxWeight <= 1.
	Seed int64
	// Chords adds up to that many seeded random chord links across the
	// ring, turning the cycle into a chordal ring with more path
	// diversity. Best effort: when the ring is too small to place the
	// requested number of distinct chords (or the attempt budget runs
	// out), fewer are added.
	Chords int
}

// RingPrefixName is the destination prefix Ring attaches at r0.
const RingPrefixName = "head"

// Ring builds a cycle r0..r<N-1> (optionally with chords): the minimal
// two-path topology, the worst case for local load-balancing because the
// only alternative path is the long way around.
func Ring(o RingOpts) *Topology {
	if o.N < 3 {
		panic(fmt.Sprintf("topo: ring size %d < 3", o.N))
	}
	if o.Capacity == 0 {
		o.Capacity = 10e6
	}
	w := weightDrawer(o.Seed, o.MaxWeight)
	opts := LinkOpts{Capacity: o.Capacity}

	t := New()
	for i := 0; i < o.N; i++ {
		t.AddNode(fmt.Sprintf("r%d", i))
	}
	for i := 0; i < o.N; i++ {
		t.AddLink(NodeID(i), NodeID((i+1)%o.N), w(), opts)
	}
	if o.Chords > 0 {
		rng := rand.New(rand.NewSource(o.Seed + 1))
		added := 0
		for attempts := 0; added < o.Chords && attempts < 50*o.Chords; attempts++ {
			a := NodeID(rng.Intn(o.N))
			b := NodeID(rng.Intn(o.N))
			if a == b {
				continue
			}
			if _, dup := t.FindLink(a, b); dup {
				continue
			}
			t.AddLink(a, b, w(), opts)
			added++
		}
	}
	t.AddPrefix(netip.MustParsePrefix("10.220.0.0/16"), RingPrefixName,
		Attachment{Node: 0})
	return t
}

// WaxmanOpts parameterises Waxman.
type WaxmanOpts struct {
	// Nodes is the number of routers (>= 2).
	Nodes int
	// Alpha scales the overall link probability (default 0.7).
	Alpha float64
	// Beta controls the distance falloff: larger favours long links
	// (default 0.4).
	Beta float64
	// Capacity is the uniform link capacity in bit/s (default 10 Mbit/s).
	Capacity float64
	// MaxWeight > 1 draws link weights uniformly from [1, MaxWeight];
	// otherwise weights are 1. Uses the same seed stream as placement.
	MaxWeight int64
	// Seed drives node placement, link sampling and weight jitter.
	Seed int64
}

// WaxmanPrefixName is the destination prefix Waxman attaches at the node
// closest to the unit square's centre (a well-connected sink).
const WaxmanPrefixName = "sink"

// Waxman builds a Waxman random geometric graph: nodes are placed
// uniformly on the unit square and each pair is linked with probability
// alpha * exp(-d / (beta * sqrt(2))). Components are then stitched
// together by their closest node pairs, so the result is always
// connected. Deterministic for a given option set.
func Waxman(o WaxmanOpts) *Topology {
	if o.Nodes < 2 {
		panic(fmt.Sprintf("topo: waxman size %d < 2", o.Nodes))
	}
	if o.Alpha == 0 {
		o.Alpha = 0.7
	}
	if o.Beta == 0 {
		o.Beta = 0.4
	}
	if o.Capacity == 0 {
		o.Capacity = 10e6
	}
	rng := rand.New(rand.NewSource(o.Seed))
	w := func() int64 { return 1 }
	if o.MaxWeight > 1 {
		max := o.MaxWeight
		w = func() int64 { return 1 + rng.Int63n(max) }
	}
	opts := LinkOpts{Capacity: o.Capacity}

	t := New()
	xs := make([]float64, o.Nodes)
	ys := make([]float64, o.Nodes)
	for i := 0; i < o.Nodes; i++ {
		t.AddNode(fmt.Sprintf("w%d", i))
		xs[i] = rng.Float64()
		ys[i] = rng.Float64()
	}
	dist := func(i, j int) float64 {
		return math.Hypot(xs[i]-xs[j], ys[i]-ys[j])
	}
	scale := o.Beta * math.Sqrt2
	for i := 0; i < o.Nodes; i++ {
		for j := i + 1; j < o.Nodes; j++ {
			if rng.Float64() < o.Alpha*math.Exp(-dist(i, j)/scale) {
				t.AddLink(NodeID(i), NodeID(j), w(), opts)
			}
		}
	}

	// Stitch components: repeatedly join the component of node 0 to the
	// closest outside node. Union-find over node indices.
	parent := make([]int, o.Nodes)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(i int) int {
		if parent[i] != i {
			parent[i] = find(parent[i])
		}
		return parent[i]
	}
	for _, l := range t.Links() {
		parent[find(int(l.From))] = find(int(l.To))
	}
	for {
		root := find(0)
		bi, bj, bd := -1, -1, math.Inf(1)
		for i := 0; i < o.Nodes; i++ {
			if find(i) != root {
				continue
			}
			for j := 0; j < o.Nodes; j++ {
				if find(j) == root {
					continue
				}
				if d := dist(i, j); d < bd {
					bi, bj, bd = i, j, d
				}
			}
		}
		if bi < 0 {
			break // single component
		}
		t.AddLink(NodeID(bi), NodeID(bj), w(), opts)
		parent[find(bi)] = find(bj)
	}

	// Attach the sink prefix at the most central node.
	sink, best := 0, math.Inf(1)
	for i := 0; i < o.Nodes; i++ {
		if d := math.Hypot(xs[i]-0.5, ys[i]-0.5); d < best {
			sink, best = i, d
		}
	}
	t.AddPrefix(netip.MustParsePrefix("10.230.0.0/16"), WaxmanPrefixName,
		Attachment{Node: NodeID(sink)})
	return t
}
