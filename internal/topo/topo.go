// Package topo models weighted, capacitated network topologies as used by
// link-state interior gateway protocols (IGPs).
//
// A Topology is a set of named nodes (routers and stub hosts) connected by
// directed links. Undirected (symmetric) links are stored as two directed
// half-links that reference each other. Destination prefixes are attached to
// one or more nodes, mirroring how an IGP router originates a prefix.
//
// The package also ships the canonical topology of the paper's Figure 1
// (see Fig1) and deterministic random-topology generators used by the
// traffic-engineering benchmarks.
package topo

import (
	"fmt"
	"net/netip"
	"slices"
	"strings"
	"time"
)

// NodeID is a dense index identifying a node inside one Topology.
type NodeID int32

// NoNode is the sentinel for "no such node".
const NoNode NodeID = -1

// LinkID is a dense index identifying a directed link inside one Topology.
type LinkID int32

// NoLink is the sentinel for "no such link".
const NoLink LinkID = -1

// Node is a vertex of the topology: a router, or a stub host hanging off a
// router (hosts never transit traffic and never run the IGP).
type Node struct {
	ID   NodeID
	Name string
	// Host marks stub endpoints (video servers and clients). Hosts do not
	// participate in SPF as transit nodes.
	Host bool
}

// Link is one directed edge. A symmetric link is two Links that point at
// each other through Reverse.
type Link struct {
	ID   LinkID
	From NodeID
	To   NodeID
	// Weight is the IGP metric of the link. Must be >= 1 for valid
	// topologies (OSPF semantics).
	Weight int64
	// Capacity in bits per second. Zero means "unconstrained" (used for
	// host access links in some scenarios).
	Capacity float64
	// Delay is the one-way propagation delay, used by the event-driven
	// flooding simulation.
	Delay time.Duration
	// Reverse is the LinkID of the opposite direction, or NoLink for a
	// unidirectional link.
	Reverse LinkID
}

// Attachment binds a prefix to an announcing node at a given cost.
type Attachment struct {
	Node NodeID
	Cost int64
}

// Prefix is a destination prefix originated by one or more nodes.
type Prefix struct {
	Prefix      netip.Prefix
	Name        string
	Attachments []Attachment
}

// Topology is an immutable-after-build graph. Use New and the Add* methods
// to construct one, then Validate.
type Topology struct {
	nodes    []Node
	links    []Link
	out      [][]LinkID
	in       [][]LinkID
	byName   map[string]NodeID
	prefixes []Prefix
}

// New returns an empty topology.
func New() *Topology {
	return &Topology{byName: make(map[string]NodeID)}
}

// AddNode adds a router node with the given name and returns its ID.
// Adding a duplicate name panics: topology construction errors are
// programming errors.
func (t *Topology) AddNode(name string) NodeID {
	return t.addNode(name, false)
}

// AddHost adds a stub host node (e.g. a video server or client).
func (t *Topology) AddHost(name string) NodeID {
	return t.addNode(name, true)
}

func (t *Topology) addNode(name string, host bool) NodeID {
	if name == "" {
		panic("topo: empty node name")
	}
	if _, dup := t.byName[name]; dup {
		panic(fmt.Sprintf("topo: duplicate node %q", name))
	}
	id := NodeID(len(t.nodes))
	t.nodes = append(t.nodes, Node{ID: id, Name: name, Host: host})
	t.out = append(t.out, nil)
	t.in = append(t.in, nil)
	t.byName[name] = id
	return id
}

// LinkOpts carries the optional attributes of a link.
type LinkOpts struct {
	Capacity float64       // bits per second; 0 = unconstrained
	Delay    time.Duration // one-way propagation delay
}

// AddDirectedLink adds a single directed link and returns its ID.
func (t *Topology) AddDirectedLink(from, to NodeID, weight int64, opts LinkOpts) LinkID {
	t.checkNode(from)
	t.checkNode(to)
	if from == to {
		panic("topo: self-loop link")
	}
	if weight < 1 {
		panic(fmt.Sprintf("topo: link weight %d < 1", weight))
	}
	id := LinkID(len(t.links))
	t.links = append(t.links, Link{
		ID: id, From: from, To: to,
		Weight: weight, Capacity: opts.Capacity, Delay: opts.Delay,
		Reverse: NoLink,
	})
	t.out[from] = append(t.out[from], id)
	t.in[to] = append(t.in[to], id)
	return id
}

// AddLink adds a symmetric link (two directed half-links with identical
// weight, capacity and delay) and returns both IDs.
func (t *Topology) AddLink(a, b NodeID, weight int64, opts LinkOpts) (ab, ba LinkID) {
	ab = t.AddDirectedLink(a, b, weight, opts)
	ba = t.AddDirectedLink(b, a, weight, opts)
	t.links[ab].Reverse = ba
	t.links[ba].Reverse = ab
	return ab, ba
}

// AddPrefix attaches a prefix to the topology. Multiple attachments model
// anycast or multi-homed prefixes.
func (t *Topology) AddPrefix(p netip.Prefix, name string, at ...Attachment) {
	if !p.IsValid() {
		panic("topo: invalid prefix")
	}
	for _, a := range at {
		t.checkNode(a.Node)
		if a.Cost < 0 {
			panic("topo: negative attachment cost")
		}
	}
	t.prefixes = append(t.prefixes, Prefix{Prefix: p.Masked(), Name: name, Attachments: at})
}

func (t *Topology) checkNode(n NodeID) {
	if n < 0 || int(n) >= len(t.nodes) {
		panic(fmt.Sprintf("topo: node %d out of range", n))
	}
}

// NumNodes returns the number of nodes.
func (t *Topology) NumNodes() int { return len(t.nodes) }

// NumLinks returns the number of directed links.
func (t *Topology) NumLinks() int { return len(t.links) }

// Node returns the node with the given ID.
func (t *Topology) Node(id NodeID) Node {
	t.checkNode(id)
	return t.nodes[id]
}

// Link returns the directed link with the given ID.
func (t *Topology) Link(id LinkID) Link {
	if id < 0 || int(id) >= len(t.links) {
		panic(fmt.Sprintf("topo: link %d out of range", id))
	}
	return t.links[id]
}

// NodeByName looks a node up by name.
func (t *Topology) NodeByName(name string) (NodeID, bool) {
	id, ok := t.byName[name]
	return id, ok
}

// MustNode looks a node up by name and panics if absent. Intended for
// scenario construction where the name set is static.
func (t *Topology) MustNode(name string) NodeID {
	id, ok := t.byName[name]
	if !ok {
		panic(fmt.Sprintf("topo: no node %q", name))
	}
	return id
}

// Name returns the name of a node; convenient in logs.
func (t *Topology) Name(id NodeID) string {
	if id == NoNode {
		return "<none>"
	}
	return t.Node(id).Name
}

// OutLinks returns the IDs of links leaving n. The returned slice is owned
// by the topology and must not be mutated.
func (t *Topology) OutLinks(n NodeID) []LinkID {
	t.checkNode(n)
	return t.out[n]
}

// InLinks returns the IDs of links entering n.
func (t *Topology) InLinks(n NodeID) []LinkID {
	t.checkNode(n)
	return t.in[n]
}

// Links returns a copy of all directed links.
func (t *Topology) Links() []Link {
	out := make([]Link, len(t.links))
	copy(out, t.links)
	return out
}

// Nodes returns a copy of all nodes.
func (t *Topology) Nodes() []Node {
	out := make([]Node, len(t.nodes))
	copy(out, t.nodes)
	return out
}

// Prefixes returns a copy of all prefixes.
func (t *Topology) Prefixes() []Prefix {
	out := make([]Prefix, len(t.prefixes))
	copy(out, t.prefixes)
	return out
}

// PrefixByName returns the prefix with the given symbolic name.
func (t *Topology) PrefixByName(name string) (Prefix, bool) {
	for _, p := range t.prefixes {
		if p.Name == name {
			return p, true
		}
	}
	return Prefix{}, false
}

// FindLink returns the directed link from a to b, if one exists. When
// parallel links exist, the lowest-weight one is returned.
func (t *Topology) FindLink(a, b NodeID) (Link, bool) {
	best := Link{}
	found := false
	for _, id := range t.OutLinks(a) {
		l := t.links[id]
		if l.To != b {
			continue
		}
		if !found || l.Weight < best.Weight {
			best = l
			found = true
		}
	}
	return best, found
}

// MustLinkBetween returns the directed link between two named nodes, and
// panics if absent.
func (t *Topology) MustLinkBetween(a, b string) Link {
	l, ok := t.FindLink(t.MustNode(a), t.MustNode(b))
	if !ok {
		panic(fmt.Sprintf("topo: no link %s->%s", a, b))
	}
	return l
}

// SetWeight rewrites the weight of one directed link. It is the only
// permitted post-construction mutation; the IGP weight-optimisation baseline
// uses it to explore weight settings.
func (t *Topology) SetWeight(id LinkID, w int64) {
	if w < 1 {
		panic("topo: weight < 1")
	}
	t.links[id].Weight = w
}

// Clone returns a deep copy of the topology.
func (t *Topology) Clone() *Topology {
	c := &Topology{
		nodes:    append([]Node(nil), t.nodes...),
		links:    append([]Link(nil), t.links...),
		out:      make([][]LinkID, len(t.out)),
		in:       make([][]LinkID, len(t.in)),
		byName:   make(map[string]NodeID, len(t.byName)),
		prefixes: make([]Prefix, len(t.prefixes)),
	}
	for i := range t.out {
		c.out[i] = append([]LinkID(nil), t.out[i]...)
	}
	for i := range t.in {
		c.in[i] = append([]LinkID(nil), t.in[i]...)
	}
	for k, v := range t.byName {
		c.byName[k] = v
	}
	for i, p := range t.prefixes {
		cp := p
		cp.Attachments = append([]Attachment(nil), p.Attachments...)
		c.prefixes[i] = cp
	}
	return c
}

// CloneWithoutLinks returns a deep copy of the topology with the given
// directed links — and their reverse halves — removed. Node IDs, names
// and prefixes are preserved, so routes, lies and demands expressed in
// node space stay valid against the clone; link IDs are re-densified and
// therefore differ from the original's. The failover planner uses it to
// answer "what if this link were gone" without mutating the live
// topology.
func (t *Topology) CloneWithoutLinks(drop ...LinkID) *Topology {
	gone := make(map[LinkID]bool, 2*len(drop))
	for _, id := range drop {
		if id < 0 || int(id) >= len(t.links) {
			continue
		}
		gone[id] = true
		if r := t.links[id].Reverse; r != NoLink {
			gone[r] = true
		}
	}
	c := &Topology{
		nodes:    append([]Node(nil), t.nodes...),
		out:      make([][]LinkID, len(t.out)),
		in:       make([][]LinkID, len(t.in)),
		byName:   make(map[string]NodeID, len(t.byName)),
		prefixes: make([]Prefix, len(t.prefixes)),
	}
	for k, v := range t.byName {
		c.byName[k] = v
	}
	remap := make(map[LinkID]LinkID, len(t.links))
	for _, l := range t.links {
		if gone[l.ID] {
			continue
		}
		nl := l
		nl.ID = LinkID(len(c.links))
		remap[l.ID] = nl.ID
		c.links = append(c.links, nl)
		c.out[nl.From] = append(c.out[nl.From], nl.ID)
		c.in[nl.To] = append(c.in[nl.To], nl.ID)
	}
	// Both halves of a symmetric pair survive or neither does, so every
	// surviving Reverse has a remap entry.
	for i := range c.links {
		if r := c.links[i].Reverse; r != NoLink {
			c.links[i].Reverse = remap[r]
		}
	}
	for i, p := range t.prefixes {
		cp := p
		cp.Attachments = append([]Attachment(nil), p.Attachments...)
		c.prefixes[i] = cp
	}
	return c
}

// Validate checks structural invariants: weights >= 1, reverse pointers
// consistent, every prefix attached to at least one node, and that the
// router subgraph is connected (hosts may be leaves).
func (t *Topology) Validate() error {
	if len(t.nodes) == 0 {
		return fmt.Errorf("topo: empty topology")
	}
	for _, l := range t.links {
		if l.Weight < 1 {
			return fmt.Errorf("topo: link %s->%s has weight %d < 1",
				t.Name(l.From), t.Name(l.To), l.Weight)
		}
		if l.Reverse != NoLink {
			r := t.Link(l.Reverse)
			if r.From != l.To || r.To != l.From || r.Reverse != l.ID {
				return fmt.Errorf("topo: inconsistent reverse pointer on link %d", l.ID)
			}
		}
		if l.Capacity < 0 {
			return fmt.Errorf("topo: negative capacity on link %d", l.ID)
		}
	}
	for _, p := range t.prefixes {
		if len(p.Attachments) == 0 {
			return fmt.Errorf("topo: prefix %s has no attachment", p.Prefix)
		}
	}
	if err := t.checkConnected(); err != nil {
		return err
	}
	return nil
}

// checkConnected verifies that all routers are mutually reachable over the
// directed graph (weak check: BFS from the first router must reach all).
func (t *Topology) checkConnected() error {
	var start NodeID = NoNode
	routers := 0
	for _, n := range t.nodes {
		if !n.Host {
			routers++
			if start == NoNode {
				start = n.ID
			}
		}
	}
	if routers == 0 {
		return nil
	}
	seen := make([]bool, len(t.nodes))
	queue := []NodeID{start}
	seen[start] = true
	reached := 1
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, lid := range t.out[u] {
			v := t.links[lid].To
			if !seen[v] {
				seen[v] = true
				if !t.nodes[v].Host {
					reached++
				}
				queue = append(queue, v)
			}
		}
	}
	if reached != routers {
		return fmt.Errorf("topo: router graph not connected (%d of %d reachable from %s)",
			reached, routers, t.Name(start))
	}
	return nil
}

// String renders the topology in the textual format accepted by Parse.
func (t *Topology) String() string {
	var b strings.Builder
	names := make([]string, 0, len(t.nodes))
	for _, n := range t.nodes {
		names = append(names, n.Name)
	}
	slices.Sort(names)
	for _, name := range names {
		n := t.nodes[t.byName[name]]
		if n.Host {
			fmt.Fprintf(&b, "host %s\n", n.Name)
		} else {
			fmt.Fprintf(&b, "router %s\n", n.Name)
		}
	}
	// Emit symmetric links once (lower ID of the pair), directed links as-is.
	for _, l := range t.links {
		if l.Reverse != NoLink && l.Reverse < l.ID {
			rev := t.Link(l.Reverse)
			if rev.Weight == l.Weight && rev.Capacity == l.Capacity && rev.Delay == l.Delay {
				continue // already emitted as "link"
			}
		}
		kind := "dlink"
		if l.Reverse != NoLink {
			rev := t.Link(l.Reverse)
			if rev.Weight == l.Weight && rev.Capacity == l.Capacity && rev.Delay == l.Delay && l.Reverse > l.ID {
				kind = "link"
			} else if l.Reverse < l.ID {
				// asymmetric pair, second half: emit as dlink
			}
		}
		fmt.Fprintf(&b, "%s %s %s weight %d", kind, t.Name(l.From), t.Name(l.To), l.Weight)
		if l.Capacity > 0 {
			fmt.Fprintf(&b, " capacity %s", FormatBits(l.Capacity))
		}
		if l.Delay > 0 {
			fmt.Fprintf(&b, " delay %s", l.Delay)
		}
		b.WriteByte('\n')
	}
	for _, p := range t.prefixes {
		fmt.Fprintf(&b, "prefix %s name %s", p.Prefix, p.Name)
		for _, a := range p.Attachments {
			fmt.Fprintf(&b, " at %s cost %d", t.Name(a.Node), a.Cost)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// FormatBits renders a bit-per-second value with an M/G/K suffix, as
// accepted by ParseBits.
func FormatBits(bps float64) string {
	switch {
	case bps >= 1e9 && bps == float64(int64(bps/1e9))*1e9:
		return fmt.Sprintf("%gG", bps/1e9)
	case bps >= 1e6 && bps == float64(int64(bps/1e6))*1e6:
		return fmt.Sprintf("%gM", bps/1e6)
	case bps >= 1e3 && bps == float64(int64(bps/1e3))*1e3:
		return fmt.Sprintf("%gK", bps/1e3)
	default:
		return fmt.Sprintf("%g", bps)
	}
}
