package topo

import (
	"fmt"
	"math/rand"
	"net/netip"
)

// RandomOpts parameterises the deterministic random-topology generators
// used by the traffic-engineering benchmarks.
type RandomOpts struct {
	Nodes     int
	Degree    int     // target average out-degree (>= 2 for connectivity)
	MaxWeight int64   // link weights drawn uniformly from [1, MaxWeight]
	Capacity  float64 // uniform link capacity, bit/s
	Prefixes  int     // number of destination prefixes, each at one random node
	Seed      int64
}

// RandomConnected generates a random connected topology: a random spanning
// tree (guaranteeing connectivity) plus extra random links until the target
// degree is met. All links are symmetric. Deterministic for a given seed.
func RandomConnected(o RandomOpts) *Topology {
	if o.Nodes < 2 {
		panic("topo: RandomConnected needs >= 2 nodes")
	}
	if o.Degree < 2 {
		o.Degree = 2
	}
	if o.MaxWeight < 1 {
		o.MaxWeight = 10
	}
	if o.Capacity == 0 {
		o.Capacity = 10e6
	}
	rng := rand.New(rand.NewSource(o.Seed))
	t := New()
	for i := 0; i < o.Nodes; i++ {
		t.AddNode(fmt.Sprintf("n%d", i))
	}
	w := func() int64 { return 1 + rng.Int63n(o.MaxWeight) }
	opts := LinkOpts{Capacity: o.Capacity}

	// Random spanning tree: attach node i to a uniformly chosen earlier node.
	for i := 1; i < o.Nodes; i++ {
		j := rng.Intn(i)
		t.AddLink(NodeID(i), NodeID(j), w(), opts)
	}
	// Extra links up to the target degree, avoiding duplicates/self-loops.
	want := o.Nodes * o.Degree / 2
	have := o.Nodes - 1
	attempts := 0
	for have < want && attempts < 50*want {
		attempts++
		a := NodeID(rng.Intn(o.Nodes))
		b := NodeID(rng.Intn(o.Nodes))
		if a == b {
			continue
		}
		if _, dup := t.FindLink(a, b); dup {
			continue
		}
		t.AddLink(a, b, w(), opts)
		have++
	}
	for p := 0; p < o.Prefixes; p++ {
		at := NodeID(rng.Intn(o.Nodes))
		pfx := netip.MustParsePrefix(fmt.Sprintf("10.%d.0.0/16", 100+p))
		t.AddPrefix(pfx, fmt.Sprintf("d%d", p), Attachment{Node: at})
	}
	return t
}

// Grid generates an n x m grid topology with unit weights, a classic
// TE stress shape with many equal-cost paths.
func Grid(n, m int, capacity float64) *Topology {
	if n < 1 || m < 1 || n*m < 2 {
		panic("topo: grid too small")
	}
	t := New()
	id := func(i, j int) NodeID { return NodeID(i*m + j) }
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			t.AddNode(fmt.Sprintf("g%d_%d", i, j))
		}
	}
	opts := LinkOpts{Capacity: capacity}
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			if j+1 < m {
				t.AddLink(id(i, j), id(i, j+1), 1, opts)
			}
			if i+1 < n {
				t.AddLink(id(i, j), id(i+1, j), 1, opts)
			}
		}
	}
	t.AddPrefix(netip.MustParsePrefix("10.200.0.0/16"), "corner",
		Attachment{Node: id(n-1, m-1)})
	return t
}

// RandomDemands draws nd demands with ingress chosen uniformly among nodes
// that do not attach the destination prefix, and volume uniform in
// [lo, hi]. Deterministic for a given seed.
func RandomDemands(t *Topology, nd int, lo, hi float64, seed int64) []Demand {
	rng := rand.New(rand.NewSource(seed))
	prefixes := t.Prefixes()
	if len(prefixes) == 0 {
		panic("topo: RandomDemands on topology without prefixes")
	}
	var out []Demand
	for i := 0; i < nd; i++ {
		p := prefixes[rng.Intn(len(prefixes))]
		attached := make(map[NodeID]bool, len(p.Attachments))
		for _, a := range p.Attachments {
			attached[a.Node] = true
		}
		var ingress NodeID
		for {
			ingress = NodeID(rng.Intn(t.NumNodes()))
			if !attached[ingress] && !t.Node(ingress).Host {
				break
			}
		}
		out = append(out, Demand{
			Ingress:    ingress,
			PrefixName: p.Name,
			Volume:     lo + rng.Float64()*(hi-lo),
		})
	}
	return out
}
