package topo

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/netip"
	"strconv"
	"strings"
	"time"
)

// Parse reads the textual topology format:
//
//	router A
//	host S1
//	link A B weight 2 capacity 10M delay 1ms
//	dlink A B weight 2            # directed link
//	prefix 10.66.0.0/16 name blue at C cost 0 [at R4 cost 5]
//
// '#' starts a comment; blank lines are ignored. Weight defaults to 1.
func Parse(r io.Reader) (*Topology, error) {
	t := New()
	sc := bufio.NewScanner(r)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if err := t.parseLine(fields); err != nil {
			return nil, fmt.Errorf("topo: line %d: %w", lineno, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// MustParse parses a literal topology string and panics on error.
func MustParse(s string) *Topology {
	t, err := Parse(strings.NewReader(s))
	if err != nil {
		panic(err)
	}
	return t
}

func (t *Topology) parseLine(f []string) error {
	switch f[0] {
	case "router":
		if len(f) != 2 {
			return fmt.Errorf("router takes exactly one name")
		}
		if _, dup := t.byName[f[1]]; dup {
			return fmt.Errorf("duplicate node %q", f[1])
		}
		t.AddNode(f[1])
		return nil
	case "host":
		if len(f) != 2 {
			return fmt.Errorf("host takes exactly one name")
		}
		if _, dup := t.byName[f[1]]; dup {
			return fmt.Errorf("duplicate node %q", f[1])
		}
		t.AddHost(f[1])
		return nil
	case "link", "dlink":
		return t.parseLink(f)
	case "prefix":
		return t.parsePrefix(f)
	default:
		return fmt.Errorf("unknown directive %q", f[0])
	}
}

func (t *Topology) parseLink(f []string) error {
	if len(f) < 3 {
		return fmt.Errorf("%s needs two endpoints", f[0])
	}
	a, ok := t.byName[f[1]]
	if !ok {
		return fmt.Errorf("unknown node %q", f[1])
	}
	b, ok := t.byName[f[2]]
	if !ok {
		return fmt.Errorf("unknown node %q", f[2])
	}
	if a == b {
		return fmt.Errorf("self-loop link on %q", f[1])
	}
	weight := int64(1)
	opts := LinkOpts{}
	for i := 3; i < len(f); i += 2 {
		if i+1 >= len(f) {
			return fmt.Errorf("dangling attribute %q", f[i])
		}
		val := f[i+1]
		switch f[i] {
		case "weight":
			w, err := strconv.ParseInt(val, 10, 64)
			if err != nil || w < 1 {
				return fmt.Errorf("bad weight %q", val)
			}
			weight = w
		case "capacity":
			c, err := ParseBits(val)
			if err != nil {
				return err
			}
			opts.Capacity = c
		case "delay":
			d, err := time.ParseDuration(val)
			if err != nil || d < 0 {
				return fmt.Errorf("bad delay %q", val)
			}
			opts.Delay = d
		default:
			return fmt.Errorf("unknown link attribute %q", f[i])
		}
	}
	if f[0] == "link" {
		t.AddLink(a, b, weight, opts)
	} else {
		t.AddDirectedLink(a, b, weight, opts)
	}
	return nil
}

func (t *Topology) parsePrefix(f []string) error {
	if len(f) < 2 {
		return fmt.Errorf("prefix needs a CIDR")
	}
	p, err := netip.ParsePrefix(f[1])
	if err != nil {
		return fmt.Errorf("bad prefix %q: %w", f[1], err)
	}
	name := p.String()
	var at []Attachment
	i := 2
	for i < len(f) {
		switch f[i] {
		case "name":
			if i+1 >= len(f) {
				return fmt.Errorf("dangling name")
			}
			name = f[i+1]
			i += 2
		case "at":
			if i+1 >= len(f) {
				return fmt.Errorf("dangling at")
			}
			n, ok := t.byName[f[i+1]]
			if !ok {
				return fmt.Errorf("unknown node %q", f[i+1])
			}
			cost := int64(0)
			i += 2
			if i+1 < len(f)+1 && i < len(f) && f[i] == "cost" {
				if i+1 >= len(f) {
					return fmt.Errorf("dangling cost")
				}
				c, err := strconv.ParseInt(f[i+1], 10, 64)
				if err != nil || c < 0 {
					return fmt.Errorf("bad cost %q", f[i+1])
				}
				cost = c
				i += 2
			}
			at = append(at, Attachment{Node: n, Cost: cost})
		default:
			return fmt.Errorf("unknown prefix attribute %q", f[i])
		}
	}
	if len(at) == 0 {
		return fmt.Errorf("prefix %s has no attachment", p)
	}
	t.AddPrefix(p, name, at...)
	return nil
}

// ParseDemandSpec parses the "ingress:prefix:bps" shorthand used on the
// command line (e.g. "B:blue:8M") against a topology.
func ParseDemandSpec(t *Topology, spec string) (Demand, error) {
	parts := strings.Split(spec, ":")
	if len(parts) != 3 {
		return Demand{}, fmt.Errorf("topo: bad demand %q (want ingress:prefix:bps)", spec)
	}
	n, ok := t.NodeByName(parts[0])
	if !ok {
		return Demand{}, fmt.Errorf("topo: unknown ingress %q", parts[0])
	}
	if _, ok := t.PrefixByName(parts[1]); !ok {
		return Demand{}, fmt.Errorf("topo: unknown prefix %q", parts[1])
	}
	bps, err := ParseBits(parts[2])
	if err != nil {
		return Demand{}, err
	}
	if bps <= 0 {
		return Demand{}, fmt.Errorf("topo: demand %q has zero volume", spec)
	}
	return Demand{Ingress: n, PrefixName: parts[1], Volume: bps}, nil
}

// ParseBits parses a bandwidth with an optional K/M/G suffix (powers of ten,
// as in link data sheets): "10M" = 10e6 bit/s.
func ParseBits(s string) (float64, error) {
	mult := 1.0
	if len(s) > 0 {
		switch s[len(s)-1] {
		case 'K', 'k':
			mult, s = 1e3, s[:len(s)-1]
		case 'M', 'm':
			mult, s = 1e6, s[:len(s)-1]
		case 'G', 'g':
			mult, s = 1e9, s[:len(s)-1]
		}
	}
	v, err := strconv.ParseFloat(s, 64)
	// Reject non-finite values after the multiplier: a huge mantissa can
	// overflow to +Inf only once the suffix is applied.
	if err != nil || v < 0 || math.IsNaN(v) || math.IsInf(v*mult, 0) {
		return 0, fmt.Errorf("bad bandwidth %q", s)
	}
	return v * mult, nil
}
