package topo

import (
	"testing"
)

// checkGenerated asserts the invariants every generator must uphold:
// Validate-clean (which includes router connectivity), strictly positive
// capacities, weights >= 1 and at least one attached prefix.
func checkGenerated(t *testing.T, tp *Topology) {
	t.Helper()
	if err := tp.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	for _, l := range tp.Links() {
		if l.Capacity <= 0 {
			t.Fatalf("link %s->%s has capacity %v", tp.Name(l.From), tp.Name(l.To), l.Capacity)
		}
		if l.Weight < 1 {
			t.Fatalf("link %s->%s has weight %d", tp.Name(l.From), tp.Name(l.To), l.Weight)
		}
		if l.Reverse == NoLink {
			t.Fatalf("link %s->%s is unidirectional", tp.Name(l.From), tp.Name(l.To))
		}
	}
	if len(tp.Prefixes()) == 0 {
		t.Fatal("no prefixes attached")
	}
}

// checkDeterministic builds via gen twice and compares the canonical
// textual rendering, which covers nodes, links, weights, capacities and
// prefixes.
func checkDeterministic(t *testing.T, gen func() *Topology) {
	t.Helper()
	a, b := gen().String(), gen().String()
	if a != b {
		t.Fatalf("generator not deterministic:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
}

const propertySeeds = 50

func TestFatTreeProperties(t *testing.T) {
	t.Parallel()
	for seed := int64(0); seed < propertySeeds; seed++ {
		tp := FatTree(FatTreeOpts{K: 4, MaxWeight: 3, Seed: seed})
		checkGenerated(t, tp)
		if got := tp.NumNodes(); got != 20 {
			t.Fatalf("seed %d: k=4 fat-tree has %d nodes, want 20", seed, got)
		}
		// 4 core links per pod + 4 intra-pod links per pod, symmetric.
		if got := tp.NumLinks(); got != 2*(4*4+4*4) {
			t.Fatalf("seed %d: k=4 fat-tree has %d directed links, want 64", seed, got)
		}
		checkDeterministic(t, func() *Topology {
			return FatTree(FatTreeOpts{K: 4, MaxWeight: 3, Seed: seed})
		})
	}
}

func TestFatTreeArities(t *testing.T) {
	t.Parallel()
	for _, k := range []int{2, 4, 6, 8} {
		tp := FatTree(FatTreeOpts{K: k})
		checkGenerated(t, tp)
		want := (k/2)*(k/2) + k*k // cores + k pods of k switches
		if got := tp.NumNodes(); got != want {
			t.Fatalf("k=%d: %d nodes, want %d", k, got, want)
		}
	}
}

func TestRingProperties(t *testing.T) {
	t.Parallel()
	for seed := int64(0); seed < propertySeeds; seed++ {
		n := 3 + int(seed%14)
		tp := Ring(RingOpts{N: n, MaxWeight: 4, Seed: seed, Chords: int(seed % 3)})
		checkGenerated(t, tp)
		if got := tp.NumNodes(); got != n {
			t.Fatalf("seed %d: %d nodes, want %d", seed, got, n)
		}
		if got := tp.NumLinks(); got < 2*n {
			t.Fatalf("seed %d: %d directed links < cycle minimum %d", seed, got, 2*n)
		}
		checkDeterministic(t, func() *Topology {
			return Ring(RingOpts{N: n, MaxWeight: 4, Seed: seed, Chords: int(seed % 3)})
		})
	}
}

func TestWaxmanProperties(t *testing.T) {
	t.Parallel()
	for seed := int64(0); seed < propertySeeds; seed++ {
		n := 8 + int(seed%17)
		tp := Waxman(WaxmanOpts{Nodes: n, MaxWeight: 5, Seed: seed})
		checkGenerated(t, tp)
		if got := tp.NumNodes(); got != n {
			t.Fatalf("seed %d: %d nodes, want %d", seed, got, n)
		}
		checkDeterministic(t, func() *Topology {
			return Waxman(WaxmanOpts{Nodes: n, MaxWeight: 5, Seed: seed})
		})
	}
}

func TestRandomConnectedProperties(t *testing.T) {
	t.Parallel()
	for seed := int64(0); seed < propertySeeds; seed++ {
		o := RandomOpts{Nodes: 6 + int(seed%20), Degree: 3, MaxWeight: 5, Prefixes: 2, Seed: seed}
		checkGenerated(t, RandomConnected(o))
		checkDeterministic(t, func() *Topology { return RandomConnected(o) })
	}
}

func TestGridProperties(t *testing.T) {
	t.Parallel()
	for i := 0; i < propertySeeds; i++ {
		n, m := 1+i%7, 2+i%5
		tp := Grid(n, m, 10e6)
		checkGenerated(t, tp)
		if got := tp.NumNodes(); got != n*m {
			t.Fatalf("%dx%d grid: %d nodes", n, m, got)
		}
		checkDeterministic(t, func() *Topology { return Grid(n, m, 10e6) })
	}
}
