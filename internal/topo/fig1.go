package topo

import (
	"net/netip"
	"time"
)

// Names of the Figure 1 entities, exported so scenarios and tests can refer
// to them without magic strings.
const (
	Fig1A  = "A"
	Fig1B  = "B"
	Fig1R1 = "R1"
	Fig1R2 = "R2"
	Fig1R3 = "R3"
	Fig1R4 = "R4"
	Fig1C  = "C"
	Fig1S1 = "S1" // video server behind B
	Fig1S2 = "S2" // video server behind A
	Fig1D1 = "D1" // clients of S1, in the blue prefix at C
	Fig1D2 = "D2" // clients of S2, in the blue prefix at C

	// Fig1BluePrefixName is the symbolic name of the destination prefix
	// the flash crowd targets ("blue" in the paper's figures).
	Fig1BluePrefixName = "blue"
)

// Fig1BluePrefix is the destination prefix attached at router C.
var Fig1BluePrefix = netip.MustParsePrefix("10.66.0.0/16")

// Fig1Opts parameterises the Figure 1 topology.
type Fig1Opts struct {
	// LinkCapacity is the capacity of every core link in bit/s.
	// The paper's demo uses links that one video wave can saturate;
	// DefaultFig1Capacity matches Figure 2's ~2 MB/s scale.
	LinkCapacity float64
	// AccessCapacity is the capacity of host access links. Zero means
	// 10x LinkCapacity (never the bottleneck, as in the demo).
	AccessCapacity float64
	// Delay is the per-link propagation delay (flooding realism).
	Delay time.Duration
	// WithHosts adds S1, S2, D1, D2 stub hosts.
	WithHosts bool
}

// DefaultFig1Capacity is 16 Mbit/s: Figure 2's y-axis tops out around
// 2e6 byte/s per link, i.e. 16e6 bit/s.
const DefaultFig1Capacity = 16e6

// Fig1 builds the six-router topology of the paper's Figure 1:
//
//	A ──1── B ──1── R2 ──1── C
//	│2      └──2── R3 ──1────┘
//	R1 ──1── R4 ──2── C
//
// Unspecified weights are 1; the marked "2" weights are A–R1, B–R3 and
// R4–C. With these weights the pre-Fibbing shortest paths are
// A→B→R2→C and B→R2→C, overlapping on B–R2–C exactly as in Figure 1a.
// The blue prefix is originated by C at cost 0.
func Fig1(o Fig1Opts) *Topology {
	if o.LinkCapacity == 0 {
		o.LinkCapacity = DefaultFig1Capacity
	}
	if o.AccessCapacity == 0 {
		o.AccessCapacity = 10 * o.LinkCapacity
	}
	core := LinkOpts{Capacity: o.LinkCapacity, Delay: o.Delay}
	access := LinkOpts{Capacity: o.AccessCapacity, Delay: o.Delay}

	t := New()
	a := t.AddNode(Fig1A)
	b := t.AddNode(Fig1B)
	r1 := t.AddNode(Fig1R1)
	r2 := t.AddNode(Fig1R2)
	r3 := t.AddNode(Fig1R3)
	r4 := t.AddNode(Fig1R4)
	c := t.AddNode(Fig1C)

	t.AddLink(a, b, 1, core)
	t.AddLink(a, r1, 2, core)
	t.AddLink(b, r2, 1, core)
	t.AddLink(b, r3, 2, core)
	t.AddLink(r2, c, 1, core)
	t.AddLink(r3, c, 1, core)
	t.AddLink(r1, r4, 1, core)
	t.AddLink(r4, c, 2, core)

	t.AddPrefix(Fig1BluePrefix, Fig1BluePrefixName, Attachment{Node: c, Cost: 0})

	if o.WithHosts {
		s1 := t.AddHost(Fig1S1)
		s2 := t.AddHost(Fig1S2)
		d1 := t.AddHost(Fig1D1)
		d2 := t.AddHost(Fig1D2)
		t.AddLink(s1, b, 1, access)
		t.AddLink(s2, a, 1, access)
		t.AddLink(d1, c, 1, access)
		t.AddLink(d2, c, 1, access)
	}
	return t
}

// Fig1Demands returns the relative traffic demands of Figure 1b: both
// sources surge by 100 relative units towards the blue prefix, loading
// A–B with 100 and B–R2, R2–C with 200 before Fibbing reacts.
type Demand struct {
	// Ingress is the router where the demand enters the network.
	Ingress NodeID
	// PrefixName identifies the destination prefix by symbolic name.
	PrefixName string
	// Volume is the demand in the same unit as link capacities (or in
	// relative units for analytic experiments).
	Volume float64
}

// Fig1Demands builds the Figure 1b demand set on the given Fig1 topology.
func Fig1Demands(t *Topology, volume float64) []Demand {
	return []Demand{
		{Ingress: t.MustNode(Fig1B), PrefixName: Fig1BluePrefixName, Volume: volume},
		{Ingress: t.MustNode(Fig1A), PrefixName: Fig1BluePrefixName, Volume: volume},
	}
}
