package topo

import (
	"strings"
	"testing"
	"time"
)

// FuzzParse drives the textual topology parser with arbitrary input: it
// must never panic, and any topology it accepts must render (String) to
// a form that reparses, with the rendering stable from the second pass
// on (String is the canonical form).
func FuzzParse(f *testing.F) {
	f.Add("router A\nrouter B\nlink A B weight 2 capacity 10M delay 1ms\n" +
		"prefix 10.66.0.0/16 name blue at A cost 0\n")
	f.Add("router A\nrouter B\ndlink A B weight 3\ndlink B A weight 1\n")
	f.Add("router A\nhost H\nlink H A\n# comment\n\nprefix 10.0.0.0/8 name p at A\n")
	f.Add(Fig1(Fig1Opts{WithHosts: true, Delay: time.Millisecond}).String())
	f.Add(Abilene(10e6, 2*time.Millisecond).String())
	f.Add("link A B")
	f.Add("prefix nope name x at A")
	f.Add("router A\nrouter A\n")

	f.Fuzz(func(t *testing.T, input string) {
		tp, err := Parse(strings.NewReader(input))
		if err != nil {
			return // rejected input is fine; panicking is not
		}
		r1 := tp.String()
		tp2, err := Parse(strings.NewReader(r1))
		if err != nil {
			t.Fatalf("rendering of accepted topology does not reparse: %v\n%s", err, r1)
		}
		if tp2.NumNodes() != tp.NumNodes() || tp2.NumLinks() != tp.NumLinks() ||
			len(tp2.Prefixes()) != len(tp.Prefixes()) {
			t.Fatalf("round trip changed shape: %d/%d/%d -> %d/%d/%d",
				tp.NumNodes(), tp.NumLinks(), len(tp.Prefixes()),
				tp2.NumNodes(), tp2.NumLinks(), len(tp2.Prefixes()))
		}
		r2 := tp2.String()
		tp3, err := Parse(strings.NewReader(r2))
		if err != nil {
			t.Fatalf("second rendering does not reparse: %v\n%s", err, r2)
		}
		if r3 := tp3.String(); r3 != r2 {
			t.Fatalf("canonical form not stable:\n--- r2 ---\n%s\n--- r3 ---\n%s", r2, r3)
		}
	})
}

// FuzzParseBits checks the bit-rate scanner against its formatter.
func FuzzParseBits(f *testing.F) {
	f.Add("10M")
	f.Add("2.5G")
	f.Add("640K")
	f.Add("1e+07")
	f.Add("-3M")
	f.Fuzz(func(t *testing.T, s string) {
		v, err := ParseBits(s)
		if err != nil {
			return
		}
		back, err := ParseBits(FormatBits(v))
		if err != nil {
			t.Fatalf("FormatBits(%v) = %q does not reparse: %v", v, FormatBits(v), err)
		}
		if back != v {
			t.Fatalf("round trip changed value: %v -> %v", v, back)
		}
	})
}
