package topo

import (
	"testing"
	"time"
)

func TestAbileneStructure(t *testing.T) {
	a := Abilene(10e6, time.Millisecond)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.NumNodes() != 11 {
		t.Fatalf("nodes = %d, want 11 PoPs", a.NumNodes())
	}
	// 14 undirected links = 28 directed.
	if a.NumLinks() != 28 {
		t.Fatalf("links = %d, want 28", a.NumLinks())
	}
	for _, name := range []string{"cdn-east", "cdn-west"} {
		p, ok := a.PrefixByName(name)
		if !ok {
			t.Fatalf("prefix %s missing", name)
		}
		if len(p.Attachments) != 1 {
			t.Fatalf("%s attachments: %d", name, len(p.Attachments))
		}
	}
	east, _ := a.PrefixByName("cdn-east")
	if a.Name(east.Attachments[0].Node) != "NewYork" {
		t.Fatalf("cdn-east at %s", a.Name(east.Attachments[0].Node))
	}
	// Every link capacitated and delayed as requested.
	for _, l := range a.Links() {
		if l.Capacity != 10e6 || l.Delay != time.Millisecond {
			t.Fatalf("link attrs: %+v", l)
		}
	}
	// Defaults applied.
	d := Abilene(0, 0)
	if d.Links()[0].Capacity != 10e6 {
		t.Fatalf("default capacity missing")
	}
}
