package topo

import (
	"net/netip"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestAddNodeAndLookup(t *testing.T) {
	tp := New()
	a := tp.AddNode("A")
	b := tp.AddHost("S1")
	if got := tp.Node(a).Name; got != "A" {
		t.Fatalf("Node(a).Name = %q, want A", got)
	}
	if !tp.Node(b).Host {
		t.Fatalf("S1 should be a host")
	}
	if id, ok := tp.NodeByName("A"); !ok || id != a {
		t.Fatalf("NodeByName(A) = %v, %v", id, ok)
	}
	if _, ok := tp.NodeByName("Z"); ok {
		t.Fatalf("NodeByName(Z) should miss")
	}
	if tp.NumNodes() != 2 {
		t.Fatalf("NumNodes = %d, want 2", tp.NumNodes())
	}
}

func TestDuplicateNodePanics(t *testing.T) {
	tp := New()
	tp.AddNode("A")
	defer func() {
		if recover() == nil {
			t.Fatalf("duplicate AddNode should panic")
		}
	}()
	tp.AddNode("A")
}

func TestAddLinkSymmetry(t *testing.T) {
	tp := New()
	a := tp.AddNode("A")
	b := tp.AddNode("B")
	ab, ba := tp.AddLink(a, b, 3, LinkOpts{Capacity: 1e6, Delay: time.Millisecond})
	la, lb := tp.Link(ab), tp.Link(ba)
	if la.Reverse != ba || lb.Reverse != ab {
		t.Fatalf("reverse pointers wrong: %v %v", la.Reverse, lb.Reverse)
	}
	if la.From != a || la.To != b || lb.From != b || lb.To != a {
		t.Fatalf("endpoints wrong")
	}
	if la.Weight != 3 || lb.Weight != 3 {
		t.Fatalf("weights wrong")
	}
	if len(tp.OutLinks(a)) != 1 || len(tp.InLinks(a)) != 1 {
		t.Fatalf("adjacency lists wrong")
	}
}

func TestSelfLoopPanics(t *testing.T) {
	tp := New()
	a := tp.AddNode("A")
	defer func() {
		if recover() == nil {
			t.Fatalf("self-loop should panic")
		}
	}()
	tp.AddDirectedLink(a, a, 1, LinkOpts{})
}

func TestBadWeightPanics(t *testing.T) {
	tp := New()
	a, b := tp.AddNode("A"), tp.AddNode("B")
	defer func() {
		if recover() == nil {
			t.Fatalf("weight 0 should panic")
		}
	}()
	tp.AddDirectedLink(a, b, 0, LinkOpts{})
}

func TestFindLinkPicksLowestWeight(t *testing.T) {
	tp := New()
	a, b := tp.AddNode("A"), tp.AddNode("B")
	tp.AddDirectedLink(a, b, 5, LinkOpts{})
	tp.AddDirectedLink(a, b, 2, LinkOpts{})
	l, ok := tp.FindLink(a, b)
	if !ok || l.Weight != 2 {
		t.Fatalf("FindLink = %+v, %v; want weight 2", l, ok)
	}
	if _, ok := tp.FindLink(b, a); ok {
		t.Fatalf("no reverse link expected")
	}
}

func TestValidateConnectivity(t *testing.T) {
	tp := New()
	tp.AddNode("A")
	tp.AddNode("B")
	if err := tp.Validate(); err == nil {
		t.Fatalf("disconnected topology should fail validation")
	}
	tp2 := New()
	a, b := tp2.AddNode("A"), tp2.AddNode("B")
	tp2.AddLink(a, b, 1, LinkOpts{})
	if err := tp2.Validate(); err != nil {
		t.Fatalf("connected topology failed: %v", err)
	}
}

func TestValidatePrefixNeedsAttachment(t *testing.T) {
	tp := New()
	a, b := tp.AddNode("A"), tp.AddNode("B")
	tp.AddLink(a, b, 1, LinkOpts{})
	tp.prefixes = append(tp.prefixes, Prefix{Prefix: netip.MustParsePrefix("10.0.0.0/8")})
	if err := tp.Validate(); err == nil {
		t.Fatalf("prefix without attachment should fail validation")
	}
}

func TestCloneIsDeep(t *testing.T) {
	tp := Fig1(Fig1Opts{WithHosts: true})
	c := tp.Clone()
	l := tp.MustLinkBetween(Fig1A, Fig1B)
	c.SetWeight(l.ID, 99)
	if tp.Link(l.ID).Weight == 99 {
		t.Fatalf("Clone shares link storage with original")
	}
	if c.NumNodes() != tp.NumNodes() || c.NumLinks() != tp.NumLinks() {
		t.Fatalf("clone size mismatch")
	}
	if _, ok := c.NodeByName(Fig1S1); !ok {
		t.Fatalf("clone lost node names")
	}
}

func TestFig1Structure(t *testing.T) {
	tp := Fig1(Fig1Opts{})
	if err := tp.Validate(); err != nil {
		t.Fatalf("Fig1 invalid: %v", err)
	}
	if tp.NumNodes() != 7 {
		t.Fatalf("Fig1 has %d nodes, want 7 routers", tp.NumNodes())
	}
	// The paper's marked weights.
	for _, tc := range []struct {
		a, b string
		w    int64
	}{
		{Fig1A, Fig1B, 1}, {Fig1A, Fig1R1, 2}, {Fig1B, Fig1R2, 1},
		{Fig1B, Fig1R3, 2}, {Fig1R2, Fig1C, 1}, {Fig1R3, Fig1C, 1},
		{Fig1R1, Fig1R4, 1}, {Fig1R4, Fig1C, 2},
	} {
		l := tp.MustLinkBetween(tc.a, tc.b)
		if l.Weight != tc.w {
			t.Errorf("weight(%s-%s) = %d, want %d", tc.a, tc.b, l.Weight, tc.w)
		}
		r := tp.Link(l.Reverse)
		if r.Weight != tc.w {
			t.Errorf("weight(%s-%s) = %d, want %d", tc.b, tc.a, r.Weight, tc.w)
		}
	}
	p, ok := tp.PrefixByName(Fig1BluePrefixName)
	if !ok {
		t.Fatalf("blue prefix missing")
	}
	if p.Attachments[0].Node != tp.MustNode(Fig1C) {
		t.Fatalf("blue prefix should attach at C")
	}
}

func TestFig1WithHosts(t *testing.T) {
	tp := Fig1(Fig1Opts{WithHosts: true})
	if err := tp.Validate(); err != nil {
		t.Fatalf("Fig1 with hosts invalid: %v", err)
	}
	for _, h := range []string{Fig1S1, Fig1S2, Fig1D1, Fig1D2} {
		n := tp.MustNode(h)
		if !tp.Node(n).Host {
			t.Errorf("%s should be a host", h)
		}
	}
}

func TestFig1Demands(t *testing.T) {
	tp := Fig1(Fig1Opts{})
	d := Fig1Demands(tp, 100)
	if len(d) != 2 {
		t.Fatalf("want 2 demands, got %d", len(d))
	}
	if d[0].Ingress != tp.MustNode(Fig1B) || d[1].Ingress != tp.MustNode(Fig1A) {
		t.Fatalf("demand ingresses wrong: %+v", d)
	}
	for _, dd := range d {
		if dd.Volume != 100 || dd.PrefixName != Fig1BluePrefixName {
			t.Fatalf("demand fields wrong: %+v", dd)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	src := Fig1(Fig1Opts{WithHosts: true, Delay: time.Millisecond})
	parsed, err := Parse(strings.NewReader(src.String()))
	if err != nil {
		t.Fatalf("Parse(String()) failed: %v", err)
	}
	if parsed.NumNodes() != src.NumNodes() || parsed.NumLinks() != src.NumLinks() {
		t.Fatalf("round trip size mismatch: %d/%d nodes, %d/%d links",
			parsed.NumNodes(), src.NumNodes(), parsed.NumLinks(), src.NumLinks())
	}
	for _, l := range src.Links() {
		got, ok := parsed.FindLink(
			parsed.MustNode(src.Name(l.From)), parsed.MustNode(src.Name(l.To)))
		if !ok {
			t.Fatalf("round trip lost link %s->%s", src.Name(l.From), src.Name(l.To))
		}
		if got.Weight != l.Weight || got.Capacity != l.Capacity || got.Delay != l.Delay {
			t.Fatalf("round trip changed link %s->%s: %+v vs %+v",
				src.Name(l.From), src.Name(l.To), got, l)
		}
	}
	if len(parsed.Prefixes()) != len(src.Prefixes()) {
		t.Fatalf("round trip lost prefixes")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"frobnicate A",
		"link A B",           // unknown nodes
		"router A\nrouter A", // duplicate
		"router A\nrouter B\nlink A B weight 0",
		"router A\nrouter B\nlink A B weight x",
		"router A\nrouter B\nlink A B capacity -3",
		"router A\nrouter B\nlink A B delay notaduration",
		"router A\nrouter B\nlink A B weight",
		"prefix 10.0.0.0/8",            // no attachment
		"router A\nprefix banana at A", // bad CIDR
		"router A\nprefix 10.0.0.0/8 at Z",
	}
	for _, c := range cases {
		if _, err := Parse(strings.NewReader(c)); err == nil {
			t.Errorf("Parse(%q) should fail", c)
		}
	}
}

func TestParseBits(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want float64
	}{
		{"10M", 10e6}, {"1.5G", 1.5e9}, {"250K", 250e3}, {"42", 42},
		{"10m", 10e6}, {"2g", 2e9}, {"7k", 7e3},
	} {
		got, err := ParseBits(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseBits(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	for _, bad := range []string{"", "-1M", "xM", "1Q1"} {
		if _, err := ParseBits(bad); err == nil {
			t.Errorf("ParseBits(%q) should fail", bad)
		}
	}
}

func TestParseDemandSpec(t *testing.T) {
	tp := Fig1(Fig1Opts{})
	d, err := ParseDemandSpec(tp, "B:blue:8M")
	if err != nil {
		t.Fatal(err)
	}
	if d.Ingress != tp.MustNode("B") || d.PrefixName != "blue" || d.Volume != 8e6 {
		t.Fatalf("demand = %+v", d)
	}
	for _, bad := range []string{
		"", "B:blue", "ZZ:blue:1M", "B:nope:1M", "B:blue:xx", "B:blue:0",
	} {
		if _, err := ParseDemandSpec(tp, bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

func TestFormatBitsRoundTrip(t *testing.T) {
	f := func(mbit uint16) bool {
		v := float64(mbit) * 1e6
		got, err := ParseBits(FormatBits(v))
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRandomConnectedIsConnected(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		tp := RandomConnected(RandomOpts{Nodes: 25, Degree: 3, Prefixes: 2, Seed: seed})
		if err := tp.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestRandomConnectedDeterministic(t *testing.T) {
	a := RandomConnected(RandomOpts{Nodes: 12, Degree: 3, Prefixes: 1, Seed: 7})
	b := RandomConnected(RandomOpts{Nodes: 12, Degree: 3, Prefixes: 1, Seed: 7})
	if a.String() != b.String() {
		t.Fatalf("same seed produced different topologies")
	}
	c := RandomConnected(RandomOpts{Nodes: 12, Degree: 3, Prefixes: 1, Seed: 8})
	if a.String() == c.String() {
		t.Fatalf("different seeds produced identical topologies (suspicious)")
	}
}

func TestGrid(t *testing.T) {
	g := Grid(3, 4, 1e6)
	if err := g.Validate(); err != nil {
		t.Fatalf("grid invalid: %v", err)
	}
	if g.NumNodes() != 12 {
		t.Fatalf("grid nodes = %d, want 12", g.NumNodes())
	}
	// 3x4 grid: 3*3 horizontal + 2*4 vertical = 17 undirected = 34 directed.
	if g.NumLinks() != 34 {
		t.Fatalf("grid links = %d, want 34", g.NumLinks())
	}
}

func TestRandomDemands(t *testing.T) {
	tp := RandomConnected(RandomOpts{Nodes: 10, Degree: 3, Prefixes: 2, Seed: 1})
	ds := RandomDemands(tp, 20, 1e6, 5e6, 42)
	if len(ds) != 20 {
		t.Fatalf("want 20 demands")
	}
	for _, d := range ds {
		if d.Volume < 1e6 || d.Volume > 5e6 {
			t.Fatalf("volume out of range: %v", d.Volume)
		}
		p, ok := tp.PrefixByName(d.PrefixName)
		if !ok {
			t.Fatalf("demand references unknown prefix %q", d.PrefixName)
		}
		for _, a := range p.Attachments {
			if a.Node == d.Ingress {
				t.Fatalf("demand ingress == prefix attachment")
			}
		}
	}
}

func TestSetWeight(t *testing.T) {
	tp := Fig1(Fig1Opts{})
	l := tp.MustLinkBetween(Fig1A, Fig1B)
	tp.SetWeight(l.ID, 7)
	if tp.Link(l.ID).Weight != 7 {
		t.Fatalf("SetWeight did not apply")
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("SetWeight(0) should panic")
		}
	}()
	tp.SetWeight(l.ID, 0)
}

func TestCloneWithoutLinks(t *testing.T) {
	tp := Fig1(Fig1Opts{})
	victim := tp.MustLinkBetween(Fig1B, Fig1R2)
	c := tp.CloneWithoutLinks(victim.ID)

	if c.NumNodes() != tp.NumNodes() {
		t.Fatalf("clone nodes = %d, want %d", c.NumNodes(), tp.NumNodes())
	}
	if c.NumLinks() != tp.NumLinks()-2 {
		t.Fatalf("clone links = %d, want %d (pair removed)", c.NumLinks(), tp.NumLinks()-2)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("clone invalid: %v", err)
	}
	// Node IDs are preserved: names resolve identically in both.
	for _, n := range tp.Nodes() {
		if c.Name(n.ID) != n.Name {
			t.Fatalf("node %d renamed %q -> %q", n.ID, n.Name, c.Name(n.ID))
		}
	}
	// The dropped pair is gone in both directions.
	if _, ok := c.FindLink(tp.MustNode(Fig1B), tp.MustNode(Fig1R2)); ok {
		t.Fatalf("dropped link still present")
	}
	if _, ok := c.FindLink(tp.MustNode(Fig1R2), tp.MustNode(Fig1B)); ok {
		t.Fatalf("dropped reverse still present")
	}
	// Every surviving link keeps its endpoints/attributes and a
	// consistent reverse pointer under the new dense IDs.
	for _, l := range c.Links() {
		orig, ok := tp.FindLink(l.From, l.To)
		if !ok {
			t.Fatalf("clone link %s->%s not in original", c.Name(l.From), c.Name(l.To))
		}
		if orig.Weight != l.Weight || orig.Capacity != l.Capacity || orig.Delay != l.Delay {
			t.Fatalf("clone link %s->%s attributes changed", c.Name(l.From), c.Name(l.To))
		}
	}
	// Prefixes survive with their attachments.
	if len(c.Prefixes()) != len(tp.Prefixes()) {
		t.Fatalf("clone prefixes = %d, want %d", len(c.Prefixes()), len(tp.Prefixes()))
	}
	// The original is untouched.
	if _, ok := tp.FindLink(tp.MustNode(Fig1B), tp.MustNode(Fig1R2)); !ok {
		t.Fatalf("original mutated")
	}
}
