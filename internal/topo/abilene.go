package topo

import (
	"net/netip"
	"time"
)

// Abilene builds the classic Internet2 Abilene backbone (11 PoPs), the
// standard research topology for traffic-engineering studies. Link weights
// follow the historical IS-IS metric pattern (roughly proportional to
// fibre distance); capacities default to uniform so the flash-crowd
// experiments stress routing rather than heterogeneous provisioning.
//
// Two content prefixes are attached: "cdn-east" at New York and
// "cdn-west" at Sunnyvale, giving multi-destination experiments natural
// east/west pulls.
func Abilene(linkCapacity float64, delay time.Duration) *Topology {
	if linkCapacity <= 0 {
		linkCapacity = 10e6
	}
	t := New()
	names := []string{
		"Seattle", "Sunnyvale", "LosAngeles", "Denver", "KansasCity",
		"Houston", "Chicago", "Indianapolis", "Atlanta", "WashingtonDC",
		"NewYork",
	}
	id := make(map[string]NodeID, len(names))
	for _, n := range names {
		id[n] = t.AddNode(n)
	}
	opts := LinkOpts{Capacity: linkCapacity, Delay: delay}
	links := []struct {
		a, b string
		w    int64
	}{
		{"Seattle", "Sunnyvale", 9},
		{"Seattle", "Denver", 21},
		{"Sunnyvale", "LosAngeles", 4},
		{"Sunnyvale", "Denver", 11},
		{"LosAngeles", "Houston", 18},
		{"Denver", "KansasCity", 6},
		{"KansasCity", "Houston", 8},
		{"KansasCity", "Indianapolis", 7},
		{"Houston", "Atlanta", 11},
		{"Chicago", "Indianapolis", 3},
		{"Chicago", "NewYork", 9},
		{"Indianapolis", "Atlanta", 6},
		{"Atlanta", "WashingtonDC", 7},
		{"WashingtonDC", "NewYork", 3},
	}
	for _, l := range links {
		t.AddLink(id[l.a], id[l.b], l.w, opts)
	}
	t.AddPrefix(netip.MustParsePrefix("10.80.0.0/16"), "cdn-east", Attachment{Node: id["NewYork"]})
	t.AddPrefix(netip.MustParsePrefix("10.81.0.0/16"), "cdn-west", Attachment{Node: id["Sunnyvale"]})
	return t
}
