// Package metrics provides the measurement primitives used across the
// system: monotonic counters, time series with fixed-interval sampling,
// exponentially-weighted moving averages, and text/CSV rendering of
// experiment results.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"
)

// Counter is a monotonically increasing 64-bit counter (e.g. interface
// octet counts). It deliberately wraps like SNMP Counter64 would.
type Counter struct {
	v uint64
}

// Add increments the counter.
func (c *Counter) Add(n uint64) { c.v += n }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v }

// Rate computes the per-second rate between two counter readings taken dt
// apart, handling a single wrap.
func Rate(prev, cur uint64, dt time.Duration) float64 {
	if dt <= 0 {
		return 0
	}
	delta := cur - prev // wraps correctly in unsigned arithmetic
	return float64(delta) / dt.Seconds()
}

// Point is one time-series sample.
type Point struct {
	T time.Duration
	V float64
}

// Series is an append-only time series.
type Series struct {
	Name   string
	Points []Point
}

// Add appends a sample. Samples must be added in non-decreasing time order.
func (s *Series) Add(t time.Duration, v float64) {
	if n := len(s.Points); n > 0 && t < s.Points[n-1].T {
		panic(fmt.Sprintf("metrics: out-of-order sample %v after %v", t, s.Points[n-1].T))
	}
	s.Points = append(s.Points, Point{T: t, V: v})
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.Points) }

// At returns the last sample value at or before t (step interpolation),
// or 0 before the first sample.
func (s *Series) At(t time.Duration) float64 {
	i := sort.Search(len(s.Points), func(i int) bool { return s.Points[i].T > t })
	if i == 0 {
		return 0
	}
	return s.Points[i-1].V
}

// Max returns the maximum sample value (0 for an empty series).
func (s *Series) Max() float64 {
	m := 0.0
	for _, p := range s.Points {
		if p.V > m {
			m = p.V
		}
	}
	return m
}

// MaxInWindow returns the maximum value among samples with from <= T < to.
func (s *Series) MaxInWindow(from, to time.Duration) float64 {
	m := 0.0
	for _, p := range s.Points {
		if p.T >= from && p.T < to && p.V > m {
			m = p.V
		}
	}
	return m
}

// MeanInWindow returns the arithmetic mean among samples in [from, to).
func (s *Series) MeanInWindow(from, to time.Duration) float64 {
	sum, n := 0.0, 0
	for _, p := range s.Points {
		if p.T >= from && p.T < to {
			sum += p.V
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// EWMA is an exponentially-weighted moving average with configurable
// smoothing factor alpha in (0, 1]: higher alpha reacts faster.
type EWMA struct {
	Alpha float64
	val   float64
	init  bool
}

// Update folds a new observation in and returns the smoothed value.
func (e *EWMA) Update(v float64) float64 {
	if e.Alpha <= 0 || e.Alpha > 1 {
		panic("metrics: EWMA alpha out of (0,1]")
	}
	if !e.init {
		e.val, e.init = v, true
		return v
	}
	e.val = e.Alpha*v + (1-e.Alpha)*e.val
	return e.val
}

// Value returns the current smoothed value (0 before any update).
func (e *EWMA) Value() float64 { return e.val }

// Table accumulates rows for aligned text output, the format used by the
// experiment harness to print paper-style tables.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// FormatFloat renders floats compactly: integers without decimals,
// others with three significant decimals.
func FormatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.3f", v)
}

// Render writes the table with aligned columns.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) error {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		b.WriteByte('\n')
		_, err := io.WriteString(w, b.String())
		return err
	}
	if err := line(t.header); err != nil {
		return err
	}
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if err := line(sep); err != nil {
		return err
	}
	for _, r := range t.rows {
		if err := line(r); err != nil {
			return err
		}
	}
	return nil
}

// RenderCSV writes the table as CSV (no quoting: cells are numeric/simple).
func (t *Table) RenderCSV(w io.Writer) error {
	rows := append([][]string{t.header}, t.rows...)
	for _, r := range rows {
		if _, err := io.WriteString(w, strings.Join(r, ",")+"\n"); err != nil {
			return err
		}
	}
	return nil
}

// SeriesTable renders several series side by side on a shared time grid,
// matching how Figure 2 plots multiple links over time.
func SeriesTable(step time.Duration, series ...*Series) *Table {
	header := []string{"t_sec"}
	var end time.Duration
	for _, s := range series {
		header = append(header, s.Name)
		if n := s.Len(); n > 0 && s.Points[n-1].T > end {
			end = s.Points[n-1].T
		}
	}
	t := NewTable(header...)
	for at := time.Duration(0); at <= end; at += step {
		row := make([]any, 0, len(series)+1)
		row = append(row, fmt.Sprintf("%.0f", at.Seconds()))
		for _, s := range series {
			row = append(row, s.At(at))
		}
		t.AddRow(row...)
	}
	return t
}
