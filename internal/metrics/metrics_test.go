package metrics

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestCounterAndRate(t *testing.T) {
	var c Counter
	c.Add(100)
	c.Add(50)
	if c.Value() != 150 {
		t.Fatalf("Value = %d", c.Value())
	}
	r := Rate(100, 150, time.Second)
	if r != 50 {
		t.Fatalf("Rate = %v", r)
	}
	if Rate(0, 100, 0) != 0 {
		t.Fatalf("zero dt should give 0")
	}
}

func TestRateHandlesWrap(t *testing.T) {
	prev := uint64(math.MaxUint64 - 9)
	cur := uint64(40)
	if got := Rate(prev, cur, time.Second); got != 50 {
		t.Fatalf("wrapped Rate = %v, want 50", got)
	}
}

func TestSeriesAddAndAt(t *testing.T) {
	var s Series
	s.Add(0, 1)
	s.Add(2*time.Second, 5)
	s.Add(4*time.Second, 3)
	if s.At(-time.Second) != 0 {
		t.Fatalf("At before first sample should be 0")
	}
	if s.At(0) != 1 || s.At(time.Second) != 1 {
		t.Fatalf("step interpolation wrong at 1s: %v", s.At(time.Second))
	}
	if s.At(2*time.Second) != 5 || s.At(3*time.Second) != 5 {
		t.Fatalf("step interpolation wrong at 3s")
	}
	if s.At(100*time.Second) != 3 {
		t.Fatalf("At past end should hold last value")
	}
}

func TestSeriesOutOfOrderPanics(t *testing.T) {
	var s Series
	s.Add(2*time.Second, 1)
	defer func() {
		if recover() == nil {
			t.Fatalf("want panic")
		}
	}()
	s.Add(time.Second, 2)
}

func TestSeriesWindows(t *testing.T) {
	var s Series
	for i := 0; i <= 10; i++ {
		s.Add(time.Duration(i)*time.Second, float64(i))
	}
	if got := s.Max(); got != 10 {
		t.Fatalf("Max = %v", got)
	}
	if got := s.MaxInWindow(2*time.Second, 5*time.Second); got != 4 {
		t.Fatalf("MaxInWindow = %v, want 4", got)
	}
	if got := s.MeanInWindow(2*time.Second, 5*time.Second); got != 3 {
		t.Fatalf("MeanInWindow = %v, want 3", got)
	}
	if got := s.MeanInWindow(20*time.Second, 30*time.Second); got != 0 {
		t.Fatalf("empty window mean = %v", got)
	}
}

func TestEWMA(t *testing.T) {
	e := EWMA{Alpha: 0.5}
	if got := e.Update(10); got != 10 {
		t.Fatalf("first update = %v", got)
	}
	if got := e.Update(20); got != 15 {
		t.Fatalf("second update = %v", got)
	}
	if got := e.Update(15); got != 15 {
		t.Fatalf("third update = %v", got)
	}
	if e.Value() != 15 {
		t.Fatalf("Value = %v", e.Value())
	}
}

func TestEWMABadAlphaPanics(t *testing.T) {
	e := EWMA{Alpha: 0}
	defer func() {
		if recover() == nil {
			t.Fatalf("want panic")
		}
	}()
	e.Update(1)
}

func TestTableRender(t *testing.T) {
	tb := NewTable("link", "load")
	tb.AddRow("A-R1", 66.0)
	tb.AddRow("B-R2", 66.6666)
	var b strings.Builder
	if err := tb.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("render = %q", out)
	}
	if !strings.Contains(lines[0], "link") || !strings.Contains(lines[0], "load") {
		t.Fatalf("header missing: %q", lines[0])
	}
	if !strings.Contains(out, "66.667") {
		t.Fatalf("float formatting wrong: %q", out)
	}
	if !strings.Contains(out, "A-R1  66") {
		t.Fatalf("alignment wrong: %q", out)
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("a", "b")
	tb.AddRow(1, 2.5)
	var b strings.Builder
	if err := tb.RenderCSV(&b); err != nil {
		t.Fatal(err)
	}
	if b.String() != "a,b\n1,2.500\n" {
		t.Fatalf("csv = %q", b.String())
	}
}

func TestSeriesTable(t *testing.T) {
	s1 := &Series{Name: "A-R1"}
	s2 := &Series{Name: "B-R2"}
	s1.Add(0, 1)
	s1.Add(2*time.Second, 3)
	s2.Add(time.Second, 2)
	tb := SeriesTable(time.Second, s1, s2)
	var b strings.Builder
	if err := tb.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "t_sec") || !strings.Contains(out, "A-R1") {
		t.Fatalf("header missing: %q", out)
	}
	// Grid covers t=0,1,2.
	if got := strings.Count(out, "\n"); got != 5 {
		t.Fatalf("want 5 lines, got %d: %q", got, out)
	}
}

func TestFormatFloat(t *testing.T) {
	if FormatFloat(3) != "3" {
		t.Fatalf("int-valued float: %q", FormatFloat(3))
	}
	if FormatFloat(3.14159) != "3.142" {
		t.Fatalf("fraction: %q", FormatFloat(3.14159))
	}
}
