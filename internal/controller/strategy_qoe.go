package controller

import (
	"fmt"
	"math"
	"strconv"

	"fibbing.net/fibbing/internal/fibbing"
	"fibbing.net/fibbing/internal/spf"
	"fibbing.net/fibbing/internal/topo"
)

// QoEGreedyStrategy places viewer crowds for minimum predicted pain: per
// prefix it enumerates detour candidates — keep the installed routing,
// each of K loopless shortest paths from the hot router, and their
// cumulative unions (splitting the crowd over several paths at once) —
// and greedily keeps whichever the stall predictor scores best. Unlike
// the utilisation strategies it will accept a hotter link when that
// concentrates the shortfall on fewer (or fatter) sessions: under
// max-min fair sharing, moving a thin crowd onto a shared path can
// protect every thin session at the cost of the fat ones, a trade
// invisible to max-utilisation scoring. It abstains without a QoE
// predictor (utilisation score modes) and when no candidate strictly
// improves the no-op plan's predicted stall score.
type QoEGreedyStrategy struct {
	// K is the number of loopless paths to consider per prefix
	// (default 3).
	K int
}

// Name implements Strategy.
func (QoEGreedyStrategy) Name() string { return "qoe-greedy" }

// Propose implements Strategy.
func (s QoEGreedyStrategy) Propose(ctx PlanContext) (*Plan, error) {
	if ctx.Event.Kind != EventAlarmRaised || ctx.PredictQoE == nil || len(ctx.Demands) == 0 {
		return nil, nil
	}
	k := s.K
	if k <= 0 {
		k = 3
	}
	hot := ctx.Topo.Link(ctx.Event.Alarm.Link).From

	// The whole descent is a pure function of (topology, hot, k,
	// installed lies, demands, viewer model): on an alarm train
	// re-raising the same hot link, replay the outcome from the artifact
	// cache instead of re-sweeping the candidates.
	var e qoePropEntry
	if arts := ctx.cachedArts(); arts != nil && ctx.qoeModelKey != "" {
		key := strconv.FormatInt(int64(hot), 10) + "|" + strconv.Itoa(k) + "|" +
			loadsKey(ctx.Installed, ctx.Demands) + "!" + ctx.qoeModelKey
		e = arts.qoeProposal(key, func() qoePropEntry { return s.descend(ctx, hot, k) })
	} else {
		e = s.descend(ctx, hot, k)
	}
	if e.overlay == nil {
		return nil, nil // nothing strictly improves the no-op plan
	}
	util, err := ctx.Evaluate(e.overlay)
	if err != nil {
		return nil, fmt.Errorf("qoe-greedy: %w", err)
	}
	improve := 0.0
	if !math.IsInf(ctx.BaseStall, 1) {
		improve = ctx.BaseStall - e.score
	}
	return &Plan{
		Strategy:      s.Name(),
		Lies:          e.overlay,
		PredictedUtil: util,
		Rationale: fmt.Sprintf("predicted stall score %.1fs (-%.1fs) after %s hit %.0f%%",
			e.score, improve, ctx.Event.Alarm.Name, 100*ctx.Event.Alarm.Utilisation),
	}, nil
}

// descend runs the greedy per-prefix descent: overlay accumulates the
// choices made so far, and each prefix keeps whichever candidate
// minimises the combined predicted pain given the earlier choices.
// Prefixes is sorted, so the descent order is deterministic. A nil
// overlay in the returned entry means abstain.
func (s QoEGreedyStrategy) descend(ctx PlanContext, hot topo.NodeID, k int) qoePropEntry {
	tree := ctx.SPFTree(hot)
	overlay := make(map[string][]fibbing.Lie)
	bestScore := ctx.BaseStall
	for _, prefix := range ctx.Prefixes {
		var bestLies []fibbing.Lie
		for _, lies := range s.candidates(ctx, prefix, hot, tree, k) {
			overlay[prefix] = lies
			q, err := ctx.PredictQoE(overlay)
			if err != nil {
				continue
			}
			if score := q.Score(); score < bestScore-utilEps(score, bestScore) {
				bestScore, bestLies = score, lies
			}
		}
		if bestLies != nil {
			overlay[prefix] = bestLies
		} else {
			delete(overlay, prefix)
		}
	}
	if len(overlay) == 0 {
		return qoePropEntry{}
	}
	return qoePropEntry{overlay: overlay, score: bestScore}
}

// candidates builds one prefix's compiled lie-set candidates: each of
// the k loopless shortest paths from the hot router to the prefix's
// nearest attachment alone, plus their cumulative unions (path 1, paths
// 1+2, paths 1+2+3, ...) — the unions are what split a crowd across
// disjoint detours, the single paths what moves it wholesale. Candidates
// that fail to compile or verify are dropped.
func (s QoEGreedyStrategy) candidates(ctx PlanContext, prefix string, hot topo.NodeID, tree *spf.Tree, k int) [][]fibbing.Lie {
	if arts := ctx.Artifacts; arts != nil && arts.topo == ctx.Topo {
		// The sweep depends only on (topology, prefix, hot, k): an alarm
		// train re-planning the same hot link reuses the compiled lie sets
		// without rebuilding or re-keying the candidate DAGs.
		return arts.QoECandidates(prefix, hot, k, func() [][]fibbing.Lie {
			return s.buildCandidates(ctx, prefix, hot, tree, k)
		})
	}
	return s.buildCandidates(ctx, prefix, hot, tree, k)
}

func (s QoEGreedyStrategy) buildCandidates(ctx PlanContext, prefix string, hot topo.NodeID, tree *spf.Tree, k int) [][]fibbing.Lie {
	p, ok := ctx.Topo.PrefixByName(prefix)
	if !ok {
		return nil
	}
	dst, ok := nearestAttachment(tree, p)
	if !ok || dst == hot {
		return nil
	}
	paths := ctx.KShortestPaths(hot, dst, k, 8)
	if len(paths) == 0 {
		return nil
	}
	var out [][]fibbing.Lie
	add := func(dag fibbing.DAG) {
		aug, _, err := ctx.CompileDAG(prefix, normalizeDAG(dag))
		if err == nil {
			out = append(out, aug.Lies)
		}
	}
	// Single paths (wholesale moves).
	for _, path := range paths {
		add(addPathToDAG(nil, path))
	}
	// Cumulative unions (splits), starting from two paths: the one-path
	// union is the first single-path candidate.
	var union fibbing.DAG
	for i, path := range paths {
		union = addPathToDAG(union, path)
		if i > 0 {
			add(union)
		}
	}
	return out
}
