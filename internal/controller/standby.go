package controller

// Fast failover: react to liveness-detected link failures (internal/bfd
// feeding EventLinkDown/EventLinkUp) by committing a *precomputed*
// standby plan instead of running the strategy fan-out from scratch.
//
// During idle time the controller ranks links by carried aggregate rate,
// computes an admissibility-checked failover plan for the top-k single
// failures, and caches them keyed by failed link. When BFD declares a
// link dead — milliseconds after the failure, long before the IGP dead
// interval — the matching plan commits as one southbound transaction.
// Cache entries carry the generation of the inputs they were computed
// from; any demand change, commit, or topology change bumps the
// generation, so a stale entry is detected on read and the from-scratch
// planner takes over (a miss, not a wrong plan).
//
// The plans themselves are TI-LFA-flavoured: pin the post-failure IGP
// paths with lies compiled against the topology the routers still
// believe in (pre-failure), so traffic leaves the dead link immediately
// instead of blackholing until the IGP converges.

import (
	"fmt"
	"slices"
	"time"

	"fibbing.net/fibbing/internal/event"
	"fibbing.net/fibbing/internal/fibbing"
	"fibbing.net/fibbing/internal/te"
	"fibbing.net/fibbing/internal/topo"
)

// standbyIdleDelay debounces precompute: cache refills run this long
// after the last state change, so event bursts (a joining flash crowd)
// do not recompute k plans per event.
const standbyIdleDelay = 500 * time.Millisecond

// StandbyStats counts the standby cache's life: plans precomputed, and
// how failures were served.
type StandbyStats struct {
	// Precomputed counts plans computed into the cache over the run.
	Precomputed int
	// Hits: failures answered by a current cached plan.
	Hits int
	// Stale: a cached plan existed but its generation was outdated.
	Stale int
	// Misses: failures planned from scratch (includes the stale ones).
	Misses int
}

// standbyEntry is one cached failover reaction. plan may be nil: the
// failure was examined and needs no lie change (still a valid hit).
type standbyEntry struct {
	gen  planGens
	plan *Plan
}

// WithStandby enables the fast-failover cache: during idle time the
// controller precomputes failover plans for the k links carrying the
// highest aggregate rate, keyed by failed link. sched drives the idle
// debounce; nil sched or k <= 0 leaves the feature off.
func WithStandby(sched *event.Scheduler, k int) Option {
	return func(c *Controller) {
		if sched == nil || k <= 0 {
			return
		}
		c.sched = sched
		c.standbyK = k
		c.standby = make(map[topo.LinkID]*standbyEntry)
	}
}

// canonicalLink names a symmetric link pair by its lower-numbered half,
// so both directions of a failure share one cache key.
func canonicalLink(l topo.Link) topo.LinkID {
	if l.Reverse != topo.NoLink && l.Reverse < l.ID {
		return l.Reverse
	}
	return l.ID
}

// markFailed records the liveness layer's view of a link and reports
// whether it changed. Duplicates are expected — both endpoints detect a
// symmetric failure, and BFD and the IGP dead interval announce the
// same event at different timescales — and must not re-trigger the
// reaction. On a change the futile memo is cleared: the planning
// universe moved.
func (c *Controller) markFailed(l topo.Link, down bool) bool {
	id := canonicalLink(l)
	if c.failed[id] == down {
		return false
	}
	if down {
		c.failed[id] = true
	} else {
		delete(c.failed, id)
	}
	clear(c.futile)
	// The reduced-clone memo is for the previous failed set. Note this
	// bumps only failedEpoch, never gens.topo: standby entries must stay
	// servable at the very failure they were precomputed for —
	// reactToFailure bumps gens.topo after consuming the entry.
	c.failedEpoch++
	return true
}

// planningTopo is the topology the controller should plan over: the
// configured one minus every link the liveness layer has declared dead.
// The reduced clone is memoised per failure epoch — alarms arrive far
// more often than the failed set changes.
func (c *Controller) planningTopo() *topo.Topology {
	if len(c.failed) == 0 {
		return c.topo
	}
	if c.ptCache != nil && c.ptEpoch == c.failedEpoch {
		return c.ptCache
	}
	ids := make([]topo.LinkID, 0, len(c.failed))
	for id := range c.failed {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	c.ptCache = c.topo.CloneWithoutLinks(ids...)
	c.ptEpoch = c.failedEpoch
	return c.ptCache
}

// armPrecompute (re)schedules the idle-time cache refill. Each call
// pushes the deadline out, so the refill runs once per quiet period.
func (c *Controller) armPrecompute() {
	if c.standby == nil {
		return
	}
	if c.precomputeArmed {
		c.sched.Cancel(c.precompute)
	}
	gens := c.gens
	c.precomputeArmed = true
	c.precompute = c.sched.After(standbyIdleDelay, func() {
		c.precomputeArmed = false
		if gens != c.gens {
			return // superseded by later churn; a newer timer is armed
		}
		c.PrecomputeStandby()
	})
}

// PrecomputeStandby refills the standby cache synchronously: rank links
// by carried aggregate rate, compute a failover plan for each of the
// top-k, and cache the admissible results. Normally driven by the idle
// debounce; exported so harnesses can warm the cache deterministically.
func (c *Controller) PrecomputeStandby() {
	if c.standby == nil {
		return
	}
	clear(c.standby)
	gens := c.gens
	for _, l := range c.topCarriedLinks(c.standbyK) {
		plan, err := c.failoverPlan(l)
		if err != nil {
			continue // unprotectable (e.g. failure would partition)
		}
		c.standby[canonicalLink(l)] = &standbyEntry{gen: gens, plan: plan}
		c.Standby.Precomputed++
	}
}

// StandbyPlans lists the links with a currently valid cached plan.
func (c *Controller) StandbyPlans() []topo.LinkID {
	var out []topo.LinkID
	for id, e := range c.standby {
		if e.gen == c.gens {
			out = append(out, id)
		}
	}
	slices.Sort(out)
	return out
}

// topCarriedLinks ranks router-router link pairs by carried aggregate
// rate (max of the two directions) under the current demands and lies,
// and returns the top k in the controller topology's ID space.
func (c *Controller) topCarriedLinks(k int) []topo.Link {
	demands := c.Demands()
	if len(demands) == 0 {
		return nil
	}
	pt := c.planningTopo()
	loads, err := c.ensureArtifacts(pt).Loads(c.lies.InstalledAll(), demands)
	if err != nil {
		return nil
	}
	type cand struct {
		l    topo.Link
		load float64
	}
	var cands []cand
	for _, l := range pt.Links() {
		if pt.Node(l.From).Host || pt.Node(l.To).Host {
			continue
		}
		if l.Reverse != topo.NoLink && l.Reverse < l.ID {
			continue // one candidate per symmetric pair
		}
		load := loads[l.ID]
		if l.Reverse != topo.NoLink && loads[l.Reverse] > load {
			load = loads[l.Reverse]
		}
		if load <= 0 {
			continue
		}
		// Map back into the controller topology's ID space (node IDs are
		// shared between the clone and the original).
		rl, ok := c.topo.FindLink(l.From, l.To)
		if !ok {
			continue
		}
		cands = append(cands, cand{l: rl, load: load})
	}
	slices.SortFunc(cands, func(a, b cand) int {
		switch {
		case a.load > b.load:
			return -1
		case a.load < b.load:
			return 1
		case a.l.ID < b.l.ID:
			return -1
		case a.l.ID > b.l.ID:
			return 1
		}
		return 0
	})
	if len(cands) > k {
		cands = cands[:k]
	}
	out := make([]topo.Link, len(cands))
	for i, cd := range cands {
		out[i] = cd.l
	}
	return out
}

// reactToFailure answers a liveness-detected link failure: commit the
// cached standby plan when one is current, otherwise plan from scratch.
// Either way the cache is invalidated (its plans assumed this link was
// alive) and a refill is armed for the new topology.
func (c *Controller) reactToFailure(ev Event) {
	if c.standby != nil {
		key := canonicalLink(ev.Link)
		if e, ok := c.standby[key]; ok {
			delete(c.standby, key)
			if e.gen == c.gens {
				c.Standby.Hits++
				if e.plan != nil {
					c.commit(e.plan)
				}
				c.gens.topo++
				c.armPrecompute()
				return
			}
			c.Standby.Stale++
		}
		c.Standby.Misses++
	}
	plan, err := c.failoverPlan(ev.Link)
	switch {
	case err != nil:
		c.Errors = append(c.Errors, fmt.Errorf("controller: failover %s-%s: %w",
			c.topo.Name(ev.Link.From), c.topo.Name(ev.Link.To), err))
	case plan != nil:
		c.commit(plan)
	}
	c.gens.topo++
	c.armPrecompute()
}

// reactToRecovery reassesses routing the moment a failed link returns.
// Failover plans committed while it was down pinned traffic onto the
// reduced topology; waiting for the next SNMP alarm would leave that
// detour saturating the restored network for seconds. When the last
// failure heals, the pre-failure lie set is restored if it evaluates
// better than the detour (the make-before-break revert of traditional
// TE); otherwise the alarm path the monitor would eventually take runs
// immediately — and plan() itself bails when the current state is
// already at target, so a clean recovery commits nothing.
func (c *Controller) reactToRecovery() {
	demands := c.Demands()
	snap := c.preFailure
	if len(c.failed) == 0 {
		c.preFailure = nil
	}
	if len(demands) == 0 {
		return
	}
	installed := c.lies.InstalledAll()
	if len(c.failed) == 0 && snap != nil {
		if plan := c.revertPlan(snap, installed, demands); plan != nil {
			c.commit(plan)
			return
		}
	}
	pt := c.planningTopo()
	loads, err := c.ensureArtifacts(pt).Loads(installed, demands)
	if err != nil {
		return
	}
	alarm, ok := HottestLinkAlarm(pt, loads)
	if !ok {
		return
	}
	// Map into the controller topology's ID space; plan() maps back into
	// the planning clone when other links are still down.
	l := pt.Link(alarm.Link)
	rl, ok := c.topo.FindLink(l.From, l.To)
	if !ok {
		return
	}
	alarm.Link = rl.ID
	c.plan(AlarmEvent(alarm))
}

// revertPlan builds the plan restoring the pre-failure lie set, if doing
// so strictly improves the analytic utilisation under current demands.
// Prefixes that gained lies during the failure episode get explicit
// empty entries so the commit withdraws them.
func (c *Controller) revertPlan(snap, installed map[string][]fibbing.Lie, demands []topo.Demand) *Plan {
	overlay := make(map[string][]fibbing.Lie, len(snap))
	for prefix, lies := range snap {
		overlay[prefix] = lies
	}
	for prefix := range installed {
		if _, ok := overlay[prefix]; !ok {
			overlay[prefix] = nil
		}
	}
	cur, err := analyticMaxUtil(c.topo, installed, demands)
	if err != nil {
		return nil
	}
	old, err := analyticMaxUtil(c.topo, overlay, demands)
	if err != nil || old >= cur {
		return nil
	}
	return &Plan{
		Strategy:      "failover-revert",
		Lies:          overlay,
		PredictedUtil: old,
		LieCost:       liveLiesAfter(installed, &Plan{Lies: overlay}),
		Rationale:     fmt.Sprintf("restored pre-failure plan after heal (%.2f -> %.2f)", cur, old),
	}
}

// analyticMaxUtil evaluates a lie set's max link utilisation for the
// demands over a topology with the fluid routing model.
func analyticMaxUtil(t *topo.Topology, lies map[string][]fibbing.Lie, demands []topo.Demand) (float64, error) {
	loads, err := te.LoadsWithLies(t, lies, demands)
	if err != nil {
		return 0, err
	}
	return te.MaxUtilOfLoads(t, loads), nil
}

// failoverPlan computes the reaction to one link pair's failure. The
// lies are compiled against the *pre-failure* topology — what the
// routers believe until the IGP dead interval expires — so traffic
// leaves the dead link the moment the plan commits, instead of
// blackholing through the convergence window.
func (c *Controller) failoverPlan(link topo.Link) (*Plan, error) {
	demands := c.Demands()
	if len(demands) == 0 {
		return nil, nil
	}
	// base: the controller topology minus *other* already-failed links
	// (the IGP has noticed or will notice those); the link under study
	// stays in, because routers still route over it right now.
	key := canonicalLink(link)
	var others []topo.LinkID
	for id := range c.failed {
		if id != key {
			others = append(others, id)
		}
	}
	slices.Sort(others)
	base, bl := c.topo, link
	if len(others) > 0 {
		base = c.topo.CloneWithoutLinks(others...)
		var ok bool
		if bl, ok = base.FindLink(link.From, link.To); !ok {
			return nil, fmt.Errorf("link not in planning topology")
		}
	}
	reduced := base.CloneWithoutLinks(bl.ID)
	if err := reduced.Validate(); err != nil {
		return nil, fmt.Errorf("failure partitions the network: %w", err)
	}
	// Evaluate over the reduced topology (where traffic will physically
	// flow) but compile against base (what the routers believe). The
	// artifact cache is ephemeral — the reduced topology is this call's
	// own — but shares the controller's cumulative stats; the LP solver
	// is private so reduced-topology structure keys do not thrash the
	// main planning basis.
	arts := newPlanArtifacts(reduced, c.artStats, nil)
	ctx := buildPlanContext(arts, reduced, demands, c.lies.InstalledAll(), LinkDownEvent(bl), c.cfg, len(c.raised))
	ctx.FailedLink = bl
	ctx.BaseTopo = base

	plan, perr := (FailoverPinStrategy{}).Propose(ctx)
	if perr == nil && plan != nil {
		plan.LieCost = liveLiesAfter(ctx.Installed, plan)
		return plan, nil
	}
	// Fallback (cache miss semantics): from-scratch strategy fan-out over
	// the reduced topology, triggered by its hottest link. These lies
	// only steer correctly once the IGP has converged on the reduced
	// topology, which is exactly the slow path being replaced.
	loads, err := arts.Loads(c.lies.InstalledAll(), demands)
	if err != nil {
		return nil, err
	}
	alarm, ok := HottestLinkAlarm(reduced, loads)
	if !ok {
		return nil, perr
	}
	ctx.Event = AlarmEvent(alarm)
	p2, errs := c.planner.Plan(ctx)
	if p2 == nil {
		if perr != nil {
			return nil, perr
		}
		if len(errs) > 0 {
			return nil, errs[0]
		}
		return nil, nil
	}
	return p2, nil
}

// --- failover-pin -------------------------------------------------------

// FailoverPinStrategy pins the post-failure IGP paths: for each prefix it
// reads the IGP's routing on the reduced topology (ctx.Topo, without the
// failed link), widens the split at the failed link's endpoints — the
// routers inheriting the rerouted traffic — with their unused downhill
// neighbours, and compiles the resulting DAG into lies against
// ctx.BaseTopo, the topology the routers still believe in. The result
// steers traffic off the dead link immediately and keeps steering it
// after the IGP converges.
type FailoverPinStrategy struct{}

// Name implements Strategy.
func (FailoverPinStrategy) Name() string { return "failover-pin" }

// Propose implements Strategy.
func (s FailoverPinStrategy) Propose(ctx PlanContext) (*Plan, error) {
	if ctx.Event.Kind != EventLinkDown || ctx.BaseTopo == nil || len(ctx.Demands) == 0 {
		return nil, nil
	}
	overlay := make(map[string][]fibbing.Lie)
	for _, prefix := range ctx.Prefixes {
		views, err := ctx.PrefixViews(prefix, nil)
		if err != nil {
			return nil, nil // abstain whole-plan; the fallback planner owns it
		}
		lies, ok := failoverPinLies(ctx.BaseTopo, ctx.Topo, views, prefix, ctx.FailedLink)
		if !ok {
			return nil, nil // abstain whole-plan; the fallback planner owns it
		}
		overlay[prefix] = lies
	}
	if len(overlay) == 0 {
		return nil, nil
	}
	util, err := ctx.Evaluate(overlay)
	if err != nil {
		return nil, fmt.Errorf("failover-pin: %w", err)
	}
	return &Plan{
		Strategy:      s.Name(),
		Lies:          overlay,
		PredictedUtil: util,
		Rationale: fmt.Sprintf("pinned post-failure paths around %s-%s",
			ctx.BaseTopo.Name(ctx.FailedLink.From), ctx.BaseTopo.Name(ctx.FailedLink.To)),
	}, nil
}

// failoverPinLies builds and compiles one prefix's pin DAG: the reduced
// topology's IGP next hops for every transit router (views, fetched
// memoised by the caller), widened at the failed link's endpoints,
// compiled and verified against base.
func failoverPinLies(base, reduced *topo.Topology, views map[topo.NodeID]fibbing.RouteView, prefix string, failed topo.Link) ([]fibbing.Lie, bool) {
	dag := fibbing.DAG{}
	for n, v := range views {
		if v.Local || len(v.NextHops) == 0 || reduced.Node(n).Host {
			continue
		}
		nhs := make(fibbing.NextHopWeights, len(v.NextHops))
		for nh, w := range v.NextHops {
			nhs[nh] = w
		}
		dag[n] = nhs
	}
	if len(dag) == 0 {
		return nil, false
	}
	// Widen at the failure's endpoints: recruit every unused downhill
	// neighbour (same criterion as local-ecmp) so the rerouted aggregate
	// does not all land on one backup path.
	for _, end := range [2]topo.NodeID{failed.From, failed.To} {
		v, ok := views[end]
		nhs := dag[end]
		if !ok || v.Local || nhs == nil {
			continue
		}
		for _, lid := range reduced.OutLinks(end) {
			u := reduced.Link(lid).To
			if reduced.Node(u).Host || nhs[u] > 0 {
				continue
			}
			uv, ok := views[u]
			if !ok {
				continue
			}
			if uv.Local || (len(uv.NextHops) > 0 && uv.Dist < v.Dist) {
				nhs[u] = 1
			}
		}
	}
	aug, err := fibbing.AugmentPinAll(base, prefix, dag)
	if err != nil {
		return nil, false
	}
	aug, err = fibbing.ReduceLies(base, prefix, aug, dag)
	if err != nil {
		return nil, false
	}
	if err := fibbing.Verify(base, prefix, aug.Lies, dag); err != nil {
		return nil, false
	}
	return aug.Lies, true
}
