package controller

import (
	"fmt"
	"math"
	"slices"
	"sync"
	"time"

	"fibbing.net/fibbing/internal/fibbing"
	"fibbing.net/fibbing/internal/monitor"
	"fibbing.net/fibbing/internal/te"
	"fibbing.net/fibbing/internal/topo"
)

const utilEpsilon = 1e-9

// utilEps is the comparison tolerance for a set of utilisation values:
// utilEpsilon scaled by the largest finite magnitude involved (at least
// 1). Utilisations are dimensionless, but on a badly overloaded network
// they legitimately reach orders of magnitude above 1, where an absolute
// 1e-9 would misread evaluator roundoff as a real difference; scoring and
// admissibility must not flip on noise whatever the traffic scale.
func utilEps(vals ...float64) float64 {
	scale := 1.0
	for _, v := range vals {
		if v = math.Abs(v); v > scale && !math.IsInf(v, 0) {
			scale = v
		}
	}
	return utilEpsilon * scale
}

// Planner runs a registered strategy set against a PlanContext: all
// strategies propose concurrently (Propose is pure), the resulting plans
// are scored, and the best plan wins. Scoring order: target-utilisation
// satisfaction first, then lie budget (total live lies after commit),
// then predicted utilisation, then registration order as the
// deterministic tie-break.
type Planner struct {
	strategies []Strategy

	// perf accumulates per-strategy telemetry across the planner's life:
	// proposals made, wins, and cumulative Propose wall-time. Proposals
	// and Wins are deterministic for a given event sequence; Nanos is
	// wall-clock and scrubbed from determinism comparisons.
	perfMu sync.Mutex
	perf   map[string]*StrategyPerf
}

// StrategyPerf is one strategy's cumulative planner telemetry.
type StrategyPerf struct {
	// Proposals counts Propose calls that returned a plan (abstentions
	// and errors are not proposals).
	Proposals int `json:"proposals"`
	// Wins counts proposals that Select picked.
	Wins int `json:"wins"`
	// Nanos is the cumulative Propose wall-time, including abstentions.
	Nanos int64 `json:"nanos"`
}

// NewPlanner builds a planner over the given strategies (registration
// order is the scoring tie-break). With no strategies it uses the stock
// set.
func NewPlanner(strategies ...Strategy) *Planner {
	if len(strategies) == 0 {
		strategies = DefaultStrategies()
	}
	return &Planner{strategies: strategies, perf: make(map[string]*StrategyPerf)}
}

// Strategies returns the registered strategy names in order.
func (p *Planner) Strategies() []string { return StrategyNames(p.strategies) }

// Perf snapshots the per-strategy telemetry accumulated so far.
func (p *Planner) Perf() map[string]StrategyPerf {
	p.perfMu.Lock()
	defer p.perfMu.Unlock()
	out := make(map[string]StrategyPerf, len(p.perf))
	for name, sp := range p.perf {
		out[name] = *sp
	}
	return out
}

func (p *Planner) perfFor(name string) *StrategyPerf {
	sp := p.perf[name]
	if sp == nil {
		sp = &StrategyPerf{}
		p.perf[name] = sp
	}
	return sp
}

// ProposeAll fans every registered strategy out concurrently and returns
// their plans in registration order (strategies that abstain contribute
// nothing). Errors are collected per strategy, never aborting the others.
func (p *Planner) ProposeAll(ctx PlanContext) ([]*Plan, []error) {
	plans := make([]*Plan, len(p.strategies))
	errs := make([]error, len(p.strategies))
	var wg sync.WaitGroup
	for i, s := range p.strategies {
		wg.Add(1)
		go func(i int, s Strategy) {
			defer wg.Done()
			start := time.Now()
			plan, err := s.Propose(ctx)
			elapsed := time.Since(start)
			p.perfMu.Lock()
			sp := p.perfFor(s.Name())
			sp.Nanos += elapsed.Nanoseconds()
			if plan != nil && err == nil {
				sp.Proposals++
			}
			p.perfMu.Unlock()
			if err != nil {
				errs[i] = fmt.Errorf("strategy %s: %w", s.Name(), err)
				return
			}
			plans[i] = plan
		}(i, s)
	}
	wg.Wait()
	var outPlans []*Plan
	for _, plan := range plans {
		if plan != nil {
			outPlans = append(outPlans, plan)
		}
	}
	var outErrs []error
	for _, err := range errs {
		if err != nil {
			outErrs = append(outErrs, err)
		}
	}
	return outPlans, outErrs
}

// Plan proposes concurrently, scores, and returns the winning plan (nil
// when no strategy has an admissible proposal). For congestion reactions
// (EventAlarmRaised) a plan is admissible only if it satisfies the target
// utilisation or strictly improves on the no-op plan — a committed plan
// never worsens the predicted max utilisation. Clear-triggered plans
// (withdrawal) self-guard against the withdraw threshold instead.
func (p *Planner) Plan(ctx PlanContext) (*Plan, []error) {
	plans, errs := p.ProposeAll(ctx)
	return p.Select(ctx, plans), errs
}

// Select scores already-proposed plans (in registration order, as
// returned by ProposeAll) and returns the admissible winner, filling
// each plan's LieCost. What-if tools that want both the proposals and
// the verdict call ProposeAll once and Select on the result instead of
// paying the strategy fan-out twice.
func (p *Planner) Select(ctx PlanContext, plans []*Plan) *Plan {
	qoeActive := ctx.ScoreMode != ScoreUtil && ctx.PredictQoE != nil
	var best *Plan
	for _, plan := range plans {
		plan.LieCost = liveLiesAfter(ctx.Installed, plan)
		if qoeActive {
			// Usually a memo hit: every overlay here was already predicted
			// once, either by the proposing strategy or by an earlier
			// planning round over the same state.
			if q, err := ctx.PredictQoE(plan.Lies); err == nil {
				plan.PredictedStall = q.Score()
			} else {
				plan.PredictedStall = math.Inf(1)
			}
		}
		if ctx.Event.Kind == EventAlarmRaised && !admissible(ctx, plan) {
			continue
		}
		if best == nil || better(ctx, plan, best) {
			best = plan
		}
	}
	if best != nil {
		p.perfMu.Lock()
		p.perfFor(best.Strategy).Wins++
		p.perfMu.Unlock()
	}
	return best
}

// admissible gates congestion-reaction plans: strictly improve on the
// no-op plan, or reach the target without worsening it. Either way a
// committed plan never increases the predicted max utilisation. Under
// QoE scoring the never-worsen rule is restated in viewer terms: a plan
// may exceed the utilisation target (or even the no-op utilisation) only
// when its predicted stall score strictly improves on the no-op plan's —
// viewers trade a hotter link for fewer stalled seconds, never for more.
// All comparisons use the relative utilEps, so the verdict is identical
// for rescaled versions of the same problem.
func admissible(ctx PlanContext, plan *Plan) bool {
	if ctx.ScoreMode != ScoreUtil && ctx.PredictQoE != nil &&
		plan.PredictedUtil > ctx.Target+utilEps(plan.PredictedUtil, ctx.Target) {
		// QoE modes, above the target: only a strict stall improvement
		// admits the plan. In particular a plan that merely improves the
		// predicted utilisation (the util-mode gate below) is rejected when
		// it gives those cooler links back by re-starving viewers — without
		// this, a utilisation-motivated revert can undo a committed stall
		// fix at the next alarm and the two objectives oscillate.
		return plan.PredictedStall < ctx.BaseStall-utilEps(plan.PredictedStall, ctx.BaseStall)
	}
	if plan.PredictedUtil < ctx.BaseUtil-utilEps(plan.PredictedUtil, ctx.BaseUtil) {
		return true
	}
	return plan.PredictedUtil <= ctx.Target+utilEps(plan.PredictedUtil, ctx.Target) &&
		plan.PredictedUtil <= ctx.BaseUtil+utilEps(plan.PredictedUtil, ctx.BaseUtil)
}

// better reports whether a beats b under the scoring order. Strict: on a
// full tie the earlier-registered plan (b) is kept.
//
// ScoreUtil orders by target satisfaction, lie cost, predicted
// utilisation. ScoreQoE puts the predicted stall score first — fewer
// stalled viewer-seconds beat everything, with the utilisation order as
// the tie-break. ScoreBlended keeps target satisfaction first (a plan
// that cools the network below target still wins) and breaks ties on
// the stall score before lie cost.
func better(ctx PlanContext, a, b *Plan) bool {
	if ctx.ScoreMode != ScoreUtil && ctx.PredictQoE != nil {
		if ctx.ScoreMode == ScoreQoE {
			if stallDiffers(a, b) {
				return a.PredictedStall < b.PredictedStall
			}
			return betterUtil(ctx, a, b)
		}
		// Blended: target satisfaction first, then the stall score.
		satA := a.PredictedUtil <= ctx.Target+utilEps(a.PredictedUtil, ctx.Target)
		satB := b.PredictedUtil <= ctx.Target+utilEps(b.PredictedUtil, ctx.Target)
		if satA != satB {
			return satA
		}
		if stallDiffers(a, b) {
			return a.PredictedStall < b.PredictedStall
		}
	}
	return betterUtil(ctx, a, b)
}

// betterUtil is the utilisation scoring order: target satisfaction, lie
// cost, predicted utilisation.
func betterUtil(ctx PlanContext, a, b *Plan) bool {
	satA := a.PredictedUtil <= ctx.Target+utilEps(a.PredictedUtil, ctx.Target)
	satB := b.PredictedUtil <= ctx.Target+utilEps(b.PredictedUtil, ctx.Target)
	if satA != satB {
		return satA
	}
	if a.LieCost != b.LieCost {
		return a.LieCost < b.LieCost
	}
	if math.Abs(a.PredictedUtil-b.PredictedUtil) > utilEps(a.PredictedUtil, b.PredictedUtil) {
		return a.PredictedUtil < b.PredictedUtil
	}
	return false
}

// stallDiffers reports whether two plans' predicted stall scores differ
// beyond comparison noise.
func stallDiffers(a, b *Plan) bool {
	if math.IsInf(a.PredictedStall, 1) || math.IsInf(b.PredictedStall, 1) {
		return a.PredictedStall != b.PredictedStall
	}
	return math.Abs(a.PredictedStall-b.PredictedStall) > utilEps(a.PredictedStall, b.PredictedStall)
}

// liveLiesAfter counts the lies that would be live after committing the
// plan over the installed state.
func liveLiesAfter(installed map[string][]fibbing.Lie, plan *Plan) int {
	n := 0
	for prefix, lies := range installed {
		if _, replaced := plan.Lies[prefix]; !replaced {
			n += len(lies)
		}
	}
	return n + plan.TotalLies()
}

// AnalyticPlanContext builds a PlanContext outside a running simulation —
// for one-shot what-if planning (cmd/fibsim), tests, and benchmarks. The
// installed map may be nil; cfg uses its usual defaults. The context
// carries a fresh artifact cache, so one fan-out shares its SPF and
// evaluation work; repeat callers who want cross-invocation reuse pass a
// persistent cache to AnalyticPlanContextCached instead.
func AnalyticPlanContext(t *topo.Topology, demands []topo.Demand,
	installed map[string][]fibbing.Lie, ev Event, cfg Config) PlanContext {
	return AnalyticPlanContextCached(NewPlanArtifacts(t), t, demands, installed, ev, cfg)
}

// AnalyticPlanContextCached is AnalyticPlanContext with a caller-owned
// artifact cache: successive contexts built over the same cache (same
// topology, unchanged demands/lies) reuse each other's SPF trees,
// believed-topology compilations, k-shortest-path sets, LP bases and
// load estimates. The caller owns invalidation — pass a fresh or rebound
// cache whenever topology, demands or installed lies change.
func AnalyticPlanContextCached(arts *PlanArtifacts, t *topo.Topology, demands []topo.Demand,
	installed map[string][]fibbing.Lie, ev Event, cfg Config) PlanContext {
	raised := 0
	if ev.Kind == EventAlarmRaised {
		raised = 1
	}
	return buildPlanContext(arts, t, demands, installed, ev, cfg.resolve(), raised)
}

// buildPlanContext is the single assembly point for PlanContexts: the
// running controller and the analytic what-if path both go through it,
// so the evaluator wiring and base-utilisation semantics cannot diverge.
// arts may be nil (everything computes directly) or bound to a different
// topology (helpers fall back per call).
func buildPlanContext(arts *PlanArtifacts, t *topo.Topology, demands []topo.Demand,
	installed map[string][]fibbing.Lie, ev Event, r resolved, raisedAlarms int) PlanContext {
	if installed == nil {
		installed = map[string][]fibbing.Lie{}
	}
	eval := newEvaluator(arts, t, installed, demands)
	base := 0.0
	if len(demands) > 0 {
		if u, err := eval(nil); err == nil {
			base = u
		} else {
			base = math.Inf(1)
		}
	}
	return PlanContext{
		Topo:          t,
		Artifacts:     arts,
		Event:         ev,
		Demands:       demands,
		Prefixes:      prefixNamesOf(demands),
		Installed:     installed,
		RaisedAlarms:  raisedAlarms,
		BaseUtil:      base,
		Target:        r.target,
		WithdrawBelow: r.withdrawBelow,
		MaxDenom:      r.maxDenom,
		MaxLPRouters:  r.maxLPRouters,
		ScoreMode:     r.scoreMode,
		Evaluate:      eval,
	}
}

// HottestLinkAlarm synthesises the raised alarm fibsim-style what-if
// planning needs: the highest-utilisation capacitated router-router link
// of the given loads.
func HottestLinkAlarm(t *topo.Topology, loads map[topo.LinkID]float64) (monitor.Alarm, bool) {
	var best monitor.Alarm
	found := false
	for _, l := range t.Links() {
		if l.Capacity <= 0 || t.Node(l.From).Host || t.Node(l.To).Host {
			continue
		}
		util := loads[l.ID] / l.Capacity
		if !found || util > best.Utilisation {
			best = monitor.Alarm{
				Link:        l.ID,
				Name:        fmt.Sprintf("%s-%s", t.Name(l.From), t.Name(l.To)),
				Utilisation: util,
				Raised:      true,
			}
			found = true
		}
	}
	return best, found
}

// newEvaluator builds the PlanContext.Evaluate closure: overlay-aware
// fluid routing of demands over installed lies. Safe for concurrent use.
// With an artifact cache bound to t, evaluations are memoised on the
// merged lie set (per-prefix believed views and whole-set load maps), so
// repeated evaluations of the same overlay — across strategies or across
// planner invocations — cost a lookup.
func newEvaluator(arts *PlanArtifacts, t *topo.Topology, installed map[string][]fibbing.Lie, demands []topo.Demand) func(map[string][]fibbing.Lie) (float64, error) {
	if arts != nil && arts.topo != t {
		arts = nil // bound elsewhere; compute directly
	}
	return func(overlay map[string][]fibbing.Lie) (float64, error) {
		merged := make(map[string][]fibbing.Lie, len(installed)+len(overlay))
		for prefix, lies := range installed {
			merged[prefix] = lies
		}
		for prefix, lies := range overlay {
			if len(lies) == 0 {
				delete(merged, prefix)
				continue
			}
			merged[prefix] = lies
		}
		if arts != nil {
			return arts.MaxUtil(merged, demands)
		}
		loads, err := te.LoadsWithLies(t, merged, demands)
		if err != nil {
			return 0, err
		}
		return te.MaxUtilOfLoads(t, loads), nil
	}
}

func prefixNamesOf(demands []topo.Demand) []string {
	seen := make(map[string]bool, len(demands))
	var out []string
	for _, d := range demands {
		if d.Volume <= 0 || seen[d.PrefixName] {
			continue
		}
		seen[d.PrefixName] = true
		out = append(out, d.PrefixName)
	}
	slices.Sort(out)
	return out
}
