package controller

import (
	"fmt"
	"math"
	"slices"
	"sync"

	"fibbing.net/fibbing/internal/fibbing"
	"fibbing.net/fibbing/internal/monitor"
	"fibbing.net/fibbing/internal/te"
	"fibbing.net/fibbing/internal/topo"
)

const utilEpsilon = 1e-9

// utilEps is the comparison tolerance for a set of utilisation values:
// utilEpsilon scaled by the largest finite magnitude involved (at least
// 1). Utilisations are dimensionless, but on a badly overloaded network
// they legitimately reach orders of magnitude above 1, where an absolute
// 1e-9 would misread evaluator roundoff as a real difference; scoring and
// admissibility must not flip on noise whatever the traffic scale.
func utilEps(vals ...float64) float64 {
	scale := 1.0
	for _, v := range vals {
		if v = math.Abs(v); v > scale && !math.IsInf(v, 0) {
			scale = v
		}
	}
	return utilEpsilon * scale
}

// Planner runs a registered strategy set against a PlanContext: all
// strategies propose concurrently (Propose is pure), the resulting plans
// are scored, and the best plan wins. Scoring order: target-utilisation
// satisfaction first, then lie budget (total live lies after commit),
// then predicted utilisation, then registration order as the
// deterministic tie-break.
type Planner struct {
	strategies []Strategy
}

// NewPlanner builds a planner over the given strategies (registration
// order is the scoring tie-break). With no strategies it uses the stock
// set.
func NewPlanner(strategies ...Strategy) *Planner {
	if len(strategies) == 0 {
		strategies = DefaultStrategies()
	}
	return &Planner{strategies: strategies}
}

// Strategies returns the registered strategy names in order.
func (p *Planner) Strategies() []string { return StrategyNames(p.strategies) }

// ProposeAll fans every registered strategy out concurrently and returns
// their plans in registration order (strategies that abstain contribute
// nothing). Errors are collected per strategy, never aborting the others.
func (p *Planner) ProposeAll(ctx PlanContext) ([]*Plan, []error) {
	plans := make([]*Plan, len(p.strategies))
	errs := make([]error, len(p.strategies))
	var wg sync.WaitGroup
	for i, s := range p.strategies {
		wg.Add(1)
		go func(i int, s Strategy) {
			defer wg.Done()
			plan, err := s.Propose(ctx)
			if err != nil {
				errs[i] = fmt.Errorf("strategy %s: %w", s.Name(), err)
				return
			}
			plans[i] = plan
		}(i, s)
	}
	wg.Wait()
	var outPlans []*Plan
	for _, plan := range plans {
		if plan != nil {
			outPlans = append(outPlans, plan)
		}
	}
	var outErrs []error
	for _, err := range errs {
		if err != nil {
			outErrs = append(outErrs, err)
		}
	}
	return outPlans, outErrs
}

// Plan proposes concurrently, scores, and returns the winning plan (nil
// when no strategy has an admissible proposal). For congestion reactions
// (EventAlarmRaised) a plan is admissible only if it satisfies the target
// utilisation or strictly improves on the no-op plan — a committed plan
// never worsens the predicted max utilisation. Clear-triggered plans
// (withdrawal) self-guard against the withdraw threshold instead.
func (p *Planner) Plan(ctx PlanContext) (*Plan, []error) {
	plans, errs := p.ProposeAll(ctx)
	return p.Select(ctx, plans), errs
}

// Select scores already-proposed plans (in registration order, as
// returned by ProposeAll) and returns the admissible winner, filling
// each plan's LieCost. What-if tools that want both the proposals and
// the verdict call ProposeAll once and Select on the result instead of
// paying the strategy fan-out twice.
func (p *Planner) Select(ctx PlanContext, plans []*Plan) *Plan {
	var best *Plan
	for _, plan := range plans {
		plan.LieCost = liveLiesAfter(ctx.Installed, plan)
		if ctx.Event.Kind == EventAlarmRaised && !admissible(ctx, plan) {
			continue
		}
		if best == nil || better(ctx, plan, best) {
			best = plan
		}
	}
	return best
}

// admissible gates congestion-reaction plans: strictly improve on the
// no-op plan, or reach the target without worsening it. Either way a
// committed plan never increases the predicted max utilisation. All
// comparisons use the relative utilEps, so the verdict is identical for
// rescaled versions of the same problem.
func admissible(ctx PlanContext, plan *Plan) bool {
	if plan.PredictedUtil < ctx.BaseUtil-utilEps(plan.PredictedUtil, ctx.BaseUtil) {
		return true
	}
	return plan.PredictedUtil <= ctx.Target+utilEps(plan.PredictedUtil, ctx.Target) &&
		plan.PredictedUtil <= ctx.BaseUtil+utilEps(plan.PredictedUtil, ctx.BaseUtil)
}

// better reports whether a beats b under the scoring order. Strict: on a
// full tie the earlier-registered plan (b) is kept.
func better(ctx PlanContext, a, b *Plan) bool {
	satA := a.PredictedUtil <= ctx.Target+utilEps(a.PredictedUtil, ctx.Target)
	satB := b.PredictedUtil <= ctx.Target+utilEps(b.PredictedUtil, ctx.Target)
	if satA != satB {
		return satA
	}
	if a.LieCost != b.LieCost {
		return a.LieCost < b.LieCost
	}
	if math.Abs(a.PredictedUtil-b.PredictedUtil) > utilEps(a.PredictedUtil, b.PredictedUtil) {
		return a.PredictedUtil < b.PredictedUtil
	}
	return false
}

// liveLiesAfter counts the lies that would be live after committing the
// plan over the installed state.
func liveLiesAfter(installed map[string][]fibbing.Lie, plan *Plan) int {
	n := 0
	for prefix, lies := range installed {
		if _, replaced := plan.Lies[prefix]; !replaced {
			n += len(lies)
		}
	}
	return n + plan.TotalLies()
}

// AnalyticPlanContext builds a PlanContext outside a running simulation —
// for one-shot what-if planning (cmd/fibsim), tests, and benchmarks. The
// installed map may be nil; cfg uses its usual defaults.
func AnalyticPlanContext(t *topo.Topology, demands []topo.Demand,
	installed map[string][]fibbing.Lie, ev Event, cfg Config) PlanContext {
	raised := 0
	if ev.Kind == EventAlarmRaised {
		raised = 1
	}
	return buildPlanContext(t, demands, installed, ev, cfg.resolve(), raised)
}

// buildPlanContext is the single assembly point for PlanContexts: the
// running controller and the analytic what-if path both go through it,
// so the evaluator wiring and base-utilisation semantics cannot diverge.
func buildPlanContext(t *topo.Topology, demands []topo.Demand,
	installed map[string][]fibbing.Lie, ev Event, r resolved, raisedAlarms int) PlanContext {
	if installed == nil {
		installed = map[string][]fibbing.Lie{}
	}
	eval := newEvaluator(t, installed, demands)
	base := 0.0
	if len(demands) > 0 {
		if u, err := eval(nil); err == nil {
			base = u
		} else {
			base = math.Inf(1)
		}
	}
	return PlanContext{
		Topo:          t,
		Event:         ev,
		Demands:       demands,
		Prefixes:      prefixNamesOf(demands),
		Installed:     installed,
		RaisedAlarms:  raisedAlarms,
		BaseUtil:      base,
		Target:        r.target,
		WithdrawBelow: r.withdrawBelow,
		MaxDenom:      r.maxDenom,
		MaxLPRouters:  r.maxLPRouters,
		Evaluate:      eval,
	}
}

// HottestLinkAlarm synthesises the raised alarm fibsim-style what-if
// planning needs: the highest-utilisation capacitated router-router link
// of the given loads.
func HottestLinkAlarm(t *topo.Topology, loads map[topo.LinkID]float64) (monitor.Alarm, bool) {
	var best monitor.Alarm
	found := false
	for _, l := range t.Links() {
		if l.Capacity <= 0 || t.Node(l.From).Host || t.Node(l.To).Host {
			continue
		}
		util := loads[l.ID] / l.Capacity
		if !found || util > best.Utilisation {
			best = monitor.Alarm{
				Link:        l.ID,
				Name:        fmt.Sprintf("%s-%s", t.Name(l.From), t.Name(l.To)),
				Utilisation: util,
				Raised:      true,
			}
			found = true
		}
	}
	return best, found
}

// newEvaluator builds the PlanContext.Evaluate closure: overlay-aware
// fluid routing of demands over installed lies. Safe for concurrent use.
func newEvaluator(t *topo.Topology, installed map[string][]fibbing.Lie, demands []topo.Demand) func(map[string][]fibbing.Lie) (float64, error) {
	return func(overlay map[string][]fibbing.Lie) (float64, error) {
		merged := make(map[string][]fibbing.Lie, len(installed)+len(overlay))
		for prefix, lies := range installed {
			merged[prefix] = lies
		}
		for prefix, lies := range overlay {
			if len(lies) == 0 {
				delete(merged, prefix)
				continue
			}
			merged[prefix] = lies
		}
		loads, err := te.LoadsWithLies(t, merged, demands)
		if err != nil {
			return 0, err
		}
		return te.MaxUtilOfLoads(t, loads), nil
	}
}

func prefixNamesOf(demands []topo.Demand) []string {
	seen := make(map[string]bool, len(demands))
	var out []string
	for _, d := range demands {
		if d.Volume <= 0 || seen[d.PrefixName] {
			continue
		}
		seen[d.PrefixName] = true
		out = append(out, d.PrefixName)
	}
	slices.Sort(out)
	return out
}
