package controller

import (
	"math"
	"strings"
	"testing"
	"time"

	"fibbing.net/fibbing/internal/flashcrowd"
	"fibbing.net/fibbing/internal/metrics"
	"fibbing.net/fibbing/internal/topo"
	"fibbing.net/fibbing/internal/video"
)

// TestFig2WithController is the paper's headline demo: as the flash crowd
// grows, the controller injects lies that add equal-cost paths and uneven
// splits, keeping every link below capacity while total delivered
// throughput keeps increasing. Reproduces Figure 2's shape.
func TestFig2WithController(t *testing.T) {
	sim, res, err := RunFig2(true, 60*time.Second, 0)
	if err != nil {
		t.Fatal(err)
	}
	aR1, bR2, bR3 := res.Series[0], res.Series[1], res.Series[2]

	// Phase 1 (0-15s): a single 0.5 Mbit/s video on B-R2; nothing on
	// B-R3 or A-R1.
	if v := bR2.At(10 * time.Second); math.Abs(v-62500) > 6300 {
		t.Fatalf("phase1 B-R2 = %v byte/s, want ~62500", v)
	}
	if v := bR3.At(10 * time.Second); v > 1000 {
		t.Fatalf("phase1 B-R3 = %v, want ~0", v)
	}
	if v := aR1.At(10 * time.Second); v > 1000 {
		t.Fatalf("phase1 A-R1 = %v, want ~0", v)
	}

	// Phase 2 (15-35s): 31 videos from S1; the controller must have
	// activated B-R3 (ECMP at B), with both B links carrying real load
	// and neither saturated.
	capacityBps := topo.DefaultFig1Capacity / 8 // byte/s
	p2r2 := bR2.MeanInWindow(25*time.Second, 34*time.Second)
	p2r3 := bR3.MeanInWindow(25*time.Second, 34*time.Second)
	if p2r3 < 0.2*capacityBps/2 {
		t.Fatalf("phase2 B-R3 = %v byte/s: ECMP at B not activated", p2r3)
	}
	total2 := p2r2 + p2r3
	want2 := 31 * flashRateBytes()
	if math.Abs(total2-want2) > 0.1*want2 {
		t.Fatalf("phase2 total B egress = %v, want ~%v", total2, want2)
	}
	if bR2.MaxInWindow(22*time.Second, 35*time.Second) > capacityBps {
		t.Fatalf("phase2 B-R2 above capacity")
	}

	// Phase 3 (35-60s): 31 more videos from S2; A-R1 must carry ~2/3 of
	// A's traffic, and all 62 videos must be delivered in full.
	p3a := aR1.MeanInWindow(48*time.Second, 59*time.Second)
	wantA := 31 * flashRateBytes() * 2 / 3
	if math.Abs(p3a-wantA) > 0.35*wantA {
		t.Fatalf("phase3 A-R1 = %v byte/s, want ~%v (2/3 of A's traffic)", p3a, wantA)
	}
	totalWant := 62 * flashRateBytes() * 8 // bit/s
	if tt := sim.Net.TotalThroughput(); math.Abs(tt-totalWant) > 0.02*totalWant {
		t.Fatalf("total delivered = %v bit/s, want ~%v (no starvation)", tt, totalWant)
	}
	if res.MaxUtilisation > 0.95 {
		t.Fatalf("max utilisation = %v: congestion not prevented", res.MaxUtilisation)
	}

	// The controller's moves mirror the demo narrative: first local ECMP
	// at B, then the LP-optimal uneven split at A.
	if len(res.Decisions) < 2 {
		t.Fatalf("decisions = %+v", res.Decisions)
	}
	if res.Decisions[0].Strategy != "local-ecmp" {
		t.Fatalf("first decision = %+v, want local-ecmp", res.Decisions[0])
	}
	foundLP := false
	for _, d := range res.Decisions {
		if d.Strategy == "lp-optimal" && d.Lies == 3 {
			foundLP = true
		}
	}
	if !foundLP {
		t.Fatalf("no 3-lie lp-optimal decision: %+v", res.Decisions)
	}
	if res.LiveLies != 3 {
		t.Fatalf("live lies = %d, want 3 (fB + 2xfA)", res.LiveLies)
	}
	if len(sim.Ctrl.Errors) > 0 {
		t.Fatalf("controller errors: %v", sim.Ctrl.Errors)
	}
}

func flashRateBytes() float64 { return 0.5e6 / 8 }

// TestFig2WithoutController is the counterfactual: with the controller
// disabled, the second wave saturates B-R2 and flows starve.
func TestFig2WithoutController(t *testing.T) {
	sim, res, err := RunFig2(false, 60*time.Second, 0)
	if err != nil {
		t.Fatal(err)
	}
	bR3 := res.Series[2]
	if v := bR3.Max(); v > 1000 {
		t.Fatalf("B-R3 used without controller: %v", v)
	}
	// 62 videos x 0.5 Mbit/s = 31 Mbit/s demanded; only 16 fits through
	// B-R2. Delivered throughput must be capped at the bottleneck.
	tt := sim.Net.TotalThroughput()
	if tt > topo.DefaultFig1Capacity*1.01 {
		t.Fatalf("throughput %v exceeds the single-path bottleneck", tt)
	}
	if res.MaxUtilisation < 0.99 {
		t.Fatalf("bottleneck not saturated: %v", res.MaxUtilisation)
	}
	if res.LiveLies != 0 || len(res.Decisions) != 0 {
		t.Fatalf("disabled controller acted: %+v", res.Decisions)
	}
}

// TestQoEWithVsWithout reproduces the demo's observable result: smooth
// playback with Fibbing, stuttering without.
func TestQoEWithVsWithout(t *testing.T) {
	_, with, err := RunFig2(true, 60*time.Second, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, without, err := RunFig2(false, 60*time.Second, 0)
	if err != nil {
		t.Fatal(err)
	}
	aggWith := video.AggregateQoE(with.QoE)
	aggWithout := video.AggregateQoE(without.QoE)
	if aggWith.Sessions != 62 || aggWithout.Sessions != 62 {
		t.Fatalf("sessions = %d / %d", aggWith.Sessions, aggWithout.Sessions)
	}
	if aggWith.MeanRebuffer > 0.01 {
		t.Fatalf("with controller: rebuffer %v, want ~0 (smooth)", aggWith.MeanRebuffer)
	}
	if aggWithout.MeanRebuffer < 0.1 {
		t.Fatalf("without controller: rebuffer %v, want substantial stutter", aggWithout.MeanRebuffer)
	}
	if aggWithout.TotalStalls == 0 {
		t.Fatalf("without controller: no stalls recorded")
	}
}

// TestWithdrawAfterSurge verifies the full lifecycle: lies appear during
// the surge and are withdrawn once the crowd leaves.
func TestWithdrawAfterSurge(t *testing.T) {
	sim, err := NewSim(SimOpts{WithCtrl: true})
	if err != nil {
		t.Fatal(err)
	}
	// A 20-second surge of 31 videos, then quiet.
	err = sim.Runner.Schedule([]flashcrowd.Wave{
		{At: 2 * time.Second, Ingress: topo.Fig1B, Flows: 31, Rate: 0.5e6, Hold: 20 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.Run(15 * time.Second)
	if sim.Lies.LieCount() == 0 {
		t.Fatalf("no lies during surge")
	}
	sim.Run(60 * time.Second)
	if sim.Lies.LieCount() != 0 {
		t.Fatalf("lies not withdrawn after surge: %d", sim.Lies.LieCount())
	}
	withdrew := false
	for _, d := range sim.Ctrl.Decisions {
		if d.Strategy == "withdraw" {
			withdrew = true
		}
	}
	if !withdrew {
		t.Fatalf("no withdraw decision: %+v", sim.Ctrl.Decisions)
	}
	if len(sim.Ctrl.Errors) > 0 {
		t.Fatalf("controller errors: %v", sim.Ctrl.Errors)
	}
}

func TestDemandTracking(t *testing.T) {
	sim, err := NewSim(SimOpts{WithCtrl: true})
	if err != nil {
		t.Fatal(err)
	}
	b := sim.Topo.MustNode("B")
	sim.Ctrl.ClientJoined("blue", b, 1e6)
	sim.Ctrl.ClientJoined("blue", b, 1e6)
	d := sim.Ctrl.Demands()
	if len(d) != 1 || d[0].Volume != 2e6 || d[0].Ingress != b {
		t.Fatalf("demands = %+v", d)
	}
	sim.Ctrl.ClientLeft("blue", b, 1e6)
	sim.Ctrl.ClientLeft("blue", b, 1e6)
	if len(sim.Ctrl.Demands()) != 0 {
		t.Fatalf("demands not drained: %+v", sim.Ctrl.Demands())
	}
}

// TestFig2SeriesTable smoke-tests the experiment rendering used by
// cmd/experiments.
func TestFig2SeriesTable(t *testing.T) {
	_, res, err := RunFig2(true, 50*time.Second, 0)
	if err != nil {
		t.Fatal(err)
	}
	tb := metrics.SeriesTable(5*time.Second, res.Series...)
	var sb strings.Builder
	if err := tb.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if len(sb.String()) == 0 {
		t.Fatalf("empty table")
	}
}
