package controller

import (
	"fmt"
	"time"

	"fibbing.net/fibbing/internal/bfd"
	"fibbing.net/fibbing/internal/event"
	"fibbing.net/fibbing/internal/fib"
	"fibbing.net/fibbing/internal/flashcrowd"
	"fibbing.net/fibbing/internal/metrics"
	"fibbing.net/fibbing/internal/monitor"
	"fibbing.net/fibbing/internal/netsim"
	"fibbing.net/fibbing/internal/ospf"
	"fibbing.net/fibbing/internal/snmp"
	"fibbing.net/fibbing/internal/southbound"
	"fibbing.net/fibbing/internal/topo"
	"fibbing.net/fibbing/internal/video"
)

// Sim wires the full demo stack: topology, IGP domain, fluid data plane,
// SNMP agent + poller, flash-crowd generator, video sessions, and the
// Fibbing controller attached at R3 (as in the paper's setup).
type Sim struct {
	Topo   *topo.Topology
	Sched  *event.Scheduler
	Domain *ospf.Domain
	Net    *netsim.Network
	Poller *monitor.Poller
	Lies   *southbound.LieManager
	Ctrl   *Controller
	Runner *flashcrowd.Runner
	// BFD is the liveness engine (nil unless SimOpts.BFD enables it).
	BFD *bfd.Engine

	Sessions    []*video.SimSession
	ABRSessions []*video.ABRSimSession
}

// SimOpts parameterises NewSim.
type SimOpts struct {
	Topology   *topo.Topology // default: Fig1
	Prefix     string         // default: blue
	AttachAt   string         // controller PoP router, default R3
	WithCtrl   bool           // false disables the Fibbing controller
	Monitor    monitor.Config
	Controller Config
	// Strategies replaces the controller's stock strategy set (see
	// WithStrategies); nil keeps DefaultStrategies.
	Strategies   []Strategy
	SampleEvery  time.Duration // throughput series sampling, default 1s
	VideoSample  time.Duration // player tick, default 250ms
	TrackPlayers bool          // attach a SimSession per flow
	// ABR, when set, attaches adaptive-bitrate players instead of
	// fixed-rate ones (the ABR extension experiment).
	ABR *video.ABRConfig
	// Workers sets the scheduler's parallel-batch pool width: 0 means
	// GOMAXPROCS, 1 selects the pure sequential core. Output is
	// byte-identical either way; only wall-clock changes.
	Workers int
	// BFD enables per-link liveness sessions; link failures then reach
	// the controller as LinkDown/LinkUp events milliseconds after the
	// fact, instead of at SNMP-poll timescale. The zero Config is valid
	// (50ms hellos, detect multiplier 3): pass &bfd.Config{} to enable
	// with defaults.
	BFD *bfd.Config
	// StandbyK, with BFD, precomputes failover plans for the K links
	// carrying the highest aggregate rate (see WithStandby); 0 plans
	// every failure from scratch.
	StandbyK int
}

// NewSim assembles the emulation. The IGP starts immediately; flows can
// be scheduled through the Runner before calling Run.
func NewSim(o SimOpts) (*Sim, error) {
	if o.Topology == nil {
		o.Topology = topo.Fig1(topo.Fig1Opts{})
	}
	if o.Prefix == "" {
		o.Prefix = topo.Fig1BluePrefixName
	}
	if o.AttachAt == "" {
		o.AttachAt = topo.Fig1R3
	}
	if o.Monitor.Interval <= 0 {
		o.Monitor.Interval = 2 * time.Second
	}
	if o.Monitor.HighThreshold <= 0 {
		o.Monitor.HighThreshold = 0.85
	}
	// nil means unset: an explicit monitor.Float(0)/monitor.Int(0) is a
	// legitimate setting and passes through untouched.
	if o.Monitor.LowThreshold == nil {
		o.Monitor.LowThreshold = monitor.Float(0.1)
	}
	if o.Monitor.Alpha <= 0 {
		o.Monitor.Alpha = 0.7
	}
	if o.Monitor.RepeatEvery == nil {
		o.Monitor.RepeatEvery = monitor.Int(2)
	}

	s := &Sim{Topo: o.Topology, Sched: event.NewScheduler()}
	s.Sched.SetWorkers(o.Workers)
	s.Net = netsim.New(s.Topo, s.Sched, o.SampleEvery)
	s.Domain = ospf.NewDomain(s.Topo, s.Sched, ospf.Config{})
	// The delta pipeline end to end: routers emit FIB diffs, the data
	// plane re-paths only flows whose destinations actually changed.
	s.Domain.OnFIBDelta = func(n topo.NodeID, t *fib.Table, d *fib.Diff) { s.Net.ApplyDiff(n, t, d) }

	mib := snmp.NewMIB()
	snmp.BindIFMIB(mib, s.Net, topo.NoNode)
	agent := snmp.NewAgent("public", mib)
	client := snmp.NewClient(snmp.DirectTransport{Agent: agent}, "public")
	s.Poller = monitor.NewPoller(client, s.Sched, o.Monitor, monitor.WatchAllLinks(s.Topo))

	attach, ok := s.Topo.NodeByName(o.AttachAt)
	if !ok {
		return nil, fmt.Errorf("controller: unknown attach router %q", o.AttachAt)
	}
	pop := s.Domain.Router(attach)
	if pop == nil {
		return nil, fmt.Errorf("controller: attach node %q is not a router", o.AttachAt)
	}
	s.Lies = southbound.NewLieManager(southbound.DirectInjector{Router: pop}, ospf.ControllerIDBase)
	ctrlOpts := []Option{WithConfig(o.Controller), WithStrategies(o.Strategies...)}
	if o.BFD != nil && o.StandbyK > 0 {
		ctrlOpts = append(ctrlOpts, WithStandby(s.Sched, o.StandbyK))
	}
	s.Ctrl = New(s.Topo, s.Lies, s.Sched.Now, ctrlOpts...)
	if o.WithCtrl {
		// The monitor's bare callback becomes a typed controller event.
		s.Poller.OnAlarm = func(a monitor.Alarm) { s.Ctrl.Handle(AlarmEvent(a)) }
		// Participating in IGP flooding, the controller learns topology
		// changes at dead-interval timescale; the controller dedupes the
		// per-endpoint detections (and BFD's earlier announcement, when
		// enabled, wins the race).
		s.Domain.OnAdjacencyChange = func(l topo.Link, up bool) {
			if up {
				s.Ctrl.Handle(LinkUpEvent(l))
			} else {
				s.Ctrl.Handle(LinkDownEvent(l))
			}
		}
	}
	if o.BFD != nil {
		// Liveness sessions probe over the same administrative link state
		// the IGP transport honours, and feed the controller directly —
		// the fast path past both the SNMP poller and the dead interval.
		s.BFD = bfd.New(s.Topo, s.Sched, *o.BFD)
		s.BFD.Blocked = s.Domain.LinkBlocked
		if o.WithCtrl {
			s.BFD.OnDown = func(l topo.Link) { s.Ctrl.Handle(LinkDownEvent(l)) }
			s.BFD.OnUp = func(l topo.Link) { s.Ctrl.Handle(LinkUpEvent(l)) }
		}
	}

	s.Runner = &flashcrowd.Runner{
		Net:    s.Net,
		Sched:  s.Sched,
		Prefix: o.Prefix,
		OnJoin: func(ingress topo.NodeID, rate float64) {
			s.Ctrl.Handle(DemandEvent(o.Prefix, ingress, rate))
		},
		OnLeave: func(ingress topo.NodeID, rate float64) {
			s.Ctrl.Handle(DemandEvent(o.Prefix, ingress, -rate))
		},
	}
	// Sessions attach through shared-ticker pools: one scheduler event
	// stream per sim instead of one per viewer, which is what lets the
	// flashcrowd-100k scale cells track every player's QoE.
	switch {
	case o.ABR != nil:
		pool := video.NewABRSessionPool(s.Sched, s.Net, *o.ABR)
		s.Runner.OnFlowStarted = func(id netsim.FlowID, _ float64) {
			s.ABRSessions = append(s.ABRSessions, pool.Attach(id))
		}
	case o.TrackPlayers:
		pool := video.NewSessionPool(s.Sched, s.Net, o.VideoSample)
		s.Runner.OnFlowStarted = func(id netsim.FlowID, rate float64) {
			s.Sessions = append(s.Sessions, pool.Attach(id, rate))
		}
	}

	s.Domain.Start()
	s.Poller.Start()
	if s.BFD != nil {
		s.BFD.Start()
	}
	return s, nil
}

// Run advances virtual time to the given instant.
func (s *Sim) Run(until time.Duration) {
	s.Sched.RunUntil(until)
}

// SetLinkState fails or heals a link in both the control plane (the IGP
// detects it through hello timeouts) and the data plane (flows crossing it
// are blocked until rerouted).
func (s *Sim) SetLinkState(a, b string, up bool) error {
	na, nb := s.Topo.MustNode(a), s.Topo.MustNode(b)
	if err := s.Domain.SetLinkState(na, nb, up); err != nil {
		return err
	}
	return s.Net.SetLinkState(na, nb, up)
}

// QoE collects all tracked sessions' playback metrics.
func (s *Sim) QoE() []video.QoE {
	out := make([]video.QoE, len(s.Sessions))
	for i, sess := range s.Sessions {
		out[i] = sess.QoE()
	}
	return out
}

// ABRQoE collects adaptive sessions' metrics.
func (s *Sim) ABRQoE() []video.ABRQoE {
	out := make([]video.ABRQoE, len(s.ABRSessions))
	for i, sess := range s.ABRSessions {
		out[i] = sess.QoE()
	}
	return out
}

// RunFig2ABR runs the Figure 2 timeline with adaptive-bitrate players:
// the ABR extension experiment. The wave rate is the ladder's top rung so
// the controller's demand model plans for full-quality delivery.
func RunFig2ABR(withController bool, until time.Duration, cfg video.ABRConfig) (*Sim, video.ABRAggregate, error) {
	if until <= 0 {
		until = 60 * time.Second
	}
	sim, err := NewSim(SimOpts{WithCtrl: withController, ABR: &cfg})
	if err != nil {
		return nil, video.ABRAggregate{}, err
	}
	ladder := cfg.Ladder
	if len(ladder) == 0 {
		ladder = video.DefaultLadder
	}
	top := ladder[len(ladder)-1]
	if err := sim.Runner.Schedule(flashcrowd.Fig2Schedule(top)); err != nil {
		return nil, video.ABRAggregate{}, err
	}
	sim.Run(until)
	return sim, video.AggregateABRQoE(sim.ABRQoE()), nil
}

// Fig2Result is everything the Figure 2 experiment reports.
type Fig2Result struct {
	// Series holds the byte/s throughput of the figure's three links:
	// A-R1, B-R2, B-R3.
	Series []*metrics.Series
	// QoE per video session (empty if players were not tracked).
	QoE []video.QoE
	// Decisions taken by the controller.
	Decisions []Decision
	// Lies live at the end of the run.
	LiveLies int
	// MaxUtilisation at the end of the run.
	MaxUtilisation float64
	// ProtocolStats from the IGP.
	ProtocolStats ospf.ControlPlaneStats
}

// RunFig2 executes the paper's Figure 2 timeline: one video flow from S1
// (behind B) at t=0, thirty more at t=15 s, thirty-one from S2 (behind A)
// at t=35 s, measured until `until` (default 60 s). With the controller
// enabled the maximum link load stays bounded as fake nodes add paths;
// without it, the B-R2 path saturates and playback stutters.
func RunFig2(withController bool, until time.Duration, videoRate float64) (*Sim, *Fig2Result, error) {
	if until <= 0 {
		until = 60 * time.Second
	}
	sim, err := NewSim(SimOpts{WithCtrl: withController, TrackPlayers: true})
	if err != nil {
		return nil, nil, err
	}
	if err := sim.Runner.Schedule(flashcrowd.Fig2Schedule(videoRate)); err != nil {
		return nil, nil, err
	}
	sim.Run(until)

	res := &Fig2Result{
		QoE:            sim.QoE(),
		Decisions:      sim.Ctrl.Decisions,
		LiveLies:       sim.Lies.LieCount(),
		MaxUtilisation: sim.Net.MaxUtilisation(),
		ProtocolStats:  sim.Domain.Stats(),
	}
	for _, pair := range [][2]string{
		{topo.Fig1A, topo.Fig1R1},
		{topo.Fig1B, topo.Fig1R2},
		{topo.Fig1B, topo.Fig1R3},
	} {
		s, err := sim.Net.SeriesBetween(pair[0], pair[1])
		if err != nil {
			return nil, nil, err
		}
		res.Series = append(res.Series, s)
	}
	if len(sim.Domain.Errors) > 0 {
		return nil, nil, fmt.Errorf("controller: protocol errors: %v", sim.Domain.Errors)
	}
	return sim, res, nil
}
