package controller

import (
	"testing"
	"time"

	"fibbing.net/fibbing/internal/flashcrowd"
	"fibbing.net/fibbing/internal/topo"
)

// TestLinkFailureDuringAugmentedState is the stress case beyond the demo:
// the controller has already installed fB (ECMP at B); then the B-R3 link
// — which only exists in the forwarding state because of the lie — fails.
// The IGP must fall back to B-R2 without blackholing, and the controller —
// which learns of the failure from IGP flooding at dead-interval timescale
// — must re-plan around the dead link so full delivery returns. Healing
// must leave the network consistent (no stale failed-link state, no
// errors) with delivery still complete.
func TestLinkFailureDuringAugmentedState(t *testing.T) {
	sim, err := NewSim(SimOpts{WithCtrl: true})
	if err != nil {
		t.Fatal(err)
	}
	// 31 videos at B: enough to trigger the controller's local-ecmp move.
	err = sim.Runner.Schedule([]flashcrowd.Wave{
		{At: time.Second, Ingress: topo.Fig1B, Flows: 31, Rate: 0.5e6},
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.Run(15 * time.Second)
	if sim.Lies.LieCount() == 0 {
		t.Fatalf("controller did not react to the surge")
	}
	bR3, err := sim.Net.SeriesBetween("B", "R3")
	if err != nil {
		t.Fatal(err)
	}
	if bR3.At(14*time.Second) == 0 {
		t.Fatalf("B-R3 idle despite the lie")
	}

	// Fail B-R3 (control + data plane).
	if err := sim.SetLinkState("B", "R3", false); err != nil {
		t.Fatal(err)
	}
	sim.Run(30 * time.Second)

	// All traffic must be back on B-R2, capped at its capacity, with no
	// flow permanently blocked.
	blocked := 0
	for _, id := range sim.Runner.Flows() {
		if f := sim.Net.Flow(id); f == nil || f.Blocked() {
			blocked++
		}
	}
	if blocked != 0 {
		t.Fatalf("%d flows blackholed after failure", blocked)
	}
	if rate := bR3.At(29 * time.Second); rate != 0 {
		t.Fatalf("B-R3 still carrying %v byte/s while down", rate)
	}

	// The controller heard about the failure from the IGP (the dead
	// interval expires ~4s in) and reacted with a failover plan.
	reacted := false
	for _, d := range sim.Ctrl.Decisions {
		if d.At >= 15*time.Second {
			reacted = true
		}
	}
	if !reacted {
		t.Fatalf("controller never reacted to the failure: %+v", sim.Ctrl.Decisions)
	}

	// Heal: the link returns; the controller's replanned routing already
	// delivers everything, so the only requirement is consistency.
	if err := sim.SetLinkState("B", "R3", true); err != nil {
		t.Fatal(err)
	}
	sim.Run(50 * time.Second)
	if tt := sim.Net.TotalThroughput(); tt < 31*0.5e6*0.99 {
		t.Fatalf("full delivery not restored: %v", tt)
	}
	if len(sim.Ctrl.failed) != 0 {
		t.Fatalf("failed-link set not cleared after heal: %v", sim.Ctrl.failed)
	}
	if len(sim.Ctrl.Errors) > 0 {
		t.Fatalf("controller errors: %v", sim.Ctrl.Errors)
	}
	if len(sim.Domain.Errors) > 0 {
		t.Fatalf("protocol errors: %v", sim.Domain.Errors)
	}
}
