package controller

import (
	"testing"
	"time"

	"fibbing.net/fibbing/internal/flashcrowd"
	"fibbing.net/fibbing/internal/topo"
)

// TestLinkFailureDuringAugmentedState is the stress case beyond the demo:
// the controller has already installed fB (ECMP at B); then the B-R3 link
// — which only exists in the forwarding state because of the lie — fails.
// The IGP must fall back to B-R2 without blackholing, flows must keep
// being delivered (at the bottleneck rate), and healing must restore the
// split without any controller intervention.
func TestLinkFailureDuringAugmentedState(t *testing.T) {
	sim, err := NewSim(SimOpts{WithCtrl: true})
	if err != nil {
		t.Fatal(err)
	}
	// 31 videos at B: enough to trigger the controller's local-ecmp move.
	err = sim.Runner.Schedule([]flashcrowd.Wave{
		{At: time.Second, Ingress: topo.Fig1B, Flows: 31, Rate: 0.5e6},
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.Run(15 * time.Second)
	if sim.Lies.LieCount() == 0 {
		t.Fatalf("controller did not react to the surge")
	}
	bR3, err := sim.Net.SeriesBetween("B", "R3")
	if err != nil {
		t.Fatal(err)
	}
	if bR3.At(14*time.Second) == 0 {
		t.Fatalf("B-R3 idle despite the lie")
	}

	// Fail B-R3 (control + data plane).
	if err := sim.SetLinkState("B", "R3", false); err != nil {
		t.Fatal(err)
	}
	sim.Run(30 * time.Second)

	// All traffic must be back on B-R2, capped at its capacity, with no
	// flow permanently blocked.
	blocked := 0
	for _, id := range sim.Runner.Flows() {
		if f := sim.Net.Flow(id); f == nil || f.Blocked() {
			blocked++
		}
	}
	if blocked != 0 {
		t.Fatalf("%d flows blackholed after failure", blocked)
	}
	if rate := bR3.At(29 * time.Second); rate != 0 {
		t.Fatalf("B-R3 still carrying %v byte/s while down", rate)
	}
	if tt := sim.Net.TotalThroughput(); tt > topo.DefaultFig1Capacity*1.01 {
		t.Fatalf("throughput %v exceeds the single remaining path", tt)
	}

	// Heal: the fake path returns and the split resumes.
	if err := sim.SetLinkState("B", "R3", true); err != nil {
		t.Fatal(err)
	}
	sim.Run(50 * time.Second)
	if rate := bR3.At(49 * time.Second); rate == 0 {
		t.Fatalf("B-R3 idle after heal")
	}
	if tt := sim.Net.TotalThroughput(); tt < 31*0.5e6*0.99 {
		t.Fatalf("full delivery not restored: %v", tt)
	}
	if len(sim.Ctrl.Errors) > 0 {
		t.Fatalf("controller errors: %v", sim.Ctrl.Errors)
	}
	if len(sim.Domain.Errors) > 0 {
		t.Fatalf("protocol errors: %v", sim.Domain.Errors)
	}
}
