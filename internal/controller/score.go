package controller

import (
	"fmt"
	"math"
	"strings"

	"fibbing.net/fibbing/internal/fibbing"
	"fibbing.net/fibbing/internal/qoe"
	"fibbing.net/fibbing/internal/topo"
)

// ScoreMode selects what the planner optimises when scoring admissible
// plans. The zero value is the historical behaviour (max utilisation),
// so existing configurations are unchanged.
type ScoreMode int

const (
	// ScoreUtil scores plans on predicted max link utilisation alone
	// (the original planner order: target satisfaction, lie cost,
	// predicted utilisation).
	ScoreUtil ScoreMode = iota
	// ScoreQoE scores plans on predicted viewer pain first: fewer
	// stall-seconds beat a cooler link. Admissibility is restated in QoE
	// terms — a plan may exceed the utilisation target only if its
	// predicted stall-seconds strictly improve on the no-op plan.
	ScoreQoE
	// ScoreBlended keeps utilisation-target satisfaction as the first
	// criterion (as ScoreUtil) but breaks ties on predicted
	// stall-seconds before lie cost.
	ScoreBlended
)

// String returns the flag-format name ("util", "qoe", "blended").
func (m ScoreMode) String() string {
	switch m {
	case ScoreQoE:
		return "qoe"
	case ScoreBlended:
		return "blended"
	default:
		return "util"
	}
}

// ParseScoreMode resolves the flag-format name, case-insensitively.
// Empty means ScoreUtil.
func ParseScoreMode(s string) (ScoreMode, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "util", "utilisation", "utilization":
		return ScoreUtil, nil
	case "qoe":
		return ScoreQoE, nil
	case "blended", "blend":
		return ScoreBlended, nil
	}
	return ScoreUtil, fmt.Errorf("controller: unknown score mode %q (want util, qoe or blended)", s)
}

// WithQoE equips a context with the viewer model: it installs the
// memoised stall predictor (the QoE sibling of Evaluate) and the no-op
// plan's baseline score the admissibility restatement compares against.
// Call it after buildPlanContext, before planning; contexts without it
// plan exactly as before (qoe-greedy abstains, scoring falls back to
// utilisation terms).
func (ctx PlanContext) WithQoE(model qoe.Model) PlanContext {
	ctx.QoEModel = model
	ctx.PredictQoE, ctx.qoeModelKey = newQoEPredictor(ctx.Artifacts, ctx.Topo, ctx.Installed, ctx.Demands, model)
	if len(ctx.Demands) == 0 {
		return ctx
	}
	if q, err := ctx.PredictQoE(nil); err == nil {
		ctx.BaseStall = q.Score()
	} else {
		ctx.BaseStall = math.Inf(1)
	}
	return ctx
}

// newQoEPredictor builds the PlanContext.PredictQoE closure: the same
// overlay semantics as Evaluate (a present key replaces that prefix's
// installed lies, empty clears them), mapped through the analytic
// delivery model to a plan-level QoE prediction. Memoised on the merged
// lie set when an artifact cache is bound to t; the returned modelKey is
// that cache's encoding of the model (empty without a usable cache).
func newQoEPredictor(arts *PlanArtifacts, t *topo.Topology, installed map[string][]fibbing.Lie,
	demands []topo.Demand, model qoe.Model) (func(map[string][]fibbing.Lie) (qoe.PlanQoE, error), string) {
	if arts != nil && arts.topo != t {
		arts = nil // bound elsewhere; compute directly
	}
	var modelKey string
	if arts != nil {
		// The model never changes within one planning context: encode its
		// part of the memo key once instead of on every candidate lookup.
		var sb strings.Builder
		encodeModel(&sb, model)
		modelKey = sb.String()
	}
	predict := func(overlay map[string][]fibbing.Lie) (qoe.PlanQoE, error) {
		merged := make(map[string][]fibbing.Lie, len(installed)+len(overlay))
		for prefix, lies := range installed {
			merged[prefix] = lies
		}
		for prefix, lies := range overlay {
			if len(lies) == 0 {
				delete(merged, prefix)
				continue
			}
			merged[prefix] = lies
		}
		if arts != nil {
			return arts.predictQoEKeyed(modelKey, merged, demands, model)
		}
		views := make(map[string]map[topo.NodeID]fibbing.RouteView)
		for _, d := range demands {
			if _, ok := views[d.PrefixName]; ok {
				continue
			}
			v, err := fibbing.Evaluate(t, d.PrefixName, merged[d.PrefixName])
			if err != nil {
				return qoe.PlanQoE{}, err
			}
			views[d.PrefixName] = v
		}
		return qoe.PredictPlan(t, views, demands, model)
	}
	return predict, modelKey
}
