package controller

import (
	"fibbing.net/fibbing/internal/monitor"
	"fibbing.net/fibbing/internal/topo"
)

// EventKind enumerates what can drive the controller.
type EventKind int

const (
	// EventAlarmRaised: the monitor saw a link cross its high threshold.
	EventAlarmRaised EventKind = iota
	// EventAlarmCleared: the link dropped below the low threshold.
	EventAlarmCleared
	// EventDemandChanged: a video session joined (positive DeltaRate) or
	// left (negative DeltaRate) at an ingress.
	EventDemandChanged
	// EventLinkDown: a BFD session declared a link dead, milliseconds
	// after the failure — long before the SNMP poller or the IGP dead
	// interval would notice.
	EventLinkDown
	// EventLinkUp: a BFD session re-established (and cleared flap
	// damping) on a previously failed link.
	EventLinkUp
)

// String names the kind for logs.
func (k EventKind) String() string {
	switch k {
	case EventAlarmRaised:
		return "alarm-raised"
	case EventAlarmCleared:
		return "alarm-cleared"
	case EventDemandChanged:
		return "demand-changed"
	case EventLinkDown:
		return "link-down"
	case EventLinkUp:
		return "link-up"
	}
	return "unknown"
}

// Event is the controller's typed input: the monitor and the video
// servers produce events, Controller.Handle consumes them. Replaces the
// bare method callbacks (HandleAlarm / ClientJoined / ClientLeft) so
// every harness drives one engine through one entry point.
type Event struct {
	Kind EventKind
	// Alarm is set for EventAlarmRaised / EventAlarmCleared.
	Alarm monitor.Alarm
	// Prefix / Ingress / DeltaRate describe an EventDemandChanged:
	// DeltaRate bit/s joined (positive) or left (negative) the demand
	// aggregate for Prefix at Ingress.
	Prefix    string
	Ingress   topo.NodeID
	DeltaRate float64
	// Link is set for EventLinkDown / EventLinkUp: the failed (or
	// recovered) link, in the controller topology's ID space.
	Link topo.Link
}

// AlarmEvent wraps a monitor alarm into the matching event.
func AlarmEvent(a monitor.Alarm) Event {
	kind := EventAlarmCleared
	if a.Raised {
		kind = EventAlarmRaised
	}
	return Event{Kind: kind, Alarm: a}
}

// DemandEvent builds a demand-change event; rate is positive for a join,
// negative for a leave.
func DemandEvent(prefix string, ingress topo.NodeID, rate float64) Event {
	return Event{Kind: EventDemandChanged, Prefix: prefix, Ingress: ingress, DeltaRate: rate}
}

// LinkDownEvent wraps a liveness-detected link failure.
func LinkDownEvent(l topo.Link) Event { return Event{Kind: EventLinkDown, Link: l} }

// LinkUpEvent wraps a liveness-detected link recovery.
func LinkUpEvent(l topo.Link) Event { return Event{Kind: EventLinkUp, Link: l} }
