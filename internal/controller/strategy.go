package controller

import (
	"fmt"
	"slices"
	"strings"

	"fibbing.net/fibbing/internal/fibbing"
	"fibbing.net/fibbing/internal/qoe"
	"fibbing.net/fibbing/internal/spf"
	"fibbing.net/fibbing/internal/te"
	"fibbing.net/fibbing/internal/topo"
)

// PlanContext is everything a Strategy may consult when proposing a
// reaction: the topology, the demand model, the lies currently installed,
// the triggering event (with its alarm), the controller's policy knobs,
// and a predicted-utilisation evaluator. The context is immutable and
// Evaluate is safe for concurrent use, so the Planner can fan strategies
// out in parallel.
type PlanContext struct {
	Topo *topo.Topology
	// Artifacts is the shared memoisation layer for the expensive
	// planner inputs (SPF trees, k-shortest paths, believed-topology
	// compilations, LP solves, load estimates). May be nil, or bound to
	// a different topology than Topo; strategies access it through the
	// SPFTree/KShortestPaths/PrefixViews/SolveMinMax helpers, which fall
	// back to direct computation in either case.
	Artifacts *PlanArtifacts
	// Event is what triggered planning; Event.Alarm carries the hot link
	// for raise events.
	Event Event
	// Demands is the current demand model snapshot; Prefixes the sorted
	// prefix names with non-zero demand.
	Demands  []topo.Demand
	Prefixes []string
	// Installed snapshots the live lies per prefix.
	Installed map[string][]fibbing.Lie
	// RaisedAlarms counts links with an active congestion alarm.
	RaisedAlarms int
	// FailedLink and BaseTopo are set for EventLinkDown planning
	// (standby.go): Topo is then the reduced topology (failed link
	// removed, where traffic will physically flow) and BaseTopo the
	// pre-failure one the routers still believe in — failover lies must
	// compile and verify against BaseTopo to take effect before the IGP
	// converges. FailedLink lives in BaseTopo's ID space.
	FailedLink topo.Link
	BaseTopo   *topo.Topology
	// BaseUtil is the predicted max utilisation of the no-op plan:
	// current demands routed over the installed lies.
	BaseUtil float64
	// Policy knobs (resolved, no sentinels).
	Target        float64
	WithdrawBelow float64
	MaxDenom      int
	MaxLPRouters  int
	// Evaluate predicts the max link utilisation of routing Demands with
	// the installed lies overlaid by the given per-prefix sets: a present
	// key replaces that prefix's installed lies (empty clears them),
	// absent prefixes keep theirs. Evaluate(nil) == BaseUtil.
	Evaluate func(overlay map[string][]fibbing.Lie) (float64, error)
	// ScoreMode selects the planner's scoring order (utilisation, QoE,
	// or blended); see the ScoreMode constants.
	ScoreMode ScoreMode
	// QoEModel describes the viewer population (member counts per
	// aggregate, playback model) when QoE scoring is active; zero
	// otherwise. Set by WithQoE.
	QoEModel qoe.Model
	// BaseStall is PredictQoE(nil).Score(): the no-op plan's predicted
	// viewer pain, the baseline for QoE-terms admissibility. Zero when
	// PredictQoE is nil.
	BaseStall float64
	// PredictQoE is Evaluate's QoE sibling: the predicted aggregate
	// viewer experience under the overlaid lies (same overlay semantics).
	// Nil unless WithQoE equipped the context; strategies and scoring
	// must treat nil as "QoE unavailable" and fall back to utilisation.
	PredictQoE func(overlay map[string][]fibbing.Lie) (qoe.PlanQoE, error)
	// qoeModelKey is the memo-key encoding of QoEModel, computed once by
	// WithQoE so per-candidate and per-proposal cache lookups never
	// re-encode the (unchanging) viewer model. Empty when PredictQoE is
	// nil or no artifact cache is bound.
	qoeModelKey string
}

// cachedArts returns the artifact cache when it is usable for this
// context's topology, nil otherwise (e.g. a failover context whose
// cache is bound to the reduced topology while a helper is asked about
// BaseTopo would miss the binding check and compute directly).
func (ctx *PlanContext) cachedArts() *PlanArtifacts {
	if ctx.Artifacts != nil && ctx.Artifacts.topo == ctx.Topo {
		return ctx.Artifacts
	}
	return nil
}

// SPFGraph returns the context topology's SPF graph and host-skip,
// memoised when an artifact cache is bound.
func (ctx *PlanContext) SPFGraph() (*spf.Graph, func(topo.NodeID) bool) {
	if a := ctx.cachedArts(); a != nil {
		return a.Graph()
	}
	return spf.FromTopology(ctx.Topo), spf.HostSkip(ctx.Topo)
}

// SPFTree returns the shortest-path tree rooted at src, memoised per
// source when an artifact cache is bound.
func (ctx *PlanContext) SPFTree(src topo.NodeID) *spf.Tree {
	if a := ctx.cachedArts(); a != nil {
		return a.Tree(src)
	}
	g, skip := ctx.SPFGraph()
	return spf.Compute(g, src, skip)
}

// KShortestPaths returns up to k loopless shortest paths src->dst (Yen
// with the given spur limit), memoised per query when an artifact cache
// is bound.
func (ctx *PlanContext) KShortestPaths(src, dst topo.NodeID, k, spurLimit int) [][]topo.NodeID {
	if a := ctx.cachedArts(); a != nil {
		return a.KShortest(src, dst, k, spurLimit)
	}
	g, skip := ctx.SPFGraph()
	return spf.KShortestSpurLimit(g, src, dst, k, spurLimit, skip)
}

// PrefixViews returns the believed-topology route views for one prefix
// under the given lie set (nil lies = the plain IGP view), memoised when
// an artifact cache is bound. The returned map is shared: read-only.
func (ctx *PlanContext) PrefixViews(prefix string, lies []fibbing.Lie) (map[topo.NodeID]fibbing.RouteView, error) {
	if a := ctx.cachedArts(); a != nil {
		return a.Views(prefix, lies)
	}
	return fibbing.Evaluate(ctx.Topo, prefix, lies)
}

// SolveMinMax returns the min-max LP optimum for the context's demands,
// memoised — and warm-started across demand changes — when an artifact
// cache is bound.
func (ctx *PlanContext) SolveMinMax() (*te.MinMaxResult, error) {
	if a := ctx.cachedArts(); a != nil {
		return a.SolveMinMax(ctx.Demands)
	}
	return te.SolveMinMax(ctx.Topo, ctx.Demands)
}

// CompileDAG compiles and verifies a requirement DAG into lies (add-paths
// first, pin-all + reduction when paths must be removed), memoised when
// an artifact cache is bound. The returned augmentation is shared with
// the cache — treat it as read-only.
func (ctx *PlanContext) CompileDAG(prefix string, dag fibbing.DAG) (*fibbing.Augmentation, bool, error) {
	if a := ctx.cachedArts(); a != nil {
		return a.CompileDAG(prefix, dag)
	}
	return compileDAG(ctx.Topo, prefix, dag)
}

// Plan is one strategy's proposed reaction: typed per-prefix lie sets
// plus the prediction that justifies them.
type Plan struct {
	// Strategy is the proposing strategy's Name().
	Strategy string
	// Lies is the desired lie set per prefix. A present key replaces the
	// prefix's installed lies on commit (empty withdraws them all);
	// absent prefixes are untouched.
	Lies map[string][]fibbing.Lie
	// PredictedUtil is Evaluate(Lies): the max utilisation this plan is
	// predicted to leave.
	PredictedUtil float64
	// PredictedStall is PredictQoE(Lies).Score(): the total predicted
	// viewer pain (stall + startup-wait seconds) this plan is predicted
	// to leave. Filled by the Planner before scoring when QoE scoring is
	// active; zero otherwise.
	PredictedStall float64
	// LieCost is the total number of live lies after committing the plan
	// (filled by the Planner before scoring).
	LieCost int
	// Rationale is a human-readable justification for logs and reports.
	Rationale string
}

// TotalLies counts the lies the plan installs across prefixes.
func (p *Plan) TotalLies() int {
	n := 0
	for _, lies := range p.Lies {
		n += len(lies)
	}
	return n
}

// Prefixes returns the sorted prefixes the plan touches.
func (p *Plan) Prefixes() []string {
	out := make([]string, 0, len(p.Lies))
	for prefix := range p.Lies {
		out = append(out, prefix)
	}
	slices.Sort(out)
	return out
}

// Strategy is one pluggable reaction policy. Propose must be pure: it
// reads the context and returns a candidate plan (nil when the strategy
// has nothing to offer for this event), never touching shared state — the
// Planner runs all registered strategies concurrently.
type Strategy interface {
	Name() string
	Propose(ctx PlanContext) (*Plan, error)
}

// DefaultStrategies is the stock strategy set, in priority (registration)
// order: local ECMP spreading, the LP-optimal splits, k-shortest-path
// spreading, QoE-greedy crowd placement (active only under QoE scoring),
// and lie withdrawal.
func DefaultStrategies() []Strategy {
	return []Strategy{LocalECMPStrategy{}, LPOptimalStrategy{}, KSPStrategy{}, QoEGreedyStrategy{}, WithdrawStrategy{}}
}

// StrategyByName resolves a stock strategy from its name. Matching is
// case-insensitive and ignores '-'/'_', so "localecmp" == "local-ecmp".
func StrategyByName(name string) (Strategy, bool) {
	for _, s := range DefaultStrategies() {
		if normalizeStrategyName(s.Name()) == normalizeStrategyName(name) {
			return s, true
		}
	}
	return nil, false
}

// StrategiesByName resolves a list of stock strategy names. The withdraw
// strategy is appended when absent: it is the lie lifecycle's exit path,
// not a reaction choice, so selecting reaction strategies must not leak
// lies forever.
func StrategiesByName(names []string) ([]Strategy, error) {
	var out []Strategy
	haveWithdraw := false
	for _, name := range names {
		s, ok := StrategyByName(name)
		if !ok {
			return nil, fmt.Errorf("controller: unknown strategy %q (stock: %s)",
				name, strings.Join(StrategyNames(DefaultStrategies()), ", "))
		}
		if _, isW := s.(WithdrawStrategy); isW {
			haveWithdraw = true
		}
		out = append(out, s)
	}
	if len(out) > 0 && !haveWithdraw {
		out = append(out, WithdrawStrategy{})
	}
	return out, nil
}

// ParseStrategies resolves a comma-separated strategy list (the cmd-line
// flag format, e.g. "localecmp,ksp,lpoptimal").
func ParseStrategies(csv string) ([]Strategy, error) {
	if strings.TrimSpace(csv) == "" {
		return nil, nil
	}
	var names []string
	for _, f := range strings.Split(csv, ",") {
		if f = strings.TrimSpace(f); f != "" {
			names = append(names, f)
		}
	}
	return StrategiesByName(names)
}

// StrategyNames lists the names of a strategy set.
func StrategyNames(strategies []Strategy) []string {
	out := make([]string, len(strategies))
	for i, s := range strategies {
		out[i] = s.Name()
	}
	return out
}

func normalizeStrategyName(name string) string {
	return strings.Map(func(r rune) rune {
		if r == '-' || r == '_' {
			return -1
		}
		return r
	}, strings.ToLower(name))
}

// --- local-ecmp ---------------------------------------------------------

// LocalECMPStrategy is the demo's first move (Figure 1c's fB): at the hot
// link's head router, add every unused downhill neighbor as an equal-cost
// path, for each prefix with demand.
type LocalECMPStrategy struct{}

// Name implements Strategy.
func (LocalECMPStrategy) Name() string { return "local-ecmp" }

// Propose implements Strategy.
func (s LocalECMPStrategy) Propose(ctx PlanContext) (*Plan, error) {
	if ctx.Event.Kind != EventAlarmRaised || len(ctx.Demands) == 0 {
		return nil, nil
	}
	hot := ctx.Topo.Link(ctx.Event.Alarm.Link).From
	overlay := make(map[string][]fibbing.Lie)
	for _, prefix := range ctx.Prefixes {
		views, err := ctx.PrefixViews(prefix, nil)
		if err != nil {
			continue
		}
		lies, ok := localSpreadLies(ctx.Topo, views, prefix, hot)
		if ok {
			overlay[prefix] = lies
		}
	}
	if len(overlay) == 0 {
		return nil, nil
	}
	util, err := ctx.Evaluate(overlay)
	if err != nil {
		return nil, fmt.Errorf("local-ecmp: %w", err)
	}
	return &Plan{
		Strategy:      s.Name(),
		Lies:          overlay,
		PredictedUtil: util,
		Rationale: fmt.Sprintf("ECMP at %s after %s hit %.0f%%",
			ctx.Topo.Name(hot), ctx.Event.Alarm.Name, 100*ctx.Event.Alarm.Utilisation),
	}, nil
}

// localSpreadLies builds the local-spreading requirement for one prefix:
// the hot router keeps its IGP next hops and adds every unused downhill
// neighbor, evenly. views is the prefix's plain-IGP view set (the caller
// fetches it, memoised, through ctx.PrefixViews). ok is false when no
// spread exists or it fails to compile/verify.
func localSpreadLies(t *topo.Topology, views map[topo.NodeID]fibbing.RouteView, prefix string, hot topo.NodeID) ([]fibbing.Lie, bool) {
	hv, ok := views[hot]
	if !ok || hv.Local || len(hv.NextHops) == 0 {
		return nil, false
	}
	desired := fibbing.NextHopWeights{}
	for nh := range hv.NextHops {
		desired[nh] = 1
	}
	added := false
	for _, lid := range t.OutLinks(hot) {
		v := t.Link(lid).To
		if t.Node(v).Host || desired[v] > 0 {
			continue
		}
		vv, ok := views[v]
		if !ok {
			continue
		}
		if vv.Local || (len(vv.NextHops) > 0 && vv.Dist < hv.Dist) {
			desired[v] = 1
			added = true
		}
	}
	if !added {
		return nil, false
	}
	dag := fibbing.DAG{hot: desired}
	aug, err := fibbing.AugmentAddPaths(t, prefix, dag)
	if err != nil {
		return nil, false
	}
	if err := fibbing.Verify(t, prefix, aug.Lies, dag); err != nil {
		return nil, false
	}
	return aug.Lies, true
}

// --- lp-optimal ---------------------------------------------------------

// LPOptimalStrategy is the demo's second move (Figure 1d's fA pair):
// solve the min-max utilisation LP over all demands, quantise the splits,
// and realise them with equal-cost lies (or pin-all when the optimum
// removes IGP paths). The MaxLPRouters guard is folded in: on larger
// topologies the dense simplex would stall the control loop, so the
// strategy abstains.
type LPOptimalStrategy struct{}

// Name implements Strategy.
func (LPOptimalStrategy) Name() string { return "lp-optimal" }

// Propose implements Strategy.
func (s LPOptimalStrategy) Propose(ctx PlanContext) (*Plan, error) {
	if ctx.Event.Kind != EventAlarmRaised || len(ctx.Demands) == 0 {
		return nil, nil
	}
	if n := routerCount(ctx.Topo); n > ctx.MaxLPRouters {
		return nil, nil // guard: abstain rather than stall
	}
	opt, err := ctx.SolveMinMax()
	if err != nil {
		return nil, fmt.Errorf("lp-optimal: %w", err)
	}
	overlay := make(map[string][]fibbing.Lie)
	pinned := false
	for _, prefix := range ctx.Prefixes {
		dag, err := fibbing.SplitsToDAG(opt.Splits[prefix], ctx.MaxDenom)
		if err != nil {
			return nil, fmt.Errorf("lp-optimal: %s: %w", prefix, err)
		}
		// Drop attachment routers from the DAG: their delivery is local.
		p, _ := ctx.Topo.PrefixByName(prefix)
		for _, at := range p.Attachments {
			delete(dag, at.Node)
		}
		aug, wasPinned, err := ctx.CompileDAG(prefix, dag)
		if err != nil {
			return nil, fmt.Errorf("lp-optimal: %s: %w", prefix, err)
		}
		pinned = pinned || wasPinned
		overlay[prefix] = aug.Lies
	}
	util, err := ctx.Evaluate(overlay)
	if err != nil {
		return nil, fmt.Errorf("lp-optimal: %w", err)
	}
	rationale := fmt.Sprintf("θ*=%.3f after %s hit %.0f%%",
		opt.MaxUtilisation, ctx.Event.Alarm.Name, 100*ctx.Event.Alarm.Utilisation)
	if pinned {
		rationale += " (pinned)"
	}
	return &Plan{Strategy: s.Name(), Lies: overlay, PredictedUtil: util, Rationale: rationale}, nil
}

// compileDAG turns a requirement DAG into verified lies: first as pure
// path additions, then — when the requirement removes IGP paths — by
// pinning all constrained routers and reducing the lie set.
func compileDAG(t *topo.Topology, prefix string, dag fibbing.DAG) (*fibbing.Augmentation, bool, error) {
	aug, err := fibbing.AugmentAddPaths(t, prefix, dag)
	pinned := false
	if err != nil {
		aug, err = fibbing.AugmentPinAll(t, prefix, dag)
		if err != nil {
			return nil, false, err
		}
		aug, err = fibbing.ReduceLies(t, prefix, aug, dag)
		if err != nil {
			return nil, false, err
		}
		pinned = true
	}
	if err := fibbing.Verify(t, prefix, aug.Lies, dag); err != nil {
		return nil, false, fmt.Errorf("refusing unverifiable augmentation: %w", err)
	}
	return aug, pinned, nil
}

func routerCount(t *topo.Topology) int {
	n := 0
	for _, node := range t.Nodes() {
		if !node.Host {
			n++
		}
	}
	return n
}

// --- ksp ----------------------------------------------------------------

// KSPStrategy spreads over up to K loopless shortest paths (Yen's
// algorithm on spf.KShortest) from the hot link's head router towards
// each prefix's nearest attachment, pinning the detour paths hop by hop.
// Unlike local-ecmp it can recruit *uphill* detours — paths whose first
// hop is further from the destination — which is what rings and other
// low-diversity topologies need; unlike lp-optimal it stays cheap on
// topologies beyond the LP guard.
type KSPStrategy struct {
	// K is the number of loopless paths to consider (default 4).
	K int
	// SpurLimit bounds Yen's spur scan to the first nodes of each parent
	// path (default 8; negative means unbounded). Deviations near the
	// hot router are the exploitable ones, and the bound keeps the
	// per-alarm search cheap on large sparse topologies.
	SpurLimit int
}

// Name implements Strategy.
func (KSPStrategy) Name() string { return "ksp" }

// Propose implements Strategy.
func (s KSPStrategy) Propose(ctx PlanContext) (*Plan, error) {
	if ctx.Event.Kind != EventAlarmRaised || len(ctx.Demands) == 0 {
		return nil, nil
	}
	k := s.K
	if k <= 0 {
		k = 4
	}
	spurLimit := s.SpurLimit
	switch {
	case spurLimit == 0:
		spurLimit = 8
	case spurLimit < 0:
		spurLimit = 0 // unbounded
	}
	hot := ctx.Topo.Link(ctx.Event.Alarm.Link).From
	tree := ctx.SPFTree(hot)

	overlay := make(map[string][]fibbing.Lie)
	pathsUsed := 0
	for _, prefix := range ctx.Prefixes {
		p, ok := ctx.Topo.PrefixByName(prefix)
		if !ok {
			continue
		}
		dst, ok := nearestAttachment(tree, p)
		if !ok || dst == hot {
			continue
		}
		paths := ctx.KShortestPaths(hot, dst, k, spurLimit)
		if len(paths) < 2 {
			continue // no alternative beyond the IGP path
		}
		// Greedy accumulation: add paths in cost order, keeping each only
		// if the combined DAG still compiles and verifies (a detour that
		// would loop against an already-accepted path is skipped).
		var dag fibbing.DAG
		var aug *fibbing.Augmentation
		accepted := 0
		for _, path := range paths {
			cand := addPathToDAG(dag, path)
			a, _, err := ctx.CompileDAG(prefix, normalizeDAG(cand))
			if err != nil {
				continue
			}
			dag, aug, accepted = cand, a, accepted+1
		}
		if accepted < 2 || aug == nil {
			continue
		}
		overlay[prefix] = aug.Lies
		pathsUsed += accepted
	}
	if len(overlay) == 0 {
		return nil, nil
	}
	util, err := ctx.Evaluate(overlay)
	if err != nil {
		return nil, fmt.Errorf("ksp: %w", err)
	}
	return &Plan{
		Strategy:      s.Name(),
		Lies:          overlay,
		PredictedUtil: util,
		Rationale: fmt.Sprintf("%d loopless paths from %s after %s hit %.0f%%",
			pathsUsed, ctx.Topo.Name(hot), ctx.Event.Alarm.Name, 100*ctx.Event.Alarm.Utilisation),
	}, nil
}

// nearestAttachment picks the prefix attachment closest to the tree's
// source (the hot router).
func nearestAttachment(tree *spf.Tree, p topo.Prefix) (topo.NodeID, bool) {
	best, bestDist := topo.NodeID(0), spf.Infinity
	found := false
	for _, at := range p.Attachments {
		if int(at.Node) >= len(tree.Dist) {
			continue
		}
		if d := tree.Dist[at.Node]; d < bestDist {
			best, bestDist, found = at.Node, d, true
		}
	}
	return best, found
}

// addPathToDAG overlays one path onto a copy of the DAG: every hop gets
// weight proportional to the number of accepted paths crossing it.
func addPathToDAG(dag fibbing.DAG, path []topo.NodeID) fibbing.DAG {
	out := make(fibbing.DAG, len(dag)+len(path))
	for u, nhs := range dag {
		cp := make(fibbing.NextHopWeights, len(nhs))
		for v, w := range nhs {
			cp[v] = w
		}
		out[u] = cp
	}
	for i := 0; i+1 < len(path); i++ {
		u, v := path[i], path[i+1]
		if out[u] == nil {
			out[u] = fibbing.NextHopWeights{}
		}
		out[u][v]++
	}
	return out
}

// normalizeDAG divides each router's weights by their GCD, so shared path
// segments do not inflate the lie count (weight {2} ≡ weight {1}).
func normalizeDAG(dag fibbing.DAG) fibbing.DAG {
	out := make(fibbing.DAG, len(dag))
	for u, nhs := range dag {
		g := 0
		for _, w := range nhs {
			g = gcd(g, w)
		}
		if g <= 1 {
			out[u] = nhs
			continue
		}
		cp := make(fibbing.NextHopWeights, len(nhs))
		for v, w := range nhs {
			cp[v] = w / g
		}
		out[u] = cp
	}
	return out
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// --- withdraw -----------------------------------------------------------

// WithdrawStrategy is the lifecycle exit: once every alarm has cleared
// and plain IGP routing would stay below the withdraw threshold for the
// current demands, it proposes clearing every installed lie, returning
// the network to pure IGP routing (as Fibbing prescribes).
type WithdrawStrategy struct{}

// Name implements Strategy.
func (WithdrawStrategy) Name() string { return "withdraw" }

// Propose implements Strategy.
func (s WithdrawStrategy) Propose(ctx PlanContext) (*Plan, error) {
	if ctx.Event.Kind != EventAlarmCleared || ctx.RaisedAlarms > 0 || len(ctx.Installed) == 0 {
		return nil, nil
	}
	if ctx.WithdrawBelow <= 0 {
		return nil, nil // explicit zero: never withdraw
	}
	overlay := make(map[string][]fibbing.Lie, len(ctx.Installed))
	for prefix := range ctx.Installed {
		overlay[prefix] = nil
	}
	util, err := ctx.Evaluate(overlay) // pure IGP routing
	if err != nil {
		return nil, fmt.Errorf("withdraw: %w", err)
	}
	if len(ctx.Demands) > 0 && util > ctx.WithdrawBelow {
		return nil, nil // IGP alone would congest again; keep the lies
	}
	return &Plan{
		Strategy:      s.Name(),
		Lies:          overlay,
		PredictedUtil: util,
		Rationale:     "surge over; network back to pure IGP",
	}, nil
}
