package controller

// Regression and property tests for planner scale invariance: the
// pipeline (LP -> splits -> quantisation -> admissibility) used to stall
// above ~1 Gbit/s demand volumes — alarms fired but no strategy's plan
// was admissible, because the simplex terminated at a wrong vertex on
// large-magnitude coefficients (the old ROADMAP ceiling).

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"

	"fibbing.net/fibbing/internal/te"
	"fibbing.net/fibbing/internal/topo"
)

// abileneAtScale builds the ROADMAP repro: Abilene with uniform link
// capacity and proportional demands overloading the northern route.
func abileneAtScale(capacity float64) (*topo.Topology, []topo.Demand) {
	tp := topo.Abilene(capacity, time.Millisecond)
	demands := []topo.Demand{
		{Ingress: tp.MustNode("Seattle"), PrefixName: "cdn-east", Volume: 0.9 * capacity},
		{Ingress: tp.MustNode("LosAngeles"), PrefixName: "cdn-east", Volume: 0.6 * capacity},
		{Ingress: tp.MustNode("Chicago"), PrefixName: "cdn-west", Volume: 0.7 * capacity},
	}
	return tp, demands
}

// planAtScale runs the full planner fan-out against the hottest-link
// alarm and returns the winning plan (nil when nothing commits).
func planAtScale(t *testing.T, capacity float64) *Plan {
	t.Helper()
	tp, demands := abileneAtScale(capacity)
	loads, err := te.IGPLoads(tp, demands)
	if err != nil {
		t.Fatal(err)
	}
	alarm, ok := HottestLinkAlarm(tp, loads)
	if !ok {
		t.Fatal("no capacitated link")
	}
	ctx := AnalyticPlanContext(tp, demands, nil, AlarmEvent(alarm), Config{})
	plan, errs := NewPlanner().Plan(ctx)
	for _, err := range errs {
		t.Errorf("capacity %s: %v", topo.FormatBits(capacity), err)
	}
	return plan
}

// TestPlannerGbitAbileneRegression reproduces the exact failure the
// ROADMAP tracked: on Abilene with Capacity >= 1e9 and proportional
// demands, alarms fired but no strategy's plan committed. At least one
// plan must now commit, and it must actually relieve the congestion.
func TestPlannerGbitAbileneRegression(t *testing.T) {
	for _, capacity := range []float64{1e9, 10e9} {
		plan := planAtScale(t, capacity)
		if plan == nil {
			t.Fatalf("capacity %s: no plan commits (the old ceiling is back)", topo.FormatBits(capacity))
		}
		if plan.PredictedUtil > 0.9 {
			t.Fatalf("capacity %s: winner %s leaves util %v, want < base 0.9",
				topo.FormatBits(capacity), plan.Strategy, plan.PredictedUtil)
		}
	}
}

// TestDemandDrainAtScale: 100k small joins accumulating to ~1 Gbit/s,
// then 100k matching leaves, must leave the demand model empty — the
// residual is accumulated float roundoff proportional to the peak
// magnitude, and a cutoff keyed only to the per-event delta would keep
// a phantom ingress alive for the planner to chase.
func TestDemandDrainAtScale(t *testing.T) {
	tp, _ := abileneAtScale(10e9)
	ctrl := New(tp, nil, func() time.Duration { return 0 })
	// Heterogeneous rates, leaves in a different order than joins: the
	// add/subtract sequence does not telescope, so the residual is real
	// roundoff at the accumulated ~1 Gbit/s magnitude (seed 9 is pinned
	// to one where that residual exceeds 1e-9x the final leave's rate —
	// the exact case a delta-keyed cutoff misses).
	r := rand.New(rand.NewSource(9))
	const sessions = 100_000
	rates := make([]float64, sessions)
	for i := range rates {
		rates[i] = 1e9 / sessions * (0.5 + r.Float64())
	}
	ingress := tp.MustNode("Seattle")
	for _, rate := range rates {
		ctrl.ClientJoined("cdn-east", ingress, rate)
	}
	r.Shuffle(sessions, func(i, j int) { rates[i], rates[j] = rates[j], rates[i] })
	for _, rate := range rates {
		ctrl.ClientLeft("cdn-east", ingress, rate)
	}
	if ds := ctrl.Demands(); len(ds) != 0 {
		t.Fatalf("demand model not empty after full drain: %+v", ds)
	}
}

// TestPlannerScaleSweep is the scale-invariance property: the same
// relative problem, with volumes swept from 1e6 to 1e11, must always
// commit a plan, select the same strategy, and predict the same
// (dimensionless) utilisation.
func TestPlannerScaleSweep(t *testing.T) {
	ref := planAtScale(t, 10e6)
	if ref == nil {
		t.Fatal("reference scale 10e6: no plan commits")
	}
	for _, capacity := range []float64{1e6, 1e8, 1e9, 1e10, 1e11} {
		capacity := capacity
		t.Run(fmt.Sprintf("capacity=%s", topo.FormatBits(capacity)), func(t *testing.T) {
			plan := planAtScale(t, capacity)
			if plan == nil {
				t.Fatalf("no plan commits at %s", topo.FormatBits(capacity))
			}
			if plan.Strategy != ref.Strategy {
				t.Errorf("strategy %q, want %q (scale changed the decision)", plan.Strategy, ref.Strategy)
			}
			if d := math.Abs(plan.PredictedUtil - ref.PredictedUtil); d > 1e-6 {
				t.Errorf("predicted util %v, want %v (Δ %g)", plan.PredictedUtil, ref.PredictedUtil, d)
			}
			if plan.TotalLies() != ref.TotalLies() {
				t.Errorf("plan installs %d lies, reference installs %d", plan.TotalLies(), ref.TotalLies())
			}
		})
	}
}
