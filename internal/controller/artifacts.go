package controller

// The planner's amortisation layer. Every strategy in a ProposeAll
// fan-out — and every successive planner invocation between state
// changes — used to recompute the same expensive inputs from scratch:
// per-source SPF trees, Yen k-shortest-path sets, the believed-topology
// compilation (fibbing.Evaluate: one SPF per router per prefix), and the
// fluid load estimates behind PlanContext.Evaluate. PlanArtifacts
// memoises all of them, keyed by value-complete cache keys (topology
// binding by pointer, lie sets and demand volumes encoded into the key),
// so a stale entry is impossible by construction; the controller
// additionally drops the whole cache whenever its generation triple
// (topology gen, demand gen, lie gen — the same triple the standby cache
// tracks) moves, which bounds memory to one planning epoch.
//
// Hit/miss accounting is deterministic under concurrency: a lookup that
// finds an entry counts a hit immediately, and a computed result counts
// a miss only if it inserts a new key at store time — when two strategies
// race to compute the same key, exactly one miss is recorded regardless
// of interleaving, so the counters are byte-identical across scheduler
// worker widths and safe to publish in scenario Reports.

import (
	"slices"
	"strconv"
	"strings"
	"sync"

	"fibbing.net/fibbing/internal/fibbing"
	"fibbing.net/fibbing/internal/qoe"
	"fibbing.net/fibbing/internal/spf"
	"fibbing.net/fibbing/internal/te"
	"fibbing.net/fibbing/internal/topo"
)

// ArtifactStats counts PlanArtifacts cache traffic. Hits and Misses are
// deterministic for a given event sequence (see the package comment on
// store-time accounting), so they appear in scenario Reports unscrubbed.
type ArtifactStats struct {
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	// QoEHits/QoEMisses count the QoE-prediction memo separately from the
	// routing artifacts: the predictor is consulted once per candidate
	// overlay per planning round, so its hit rate measures how much the
	// QoE scoring path amortises, independent of the SPF/load caches.
	QoEHits   uint64 `json:"qoe_hits"`
	QoEMisses uint64 `json:"qoe_misses"`
}

// viewsEntry caches one fibbing.Evaluate outcome (errors included, so a
// failing prefix does not re-run the per-router SPF sweep every retry).
type viewsEntry struct {
	views map[topo.NodeID]fibbing.RouteView
	err   error
}

// loadsEntry caches one fluid routing of a full lie set: the per-link
// loads and the max utilisation derived from them.
type loadsEntry struct {
	loads map[topo.LinkID]float64
	util  float64
	err   error
}

type minmaxEntry struct {
	res *te.MinMaxResult
	err error
}

// augEntry caches one compileDAG outcome: the verified augmentation (or
// the compile/verify error) for a requirement DAG on one prefix.
type augEntry struct {
	aug    *fibbing.Augmentation
	pinned bool
	err    error
}

// qoeEntry caches one plan-level QoE prediction.
type qoeEntry struct {
	q   qoe.PlanQoE
	err error
}

// qoePropEntry caches one qoe-greedy descent outcome: the chosen overlay
// (nil = the strategy abstained) and its predicted stall score. Shared —
// the overlay map and lie lists are read-only, like every cached value.
type qoePropEntry struct {
	overlay map[string][]fibbing.Lie
	score   float64
}

// PlanArtifacts memoises the expensive planner inputs for one topology.
// It is safe for concurrent use (the strategy fan-out shares one
// instance); computations run outside the lock, so concurrent strategies
// never serialise on each other's cache fills. Cached values are shared —
// callers must treat returned trees, paths, views and load maps as
// read-only.
type PlanArtifacts struct {
	mu    sync.Mutex
	topo  *topo.Topology
	graph *spf.Graph
	skip  func(topo.NodeID) bool
	trees map[topo.NodeID]*spf.Tree
	ksp   map[string][][]topo.NodeID
	views map[string]viewsEntry
	loads map[string]loadsEntry
	mmx   map[string]minmaxEntry
	augs  map[string]augEntry
	qoe   map[string]qoeEntry
	cands map[string][][]fibbing.Lie
	props map[string]qoePropEntry

	// lp and stats are shared across cache generations (and with the
	// ephemeral failover artifacts): the warm-start basis must survive a
	// demand-gen reset — volume-only changes are exactly the warm case —
	// and the counters are cumulative per controller.
	lp    *te.MinMaxSolver
	stats *ArtifactStats
}

// NewPlanArtifacts returns an empty cache bound to t, with fresh stats
// and a fresh warm-LP solver.
func NewPlanArtifacts(t *topo.Topology) *PlanArtifacts {
	return newPlanArtifacts(t, &ArtifactStats{}, te.NewMinMaxSolver())
}

func newPlanArtifacts(t *topo.Topology, stats *ArtifactStats, lp *te.MinMaxSolver) *PlanArtifacts {
	if stats == nil {
		stats = &ArtifactStats{}
	}
	if lp == nil {
		lp = te.NewMinMaxSolver()
	}
	return &PlanArtifacts{
		topo:  t,
		trees: make(map[topo.NodeID]*spf.Tree),
		ksp:   make(map[string][][]topo.NodeID),
		views: make(map[string]viewsEntry),
		loads: make(map[string]loadsEntry),
		mmx:   make(map[string]minmaxEntry),
		augs:  make(map[string]augEntry),
		qoe:   make(map[string]qoeEntry),
		cands: make(map[string][][]fibbing.Lie),
		props: make(map[string]qoePropEntry),
		lp:    lp,
		stats: stats,
	}
}

// rebind returns a fresh cache for t carrying over the cumulative stats
// and the warm-LP solver (its structure key decides reusability itself).
func (a *PlanArtifacts) rebind(t *topo.Topology) *PlanArtifacts {
	return newPlanArtifacts(t, a.stats, a.lp)
}

// Topology returns the topology this cache is bound to.
func (a *PlanArtifacts) Topology() *topo.Topology { return a.topo }

// Stats snapshots the cumulative hit/miss counters.
func (a *PlanArtifacts) Stats() ArtifactStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return *a.stats
}

// LPStats snapshots the warm-LP solver's counters.
func (a *PlanArtifacts) LPStats() te.WarmLPStats { return a.lp.Stats() }

// Graph returns the memoised spf.Graph and host-skip for the bound
// topology.
func (a *PlanArtifacts) Graph() (*spf.Graph, func(topo.NodeID) bool) {
	a.mu.Lock()
	if a.graph != nil {
		a.stats.Hits++
		g, skip := a.graph, a.skip
		a.mu.Unlock()
		return g, skip
	}
	a.mu.Unlock()
	g := spf.FromTopology(a.topo)
	skip := spf.HostSkip(a.topo)
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.graph != nil {
		a.stats.Hits++
		return a.graph, a.skip
	}
	a.stats.Misses++
	a.graph, a.skip = g, skip
	return g, skip
}

// Tree returns the memoised SPF tree rooted at src.
func (a *PlanArtifacts) Tree(src topo.NodeID) *spf.Tree {
	a.mu.Lock()
	if t, ok := a.trees[src]; ok {
		a.stats.Hits++
		a.mu.Unlock()
		return t
	}
	a.mu.Unlock()
	g, skip := a.Graph()
	t := spf.Compute(g, src, skip)
	a.mu.Lock()
	defer a.mu.Unlock()
	if prev, ok := a.trees[src]; ok {
		a.stats.Hits++
		return prev
	}
	a.stats.Misses++
	a.trees[src] = t
	return t
}

// KShortest returns the memoised Yen k-shortest-path set.
func (a *PlanArtifacts) KShortest(src, dst topo.NodeID, k, spurLimit int) [][]topo.NodeID {
	key := strconv.FormatInt(int64(src), 10) + "|" + strconv.FormatInt(int64(dst), 10) +
		"|" + strconv.Itoa(k) + "|" + strconv.Itoa(spurLimit)
	a.mu.Lock()
	if p, ok := a.ksp[key]; ok {
		a.stats.Hits++
		a.mu.Unlock()
		return p
	}
	a.mu.Unlock()
	g, skip := a.Graph()
	paths := spf.KShortestSpurLimit(g, src, dst, k, spurLimit, skip)
	a.mu.Lock()
	defer a.mu.Unlock()
	if prev, ok := a.ksp[key]; ok {
		a.stats.Hits++
		return prev
	}
	a.stats.Misses++
	a.ksp[key] = paths
	return paths
}

// Views returns the memoised believed-topology compilation for one
// prefix under the given lie set (nil lies = the plain IGP view). This is
// the planner's dominant repeated cost: fibbing.Evaluate runs one SPF per
// router over the augmented graph.
func (a *PlanArtifacts) Views(prefix string, lies []fibbing.Lie) (map[topo.NodeID]fibbing.RouteView, error) {
	var sb strings.Builder
	sb.WriteString(prefix)
	encodeLies(&sb, lies)
	key := sb.String()
	a.mu.Lock()
	if e, ok := a.views[key]; ok {
		a.stats.Hits++
		a.mu.Unlock()
		return e.views, e.err
	}
	a.mu.Unlock()
	views, err := fibbing.Evaluate(a.topo, prefix, lies)
	a.mu.Lock()
	defer a.mu.Unlock()
	if prev, ok := a.views[key]; ok {
		a.stats.Hits++
		return prev.views, prev.err
	}
	a.stats.Misses++
	a.views[key] = viewsEntry{views: views, err: err}
	return views, err
}

// MaxUtil routes demands over the full lie set (all prefixes, merged)
// with the fluid model and returns the max link utilisation, memoised on
// the (lies, demands) value. The per-prefix views inside the routing go
// through Views, so two lie sets differing in one prefix share the other
// prefixes' compilations.
func (a *PlanArtifacts) MaxUtil(lies map[string][]fibbing.Lie, demands []topo.Demand) (float64, error) {
	e := a.loadsFor(lies, demands)
	return e.util, e.err
}

// Loads is MaxUtil's sibling returning the per-link load map itself
// (read-only; shared with the cache).
func (a *PlanArtifacts) Loads(lies map[string][]fibbing.Lie, demands []topo.Demand) (map[topo.LinkID]float64, error) {
	e := a.loadsFor(lies, demands)
	return e.loads, e.err
}

func (a *PlanArtifacts) loadsFor(lies map[string][]fibbing.Lie, demands []topo.Demand) loadsEntry {
	key := loadsKey(lies, demands)
	a.mu.Lock()
	if e, ok := a.loads[key]; ok {
		a.stats.Hits++
		a.mu.Unlock()
		return e
	}
	a.mu.Unlock()
	e := a.computeLoads(lies, demands)
	a.mu.Lock()
	defer a.mu.Unlock()
	if prev, ok := a.loads[key]; ok {
		a.stats.Hits++
		return prev
	}
	a.stats.Misses++
	a.loads[key] = e
	return e
}

func (a *PlanArtifacts) computeLoads(lies map[string][]fibbing.Lie, demands []topo.Demand) loadsEntry {
	views := make(map[string]map[topo.NodeID]fibbing.RouteView)
	for _, d := range demands {
		if _, ok := views[d.PrefixName]; ok {
			continue
		}
		v, err := a.Views(d.PrefixName, lies[d.PrefixName])
		if err != nil {
			return loadsEntry{err: err}
		}
		views[d.PrefixName] = v
	}
	loads, err := te.LinkLoads(a.topo, views, demands)
	if err != nil {
		return loadsEntry{err: err}
	}
	return loadsEntry{loads: loads, util: te.MaxUtilOfLoads(a.topo, loads)}
}

// SolveMinMax returns the memoised min-max LP optimum for the demand
// set. A repeated demand set within one cache generation is a pure
// lookup; a changed one re-solves through the shared warm-start solver,
// which re-enters simplex from the previous basis when only volumes
// moved.
func (a *PlanArtifacts) SolveMinMax(demands []topo.Demand) (*te.MinMaxResult, error) {
	var sb strings.Builder
	encodeDemands(&sb, demands)
	key := sb.String()
	a.mu.Lock()
	if e, ok := a.mmx[key]; ok {
		a.stats.Hits++
		a.mu.Unlock()
		return e.res, e.err
	}
	a.mu.Unlock()
	res, err := a.lp.Solve(a.topo, demands)
	a.mu.Lock()
	defer a.mu.Unlock()
	if prev, ok := a.mmx[key]; ok {
		a.stats.Hits++
		return prev.res, prev.err
	}
	a.stats.Misses++
	a.mmx[key] = minmaxEntry{res: res, err: err}
	return res, err
}

// CompileDAG returns the memoised compileDAG outcome for a requirement
// DAG on one prefix: the add-paths-then-pin-all compilation plus the
// Verify sweep, each of which runs fibbing.Evaluate (one SPF per router)
// internally. The KSP strategy's greedy path accumulation retries the
// same candidate DAGs on every invocation, making this the planner's
// second-largest repeated cost after the view compilations. The returned
// augmentation is shared — callers must treat it as read-only.
func (a *PlanArtifacts) CompileDAG(prefix string, dag fibbing.DAG) (*fibbing.Augmentation, bool, error) {
	var sb strings.Builder
	sb.WriteString(prefix)
	encodeDAG(&sb, dag)
	key := sb.String()
	a.mu.Lock()
	if e, ok := a.augs[key]; ok {
		a.stats.Hits++
		a.mu.Unlock()
		return e.aug, e.pinned, e.err
	}
	a.mu.Unlock()
	aug, pinned, err := compileDAG(a.topo, prefix, dag)
	a.mu.Lock()
	defer a.mu.Unlock()
	if prev, ok := a.augs[key]; ok {
		a.stats.Hits++
		return prev.aug, prev.pinned, prev.err
	}
	a.stats.Misses++
	a.augs[key] = augEntry{aug: aug, pinned: pinned, err: err}
	return aug, pinned, err
}

// PredictQoE maps the full lie set and demand set to the analytic
// plan-level QoE prediction (qoe.PredictPlan over the memoised per-prefix
// views), memoised on the (lies, demands, model) value with its own
// hit/miss counters. Accounting follows the store-time rule, so
// QoEHits/QoEMisses are byte-identical across scheduler worker widths.
func (a *PlanArtifacts) PredictQoE(lies map[string][]fibbing.Lie, demands []topo.Demand, model qoe.Model) (qoe.PlanQoE, error) {
	var sb strings.Builder
	encodeModel(&sb, model)
	return a.predictQoEKeyed(sb.String(), lies, demands, model)
}

// predictQoEKeyed is PredictQoE with the model's key encoding hoisted
// out: the planner consults the predictor once per candidate overlay
// under an unchanging model, so newQoEPredictor encodes the model once
// per planning context instead of once per lookup.
func (a *PlanArtifacts) predictQoEKeyed(modelKey string, lies map[string][]fibbing.Lie, demands []topo.Demand, model qoe.Model) (qoe.PlanQoE, error) {
	var sb strings.Builder
	sb.WriteString(loadsKey(lies, demands))
	sb.WriteByte('!')
	sb.WriteString(modelKey)
	key := sb.String()
	a.mu.Lock()
	if e, ok := a.qoe[key]; ok {
		a.stats.QoEHits++
		a.mu.Unlock()
		return e.q, e.err
	}
	a.mu.Unlock()
	e := a.computeQoE(lies, demands, model)
	a.mu.Lock()
	defer a.mu.Unlock()
	if prev, ok := a.qoe[key]; ok {
		a.stats.QoEHits++
		return prev.q, prev.err
	}
	a.stats.QoEMisses++
	a.qoe[key] = e
	return e.q, e.err
}

// QoECandidates memoises the qoe-greedy strategy's per-prefix candidate
// sweep. The candidate lie sets depend only on the topology (through the
// SPF tree and attachment set), the prefix, the hot router and the path
// count — all fixed within one cache generation — while building them
// costs k DAG constructions plus k compile-memo key encodings per
// planning round. An alarm train re-planning the same hot link skips all
// of it. build runs outside the lock; accounting is store-time, like
// every other table here.
func (a *PlanArtifacts) QoECandidates(prefix string, hot topo.NodeID, k int, build func() [][]fibbing.Lie) [][]fibbing.Lie {
	key := prefix + "|" + strconv.FormatInt(int64(hot), 10) + "|" + strconv.Itoa(k)
	a.mu.Lock()
	if c, ok := a.cands[key]; ok {
		a.stats.Hits++
		a.mu.Unlock()
		return c
	}
	a.mu.Unlock()
	c := build()
	a.mu.Lock()
	defer a.mu.Unlock()
	if prev, ok := a.cands[key]; ok {
		a.stats.Hits++
		return prev
	}
	a.stats.Misses++
	a.cands[key] = c
	return c
}

// qoeProposal memoises the qoe-greedy strategy's whole greedy descent.
// The descent is a pure function of the candidate sets (topology-bound,
// see QoECandidates), the installed lies, the demand set and the viewer
// model — exactly what the key encodes — so an alarm train re-raising
// the same hot link replays the chosen overlay (or the abstention) with
// one lookup instead of a per-candidate predictor sweep. Accounting is
// store-time, under the QoE counters.
func (a *PlanArtifacts) qoeProposal(key string, build func() qoePropEntry) qoePropEntry {
	a.mu.Lock()
	if e, ok := a.props[key]; ok {
		a.stats.QoEHits++
		a.mu.Unlock()
		return e
	}
	a.mu.Unlock()
	e := build()
	a.mu.Lock()
	defer a.mu.Unlock()
	if prev, ok := a.props[key]; ok {
		a.stats.QoEHits++
		return prev
	}
	a.stats.QoEMisses++
	a.props[key] = e
	return e
}

func (a *PlanArtifacts) computeQoE(lies map[string][]fibbing.Lie, demands []topo.Demand, model qoe.Model) qoeEntry {
	views := make(map[string]map[topo.NodeID]fibbing.RouteView)
	for _, d := range demands {
		if _, ok := views[d.PrefixName]; ok {
			continue
		}
		v, err := a.Views(d.PrefixName, lies[d.PrefixName])
		if err != nil {
			return qoeEntry{err: err}
		}
		views[d.PrefixName] = v
	}
	q, err := qoe.PredictPlan(a.topo, views, demands, model)
	return qoeEntry{q: q, err: err}
}

// encodeModel appends a value-complete encoding of a qoe.Model: member
// counts in sorted (prefix, ingress) order, then the playback config and
// horizon (exact float bits for the ladder).
func encodeModel(sb *strings.Builder, m qoe.Model) {
	prefixes := make([]string, 0, len(m.Members))
	for name := range m.Members {
		prefixes = append(prefixes, name)
	}
	slices.Sort(prefixes)
	for _, name := range prefixes {
		sb.WriteByte('&')
		sb.WriteString(name)
		nodes := make([]topo.NodeID, 0, len(m.Members[name]))
		for n := range m.Members[name] {
			nodes = append(nodes, n)
		}
		slices.Sort(nodes)
		for _, n := range nodes {
			sb.WriteByte(',')
			sb.WriteString(strconv.FormatInt(int64(n), 10))
			sb.WriteByte('=')
			sb.WriteString(strconv.Itoa(m.Members[name][n]))
		}
	}
	sb.WriteByte('/')
	for _, r := range m.Session.Ladder {
		sb.WriteByte(',')
		sb.WriteString(strconv.FormatFloat(r, 'x', -1, 64))
	}
	sb.WriteByte('/')
	sb.WriteString(strconv.FormatInt(int64(m.Session.SegmentDuration), 10))
	sb.WriteByte('/')
	sb.WriteString(strconv.FormatFloat(m.Session.SafetyFactor, 'x', -1, 64))
	sb.WriteByte('/')
	sb.WriteString(strconv.FormatFloat(m.Session.StartupBuffer, 'x', -1, 64))
	sb.WriteByte('/')
	sb.WriteString(strconv.FormatInt(int64(m.Horizon), 10))
}

// encodeDAG appends a canonical encoding of a requirement DAG: routers in
// id order, each with its next-hop weights in id order. Weights are kept
// un-normalised — {B:1,R1:2} and {B:2,R1:4} would compile to the same
// lies, but a duplicate entry is cheaper than normalising here.
func encodeDAG(sb *strings.Builder, dag fibbing.DAG) {
	routers := make([]topo.NodeID, 0, len(dag))
	for u := range dag {
		routers = append(routers, u)
	}
	slices.Sort(routers)
	for _, u := range routers {
		sb.WriteByte('|')
		sb.WriteString(strconv.FormatInt(int64(u), 10))
		sb.WriteByte('=')
		nhs := make([]topo.NodeID, 0, len(dag[u]))
		for v := range dag[u] {
			nhs = append(nhs, v)
		}
		slices.Sort(nhs)
		for _, v := range nhs {
			sb.WriteByte(',')
			sb.WriteString(strconv.FormatInt(int64(v), 10))
			sb.WriteByte(':')
			sb.WriteString(strconv.Itoa(dag[u][v]))
		}
	}
}

// encodeLies appends a value-complete encoding of one prefix's lie list.
// Lie lists are built deterministically by the compilers, so the order
// is stable and kept significant (a reordered but equal set would only
// cost a duplicate cache entry, never a wrong hit). The prefix goes in
// as raw address bytes plus mask length: Prefix.String showed up as the
// single hottest piece of the planner's warm path (keys are encoded on
// every memo hit).
func encodeLies(sb *strings.Builder, lies []fibbing.Lie) {
	for _, l := range lies {
		sb.WriteByte('|')
		addr := l.Prefix.Addr().As16()
		sb.Write(addr[:])
		sb.WriteByte(byte(l.Prefix.Bits()))
		sb.WriteByte('@')
		sb.WriteString(strconv.FormatInt(int64(l.Attach), 10))
		sb.WriteByte('>')
		sb.WriteString(strconv.FormatInt(int64(l.Via), 10))
		sb.WriteByte('$')
		sb.WriteString(strconv.FormatInt(l.Cost, 10))
	}
}

// encodeDemands appends a value-complete encoding of a demand set
// (exact float bits for the volumes).
func encodeDemands(sb *strings.Builder, demands []topo.Demand) {
	for _, d := range demands {
		sb.WriteByte(';')
		sb.WriteString(d.PrefixName)
		sb.WriteByte(':')
		sb.WriteString(strconv.FormatInt(int64(d.Ingress), 10))
		sb.WriteByte(':')
		sb.WriteString(strconv.FormatFloat(d.Volume, 'x', -1, 64))
	}
}

// loadsKey encodes (full lie set, demand set): prefixes in sorted order
// for a canonical map encoding.
func loadsKey(lies map[string][]fibbing.Lie, demands []topo.Demand) string {
	names := make([]string, 0, len(lies))
	for name, ls := range lies {
		if len(ls) > 0 {
			names = append(names, name)
		}
	}
	slices.Sort(names)
	var sb strings.Builder
	for _, name := range names {
		sb.WriteByte('#')
		sb.WriteString(name)
		encodeLies(&sb, lies[name])
	}
	sb.WriteByte('~')
	encodeDemands(&sb, demands)
	return sb.String()
}
