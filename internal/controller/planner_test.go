package controller

import (
	"fmt"
	"testing"
	"time"

	"fibbing.net/fibbing/internal/fibbing"
	"fibbing.net/fibbing/internal/monitor"
	"fibbing.net/fibbing/internal/ospf"
	"fibbing.net/fibbing/internal/southbound"
	"fibbing.net/fibbing/internal/te"
	"fibbing.net/fibbing/internal/topo"
)

func alarmOn(t *testing.T, tp *topo.Topology, a, b string, util float64) monitor.Alarm {
	t.Helper()
	l, ok := tp.FindLink(tp.MustNode(a), tp.MustNode(b))
	if !ok {
		t.Fatalf("no link %s-%s", a, b)
	}
	return monitor.Alarm{Link: l.ID, Name: a + "-" + b, Utilisation: util, Raised: true}
}

// TestStockStrategySelection is the table-driven selection test: each
// stock strategy wins on a topology crafted for it.
func TestStockStrategySelection(t *testing.T) {
	fig1 := topo.Fig1(topo.Fig1Opts{})
	blue := topo.Fig1BluePrefixName
	b := fig1.MustNode("B")
	a := fig1.MustNode("A")

	fig1Lies := func() []fibbing.Lie {
		aug, err := fibbing.AugmentAddPaths(fig1, blue, fibbing.Fig1DAG(fig1))
		if err != nil {
			t.Fatal(err)
		}
		return aug.Lies
	}

	ring := topo.Ring(topo.RingOpts{N: 9, Capacity: 10e6})
	r4 := ring.MustNode("r4")

	cases := []struct {
		name      string
		topo      *topo.Topology
		demands   []topo.Demand
		installed map[string][]fibbing.Lie
		event     func() Event
		cfg       Config
		want      string
	}{
		{
			// A single surge at B: spreading at the hot router reaches the
			// target with one lie — the cheapest satisfying plan.
			name:    "local-ecmp",
			topo:    fig1,
			demands: []topo.Demand{{Ingress: b, PrefixName: blue, Volume: 15e6}},
			event:   func() Event { return AlarmEvent(alarmOn(t, fig1, "B", "R2", 0.94)) },
			want:    "local-ecmp",
		},
		{
			// The paper's wave 3: surges at A and B overload both B links;
			// only the LP's uneven splits reach the target.
			name: "lp-optimal",
			topo: fig1,
			demands: []topo.Demand{
				{Ingress: a, PrefixName: blue, Volume: 15.5e6},
				{Ingress: b, PrefixName: blue, Volume: 15.5e6},
			},
			event: func() Event { return AlarmEvent(alarmOn(t, fig1, "B", "R2", 0.99)) },
			want:  "lp-optimal",
		},
		{
			// The ring is the worst case for local spreading (the only
			// alternative is uphill, the long way around), and the LP is
			// gated out by MaxLPRouters: only ksp can recruit the reverse
			// path.
			name:    "ksp",
			topo:    ring,
			demands: []topo.Demand{{Ingress: r4, PrefixName: topo.RingPrefixName, Volume: 14e6}},
			event:   func() Event { return AlarmEvent(alarmOn(t, ring, "r4", "r3", 0.99)) },
			cfg:     Config{MaxLPRouters: 4},
			want:    "ksp",
		},
		{
			// The surge is over: the last alarm cleared and plain IGP
			// routing stays below the withdraw threshold.
			name:      "withdraw",
			topo:      fig1,
			demands:   []topo.Demand{{Ingress: b, PrefixName: blue, Volume: 0.5e6}},
			installed: map[string][]fibbing.Lie{blue: fig1Lies()},
			event: func() Event {
				a := alarmOn(t, fig1, "B", "R2", 0.05)
				a.Raised = false
				return AlarmEvent(a)
			},
			want: "withdraw",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ctx := AnalyticPlanContext(tc.topo, tc.demands, tc.installed, tc.event(), tc.cfg)
			planner := NewPlanner()
			plan, errs := planner.Plan(ctx)
			for _, err := range errs {
				t.Logf("strategy error: %v", err)
			}
			if plan == nil {
				t.Fatalf("no plan committed (base %.3f)", ctx.BaseUtil)
			}
			if plan.Strategy != tc.want {
				t.Fatalf("winner = %s (util %.3f, %d lies), want %s",
					plan.Strategy, plan.PredictedUtil, plan.TotalLies(), tc.want)
			}
			if ctx.Event.Kind == EventAlarmRaised && plan.PredictedUtil > ctx.BaseUtil+1e-6 {
				t.Fatalf("winning plan worsens predicted util: %.3f > base %.3f",
					plan.PredictedUtil, ctx.BaseUtil)
			}
		})
	}
}

// rendezvousStrategy blocks until its partner is proposing too, proving
// the planner fans strategies out concurrently (a sequential planner
// deadlocks here and trips the timeout).
type rendezvousStrategy struct {
	name string
	in   chan<- string
	out  <-chan struct{}
}

func (s rendezvousStrategy) Name() string { return s.name }

func (s rendezvousStrategy) Propose(PlanContext) (*Plan, error) {
	s.in <- s.name
	select {
	case <-s.out:
		return nil, nil
	case <-time.After(5 * time.Second):
		return nil, fmt.Errorf("%s: partner never proposed concurrently", s.name)
	}
}

func TestPlannerProposesConcurrently(t *testing.T) {
	arrived := make(chan string, 2)
	release := make(chan struct{})
	go func() {
		<-arrived
		<-arrived // both strategies are inside Propose at once
		close(release)
	}()
	planner := NewPlanner(
		rendezvousStrategy{name: "s1", in: arrived, out: release},
		rendezvousStrategy{name: "s2", in: arrived, out: release},
	)
	fig1 := topo.Fig1(topo.Fig1Opts{})
	ctx := AnalyticPlanContext(fig1, nil, nil, Event{Kind: EventAlarmRaised}, Config{})
	if _, errs := planner.Plan(ctx); len(errs) > 0 {
		t.Fatalf("strategies did not run concurrently: %v", errs)
	}
}

// countingInjector accepts every LSA unless failAt (1-based) is hit.
type countingInjector struct {
	failAt int
	calls  int
}

func (f *countingInjector) Inject(*ospf.LSA) error {
	f.calls++
	if f.failAt > 0 && f.calls == f.failAt {
		return fmt.Errorf("injector down (call %d)", f.calls)
	}
	return nil
}

// zooContexts builds raised-alarm planning contexts across the topology
// zoo with seeded random demands.
func zooContexts(t *testing.T) []PlanContext {
	t.Helper()
	type zt struct {
		name string
		tp   *topo.Topology
	}
	var tops []zt
	tops = append(tops, zt{"fig1", topo.Fig1(topo.Fig1Opts{})})
	tops = append(tops, zt{"ring9", topo.Ring(topo.RingOpts{N: 9, Capacity: 10e6})})
	tops = append(tops, zt{"fattree4", topo.FatTree(topo.FatTreeOpts{K: 4, Capacity: 10e6, MaxWeight: 3, Seed: 1})})
	tops = append(tops, zt{"waxman16", topo.Waxman(topo.WaxmanOpts{Nodes: 16, Capacity: 10e6, MaxWeight: 5, Seed: 0})})
	for seed := int64(1); seed <= 2; seed++ {
		tops = append(tops, zt{fmt.Sprintf("random12-%d", seed), topo.RandomConnected(topo.RandomOpts{
			Nodes: 12, Degree: 3, MaxWeight: 5, Prefixes: 2, Capacity: 10e6, Seed: seed,
		})})
	}
	var out []PlanContext
	for _, z := range tops {
		for seed := int64(1); seed <= 3; seed++ {
			demands := topo.RandomDemands(z.tp, 4, 3e6, 9e6, seed)
			loads, err := te.IGPLoads(z.tp, demands)
			if err != nil {
				t.Fatalf("%s: %v", z.name, err)
			}
			alarm, ok := HottestLinkAlarm(z.tp, loads)
			if !ok {
				continue
			}
			out = append(out, AnalyticPlanContext(z.tp, demands, nil, AlarmEvent(alarm), Config{}))
		}
	}
	return out
}

// TestPlannerNeverWorsensAcrossZoo is the zoo property test: whatever the
// topology and demand set, a committed plan's predicted max utilisation
// never exceeds the no-op plan's, and the plan's claimed prediction is
// honest (re-evaluating its lies reproduces it).
func TestPlannerNeverWorsensAcrossZoo(t *testing.T) {
	planner := NewPlanner()
	plans := 0
	for _, ctx := range zooContexts(t) {
		plan, _ := planner.Plan(ctx)
		if plan == nil {
			continue
		}
		plans++
		if plan.PredictedUtil > ctx.BaseUtil+1e-6 {
			t.Fatalf("%s plan worsens predicted util: %.4f > base %.4f",
				plan.Strategy, plan.PredictedUtil, ctx.BaseUtil)
		}
		again, err := ctx.Evaluate(plan.Lies)
		if err != nil {
			t.Fatalf("re-evaluating %s plan: %v", plan.Strategy, err)
		}
		if diff := again - plan.PredictedUtil; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("%s plan prediction dishonest: claims %.6f, evaluates %.6f",
				plan.Strategy, plan.PredictedUtil, again)
		}
	}
	if plans == 0 {
		t.Fatal("no context produced a plan; the property was never exercised")
	}
}

// TestCommitRollbackAcrossZoo is the rollback half of the zoo property:
// committing a plan through a Transaction whose injector dies at every
// possible call leaves the installed lies exactly as they were — no
// half-installed multi-prefix state.
func TestCommitRollbackAcrossZoo(t *testing.T) {
	planner := NewPlanner()
	checked := 0
	for _, ctx := range zooContexts(t) {
		plan, _ := planner.Plan(ctx)
		if plan == nil {
			continue
		}
		// Baseline state: a previous (smaller) plan is installed — take
		// the first lie of each prefix — so rollback must restore
		// something, not just clear.
		baseline := make(map[string][]fibbing.Lie)
		for prefix, lies := range plan.Lies {
			if len(lies) > 0 {
				baseline[prefix] = lies[:1]
			}
		}
		for failAt := 1; ; failAt++ {
			inj := &countingInjector{}
			mgr := southbound.NewLieManager(inj, ospf.ControllerIDBase)
			for prefix, lies := range baseline {
				if _, err := mgr.Apply(prefix, lies); err != nil {
					t.Fatal(err)
				}
			}
			inj.failAt = inj.calls + failAt
			tx := mgr.Begin()
			var commitErr error
			for _, prefix := range plan.Prefixes() {
				if commitErr = tx.Apply(prefix, plan.Lies[prefix]); commitErr != nil {
					break
				}
			}
			if commitErr == nil {
				// The injector never hit failAt: the whole commit fits in
				// fewer calls, so every failure point has been tested.
				if _, err := tx.Commit(); err != nil {
					t.Fatal(err)
				}
				break
			}
			got := mgr.InstalledAll()
			if len(got) != len(baseline) {
				t.Fatalf("failAt=%d: %d prefixes installed after rollback, want %d",
					failAt, len(got), len(baseline))
			}
			for prefix, want := range baseline {
				lies := got[prefix]
				if len(lies) != len(want) || lies[0] != want[0] {
					t.Fatalf("failAt=%d: prefix %s = %v after rollback, want %v",
						failAt, prefix, lies, want)
				}
			}
		}
		checked++
		if checked >= 6 {
			break // bounded: every failure point of six zoo plans
		}
	}
	if checked == 0 {
		t.Fatal("no plan to roll back; the property was never exercised")
	}
}

// TestCustomStrategyEndToEnd registers a custom strategy on a live
// controller via WithStrategies and drives it through the typed event
// API: the custom plan must be committed through the transaction and
// logged as a decision.
func TestCustomStrategyEndToEnd(t *testing.T) {
	fig1 := topo.Fig1(topo.Fig1Opts{})
	blue := topo.Fig1BluePrefixName
	inj := &countingInjector{}
	lies := southbound.NewLieManager(inj, ospf.ControllerIDBase)

	custom := strategyFunc{
		name: "pin-b",
		propose: func(ctx PlanContext) (*Plan, error) {
			dag := fibbing.DAG{fig1.MustNode("B"): fibbing.NextHopWeights{
				fig1.MustNode("R2"): 1, fig1.MustNode("R3"): 1,
			}}
			aug, err := fibbing.AugmentAddPaths(ctx.Topo, blue, dag)
			if err != nil {
				return nil, err
			}
			overlay := map[string][]fibbing.Lie{blue: aug.Lies}
			util, err := ctx.Evaluate(overlay)
			if err != nil {
				return nil, err
			}
			return &Plan{Strategy: "pin-b", Lies: overlay, PredictedUtil: util, Rationale: "custom"}, nil
		},
	}
	ctrl := New(fig1, lies, func() time.Duration { return 42 * time.Second },
		WithStrategies(custom))
	ctrl.Handle(DemandEvent(blue, fig1.MustNode("B"), 15e6))
	ctrl.Handle(AlarmEvent(alarmOn(t, fig1, "B", "R2", 0.94)))

	if len(ctrl.Errors) > 0 {
		t.Fatalf("controller errors: %v", ctrl.Errors)
	}
	if len(ctrl.Decisions) != 1 || ctrl.Decisions[0].Strategy != "pin-b" {
		t.Fatalf("decisions = %+v, want one pin-b commit", ctrl.Decisions)
	}
	if lies.LieCount() == 0 {
		t.Fatal("custom plan not installed")
	}
}

// strategyFunc adapts a closure into a Strategy.
type strategyFunc struct {
	name    string
	propose func(PlanContext) (*Plan, error)
}

func (s strategyFunc) Name() string                           { return s.name }
func (s strategyFunc) Propose(ctx PlanContext) (*Plan, error) { return s.propose(ctx) }

// TestStrategyNameResolution covers the flag-format parsing used by
// fiblab/fibsim/fibbingd, including the implied withdraw strategy.
func TestStrategyNameResolution(t *testing.T) {
	set, err := ParseStrategies("localecmp,ksp,lpoptimal")
	if err != nil {
		t.Fatal(err)
	}
	got := StrategyNames(set)
	want := []string{"local-ecmp", "ksp", "lp-optimal", "withdraw"}
	if len(got) != len(want) {
		t.Fatalf("strategies = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("strategies = %v, want %v", got, want)
		}
	}
	if _, err := ParseStrategies("nope"); err == nil {
		t.Fatal("unknown strategy accepted")
	}
	if set, err := ParseStrategies(""); err != nil || set != nil {
		t.Fatalf("empty csv: set=%v err=%v", set, err)
	}
}

// TestWithdrawBelowZeroSentinel: an explicit Float(0) disables
// withdrawal (the zero is no longer conflated with "unset").
func TestWithdrawBelowZeroSentinel(t *testing.T) {
	fig1 := topo.Fig1(topo.Fig1Opts{})
	blue := topo.Fig1BluePrefixName
	aug, err := fibbing.AugmentAddPaths(fig1, blue, fibbing.Fig1DAG(fig1))
	if err != nil {
		t.Fatal(err)
	}
	clearEvent := func() Event {
		a := alarmOn(t, fig1, "B", "R2", 0.01)
		a.Raised = false
		return AlarmEvent(a)
	}
	installed := map[string][]fibbing.Lie{blue: aug.Lies}

	ctx := AnalyticPlanContext(fig1, nil, installed, clearEvent(), Config{WithdrawBelow: Float(0)})
	if plan, _ := NewPlanner().Plan(ctx); plan != nil {
		t.Fatalf("WithdrawBelow=Float(0) still withdrew: %+v", plan)
	}
	ctx = AnalyticPlanContext(fig1, nil, installed, clearEvent(), Config{})
	plan, _ := NewPlanner().Plan(ctx)
	if plan == nil || plan.Strategy != "withdraw" {
		t.Fatalf("default WithdrawBelow did not withdraw: %+v", plan)
	}
}
