package controller

import (
	"fmt"
	"reflect"
	"slices"
	"sort"
	"strings"
	"testing"

	"fibbing.net/fibbing/internal/event"
	"fibbing.net/fibbing/internal/fibbing"
	"fibbing.net/fibbing/internal/ospf"
	"fibbing.net/fibbing/internal/southbound"
	"fibbing.net/fibbing/internal/topo"
)

// recordingInjector fails the Nth Inject call (1-based, counted from
// zero; failAt <= 0 never fails) and records every accepted LSA, so
// tests can replay the wire state after a rollback.
type recordingInjector struct {
	failAt   int
	calls    int
	accepted []*ospf.LSA
}

func (f *recordingInjector) Inject(l *ospf.LSA) error {
	f.calls++
	if f.failAt > 0 && f.calls == f.failAt {
		return fmt.Errorf("injector down (call %d)", f.calls)
	}
	f.accepted = append(f.accepted, l)
	return nil
}

// liveLSIDs replays the accepted LSAs (latest origination wins, MaxAge
// removes) and returns the surviving LSIDs sorted.
func (f *recordingInjector) liveLSIDs() []uint32 {
	live := make(map[uint32]*ospf.LSA)
	for _, l := range f.accepted {
		if cur, ok := live[l.Header.LSID]; ok && cur.Header.Seq > l.Header.Seq {
			continue
		}
		if l.Header.Age >= ospf.MaxAgeSeconds {
			delete(live, l.Header.LSID)
			continue
		}
		live[l.Header.LSID] = l
	}
	out := make([]uint32, 0, len(live))
	for id := range live {
		out = append(out, id)
	}
	slices.Sort(out)
	return out
}

// standbyRig is a controller with the standby cache enabled over Fig1,
// demand from B and A toward the blue prefix at C.
type standbyRig struct {
	tp    *topo.Topology
	sched *event.Scheduler
	inj   *recordingInjector
	mgr   *southbound.LieManager
	c     *Controller
}

func newStandbyRig(t *testing.T, k int) *standbyRig {
	t.Helper()
	r := &standbyRig{
		tp:    topo.Fig1(topo.Fig1Opts{}),
		sched: event.NewScheduler(),
		inj:   &recordingInjector{},
	}
	r.mgr = southbound.NewLieManager(r.inj, ospf.ControllerIDBase)
	r.c = New(r.tp, r.mgr, r.sched.Now, WithStandby(r.sched, k))
	r.c.Handle(DemandEvent(topo.Fig1BluePrefixName, r.tp.MustNode(topo.Fig1B), 10e6))
	r.c.Handle(DemandEvent(topo.Fig1BluePrefixName, r.tp.MustNode(topo.Fig1A), 6e6))
	return r
}

// victim picks the hottest protected link: the first cached plan's key.
func (r *standbyRig) victim(t *testing.T) topo.Link {
	t.Helper()
	plans := r.c.StandbyPlans()
	if len(plans) == 0 {
		t.Fatal("standby cache is empty")
	}
	return r.tp.Link(plans[0])
}

// TestStandbyIdlePrecompute: demand events arm the idle debounce; once
// the quiet period passes, the cache holds plans for the top-k links.
func TestStandbyIdlePrecompute(t *testing.T) {
	r := newStandbyRig(t, 3)
	if got := r.c.StandbyPlans(); len(got) != 0 {
		t.Fatalf("cache filled before the idle delay: %v", got)
	}
	r.sched.RunUntil(2 * standbyIdleDelay)
	if got := r.c.StandbyPlans(); len(got) == 0 || len(got) > 3 {
		t.Fatalf("cache after idle = %v, want 1..3 plans", got)
	}
	if r.c.Standby.Precomputed == 0 {
		t.Fatal("Precomputed counter not advanced")
	}
	// The ranking must only offer router-router links.
	for _, id := range r.c.StandbyPlans() {
		l := r.tp.Link(id)
		if r.tp.Node(l.From).Host || r.tp.Node(l.To).Host {
			t.Fatalf("host link %d cached", id)
		}
	}
}

// TestStandbyHitCommitsPrecomputedPlan: a liveness failure on a cached
// link commits the standby plan — no from-scratch planning — and the
// commit is logged as a decision.
func TestStandbyHitCommitsPrecomputedPlan(t *testing.T) {
	r := newStandbyRig(t, 3)
	r.sched.RunUntil(2 * standbyIdleDelay)
	v := r.victim(t)

	r.c.Handle(LinkDownEvent(v))
	if r.c.Standby.Hits != 1 || r.c.Standby.Misses != 0 {
		t.Fatalf("stats = %+v, want one hit", r.c.Standby)
	}
	if len(r.c.Decisions) != 1 {
		t.Fatalf("decisions = %v, want the standby commit", r.c.Decisions)
	}
	if d := r.c.Decisions[0]; d.Strategy != "failover-pin" {
		t.Fatalf("committed strategy %q, want failover-pin", d.Strategy)
	}
	if r.mgr.LieCount() == 0 {
		t.Fatal("no lies installed by the standby plan")
	}
	if len(r.c.Errors) != 0 {
		t.Fatalf("errors: %v", r.c.Errors)
	}
}

// TestStandbyStaleEntryReplans: a demand change after precompute bumps
// the generation; the next failure finds the entry stale and replans
// from scratch (stale + miss, no hit) — never committing an outdated
// plan.
func TestStandbyStaleEntryReplans(t *testing.T) {
	r := newStandbyRig(t, 3)
	r.sched.RunUntil(2 * standbyIdleDelay)
	v := r.victim(t)
	// Invalidate without letting the debounce refill.
	r.c.Handle(DemandEvent(topo.Fig1BluePrefixName, r.tp.MustNode(topo.Fig1B), 1e6))

	r.c.Handle(LinkDownEvent(v))
	if r.c.Standby.Hits != 0 || r.c.Standby.Stale != 1 || r.c.Standby.Misses != 1 {
		t.Fatalf("stats = %+v, want stale miss", r.c.Standby)
	}
	if len(r.c.Decisions) == 0 {
		t.Fatal("from-scratch failover did not commit")
	}
}

// TestStandbyColdMissReplans: with a cold cache the failure is planned
// from scratch and still commits.
func TestStandbyColdMissReplans(t *testing.T) {
	r := newStandbyRig(t, 3)
	v, _ := r.tp.FindLink(r.tp.MustNode(topo.Fig1B), r.tp.MustNode(topo.Fig1R2))
	r.c.Handle(LinkDownEvent(v))
	if r.c.Standby.Hits != 0 || r.c.Standby.Misses != 1 {
		t.Fatalf("stats = %+v, want one miss", r.c.Standby)
	}
	if len(r.c.Decisions) == 0 {
		t.Fatal("cold-miss failover did not commit")
	}
}

// TestStandbyRecoveryRearms: the link coming back clears the failed set
// and re-arms precompute for the healed topology.
func TestStandbyRecoveryRearms(t *testing.T) {
	r := newStandbyRig(t, 3)
	r.sched.RunUntil(2 * standbyIdleDelay)
	v := r.victim(t)
	r.c.Handle(LinkDownEvent(v))
	r.c.Handle(LinkUpEvent(v))
	r.sched.RunUntil(r.sched.Now() + 2*standbyIdleDelay)
	// After recovery the cache must again protect the healed topology's
	// hottest links, including possibly the old victim.
	if len(r.c.StandbyPlans()) == 0 {
		t.Fatal("cache not refilled after recovery")
	}
}

// lieSetFingerprint canonically serialises the installed lie set, so
// byte-identity before/after a rollback is a string comparison.
func lieSetFingerprint(installed map[string][]fibbing.Lie) string {
	prefixes := make([]string, 0, len(installed))
	for p := range installed {
		prefixes = append(prefixes, p)
	}
	sort.Strings(prefixes)
	var b strings.Builder
	for _, p := range prefixes {
		lies := append([]fibbing.Lie(nil), installed[p]...)
		sort.Slice(lies, func(i, j int) bool {
			a, c := lies[i], lies[j]
			if a.Attach != c.Attach {
				return a.Attach < c.Attach
			}
			if a.Via != c.Via {
				return a.Via < c.Via
			}
			return a.Cost < c.Cost
		})
		fmt.Fprintf(&b, "%s=%+v;", p, lies)
	}
	return b.String()
}

// TestStandbyCommitRollbackByteIdentical is the satellite's injector
// test: the injector dies at every possible call position inside a
// standby-plan commit; each time, the rollback must leave the installed
// lie set byte-identical to the pre-failure state and the replayed wire
// state must hold exactly the pre-failure LSAs.
func TestStandbyCommitRollbackByteIdentical(t *testing.T) {
	for failAt := 1; ; failAt++ {
		r := newStandbyRig(t, 3)
		// Pre-state: an earlier (hand-made) plan is installed, so rollback
		// must restore lies, not merely clear them.
		baseline := []fibbing.Lie{{
			Prefix: topo.Fig1BluePrefix,
			Attach: r.tp.MustNode(topo.Fig1B),
			Via:    r.tp.MustNode(topo.Fig1R3),
			Cost:   2,
		}}
		if _, err := r.mgr.Apply(topo.Fig1BluePrefixName, baseline); err != nil {
			t.Fatal(err)
		}
		r.c.PrecomputeStandby()
		v := r.victim(t)

		before := lieSetFingerprint(r.mgr.InstalledAll())
		beforeWire := r.inj.liveLSIDs()
		beforeAccepted := len(r.inj.accepted)

		r.inj.failAt = r.inj.calls + failAt
		r.c.Handle(LinkDownEvent(v))
		if len(r.c.Errors) == 0 {
			// failAt exceeded the commit's call count: the whole commit
			// succeeded, so every failure position has been exercised.
			if failAt == 1 {
				t.Fatal("commit made no injector calls; nothing was tested")
			}
			if r.c.Standby.Hits != 1 {
				t.Fatalf("stats = %+v, want a hit on the final clean run", r.c.Standby)
			}
			break
		}
		if got := lieSetFingerprint(r.mgr.InstalledAll()); got != before {
			t.Fatalf("failAt=%d: lie set changed across rollback:\n before %s\n after  %s",
				failAt, before, got)
		}
		if got := r.inj.liveLSIDs(); !reflect.DeepEqual(got, beforeWire) {
			t.Fatalf("failAt=%d: wire LSAs %v after rollback, want %v", failAt, got, beforeWire)
		}
		if len(r.c.Decisions) != 0 {
			t.Fatalf("failAt=%d: failed commit logged a decision", failAt)
		}
		_ = beforeAccepted
	}
}

// TestStandbyInterleavedInvalidation: a demand change AND a lie change
// landing in the same batch tick (no debounce refill in between) must each
// register in the generation triple — the next failure finds the entry
// stale and replans instead of committing a plan computed against either
// outdated input. A precompute stamped after both changes serves hits
// again.
func TestStandbyInterleavedInvalidation(t *testing.T) {
	r := newStandbyRig(t, 3)
	r.sched.RunUntil(2 * standbyIdleDelay)
	v := r.victim(t)

	// Same instant, no scheduler steps: the demand shift and an
	// alarm-committed lie delta interleave before any refill can run.
	r.c.Handle(DemandEvent(topo.Fig1BluePrefixName, r.tp.MustNode(topo.Fig1B), 12e6))
	decisionsBefore := len(r.c.Decisions)
	r.c.Handle(AlarmEvent(alarmOn(t, r.tp, topo.Fig1B, topo.Fig1R2, 1.2)))
	if len(r.c.Decisions) == decisionsBefore {
		t.Fatal("alarm did not commit a lie change; the interleaving is not exercised")
	}

	r.c.Handle(LinkDownEvent(v))
	if r.c.Standby.Hits != 0 || r.c.Standby.Stale != 1 || r.c.Standby.Misses != 1 {
		t.Fatalf("stats = %+v, want the doubly-invalidated entry stale", r.c.Standby)
	}
	if len(r.c.Decisions) == decisionsBefore+1 {
		t.Fatal("from-scratch failover did not commit")
	}

	// A precompute stamped at the post-change generations must hit.
	r.c.PrecomputeStandby()
	plans := r.c.StandbyPlans()
	if len(plans) == 0 {
		t.Fatal("re-precompute cached nothing")
	}
	r.c.Handle(LinkDownEvent(r.tp.Link(plans[0])))
	if r.c.Standby.Hits != 1 {
		t.Fatalf("stats = %+v, want a hit after re-precompute", r.c.Standby)
	}
}

// TestPlanningSkipsFailedLinks: once a link is liveness-failed, alarm
// planning runs over the reduced topology — a plan can no longer route
// over the dead link — and alarms on the dead link itself are ignored.
func TestPlanningSkipsFailedLinks(t *testing.T) {
	r := newStandbyRig(t, 0) // standby off: exercise the failed-set remap alone
	b, r2 := r.tp.MustNode(topo.Fig1B), r.tp.MustNode(topo.Fig1R2)
	v, _ := r.tp.FindLink(b, r2)
	r.c.Handle(LinkDownEvent(v))

	// An alarm naming the dead link is obsolete: no plan, no error.
	decisionsBefore := len(r.c.Decisions)
	r.c.Handle(AlarmEvent(alarmOn(t, r.tp, topo.Fig1B, topo.Fig1R2, 1.2)))
	if len(r.c.Decisions) != decisionsBefore {
		t.Fatal("alarm on a failed link still produced a commit")
	}

	// An alarm elsewhere plans over the reduced topology: no committed
	// lie may steer over the dead B-R2 pair.
	r.c.Handle(AlarmEvent(alarmOn(t, r.tp, topo.Fig1A, topo.Fig1B, 1.2)))
	for prefix, lies := range r.mgr.InstalledAll() {
		for _, lie := range lies {
			if (lie.Attach == b && lie.Via == r2) || (lie.Attach == r2 && lie.Via == b) {
				t.Fatalf("prefix %s: lie %+v steers over the dead link", prefix, lie)
			}
		}
	}
}
