// Package controller implements the paper's Fibbing controller: it
// monitors link loads over SNMP, learns of new video clients from the
// servers, and — when a surge threatens congestion — computes additional
// equal-cost paths and uneven splitting ratios, compiles them into fake
// nodes, and injects them into the IGP through its point of presence.
// When the surge subsides it withdraws the lies, returning the network to
// pure IGP routing.
//
// The control loop is a policy engine built from three first-class types:
// a Strategy proposes, a Plan is the typed proposal (per-prefix lie sets
// plus a predicted max utilisation), and a southbound.Transaction commits
// the winning plan all-or-nothing. The Planner fans every registered
// strategy out concurrently and scores the proposals; the paper's tiered
// reactions (local ECMP, LP-optimal splits, withdrawal) are stock
// strategies, and new reaction policies plug in through
// New(..., WithStrategies(...)) without touching the engine.
package controller

import (
	"fmt"
	"math"
	"slices"
	"strings"
	"time"

	"fibbing.net/fibbing/internal/event"
	"fibbing.net/fibbing/internal/fibbing"
	"fibbing.net/fibbing/internal/qoe"
	"fibbing.net/fibbing/internal/southbound"
	"fibbing.net/fibbing/internal/te"
	"fibbing.net/fibbing/internal/topo"
)

// planGens is the planning-input invalidation triple. The struct is
// comparable: two equal triples mean demands, installed lies and the
// liveness topology are all unchanged since the stamp was taken.
type planGens struct {
	topo   uint64
	demand uint64
	lie    uint64
}

// DefaultTargetUtilisation is the post-reaction utilisation the
// controller aims for when Config.TargetUtilisation is unset. Exported
// so harnesses (internal/scenarios) can bound their invariants against
// the same value.
const DefaultTargetUtilisation = 0.75

// DefaultMaxLPRouters is the default topology-size bound for LP-based
// machinery (the lp-optimal strategy here, the LP reporting bound in
// internal/scenarios): the dense simplex is vastly superlinear in
// routers x links and stalls the control loop beyond this size.
const DefaultMaxLPRouters = 48

// DefaultWithdrawBelow is the IGP utilisation under which lies are
// withdrawn once every alarm has cleared.
const DefaultWithdrawBelow = 0.2

// Config parameterises the controller's policy. Fields whose zero value
// is a legitimate setting are pointers (Float builds them); nil means
// "use the default", so an explicit zero is never silently replaced.
type Config struct {
	// TargetUtilisation is the post-reaction utilisation the controller
	// aims for (nil: DefaultTargetUtilisation). Float(0) makes every
	// reaction purely best-effort: no plan ever "satisfies" the target,
	// so the planner always minimises predicted utilisation.
	TargetUtilisation *float64
	// MaxDenom bounds the ECMP weight denominator when realising
	// fractional splits (default 16, i.e. at most 16 fake nodes per
	// router per destination).
	MaxDenom int
	// WithdrawBelow: when every alarm has cleared and plain IGP routing
	// would stay below this utilisation, lies are withdrawn (nil:
	// DefaultWithdrawBelow). Float(0) disables withdrawal entirely.
	WithdrawBelow *float64
	// MaxLPRouters bounds the topology size for the lp-optimal strategy
	// (default DefaultMaxLPRouters); on larger networks the LP abstains
	// and the cheaper strategies compete.
	MaxLPRouters int
	// ScoreMode selects what the planner optimises: ScoreUtil (the zero
	// value: max link utilisation, the historical behaviour), ScoreQoE
	// (predicted viewer stall-seconds first) or ScoreBlended. Under
	// ScoreQoE/ScoreBlended the controller equips every planning round
	// with the QoE predictor over its tracked member counts.
	ScoreMode ScoreMode
}

// Float wraps a float64 for Config's optional fields.
func Float(v float64) *float64 { return &v }

// resolved carries the policy knobs with every sentinel resolved.
type resolved struct {
	target        float64
	maxDenom      int
	withdrawBelow float64
	maxLPRouters  int
	scoreMode     ScoreMode
}

func (c Config) resolve() resolved {
	r := resolved{
		target:        DefaultTargetUtilisation,
		maxDenom:      16,
		withdrawBelow: DefaultWithdrawBelow,
		maxLPRouters:  DefaultMaxLPRouters,
	}
	if c.TargetUtilisation != nil {
		r.target = *c.TargetUtilisation
	}
	if c.MaxDenom > 0 {
		r.maxDenom = c.MaxDenom
	}
	if c.WithdrawBelow != nil {
		r.withdrawBelow = *c.WithdrawBelow
	}
	if c.MaxLPRouters > 0 {
		r.maxLPRouters = c.MaxLPRouters
	}
	r.scoreMode = c.ScoreMode
	return r
}

// Decision records one committed plan, for logs and experiments.
type Decision struct {
	At     time.Duration
	Prefix string
	// Strategy is the winning strategy's name ("local-ecmp",
	// "lp-optimal", "ksp", "withdraw", or a custom strategy's Name()).
	Strategy string
	Lies     int
	Detail   string
}

// Controller is the policy engine. It consumes typed Events (monitor
// alarms, demand changes) and reacts by planning over its registered
// strategies and committing the winning plan transactionally; all event
// handling runs on the simulation scheduler's goroutine.
type Controller struct {
	topo    *topo.Topology
	lies    *southbound.LieManager
	cfg     resolved
	now     func() time.Duration
	planner *Planner

	// demand model: prefix -> ingress -> aggregate bit/s, maintained
	// from demand events.
	demand map[string]map[topo.NodeID]float64
	// demandPeak mirrors demand with the largest aggregate each entry
	// has reached: the scale reference for deciding an entry has
	// drained to zero. After 100k joins and 100k leaves the residual is
	// accumulated float roundoff proportional to the peak (~Gbit/s for
	// production crowds), not to any single event's delta.
	demandPeak map[string]map[topo.NodeID]float64
	// members mirrors demand with session counts: each positive-delta
	// demand event is one viewer joining, each negative-delta one
	// leaving. The counts parameterise the QoE predictor (a 100-session
	// aggregate stalls very differently from one fat flow of the same
	// volume) and are maintained unconditionally so reports can predict
	// QoE even when the planner scores on utilisation.
	members map[string]map[topo.NodeID]int

	// raised tracks links with active congestion alarms.
	raised map[topo.LinkID]bool

	// failed tracks links the liveness layer (internal/bfd) has declared
	// dead, keyed by the pair's canonical (lower) LinkID. Planning runs
	// over the topology minus these links.
	failed map[topo.LinkID]bool
	// preFailure snapshots the installed lie set at the first link
	// failure: failover plans are temporary detours, and when every
	// failed link has healed the controller reverts to this state if it
	// still evaluates better than the detour (see reactToRecovery).
	preFailure map[string][]fibbing.Lie

	// gens is the planning-input generation triple: demand changes,
	// lie-set changes (commits) and topology changes (liveness failures
	// and heals) each bump their own counter. A standby entry or an
	// artifact cache stamped with an older triple is stale. Maintained
	// unconditionally (the artifact cache needs it even without the
	// standby feature).
	gens planGens

	// Artifact cache for the planner hot path: arts memoises SPF trees,
	// believed-topology compilations, k-shortest paths, load estimates
	// and LP solves for the current (planning topology, gens) epoch;
	// artStats and lpSolver survive epoch changes so the counters stay
	// cumulative and the warm LP basis carries across demand bumps.
	arts     *PlanArtifacts
	artsGens planGens
	artStats *ArtifactStats
	lpSolver *te.MinMaxSolver

	// planningTopo memo: building the reduced clone is O(topology) and
	// planning happens per alarm, so the clone is cached per failure
	// epoch (failedEpoch bumps whenever the failed-link set changes).
	ptCache     *topo.Topology
	ptEpoch     uint64
	failedEpoch uint64

	// Fast-failover state (zero unless WithStandby enables the cache):
	// sched drives the idle-precompute debounce; standby caches one plan
	// per likely failed link, stamped with the gens triple it was
	// computed from.
	sched           *event.Scheduler
	standbyK        int
	standby         map[topo.LinkID]*standbyEntry
	precompute      event.Handle
	precomputeArmed bool

	// Standby counts the cache's life (see StandbyStats).
	Standby StandbyStats

	// futile memoises planning rounds that produced no plan: planning
	// is a pure function of (event link, demands, installed lies), so
	// while none of those change, repeated alarms (the monitor's
	// RepeatEvery, or many saturated links alarming round-robin) would
	// redo the identical fan-out only to reject the identical proposals.
	// A commit or a demand change clears the whole memo, so it never
	// holds more than one entry per alarmed link between changes.
	futile map[string]bool

	Decisions []Decision
	// Errors collects reaction failures (the controller keeps running).
	Errors []error
}

// Option configures a Controller at construction.
type Option func(*Controller)

// WithConfig sets the policy knobs.
func WithConfig(cfg Config) Option {
	return func(c *Controller) { c.cfg = cfg.resolve() }
}

// WithStrategies replaces the stock strategy set. Strategies are proposed
// concurrently and scored in registration order on ties.
func WithStrategies(strategies ...Strategy) Option {
	return func(c *Controller) {
		if len(strategies) > 0 {
			c.planner = NewPlanner(strategies...)
		}
	}
}

// New builds a controller injecting lies through the given manager. With
// no options it runs the stock strategies under the default policy.
func New(t *topo.Topology, lies *southbound.LieManager, now func() time.Duration, opts ...Option) *Controller {
	c := &Controller{
		topo:       t,
		lies:       lies,
		cfg:        Config{}.resolve(),
		now:        now,
		planner:    NewPlanner(),
		demand:     make(map[string]map[topo.NodeID]float64),
		demandPeak: make(map[string]map[topo.NodeID]float64),
		members:    make(map[string]map[topo.NodeID]int),
		raised:     make(map[topo.LinkID]bool),
		failed:     make(map[topo.LinkID]bool),
		futile:     make(map[string]bool),
		artStats:   &ArtifactStats{},
		lpSolver:   te.NewMinMaxSolver(),
	}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// Planner exposes the engine's planner (for reports and what-if tools).
func (c *Controller) Planner() *Planner { return c.planner }

// Handle is the controller's single entry point: it consumes one typed
// event, updates the demand/alarm state, and plans a reaction when the
// event calls for one.
func (c *Controller) Handle(ev Event) {
	switch ev.Kind {
	case EventDemandChanged:
		c.applyDemand(ev)
	case EventAlarmRaised:
		c.raised[ev.Alarm.Link] = true
		c.plan(ev)
	case EventAlarmCleared:
		delete(c.raised, ev.Alarm.Link)
		if len(c.raised) == 0 {
			c.plan(ev)
		}
	case EventLinkDown:
		if c.markFailed(ev.Link, true) {
			if len(c.failed) == 1 {
				// First failure of this episode: remember the healthy
				// lie set so heals can restore it.
				c.preFailure = c.lies.InstalledAll()
			}
			c.reactToFailure(ev)
		}
	case EventLinkUp:
		if c.markFailed(ev.Link, false) {
			c.reactToRecovery()
			c.gens.topo++
			c.armPrecompute()
		}
	}
}

// ensureArtifacts returns the artifact cache for the given planning
// topology, rebinding (and thereby dropping every memo) when the
// topology instance or the gens triple moved since the cache was built.
// The cumulative stats and the warm-LP solver survive the rebind.
func (c *Controller) ensureArtifacts(pt *topo.Topology) *PlanArtifacts {
	if c.arts != nil && c.arts.topo == pt && c.artsGens == c.gens {
		return c.arts
	}
	c.arts = newPlanArtifacts(pt, c.artStats, c.lpSolver)
	c.artsGens = c.gens
	return c.arts
}

// ArtifactStats snapshots the cumulative plan-cache hit/miss counters.
func (c *Controller) ArtifactStats() ArtifactStats { return *c.artStats }

// LPStats snapshots the warm-started LP solver's counters.
func (c *Controller) LPStats() te.WarmLPStats { return c.lpSolver.Stats() }

// ClientJoined registers a new video session (convenience wrapper around
// a demand event).
func (c *Controller) ClientJoined(prefix string, ingress topo.NodeID, rate float64) {
	c.Handle(DemandEvent(prefix, ingress, rate))
}

// ClientLeft unregisters a finished session.
func (c *Controller) ClientLeft(prefix string, ingress topo.NodeID, rate float64) {
	c.Handle(DemandEvent(prefix, ingress, -rate))
}

func (c *Controller) applyDemand(ev Event) {
	m := c.demand[ev.Prefix]
	if m == nil {
		if ev.DeltaRate <= 0 {
			return
		}
		m = make(map[topo.NodeID]float64)
		c.demand[ev.Prefix] = m
	}
	m[ev.Ingress] += ev.DeltaRate
	pk := c.demandPeak[ev.Prefix]
	if pk == nil {
		pk = make(map[topo.NodeID]float64)
		c.demandPeak[ev.Prefix] = pk
	}
	if m[ev.Ingress] > pk[ev.Ingress] {
		pk[ev.Ingress] = m[ev.Ingress]
	}
	// Session counting: one event, one viewer. Zero-delta events (rate
	// renegotiations) leave the count alone.
	mem := c.members[ev.Prefix]
	if mem == nil {
		mem = make(map[topo.NodeID]int)
		c.members[ev.Prefix] = mem
	}
	switch {
	case ev.DeltaRate > 0:
		mem[ev.Ingress]++
	case ev.DeltaRate < 0 && mem[ev.Ingress] > 0:
		mem[ev.Ingress]--
	}
	// Scale-relative zero test against the entry's peak: a full drain
	// leaves add/subtract roundoff proportional to the peak aggregate,
	// far above an absolute cutoff (or the final leave's own delta) once
	// crowds reach Gbit/s. A surviving phantom entry would keep the
	// planner chasing a prefix with no real traffic.
	if m[ev.Ingress] <= 1e-9*math.Max(1, pk[ev.Ingress]) {
		delete(m, ev.Ingress)
		delete(pk, ev.Ingress)
		delete(mem, ev.Ingress)
	}
	clear(c.futile) // changed demands may make a rejected plan viable
	// Standby plans and cached artifacts were computed for the old
	// demands.
	c.gens.demand++
	c.armPrecompute()
}

// Demands snapshots the current demand model.
func (c *Controller) Demands() []topo.Demand {
	var out []topo.Demand
	names := make([]string, 0, len(c.demand))
	for name := range c.demand {
		names = append(names, name)
	}
	slices.Sort(names)
	for _, name := range names {
		ingresses := make([]topo.NodeID, 0, len(c.demand[name]))
		for in := range c.demand[name] {
			ingresses = append(ingresses, in)
		}
		slices.Sort(ingresses)
		for _, in := range ingresses {
			out = append(out, topo.Demand{Ingress: in, PrefixName: name, Volume: c.demand[name][in]})
		}
	}
	return out
}

// QoEModel snapshots the controller's viewer model: the tracked member
// counts per aggregate with the default playback config (each session
// plays a fixed rate equal to its aggregate's per-session share) over
// the default prediction horizon. The snapshot is deep-copied, so
// callers may hold it across further demand events.
func (c *Controller) QoEModel() qoe.Model {
	members := make(map[string]map[topo.NodeID]int, len(c.members))
	for prefix, mem := range c.members {
		if len(mem) == 0 {
			continue
		}
		cp := make(map[topo.NodeID]int, len(mem))
		for n, v := range mem {
			cp[n] = v
		}
		members[prefix] = cp
	}
	return qoe.Model{Members: members, Horizon: qoe.DefaultHorizon}
}

// plan runs the planner for the event and commits the winning plan. A
// raised alarm whose installed lies already keep the prediction at target
// is stale and ignored. Strategy errors are soft as long as some plan
// commits (mirroring the old tier fallbacks); with no plan they are
// surfaced.
func (c *Controller) plan(ev Event) {
	demands := c.Demands()
	if ev.Kind == EventAlarmRaised && len(demands) == 0 {
		return
	}
	// Plan over the topology minus liveness-failed links, remapping the
	// alarm into the clone's ID space (node IDs are shared). An alarm on
	// a failed link itself is obsolete: the failover path owns it.
	pt := c.topo
	if len(c.failed) > 0 {
		pt = c.planningTopo()
		l := c.topo.Link(ev.Alarm.Link)
		nl, ok := pt.FindLink(l.From, l.To)
		if !ok {
			return
		}
		ev.Alarm.Link = nl.ID
	}
	// Check the memo before building the context: a hit means identical
	// inputs to an earlier no-plan round, so even the base-utilisation
	// evaluation (a full fluid routing) would come out the same.
	key := c.planKey(ev, demands)
	if c.futile[key] {
		return
	}
	ctx := buildPlanContext(c.ensureArtifacts(pt), pt, demands, c.lies.InstalledAll(), ev, c.cfg, len(c.raised))
	if ev.Kind == EventAlarmRaised && ctx.BaseUtil <= c.cfg.target {
		return // stale alarm
	}
	if c.cfg.scoreMode != ScoreUtil {
		ctx = ctx.WithQoE(c.QoEModel())
	}
	plan, errs := c.planner.Plan(ctx)
	if plan == nil {
		for _, err := range errs {
			c.Errors = append(c.Errors, fmt.Errorf("controller: %w", err))
		}
		c.futile[key] = true
		return
	}
	clear(c.futile)
	c.commit(plan)
}

// planKey fingerprints a planning round's inputs. Installed lies are
// covered implicitly: they only change through commits, which clear the
// memo.
func (c *Controller) planKey(ev Event, demands []topo.Demand) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d|%v|%d", ev.Alarm.Link, ev.Kind, c.lies.LieCount())
	for _, d := range demands {
		fmt.Fprintf(&b, "|%s:%d:%g", d.PrefixName, d.Ingress, d.Volume)
	}
	return b.String()
}

// commit applies the plan's per-prefix lie sets through one southbound
// transaction: either every prefix reconciles or none does.
func (c *Controller) commit(plan *Plan) {
	tx := c.lies.Begin()
	prefixes := plan.Prefixes()
	for _, prefix := range prefixes {
		if err := tx.Apply(prefix, plan.Lies[prefix]); err != nil {
			c.Errors = append(c.Errors, fmt.Errorf("controller: commit %s: %w", plan.Strategy, err))
			return
		}
	}
	delta, err := tx.Commit()
	if err != nil {
		c.Errors = append(c.Errors, fmt.Errorf("controller: commit %s: %w", plan.Strategy, err))
		return
	}
	if delta.Empty() {
		return // the plan was already installed; the IGP saw no traffic
	}
	c.log(strings.Join(prefixes, ","), plan.Strategy, plan.TotalLies(), plan.Rationale)
	// The installed lie set changed; standby plans and cached artifacts
	// were computed over the previous one.
	c.gens.lie++
	c.armPrecompute()
}

func (c *Controller) log(prefix, strategy string, lies int, detail string) {
	c.Decisions = append(c.Decisions, Decision{
		At: c.now(), Prefix: prefix, Strategy: strategy, Lies: lies, Detail: detail,
	})
}
