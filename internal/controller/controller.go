// Package controller implements the paper's Fibbing controller: it
// monitors link loads over SNMP, learns of new video clients from the
// servers, and — when a surge threatens congestion — computes additional
// equal-cost paths and uneven splitting ratios, compiles them into fake
// nodes, and injects them into the IGP through its point of presence.
// When the surge subsides it withdraws the lies, returning the network to
// pure IGP routing.
package controller

import (
	"fmt"
	"math"
	"sort"
	"time"

	"fibbing.net/fibbing/internal/fibbing"
	"fibbing.net/fibbing/internal/monitor"
	"fibbing.net/fibbing/internal/southbound"
	"fibbing.net/fibbing/internal/te"
	"fibbing.net/fibbing/internal/topo"
)

// DefaultTargetUtilisation is the post-reaction utilisation the
// controller aims for when Config.TargetUtilisation is unset. Exported
// so harnesses (internal/scenarios) can bound their invariants against
// the same value.
const DefaultTargetUtilisation = 0.75

// DefaultMaxLPRouters is the default topology-size bound for LP-based
// machinery (the tier-2 reaction here, the LP reporting bound in
// internal/scenarios): the dense simplex is vastly superlinear in
// routers x links and stalls the control loop beyond this size.
const DefaultMaxLPRouters = 48

// Config parameterises the controller's policy.
type Config struct {
	// TargetUtilisation is the post-reaction utilisation the controller
	// aims for (default DefaultTargetUtilisation). Reactions trigger on
	// monitor alarms.
	TargetUtilisation float64
	// MaxDenom bounds the ECMP weight denominator when realising
	// fractional splits (default 16, i.e. at most 16 fake nodes per
	// router per destination).
	MaxDenom int
	// WithdrawBelow: when every watched link drops below this
	// utilisation (monitor clear alarms), lies are withdrawn
	// (default 0.2).
	WithdrawBelow float64
	// MaxLPRouters bounds the topology size for the tier-2 LP reaction
	// (default DefaultMaxLPRouters); on larger networks the controller
	// stays with local equal-cost spreading.
	MaxLPRouters int
}

func (c Config) withDefaults() Config {
	if c.TargetUtilisation <= 0 {
		c.TargetUtilisation = DefaultTargetUtilisation
	}
	if c.MaxDenom <= 0 {
		c.MaxDenom = 16
	}
	if c.WithdrawBelow <= 0 {
		c.WithdrawBelow = 0.2
	}
	if c.MaxLPRouters <= 0 {
		c.MaxLPRouters = DefaultMaxLPRouters
	}
	return c
}

// Decision records one controller action, for logs and experiments.
type Decision struct {
	At       time.Duration
	Prefix   string
	Strategy string // "local-ecmp", "lp-optimal", "withdraw"
	Lies     int
	Detail   string
}

// Controller is the demo's control loop. It is driven by callbacks from
// the monitor (alarms) and the video servers (client notifications); all
// callbacks run on the simulation scheduler's goroutine.
type Controller struct {
	topo *topo.Topology
	lies *southbound.LieManager
	cfg  Config
	now  func() time.Duration

	// demand model: prefix -> ingress -> aggregate bit/s, maintained
	// from server notifications.
	demand map[string]map[topo.NodeID]float64

	// raised tracks links with active congestion alarms.
	raised map[topo.LinkID]bool

	Decisions []Decision
	// Errors collects reaction failures (the controller keeps running).
	Errors []error
}

// New builds a controller injecting lies through the given manager.
func New(t *topo.Topology, lies *southbound.LieManager, cfg Config, now func() time.Duration) *Controller {
	return &Controller{
		topo:   t,
		lies:   lies,
		cfg:    cfg.withDefaults(),
		now:    now,
		demand: make(map[string]map[topo.NodeID]float64),
		raised: make(map[topo.LinkID]bool),
	}
}

// ClientJoined registers a new video session (server notification).
func (c *Controller) ClientJoined(prefix string, ingress topo.NodeID, rate float64) {
	m := c.demand[prefix]
	if m == nil {
		m = make(map[topo.NodeID]float64)
		c.demand[prefix] = m
	}
	m[ingress] += rate
}

// ClientLeft unregisters a finished session.
func (c *Controller) ClientLeft(prefix string, ingress topo.NodeID, rate float64) {
	if m := c.demand[prefix]; m != nil {
		m[ingress] -= rate
		if m[ingress] <= 1e-9 {
			delete(m, ingress)
		}
	}
}

// Demands snapshots the current demand model.
func (c *Controller) Demands() []topo.Demand {
	var out []topo.Demand
	names := make([]string, 0, len(c.demand))
	for name := range c.demand {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ingresses := make([]topo.NodeID, 0, len(c.demand[name]))
		for in := range c.demand[name] {
			ingresses = append(ingresses, in)
		}
		sort.Slice(ingresses, func(i, j int) bool { return ingresses[i] < ingresses[j] })
		for _, in := range ingresses {
			out = append(out, topo.Demand{Ingress: in, PrefixName: name, Volume: c.demand[name][in]})
		}
	}
	return out
}

// HandleAlarm reacts to monitor threshold crossings.
func (c *Controller) HandleAlarm(a monitor.Alarm) {
	if a.Raised {
		c.raised[a.Link] = true
		c.react(a)
		return
	}
	delete(c.raised, a.Link)
	if len(c.raised) == 0 {
		c.maybeWithdraw()
	}
}

// react computes and injects lies for every prefix with demand. Policy:
//  1. Local ECMP spreading (the demo's first move, Figure 1c's fB): at
//     the hot link's head router, add unused downhill neighbors as
//     equal-cost paths. Accepted if predicted utilisation meets target.
//  2. LP-optimal splits (the demo's second move, Figure 1d's fA pair):
//     solve min-max utilisation, quantise the splits, realise with
//     equal-cost lies (or pin-all if paths must be removed).
func (c *Controller) react(a monitor.Alarm) {
	demands := c.Demands()
	if len(demands) == 0 {
		return
	}
	for _, prefix := range c.prefixesWithDemand() {
		if err := c.reactForPrefix(prefix, demands, a); err != nil {
			c.Errors = append(c.Errors, fmt.Errorf("controller: %s: %w", prefix, err))
		}
	}
}

func (c *Controller) prefixesWithDemand() []string {
	var out []string
	for name, m := range c.demand {
		if len(m) > 0 {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// installedLies snapshots the currently installed lies of every prefix
// the demand set touches.
func (c *Controller) installedLies(demands []topo.Demand) map[string][]fibbing.Lie {
	liesByPrefix := make(map[string][]fibbing.Lie)
	for _, d := range demands {
		if _, ok := liesByPrefix[d.PrefixName]; !ok {
			liesByPrefix[d.PrefixName] = c.lies.Installed(d.PrefixName)
		}
	}
	return liesByPrefix
}

// predictedMaxUtil computes the fluid max utilisation of routing the
// current demands over the network with the currently installed lies.
func (c *Controller) predictedMaxUtil(demands []topo.Demand) (float64, error) {
	loads, err := te.LoadsWithLies(c.topo, c.installedLies(demands), demands)
	if err != nil {
		return 0, err
	}
	return te.MaxUtilOfLoads(c.topo, loads), nil
}

func (c *Controller) reactForPrefix(prefix string, demands []topo.Demand, a monitor.Alarm) error {
	// Skip when the lies already installed (e.g. by an earlier alarm in
	// the same poll cycle) are predicted to keep utilisation at target:
	// the alarm is stale.
	current := math.Inf(1)
	if util, err := c.predictedMaxUtil(demands); err == nil {
		if util <= c.cfg.TargetUtilisation {
			return nil
		}
		current = util
	}

	// Tier 1: local equal-cost spreading at the congested link's head,
	// accepted outright when it is predicted to reach the target.
	hot := c.topo.Link(a.Link)
	localLies, localUtil, localOK := c.localSpread(prefix, demands, hot.From)
	if localOK && localUtil <= c.cfg.TargetUtilisation {
		delta, err := c.lies.Apply(prefix, localLies)
		if err != nil {
			return err
		}
		if !delta.Empty() {
			c.log(prefix, "local-ecmp", len(localLies),
				fmt.Sprintf("ECMP at %s after %s hit %.0f%%", c.topo.Name(hot.From), a.Name, 100*a.Utilisation))
		}
		return nil
	}

	// Tier 3 (shared by both paths below): a local spread that strictly
	// improves the predicted utilisation is better than nothing.
	localFallback := func(reason string) (bool, error) {
		if !localOK || localUtil >= current-1e-9 {
			return false, nil
		}
		delta, err := c.lies.Apply(prefix, localLies)
		if err != nil {
			return false, err
		}
		if !delta.Empty() {
			c.log(prefix, "local-ecmp-fallback", len(localLies),
				fmt.Sprintf("%s; ECMP at %s cuts predicted util to %.2f",
					reason, c.topo.Name(hot.From), localUtil))
		}
		return true, nil
	}

	// Tier 2: LP-optimal splits, guarded by topology size: beyond the
	// bound the dense simplex would stall the control loop.
	if n := c.routerCount(); n > c.cfg.MaxLPRouters {
		_, err := localFallback(fmt.Sprintf("%d routers exceed the LP bound (%d)", n, c.cfg.MaxLPRouters))
		return err
	}
	if err := c.applyOptimal(prefix, demands, a); err != nil {
		// The optimum cannot be realised on this topology (e.g. the
		// augmentation would loop).
		applied, aerr := localFallback(fmt.Sprintf("optimum unrealisable (%v)", err))
		if aerr != nil {
			return aerr
		}
		if applied {
			return nil
		}
		return err
	}
	return nil
}

// routerCount returns the number of non-host nodes.
func (c *Controller) routerCount() int {
	n := 0
	for _, node := range c.topo.Nodes() {
		if !node.Host {
			n++
		}
	}
	return n
}

// applyOptimal is the tier-2 reaction: solve the min-max LP, quantise the
// splits, compile and inject the lies.
func (c *Controller) applyOptimal(prefix string, demands []topo.Demand, a monitor.Alarm) error {
	opt, err := te.SolveMinMax(c.topo, demands)
	if err != nil {
		return err
	}
	splits := opt.Splits[prefix]
	dag, err := fibbing.SplitsToDAG(splits, c.cfg.MaxDenom)
	if err != nil {
		return err
	}
	// Drop attachment routers from the DAG: their delivery is local.
	p, _ := c.topo.PrefixByName(prefix)
	for _, at := range p.Attachments {
		delete(dag, at.Node)
	}
	aug, err := fibbing.AugmentAddPaths(c.topo, prefix, dag)
	strategy := "lp-optimal"
	if err != nil {
		// The optimum removes IGP paths: fall back to global pinning.
		aug, err = fibbing.AugmentPinAll(c.topo, prefix, dag)
		if err != nil {
			return err
		}
		aug, err = fibbing.ReduceLies(c.topo, prefix, aug, dag)
		if err != nil {
			return err
		}
		strategy = "lp-optimal-pinned"
	}
	if err := fibbing.Verify(c.topo, prefix, aug.Lies, dag); err != nil {
		return fmt.Errorf("refusing unverifiable augmentation: %w", err)
	}
	delta, err := c.lies.Apply(prefix, aug.Lies)
	if err != nil {
		return err
	}
	if !delta.Empty() {
		c.log(prefix, strategy, len(aug.Lies),
			fmt.Sprintf("θ*=%.3f after %s hit %.0f%%", opt.MaxUtilisation, a.Name, 100*a.Utilisation))
	}
	return nil
}

// localSpread builds the tier-1 requirement: hot router keeps its IGP
// next hops and adds every unused downhill neighbor, evenly. Returns the
// lies with their predicted max utilisation; ok means the lies exist and
// verify (the caller decides whether the prediction is good enough).
func (c *Controller) localSpread(prefix string, demands []topo.Demand, hot topo.NodeID) ([]fibbing.Lie, float64, bool) {
	views, err := fibbing.IGPView(c.topo, prefix)
	if err != nil {
		return nil, 0, false
	}
	hv, ok := views[hot]
	if !ok || hv.Local || len(hv.NextHops) == 0 {
		return nil, 0, false
	}
	desired := fibbing.NextHopWeights{}
	for nh := range hv.NextHops {
		desired[nh] = 1
	}
	added := false
	for _, lid := range c.topo.OutLinks(hot) {
		v := c.topo.Link(lid).To
		if c.topo.Node(v).Host || desired[v] > 0 {
			continue
		}
		vv, ok := views[v]
		if !ok {
			continue
		}
		if vv.Local || (len(vv.NextHops) > 0 && vv.Dist < hv.Dist) {
			desired[v] = 1
			added = true
		}
	}
	if !added {
		return nil, 0, false
	}
	dag := fibbing.DAG{hot: desired}
	aug, err := fibbing.AugmentAddPaths(c.topo, prefix, dag)
	if err != nil {
		return nil, 0, false
	}
	// Evaluate the candidate against the full installed lie set (other
	// prefixes keep their lies; this prefix's are replaced by the
	// candidate), mirroring predictedMaxUtil so the caller's comparison
	// is apples-to-apples.
	liesByPrefix := c.installedLies(demands)
	liesByPrefix[prefix] = aug.Lies
	loads, err := te.LoadsWithLies(c.topo, liesByPrefix, demands)
	if err != nil {
		return nil, 0, false
	}
	if err := fibbing.Verify(c.topo, prefix, aug.Lies, dag); err != nil {
		return nil, 0, false
	}
	return aug.Lies, te.MaxUtilOfLoads(c.topo, loads), true
}

// maybeWithdraw removes all lies once the network would stay below the
// withdraw threshold on plain IGP routing with current demands.
func (c *Controller) maybeWithdraw() {
	if c.lies.LieCount() == 0 {
		return
	}
	demands := c.Demands()
	if len(demands) > 0 {
		loads, err := te.IGPLoads(c.topo, demands)
		if err != nil {
			c.Errors = append(c.Errors, err)
			return
		}
		if te.MaxUtilOfLoads(c.topo, loads) > c.cfg.WithdrawBelow {
			return // IGP alone would congest again; keep the lies
		}
	}
	if err := c.lies.WithdrawAll(); err != nil {
		c.Errors = append(c.Errors, err)
		return
	}
	c.log("*", "withdraw", 0, "surge over; network back to pure IGP")
}

func (c *Controller) log(prefix, strategy string, lies int, detail string) {
	c.Decisions = append(c.Decisions, Decision{
		At: c.now(), Prefix: prefix, Strategy: strategy, Lies: lies, Detail: detail,
	})
}
