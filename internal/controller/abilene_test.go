package controller

import (
	"testing"
	"time"

	"fibbing.net/fibbing/internal/flashcrowd"
	"fibbing.net/fibbing/internal/te"
	"fibbing.net/fibbing/internal/topo"
)

// TestAbileneFlashCrowd runs the whole machinery on the Abilene backbone:
// a flash crowd from Seattle towards the New York content prefix congests
// the northern route; the controller must spread it without breaking
// delivery, on a real ISP topology rather than the Figure 1 gadget.
func TestAbileneFlashCrowd(t *testing.T) {
	network := topo.Abilene(10e6, time.Millisecond)
	if err := network.Validate(); err != nil {
		t.Fatal(err)
	}
	sim, err := NewSim(SimOpts{
		Topology: network,
		Prefix:   "cdn-east",
		AttachAt: "NewYork",
		WithCtrl: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 36 sessions x 0.5 Mbit/s = 18 Mbit/s from Seattle: no single
	// 10 Mbit/s path can carry it.
	err = sim.Runner.Schedule([]flashcrowd.Wave{
		{At: 2 * time.Second, Ingress: "Seattle", Flows: 12, Rate: 0.5e6},
		{At: 10 * time.Second, Ingress: "Seattle", Flows: 24, Rate: 0.5e6},
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.Run(60 * time.Second)

	if sim.Lies.LieCount() == 0 {
		t.Fatalf("controller never reacted on Abilene: %+v", sim.Ctrl.Decisions)
	}
	if len(sim.Ctrl.Errors) > 0 {
		t.Fatalf("controller errors: %v", sim.Ctrl.Errors)
	}
	if len(sim.Domain.Errors) > 0 {
		t.Fatalf("protocol errors: %v", sim.Domain.Errors)
	}
	// Every session must receive its full rate: 18 Mbit/s delivered.
	if tt := sim.Net.TotalThroughput(); tt < 18e6*0.99 {
		t.Fatalf("delivered %v bit/s, want 18e6 (flows starved)", tt)
	}
	if u := sim.Net.MaxUtilisation(); u > 1.0 {
		t.Fatalf("utilisation %v", u)
	}
	blocked := 0
	for _, id := range sim.Runner.Flows() {
		if f := sim.Net.Flow(id); f == nil || f.Blocked() {
			blocked++
		}
	}
	if blocked != 0 {
		t.Fatalf("%d flows blocked", blocked)
	}
}

// TestAbileneMinMaxPipeline checks the analytic pipeline end to end on
// Abilene: LP optimum realised by lies within quantisation error.
func TestAbileneMinMaxPipeline(t *testing.T) {
	network := topo.Abilene(10e6, 0)
	demands := []topo.Demand{
		{Ingress: network.MustNode("Seattle"), PrefixName: "cdn-east", Volume: 9e6},
		{Ingress: network.MustNode("LosAngeles"), PrefixName: "cdn-east", Volume: 6e6},
		{Ingress: network.MustNode("Chicago"), PrefixName: "cdn-west", Volume: 7e6},
	}
	igp, err := te.ECMPOnlyUtilisation(network, demands)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := te.RealizeMinMax(network, demands, 16)
	if err != nil {
		t.Fatal(err)
	}
	if fb.Optimal >= igp {
		t.Fatalf("LP (%v) no better than IGP (%v): demands too weak to matter", fb.Optimal, igp)
	}
	if fb.Realised > fb.Optimal*1.25 {
		t.Fatalf("realisation %v too far above optimum %v", fb.Realised, fb.Optimal)
	}
	if fb.Lies == 0 {
		t.Fatalf("no lies needed? igp=%v optimal=%v", igp, fb.Optimal)
	}
}

// TestTwoPrefixSurge exercises per-destination control under load: both
// CDN prefixes surge at once; the controller installs separate lie sets
// and both crowds are served.
func TestTwoPrefixSurge(t *testing.T) {
	network := topo.Abilene(10e6, time.Millisecond)
	sim, err := NewSim(SimOpts{
		Topology: network,
		Prefix:   "cdn-east",
		AttachAt: "NewYork",
		WithCtrl: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Second runner for the west prefix, sharing the network and
	// reporting into the same controller.
	westRunner := *sim.Runner
	westRunner.Prefix = "cdn-west"
	westRunner.OnJoin = func(ingress topo.NodeID, rate float64) {
		sim.Ctrl.ClientJoined("cdn-west", ingress, rate)
	}
	westRunner.OnLeave = func(ingress topo.NodeID, rate float64) {
		sim.Ctrl.ClientLeft("cdn-west", ingress, rate)
	}
	westRunner.OnFlowStarted = nil

	err = sim.Runner.Schedule([]flashcrowd.Wave{
		{At: 2 * time.Second, Ingress: "Seattle", Flows: 30, Rate: 0.5e6},
	})
	if err != nil {
		t.Fatal(err)
	}
	err = westRunner.Schedule([]flashcrowd.Wave{
		{At: 4 * time.Second, Ingress: "Atlanta", Flows: 30, Rate: 0.5e6},
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.Run(60 * time.Second)

	if len(sim.Ctrl.Errors) > 0 {
		t.Fatalf("controller errors: %v", sim.Ctrl.Errors)
	}
	// 30 Mbit/s total demand must be fully delivered.
	if tt := sim.Net.TotalThroughput(); tt < 30e6*0.99 {
		t.Fatalf("delivered %v bit/s of 30e6", tt)
	}
}
