package snmp

import (
	"bytes"
	"testing"
)

// FuzzDecodeMessage drives the hand-rolled BER decoder with arbitrary
// bytes: it must never panic, and anything it accepts must survive a
// canonical re-encode/decode round trip bit-for-bit.
func FuzzDecodeMessage(f *testing.F) {
	// Seed corpus: one well-formed message per PDU type and value kind.
	req := &Message{
		Version:   Version2c,
		Community: "public",
		PDU: PDU{
			Type:      GetRequest,
			RequestID: 42,
			VarBinds: []VarBind{
				{OID: MustOID("1.3.6.1.2.1.2.2.1.10.7"), Value: Value{Kind: KindNull}},
			},
		},
	}
	f.Add(req.Encode())
	resp := &Message{
		Version:   Version2c,
		Community: "public",
		PDU: PDU{
			Type:      GetResponse,
			RequestID: 42,
			VarBinds: []VarBind{
				{OID: MustOID("1.3.6.1.2.1.2.2.1.10.7"), Value: Counter64Value(1 << 40)},
				{OID: MustOID("1.3.6.1.2.1.2.2.1.5.7"), Value: GaugeValue(10e6)},
				{OID: MustOID("1.3.6.1.2.1.1.5.0"), Value: StringValue("R3")},
				{OID: MustOID("1.3.6.1.2.1.1.7.0"), Value: IntegerValue(-72)},
			},
		},
	}
	f.Add(resp.Encode())
	bulk := &Message{
		Version:   Version2c,
		Community: "c",
		PDU: PDU{
			Type:        GetBulkRequest,
			RequestID:   7,
			ErrorStatus: 0,  // non-repeaters
			ErrorIndex:  10, // max-repetitions
			VarBinds:    []VarBind{{OID: MustOID("1.3.6.1"), Value: Value{Kind: KindNull}}},
		},
	}
	f.Add(bulk.Encode())
	// A few malformed shapes: truncated TLV, absurd length, empty.
	f.Add([]byte{})
	f.Add([]byte{0x30})
	f.Add([]byte{0x30, 0x84, 0xff, 0xff, 0xff, 0xff})
	f.Add(resp.Encode()[:10])

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeMessage(data)
		if err != nil {
			return // rejected input is fine; panicking is not
		}
		enc := m.Encode()
		m2, err := DecodeMessage(enc)
		if err != nil {
			t.Fatalf("canonical re-encode does not decode: %v\nencoded: %x", err, enc)
		}
		enc2 := m2.Encode()
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("re-encode not stable:\nfirst:  %x\nsecond: %x", enc, enc2)
		}
	})
}

// FuzzParseOID checks the dotted-decimal OID parser against its printer.
func FuzzParseOID(f *testing.F) {
	f.Add("1.3.6.1.2.1.31.1.1.1.6")
	f.Add("0")
	f.Add("..")
	f.Add("1.3.4294967295.2")
	f.Fuzz(func(t *testing.T, s string) {
		oid, err := ParseOID(s)
		if err != nil {
			return
		}
		back, err := ParseOID(oid.String())
		if err != nil {
			t.Fatalf("printed OID %q does not reparse: %v", oid.String(), err)
		}
		if oid.Cmp(back) != 0 {
			t.Fatalf("round trip changed OID: %v -> %v", oid, back)
		}
	})
}
