package snmp

import (
	"fmt"
	"net"
	"sync/atomic"
	"time"
)

// Transport delivers one encoded request and returns the encoded response.
type Transport interface {
	RoundTrip(req []byte) ([]byte, error)
}

// DirectTransport calls an agent in-process — the deterministic path used
// inside the discrete-event simulation (the PDUs are still fully encoded
// and decoded).
type DirectTransport struct {
	Agent *Agent
}

// RoundTrip implements Transport.
func (d DirectTransport) RoundTrip(req []byte) ([]byte, error) {
	resp := d.Agent.HandleRequest(req)
	if resp == nil {
		return nil, fmt.Errorf("snmp: agent dropped request")
	}
	return resp, nil
}

// UDPTransport sends requests over a UDP socket with timeout and retries.
type UDPTransport struct {
	Addr    string
	Timeout time.Duration
	Retries int
}

// RoundTrip implements Transport.
func (u UDPTransport) RoundTrip(req []byte) ([]byte, error) {
	timeout := u.Timeout
	if timeout <= 0 {
		timeout = time.Second
	}
	tries := u.Retries + 1
	var lastErr error
	for i := 0; i < tries; i++ {
		resp, err := u.once(req, timeout)
		if err == nil {
			return resp, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("snmp: request failed after %d tries: %w", tries, lastErr)
}

func (u UDPTransport) once(req []byte, timeout time.Duration) ([]byte, error) {
	conn, err := net.Dial("udp", u.Addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
		return nil, err
	}
	if _, err := conn.Write(req); err != nil {
		return nil, err
	}
	buf := make([]byte, 64*1024)
	n, err := conn.Read(buf)
	if err != nil {
		return nil, err
	}
	out := make([]byte, n)
	copy(out, buf[:n])
	return out, nil
}

// Client issues SNMP queries over a Transport.
type Client struct {
	Transport Transport
	Community string
	reqID     atomic.Int32
}

// NewClient builds a client.
func NewClient(tr Transport, community string) *Client {
	return &Client{Transport: tr, Community: community}
}

func (c *Client) roundTrip(pdu PDU) (*Message, error) {
	pdu.RequestID = c.reqID.Add(1)
	req := &Message{Version: Version2c, Community: c.Community, PDU: pdu}
	raw, err := c.Transport.RoundTrip(req.Encode())
	if err != nil {
		return nil, err
	}
	resp, err := DecodeMessage(raw)
	if err != nil {
		return nil, err
	}
	if resp.PDU.Type != GetResponse {
		return nil, fmt.Errorf("snmp: unexpected response type %v", resp.PDU.Type)
	}
	if resp.PDU.RequestID != pdu.RequestID {
		return nil, fmt.Errorf("snmp: response ID %d != request %d", resp.PDU.RequestID, pdu.RequestID)
	}
	if resp.PDU.ErrorStatus != ErrNoError {
		return nil, fmt.Errorf("snmp: error status %d at index %d", resp.PDU.ErrorStatus, resp.PDU.ErrorIndex)
	}
	return resp, nil
}

// Get fetches the values of the given OIDs.
func (c *Client) Get(oids ...OID) ([]VarBind, error) {
	vbs := make([]VarBind, len(oids))
	for i, o := range oids {
		vbs[i] = VarBind{OID: o, Value: Value{Kind: KindNull}}
	}
	resp, err := c.roundTrip(PDU{Type: GetRequest, VarBinds: vbs})
	if err != nil {
		return nil, err
	}
	if len(resp.PDU.VarBinds) != len(oids) {
		return nil, fmt.Errorf("snmp: got %d varbinds, want %d", len(resp.PDU.VarBinds), len(oids))
	}
	return resp.PDU.VarBinds, nil
}

// GetCounter fetches a single counter OID as uint64 (Counter32/64/Gauge).
func (c *Client) GetCounter(oid OID) (uint64, error) {
	vbs, err := c.Get(oid)
	if err != nil {
		return 0, err
	}
	v := vbs[0].Value
	switch v.Kind {
	case KindCounter32, KindCounter64, KindGauge32, KindTimeTicks:
		return v.Uint, nil
	case KindInteger:
		return uint64(v.Int), nil
	default:
		return 0, fmt.Errorf("snmp: %v is %v, not a counter", oid, v.Kind)
	}
}

// GetNext fetches the lexicographic successors of the given OIDs.
func (c *Client) GetNext(oids ...OID) ([]VarBind, error) {
	vbs := make([]VarBind, len(oids))
	for i, o := range oids {
		vbs[i] = VarBind{OID: o, Value: Value{Kind: KindNull}}
	}
	resp, err := c.roundTrip(PDU{Type: GetNextRequest, VarBinds: vbs})
	if err != nil {
		return nil, err
	}
	return resp.PDU.VarBinds, nil
}

// Walk visits every object under root in MIB order using GetNext.
func (c *Client) Walk(root OID, fn func(VarBind) error) error {
	cur := root
	for {
		vbs, err := c.GetNext(cur)
		if err != nil {
			return err
		}
		if len(vbs) != 1 {
			return fmt.Errorf("snmp: walk got %d varbinds", len(vbs))
		}
		vb := vbs[0]
		if vb.Value.Kind == KindEndOfMibView || !vb.OID.HasPrefix(root) {
			return nil
		}
		if err := fn(vb); err != nil {
			return err
		}
		cur = vb.OID
	}
}

// BulkWalk visits every object under root using GetBulk (fewer round
// trips than Walk).
func (c *Client) BulkWalk(root OID, maxRep int, fn func(VarBind) error) error {
	if maxRep < 1 {
		maxRep = 16
	}
	cur := root
	for {
		resp, err := c.roundTrip(PDU{
			Type:        GetBulkRequest,
			ErrorStatus: 0,             // non-repeaters
			ErrorIndex:  int32(maxRep), // max-repetitions
			VarBinds:    []VarBind{{OID: cur, Value: Value{Kind: KindNull}}},
		})
		if err != nil {
			return err
		}
		if len(resp.PDU.VarBinds) == 0 {
			return nil
		}
		progressed := false
		for _, vb := range resp.PDU.VarBinds {
			if vb.Value.Kind == KindEndOfMibView || !vb.OID.HasPrefix(root) {
				return nil
			}
			if err := fn(vb); err != nil {
				return err
			}
			cur = vb.OID
			progressed = true
		}
		if !progressed {
			return nil
		}
	}
}
