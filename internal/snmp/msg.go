package snmp

import "fmt"

// PDUType discriminates SNMP operations.
type PDUType byte

// Supported PDU types.
const (
	GetRequest     PDUType = tagGetRequest
	GetNextRequest PDUType = tagGetNextRequest
	GetResponse    PDUType = tagGetResponse
	SetRequest     PDUType = tagSetRequest
	GetBulkRequest PDUType = tagGetBulkRequest
)

func (t PDUType) String() string {
	switch t {
	case GetRequest:
		return "get"
	case GetNextRequest:
		return "get-next"
	case GetResponse:
		return "response"
	case SetRequest:
		return "set"
	case GetBulkRequest:
		return "get-bulk"
	default:
		return fmt.Sprintf("pdu(%#x)", byte(t))
	}
}

// Error status codes (SNMPv2c).
const (
	ErrNoError    = 0
	ErrTooBig     = 1
	ErrGenErr     = 5
	ErrNoAccess   = 6
	ErrAuthError  = 16 // community mismatch (reported, not on the wire)
	ErrReadOnly   = 4
	ErrWrongValue = 10
)

// VarBind is one (OID, value) pair.
type VarBind struct {
	OID   OID
	Value Value
}

// PDU is the operation part of a message. For GetBulk, NonRepeaters and
// MaxRepetitions reuse the error-status/error-index fields as per RFC 3416.
type PDU struct {
	Type        PDUType
	RequestID   int32
	ErrorStatus int32 // or non-repeaters for GetBulk
	ErrorIndex  int32 // or max-repetitions for GetBulk
	VarBinds    []VarBind
}

// Message is a community-based SNMP message (version 1 = SNMPv2c).
type Message struct {
	Version   int64 // 1 for v2c
	Community string
	PDU       PDU
}

// Version constant for SNMPv2c.
const Version2c = 1

// Encode serialises the message to BER.
func (m *Message) Encode() []byte {
	var vbl []byte
	for _, vb := range m.PDU.VarBinds {
		var one []byte
		one = appendOID(one, vb.OID)
		one = appendValue(one, vb.Value)
		vbl = appendTLV(vbl, tagSequence, one)
	}
	var pdu []byte
	pdu = appendInt(pdu, tagInteger, int64(m.PDU.RequestID))
	pdu = appendInt(pdu, tagInteger, int64(m.PDU.ErrorStatus))
	pdu = appendInt(pdu, tagInteger, int64(m.PDU.ErrorIndex))
	pdu = appendTLV(pdu, tagSequence, vbl)

	var body []byte
	body = appendInt(body, tagInteger, m.Version)
	body = appendTLV(body, tagOctetString, []byte(m.Community))
	body = appendTLV(body, byte(m.PDU.Type), pdu)

	return appendTLV(nil, tagSequence, body)
}

// DecodeMessage parses one BER-encoded SNMP message.
func DecodeMessage(buf []byte) (*Message, error) {
	r := &reader{buf: buf}
	tag, content, err := r.readTLV()
	if err != nil {
		return nil, err
	}
	if tag != tagSequence {
		return nil, fmt.Errorf("snmp: message is not a sequence (tag %#x)", tag)
	}
	if !r.done() {
		return nil, fmt.Errorf("snmp: trailing bytes after message")
	}
	body := &reader{buf: content}

	m := &Message{}
	tag, c, err := body.readTLV()
	if err != nil || tag != tagInteger {
		return nil, fmt.Errorf("snmp: missing version")
	}
	if m.Version, err = decodeInt(c); err != nil {
		return nil, err
	}
	tag, c, err = body.readTLV()
	if err != nil || tag != tagOctetString {
		return nil, fmt.Errorf("snmp: missing community")
	}
	m.Community = string(c)

	tag, c, err = body.readTLV()
	if err != nil {
		return nil, fmt.Errorf("snmp: missing PDU")
	}
	switch PDUType(tag) {
	case GetRequest, GetNextRequest, GetResponse, SetRequest, GetBulkRequest:
		m.PDU.Type = PDUType(tag)
	default:
		return nil, fmt.Errorf("snmp: unsupported PDU type %#x", tag)
	}
	if !body.done() {
		return nil, fmt.Errorf("snmp: trailing bytes after PDU")
	}

	p := &reader{buf: c}
	for i, dst := range []*int32{&m.PDU.RequestID, &m.PDU.ErrorStatus, &m.PDU.ErrorIndex} {
		tag, c, err := p.readTLV()
		if err != nil || tag != tagInteger {
			return nil, fmt.Errorf("snmp: missing PDU header field %d", i)
		}
		v, err := decodeInt(c)
		if err != nil {
			return nil, err
		}
		*dst = int32(v)
	}
	tag, c, err = p.readTLV()
	if err != nil || tag != tagSequence {
		return nil, fmt.Errorf("snmp: missing varbind list")
	}
	if !p.done() {
		return nil, fmt.Errorf("snmp: trailing bytes after varbinds")
	}
	vbl := &reader{buf: c}
	for !vbl.done() {
		tag, c, err := vbl.readTLV()
		if err != nil || tag != tagSequence {
			return nil, fmt.Errorf("snmp: bad varbind")
		}
		vb := &reader{buf: c}
		tag, oc, err := vb.readTLV()
		if err != nil || tag != tagOID {
			return nil, fmt.Errorf("snmp: varbind without OID")
		}
		oid, err := decodeOIDContent(oc)
		if err != nil {
			return nil, err
		}
		tag, vc, err := vb.readTLV()
		if err != nil {
			return nil, fmt.Errorf("snmp: varbind without value")
		}
		val, err := decodeValue(tag, vc)
		if err != nil {
			return nil, err
		}
		if !vb.done() {
			return nil, fmt.Errorf("snmp: trailing bytes in varbind")
		}
		m.PDU.VarBinds = append(m.PDU.VarBinds, VarBind{OID: oid, Value: val})
	}
	return m, nil
}
