package snmp

import (
	"math/rand"
	"net"
	"testing"
	"testing/quick"
	"time"
)

func TestOIDParseAndString(t *testing.T) {
	o, err := ParseOID("1.3.6.1.2.1.2.2.1.16.3")
	if err != nil {
		t.Fatal(err)
	}
	if o.String() != "1.3.6.1.2.1.2.2.1.16.3" {
		t.Fatalf("round trip = %q", o.String())
	}
	for _, bad := range []string{"", "1", "x.2", "3.50"} {
		if _, err := ParseOID(bad); err == nil {
			t.Errorf("ParseOID(%q) should fail", bad)
		}
	}
}

func TestOIDCmpAndPrefix(t *testing.T) {
	a := MustOID("1.3.6.1.2.1.2")
	b := MustOID("1.3.6.1.2.1.2.2")
	c := MustOID("1.3.6.1.2.1.3")
	if a.Cmp(b) != -1 || b.Cmp(a) != 1 || a.Cmp(a) != 0 {
		t.Fatalf("prefix ordering wrong")
	}
	if b.Cmp(c) != -1 {
		t.Fatalf("sibling ordering wrong")
	}
	if !b.HasPrefix(a) || a.HasPrefix(b) || c.HasPrefix(a) {
		t.Fatalf("HasPrefix wrong")
	}
}

func TestMessageRoundTrip(t *testing.T) {
	msg := &Message{
		Version:   Version2c,
		Community: "public",
		PDU: PDU{
			Type:      GetRequest,
			RequestID: 42,
			VarBinds: []VarBind{
				{OID: MustOID("1.3.6.1.2.1.1.1.0"), Value: Value{Kind: KindNull}},
				{OID: MustOID("1.3.6.1.2.1.2.2.1.16.3"), Value: Counter64Value(1 << 40)},
				{OID: MustOID("1.3.6.1.2.1.2.2.1.2.1"), Value: StringValue("B->R2")},
				{OID: MustOID("1.3.6.1.2.1.2.2.1.5.1"), Value: GaugeValue(16_000_000)},
				{OID: MustOID("1.3.6.1.2.1.1.9.0"), Value: IntegerValue(-12345)},
			},
		},
	}
	got, err := DecodeMessage(msg.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Community != "public" || got.PDU.RequestID != 42 || got.PDU.Type != GetRequest {
		t.Fatalf("header = %+v", got)
	}
	if len(got.PDU.VarBinds) != 5 {
		t.Fatalf("varbinds = %d", len(got.PDU.VarBinds))
	}
	if got.PDU.VarBinds[1].Value.Uint != 1<<40 || got.PDU.VarBinds[1].Value.Kind != KindCounter64 {
		t.Fatalf("counter64 = %+v", got.PDU.VarBinds[1].Value)
	}
	if string(got.PDU.VarBinds[2].Value.Bytes) != "B->R2" {
		t.Fatalf("string = %+v", got.PDU.VarBinds[2].Value)
	}
	if got.PDU.VarBinds[4].Value.Int != -12345 {
		t.Fatalf("negative integer = %+v", got.PDU.VarBinds[4].Value)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{0x30},
		{0x02, 0x01, 0x01},       // not a sequence
		{0x30, 0x02, 0xFF, 0xFF}, // junk content
	}
	for i, c := range cases {
		if _, err := DecodeMessage(c); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	// Truncations of a valid message must all fail (or decode to the
	// full message only at full length).
	msg := &Message{Version: Version2c, Community: "c", PDU: PDU{Type: GetRequest,
		VarBinds: []VarBind{{OID: MustOID("1.3.6.1.2"), Value: Value{Kind: KindNull}}}}}
	enc := msg.Encode()
	for i := 1; i < len(enc); i++ {
		if _, err := DecodeMessage(enc[:i]); err == nil {
			t.Fatalf("truncation at %d accepted", i)
		}
	}
}

// Property: random OIDs survive encode/decode inside a varbind.
func TestOIDRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		o := OID{uint32(rng.Intn(3)), uint32(rng.Intn(40))}
		for i := 0; i < rng.Intn(10); i++ {
			o = append(o, rng.Uint32())
		}
		msg := &Message{Version: Version2c, Community: "x",
			PDU: PDU{Type: GetRequest, VarBinds: []VarBind{{OID: o, Value: Value{Kind: KindNull}}}}}
		got, err := DecodeMessage(msg.Encode())
		if err != nil {
			return false
		}
		return got.PDU.VarBinds[0].OID.Cmp(o) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: random integer values survive the codec.
func TestIntegerRoundTripProperty(t *testing.T) {
	f := func(v int64) bool {
		msg := &Message{Version: Version2c, Community: "x",
			PDU: PDU{Type: GetRequest, VarBinds: []VarBind{
				{OID: MustOID("1.3.6"), Value: IntegerValue(v)}}}}
		got, err := DecodeMessage(msg.Encode())
		if err != nil {
			return false
		}
		return got.PDU.VarBinds[0].Value.Int == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func testMIB() *MIB {
	mib := NewMIB()
	mib.Register(MustOID("1.3.6.1.2.1.1.1.0"), func() Value { return StringValue("fibbing-sim") })
	counter := uint64(0)
	mib.Register(MustOID("1.3.6.1.2.1.2.2.1.16.1"), func() Value {
		counter += 100
		return Counter64Value(counter)
	})
	mib.Register(MustOID("1.3.6.1.2.1.2.2.1.16.2"), func() Value { return Counter64Value(7) })
	return mib
}

func TestMIBGetNext(t *testing.T) {
	mib := testMIB()
	next, _, ok := mib.Next(MustOID("1.3.6.1.2.1.2.2.1.16"))
	if !ok || next.String() != "1.3.6.1.2.1.2.2.1.16.1" {
		t.Fatalf("Next = %v, %v", next, ok)
	}
	next, _, ok = mib.Next(next)
	if !ok || next.String() != "1.3.6.1.2.1.2.2.1.16.2" {
		t.Fatalf("Next = %v, %v", next, ok)
	}
	if _, _, ok := mib.Next(MustOID("1.3.6.1.2.1.2.2.1.16.2")); ok {
		t.Fatalf("Next past end should report endOfMibView")
	}
}

func TestAgentGet(t *testing.T) {
	agent := NewAgent("secret", testMIB())
	client := NewClient(DirectTransport{Agent: agent}, "secret")
	vbs, err := client.Get(MustOID("1.3.6.1.2.1.1.1.0"))
	if err != nil {
		t.Fatal(err)
	}
	if string(vbs[0].Value.Bytes) != "fibbing-sim" {
		t.Fatalf("sysDescr = %+v", vbs[0])
	}
	// Missing OID yields noSuchObject, not an error.
	vbs, err = client.Get(MustOID("1.3.6.1.99.0"))
	if err != nil {
		t.Fatal(err)
	}
	if vbs[0].Value.Kind != KindNoSuchObject {
		t.Fatalf("missing OID = %+v", vbs[0])
	}
}

func TestAgentRejectsBadCommunity(t *testing.T) {
	agent := NewAgent("secret", testMIB())
	client := NewClient(DirectTransport{Agent: agent}, "wrong")
	if _, err := client.Get(MustOID("1.3.6.1.2.1.1.1.0")); err == nil {
		t.Fatalf("bad community accepted")
	}
}

func TestAgentReadOnly(t *testing.T) {
	agent := NewAgent("c", testMIB())
	msg := &Message{Version: Version2c, Community: "c", PDU: PDU{
		Type: SetRequest, RequestID: 1,
		VarBinds: []VarBind{{OID: MustOID("1.3.6.1.2.1.1.1.0"), Value: StringValue("x")}},
	}}
	resp, err := DecodeMessage(agent.HandleRequest(msg.Encode()))
	if err != nil {
		t.Fatal(err)
	}
	if resp.PDU.ErrorStatus != ErrReadOnly {
		t.Fatalf("set accepted: %+v", resp.PDU)
	}
}

func TestClientGetCounter(t *testing.T) {
	agent := NewAgent("c", testMIB())
	client := NewClient(DirectTransport{Agent: agent}, "c")
	v1, err := client.GetCounter(MustOID("1.3.6.1.2.1.2.2.1.16.1"))
	if err != nil {
		t.Fatal(err)
	}
	v2, err := client.GetCounter(MustOID("1.3.6.1.2.1.2.2.1.16.1"))
	if err != nil {
		t.Fatal(err)
	}
	if v2 != v1+100 {
		t.Fatalf("counter not live: %d then %d", v1, v2)
	}
	if _, err := client.GetCounter(MustOID("1.3.6.1.2.1.1.1.0")); err == nil {
		t.Fatalf("string served as counter")
	}
}

func TestClientWalk(t *testing.T) {
	agent := NewAgent("c", testMIB())
	client := NewClient(DirectTransport{Agent: agent}, "c")
	var seen []string
	err := client.Walk(MustOID("1.3.6.1.2.1.2"), func(vb VarBind) error {
		seen = append(seen, vb.OID.String())
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 2 {
		t.Fatalf("walk = %v", seen)
	}
}

func TestClientBulkWalk(t *testing.T) {
	mib := NewMIB()
	root := MustOID("1.3.6.1.2.1.2.2.1.16")
	for i := uint32(1); i <= 50; i++ {
		i := i
		mib.Register(root.Append(i), func() Value { return Counter64Value(uint64(i)) })
	}
	agent := NewAgent("c", mib)
	client := NewClient(DirectTransport{Agent: agent}, "c")
	var count int
	err := client.BulkWalk(root, 16, func(vb VarBind) error {
		count++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 50 {
		t.Fatalf("bulk walk saw %d", count)
	}
}

// TestUDPLoopback runs the agent on a real UDP socket and polls it with
// the UDP transport — the same path cmd/fibbingd uses in real-time mode.
func TestUDPLoopback(t *testing.T) {
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	agent := NewAgent("public", testMIB())
	go func() { _ = agent.ServeUDP(conn) }()

	client := NewClient(UDPTransport{
		Addr:    conn.LocalAddr().String(),
		Timeout: 2 * time.Second,
		Retries: 2,
	}, "public")
	vbs, err := client.Get(MustOID("1.3.6.1.2.1.1.1.0"))
	if err != nil {
		t.Fatal(err)
	}
	if string(vbs[0].Value.Bytes) != "fibbing-sim" {
		t.Fatalf("over UDP: %+v", vbs[0])
	}
	var walked int
	if err := client.Walk(MustOID("1.3.6.1.2.1.2"), func(VarBind) error {
		walked++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if walked != 2 {
		t.Fatalf("UDP walk = %d", walked)
	}
}

func TestUDPTimeout(t *testing.T) {
	// Nothing listens here; the client must fail after retries rather
	// than hang.
	client := NewClient(UDPTransport{
		Addr:    "127.0.0.1:1", // reserved port, nothing listening
		Timeout: 50 * time.Millisecond,
		Retries: 1,
	}, "public")
	start := time.Now()
	_, err := client.Get(MustOID("1.3.6.1.2.1.1.1.0"))
	if err == nil {
		t.Fatalf("expected timeout")
	}
	if time.Since(start) > 3*time.Second {
		t.Fatalf("timeout took too long")
	}
}

func TestCounter32Wraps(t *testing.T) {
	v := Counter32Value(1 << 33)
	if v.Uint != 0 {
		t.Fatalf("Counter32Value did not wrap: %d", v.Uint)
	}
}

func BenchmarkMessageEncode(b *testing.B) {
	msg := &Message{Version: Version2c, Community: "public", PDU: PDU{
		Type:      GetRequest,
		RequestID: 7,
		VarBinds: []VarBind{
			{OID: MustOID("1.3.6.1.2.1.2.2.1.16.3"), Value: Value{Kind: KindNull}},
		},
	}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		msg.Encode()
	}
}

func BenchmarkAgentRoundTrip(b *testing.B) {
	agent := NewAgent("c", testMIB())
	client := NewClient(DirectTransport{Agent: agent}, "c")
	oid := MustOID("1.3.6.1.2.1.2.2.1.16.2")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := client.GetCounter(oid); err != nil {
			b.Fatal(err)
		}
	}
}
