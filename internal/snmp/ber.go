// Package snmp implements the subset of SNMPv2c the Fibbing controller
// needs to monitor link loads, from the BER wire encoding up: GET,
// GETNEXT and GETBULK requests, an agent serving an IF-MIB-style counter
// tree over UDP (or in-memory for deterministic simulations), and a
// polling client.
//
// The paper's controller "monitors link loads using SNMP"; this package
// keeps that code path real — PDUs are encoded and decoded byte for byte —
// while allowing the counter source to be the fluid simulator.
package snmp

import (
	"fmt"
	"slices"
	"strconv"
	"strings"
)

// OID is an object identifier.
type OID []uint32

// ParseOID parses dotted notation ("1.3.6.1.2.1.2.2.1.10.3").
func ParseOID(s string) (OID, error) {
	parts := strings.Split(strings.TrimPrefix(s, "."), ".")
	if len(parts) < 2 {
		return nil, fmt.Errorf("snmp: OID %q too short", s)
	}
	out := make(OID, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseUint(p, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("snmp: bad OID component %q", p)
		}
		out[i] = uint32(v)
	}
	if out[0] > 2 || (out[0] < 2 && out[1] >= 40) {
		return nil, fmt.Errorf("snmp: invalid OID header %d.%d", out[0], out[1])
	}
	return out, nil
}

// MustOID parses a literal OID, panicking on error.
func MustOID(s string) OID {
	o, err := ParseOID(s)
	if err != nil {
		panic(err)
	}
	return o
}

func (o OID) String() string {
	parts := make([]string, len(o))
	for i, v := range o {
		parts[i] = strconv.FormatUint(uint64(v), 10)
	}
	return strings.Join(parts, ".")
}

// Cmp compares OIDs in lexicographic MIB order.
func (o OID) Cmp(other OID) int {
	for i := 0; i < len(o) && i < len(other); i++ {
		if o[i] != other[i] {
			if o[i] < other[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(o) < len(other):
		return -1
	case len(o) > len(other):
		return 1
	default:
		return 0
	}
}

// HasPrefix reports whether o sits under prefix in the MIB tree.
func (o OID) HasPrefix(prefix OID) bool {
	if len(o) < len(prefix) {
		return false
	}
	return o[:len(prefix)].Cmp(prefix) == 0
}

// Append returns o with extra arcs appended (fresh storage).
func (o OID) Append(arcs ...uint32) OID {
	out := make(OID, 0, len(o)+len(arcs))
	out = append(out, o...)
	return append(out, arcs...)
}

// BER/universal and SNMP application tags.
const (
	tagInteger     = 0x02
	tagOctetString = 0x04
	tagNull        = 0x05
	tagOID         = 0x06
	tagSequence    = 0x30

	tagIPAddress = 0x40
	tagCounter32 = 0x41
	tagGauge32   = 0x42
	tagTimeTicks = 0x43
	tagCounter64 = 0x46

	tagNoSuchObject   = 0x80
	tagNoSuchInstance = 0x81
	tagEndOfMibView   = 0x82

	tagGetRequest     = 0xA0
	tagGetNextRequest = 0xA1
	tagGetResponse    = 0xA2
	tagSetRequest     = 0xA3
	tagGetBulkRequest = 0xA5
)

// Kind discriminates varbind value types.
type Kind uint8

// Value kinds supported by this subset.
const (
	KindNull Kind = iota
	KindInteger
	KindOctetString
	KindOID
	KindCounter32
	KindGauge32
	KindTimeTicks
	KindCounter64
	KindNoSuchObject
	KindNoSuchInstance
	KindEndOfMibView
)

func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindInteger:
		return "integer"
	case KindOctetString:
		return "octet-string"
	case KindOID:
		return "oid"
	case KindCounter32:
		return "counter32"
	case KindGauge32:
		return "gauge32"
	case KindTimeTicks:
		return "timeticks"
	case KindCounter64:
		return "counter64"
	case KindNoSuchObject:
		return "noSuchObject"
	case KindNoSuchInstance:
		return "noSuchInstance"
	case KindEndOfMibView:
		return "endOfMibView"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is one varbind value.
type Value struct {
	Kind  Kind
	Int   int64  // KindInteger
	Uint  uint64 // counters, gauge, ticks
	Bytes []byte // KindOctetString
	OID   OID    // KindOID
}

// Counter64Value builds a Counter64.
func Counter64Value(v uint64) Value { return Value{Kind: KindCounter64, Uint: v} }

// Counter32Value builds a Counter32 (wraps at 2^32 like real interfaces).
func Counter32Value(v uint64) Value { return Value{Kind: KindCounter32, Uint: v & 0xFFFFFFFF} }

// GaugeValue builds a Gauge32.
func GaugeValue(v uint64) Value { return Value{Kind: KindGauge32, Uint: v & 0xFFFFFFFF} }

// StringValue builds an OctetString.
func StringValue(s string) Value { return Value{Kind: KindOctetString, Bytes: []byte(s)} }

// IntegerValue builds an Integer.
func IntegerValue(v int64) Value { return Value{Kind: KindInteger, Int: v} }

// --- BER primitives ----------------------------------------------------

func appendLength(b []byte, n int) []byte {
	switch {
	case n < 0x80:
		return append(b, byte(n))
	case n <= 0xFF:
		return append(b, 0x81, byte(n))
	case n <= 0xFFFF:
		return append(b, 0x82, byte(n>>8), byte(n))
	default:
		return append(b, 0x83, byte(n>>16), byte(n>>8), byte(n))
	}
}

func appendTLV(b []byte, tag byte, content []byte) []byte {
	b = append(b, tag)
	b = appendLength(b, len(content))
	return append(b, content...)
}

func appendInt(b []byte, tag byte, v int64) []byte {
	// Two's complement, minimal length.
	var content []byte
	for {
		content = append([]byte{byte(v)}, content...)
		next := v >> 8
		if (next == 0 && v >= 0 && content[0] < 0x80) ||
			(next == -1 && v < 0 && content[0] >= 0x80) {
			break
		}
		v = next
	}
	return appendTLV(b, tag, content)
}

func appendUint(b []byte, tag byte, v uint64) []byte {
	var content []byte
	for {
		content = append([]byte{byte(v)}, content...)
		v >>= 8
		if v == 0 {
			break
		}
	}
	if content[0] >= 0x80 {
		content = append([]byte{0}, content...)
	}
	return appendTLV(b, tag, content)
}

func appendOID(b []byte, o OID) []byte {
	if len(o) < 2 {
		// Encode degenerate OIDs as 0.0 to stay well-formed.
		o = OID{0, 0}
	}
	content := []byte{byte(o[0]*40 + o[1])}
	for _, arc := range o[2:] {
		content = append(content, encodeBase128(arc)...)
	}
	return appendTLV(b, tagOID, content)
}

func encodeBase128(v uint32) []byte {
	if v == 0 {
		return []byte{0}
	}
	var tmp [5]byte
	i := len(tmp)
	last := true
	for v > 0 {
		i--
		b := byte(v & 0x7F)
		if !last {
			b |= 0x80
		}
		tmp[i] = b
		last = false
		v >>= 7
	}
	return tmp[i:]
}

func appendValue(b []byte, v Value) []byte {
	switch v.Kind {
	case KindNull:
		return appendTLV(b, tagNull, nil)
	case KindInteger:
		return appendInt(b, tagInteger, v.Int)
	case KindOctetString:
		return appendTLV(b, tagOctetString, v.Bytes)
	case KindOID:
		return appendOID(b, v.OID)
	case KindCounter32:
		return appendUint(b, tagCounter32, v.Uint&0xFFFFFFFF)
	case KindGauge32:
		return appendUint(b, tagGauge32, v.Uint&0xFFFFFFFF)
	case KindTimeTicks:
		return appendUint(b, tagTimeTicks, v.Uint&0xFFFFFFFF)
	case KindCounter64:
		return appendUint(b, tagCounter64, v.Uint)
	case KindNoSuchObject:
		return appendTLV(b, tagNoSuchObject, nil)
	case KindNoSuchInstance:
		return appendTLV(b, tagNoSuchInstance, nil)
	case KindEndOfMibView:
		return appendTLV(b, tagEndOfMibView, nil)
	default:
		panic(fmt.Sprintf("snmp: encoding unknown kind %v", v.Kind))
	}
}

// reader is a BER cursor.
type reader struct {
	buf []byte
	pos int
}

func (r *reader) readTLV() (tag byte, content []byte, err error) {
	if r.pos >= len(r.buf) {
		return 0, nil, fmt.Errorf("snmp: truncated TLV")
	}
	tag = r.buf[r.pos]
	r.pos++
	if r.pos >= len(r.buf) {
		return 0, nil, fmt.Errorf("snmp: truncated length")
	}
	l := int(r.buf[r.pos])
	r.pos++
	if l >= 0x80 {
		n := l & 0x7F
		if n == 0 || n > 3 {
			return 0, nil, fmt.Errorf("snmp: unsupported length form %#x", l)
		}
		if r.pos+n > len(r.buf) {
			return 0, nil, fmt.Errorf("snmp: truncated long length")
		}
		l = 0
		for i := 0; i < n; i++ {
			l = l<<8 | int(r.buf[r.pos])
			r.pos++
		}
	}
	if r.pos+l > len(r.buf) {
		return 0, nil, fmt.Errorf("snmp: TLV content exceeds buffer")
	}
	content = r.buf[r.pos : r.pos+l]
	r.pos += l
	return tag, content, nil
}

func (r *reader) done() bool { return r.pos >= len(r.buf) }

func decodeInt(content []byte) (int64, error) {
	if len(content) == 0 || len(content) > 8 {
		return 0, fmt.Errorf("snmp: bad integer length %d", len(content))
	}
	v := int64(0)
	if content[0] >= 0x80 {
		v = -1
	}
	for _, b := range content {
		v = v<<8 | int64(b)
	}
	return v, nil
}

func decodeUint(content []byte) (uint64, error) {
	if len(content) == 0 || len(content) > 9 {
		return 0, fmt.Errorf("snmp: bad unsigned length %d", len(content))
	}
	if len(content) == 9 && content[0] != 0 {
		return 0, fmt.Errorf("snmp: unsigned overflow")
	}
	v := uint64(0)
	for _, b := range content {
		v = v<<8 | uint64(b)
	}
	return v, nil
}

func decodeOIDContent(content []byte) (OID, error) {
	if len(content) == 0 {
		return nil, fmt.Errorf("snmp: empty OID")
	}
	out := OID{uint32(content[0] / 40), uint32(content[0] % 40)}
	var cur uint32
	inArc := false
	for _, b := range content[1:] {
		cur = cur<<7 | uint32(b&0x7F)
		inArc = true
		if b&0x80 == 0 {
			out = append(out, cur)
			cur = 0
			inArc = false
		}
	}
	if inArc {
		return nil, fmt.Errorf("snmp: OID ends mid-arc")
	}
	return out, nil
}

func decodeValue(tag byte, content []byte) (Value, error) {
	switch tag {
	case tagNull:
		return Value{Kind: KindNull}, nil
	case tagInteger:
		v, err := decodeInt(content)
		return Value{Kind: KindInteger, Int: v}, err
	case tagOctetString:
		return Value{Kind: KindOctetString, Bytes: append([]byte(nil), content...)}, nil
	case tagOID:
		o, err := decodeOIDContent(content)
		return Value{Kind: KindOID, OID: o}, err
	case tagCounter32:
		v, err := decodeUint(content)
		return Value{Kind: KindCounter32, Uint: v}, err
	case tagGauge32:
		v, err := decodeUint(content)
		return Value{Kind: KindGauge32, Uint: v}, err
	case tagTimeTicks:
		v, err := decodeUint(content)
		return Value{Kind: KindTimeTicks, Uint: v}, err
	case tagCounter64:
		v, err := decodeUint(content)
		return Value{Kind: KindCounter64, Uint: v}, err
	case tagNoSuchObject:
		return Value{Kind: KindNoSuchObject}, nil
	case tagNoSuchInstance:
		return Value{Kind: KindNoSuchInstance}, nil
	case tagEndOfMibView:
		return Value{Kind: KindEndOfMibView}, nil
	default:
		return Value{}, fmt.Errorf("snmp: unknown value tag %#x", tag)
	}
}

// SortOIDs sorts a slice of OIDs in MIB order (helper for MIB walks).
func SortOIDs(oids []OID) {
	slices.SortFunc(oids, OID.Cmp)
}
