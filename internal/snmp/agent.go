package snmp

import (
	"fmt"
	"net"
	"slices"
	"sort"
	"sync"

	"fibbing.net/fibbing/internal/netsim"
	"fibbing.net/fibbing/internal/topo"
)

// MIB is a dynamic object tree: OIDs bound to value callbacks, evaluated
// at query time (so counters read live state).
type MIB struct {
	mu   sync.RWMutex
	oids []OID // sorted
	get  map[string]func() Value
}

// NewMIB returns an empty MIB.
func NewMIB() *MIB {
	return &MIB{get: make(map[string]func() Value)}
}

// Register binds an OID to a callback. Re-registering replaces.
func (m *MIB) Register(oid OID, fn func() Value) {
	m.mu.Lock()
	defer m.mu.Unlock()
	key := oid.String()
	if _, exists := m.get[key]; !exists {
		m.oids = append(m.oids, oid.Append()) // copy
		slices.SortFunc(m.oids, OID.Cmp)
	}
	m.get[key] = fn
}

// Get returns the value at an exact OID.
func (m *MIB) Get(oid OID) (Value, bool) {
	m.mu.RLock()
	fn, ok := m.get[oid.String()]
	m.mu.RUnlock()
	if !ok {
		return Value{Kind: KindNoSuchObject}, false
	}
	return fn(), true
}

// Next returns the first OID strictly after the given one, MIB-ordered.
func (m *MIB) Next(oid OID) (OID, Value, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	i := sort.Search(len(m.oids), func(i int) bool { return m.oids[i].Cmp(oid) > 0 })
	if i == len(m.oids) {
		return nil, Value{Kind: KindEndOfMibView}, false
	}
	next := m.oids[i]
	return next, m.get[next.String()](), true
}

// Len returns the number of registered objects.
func (m *MIB) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.oids)
}

// Agent answers SNMP requests against a MIB.
type Agent struct {
	Community string
	MIB       *MIB
	// MaxVarBinds caps response size (tooBig guard).
	MaxVarBinds int
}

// NewAgent builds an agent with the given community string.
func NewAgent(community string, mib *MIB) *Agent {
	return &Agent{Community: community, MIB: mib, MaxVarBinds: 256}
}

// HandleRequest processes one encoded request and returns the encoded
// response (nil for undecodable or unauthenticated requests, which SNMP
// agents silently drop).
func (a *Agent) HandleRequest(req []byte) []byte {
	msg, err := DecodeMessage(req)
	if err != nil {
		return nil
	}
	if msg.Version != Version2c || msg.Community != a.Community {
		return nil // silent drop, as real agents do for bad communities
	}
	resp := &Message{
		Version:   Version2c,
		Community: a.Community,
		PDU:       PDU{Type: GetResponse, RequestID: msg.PDU.RequestID},
	}
	switch msg.PDU.Type {
	case GetRequest:
		for _, vb := range msg.PDU.VarBinds {
			v, ok := a.MIB.Get(vb.OID)
			if !ok {
				v = Value{Kind: KindNoSuchObject}
			}
			resp.PDU.VarBinds = append(resp.PDU.VarBinds, VarBind{OID: vb.OID, Value: v})
		}
	case GetNextRequest:
		for _, vb := range msg.PDU.VarBinds {
			next, v, ok := a.MIB.Next(vb.OID)
			if !ok {
				resp.PDU.VarBinds = append(resp.PDU.VarBinds,
					VarBind{OID: vb.OID, Value: Value{Kind: KindEndOfMibView}})
				continue
			}
			resp.PDU.VarBinds = append(resp.PDU.VarBinds, VarBind{OID: next, Value: v})
		}
	case GetBulkRequest:
		nonRep := int(msg.PDU.ErrorStatus)
		maxRep := int(msg.PDU.ErrorIndex)
		if maxRep < 1 {
			maxRep = 1
		}
		for i, vb := range msg.PDU.VarBinds {
			if i < nonRep {
				next, v, ok := a.MIB.Next(vb.OID)
				if !ok {
					resp.PDU.VarBinds = append(resp.PDU.VarBinds,
						VarBind{OID: vb.OID, Value: Value{Kind: KindEndOfMibView}})
					continue
				}
				resp.PDU.VarBinds = append(resp.PDU.VarBinds, VarBind{OID: next, Value: v})
				continue
			}
			cur := vb.OID
			for r := 0; r < maxRep && len(resp.PDU.VarBinds) < a.MaxVarBinds; r++ {
				next, v, ok := a.MIB.Next(cur)
				if !ok {
					resp.PDU.VarBinds = append(resp.PDU.VarBinds,
						VarBind{OID: cur, Value: Value{Kind: KindEndOfMibView}})
					break
				}
				resp.PDU.VarBinds = append(resp.PDU.VarBinds, VarBind{OID: next, Value: v})
				cur = next
			}
		}
	case SetRequest:
		// Read-only agent.
		resp.PDU.ErrorStatus = ErrReadOnly
		resp.PDU.VarBinds = msg.PDU.VarBinds
	default:
		resp.PDU.ErrorStatus = ErrGenErr
	}
	return resp.Encode()
}

// ServeUDP answers requests on a packet connection until the connection is
// closed. Intended to run in its own goroutine.
func (a *Agent) ServeUDP(conn net.PacketConn) error {
	buf := make([]byte, 64*1024)
	for {
		n, addr, err := conn.ReadFrom(buf)
		if err != nil {
			return err
		}
		if resp := a.HandleRequest(buf[:n]); resp != nil {
			if _, err := conn.WriteTo(resp, addr); err != nil {
				return err
			}
		}
	}
}

// --- IF-MIB binding ----------------------------------------------------

// Standard IF-MIB column OIDs (1.3.6.1.2.1.2.2.1.<col>.<ifIndex>).
var (
	OIDIfDescr     = MustOID("1.3.6.1.2.1.2.2.1.2")
	OIDIfSpeed     = MustOID("1.3.6.1.2.1.2.2.1.5")
	OIDIfOutOctets = MustOID("1.3.6.1.2.1.2.2.1.16")
	// OIDIfHCOutOctets is the 64-bit high-capacity counter from the
	// ifXTable (1.3.6.1.2.1.31.1.1.1.10).
	OIDIfHCOutOctets = MustOID("1.3.6.1.2.1.31.1.1.1.10")
)

// IfIndex maps a directed topology link to its SNMP interface index on the
// transmitting router (1-based, as ifIndex must be).
func IfIndex(l topo.LinkID) uint32 { return uint32(l) + 1 }

// LinkFromIfIndex inverts IfIndex.
func LinkFromIfIndex(i uint32) topo.LinkID { return topo.LinkID(i) - 1 }

// BindIFMIB registers the IF-MIB subset for every directed link whose
// transmitting side is the given router, reading live octet counters from
// the fluid simulator. If node is topo.NoNode, all links are exported (a
// single network-wide agent, which is what the demo controller polls).
func BindIFMIB(mib *MIB, net *netsim.Network, node topo.NodeID) {
	t := net.Topology()
	for _, l := range t.Links() {
		if node != topo.NoNode && l.From != node {
			continue
		}
		l := l
		idx := IfIndex(l.ID)
		name := fmt.Sprintf("%s->%s", t.Name(l.From), t.Name(l.To))
		mib.Register(OIDIfDescr.Append(idx), func() Value { return StringValue(name) })
		mib.Register(OIDIfSpeed.Append(idx), func() Value { return GaugeValue(uint64(l.Capacity)) })
		mib.Register(OIDIfOutOctets.Append(idx), func() Value {
			return Counter32Value(net.Octets(l.ID))
		})
		mib.Register(OIDIfHCOutOctets.Append(idx), func() Value {
			return Counter64Value(net.Octets(l.ID))
		})
	}
}
