package snmp

import (
	"math/rand"
	"testing"
)

// TestDecodeMessageNeverPanics mutates valid SNMP messages and feeds pure
// noise into the BER decoder: errors are fine, panics are not.
func TestDecodeMessageNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	valid := (&Message{
		Version:   Version2c,
		Community: "public",
		PDU: PDU{
			Type:      GetBulkRequest,
			RequestID: 77,
			VarBinds: []VarBind{
				{OID: MustOID("1.3.6.1.2.1.2.2.1.16.3"), Value: Counter64Value(1 << 50)},
				{OID: MustOID("1.3.6.1.2.1.1.1.0"), Value: StringValue("x")},
			},
		},
	}).Encode()
	for i := 0; i < 20000; i++ {
		buf := append([]byte(nil), valid...)
		for m := 0; m <= rng.Intn(5); m++ {
			buf[rng.Intn(len(buf))] ^= byte(1 << rng.Intn(8))
		}
		if rng.Intn(3) == 0 {
			buf = buf[:rng.Intn(len(buf)+1)]
		}
		_, _ = DecodeMessage(buf)
	}
	for i := 0; i < 5000; i++ {
		buf := make([]byte, rng.Intn(128))
		rng.Read(buf)
		_, _ = DecodeMessage(buf)
	}
}

// TestAgentNeverPanicsOnGarbage hammers the agent entry point directly
// (the code path exposed to the UDP socket).
func TestAgentNeverPanicsOnGarbage(t *testing.T) {
	agent := NewAgent("public", testMIB())
	rng := rand.New(rand.NewSource(321))
	for i := 0; i < 5000; i++ {
		buf := make([]byte, rng.Intn(96))
		rng.Read(buf)
		if resp := agent.HandleRequest(buf); resp != nil {
			// If it decoded to a valid community'd request by a fluke,
			// the response must itself decode.
			if _, err := DecodeMessage(resp); err != nil {
				t.Fatalf("agent emitted undecodable response: %v", err)
			}
		}
	}
}
