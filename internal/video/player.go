// Package video models the demo's application layer: video servers
// streaming segments to playback clients, and the quality-of-experience
// metrics (startup delay, stalls, rebuffer ratio) that distinguish
// "smooth" from "stuttering" playback — the paper's qualitative result.
//
// Two bindings share the same Player buffer model: SimSession consumes
// delivered bytes from the fluid simulator inside virtual time, and the
// TCP server/client pair in stream.go runs over real sockets.
package video

import (
	"fmt"
	"time"
)

// Player is a playback-buffer model. Downloaded media accumulates in the
// buffer; once the startup threshold is reached playback starts, draining
// the buffer in real time. An empty buffer during playback is a stall
// (the paper's "stutter").
type Player struct {
	// Bitrate is the media bitrate in bit/s.
	Bitrate float64
	// StartupBuffer is how much media (seconds) must be buffered before
	// playback starts or resumes after a stall. Default 2 s.
	StartupBuffer float64

	downloadedSec float64 // media seconds downloaded
	playedSec     float64 // media seconds played
	playing       bool
	started       bool

	startupDelay time.Duration
	stallCount   int
	stallTime    time.Duration
	watchTime    time.Duration
	clock        time.Duration
}

// NewPlayer builds a player for the given bitrate.
func NewPlayer(bitrate float64) *Player {
	if bitrate <= 0 {
		panic("video: bitrate must be positive")
	}
	return &Player{Bitrate: bitrate, StartupBuffer: 2}
}

// OnDownloadedBytes credits newly received payload.
func (p *Player) OnDownloadedBytes(n float64) {
	if n < 0 {
		panic("video: negative download")
	}
	p.downloadedSec += n * 8 / p.Bitrate
}

// OnDownloadedMedia credits media directly in seconds — used by adaptive
// players whose bytes-per-media-second varies with the selected rung.
func (p *Player) OnDownloadedMedia(sec float64) {
	if sec < 0 {
		panic("video: negative media")
	}
	p.downloadedSec += sec
}

// Buffered returns the media seconds currently buffered.
func (p *Player) Buffered() float64 { return p.downloadedSec - p.playedSec }

// Advance moves wall-clock time forward and updates playback state.
func (p *Player) Advance(dt time.Duration) {
	if dt < 0 {
		panic("video: negative time step")
	}
	remaining := dt
	for remaining > 0 {
		p.clockStep(&remaining)
	}
}

func (p *Player) clockStep(remaining *time.Duration) {
	dt := *remaining
	if !p.playing {
		// Buffering (startup or rebuffering).
		if p.Buffered() >= p.StartupBuffer {
			p.playing = true
			if !p.started {
				p.started = true
				p.startupDelay = p.clock
			}
			return // consume no time; play from this instant
		}
		// Entire step spent waiting.
		p.clock += dt
		if p.started {
			p.stallTime += dt
		}
		*remaining = 0
		return
	}
	// Playing: drain at most Buffered() seconds of media.
	canPlay := time.Duration(p.Buffered() * float64(time.Second))
	if canPlay >= dt {
		p.playedSec += dt.Seconds()
		p.watchTime += dt
		p.clock += dt
		*remaining = 0
		return
	}
	// Buffer runs dry mid-step: play what we can, then stall.
	p.playedSec += canPlay.Seconds()
	p.watchTime += canPlay
	p.clock += canPlay
	p.playing = false
	p.stallCount++
	*remaining = dt - canPlay
}

// QoE summarises playback quality.
type QoE struct {
	StartupDelay time.Duration
	Stalls       int
	StallTime    time.Duration
	WatchTime    time.Duration
	PlayedSec    float64
	// RebufferRatio = stall time / (stall + watch time); 0 is smooth.
	RebufferRatio float64
}

// Smooth reports whether playback never stalled after starting.
func (q QoE) Smooth() bool { return q.Stalls == 0 }

func (q QoE) String() string {
	return fmt.Sprintf("startup=%v stalls=%d stallTime=%v rebuffer=%.1f%% played=%.1fs",
		q.StartupDelay, q.Stalls, q.StallTime, 100*q.RebufferRatio, q.PlayedSec)
}

// QoE computes the metrics so far.
func (p *Player) QoE() QoE {
	q := QoE{
		StartupDelay: p.startupDelay,
		Stalls:       p.stallCount,
		StallTime:    p.stallTime,
		WatchTime:    p.watchTime,
		PlayedSec:    p.playedSec,
	}
	if total := p.stallTime + p.watchTime; total > 0 {
		q.RebufferRatio = float64(p.stallTime) / float64(total)
	}
	if !p.started {
		q.StartupDelay = p.clock
	}
	return q
}

// Aggregate combines several sessions' QoE (means over sessions, max
// stalls) for experiment tables.
type Aggregate struct {
	Sessions       int
	MeanStartup    time.Duration
	MeanRebuffer   float64
	TotalStalls    int
	WorstRebuffer  float64
	SmoothSessions int
}

// AggregateQoE folds per-session metrics.
func AggregateQoE(qs []QoE) Aggregate {
	a := Aggregate{Sessions: len(qs)}
	if len(qs) == 0 {
		return a
	}
	var sumStart time.Duration
	var sumRebuf float64
	for _, q := range qs {
		sumStart += q.StartupDelay
		sumRebuf += q.RebufferRatio
		a.TotalStalls += q.Stalls
		if q.RebufferRatio > a.WorstRebuffer {
			a.WorstRebuffer = q.RebufferRatio
		}
		if q.Smooth() {
			a.SmoothSessions++
		}
	}
	a.MeanStartup = sumStart / time.Duration(len(qs))
	a.MeanRebuffer = sumRebuf / float64(len(qs))
	return a
}
