package video

import (
	"math"
	"net"
	"testing"
	"time"
)

func TestPlayerStartupAndSmoothPlayback(t *testing.T) {
	p := NewPlayer(1e6) // 1 Mbit/s
	p.StartupBuffer = 2

	// Nothing downloaded: the clock advances as startup delay.
	p.Advance(time.Second)
	// Download 3 media-seconds worth (3e6 bits = 375000 bytes).
	p.OnDownloadedBytes(375000)
	p.Advance(2 * time.Second) // plays 2s
	q := p.QoE()
	if q.StartupDelay != time.Second {
		t.Fatalf("startup = %v", q.StartupDelay)
	}
	if q.Stalls != 0 || math.Abs(q.PlayedSec-2) > 1e-9 {
		t.Fatalf("qoe = %+v", q)
	}
	if math.Abs(p.Buffered()-1) > 1e-9 {
		t.Fatalf("buffered = %v", p.Buffered())
	}
}

func TestPlayerStallsWhenStarved(t *testing.T) {
	p := NewPlayer(1e6)
	p.StartupBuffer = 1
	p.OnDownloadedBytes(125000) // 1 media second
	p.Advance(3 * time.Second)  // plays 1s then starves 2s
	q := p.QoE()
	if q.Stalls != 1 {
		t.Fatalf("stalls = %d", q.Stalls)
	}
	if q.StallTime != 2*time.Second {
		t.Fatalf("stall time = %v", q.StallTime)
	}
	if math.Abs(q.RebufferRatio-2.0/3) > 1e-9 {
		t.Fatalf("rebuffer = %v", q.RebufferRatio)
	}
	if q.Smooth() {
		t.Fatalf("stalled playback reported smooth")
	}
}

func TestPlayerResumesAfterRebuffer(t *testing.T) {
	p := NewPlayer(1e6)
	p.StartupBuffer = 1
	p.OnDownloadedBytes(125000)
	p.Advance(2 * time.Second) // 1s play, 1s stall
	p.OnDownloadedBytes(250000)
	p.Advance(2 * time.Second) // resumes, plays 2 more seconds
	q := p.QoE()
	if q.Stalls != 1 || math.Abs(q.PlayedSec-3) > 1e-9 {
		t.Fatalf("qoe = %+v", q)
	}
}

func TestPlayerExactDrain(t *testing.T) {
	p := NewPlayer(2e6)
	p.StartupBuffer = 0.5
	p.OnDownloadedBytes(250000) // 1 media second at 2 Mbit/s
	p.Advance(time.Second)
	if b := p.Buffered(); math.Abs(b) > 1e-9 {
		t.Fatalf("buffered = %v, want 0", b)
	}
	// Stall fires only when more wall time passes with an empty buffer.
	q := p.QoE()
	if q.Stalls != 1 {
		// Draining exactly to zero counts the transition as a stall at
		// the boundary; accept 0 or 1 but never more.
		if q.Stalls > 1 {
			t.Fatalf("stalls = %d", q.Stalls)
		}
	}
}

func TestPlayerPanicsOnBadInput(t *testing.T) {
	p := NewPlayer(1e6)
	for _, f := range []func(){
		func() { p.OnDownloadedBytes(-1) },
		func() { p.Advance(-time.Second) },
		func() { NewPlayer(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("want panic")
				}
			}()
			f()
		}()
	}
}

func TestAggregateQoE(t *testing.T) {
	qs := []QoE{
		{StartupDelay: time.Second, RebufferRatio: 0, Stalls: 0},
		{StartupDelay: 3 * time.Second, RebufferRatio: 0.5, Stalls: 2},
	}
	a := AggregateQoE(qs)
	if a.Sessions != 2 || a.MeanStartup != 2*time.Second {
		t.Fatalf("agg = %+v", a)
	}
	if a.TotalStalls != 2 || a.SmoothSessions != 1 {
		t.Fatalf("agg = %+v", a)
	}
	if math.Abs(a.MeanRebuffer-0.25) > 1e-9 || a.WorstRebuffer != 0.5 {
		t.Fatalf("agg = %+v", a)
	}
	if empty := AggregateQoE(nil); empty.Sessions != 0 {
		t.Fatalf("empty agg = %+v", empty)
	}
}

// TestTCPStreamingSmooth runs server and client over a real loopback
// socket at line rate: playback must be smooth.
func TestTCPStreamingSmooth(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var notified int
	srv := &Server{OnNewClient: func(net.Addr) { notified++ }}
	go func() { _ = srv.Serve(ln) }()

	c := &Client{
		Bitrate:         2e6,
		SegmentDuration: 50 * time.Millisecond,
		Segments:        10,
	}
	q, err := c.Play(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if !q.Smooth() {
		t.Fatalf("loopback playback stuttered: %v", q)
	}
	if notified != 1 {
		t.Fatalf("server notifications = %d", notified)
	}
}

// TestTCPStreamingStutters throttles the server to half the media bitrate:
// the client must starve and record stalls — the paper's "playback
// stutters when the controller is disabled" observation at socket level.
func TestTCPStreamingStutters(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	srv := &Server{PaceBps: 1e6} // half of the client's 2 Mbit/s media
	go func() { _ = srv.Serve(ln) }()

	c := &Client{
		Bitrate:         2e6,
		SegmentDuration: 50 * time.Millisecond,
		Segments:        8,
	}
	q, err := c.Play(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if q.Smooth() {
		t.Fatalf("throttled playback reported smooth: %v", q)
	}
	if q.RebufferRatio <= 0.1 {
		t.Fatalf("rebuffer ratio suspiciously low: %v", q)
	}
}

func TestClientValidation(t *testing.T) {
	c := &Client{}
	if _, err := c.Play("127.0.0.1:1"); err == nil {
		t.Fatalf("zero-valued client accepted")
	}
}

func TestServerRejectsBadRequest(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	srv := &Server{}
	go func() { _ = srv.Serve(ln) }()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("FROBNICATE\n")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	if err := conn.SetReadDeadline(time.Now().Add(2 * time.Second)); err != nil {
		t.Fatal(err)
	}
	n, _ := conn.Read(buf)
	if n == 0 || string(buf[:3]) != "ERR" {
		t.Fatalf("server answer = %q", buf[:n])
	}
}
