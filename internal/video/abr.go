package video

import (
	"fmt"
	"slices"
	"time"

	"fibbing.net/fibbing/internal/event"
	"fibbing.net/fibbing/internal/metrics"
	"fibbing.net/fibbing/internal/netsim"
)

// This file extends the demo's fixed-bitrate players with DASH-style
// adaptive bitrate (ABR). ABR is the obvious "what if the application
// defends itself?" question the paper's motivation raises: an adaptive
// player masks congestion by downshifting quality, trading stalls for
// bitrate. The ABR experiment quantifies what Fibbing adds even then —
// the network carries every player at the top rung instead of forcing
// the crowd down the ladder.

// DefaultLadder is a typical SD ladder around the demo's 500 kbit/s rate.
var DefaultLadder = []float64{0.2e6, 0.5e6, 1.0e6}

// ABRConfig parameterises an adaptive player.
type ABRConfig struct {
	// Ladder is the set of available bitrates, ascending.
	Ladder []float64
	// SegmentDuration of media per segment (default 2 s).
	SegmentDuration time.Duration
	// SafetyFactor scales the throughput estimate when choosing a rung
	// (default 0.8: pick the highest rung <= 0.8 * estimated rate).
	SafetyFactor float64
	// StartupBuffer in media seconds (default 2).
	StartupBuffer float64
}

func (c ABRConfig) withDefaults() ABRConfig {
	if len(c.Ladder) == 0 {
		c.Ladder = DefaultLadder
	}
	slices.Sort(c.Ladder)
	if c.SegmentDuration <= 0 {
		c.SegmentDuration = 2 * time.Second
	}
	if c.SafetyFactor <= 0 {
		c.SafetyFactor = 0.8
	}
	if c.StartupBuffer <= 0 {
		c.StartupBuffer = 2
	}
	return c
}

// ABRQoE extends QoE with quality metrics.
type ABRQoE struct {
	QoE
	// MeanBitrate is the media-time-weighted average rung (bit/s).
	MeanBitrate float64
	// Switches counts rung changes.
	Switches int
	// TopRungShare is the fraction of downloaded media at the top rung.
	TopRungShare float64
}

// ABRSimSession is a segment-based adaptive player bound to a fluid flow.
// It downloads segments sequentially at the selected rung, estimates
// throughput with an EWMA over measured segment rates, and switches rungs
// between segments (throughput-based ABR, as in early DASH players).
type ABRSimSession struct {
	Player *Player
	cfg    ABRConfig

	port   deliveryPort
	ticker *event.Ticker
	done   bool

	rung     int
	estimate metrics.EWMA

	segStartBytes float64
	segStartTime  time.Duration
	segTarget     float64 // bytes needed for the current segment

	lastAt time.Duration

	switches    int
	mediaByRung []float64
}

// NewABRSimSession attaches an adaptive player to a flow. The session
// manages the flow's rate cap: 4x the current rung, modelling the bursty
// segment fetches of real players (and leaving the estimator headroom to
// observe rates above the current rung, without which no player could
// ever justify an up-switch).
func NewABRSimSession(sched *event.Scheduler, net *netsim.Network, flow netsim.FlowID, cfg ABRConfig) *ABRSimSession {
	s := newABRSimSession(sched, net, flow, cfg.withDefaults())
	s.ticker = sched.NewTicker(100*time.Millisecond, func() { s.tick(sched.Now()) })
	return s
}

func newABRSimSession(sched *event.Scheduler, net *netsim.Network, flow netsim.FlowID, cfg ABRConfig) *ABRSimSession {
	return newABRPortSession(sched, flowPort{net: net, flow: flow}, cfg)
}

// newABRPortSession builds a session against any delivery port — the
// fluid network in the scenarios, a constant-rate tap in the calibration
// harness (RunConstantRate).
func newABRPortSession(sched *event.Scheduler, port deliveryPort, cfg ABRConfig) *ABRSimSession {
	s := &ABRSimSession{
		Player:      NewPlayer(cfg.Ladder[0]), // Bitrate field unused for media accounting
		cfg:         cfg,
		port:        port,
		rung:        0, // conservative start, as real players do
		lastAt:      sched.Now(),
		mediaByRung: make([]float64, len(cfg.Ladder)),
	}
	s.Player.StartupBuffer = cfg.StartupBuffer
	s.estimate = metrics.EWMA{Alpha: 0.4}
	s.beginSegment(sched.Now())
	return s
}

func (s *ABRSimSession) beginSegment(now time.Duration) {
	rate := s.cfg.Ladder[s.rung]
	s.segTarget = rate * s.cfg.SegmentDuration.Seconds() / 8
	if d, ok := s.port.Delivered(); ok {
		s.segStartBytes = d
	}
	s.segStartTime = now
	s.port.SetMaxRate(rate * 4)
}

func (s *ABRSimSession) tick(now time.Duration) {
	if s.done {
		return
	}
	delivered, live := s.port.Delivered()
	if live {
		for delivered-s.segStartBytes >= s.segTarget {
			// Segment complete: credit media, estimate throughput,
			// choose the next rung.
			s.Player.OnDownloadedMedia(s.cfg.SegmentDuration.Seconds())
			s.mediaByRung[s.rung] += s.cfg.SegmentDuration.Seconds()
			elapsed := (now - s.segStartTime).Seconds()
			if elapsed <= 0 {
				elapsed = 0.05
			}
			measured := s.segTarget * 8 / elapsed // bit/s
			est := s.estimate.Update(measured)
			next := s.chooseRung(est)
			if next != s.rung {
				s.switches++
				s.rung = next
			}
			s.segStartBytes += s.segTarget
			s.segStartTime = now
			s.beginSegmentContinue(now)
		}
	}
	s.Player.Advance(now - s.lastAt)
	s.lastAt = now
}

// ABRSessionPool drives adaptive sessions from one shared ticker, the
// ABR counterpart of SessionPool.
type ABRSessionPool struct {
	sched    *event.Scheduler
	net      *netsim.Network
	cfg      ABRConfig
	sessions []*ABRSimSession
}

// NewABRSessionPool starts a pool ticking every 100 ms (the per-session
// cadence adaptive players use).
func NewABRSessionPool(sched *event.Scheduler, net *netsim.Network, cfg ABRConfig) *ABRSessionPool {
	p := &ABRSessionPool{sched: sched, net: net, cfg: cfg.withDefaults()}
	sched.NewTicker(100*time.Millisecond, func() {
		p.sessions = tickSessions(p.sessions, sched.Now())
	})
	return p
}

// Attach joins a new adaptive session for the flow to the pool.
func (p *ABRSessionPool) Attach(flow netsim.FlowID) *ABRSimSession {
	s := newABRSimSession(p.sched, p.net, flow, p.cfg)
	p.sessions = append(p.sessions, s)
	return s
}

// beginSegmentContinue starts the next segment without resetting the
// delivered-bytes baseline (already advanced by the caller).
func (s *ABRSimSession) beginSegmentContinue(now time.Duration) {
	rate := s.cfg.Ladder[s.rung]
	s.segTarget = rate * s.cfg.SegmentDuration.Seconds() / 8
	s.segStartTime = now
	s.port.SetMaxRate(rate * 4)
}

func (s *ABRSimSession) chooseRung(estimate float64) int {
	best := 0
	for i, rate := range s.cfg.Ladder {
		if rate <= s.cfg.SafetyFactor*estimate {
			best = i
		}
	}
	return best
}

// Rung returns the current ladder index.
func (s *ABRSimSession) Rung() int { return s.rung }

// Stop halts the session.
func (s *ABRSimSession) Stop() {
	s.done = true
	if s.ticker != nil {
		s.ticker.Stop()
	}
}

func (s *ABRSimSession) finished() bool { return s.done }

// QoE returns playback and quality metrics.
func (s *ABRSimSession) QoE() ABRQoE {
	q := ABRQoE{QoE: s.Player.QoE(), Switches: s.switches}
	total := 0.0
	weighted := 0.0
	for i, sec := range s.mediaByRung {
		total += sec
		weighted += sec * s.cfg.Ladder[i]
	}
	if total > 0 {
		q.MeanBitrate = weighted / total
		q.TopRungShare = s.mediaByRung[len(s.mediaByRung)-1] / total
	}
	return q
}

// AggregateABR folds per-session ABR metrics.
type ABRAggregate struct {
	Aggregate
	MeanBitrate  float64
	TopRungShare float64
	Switches     int
}

// AggregateABRQoE summarises ABR sessions.
func AggregateABRQoE(qs []ABRQoE) ABRAggregate {
	base := make([]QoE, len(qs))
	var bitrate, top float64
	switches := 0
	for i, q := range qs {
		base[i] = q.QoE
		bitrate += q.MeanBitrate
		top += q.TopRungShare
		switches += q.Switches
	}
	out := ABRAggregate{Aggregate: AggregateQoE(base), Switches: switches}
	if len(qs) > 0 {
		out.MeanBitrate = bitrate / float64(len(qs))
		out.TopRungShare = top / float64(len(qs))
	}
	return out
}

func (a ABRAggregate) String() string {
	return fmt.Sprintf("%d sessions, mean bitrate %.0f kbit/s, top-rung %.0f%%, %d stalls, %d switches",
		a.Sessions, a.MeanBitrate/1e3, 100*a.TopRungShare, a.TotalStalls, a.Switches)
}
