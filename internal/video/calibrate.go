package video

import (
	"math"
	"time"

	"fibbing.net/fibbing/internal/event"
	"fibbing.net/fibbing/internal/netsim"
)

// deliveryPort abstracts where a session's bytes come from: the fluid
// network in the scenario harness, or a constant-rate tap in the
// calibration harness. The session only ever asks how much has arrived
// and caps its own fetch rate.
type deliveryPort interface {
	// Delivered returns cumulative delivered bytes and whether the
	// source is still live.
	Delivered() (float64, bool)
	// SetMaxRate caps the source at the given bit/s (the session's
	// segment-fetch ceiling).
	SetMaxRate(bitsPerSec float64)
}

// flowPort is the netsim-backed delivery port used by live sessions.
type flowPort struct {
	net  *netsim.Network
	flow netsim.FlowID
}

func (p flowPort) Delivered() (float64, bool) { return p.net.Delivered(p.flow) }
func (p flowPort) SetMaxRate(r float64)       { p.net.SetFlowMaxRate(p.flow, r) }

// constRatePort delivers bytes at a fixed bandwidth, honouring the
// session's rate cap. It integrates lazily against the scheduler clock,
// flushing before every read and before every cap change so a cap set
// mid-interval never applies retroactively.
type constRatePort struct {
	sched *event.Scheduler
	rate  float64 // offered bandwidth, bit/s
	cap   float64 // session's current fetch ceiling, bit/s (0 = none yet)
	bytes float64
	last  time.Duration
}

func (p *constRatePort) flush() {
	now := p.sched.Now()
	dt := (now - p.last).Seconds()
	p.last = now
	if dt <= 0 {
		return
	}
	eff := p.rate
	if p.cap > 0 && p.cap < eff {
		eff = p.cap
	}
	if eff > 0 {
		p.bytes += eff * dt / 8
	}
}

func (p *constRatePort) Delivered() (float64, bool) { p.flush(); return p.bytes, true }
func (p *constRatePort) SetMaxRate(r float64)       { p.flush(); p.cap = r }

// RunConstantRate runs a full ABR session against a constant delivered
// rate (bit/s) for the horizon and returns its QoE. This is the
// calibration hook for internal/qoe: the analytic predictor's property
// tests compare its closed-form answers against this ground truth — the
// real segment loop, EWMA estimator, rung chooser and player buffer,
// with only the network replaced by a fixed-bandwidth tap.
func RunConstantRate(cfg ABRConfig, rate float64, horizon time.Duration) ABRQoE {
	if math.IsNaN(rate) || rate < 0 {
		rate = 0
	}
	sched := event.NewScheduler()
	port := &constRatePort{sched: sched, rate: rate}
	s := newABRPortSession(sched, port, cfg.withDefaults())
	s.ticker = sched.NewTicker(100*time.Millisecond, func() { s.tick(sched.Now()) })
	sched.RunUntil(horizon)
	s.Stop()
	return s.QoE()
}
