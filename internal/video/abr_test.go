package video

import (
	"math"
	"net/netip"
	"testing"
	"time"

	"fibbing.net/fibbing/internal/event"
	"fibbing.net/fibbing/internal/fib"
	"fibbing.net/fibbing/internal/netsim"
	"fibbing.net/fibbing/internal/topo"
)

// abrRig builds a 2-router network with a configurable bottleneck and one
// ABR session across it.
func abrRig(t *testing.T, capacity float64) (*event.Scheduler, *netsim.Network, *ABRSimSession) {
	t.Helper()
	tp := topo.New()
	a := tp.AddNode("a")
	b := tp.AddNode("b")
	ab, _ := tp.AddLink(a, b, 1, topo.LinkOpts{Capacity: capacity})
	pfx := netip.MustParsePrefix("10.100.0.0/16")
	tp.AddPrefix(pfx, "p", topo.Attachment{Node: b})

	sched := event.NewScheduler()
	net := netsim.New(tp, sched, time.Second)
	ta := fib.NewTable(a)
	if err := ta.Install(fib.Route{Prefix: pfx, NextHops: []fib.NextHop{{Node: b, Link: ab, Weight: 1}}}); err != nil {
		t.Fatal(err)
	}
	tb := fib.NewTable(b)
	if err := tb.Install(fib.Route{Prefix: pfx, Local: true}); err != nil {
		t.Fatal(err)
	}
	net.SetTable(a, ta)
	net.SetTable(b, tb)

	key := fib.FlowKey{
		Src: netip.MustParseAddr("10.0.0.1"), Dst: netip.MustParseAddr("10.100.0.1"),
		SrcPort: 42, DstPort: 8080, Proto: 6,
	}
	id := net.AddFlow(a, key, 0)
	sess := NewABRSimSession(sched, net, id, ABRConfig{})
	return sched, net, sess
}

func TestABRClimbsToTopRungWithHeadroom(t *testing.T) {
	sched, _, sess := abrRig(t, 10e6) // 10 Mbit/s for a 1 Mbit/s top rung
	sched.RunUntil(60 * time.Second)
	q := sess.QoE()
	if sess.Rung() != 2 {
		t.Fatalf("rung = %d, want top (2); qoe %v", sess.Rung(), q)
	}
	if q.TopRungShare < 0.6 {
		t.Fatalf("top-rung share = %v, want most of the session", q.TopRungShare)
	}
	if q.Stalls != 0 {
		t.Fatalf("stalled with 10x headroom: %+v", q)
	}
	if q.Switches == 0 {
		t.Fatalf("never switched up")
	}
}

func TestABRStaysLowWhenStarved(t *testing.T) {
	sched, _, sess := abrRig(t, 0.3e6) // only the 200k rung fits
	sched.RunUntil(60 * time.Second)
	q := sess.QoE()
	if sess.Rung() != 0 {
		t.Fatalf("rung = %d, want 0 under starvation", sess.Rung())
	}
	if q.TopRungShare > 0.05 {
		t.Fatalf("top-rung share = %v under starvation", q.TopRungShare)
	}
	if math.Abs(q.MeanBitrate-0.2e6) > 0.05e6 {
		t.Fatalf("mean bitrate = %v, want ~200k", q.MeanBitrate)
	}
}

func TestABRDownshiftsWhenCapacityDrops(t *testing.T) {
	tp := topo.New()
	a := tp.AddNode("a")
	b := tp.AddNode("b")
	tp.AddLink(a, b, 1, topo.LinkOpts{Capacity: 10e6})
	pfx := netip.MustParsePrefix("10.100.0.0/16")
	tp.AddPrefix(pfx, "p", topo.Attachment{Node: b})
	sched := event.NewScheduler()
	net := netsim.New(tp, sched, time.Second)
	ab, _ := tp.FindLink(a, b)
	ta := fib.NewTable(a)
	if err := ta.Install(fib.Route{Prefix: pfx, NextHops: []fib.NextHop{{Node: b, Link: ab.ID, Weight: 1}}}); err != nil {
		t.Fatal(err)
	}
	tb := fib.NewTable(b)
	if err := tb.Install(fib.Route{Prefix: pfx, Local: true}); err != nil {
		t.Fatal(err)
	}
	net.SetTable(a, ta)
	net.SetTable(b, tb)
	key := fib.FlowKey{Src: netip.MustParseAddr("10.0.0.1"), Dst: netip.MustParseAddr("10.100.0.1"), SrcPort: 1, DstPort: 1, Proto: 6}
	id := net.AddFlow(a, key, 0)
	sess := NewABRSimSession(sched, net, id, ABRConfig{})

	sched.RunUntil(30 * time.Second)
	if sess.Rung() != 2 {
		t.Fatalf("precondition: rung %d", sess.Rung())
	}
	// 79 competing greedy flows crush the session's share to ~125 kbit/s,
	// well below the lowest rung's comfort zone.
	for i := 0; i < 79; i++ {
		k := key
		k.SrcPort = uint16(100 + i)
		net.AddFlow(a, k, 0)
	}
	sched.RunUntil(150 * time.Second)
	if sess.Rung() != 0 {
		t.Fatalf("rung = %d after congestion, want 0", sess.Rung())
	}
}

func TestAggregateABRQoE(t *testing.T) {
	qs := []ABRQoE{
		{QoE: QoE{Stalls: 1}, MeanBitrate: 1e6, TopRungShare: 1, Switches: 2},
		{QoE: QoE{}, MeanBitrate: 0.5e6, TopRungShare: 0, Switches: 0},
	}
	a := AggregateABRQoE(qs)
	if a.Sessions != 2 || a.Switches != 2 || a.TotalStalls != 1 {
		t.Fatalf("agg = %+v", a)
	}
	if math.Abs(a.MeanBitrate-0.75e6) > 1 || math.Abs(a.TopRungShare-0.5) > 1e-9 {
		t.Fatalf("agg = %+v", a)
	}
	if AggregateABRQoE(nil).Sessions != 0 {
		t.Fatalf("empty aggregate broken")
	}
}
