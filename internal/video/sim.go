package video

import (
	"time"

	"fibbing.net/fibbing/internal/event"
	"fibbing.net/fibbing/internal/netsim"
)

// SimSession binds a Player to a fluid-simulator flow: at every tick it
// credits the bytes the flow delivered and advances playback in virtual
// time. This is how the Figure 2 scenario measures smooth vs. stuttering
// playback deterministically.
//
// A session is a demand source: it joins the traffic plane by flow ID and
// polls delivered volume through netsim.Delivered — it never holds flow
// or aggregate state itself.
type SimSession struct {
	Player *Player

	net      *netsim.Network
	flow     netsim.FlowID
	lastSeen float64
	lastAt   time.Duration
	ticker   *event.Ticker // nil when driven by a SessionPool
	done     bool
}

// NewSimSession attaches a player to a flow and starts sampling every
// interval (default 250 ms for smooth buffer dynamics). Prefer a
// SessionPool when attaching many sessions: one shared ticker instead of
// one scheduler event stream per viewer.
func NewSimSession(sched *event.Scheduler, net *netsim.Network, flow netsim.FlowID, bitrate float64, interval time.Duration) *SimSession {
	if interval <= 0 {
		interval = 250 * time.Millisecond
	}
	s := newSimSession(sched, net, flow, bitrate)
	s.ticker = sched.NewTicker(interval, func() { s.tick(sched.Now()) })
	return s
}

func newSimSession(sched *event.Scheduler, net *netsim.Network, flow netsim.FlowID, bitrate float64) *SimSession {
	return &SimSession{
		Player: NewPlayer(bitrate),
		net:    net,
		flow:   flow,
		lastAt: sched.Now(),
	}
}

func (s *SimSession) tick(now time.Duration) {
	if s.done {
		return
	}
	if delivered, ok := s.net.Delivered(s.flow); ok {
		if d := delivered - s.lastSeen; d > 0 {
			s.Player.OnDownloadedBytes(d)
		}
		s.lastSeen = delivered
	}
	s.Player.Advance(now - s.lastAt)
	s.lastAt = now
}

// Stop halts sampling (e.g. when the flow ends).
func (s *SimSession) Stop() {
	s.done = true
	if s.ticker != nil {
		s.ticker.Stop()
	}
}

func (s *SimSession) finished() bool { return s.done }

// QoE returns the session's playback metrics so far.
func (s *SimSession) QoE() QoE { return s.Player.QoE() }

// SessionPool drives any number of SimSessions from one shared ticker:
// the per-viewer cost of a tick is a delivered-bytes poll plus a player
// advance, with no per-session scheduler events. This is what keeps
// 100k-viewer flash crowds inside the event budget.
type SessionPool struct {
	sched    *event.Scheduler
	net      *netsim.Network
	sessions []*SimSession
}

// NewSessionPool starts a pool ticking every interval (default 250 ms).
func NewSessionPool(sched *event.Scheduler, net *netsim.Network, interval time.Duration) *SessionPool {
	if interval <= 0 {
		interval = 250 * time.Millisecond
	}
	p := &SessionPool{sched: sched, net: net}
	sched.NewTicker(interval, func() {
		p.sessions = tickSessions(p.sessions, sched.Now())
	})
	return p
}

// tickSessions advances every live session and compacts stopped ones out
// in place, so a departed crowd stops costing anything (the QoE lives on
// in whoever kept the session from Attach). Shared by SessionPool and
// ABRSessionPool — the ticker itself stays armed because Attach may add
// sessions later, and an empty pool's tick is a no-op.
func tickSessions[S interface {
	tick(now time.Duration)
	finished() bool
}](sessions []S, now time.Duration) []S {
	live := sessions[:0]
	for _, s := range sessions {
		if s.finished() {
			continue
		}
		s.tick(now)
		live = append(live, s)
	}
	return live
}

// Attach joins a new session for the flow to the pool and returns it.
func (p *SessionPool) Attach(flow netsim.FlowID, bitrate float64) *SimSession {
	s := newSimSession(p.sched, p.net, flow, bitrate)
	p.sessions = append(p.sessions, s)
	return s
}

// Len returns the number of sessions still ticking.
func (p *SessionPool) Len() int { return len(p.sessions) }
