package video

import (
	"time"

	"fibbing.net/fibbing/internal/event"
	"fibbing.net/fibbing/internal/netsim"
)

// SimSession binds a Player to a fluid-simulator flow: at every tick it
// credits the bytes the flow delivered and advances playback in virtual
// time. This is how the Figure 2 scenario measures smooth vs. stuttering
// playback deterministically.
type SimSession struct {
	Player *Player

	net      *netsim.Network
	flow     netsim.FlowID
	lastSeen float64
	lastAt   time.Duration
	ticker   *event.Ticker
	done     bool
}

// NewSimSession attaches a player to a flow and starts sampling every
// interval (default 250 ms for smooth buffer dynamics).
func NewSimSession(sched *event.Scheduler, net *netsim.Network, flow netsim.FlowID, bitrate float64, interval time.Duration) *SimSession {
	if interval <= 0 {
		interval = 250 * time.Millisecond
	}
	s := &SimSession{
		Player: NewPlayer(bitrate),
		net:    net,
		flow:   flow,
		lastAt: sched.Now(),
	}
	s.ticker = sched.NewTicker(interval, func() { s.tick(sched.Now()) })
	return s
}

func (s *SimSession) tick(now time.Duration) {
	if s.done {
		return
	}
	f := s.net.Flow(s.flow)
	if f != nil {
		delivered := f.DeliveredBytes()
		if d := delivered - s.lastSeen; d > 0 {
			s.Player.OnDownloadedBytes(d)
		}
		s.lastSeen = delivered
	}
	s.Player.Advance(now - s.lastAt)
	s.lastAt = now
}

// Stop halts sampling (e.g. when the flow ends).
func (s *SimSession) Stop() {
	s.done = true
	s.ticker.Stop()
}

// QoE returns the session's playback metrics so far.
func (s *SimSession) QoE() QoE { return s.Player.QoE() }
