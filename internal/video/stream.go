package video

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"
)

// This file is the real-socket binding of the video substrate: a segment
// server and a downloading client over TCP, exercising the same Player
// model with actual kernel sockets. cmd/fibbingd and the quickstart
// example use it in real-time mode; the emulated experiments use
// SimSession instead.

// Request line: "GET <segments> <segmentBytes>\n"; the server streams
// segments*segmentBytes of payload back. A pacing rate can throttle the
// server to emulate a congested path in tests.

// Server is a minimal segment server.
type Server struct {
	// PaceBps throttles writes (bits/second); 0 = line rate.
	PaceBps float64
	// OnNewClient is invoked per accepted session — the demo's
	// "servers notify the controller when they have a new client".
	OnNewClient func(remote net.Addr)

	ln      net.Listener
	mu      sync.Mutex
	started bool
	wg      sync.WaitGroup
}

// Serve accepts sessions on the listener until it is closed.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.started = true
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.wg.Wait()
			return err
		}
		if s.OnNewClient != nil {
			s.OnNewClient(conn.RemoteAddr())
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			_ = s.serveConn(conn)
		}()
	}
}

func (s *Server) serveConn(conn net.Conn) error {
	r := bufio.NewReader(conn)
	line, err := r.ReadString('\n')
	if err != nil {
		return err
	}
	fields := strings.Fields(line)
	if len(fields) != 3 || fields[0] != "GET" {
		fmt.Fprintf(conn, "ERR bad request\n")
		return fmt.Errorf("video: bad request %q", line)
	}
	segments, err1 := strconv.Atoi(fields[1])
	segBytes, err2 := strconv.Atoi(fields[2])
	if err1 != nil || err2 != nil || segments <= 0 || segBytes <= 0 || segBytes > 1<<24 {
		fmt.Fprintf(conn, "ERR bad sizes\n")
		return fmt.Errorf("video: bad sizes %q", line)
	}
	fmt.Fprintf(conn, "OK %d\n", segments*segBytes)

	payload := make([]byte, 16*1024)
	for i := range payload {
		payload[i] = byte(i)
	}
	total := segments * segBytes
	sent := 0
	start := time.Now()
	for sent < total {
		chunk := len(payload)
		if rem := total - sent; rem < chunk {
			chunk = rem
		}
		if _, err := conn.Write(payload[:chunk]); err != nil {
			return err
		}
		sent += chunk
		if s.PaceBps > 0 {
			// Token-bucket pacing: sleep until the bytes sent so far
			// are allowed by the rate.
			allowedAt := start.Add(time.Duration(float64(sent*8) / s.PaceBps * float64(time.Second)))
			if d := time.Until(allowedAt); d > 0 {
				time.Sleep(d)
			}
		}
	}
	return nil
}

// Client downloads a stream and plays it through a Player in real time.
type Client struct {
	// Bitrate of the media (bit/s); SegmentDuration of media per segment.
	Bitrate         float64
	SegmentDuration time.Duration
	Segments        int
	// ReadChunk controls the read granularity (default 8 KiB).
	ReadChunk int
}

// Play connects, downloads, and returns the playback QoE. Playback time
// advances with the wall clock while the download proceeds, exactly as a
// streaming client experiences it.
func (c *Client) Play(addr string) (QoE, error) {
	if c.Bitrate <= 0 || c.Segments <= 0 || c.SegmentDuration <= 0 {
		return QoE{}, fmt.Errorf("video: bad client parameters %+v", c)
	}
	chunk := c.ReadChunk
	if chunk <= 0 {
		chunk = 8 * 1024
	}
	segBytes := int(c.Bitrate * c.SegmentDuration.Seconds() / 8)
	if segBytes <= 0 {
		return QoE{}, fmt.Errorf("video: segment too small")
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return QoE{}, err
	}
	defer conn.Close()
	if _, err := fmt.Fprintf(conn, "GET %d %d\n", c.Segments, segBytes); err != nil {
		return QoE{}, err
	}
	r := bufio.NewReader(conn)
	status, err := r.ReadString('\n')
	if err != nil {
		return QoE{}, err
	}
	var total int
	if _, err := fmt.Sscanf(status, "OK %d", &total); err != nil {
		return QoE{}, fmt.Errorf("video: server said %q", strings.TrimSpace(status))
	}

	// The player advances in wall time; media duration it must cover is
	// Segments*SegmentDuration.
	player := NewPlayer(c.Bitrate)
	// Scale the startup buffer to one segment for short test media.
	player.StartupBuffer = c.SegmentDuration.Seconds()

	buf := make([]byte, chunk)
	received := 0
	last := time.Now()
	for received < total {
		n, err := r.Read(buf)
		if n > 0 {
			received += n
			player.OnDownloadedBytes(float64(n))
		}
		now := time.Now()
		player.Advance(now.Sub(last))
		last = now
		if err != nil {
			if err == io.EOF {
				break
			}
			return player.QoE(), err
		}
	}
	// Drain the buffer: keep playing until all downloaded media has
	// played. Advancing by exactly the buffered amount (truncated to the
	// nanosecond grid) never triggers a phantom stall at the boundary.
	for {
		b := player.Buffered()
		if b <= 2e-9 {
			break
		}
		if !player.playing && b < player.StartupBuffer {
			break // tail below the startup threshold can never resume
		}
		player.Advance(time.Duration(b * float64(time.Second)))
	}
	if received < total {
		return player.QoE(), fmt.Errorf("video: short stream %d/%d", received, total)
	}
	return player.QoE(), nil
}
