package spf

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fibbing.net/fibbing/internal/topo"
)

func fig1() (*topo.Topology, *Graph) {
	t := topo.Fig1(topo.Fig1Opts{})
	return t, FromTopology(t)
}

func TestFig1Distances(t *testing.T) {
	tp, g := fig1()
	tree := Compute(g, tp.MustNode(topo.Fig1A), nil)
	want := map[string]int64{
		"A": 0, "B": 1, "R1": 2, "R2": 2, "R3": 3, "C": 3, "R4": 3,
	}
	for name, d := range want {
		if got := tree.Dist[tp.MustNode(name)]; got != d {
			t.Errorf("dist(A,%s) = %d, want %d", name, got, d)
		}
	}
}

// TestFig1aShortestPaths pins the paper's Figure 1a: the shortest paths from
// A and from B to C overlap along B-R2-C, and are unique.
func TestFig1aShortestPaths(t *testing.T) {
	tp, g := fig1()
	a, b, c := tp.MustNode(topo.Fig1A), tp.MustNode(topo.Fig1B), tp.MustNode(topo.Fig1C)

	ta := Compute(g, a, nil)
	pa := ta.Paths(c, 0)
	if len(pa) != 1 {
		t.Fatalf("A has %d shortest paths to C, want 1: %v", len(pa), pa)
	}
	if got := FormatPath(tp, pa[0]); got != "A>B>R2>C" {
		t.Fatalf("A's path = %s, want A>B>R2>C", got)
	}

	tb := Compute(g, b, nil)
	pb := tb.Paths(c, 0)
	if len(pb) != 1 {
		t.Fatalf("B has %d shortest paths to C, want 1: %v", len(pb), pb)
	}
	if got := FormatPath(tp, pb[0]); got != "B>R2>C" {
		t.Fatalf("B's path = %s, want B>R2>C", got)
	}
}

func TestNextHopsSimple(t *testing.T) {
	tp, g := fig1()
	a, c := tp.MustNode(topo.Fig1A), tp.MustNode(topo.Fig1C)
	tree := Compute(g, a, nil)
	nhs := tree.NextHops(c)
	if len(nhs) != 1 {
		t.Fatalf("NextHops = %v, want single next hop B", nhs)
	}
	if nhs[0].Node != tp.MustNode(topo.Fig1B) || nhs[0].Paths != 1 {
		t.Fatalf("NextHops = %+v, want B with 1 path", nhs[0])
	}
	if nhs[0].Link == topo.NoLink {
		t.Fatalf("next hop should carry its link ID")
	}
}

func TestNextHopsECMPMultiplicity(t *testing.T) {
	// Diamond with a doubled upper branch:
	//   s -> u1 -> d, s -> u2 -> d, s -> v -> d where v has two parallel
	//   unit links to d. All paths cost 2.
	tp := topo.New()
	s := tp.AddNode("s")
	u1 := tp.AddNode("u1")
	u2 := tp.AddNode("u2")
	v := tp.AddNode("v")
	d := tp.AddNode("d")
	tp.AddLink(s, u1, 1, topo.LinkOpts{})
	tp.AddLink(s, u2, 1, topo.LinkOpts{})
	tp.AddLink(s, v, 1, topo.LinkOpts{})
	tp.AddLink(u1, d, 1, topo.LinkOpts{})
	tp.AddLink(u2, d, 1, topo.LinkOpts{})
	tp.AddLink(v, d, 1, topo.LinkOpts{})
	tp.AddLink(v, d, 1, topo.LinkOpts{}) // parallel link doubles v's paths

	g := FromTopology(tp)
	tree := Compute(g, s, nil)
	nhs := tree.NextHops(d)
	if len(nhs) != 3 {
		t.Fatalf("want 3 next hops, got %v", nhs)
	}
	byNode := map[topo.NodeID]int64{}
	for _, nh := range nhs {
		byNode[nh.Node] = nh.Paths
	}
	if byNode[u1] != 1 || byNode[u2] != 1 || byNode[v] != 2 {
		t.Fatalf("multiplicities = %v, want u1:1 u2:1 v:2", byNode)
	}
	if tree.PathCount(d) != 4 {
		t.Fatalf("PathCount = %d, want 4", tree.PathCount(d))
	}
}

func TestPathsEnumerationAndLimit(t *testing.T) {
	g := NewGraph(4)
	// 0 -> {1,2} -> 3, two equal paths.
	g.AddEdge(0, Edge{To: 1, Weight: 1})
	g.AddEdge(0, Edge{To: 2, Weight: 1})
	g.AddEdge(1, Edge{To: 3, Weight: 1})
	g.AddEdge(2, Edge{To: 3, Weight: 1})
	tree := Compute(g, 0, nil)
	paths := tree.Paths(3, 0)
	if len(paths) != 2 {
		t.Fatalf("want 2 paths, got %v", paths)
	}
	if len(tree.Paths(3, 1)) != 1 {
		t.Fatalf("limit=1 not honoured")
	}
	// Each path must start at src and end at dst.
	for _, p := range paths {
		if p[0] != 0 || p[len(p)-1] != 3 {
			t.Fatalf("malformed path %v", p)
		}
	}
}

func TestUnreachable(t *testing.T) {
	g := NewGraph(3)
	g.AddEdge(0, Edge{To: 1, Weight: 1})
	tree := Compute(g, 0, nil)
	if tree.Reachable(2) {
		t.Fatalf("node 2 should be unreachable")
	}
	if tree.Dist[2] != Infinity {
		t.Fatalf("unreachable distance should be Infinity")
	}
	if tree.NextHops(2) != nil {
		t.Fatalf("NextHops to unreachable should be nil")
	}
	if tree.Paths(2, 0) != nil {
		t.Fatalf("Paths to unreachable should be nil")
	}
}

func TestSkipExcludesTransit(t *testing.T) {
	// s - h - d (via host h, cost 2) and s - r - r2 - d (cost 3).
	// With h skipped as transit, d must be reached via the router path.
	tp := topo.New()
	s := tp.AddNode("s")
	h := tp.AddHost("h")
	d := tp.AddNode("d")
	r := tp.AddNode("r")
	r2 := tp.AddNode("r2")
	tp.AddLink(s, h, 1, topo.LinkOpts{})
	tp.AddLink(h, d, 1, topo.LinkOpts{})
	tp.AddLink(s, r, 1, topo.LinkOpts{})
	tp.AddLink(r, r2, 1, topo.LinkOpts{})
	tp.AddLink(r2, d, 1, topo.LinkOpts{})
	g := FromTopology(tp)
	skip := func(n topo.NodeID) bool { return tp.Node(n).Host }
	tree := Compute(g, s, skip)
	if tree.Dist[d] != 3 {
		t.Fatalf("dist via host = %d, want 3 (host must not transit)", tree.Dist[d])
	}
	// Host itself still reachable as a leaf.
	if tree.Dist[h] != 1 {
		t.Fatalf("host leaf distance = %d, want 1", tree.Dist[h])
	}
}

func TestAllPairs(t *testing.T) {
	tp := topo.Fig1(topo.Fig1Opts{WithHosts: true})
	trees := AllPairs(tp)
	for _, n := range tp.Nodes() {
		if n.Host {
			if _, ok := trees[n.ID]; ok {
				t.Fatalf("AllPairs computed a tree for host %s", n.Name)
			}
			continue
		}
		tree, ok := trees[n.ID]
		if !ok {
			t.Fatalf("AllPairs missing router %s", n.Name)
		}
		for _, m := range tp.Nodes() {
			if !tree.Reachable(m.ID) {
				t.Fatalf("%s cannot reach %s", n.Name, m.Name)
			}
		}
	}
}

func TestValidateDetectsCorruption(t *testing.T) {
	tp, g := fig1()
	tree := Compute(g, tp.MustNode(topo.Fig1A), nil)
	if err := Validate(g, tree); err != nil {
		t.Fatalf("valid tree rejected: %v", err)
	}
	tree.Dist[tp.MustNode(topo.Fig1C)]++ // corrupt
	if err := Validate(g, tree); err == nil {
		t.Fatalf("corrupted tree accepted")
	}
}

// Property: on random graphs, Dijkstra distances satisfy the triangle
// inequality over every edge, and every enumerated path's length equals the
// reported distance.
func TestRandomGraphProperties(t *testing.T) {
	f := func(seed int64) bool {
		n := 14
		rng := rand.New(rand.NewSource(seed))
		tp := topo.RandomConnected(topo.RandomOpts{
			Nodes: n, Degree: 3, MaxWeight: 9, Seed: seed,
		})
		g := FromTopology(tp)
		src := topo.NodeID(rng.Intn(n))
		tree := Compute(g, src, nil)
		if err := Validate(g, tree); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		for u := 0; u < n; u++ {
			for _, e := range g.Out[u] {
				if tree.Dist[u] == Infinity {
					continue
				}
				if tree.Dist[e.To] > tree.Dist[u]+e.Weight {
					t.Logf("seed %d: triangle violation at %d->%d", seed, u, e.To)
					return false
				}
			}
		}
		dst := topo.NodeID(rng.Intn(n))
		for _, p := range tree.Paths(dst, 50) {
			var sum int64
			for i := 0; i+1 < len(p); i++ {
				l, ok := tp.FindLink(p[i], p[i+1])
				if !ok {
					t.Logf("seed %d: path uses nonexistent link", seed)
					return false
				}
				sum += l.Weight
			}
			if sum != tree.Dist[dst] {
				t.Logf("seed %d: path length %d != dist %d", seed, sum, tree.Dist[dst])
				return false
			}
		}
		// Next-hop multiplicities must sum to the path count.
		var total int64
		for _, nh := range tree.NextHops(dst) {
			total += nh.Paths
		}
		if dst != src && tree.Reachable(dst) && total != tree.PathCount(dst) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestGraphCloneIndependence(t *testing.T) {
	_, g := fig1()
	c := g.Clone()
	id := c.AddNode()
	c.AddEdge(0, Edge{To: id, Weight: 1})
	if g.NumNodes() == c.NumNodes() {
		t.Fatalf("clone AddNode affected original")
	}
	if len(g.Out[0]) == len(c.Out[0]) {
		t.Fatalf("clone AddEdge affected original")
	}
}

func BenchmarkSPFFig1(b *testing.B) {
	tp, g := fig1()
	src := tp.MustNode(topo.Fig1A)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Compute(g, src, nil)
	}
}

func BenchmarkSPFRandom100(b *testing.B) {
	tp := topo.RandomConnected(topo.RandomOpts{Nodes: 100, Degree: 4, MaxWeight: 20, Seed: 1})
	g := FromTopology(tp)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Compute(g, 0, nil)
	}
}
