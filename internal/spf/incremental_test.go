package spf

import (
	"math/rand"
	"testing"

	"fibbing.net/fibbing/internal/topo"
)

// randomGraph builds a connected-ish directed graph with symmetric random
// edges, mirroring the shape of LSDB-derived router graphs.
func randomGraph(rng *rand.Rand, n int) *Graph {
	g := NewGraph(n)
	link := topo.LinkID(0)
	addPair := func(a, b topo.NodeID, w int64) {
		g.AddEdge(a, Edge{To: b, Weight: w, Link: link})
		link++
		g.AddEdge(b, Edge{To: a, Weight: w, Link: link})
		link++
	}
	// Random spanning tree first so most nodes are reachable.
	for v := 1; v < n; v++ {
		u := topo.NodeID(rng.Intn(v))
		addPair(u, topo.NodeID(v), 1+rng.Int63n(10))
	}
	extra := n
	for i := 0; i < extra; i++ {
		a, b := topo.NodeID(rng.Intn(n)), topo.NodeID(rng.Intn(n))
		if a == b {
			continue
		}
		addPair(a, b, 1+rng.Int63n(10))
	}
	return g
}

// mutate applies one random structural change and returns its change list.
func mutate(rng *rand.Rand, g *Graph) []GraphChange {
	n := g.NumNodes()
	switch rng.Intn(4) {
	case 0: // reweight or create the adjacency pair u<->v
		u := topo.NodeID(rng.Intn(n))
		v := topo.NodeID(rng.Intn(n))
		if u == v {
			return nil
		}
		w := 1 + rng.Int63n(10)
		var cs []GraphChange
		if g.ReplaceEdges(u, v, []Edge{{Weight: w, Link: topo.LinkID(1000 + rng.Intn(50))}}) {
			cs = append(cs, GraphChange{From: u, To: v})
		}
		if g.ReplaceEdges(v, u, []Edge{{Weight: w, Link: topo.LinkID(1000 + rng.Intn(50))}}) {
			cs = append(cs, GraphChange{From: v, To: u})
		}
		return cs
	case 1: // remove the adjacency pair
		u := topo.NodeID(rng.Intn(n))
		v := topo.NodeID(rng.Intn(n))
		if u == v {
			return nil
		}
		var cs []GraphChange
		if g.ReplaceEdges(u, v, nil) {
			cs = append(cs, GraphChange{From: u, To: v})
		}
		if g.ReplaceEdges(v, u, nil) {
			cs = append(cs, GraphChange{From: v, To: u})
		}
		return cs
	case 2: // graft a leaf node (a fake-node install)
		attach := topo.NodeID(rng.Intn(n))
		leaf := g.AddNode()
		g.AddEdge(attach, Edge{To: leaf, Weight: rng.Int63n(5), Link: topo.NoLink})
		return []GraphChange{{From: attach, To: leaf}}
	default: // detach a leaf (a fake-node withdraw): drop an arbitrary edge
		u := topo.NodeID(rng.Intn(n))
		if len(g.Out[u]) == 0 {
			return nil
		}
		v := g.Out[u][rng.Intn(len(g.Out[u]))].To
		if g.ReplaceEdges(u, v, nil) {
			return []GraphChange{{From: u, To: v}}
		}
		return nil
	}
}

// TestIncrementalMatchesFull chains random mutations and asserts that the
// incrementally patched tree is entry-for-entry identical to a fresh full
// Dijkstra after every step, with and without a skip function.
func TestIncrementalMatchesFull(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(40)
		g := randomGraph(rng, n)
		src := topo.NodeID(rng.Intn(n))
		var skip func(topo.NodeID) bool
		if seed%3 == 0 {
			skip = func(v topo.NodeID) bool { return v%5 == 0 && v != src }
		}
		prev := Compute(g, src, skip)
		sawIncremental := false
		for step := 0; step < 25; step++ {
			changes := mutate(rng, g)
			tree, touched, full := Incremental(g, prev, changes, skip)
			want := Compute(g, src, skip)
			if !tree.Equal(want) {
				t.Fatalf("seed %d step %d: incremental tree diverges from full (changes %v, touched %v, full %v)",
					seed, step, changes, touched, full)
			}
			if err := Validate(g, tree); err != nil {
				t.Fatalf("seed %d step %d: %v", seed, step, err)
			}
			if !full && len(changes) > 0 {
				sawIncremental = true
			}
			prev = tree
		}
		if !sawIncremental {
			t.Fatalf("seed %d: every step fell back to full recompute", seed)
		}
	}
}

// TestIncrementalTouchedCoversDifferences verifies the touched set is a
// sound over-approximation: any node whose distance or next hops changed
// must be listed.
func TestIncrementalTouchedCoversDifferences(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randomGraph(rng, 24)
	src := topo.NodeID(0)
	prev := Compute(g, src, nil)
	for step := 0; step < 40; step++ {
		changes := mutate(rng, g)
		tree, touched, full := Incremental(g, prev, changes, nil)
		if full {
			prev = tree
			continue
		}
		inTouched := make(map[topo.NodeID]bool, len(touched))
		for _, v := range touched {
			inTouched[v] = true
		}
		for v := 0; v < len(prev.Dist); v++ {
			id := topo.NodeID(v)
			if prev.Dist[v] != tree.Dist[v] && !inTouched[id] {
				t.Fatalf("step %d: node %d distance changed (%d -> %d) but not touched",
					step, v, prev.Dist[v], tree.Dist[v])
			}
			a, b := prev.preds[v], tree.preds[v]
			if len(a) != len(b) && !inTouched[id] {
				t.Fatalf("step %d: node %d preds changed but not touched", step, v)
			}
		}
		prev = tree
	}
}

// TestIncrementalNoChanges returns the previous tree untouched.
func TestIncrementalNoChanges(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomGraph(rng, 12)
	prev := Compute(g, 0, nil)
	tree, touched, full := Incremental(g, prev, nil, nil)
	if tree != prev || touched != nil || full {
		t.Fatalf("no-op incremental: tree=%p prev=%p touched=%v full=%v", tree, prev, touched, full)
	}
}

// TestIncrementalGrownGraph covers the fake-node install path: the graph
// gains leaves after the previous tree was computed.
func TestIncrementalGrownGraph(t *testing.T) {
	g := NewGraph(3)
	g.AddEdge(0, Edge{To: 1, Weight: 1, Link: 0})
	g.AddEdge(1, Edge{To: 0, Weight: 1, Link: 1})
	g.AddEdge(1, Edge{To: 2, Weight: 1, Link: 2})
	g.AddEdge(2, Edge{To: 1, Weight: 1, Link: 3})
	prev := Compute(g, 0, nil)
	leaf := g.AddNode()
	g.AddEdge(2, Edge{To: leaf, Weight: 0, Link: topo.NoLink})
	tree, _, _ := Incremental(g, prev, []GraphChange{{From: 2, To: leaf}}, nil)
	want := Compute(g, 0, nil)
	if !tree.Equal(want) {
		t.Fatalf("grown graph: incremental %v vs full %v", tree.Dist, want.Dist)
	}
	if tree.Dist[leaf] != 2 {
		t.Fatalf("leaf dist = %d, want 2", tree.Dist[leaf])
	}
}

func TestReplaceEdgesReporting(t *testing.T) {
	g := NewGraph(3)
	g.AddEdge(0, Edge{To: 1, Weight: 2, Link: 7})
	if g.ReplaceEdges(0, 1, []Edge{{Weight: 2, Link: 7}}) {
		t.Fatal("identical replacement reported as change")
	}
	if !g.ReplaceEdges(0, 1, []Edge{{Weight: 3, Link: 7}}) {
		t.Fatal("reweight not reported")
	}
	if !g.ReplaceEdges(0, 1, nil) {
		t.Fatal("removal not reported")
	}
	if g.ReplaceEdges(0, 1, nil) {
		t.Fatal("removing an absent edge reported as change")
	}
	if !g.ReplaceEdges(0, 2, []Edge{{Weight: 1, Link: 9}}) {
		t.Fatal("addition not reported")
	}
	if len(g.Out[0]) != 1 || g.Out[0][0].To != 2 {
		t.Fatalf("unexpected adjacency %v", g.Out[0])
	}
}
