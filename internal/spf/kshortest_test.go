package spf

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fibbing.net/fibbing/internal/topo"
)

func TestKShortestFig1(t *testing.T) {
	tp := topo.Fig1(topo.Fig1Opts{})
	g := FromTopology(tp)
	a, c := tp.MustNode("A"), tp.MustNode("C")
	paths := KShortest(g, a, c, 4, nil)
	if len(paths) < 3 {
		t.Fatalf("paths = %d", len(paths))
	}
	// First path is the shortest: A>B>R2>C (cost 3).
	if got := FormatPath(tp, paths[0]); got != "A>B>R2>C" {
		t.Fatalf("first = %s", got)
	}
	// Second: A>B>R3>C (cost 4).
	if got := FormatPath(tp, paths[1]); got != "A>B>R3>C" {
		t.Fatalf("second = %s", got)
	}
	// Third: A>R1>R4>C (cost 5).
	if got := FormatPath(tp, paths[2]); got != "A>R1>R4>C" {
		t.Fatalf("third = %s", got)
	}
}

func TestKShortestDegenerate(t *testing.T) {
	tp := topo.Fig1(topo.Fig1Opts{})
	g := FromTopology(tp)
	a := tp.MustNode("A")
	if KShortest(g, a, a, 3, nil) != nil {
		t.Fatalf("src==dst should be nil")
	}
	if KShortest(g, a, tp.MustNode("C"), 0, nil) != nil {
		t.Fatalf("k=0 should be nil")
	}
	// Unreachable destination.
	g2 := NewGraph(3)
	g2.AddEdge(0, Edge{To: 1, Weight: 1})
	if KShortest(g2, 0, 2, 3, nil) != nil {
		t.Fatalf("unreachable should be nil")
	}
}

func TestKShortestExhausts(t *testing.T) {
	// Triangle: exactly two loopless paths 0->2 (direct, via 1).
	g := NewGraph(3)
	g.AddEdge(0, Edge{To: 2, Weight: 5})
	g.AddEdge(0, Edge{To: 1, Weight: 1})
	g.AddEdge(1, Edge{To: 2, Weight: 1})
	g.AddEdge(1, Edge{To: 0, Weight: 1})
	g.AddEdge(2, Edge{To: 0, Weight: 5})
	g.AddEdge(2, Edge{To: 1, Weight: 1})
	paths := KShortest(g, 0, 2, 10, nil)
	if len(paths) != 2 {
		t.Fatalf("paths = %v", paths)
	}
	if len(paths[0]) != 3 || len(paths[1]) != 2 {
		t.Fatalf("order wrong: %v", paths)
	}
}

// Properties on random graphs: costs non-decreasing, paths loopless,
// distinct, and all valid edge sequences; the first path's cost equals the
// Dijkstra distance.
func TestKShortestProperties(t *testing.T) {
	f := func(seed int64) bool {
		tp := topo.RandomConnected(topo.RandomOpts{
			Nodes: 10, Degree: 3, MaxWeight: 5, Seed: seed,
		})
		g := FromTopology(tp)
		rng := rand.New(rand.NewSource(seed))
		src := topo.NodeID(rng.Intn(10))
		dst := topo.NodeID(rng.Intn(10))
		if src == dst {
			return true
		}
		paths := KShortest(g, src, dst, 5, nil)
		tree := Compute(g, src, nil)
		if len(paths) == 0 {
			return !tree.Reachable(dst)
		}
		cost := func(p []topo.NodeID) int64 {
			var sum int64
			for i := 0; i+1 < len(p); i++ {
				l, ok := tp.FindLink(p[i], p[i+1])
				if !ok {
					return -1
				}
				sum += l.Weight
			}
			return sum
		}
		prev := int64(-1)
		seen := map[string]bool{}
		for _, p := range paths {
			if p[0] != src || p[len(p)-1] != dst {
				return false
			}
			c := cost(p)
			if c < 0 || c < prev {
				return false
			}
			prev = c
			// Loopless.
			nodes := map[topo.NodeID]bool{}
			for _, n := range p {
				if nodes[n] {
					return false
				}
				nodes[n] = true
			}
			key := FormatPath(tp, p)
			if seen[key] {
				return false
			}
			seen[key] = true
		}
		return cost(paths[0]) == tree.Dist[dst]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkKShortest(b *testing.B) {
	tp := topo.RandomConnected(topo.RandomOpts{Nodes: 30, Degree: 3, MaxWeight: 8, Seed: 3})
	g := FromTopology(tp)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		KShortest(g, 0, 29, 5, nil)
	}
}
