// Package spf implements shortest-path-first computation (Dijkstra) with
// full equal-cost multi-path (ECMP) support, as run by every router of a
// link-state IGP.
//
// The central result type is Tree: distances from a source plus the ECMP
// predecessor DAG, from which callers derive next-hop sets, enumerate all
// equal-cost paths, and count path multiplicities — the quantity Fibbing
// manipulates to realise uneven splitting ratios.
//
// Incremental (incremental.go) patches a Tree from a list of GraphChanges
// instead of re-running Dijkstra, falling back to a full recompute when
// the dirty region exceeds MaxDirtyFraction of the graph. It is the first
// stage of the delta pipeline: IGP change → patched tree → FIB diff →
// selective flow re-routing.
package spf

import (
	"fmt"
	"math"
	"strings"
	"sync"

	"fibbing.net/fibbing/internal/topo"
)

// scratch is the reusable working state of one SPF run: the visited set
// (Compute), the per-node flag vector (Incremental), and the binary-heap
// backing array. The parallel simulation core runs many per-router SPF
// computations per tick on worker goroutines, so the scratch is pooled —
// effectively per worker — instead of allocated per run. Results (Dist,
// preds) never alias scratch memory.
type scratch struct {
	done  []bool
	flags []uint8
	h     heap
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

func getScratch() *scratch { return scratchPool.Get().(*scratch) }

func (s *scratch) release() {
	s.h.a = s.h.a[:0]
	scratchPool.Put(s)
}

func (s *scratch) boolSlice(n int) []bool {
	if cap(s.done) < n {
		s.done = make([]bool, n)
	}
	s.done = s.done[:n]
	clear(s.done)
	return s.done
}

func (s *scratch) flagSlice(n int) []uint8 {
	if cap(s.flags) < n {
		s.flags = make([]uint8, n)
	}
	s.flags = s.flags[:n]
	clear(s.flags)
	return s.flags
}

// Infinity is the distance reported for unreachable nodes.
const Infinity int64 = math.MaxInt64

// Edge is one directed adjacency of the SPF graph.
type Edge struct {
	To     topo.NodeID
	Weight int64
	// Link is the topology link realising the edge, or topo.NoLink for
	// synthetic edges (fake links injected by Fibbing).
	Link topo.LinkID
}

// Graph is a compact adjacency-list view tailored for SPF. It is decoupled
// from topo.Topology so that the IGP can run SPF over LSDB-derived graphs
// that include fake nodes.
type Graph struct {
	Out [][]Edge
}

// NewGraph returns an empty graph with n nodes.
func NewGraph(n int) *Graph {
	return &Graph{Out: make([][]Edge, n)}
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.Out) }

// AddEdge appends a directed edge.
func (g *Graph) AddEdge(from topo.NodeID, e Edge) {
	g.Out[from] = append(g.Out[from], e)
}

// AddNode appends an isolated node and returns its ID. Used to graft fake
// nodes onto a copy of the real graph.
func (g *Graph) AddNode() topo.NodeID {
	g.Out = append(g.Out, nil)
	return topo.NodeID(len(g.Out) - 1)
}

// Clone returns a deep copy; edge slices are copied so the clone can be
// extended without aliasing.
func (g *Graph) Clone() *Graph {
	c := NewGraph(g.NumNodes())
	for i, es := range g.Out {
		c.Out[i] = append([]Edge(nil), es...)
	}
	return c
}

// ReplaceEdges replaces the multiset of directed edges from -> to with the
// given ones (each edge's To field is forced to to). It reports whether the
// edge set actually differed, so incremental graph maintainers can build
// GraphChange lists for Incremental without tracking weights themselves.
func (g *Graph) ReplaceEdges(from, to topo.NodeID, edges []Edge) bool {
	var old []Edge
	kept := g.Out[from][:0]
	for _, e := range g.Out[from] {
		if e.To == to {
			old = append(old, e)
		} else {
			kept = append(kept, e)
		}
	}
	for _, e := range edges {
		e.To = to
		kept = append(kept, e)
	}
	g.Out[from] = kept
	if len(old) != len(edges) {
		return true
	}
	// Multiset comparison on (Weight, Link); edge lists here are tiny
	// (parallel links between one node pair).
	matched := make([]bool, len(old))
	for _, e := range edges {
		found := false
		for i, o := range old {
			if !matched[i] && o.Weight == e.Weight && o.Link == e.Link {
				matched[i] = true
				found = true
				break
			}
		}
		if !found {
			return true
		}
	}
	return false
}

// FromTopology builds the SPF graph of the router-level topology. Host
// nodes are present (so IDs align) but contribute no transit: edges from
// hosts exist, edges into hosts exist, yet hosts are excluded as transit by
// routers simply because shortest paths never improve through a stub of
// equal cost — to be strict we keep host edges only between the host and
// its attachment, which cannot create transit shortcuts.
func FromTopology(t *topo.Topology) *Graph {
	g := NewGraph(t.NumNodes())
	for _, l := range t.Links() {
		g.AddEdge(l.From, Edge{To: l.To, Weight: l.Weight, Link: l.ID})
	}
	return g
}

// Tree is the result of one SPF run: distances from Src and the ECMP
// predecessor DAG over shortest paths.
type Tree struct {
	Src  topo.NodeID
	Dist []int64
	// preds[v] lists, for every node v on some shortest path, the edges
	// (u -> v) that lie on a shortest path from Src.
	preds [][]pred
	// kids caches the CSR inversion of preds (children of every node in
	// the shortest-path DAG), built lazily by childrenCSR. Incremental
	// stores it on the trees it returns so the next patch of the same
	// tree gets the old-DAG closure for free.
	kids   dagChildren
	kidsOK bool
}

type pred struct {
	from topo.NodeID
	link topo.LinkID
}

// item is a binary-heap entry.
type item struct {
	node topo.NodeID
	dist int64
}

// heap is a minimal binary min-heap on (dist, node). A hand-rolled heap
// avoids the interface boxing of container/heap on this hot path.
type heap struct {
	a []item
}

func (h *heap) push(it item) {
	h.a = append(h.a, it)
	i := len(h.a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.a[p].dist <= h.a[i].dist {
			break
		}
		h.a[p], h.a[i] = h.a[i], h.a[p]
		i = p
	}
}

func (h *heap) pop() item {
	top := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a = h.a[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && h.a[l].dist < h.a[small].dist {
			small = l
		}
		if r < last && h.a[r].dist < h.a[small].dist {
			small = r
		}
		if small == i {
			break
		}
		h.a[i], h.a[small] = h.a[small], h.a[i]
		i = small
	}
	return top
}

func (h *heap) empty() bool { return len(h.a) == 0 }

// Compute runs Dijkstra from src and records the full ECMP predecessor DAG.
// Nodes listed in skip are not expanded (used to exclude stub hosts from
// transit); they may still be reached as leaves.
func Compute(g *Graph, src topo.NodeID, skip func(topo.NodeID) bool) *Tree {
	n := g.NumNodes()
	t := &Tree{
		Src:   src,
		Dist:  make([]int64, n),
		preds: make([][]pred, n),
	}
	for i := range t.Dist {
		t.Dist[i] = Infinity
	}
	t.Dist[src] = 0
	sc := getScratch()
	defer sc.release()
	done := sc.boolSlice(n)
	h := &sc.h
	h.push(item{node: src, dist: 0})
	for !h.empty() {
		it := h.pop()
		u := it.node
		if done[u] || it.dist > t.Dist[u] {
			continue
		}
		done[u] = true
		if u != src && skip != nil && skip(u) {
			continue // reached, but never expanded as transit
		}
		du := t.Dist[u]
		for _, e := range g.Out[u] {
			alt := du + e.Weight
			if alt < 0 { // overflow guard
				continue
			}
			switch {
			case alt < t.Dist[e.To]:
				t.Dist[e.To] = alt
				t.preds[e.To] = t.preds[e.To][:0]
				t.preds[e.To] = append(t.preds[e.To], pred{from: u, link: e.Link})
				h.push(item{node: e.To, dist: alt})
			case alt == t.Dist[e.To]:
				t.preds[e.To] = append(t.preds[e.To], pred{from: u, link: e.Link})
			}
		}
	}
	t.canonicalize()
	return t
}

// canonicalize sorts every predecessor list by (from, link) so that trees
// produced by different strategies (full Dijkstra vs Incremental) compare
// equal entry for entry.
func (t *Tree) canonicalize() {
	for _, ps := range t.preds {
		sortPreds(ps)
	}
}

func sortPreds(ps []pred) {
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0 && predLess(ps[j], ps[j-1]); j-- {
			ps[j], ps[j-1] = ps[j-1], ps[j]
		}
	}
}

func predLess(a, b pred) bool {
	if a.from != b.from {
		return a.from < b.from
	}
	return a.link < b.link
}

// Equal reports whether two trees encode identical routing state: same
// source, same distances, and identical canonicalised predecessor sets.
// Trees over graphs of different sizes are never equal.
func (t *Tree) Equal(o *Tree) bool {
	if o == nil || t.Src != o.Src || len(t.Dist) != len(o.Dist) || len(t.preds) != len(o.preds) {
		return false
	}
	for i := range t.Dist {
		if t.Dist[i] != o.Dist[i] {
			return false
		}
	}
	for v := range t.preds {
		a, b := t.preds[v], o.preds[v]
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
	}
	return true
}

// Reachable reports whether dst was reached.
func (t *Tree) Reachable(dst topo.NodeID) bool {
	return t.Dist[dst] != Infinity
}

// NextHop is one first hop of an equal-cost path set, with the number of
// distinct shortest paths that start with it. Multiplicity is what turns
// duplicated fake nodes into uneven ECMP ratios.
type NextHop struct {
	Node topo.NodeID
	Link topo.LinkID
	// Paths counts the distinct shortest src->dst paths whose first hop
	// is this next hop.
	Paths int64
}

// NextHops returns the ECMP next hops from Src towards dst, including the
// per-next-hop shortest-path multiplicity. The result is sorted by node ID
// for determinism. Returns nil if dst is unreachable or dst == Src.
func (t *Tree) NextHops(dst topo.NodeID) []NextHop {
	if dst == t.Src || !t.Reachable(dst) {
		return nil
	}
	// Count, for each node on the DAG, the number of shortest paths from
	// Src, memoised over the predecessor DAG; and attribute each complete
	// path to the first hop it uses.
	type agg struct {
		counts map[topo.NodeID]int64 // first-hop node -> #paths
		link   map[topo.NodeID]topo.LinkID
	}
	memo := make(map[topo.NodeID]agg)
	var walk func(v topo.NodeID) agg
	walk = func(v topo.NodeID) agg {
		if a, ok := memo[v]; ok {
			return a
		}
		a := agg{counts: make(map[topo.NodeID]int64), link: make(map[topo.NodeID]topo.LinkID)}
		for _, p := range t.preds[v] {
			if p.from == t.Src {
				a.counts[v] += 1
				a.link[v] = p.link
				continue
			}
			sub := walk(p.from)
			for nh, c := range sub.counts {
				a.counts[nh] += c
				a.link[nh] = sub.link[nh]
			}
		}
		memo[v] = a
		return a
	}
	a := walk(dst)
	out := make([]NextHop, 0, len(a.counts))
	for nh, c := range a.counts {
		out = append(out, NextHop{Node: nh, Link: a.link[nh], Paths: c})
	}
	sortNextHops(out)
	return out
}

func sortNextHops(nhs []NextHop) {
	for i := 1; i < len(nhs); i++ {
		for j := i; j > 0 && nhs[j].Node < nhs[j-1].Node; j-- {
			nhs[j], nhs[j-1] = nhs[j-1], nhs[j]
		}
	}
}

// Paths enumerates all equal-cost shortest paths from Src to dst as node
// sequences (Src first). At most limit paths are returned (0 = no limit).
// Paths are produced in a deterministic order.
func (t *Tree) Paths(dst topo.NodeID, limit int) [][]topo.NodeID {
	if !t.Reachable(dst) || dst == t.Src {
		return nil
	}
	var out [][]topo.NodeID
	var rev []topo.NodeID
	var walk func(v topo.NodeID) bool
	walk = func(v topo.NodeID) bool {
		rev = append(rev, v)
		defer func() { rev = rev[:len(rev)-1] }()
		if v == t.Src {
			path := make([]topo.NodeID, len(rev))
			for i, n := range rev {
				path[len(rev)-1-i] = n
			}
			out = append(out, path)
			return limit == 0 || len(out) < limit
		}
		ps := append([]pred(nil), t.preds[v]...)
		for i := 1; i < len(ps); i++ {
			for j := i; j > 0 && ps[j].from < ps[j-1].from; j-- {
				ps[j], ps[j-1] = ps[j-1], ps[j]
			}
		}
		for _, p := range ps {
			if !walk(p.from) {
				return false
			}
		}
		return true
	}
	walk(dst)
	return out
}

// PathCount returns the number of distinct shortest paths from Src to dst.
func (t *Tree) PathCount(dst topo.NodeID) int64 {
	var total int64
	for _, nh := range t.NextHops(dst) {
		total += nh.Paths
	}
	if dst == t.Src {
		return 1
	}
	return total
}

// FormatPath renders a node path using topology names, e.g. "A>B>R2>C".
func FormatPath(t *topo.Topology, path []topo.NodeID) string {
	var b strings.Builder
	for i, n := range path {
		if i > 0 {
			b.WriteByte('>')
		}
		b.WriteString(t.Name(n))
	}
	return b.String()
}

// HostSkip returns the canonical skip function for graphs derived from t:
// host nodes never transit. Graph indices >= t.NumNodes() (synthetic nodes
// appended to a topology-derived graph, e.g. Fibbing's fake nodes) are
// never skipped.
func HostSkip(t *topo.Topology) func(topo.NodeID) bool {
	return func(n topo.NodeID) bool {
		return int(n) < t.NumNodes() && t.Node(n).Host
	}
}

// ComputeRouters runs Compute from src over a graph derived from t
// (possibly extended with synthetic nodes) with the canonical host-skip
// rule. It is the shared entry point of every caller that builds ad-hoc
// graphs over a topology: TE heuristics, CSPF, the controller's what-if
// evaluation.
func ComputeRouters(g *Graph, t *topo.Topology, src topo.NodeID) *Tree {
	return Compute(g, src, HostSkip(t))
}

// AllPairs computes one Tree per router (hosts excluded as sources).
func AllPairs(t *topo.Topology) map[topo.NodeID]*Tree {
	g := FromTopology(t)
	out := make(map[topo.NodeID]*Tree, t.NumNodes())
	for _, n := range t.Nodes() {
		if n.Host {
			continue
		}
		out[n.ID] = ComputeRouters(g, t, n.ID)
	}
	return out
}

// Validate sanity-checks a tree against its graph: every predecessor edge
// must satisfy the shortest-path equality dist[u] + w == dist[v].
func Validate(g *Graph, t *Tree) error {
	for v, ps := range t.preds {
		for _, p := range ps {
			var w int64 = -1
			for _, e := range g.Out[p.from] {
				if e.To == topo.NodeID(v) && e.Link == p.link {
					w = e.Weight
					break
				}
			}
			if w < 0 {
				return fmt.Errorf("spf: pred edge %d->%d not in graph", p.from, v)
			}
			if t.Dist[p.from] == Infinity || t.Dist[p.from]+w != t.Dist[v] {
				return fmt.Errorf("spf: pred edge %d->%d violates optimality (%d + %d != %d)",
					p.from, v, t.Dist[p.from], w, t.Dist[v])
			}
		}
	}
	return nil
}
