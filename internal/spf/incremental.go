package spf

import "fibbing.net/fibbing/internal/topo"

// This file implements incremental shortest-path recomputation: given a
// Tree computed on an earlier version of a Graph and the set of adjacencies
// that changed since, Incremental patches the tree instead of re-running
// Dijkstra from scratch. The dirty region — nodes whose distance or
// predecessor set may differ — is derived from the changed edges:
//
//   - an edge that lay on a shortest path and got worse (removed, weight
//     raised) invalidates its head and, transitively, every old-DAG
//     descendant of it (their distances were routed through it);
//   - an edge that got better (added, weight lowered) invalidates its head
//     only — improvements re-propagate through the ordinary Dijkstra
//     relaxation, which also catches new equal-cost predecessors.
//
// Dirty nodes are reset to Infinity and re-settled by a Dijkstra run that
// is seeded from the intact boundary (every edge from an intact node into
// the dirty region). When the dirty region exceeds MaxDirtyFraction of the
// graph the bookkeeping no longer pays for itself and Incremental falls
// back to a full Compute.

// GraphChange names one directed adjacency (From -> To) whose edge set —
// presence, weight, or multiplicity — differs between the graph a previous
// Tree was computed on and the current graph. Graph.ReplaceEdges reports
// whether a change entry is needed.
type GraphChange struct {
	From, To topo.NodeID
}

// MaxDirtyFraction is Incremental's fallback threshold: when more than
// this fraction of the graph's nodes is dirty, one full Dijkstra is
// cheaper than invalidation bookkeeping plus a near-full re-settle.
const MaxDirtyFraction = 0.5

// Incremental returns the shortest-path tree of g from prev.Src, reusing
// prev (computed on an earlier version of g, with at most as many nodes)
// wherever the changed adjacencies cannot have altered it. It returns the
// new tree, the IDs of nodes whose distance, predecessor set, or derived
// next hops may differ from prev (sorted, conservative: the set is closed
// over shortest-path-DAG descendants, since NextHops depends on every
// predecessor set along the DAG), and whether it fell back to a full
// recompute (in which case touched is nil and callers must assume every
// node changed). prev is never mutated; untouched predecessor lists are
// shared between prev and the result.
//
// The produced tree is identical — Equal in the strict sense — to what
// Compute(g, prev.Src, skip) returns, provided prev itself was produced by
// Compute or Incremental on the earlier graph with the same skip function,
// and changes covers every adjacency that differs between the two graphs.
func Incremental(g *Graph, prev *Tree, changes []GraphChange, skip func(topo.NodeID) bool) (t *Tree, touched []topo.NodeID, full bool) {
	if prev == nil {
		panic("spf: Incremental without a previous tree")
	}
	src := prev.Src
	n := g.NumNodes()
	pn := len(prev.Dist)
	if pn > n {
		// The graph shrank under us; index mappings are gone.
		return Compute(g, src, skip), nil, true
	}

	// flags packs the per-node state of the whole pass into one
	// allocation: the dirty region, copy-on-write ownership of pred
	// lists, the touched set, and Dijkstra settlement.
	const (
		fDirty uint8 = 1 << iota
		fOwned
		fTouched
		fDone
		fSeen
	)
	sc := getScratch()
	defer sc.release()
	flags := sc.flagSlice(n)
	nDirty := 0
	mark := func(v topo.NodeID) {
		if v != src && flags[v]&fDirty == 0 {
			flags[v] |= fDirty
			nDirty++
		}
	}
	// Nodes appended since prev start unknown.
	for v := pn; v < n; v++ {
		mark(topo.NodeID(v))
	}
	var worse []topo.NodeID
	for _, c := range changes {
		u, v := c.From, c.To
		if int(u) >= n || int(v) >= n || v == src {
			continue
		}
		if int(v) >= pn {
			continue // new node, already dirty
		}
		usedBefore := false
		for _, p := range prev.preds[v] {
			if p.from == u {
				usedBefore = true
				break
			}
		}
		if usedBefore {
			// The changed edge carried shortest paths: v and its old-DAG
			// descendants must be re-settled.
			mark(v)
			worse = append(worse, v)
			continue
		}
		// The edge was off the shortest paths. Only an improvement (or a
		// new equal-cost tie) can matter, and only through the edge's
		// current incarnations.
		if int(u) >= pn || prev.Dist[u] == Infinity {
			continue // u is new or was unreachable: handled via u's own dirtiness
		}
		if skip != nil && u != src && skip(u) {
			continue // u never transits
		}
		du := prev.Dist[u]
		for _, e := range g.Out[u] {
			if e.To == v && du+e.Weight >= 0 && du+e.Weight <= prev.Dist[v] {
				mark(v)
				break
			}
		}
	}
	if len(worse) > 0 {
		// Transitive closure of the worse seeds over the old predecessor
		// DAG (children = nodes listing the seed as a predecessor). The
		// CSR is cached on prev, so chained patches pay for it once.
		children := prev.childrenCSR()
		queue := append([]topo.NodeID(nil), worse...)
		for _, v := range worse {
			flags[v] |= fSeen
		}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			mark(u)
			for _, w := range children.of(u) {
				if flags[w]&fSeen == 0 {
					flags[w] |= fSeen
					queue = append(queue, w)
				}
			}
		}
	}

	if nDirty == 0 {
		return prev, nil, false
	}
	if float64(nDirty) > MaxDirtyFraction*float64(n) {
		return Compute(g, src, skip), nil, true
	}

	t = &Tree{Src: src, Dist: make([]int64, n), preds: make([][]pred, n)}
	copy(t.Dist, prev.Dist)
	for v := pn; v < n; v++ {
		t.Dist[v] = Infinity
	}
	copy(t.preds, prev.preds)
	// fOwned marks predecessor lists this tree may mutate; everything
	// else is shared with prev and must be copied before writing.
	for v := range flags {
		if flags[v]&fDirty != 0 {
			t.Dist[v] = Infinity
			t.preds[v] = nil
			flags[v] |= fOwned | fTouched
		}
	}

	h := &sc.h
	relax := func(u topo.NodeID, du int64, e Edge) {
		alt := du + e.Weight
		if alt < 0 { // overflow guard
			return
		}
		v := e.To
		switch {
		case alt < t.Dist[v]:
			t.Dist[v] = alt
			if flags[v]&fOwned != 0 {
				t.preds[v] = t.preds[v][:0]
			} else {
				t.preds[v] = nil
				flags[v] |= fOwned
			}
			t.preds[v] = append(t.preds[v], pred{from: u, link: e.Link})
			flags[v] |= fTouched
			h.push(item{node: v, dist: alt})
		case alt == t.Dist[v] && alt != Infinity:
			p := pred{from: u, link: e.Link}
			for _, q := range t.preds[v] {
				if q == p {
					return // already recorded (re-relaxation of an intact edge)
				}
			}
			if flags[v]&fOwned == 0 {
				t.preds[v] = append(append([]pred(nil), t.preds[v]...), p)
				flags[v] |= fOwned
			} else {
				t.preds[v] = append(t.preds[v], p)
			}
			flags[v] |= fTouched
		}
	}

	// Seed the frontier: every edge from an intact, reachable, transiting
	// node into the dirty region is a candidate path.
	for u := 0; u < n; u++ {
		un := topo.NodeID(u)
		if flags[u]&fDirty != 0 || t.Dist[u] == Infinity {
			continue
		}
		if skip != nil && un != src && skip(un) {
			continue
		}
		du := t.Dist[u]
		for _, e := range g.Out[u] {
			if flags[e.To]&fDirty != 0 {
				relax(un, du, e)
			}
		}
	}
	// Standard Dijkstra over the seeded frontier. Improvements may escape
	// the dirty region (a shortcut through re-settled nodes); the loop
	// follows them wherever they cascade.
	for !h.empty() {
		it := h.pop()
		u := it.node
		if flags[u]&fDone != 0 || it.dist > t.Dist[u] {
			continue
		}
		flags[u] |= fDone
		if u != src && skip != nil && skip(u) {
			continue
		}
		du := t.Dist[u]
		for _, e := range g.Out[u] {
			relax(u, du, e)
		}
	}

	for v := 0; v < n; v++ {
		if flags[v]&fTouched != 0 {
			sortPreds(t.preds[v])
		}
	}
	// Close touched over the new DAG's descendants: a node's derived next
	// hops (NextHops, Paths, PathCount) depend on the predecessor sets of
	// every node on its shortest-path DAG, so a change anywhere upstream
	// counts as a change for all nodes routing through it. Building the
	// CSR here doubles as priming t's cache for the next patch.
	children := t.childrenCSR()
	var queue []topo.NodeID
	for v := 0; v < n; v++ {
		if flags[v]&fTouched != 0 {
			queue = append(queue, topo.NodeID(v))
		}
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, w := range children.of(u) {
			if flags[w]&fTouched == 0 {
				flags[w] |= fTouched
				queue = append(queue, w)
			}
		}
	}
	for v := 0; v < n; v++ {
		if flags[v]&fTouched != 0 {
			touched = append(touched, topo.NodeID(v))
		}
	}
	return t, touched, false
}

// childrenCSR returns (building lazily and caching) the CSR inversion of
// the tree's predecessor DAG.
func (t *Tree) childrenCSR() dagChildren {
	if !t.kidsOK {
		t.kids = newDAGChildren(t.preds, len(t.preds))
		t.kidsOK = true
	}
	return t.kids
}

// dagChildren is a compact CSR (offset + flat array) inversion of a
// predecessor DAG: two allocations instead of one slice per node, which
// keeps the closure passes off the allocator on the hot path.
type dagChildren struct {
	off  []int32
	kids []topo.NodeID
}

func newDAGChildren(preds [][]pred, n int) dagChildren {
	// Counting sort with the cursor-shift trick: counts land at off[v+2],
	// the fill pass advances off[v+1] from start(v) to end(v), leaving
	// off[u]:off[u+1] as u's final extent — no separate cursor array.
	off := make([]int32, n+2)
	for v := 0; v < n; v++ {
		for _, p := range preds[v] {
			off[p.from+2]++
		}
	}
	for i := 2; i <= n+1; i++ {
		off[i] += off[i-1]
	}
	kids := make([]topo.NodeID, off[n+1])
	for v := 0; v < n; v++ {
		for _, p := range preds[v] {
			kids[off[p.from+1]] = topo.NodeID(v)
			off[p.from+1]++
		}
	}
	return dagChildren{off: off, kids: kids}
}

func (d dagChildren) of(u topo.NodeID) []topo.NodeID {
	return d.kids[d.off[u]:d.off[u+1]]
}
