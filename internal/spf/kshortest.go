package spf

import (
	"cmp"
	"slices"

	"fibbing.net/fibbing/internal/topo"
)

// KShortest computes up to k loopless shortest paths from src to dst using
// Yen's algorithm. Paths are returned in non-decreasing cost order;
// equal-cost ties are broken deterministically (lexicographic node order).
// Used by path-based TE heuristics that need alternatives beyond the ECMP
// set (e.g. evaluating detour candidates).
func KShortest(g *Graph, src, dst topo.NodeID, k int, skip func(topo.NodeID) bool) [][]topo.NodeID {
	return KShortestSpurLimit(g, src, dst, k, 0, skip)
}

// KShortestSpurLimit is KShortest with Yen's spur scan bounded to the
// first spurLimit nodes of each parent path (0 means unbounded). Bounding
// the scan keeps the search O(spurLimit) Dijkstras per accepted path
// instead of O(path length): deviations near the source are the ones
// load-balancing can exploit, and on long sparse paths (a 64-node ring)
// the unbounded scan spends thousands of Dijkstras proving no further
// path exists. The controller's ksp strategy runs this on every alarm,
// so the bound is what keeps the control loop cheap at scale.
func KShortestSpurLimit(g *Graph, src, dst topo.NodeID, k, spurLimit int, skip func(topo.NodeID) bool) [][]topo.NodeID {
	if k <= 0 || src == dst {
		return nil
	}
	pathCost := func(p []topo.NodeID) int64 {
		var sum int64
		for i := 0; i+1 < len(p); i++ {
			best := Infinity
			for _, e := range g.Out[p[i]] {
				if e.To == p[i+1] && e.Weight < best {
					best = e.Weight
				}
			}
			if best == Infinity {
				return Infinity
			}
			sum += best
		}
		return sum
	}

	first := Compute(g, src, skip)
	fp := first.Paths(dst, 1)
	if len(fp) == 0 {
		return nil
	}
	result := [][]topo.NodeID{fp[0]}
	var candidates []kcand

	for len(result) < k {
		prev := result[len(result)-1]
		// For each spur node of the previous path, search a deviation.
		spurs := len(prev) - 1
		if spurLimit > 0 && spurs > spurLimit {
			spurs = spurLimit
		}
		for i := 0; i < spurs; i++ {
			spur := prev[i]
			root := prev[:i+1]

			// Build a filtered graph: remove edges used by previous
			// results sharing this root, and remove root nodes (except
			// the spur) to keep paths loopless.
			banned := make(map[[2]topo.NodeID]bool)
			for _, r := range result {
				if len(r) > i && equalPrefix(r, root) {
					banned[[2]topo.NodeID{r[i], r[i+1]}] = true
				}
			}
			removed := make(map[topo.NodeID]bool, i)
			for _, n := range root[:len(root)-1] {
				removed[n] = true
			}
			fg := NewGraph(g.NumNodes())
			for u := range g.Out {
				if removed[topo.NodeID(u)] {
					continue
				}
				for _, e := range g.Out[u] {
					if removed[e.To] || banned[[2]topo.NodeID{topo.NodeID(u), e.To}] {
						continue
					}
					fg.AddEdge(topo.NodeID(u), e)
				}
			}
			st := Compute(fg, spur, skip)
			sp := st.Paths(dst, 1)
			if len(sp) == 0 {
				continue
			}
			total := append(append([]topo.NodeID(nil), root[:len(root)-1]...), sp[0]...)
			if containsPath(result, total) || containsCand(candidates, total) {
				continue
			}
			candidates = append(candidates, kcand{path: total, cost: pathCost(total)})
		}
		if len(candidates) == 0 {
			break
		}
		slices.SortFunc(candidates, func(a, b kcand) int {
			if c := cmp.Compare(a.cost, b.cost); c != 0 {
				return c
			}
			if lessPath(a.path, b.path) {
				return -1
			}
			if lessPath(b.path, a.path) {
				return 1
			}
			return 0
		})
		result = append(result, candidates[0].path)
		candidates = candidates[1:]
	}
	return result
}

func equalPrefix(p, root []topo.NodeID) bool {
	if len(p) < len(root) {
		return false
	}
	for i := range root {
		if p[i] != root[i] {
			return false
		}
	}
	return true
}

func containsPath(set [][]topo.NodeID, p []topo.NodeID) bool {
	for _, s := range set {
		if samePath(s, p) {
			return true
		}
	}
	return false
}

// kcand is a Yen candidate path with its cost.
type kcand struct {
	path []topo.NodeID
	cost int64
}

func containsCand(set []kcand, p []topo.NodeID) bool {
	for _, s := range set {
		if samePath(s.path, p) {
			return true
		}
	}
	return false
}

func samePath(a, b []topo.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func lessPath(a, b []topo.NodeID) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}
