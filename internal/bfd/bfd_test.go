package bfd

import (
	"testing"
	"time"

	"fibbing.net/fibbing/internal/event"
	"fibbing.net/fibbing/internal/topo"
)

// TestTransitionTable exercises every (local, remote) cell of the RFC
// 5880 three-state machine.
func TestTransitionTable(t *testing.T) {
	cases := []struct {
		local, remote, want State
	}{
		// Down: a Down peer means it does not hear us yet -> Init; an
		// Init peer already hears us -> Up; an Up peer without a
		// handshake is stale -> stay Down.
		{StateDown, StateDown, StateInit},
		{StateDown, StateInit, StateUp},
		{StateDown, StateUp, StateDown},
		// Init: any evidence the peer hears us -> Up; a Down peer keeps
		// us waiting.
		{StateInit, StateDown, StateInit},
		{StateInit, StateInit, StateUp},
		{StateInit, StateUp, StateUp},
		// Up: only a Down peer (it lost us) tears the session down.
		{StateUp, StateDown, StateDown},
		{StateUp, StateInit, StateUp},
		{StateUp, StateUp, StateUp},
	}
	for _, c := range cases {
		if got := transition(c.local, c.remote); got != c.want {
			t.Errorf("transition(%v, %v) = %v, want %v", c.local, c.remote, got, c.want)
		}
	}
}

// pairTopo builds two routers joined by one symmetric link.
func pairTopo(t *testing.T) *topo.Topology {
	t.Helper()
	tp := topo.New()
	a := tp.AddNode("a")
	b := tp.AddNode("b")
	tp.AddLink(a, b, 1, topo.LinkOpts{Capacity: 1e6, Delay: time.Millisecond})
	return tp
}

// harness wires an engine over a blocked-map we control and records the
// notifications.
type harness struct {
	tp      *topo.Topology
	sched   *event.Scheduler
	eng     *Engine
	blocked map[topo.LinkID]bool
	downs   []time.Duration
	ups     []time.Duration
}

func newHarness(t *testing.T, tp *topo.Topology, cfg Config) *harness {
	t.Helper()
	h := &harness{tp: tp, sched: event.NewScheduler(), blocked: make(map[topo.LinkID]bool)}
	h.eng = New(tp, h.sched, cfg)
	h.eng.Blocked = func(id topo.LinkID) bool { return h.blocked[id] }
	h.eng.OnDown = func(topo.Link) { h.downs = append(h.downs, h.sched.Now()) }
	h.eng.OnUp = func(topo.Link) { h.ups = append(h.ups, h.sched.Now()) }
	h.eng.Start()
	return h
}

// setLink fails or heals both directions of the harness link pair.
func (h *harness) setLink(l topo.Link, up bool) {
	h.blocked[l.ID] = !up
	if l.Reverse != topo.NoLink {
		h.blocked[l.Reverse] = !up
	}
}

func TestSessionEstablishAndDetect(t *testing.T) {
	tp := pairTopo(t)
	h := newHarness(t, tp, Config{})
	sess, ok := h.eng.Session(0)
	if !ok {
		t.Fatalf("no session on link 0")
	}

	// Establishment: both endpoints Up within a few tx intervals; the
	// initial handshake is not announced.
	h.sched.RunUntil(1 * time.Second)
	if !sess.Up() {
		a, b := sess.States()
		t.Fatalf("session not up after 1s (states %v/%v)", a, b)
	}
	if len(h.ups) != 0 || len(h.downs) != 0 {
		t.Fatalf("initial establishment must be silent, got ups=%v downs=%v", h.ups, h.downs)
	}

	// Failure: exactly one OnDown, within the engine's detection time
	// (plus one tx interval of phase slack).
	failAt := 2 * time.Second
	h.sched.At(failAt, func() { h.setLink(tp.Link(0), false) })
	h.sched.RunUntil(5 * time.Second)
	if len(h.downs) != 1 {
		t.Fatalf("want exactly 1 down event, got %d", len(h.downs))
	}
	deadline := failAt + h.eng.DetectTime() + h.eng.cfg.TxInterval
	if h.downs[0] > deadline {
		t.Fatalf("detection at %v, want <= %v", h.downs[0], deadline)
	}
	if sess.Up() {
		t.Fatalf("session still up after failure")
	}

	// Heal: one OnUp (a single flap's penalty stays below SuppressAt).
	h.sched.At(6*time.Second, func() { h.setLink(tp.Link(0), true) })
	h.sched.RunUntil(8 * time.Second)
	if len(h.ups) != 1 {
		t.Fatalf("want exactly 1 up event, got %d", len(h.ups))
	}
	if !sess.Up() {
		t.Fatalf("session not re-established")
	}
}

func TestDetectTimeNegotiation(t *testing.T) {
	tp := pairTopo(t)
	h := newHarness(t, tp, Config{TxInterval: 20 * time.Millisecond, MinRx: 60 * time.Millisecond, DetectMult: 4})
	h.sched.RunUntil(time.Second)
	sess, _ := h.eng.Session(0)
	if !sess.Up() {
		t.Fatalf("session not up")
	}
	// Detection time = max(local MinRx, remote TxInterval) × remote
	// DetectMult = max(60ms, 20ms) × 4 = 240ms.
	if got := sess.a.detectTime(); got != 240*time.Millisecond {
		t.Fatalf("negotiated detect time %v, want 240ms", got)
	}
	if got := h.eng.DetectTime(); got != 240*time.Millisecond {
		t.Fatalf("engine detect time %v, want 240ms", got)
	}
}

// TestFlapDamping drives rapid flaps: every down is announced, but the
// accumulated penalty suppresses the intermediate ups until it decays.
func TestFlapDamping(t *testing.T) {
	tp := pairTopo(t)
	h := newHarness(t, tp, Config{})
	h.sched.RunUntil(1 * time.Second)

	// Three rapid flaps, 700ms apart: penalties stack well past
	// SuppressAt (2000) long before the 8s half-life decays them.
	for i := 0; i < 3; i++ {
		at := 2*time.Second + time.Duration(i)*700*time.Millisecond
		h.sched.At(at, func() { h.setLink(tp.Link(0), false) })
		h.sched.At(at+350*time.Millisecond, func() { h.setLink(tp.Link(0), true) })
	}
	h.sched.RunUntil(4 * time.Second)

	if len(h.downs) != 3 {
		t.Fatalf("downs are never suppressed: want 3, got %d", len(h.downs))
	}
	// The first two re-ups (decayed penalty ≈1000 then ≈1940, both below
	// SuppressAt 2000) are announced; the third (≈2830) is suppressed.
	if len(h.ups) != 2 {
		t.Fatalf("want 2 announced ups mid-flap, got %d", len(h.ups))
	}
	sess, _ := h.eng.Session(0)
	if !sess.Up() || !sess.Suppressed() {
		t.Fatalf("session should be up but damped (up=%v suppressed=%v)", sess.Up(), sess.Suppressed())
	}
	if h.eng.Stats().SuppressedUps == 0 {
		t.Fatalf("stats should count suppressed ups")
	}

	// Decay: once the penalty falls below ReuseBelow the withheld up is
	// announced. Penalty peaked ≈ 2830 ⇒ below 750 within ~2 half-lives
	// (16s); allow slack.
	h.sched.RunUntil(40 * time.Second)
	if len(h.ups) != 3 {
		t.Fatalf("damped up not released after decay: ups=%d", len(h.ups))
	}
	if sess.Suppressed() {
		t.Fatalf("session still suppressed after decay")
	}
}

// TestDampedUpThenDown: a down during suppression must not be announced
// again (the consumer already believes the link is down), and the
// pending up must be dropped.
func TestDampedUpThenDown(t *testing.T) {
	tp := pairTopo(t)
	h := newHarness(t, tp, Config{})
	h.sched.RunUntil(1 * time.Second)

	for i := 0; i < 3; i++ {
		at := 2*time.Second + time.Duration(i)*700*time.Millisecond
		h.sched.At(at, func() { h.setLink(tp.Link(0), false) })
		h.sched.At(at+350*time.Millisecond, func() { h.setLink(tp.Link(0), true) })
	}
	h.sched.RunUntil(4 * time.Second)
	sess, _ := h.eng.Session(0)
	if !sess.Suppressed() {
		t.Fatalf("precondition: session should be damped")
	}
	downsBefore := len(h.downs)

	// Fail for good while the up is withheld.
	h.sched.At(4500*time.Millisecond, func() { h.setLink(tp.Link(0), false) })
	h.sched.RunUntil(60 * time.Second)
	if len(h.downs) != downsBefore {
		t.Fatalf("down during suppression must stay silent: %d -> %d", downsBefore, len(h.downs))
	}
	if len(h.ups) != 2 {
		t.Fatalf("withheld up must be dropped, got ups=%d", len(h.ups))
	}
	if sess.Up() || sess.Suppressed() {
		t.Fatalf("session should be plainly down (up=%v suppressed=%v)", sess.Up(), sess.Suppressed())
	}
}

// TestDeterminism: two engines with the same seed produce identical
// packet counts and event timings.
func TestDeterminism(t *testing.T) {
	run := func() (Stats, []time.Duration) {
		tp := pairTopo(t)
		h := newHarness(t, tp, Config{Seed: 7})
		h.sched.At(2*time.Second, func() { h.setLink(tp.Link(0), false) })
		h.sched.At(3*time.Second, func() { h.setLink(tp.Link(0), true) })
		h.sched.RunUntil(5 * time.Second)
		return h.eng.Stats(), append(h.downs, h.ups...)
	}
	s1, ev1 := run()
	s2, ev2 := run()
	if s1 != s2 {
		t.Fatalf("stats diverged: %+v vs %+v", s1, s2)
	}
	if len(ev1) != len(ev2) {
		t.Fatalf("event counts diverged: %d vs %d", len(ev1), len(ev2))
	}
	for i := range ev1 {
		if ev1[i] != ev2[i] {
			t.Fatalf("event %d at %v vs %v", i, ev1[i], ev2[i])
		}
	}
}

// TestHostLinksSkipped: sessions exist only on router-router links.
func TestHostLinksSkipped(t *testing.T) {
	tp := topo.New()
	a := tp.AddNode("a")
	b := tp.AddNode("b")
	hN := tp.AddHost("h")
	tp.AddLink(a, b, 1, topo.LinkOpts{Capacity: 1e6})
	tp.AddLink(a, hN, 1, topo.LinkOpts{})
	h := newHarness(t, tp, Config{})
	if h.eng.Stats().Sessions != 1 {
		t.Fatalf("want 1 session (router-router only), got %d", h.eng.Stats().Sessions)
	}
	if _, ok := h.eng.Session(2); ok {
		t.Fatalf("host link must have no session")
	}
	// Lookup via either half of the router pair works.
	if _, ok := h.eng.Session(1); !ok {
		t.Fatalf("reverse-half lookup failed")
	}
}
