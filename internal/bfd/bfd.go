// Package bfd implements BFD-style link liveness (RFC 5880's three-state
// machine, asynchronous mode) for the simulated network: one session per
// symmetric router-router link, two endpoint halves exchanging control
// packets over the link at millisecond intervals, with tx-interval /
// detect-multiplier negotiation, jittered hello timers on the virtual
// scheduler, and flap damping on the session's aggregated liveness.
//
// The engine is the fast half of the failover subsystem: where the SNMP
// poller notices a dead link only once EWMA'd counters stop moving (poll
// timescale, seconds), a BFD session misses DetectMult consecutive hellos
// and reports the failure in a few tx intervals (milliseconds). Detected
// transitions surface through the OnDown/OnUp callbacks, which
// controller.NewSim wires straight into the controller's typed event
// pipeline — bypassing the poll path entirely.
//
// Everything runs on the event.Scheduler and draws randomness from
// per-endpoint seeded PRNGs, so runs are deterministic and byte-identical
// at any worker-pool width (BFD events are plain sequential events).
package bfd

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"fibbing.net/fibbing/internal/event"
	"fibbing.net/fibbing/internal/topo"
)

// State is a session endpoint's RFC 5880 state.
type State uint8

const (
	// StateDown: no recent hello from the peer (or never any).
	StateDown State = iota
	// StateInit: we hear the peer, but it does not yet hear us.
	StateInit
	// StateUp: two-way liveness established.
	StateUp
)

// String names the state for logs.
func (s State) String() string {
	switch s {
	case StateDown:
		return "down"
	case StateInit:
		return "init"
	case StateUp:
		return "up"
	}
	return "unknown"
}

// ControlPacket is one BFD control message: the sender's state plus its
// timer parameters, from which the receiver negotiates its detection
// time (max(local MinRx, remote TxInterval) × remote DetectMult).
type ControlPacket struct {
	State      State
	TxInterval time.Duration // sender's desired min transmit interval
	MinRx      time.Duration // sender's required min receive interval
	DetectMult int
}

// Config parameterises an Engine.
type Config struct {
	// TxInterval is the desired hello transmit interval (default 50ms).
	// Actual transmissions are jittered to 75–100% of it (RFC 5880
	// §6.8.7), so sessions never phase-lock.
	TxInterval time.Duration
	// MinRx is the slowest hello rate this end accepts (default =
	// TxInterval). The detection time is max(MinRx, remote TxInterval) ×
	// remote DetectMult.
	MinRx time.Duration
	// DetectMult is how many hello intervals may be missed before the
	// session is declared down (default 3).
	DetectMult int
	// Seed drives the per-endpoint jitter PRNGs.
	Seed int64

	// Flap damping: every session down adds FlapPenalty to a decaying
	// penalty (half-life HalfLife); while the penalty is at or above
	// SuppressAt, up-notifications are withheld until it decays below
	// ReuseBelow. Down-notifications are never suppressed — a consumer
	// must always learn the link is gone. Defaults: 1000 / 2000 / 750 /
	// 8s, i.e. a single failure never suppresses, rapid repeated flaps
	// do.
	FlapPenalty float64
	SuppressAt  float64
	ReuseBelow  float64
	HalfLife    time.Duration
}

func (c Config) withDefaults() Config {
	if c.TxInterval <= 0 {
		c.TxInterval = 50 * time.Millisecond
	}
	if c.MinRx <= 0 {
		c.MinRx = c.TxInterval
	}
	if c.DetectMult <= 0 {
		c.DetectMult = 3
	}
	if c.FlapPenalty <= 0 {
		c.FlapPenalty = 1000
	}
	if c.SuppressAt <= 0 {
		c.SuppressAt = 2000
	}
	if c.ReuseBelow <= 0 {
		c.ReuseBelow = 750
	}
	if c.HalfLife <= 0 {
		c.HalfLife = 8 * time.Second
	}
	return c
}

// Stats counts what the engine has seen and reported.
type Stats struct {
	Sessions      int
	PacketsTx     uint64
	PacketsRx     uint64
	DownEvents    uint64 // OnDown notifications emitted
	UpEvents      uint64 // OnUp notifications emitted
	SuppressedUps uint64 // up transitions withheld by flap damping
}

// Engine runs one liveness session per symmetric router-router link of a
// topology. Construct with New, wire the callbacks, then Start.
type Engine struct {
	topo  *topo.Topology
	sched *event.Scheduler
	cfg   Config

	// Blocked reports whether a directed link currently drops packets —
	// the transport ground truth, typically ospf.(*Domain).LinkBlocked.
	// nil means "never blocked".
	Blocked func(topo.LinkID) bool
	// OnDown fires when a session that had been announced up loses
	// liveness; the link is the session's canonical (lower-ID) half.
	// Never suppressed by damping.
	OnDown func(topo.Link)
	// OnUp fires when liveness returns (subject to flap damping). The
	// first-ever establishment of a session is not announced: the link
	// was never reported down.
	OnUp func(topo.Link)

	sessions map[topo.LinkID]*Session // keyed by the pair's lower LinkID
	stats    Stats
	started  bool
}

// New builds an engine over the topology's router-router links.
func New(t *topo.Topology, sched *event.Scheduler, cfg Config) *Engine {
	return &Engine{
		topo:     t,
		sched:    sched,
		cfg:      cfg.withDefaults(),
		sessions: make(map[topo.LinkID]*Session),
	}
}

// Start creates the sessions and begins transmitting hellos. Idempotent.
func (e *Engine) Start() {
	if e.started {
		return
	}
	e.started = true
	for _, l := range e.topo.Links() {
		if l.Reverse == topo.NoLink || l.Reverse < l.ID {
			continue // one session per pair, keyed by the lower half
		}
		if e.topo.Node(l.From).Host || e.topo.Node(l.To).Host {
			continue // hosts run no IGP, so no liveness sessions either
		}
		s := &Session{eng: e, link: l}
		s.a = endpoint{sess: s, out: l.ID}
		s.b = endpoint{sess: s, out: l.Reverse}
		s.a.peer, s.b.peer = &s.b, &s.a
		seed := e.cfg.Seed*1_000_003 + int64(l.ID)
		s.a.rng = rand.New(rand.NewSource(seed*2 + 1))
		s.b.rng = rand.New(rand.NewSource(seed*2 + 2))
		e.sessions[l.ID] = s
		e.stats.Sessions++
		s.a.armTx()
		s.b.armTx()
	}
}

// Stats returns the engine's counters.
func (e *Engine) Stats() Stats { return e.stats }

// Session returns the session covering the given directed link (either
// half of the pair), if one exists.
func (e *Engine) Session(id topo.LinkID) (*Session, bool) {
	if id < 0 || int(id) >= e.topo.NumLinks() {
		return nil, false
	}
	if s, ok := e.sessions[id]; ok {
		return s, true
	}
	if r := e.topo.Link(id).Reverse; r != topo.NoLink {
		s, ok := e.sessions[r]
		return s, ok
	}
	return nil, false
}

// Session is the liveness session over one symmetric link: two endpoint
// halves plus the aggregated, damped link verdict.
type Session struct {
	eng  *Engine
	link topo.Link // canonical (lower-ID) half
	a, b endpoint  // a transmits on link.ID, b on link.Reverse

	up        bool // both endpoints Up
	everUp    bool // handshake completed at least once
	announced bool // what the consumer believes (true after first up)

	penalty    float64       // decaying flap penalty
	penaltyAt  time.Duration // instant penalty was last folded
	suppressed bool          // an up-announcement is pending decay
}

// Link returns the session's canonical link.
func (s *Session) Link() topo.Link { return s.link }

// Up reports the aggregated (undamped) liveness verdict.
func (s *Session) Up() bool { return s.up }

// States returns both endpoints' states (the link.From side first).
func (s *Session) States() (State, State) { return s.a.state, s.b.state }

// Suppressed reports whether flap damping is currently withholding an
// up-announcement.
func (s *Session) Suppressed() bool { return s.suppressed }

// endpoint is one half of a session: it transmits hellos on its directed
// link and runs the RFC 5880 state machine on what it hears back.
type endpoint struct {
	sess *Session
	out  topo.LinkID // directed link toward the peer
	peer *endpoint
	rng  *rand.Rand

	state       State
	remote      ControlPacket // last packet heard from the peer
	haveRemote  bool
	detect      event.Handle
	detectArmed bool
}

// transition applies RFC 5880 §6.8.6's three-state machine to a received
// remote state. Detection timeouts are handled separately (detectExpired)
// and always force StateDown.
func transition(local, remote State) State {
	switch local {
	case StateDown:
		switch remote {
		case StateDown:
			return StateInit // the peer hears nothing yet; we hear it
		case StateInit:
			return StateUp // the peer hears us; two-way confirmed
		default:
			return StateDown // remote Up without a handshake: ignore
		}
	case StateInit:
		if remote == StateInit || remote == StateUp {
			return StateUp
		}
		return StateInit
	default: // StateUp
		if remote == StateDown {
			return StateDown // the peer lost us; drop immediately
		}
		return StateUp
	}
}

// armTx schedules the next hello at 75–100% of the tx interval (RFC 5880
// §6.8.7 jitter), drawn from this endpoint's deterministic PRNG.
func (ep *endpoint) armTx() {
	iv := ep.sess.eng.cfg.TxInterval
	d := time.Duration((0.75 + 0.25*ep.rng.Float64()) * float64(iv))
	ep.sess.eng.sched.After(d, ep.txTick)
}

func (ep *endpoint) txTick() {
	ep.transmit()
	ep.armTx()
}

// transmit sends one control packet toward the peer. A blocked link eats
// the packet — that is exactly how the peer's detection timer learns of
// the failure.
func (ep *endpoint) transmit() {
	eng := ep.sess.eng
	eng.stats.PacketsTx++
	if eng.Blocked != nil && eng.Blocked(ep.out) {
		return
	}
	pkt := ControlPacket{
		State:      ep.state,
		TxInterval: eng.cfg.TxInterval,
		MinRx:      eng.cfg.MinRx,
		DetectMult: eng.cfg.DetectMult,
	}
	delay := eng.topo.Link(ep.out).Delay
	eng.sched.After(delay, func() {
		if eng.Blocked != nil && eng.Blocked(ep.out) {
			return // the link failed while the packet was in flight
		}
		ep.peer.receive(pkt)
	})
}

// receive runs the state machine on one heard packet and re-arms the
// negotiated detection timer.
func (ep *endpoint) receive(pkt ControlPacket) {
	ep.sess.eng.stats.PacketsRx++
	ep.remote, ep.haveRemote = pkt, true
	ep.setState(transition(ep.state, pkt.State))
	ep.armDetect()
}

// detectTime is the negotiated detection interval: the slower of what we
// demand (MinRx) and what the peer offers (its TxInterval), times the
// peer's detect multiplier.
func (ep *endpoint) detectTime() time.Duration {
	eng := ep.sess.eng
	iv := ep.remote.TxInterval
	if eng.cfg.MinRx > iv {
		iv = eng.cfg.MinRx
	}
	mult := ep.remote.DetectMult
	if mult <= 0 {
		mult = 1
	}
	return time.Duration(mult) * iv
}

func (ep *endpoint) armDetect() {
	eng := ep.sess.eng
	if ep.detectArmed {
		eng.sched.Cancel(ep.detect)
	}
	ep.detect = eng.sched.After(ep.detectTime(), ep.detectExpired)
	ep.detectArmed = true
}

func (ep *endpoint) detectExpired() {
	ep.detectArmed = false
	ep.haveRemote = false
	ep.setState(StateDown)
}

func (ep *endpoint) setState(next State) {
	if next == ep.state {
		return
	}
	ep.state = next
	ep.sess.refresh()
}

// refresh recomputes the session's aggregated liveness and emits the
// engine callbacks on transitions, applying flap damping to
// up-announcements.
func (s *Session) refresh() {
	up := s.a.state == StateUp && s.b.state == StateUp
	if up == s.up {
		return
	}
	s.up = up
	now := s.eng.sched.Now()
	if !up {
		s.suppressed = false // a pending damped up is moot now
		if !s.everUp {
			return
		}
		s.addPenalty(now)
		if s.announced {
			s.announced = false
			s.eng.stats.DownEvents++
			if s.eng.OnDown != nil {
				s.eng.OnDown(s.link)
			}
		}
		return
	}
	if !s.everUp {
		// Initial establishment: the consumer never heard the link was
		// down, so there is nothing to announce.
		s.everUp, s.announced = true, true
		return
	}
	if s.decayedPenalty(now) >= s.eng.cfg.SuppressAt {
		s.suppressed = true
		s.eng.stats.SuppressedUps++
		s.scheduleReuse(now)
		return
	}
	s.announceUp()
}

func (s *Session) announceUp() {
	s.suppressed = false
	s.announced = true
	s.eng.stats.UpEvents++
	if s.eng.OnUp != nil {
		s.eng.OnUp(s.link)
	}
}

// scheduleReuse re-examines a damped session once the penalty will have
// decayed below the reuse threshold.
func (s *Session) scheduleReuse(now time.Duration) {
	p := s.decayedPenalty(now)
	wait := time.Millisecond
	if p > s.eng.cfg.ReuseBelow {
		// Solve p · 2^(-t/halfLife) = ReuseBelow for t.
		wait = time.Duration(math.Log2(p/s.eng.cfg.ReuseBelow) * float64(s.eng.cfg.HalfLife))
		if wait < time.Millisecond {
			wait = time.Millisecond
		}
	}
	s.eng.sched.After(wait, func() {
		if !s.suppressed || !s.up {
			return // went down again (down was announced) or already reused
		}
		if n := s.eng.sched.Now(); s.decayedPenalty(n) >= s.eng.cfg.ReuseBelow {
			s.scheduleReuse(n) // numeric slack: not quite below yet
			return
		}
		s.announceUp()
	})
}

func (s *Session) decayedPenalty(now time.Duration) float64 {
	if s.penalty == 0 {
		return 0
	}
	dt := now - s.penaltyAt
	return s.penalty * math.Exp2(-float64(dt)/float64(s.eng.cfg.HalfLife))
}

func (s *Session) addPenalty(now time.Duration) {
	s.penalty = s.decayedPenalty(now) + s.eng.cfg.FlapPenalty
	s.penaltyAt = now
}

// DetectTime reports the engine's nominal detection latency: how long a
// failed link stays unnoticed in the worst case (with symmetric configs,
// TxInterval × DetectMult).
func (e *Engine) DetectTime() time.Duration {
	iv := e.cfg.TxInterval
	if e.cfg.MinRx > iv {
		iv = e.cfg.MinRx
	}
	return time.Duration(e.cfg.DetectMult) * iv
}

// String renders a compact engine summary for logs.
func (e *Engine) String() string {
	return fmt.Sprintf("bfd: %d sessions, detect %v", e.stats.Sessions, e.DetectTime())
}
