package lpm

import (
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
)

func mustPfx(s string) netip.Prefix { return netip.MustParsePrefix(s) }
func mustAddr(s string) netip.Addr  { return netip.MustParseAddr(s) }

func TestInsertLookupBasic(t *testing.T) {
	tb := New[string]()
	tb.Insert(mustPfx("10.0.0.0/8"), "eight")
	tb.Insert(mustPfx("10.66.0.0/16"), "sixteen")
	tb.Insert(mustPfx("0.0.0.0/0"), "default")

	cases := []struct {
		addr string
		want string
	}{
		{"10.66.1.2", "sixteen"},
		{"10.1.1.1", "eight"},
		{"192.168.1.1", "default"},
	}
	for _, c := range cases {
		v, _, ok := tb.Lookup(mustAddr(c.addr))
		if !ok || v != c.want {
			t.Errorf("Lookup(%s) = %q, %v; want %q", c.addr, v, ok, c.want)
		}
	}
}

func TestLookupReturnsMatchedPrefix(t *testing.T) {
	tb := New[int]()
	tb.Insert(mustPfx("10.66.0.0/16"), 1)
	_, p, ok := tb.Lookup(mustAddr("10.66.3.4"))
	if !ok || p != mustPfx("10.66.0.0/16") {
		t.Fatalf("matched prefix = %v, %v", p, ok)
	}
}

func TestNoMatch(t *testing.T) {
	tb := New[int]()
	tb.Insert(mustPfx("10.0.0.0/8"), 1)
	if _, _, ok := tb.Lookup(mustAddr("11.0.0.1")); ok {
		t.Fatalf("should not match")
	}
	if _, _, ok := tb.Lookup(netip.Addr{}); ok {
		t.Fatalf("invalid addr should not match")
	}
}

func TestExactGetAndRemove(t *testing.T) {
	tb := New[int]()
	tb.Insert(mustPfx("10.0.0.0/8"), 8)
	tb.Insert(mustPfx("10.0.0.0/16"), 16)
	if v, ok := tb.Get(mustPfx("10.0.0.0/8")); !ok || v != 8 {
		t.Fatalf("Get /8 = %v, %v", v, ok)
	}
	if _, ok := tb.Get(mustPfx("10.0.0.0/12")); ok {
		t.Fatalf("Get /12 should miss")
	}
	if !tb.Remove(mustPfx("10.0.0.0/8")) {
		t.Fatalf("Remove /8 failed")
	}
	if tb.Remove(mustPfx("10.0.0.0/8")) {
		t.Fatalf("double Remove succeeded")
	}
	if tb.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tb.Len())
	}
	// /16 must still match even though its parent /8 is gone.
	if v, _, ok := tb.Lookup(mustAddr("10.0.1.1")); !ok || v != 16 {
		t.Fatalf("Lookup after remove = %v, %v", v, ok)
	}
	// An address only covered by the removed /8 must now miss.
	if _, _, ok := tb.Lookup(mustAddr("10.200.0.1")); ok {
		t.Fatalf("removed prefix still matches")
	}
}

func TestInsertReplaces(t *testing.T) {
	tb := New[int]()
	tb.Insert(mustPfx("10.0.0.0/8"), 1)
	tb.Insert(mustPfx("10.0.0.0/8"), 2)
	if tb.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tb.Len())
	}
	if v, _ := tb.Get(mustPfx("10.0.0.0/8")); v != 2 {
		t.Fatalf("value not replaced: %v", v)
	}
}

func TestHostRoute(t *testing.T) {
	tb := New[int]()
	tb.Insert(mustPfx("10.66.0.5/32"), 32)
	tb.Insert(mustPfx("10.66.0.0/16"), 16)
	if v, _, _ := tb.Lookup(mustAddr("10.66.0.5")); v != 32 {
		t.Fatalf("host route not preferred: %v", v)
	}
	if v, _, _ := tb.Lookup(mustAddr("10.66.0.6")); v != 16 {
		t.Fatalf("host route over-matches: %v", v)
	}
}

func TestIPv6Separation(t *testing.T) {
	tb := New[string]()
	tb.Insert(mustPfx("::/0"), "v6default")
	tb.Insert(mustPfx("0.0.0.0/0"), "v4default")
	tb.Insert(mustPfx("2001:db8::/32"), "doc")
	if v, _, _ := tb.Lookup(mustAddr("2001:db8::1")); v != "doc" {
		t.Fatalf("v6 lookup = %v", v)
	}
	if v, _, _ := tb.Lookup(mustAddr("1.2.3.4")); v != "v4default" {
		t.Fatalf("v4 lookup crossed into v6: %v", v)
	}
	if v, _, _ := tb.Lookup(mustAddr("fe80::1")); v != "v6default" {
		t.Fatalf("v6 default: %v", v)
	}
}

func TestWalkOrderAndEarlyStop(t *testing.T) {
	tb := New[int]()
	ps := []string{"10.0.0.0/8", "9.0.0.0/8", "10.0.0.0/16", "0.0.0.0/0"}
	for i, s := range ps {
		tb.Insert(mustPfx(s), i)
	}
	var got []string
	tb.Walk(func(p netip.Prefix, _ int) bool {
		got = append(got, p.String())
		return true
	})
	want := []string{"0.0.0.0/0", "9.0.0.0/8", "10.0.0.0/8", "10.0.0.0/16"}
	if len(got) != len(want) {
		t.Fatalf("walk = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("walk order = %v, want %v", got, want)
		}
	}
	count := 0
	tb.Walk(func(netip.Prefix, int) bool {
		count++
		return false
	})
	if count != 1 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestUnmaskedPrefixNormalised(t *testing.T) {
	tb := New[int]()
	tb.Insert(netip.PrefixFrom(mustAddr("10.66.99.99"), 16), 1)
	if _, ok := tb.Get(mustPfx("10.66.0.0/16")); !ok {
		t.Fatalf("unmasked insert not normalised")
	}
}

// Property: Lookup agrees with a linear scan over installed prefixes.
func TestLookupMatchesLinearScan(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tb := New[int]()
		var pfxs []netip.Prefix
		for i := 0; i < 60; i++ {
			a := netip.AddrFrom4([4]byte{byte(rng.Intn(16)), byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))})
			bits := rng.Intn(33)
			p := netip.PrefixFrom(a, bits).Masked()
			tb.Insert(p, i)
			pfxs = append(pfxs, p)
		}
		for i := 0; i < 200; i++ {
			addr := netip.AddrFrom4([4]byte{byte(rng.Intn(16)), byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))})
			_, gotP, gotOK := tb.Lookup(addr)
			bestBits := -1
			var bestP netip.Prefix
			for _, p := range pfxs {
				if p.Contains(addr) && p.Bits() > bestBits {
					bestBits, bestP = p.Bits(), p
				}
			}
			if gotOK != (bestBits >= 0) {
				return false
			}
			if gotOK && gotP != bestP {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkLookup(b *testing.B) {
	tb := New[int]()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		a := netip.AddrFrom4([4]byte{byte(rng.Intn(256)), byte(rng.Intn(256)), 0, 0})
		tb.Insert(netip.PrefixFrom(a, 8+rng.Intn(17)).Masked(), i)
	}
	addr := mustAddr("10.66.3.4")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tb.Lookup(addr)
	}
}
