// Package lpm implements a longest-prefix-match binary trie over IP
// prefixes, the lookup structure backing every router FIB in the emulated
// network. It supports IPv4 and IPv6 prefixes (in separate tries keyed by
// address family), insertion, exact removal, longest-match lookup, and
// ordered walking.
package lpm

import (
	"cmp"
	"fmt"
	"net/netip"
	"slices"
)

// Table is a longest-prefix-match table mapping prefixes to values.
// The zero value is not usable; call New.
type Table[V any] struct {
	v4, v6 *node[V]
	size   int
}

type node[V any] struct {
	child [2]*node[V]
	val   V
	set   bool
}

// New returns an empty table.
func New[V any]() *Table[V] {
	return &Table[V]{v4: &node[V]{}, v6: &node[V]{}}
}

// Len returns the number of installed prefixes.
func (t *Table[V]) Len() int { return t.size }

func (t *Table[V]) root(is4 bool) *node[V] {
	if is4 {
		return t.v4
	}
	return t.v6
}

// bitAt returns bit i (0 = most significant) of the address.
func bitAt(a netip.Addr, i int) int {
	s := a.AsSlice()
	return int(s[i/8]>>(7-uint(i%8))) & 1
}

// Insert adds or replaces the value for an exact prefix.
func (t *Table[V]) Insert(p netip.Prefix, v V) {
	if !p.IsValid() {
		panic(fmt.Sprintf("lpm: invalid prefix %v", p))
	}
	p = p.Masked()
	n := t.root(p.Addr().Is4())
	for i := 0; i < p.Bits(); i++ {
		b := bitAt(p.Addr(), i)
		if n.child[b] == nil {
			n.child[b] = &node[V]{}
		}
		n = n.child[b]
	}
	if !n.set {
		t.size++
	}
	n.val, n.set = v, true
}

// Remove deletes an exact prefix, reporting whether it was present.
// Trie nodes are not compacted: tables in this system are small and
// compaction would complicate concurrent walking.
func (t *Table[V]) Remove(p netip.Prefix) bool {
	if !p.IsValid() {
		return false
	}
	p = p.Masked()
	n := t.root(p.Addr().Is4())
	for i := 0; i < p.Bits(); i++ {
		n = n.child[bitAt(p.Addr(), i)]
		if n == nil {
			return false
		}
	}
	if !n.set {
		return false
	}
	var zero V
	n.val, n.set = zero, false
	t.size--
	return true
}

// Get returns the value stored for the exact prefix.
func (t *Table[V]) Get(p netip.Prefix) (V, bool) {
	var zero V
	if !p.IsValid() {
		return zero, false
	}
	p = p.Masked()
	n := t.root(p.Addr().Is4())
	for i := 0; i < p.Bits(); i++ {
		n = n.child[bitAt(p.Addr(), i)]
		if n == nil {
			return zero, false
		}
	}
	if !n.set {
		return zero, false
	}
	return n.val, true
}

// Lookup performs longest-prefix-match for an address, returning the value
// of the most specific covering prefix.
func (t *Table[V]) Lookup(a netip.Addr) (V, netip.Prefix, bool) {
	var (
		zero  V
		best  V
		bestP netip.Prefix
		found bool
	)
	if !a.IsValid() {
		return zero, netip.Prefix{}, false
	}
	n := t.root(a.Is4())
	maxBits := 128
	if a.Is4() {
		maxBits = 32
	}
	for i := 0; ; i++ {
		if n.set {
			best = n.val
			bestP = netip.PrefixFrom(a, i).Masked()
			found = true
		}
		if i == maxBits {
			break
		}
		n = n.child[bitAt(a, i)]
		if n == nil {
			break
		}
	}
	if !found {
		return zero, netip.Prefix{}, false
	}
	return best, bestP, true
}

// Walk visits every installed prefix in sorted order (shorter prefixes of
// the same address first). The walk stops early if fn returns false.
func (t *Table[V]) Walk(fn func(p netip.Prefix, v V) bool) {
	type entry struct {
		p netip.Prefix
		v V
	}
	var all []entry
	var collect func(n *node[V], addr [16]byte, bits int, is4 bool)
	collect = func(n *node[V], addr [16]byte, bits int, is4 bool) {
		if n == nil {
			return
		}
		if n.set {
			var a netip.Addr
			if is4 {
				var b4 [4]byte
				copy(b4[:], addr[:4])
				a = netip.AddrFrom4(b4)
			} else {
				a = netip.AddrFrom16(addr)
			}
			all = append(all, entry{p: netip.PrefixFrom(a, bits), v: n.val})
		}
		maxBits := 128
		if is4 {
			maxBits = 32
		}
		if bits == maxBits {
			return
		}
		collect(n.child[0], addr, bits+1, is4)
		addr[bits/8] |= 1 << (7 - uint(bits%8))
		collect(n.child[1], addr, bits+1, is4)
	}
	collect(t.v4, [16]byte{}, 0, true)
	collect(t.v6, [16]byte{}, 0, false)
	slices.SortFunc(all, func(x, y entry) int {
		ax, ay := x.p.Addr(), y.p.Addr()
		if ax != ay {
			return ax.Compare(ay)
		}
		return cmp.Compare(x.p.Bits(), y.p.Bits())
	})
	for _, e := range all {
		if !fn(e.p, e.v) {
			return
		}
	}
}

// Prefixes returns all installed prefixes in sorted order.
func (t *Table[V]) Prefixes() []netip.Prefix {
	out := make([]netip.Prefix, 0, t.size)
	t.Walk(func(p netip.Prefix, _ V) bool {
		out = append(out, p)
		return true
	})
	return out
}
