package netsim

// This file is the aggregate plane: the path-class data structures flows
// collapse into, the FIB trace that classifies them, the link<->aggregate
// incidence index, and the incremental weighted max-min solver scoped to
// the dirty bottleneck-dependency component.

import (
	"cmp"
	"math"
	"net/netip"
	"slices"

	"fibbing.net/fibbing/internal/fib"
	"fibbing.net/fibbing/internal/topo"
)

// uncappedRate is the sentinel rate of a greedy flow crossing no
// capacitated link (clamped "infinite" bandwidth: 1 Tbit/s).
const uncappedRate = 1e12

// shareSlack is the relative tolerance for declaring a link a bottleneck
// during progressive filling; shareEps turns it into the slack for a
// given fair share. Relative, because shares range from bit/s to
// 100 Gbit/s and the float noise that the slack absorbs is proportional
// to the share's magnitude. The solver and the VerifyMaxMin oracle must
// use the same slack, or they would freeze links in different rounds.
const shareSlack = 1e-9

func shareEps(share float64) float64 {
	if share > 1 {
		return shareSlack * share
	}
	return shareSlack
}

// trace is an aggregate's forwarding identity: the node path, the FIB
// prefix matched at every hop (the "FIB key class" — two flows with equal
// matches react identically to any route delta at aggregate granularity),
// and the link path split into all links (for counters) and capacitated
// links (for fair sharing). A blocked trace has nil slices.
type trace struct {
	blocked  bool
	nodes    []topo.NodeID
	matched  []netip.Prefix
	links    []topo.LinkID
	capLinks []topo.LinkID
}

// Aggregate is one path-class of identical flows: same ingress, same rate
// cap, same path, same per-hop FIB matches. All members are allocated the
// same per-flow rate by max-min fairness, so the aggregate carries one
// rate and one weight (the member count) instead of per-flow state.
type Aggregate struct {
	id      int64
	sig     uint64
	ingress topo.NodeID
	maxRate float64
	trace

	weight  int
	members map[FlowID]*Flow

	rate        float64 // per-member allocated rate, bit/s
	perFlowBits float64 // integrated per-member delivered volume, bits
	solveIdx    int     // scratch index of the current solve
}

// Weight returns the member count.
func (a *Aggregate) Weight() int { return a.weight }

// Rate returns the per-member allocated rate in bit/s.
func (a *Aggregate) Rate() float64 { return a.rate }

// uses reports whether the aggregate's path crosses the link.
func (a *Aggregate) uses(link topo.LinkID) bool {
	if link == topo.NoLink {
		return false
	}
	return slices.Contains(a.links, link)
}

// touchedBy reports whether a diff at the given router can have re-pathed
// this aggregate: the router is on the path and some changed prefix is
// nested with the prefix the aggregate matched there. Two prefixes that
// both cover a member's destination are necessarily nested, so this is a
// superset of a per-flow "does a change cover the destination at least
// as specifically as its current match" test — conservative
// invalidation, exact re-trace.
func (a *Aggregate) touchedBy(node topo.NodeID, d *fib.Diff) bool {
	for i, v := range a.nodes {
		if v != node {
			continue
		}
		for _, c := range d.Changes {
			if c.Prefix.Overlaps(a.matched[i]) {
				return true
			}
		}
		return false
	}
	return false
}

// sameTrace reports whether a freshly computed trace matches the
// aggregate's identity (ingress and cap are the member's own and need no
// comparison).
func (a *Aggregate) sameTrace(tr trace) bool {
	if a.blocked != tr.blocked || len(a.nodes) != len(tr.nodes) {
		return false
	}
	for i := range a.nodes {
		if a.nodes[i] != tr.nodes[i] || a.matched[i] != tr.matched[i] {
			return false
		}
	}
	return true
}

// sig hashes the aggregate class key (FNV-1a over the identity words,
// finished with an avalanche mixer). Collisions chain in Network.aggs and
// are resolved by full comparison.
func (tr *trace) sigOf(ingress topo.NodeID, maxRate float64) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	word := func(v uint64) {
		h ^= v
		h *= prime
	}
	word(uint64(ingress))
	word(math.Float64bits(maxRate))
	if tr.blocked {
		word(1)
	}
	for i, v := range tr.nodes {
		word(uint64(v))
		a16 := tr.matched[i].Addr().As16()
		for o := 0; o < 16; o += 8 {
			var w uint64
			for b := 0; b < 8; b++ {
				w = w<<8 | uint64(a16[o+b])
			}
			word(w)
		}
		word(uint64(tr.matched[i].Bits()))
	}
	// splitmix64 finalizer: avalanche so bucket chains stay short.
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}

// linkState is one capacitated link's side of the incidence index.
type linkState struct {
	capacity float64
	aggs     map[int64]*Aggregate
}

func (n *Network) linkFor(lid topo.LinkID) *linkState {
	ls := n.links[lid]
	if ls == nil {
		ls = &linkState{capacity: n.topo.Link(lid).Capacity, aggs: make(map[int64]*Aggregate)}
		n.links[lid] = ls
	}
	return ls
}

// traceFlow classifies one flow against the current tables: the node
// path, the matched prefix per hop, and the link path. The walk itself is
// fib.Plane.WalkTrace — the data plane only adds the link resolution and
// its own link-failure state. Any failure (no table, no route, loop,
// failed link) yields the canonical blocked trace. Callers hold n.mu.
func (n *Network) traceFlow(f *Flow) trace {
	var tr trace
	plane := fib.Plane{Tables: n.tables}
	linkOK := true
	err := plane.WalkTrace(f.Ingress, f.Key, func(cur topo.NodeID, route fib.Route, nh fib.NextHop) bool {
		tr.nodes = append(tr.nodes, cur)
		tr.matched = append(tr.matched, route.Prefix)
		if route.Local {
			return true
		}
		l, found := n.topo.FindLink(cur, nh.Node)
		if !found || n.linkDown[l.ID] {
			linkOK = false
			return false
		}
		tr.links = append(tr.links, l.ID)
		if l.Capacity > 0 {
			tr.capLinks = append(tr.capLinks, l.ID)
		}
		return true
	})
	if err != nil || !linkOK {
		return trace{blocked: true}
	}
	return tr
}

// rebucket joins a flow to the aggregate matching the trace, creating it
// if absent. Callers hold n.mu.
func (n *Network) rebucket(f *Flow, tr trace) {
	sig := tr.sigOf(f.Ingress, f.MaxRate)
	for _, a := range n.aggs[sig] {
		if a.ingress == f.Ingress && a.maxRate == f.MaxRate && a.sameTrace(tr) {
			n.join(f, a)
			return
		}
	}
	a := &Aggregate{
		id:      n.nextAgg,
		sig:     sig,
		ingress: f.Ingress,
		maxRate: f.MaxRate,
		trace:   tr,
		members: make(map[FlowID]*Flow),
	}
	n.nextAgg++
	n.aggs[sig] = append(n.aggs[sig], a)
	n.aggByID[a.id] = a
	switch {
	case tr.blocked:
		a.rate = 0
	case len(tr.capLinks) == 0:
		// No capacitated link constrains it: the rate is decided here,
		// outside the solver.
		a.rate = a.maxRate
		if a.rate == 0 {
			a.rate = uncappedRate
		}
	}
	for _, lid := range tr.capLinks {
		n.linkFor(lid).aggs[a.id] = a
	}
	n.join(f, a)
}

// join adds a member and dirties the aggregate's capacitated links (its
// fair share changes with its weight). Callers hold n.mu.
func (n *Network) join(f *Flow, a *Aggregate) {
	f.agg = a
	f.joinRef = a.perFlowBits
	a.members[f.ID] = f
	a.weight++
	n.markDirty(a)
}

// leave removes a member, folding its delivered volume into the flow, and
// drops the aggregate when it empties. Callers hold n.mu.
func (n *Network) leave(f *Flow) {
	a := f.agg
	f.carried += a.perFlowBits - f.joinRef
	f.agg = nil
	delete(a.members, f.ID)
	a.weight--
	n.markDirty(a)
	if a.weight == 0 {
		n.dropAgg(a)
	}
}

func (n *Network) markDirty(a *Aggregate) {
	for _, lid := range a.capLinks {
		n.dirty[lid] = true
	}
}

func (n *Network) dropAgg(a *Aggregate) {
	chain := n.aggs[a.sig]
	for i, c := range chain {
		if c == a {
			n.aggs[a.sig] = slices.Delete(chain, i, i+1)
			break
		}
	}
	if len(n.aggs[a.sig]) == 0 {
		delete(n.aggs, a.sig)
	}
	delete(n.aggByID, a.id)
	delete(n.invalid, a.id)
	for _, lid := range a.capLinks {
		if ls := n.links[lid]; ls != nil {
			delete(ls.aggs, a.id)
			if len(ls.aggs) == 0 {
				// The link leaves the incidence graph; drop its dirty
				// mark too — a sole occupant's departure couples to
				// nothing, and a stale mark would inflate the
				// >50%-dirty fallback's numerator against a shrunken
				// denominator.
				delete(n.links, lid)
				delete(n.dirty, lid)
			}
		}
	}
}

// reshare recomputes max-min fair rates. When only a bounded set of links
// changed membership, the solve is scoped to the bottleneck-dependency
// component: the connected component of the link<->aggregate incidence
// graph reachable from the dirty links. Rates couple only through shared
// links, so aggregates outside the closure keep their allocation exactly.
// A full solve handles the rest (>50% of active links dirty, SetTable).
func (n *Network) reshare() {
	n.mu.Lock()
	defer n.mu.Unlock()
	// Fallback denominator: links currently carrying aggregates. When
	// most of the active incidence graph is dirty, the closure would
	// re-solve nearly everything anyway, and counting that as
	// "incremental" would defeat the telemetry's point.
	if n.dirtyAll || 2*len(n.dirty) > len(n.links) {
		n.dirtyAll = false
		clear(n.dirty)
		n.solveAll()
		n.stats.ReshareFull++
		return
	}
	if len(n.dirty) == 0 {
		return
	}
	// Close the dirty links over the incidence component.
	linkSeen := make(map[topo.LinkID]bool, len(n.dirty))
	var queue, compLinks []topo.LinkID
	for lid := range n.dirty {
		if n.links[lid] != nil {
			linkSeen[lid] = true
			queue = append(queue, lid)
		}
	}
	clear(n.dirty)
	aggSeen := make(map[int64]bool)
	var compAggs []*Aggregate
	for len(queue) > 0 {
		lid := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		compLinks = append(compLinks, lid)
		for _, a := range n.links[lid].aggs {
			if aggSeen[a.id] {
				continue
			}
			aggSeen[a.id] = true
			compAggs = append(compAggs, a)
			for _, l2 := range a.capLinks {
				if !linkSeen[l2] {
					linkSeen[l2] = true
					queue = append(queue, l2)
				}
			}
		}
	}
	if len(compAggs) == 0 {
		return // departed aggregates left empty links behind
	}
	n.solve(compAggs, compLinks)
	n.stats.ReshareIncremental++
}

// solveAll runs the solver over every aggregate: blocked ones get zero,
// unconstrained ones their cap (or the greedy sentinel), the rest the
// global progressive filling.
func (n *Network) solveAll() {
	var aggs []*Aggregate
	for _, a := range n.aggByID {
		switch {
		case a.blocked:
			a.rate = 0
		case len(a.capLinks) == 0:
			a.rate = a.maxRate
			if a.rate == 0 {
				a.rate = uncappedRate
			}
		default:
			aggs = append(aggs, a)
		}
	}
	links := make([]topo.LinkID, 0, len(n.links))
	for lid := range n.links {
		links = append(links, lid)
	}
	n.solve(aggs, links)
}

// solveLink is one capacitated link materialized for a solve: capacity
// plus its member aggregates in id order.
type solveLink struct {
	capacity float64
	members  []*Aggregate
}

// component is one connected component of the link<->aggregate incidence
// graph: an independent weighted max-min problem. Aggregates and links are
// in id order, so the per-component solve is deterministic.
type component struct {
	aggs  []*Aggregate
	links []solveLink
}

// solve partitions the scope into connected components of the
// link<->aggregate incidence graph and solves each independently, fanning
// the per-component progressive fillings across the scheduler's worker
// pool. Rates couple only through shared links, and the max-min allocation
// is unique, so the partitioned solve equals the combined solve exactly —
// at every pool width, including the sequential core, which runs the same
// components inline in the same (min-aggregate-id) order.
//
// Every aggregate incident to a scope link must be in aggs (guaranteed by
// component closure), so allocations outside the scope are untouched. An
// aggregate of weight w behaves exactly like w identical per-flow shares:
// the solution equals the per-flow global solve restricted to the scope.
//
// Components touch disjoint aggregates and pre-materialized links, so the
// parallel tasks are race-free; no shared Network state (maps included) is
// read inside them.
func (n *Network) solve(aggs []*Aggregate, linkIDs []topo.LinkID) {
	slices.SortFunc(aggs, func(x, y *Aggregate) int { return cmp.Compare(x.id, y.id) })
	slices.Sort(linkIDs)
	for i, a := range aggs {
		a.solveIdx = i
	}
	// Union-find over scratch indices: each link unions its members. The
	// final partition is iteration-order independent, so building it from
	// map-ordered member sets stays deterministic.
	parent := make([]int, len(aggs))
	for i := range parent {
		parent[i] = i
	}
	find := func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	links := make([]solveLink, 0, len(linkIDs))
	for _, lid := range linkIDs {
		ls := n.links[lid]
		if ls == nil || len(ls.aggs) == 0 {
			continue
		}
		members := make([]*Aggregate, 0, len(ls.aggs))
		for _, a := range ls.aggs {
			members = append(members, a)
		}
		// Members stay map-ordered here; solveComponent sorts them. The
		// sort is the scope materialisation's dominant cost, and inside
		// the component task it rides the worker pool.
		links = append(links, solveLink{capacity: ls.capacity, members: members})
		root := find(members[0].solveIdx)
		for _, m := range members[1:] {
			parent[find(m.solveIdx)] = root
		}
	}
	// Group into components, ordered by smallest aggregate id. Scanning
	// aggs in id order makes both the component order and each component's
	// internal order deterministic.
	slot := make([]int, len(aggs)) // root index -> component index + 1
	var comps []*component
	for _, a := range aggs {
		r := find(a.solveIdx)
		ci := slot[r]
		if ci == 0 {
			comps = append(comps, &component{})
			ci = len(comps)
			slot[r] = ci
		}
		comps[ci-1].aggs = append(comps[ci-1].aggs, a)
	}
	for _, l := range links {
		c := comps[slot[find(l.members[0].solveIdx)]-1]
		c.links = append(c.links, l)
	}
	n.stats.ReshareComponents += uint64(len(comps))
	if len(comps) == 1 {
		n.solveComponent(comps[0])
		return
	}
	tasks := make([]func(), len(comps))
	for i := range comps {
		c := comps[i]
		tasks[i] = func() { n.solveComponent(c) }
	}
	n.sched.RunParallel(tasks)
}

// solveComponent runs weighted max-min progressive filling over one
// component. It touches only the component's own aggregates and
// materialized links, so concurrent calls on disjoint components are safe.
func (n *Network) solveComponent(comp *component) {
	aggs, links := comp.aggs, comp.links
	for i, a := range aggs {
		a.solveIdx = i
	}
	// Deterministic member order per link: headroom sums floats in member
	// order, and float addition does not associate — an unsorted
	// (map-ordered) scan could freeze links differently run to run.
	for _, l := range links {
		slices.SortFunc(l.members, func(x, y *Aggregate) int { return cmp.Compare(x.id, y.id) })
	}
	frozen := make([]bool, len(aggs)) // indexed bitset, one allocation per solve
	nFrozen := 0
	headroom := func(l solveLink) (remaining float64, unfrozen int) {
		remaining = l.capacity
		for _, m := range l.members {
			if frozen[m.solveIdx] {
				remaining -= m.rate * float64(m.weight)
			} else {
				unfrozen += m.weight
			}
		}
		return remaining, unfrozen
	}
	for iter := 0; iter <= len(aggs); iter++ {
		if nFrozen == len(aggs) {
			break
		}
		// Fair share candidate: the tightest link.
		share := math.Inf(1)
		for _, l := range links {
			remaining, w := headroom(l)
			if w == 0 {
				continue
			}
			if s := remaining / float64(w); s < share {
				share = s
			}
		}
		if share < 0 {
			share = 0
		}
		// Application-limited aggregates below the share freeze at their cap.
		progressed := false
		for _, a := range aggs {
			if frozen[a.solveIdx] {
				continue
			}
			if a.maxRate > 0 && a.maxRate <= share {
				a.rate = a.maxRate
				frozen[a.solveIdx] = true
				nFrozen++
				progressed = true
			}
		}
		if progressed {
			continue // shares relax; recompute
		}
		if math.IsInf(share, 1) {
			for _, a := range aggs {
				if frozen[a.solveIdx] {
					continue
				}
				a.rate = a.maxRate
				if a.rate == 0 {
					a.rate = uncappedRate
				}
				frozen[a.solveIdx] = true
				nFrozen++
			}
			break
		}
		// Freeze aggregates on bottleneck links at the fair share.
		for _, l := range links {
			remaining, w := headroom(l)
			if w == 0 {
				continue
			}
			if remaining/float64(w) <= share+shareEps(share) {
				for _, m := range l.members {
					if !frozen[m.solveIdx] {
						m.rate = share
						frozen[m.solveIdx] = true
						nFrozen++
					}
				}
			}
		}
	}
}
