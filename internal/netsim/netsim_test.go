package netsim

import (
	"math"
	"net/netip"
	"testing"
	"time"

	"fibbing.net/fibbing/internal/event"
	"fibbing.net/fibbing/internal/fib"
	"fibbing.net/fibbing/internal/topo"
)

func mustPfx(s string) netip.Prefix { return netip.MustParsePrefix(s) }
func mustAddr(s string) netip.Addr  { return netip.MustParseAddr(s) }

// lineTopo builds n1 -(10M)- n2 -(6M)- n3 with prefixes p1@n2, p2@n3.
func lineTopo() *topo.Topology {
	t := topo.New()
	n1 := t.AddNode("n1")
	n2 := t.AddNode("n2")
	n3 := t.AddNode("n3")
	t.AddLink(n1, n2, 1, topo.LinkOpts{Capacity: 10e6})
	t.AddLink(n2, n3, 1, topo.LinkOpts{Capacity: 6e6})
	t.AddPrefix(mustPfx("10.100.0.0/16"), "p1", topo.Attachment{Node: n2})
	t.AddPrefix(mustPfx("10.101.0.0/16"), "p2", topo.Attachment{Node: n3})
	return t
}

// installLineTables wires the obvious routes for lineTopo.
func installLineTables(t *testing.T, net *Network, tp *topo.Topology) {
	t.Helper()
	n1, n2, n3 := tp.MustNode("n1"), tp.MustNode("n2"), tp.MustNode("n3")
	l12, _ := tp.FindLink(n1, n2)
	l23, _ := tp.FindLink(n2, n3)

	t1 := fib.NewTable(n1)
	t2 := fib.NewTable(n2)
	t3 := fib.NewTable(n3)
	for _, in := range []error{
		t1.Install(fib.Route{Prefix: mustPfx("10.100.0.0/16"), NextHops: []fib.NextHop{{Node: n2, Link: l12.ID, Weight: 1}}}),
		t1.Install(fib.Route{Prefix: mustPfx("10.101.0.0/16"), NextHops: []fib.NextHop{{Node: n2, Link: l12.ID, Weight: 1}}}),
		t2.Install(fib.Route{Prefix: mustPfx("10.100.0.0/16"), Local: true}),
		t2.Install(fib.Route{Prefix: mustPfx("10.101.0.0/16"), NextHops: []fib.NextHop{{Node: n3, Link: l23.ID, Weight: 1}}}),
		t3.Install(fib.Route{Prefix: mustPfx("10.101.0.0/16"), Local: true}),
	} {
		if in != nil {
			t.Fatal(in)
		}
	}
	net.SetTable(n1, t1)
	net.SetTable(n2, t2)
	net.SetTable(n3, t3)
}

func key(dst string, port uint16) fib.FlowKey {
	return fib.FlowKey{
		Src: mustAddr("10.0.0.1"), Dst: mustAddr(dst),
		SrcPort: port, DstPort: 5000, Proto: 6,
	}
}

func TestSingleCappedFlow(t *testing.T) {
	tp := lineTopo()
	sched := event.NewScheduler()
	net := New(tp, sched, time.Second)
	installLineTables(t, net, tp)
	net.AddFlow(tp.MustNode("n1"), key("10.100.0.1", 1), 2e6)
	sched.RunUntil(10 * time.Second)

	l12, _ := tp.FindLink(tp.MustNode("n1"), tp.MustNode("n2"))
	// 2 Mbit/s for 10 s = 2.5e6 bytes.
	oct := net.Octets(l12.ID)
	if math.Abs(float64(oct)-2.5e6) > 1e4 {
		t.Fatalf("octets = %d, want ~2.5e6", oct)
	}
	// Series sampled at 250 KB/s while the flow runs.
	s := net.Series(l12.ID)
	if v := s.At(5 * time.Second); math.Abs(v-250e3) > 1e3 {
		t.Fatalf("series at 5s = %v, want 250e3", v)
	}
}

func TestGreedyFlowsShareFairly(t *testing.T) {
	tp := lineTopo()
	sched := event.NewScheduler()
	net := New(tp, sched, time.Second)
	installLineTables(t, net, tp)
	f1 := net.AddFlow(tp.MustNode("n1"), key("10.100.0.1", 1), 0)
	f2 := net.AddFlow(tp.MustNode("n1"), key("10.100.0.2", 2), 0)
	sched.RunUntil(time.Second)
	r1, r2 := net.Flow(f1).Rate(), net.Flow(f2).Rate()
	if math.Abs(r1-5e6) > 1 || math.Abs(r2-5e6) > 1 {
		t.Fatalf("rates = %v, %v; want 5e6 each", r1, r2)
	}
}

func TestCappedPlusGreedy(t *testing.T) {
	tp := lineTopo()
	sched := event.NewScheduler()
	net := New(tp, sched, time.Second)
	installLineTables(t, net, tp)
	capped := net.AddFlow(tp.MustNode("n1"), key("10.100.0.1", 1), 2e6)
	greedy := net.AddFlow(tp.MustNode("n1"), key("10.100.0.2", 2), 0)
	sched.RunUntil(time.Second)
	if r := net.Flow(capped).Rate(); math.Abs(r-2e6) > 1 {
		t.Fatalf("capped rate = %v", r)
	}
	if r := net.Flow(greedy).Rate(); math.Abs(r-8e6) > 1 {
		t.Fatalf("greedy rate = %v, want 8e6", r)
	}
}

// TestMaxMinTextbook checks the classic two-link example: C crosses both
// links and is bottlenecked at 3 Mbit/s on the 6 Mbit/s link shared with
// B; A then gets the leftover 7 Mbit/s on the first link.
func TestMaxMinTextbook(t *testing.T) {
	tp := lineTopo()
	sched := event.NewScheduler()
	net := New(tp, sched, time.Second)
	installLineTables(t, net, tp)
	fa := net.AddFlow(tp.MustNode("n1"), key("10.100.0.1", 1), 0) // n1->n2
	fb := net.AddFlow(tp.MustNode("n2"), key("10.101.0.1", 2), 0) // n2->n3
	fc := net.AddFlow(tp.MustNode("n1"), key("10.101.0.2", 3), 0) // n1->n2->n3
	sched.RunUntil(time.Second)
	if r := net.Flow(fc).Rate(); math.Abs(r-3e6) > 1 {
		t.Fatalf("C = %v, want 3e6", r)
	}
	if r := net.Flow(fb).Rate(); math.Abs(r-3e6) > 1 {
		t.Fatalf("B = %v, want 3e6", r)
	}
	if r := net.Flow(fa).Rate(); math.Abs(r-7e6) > 1 {
		t.Fatalf("A = %v, want 7e6", r)
	}
	if u := net.MaxUtilisation(); u > 1+1e-9 {
		t.Fatalf("utilisation %v > 1", u)
	}
}

func TestECMPSpreadsFlows(t *testing.T) {
	// Diamond: s -> {u, v} -> d with a 2:1 weighted route at s.
	tp := topo.New()
	s := tp.AddNode("s")
	u := tp.AddNode("u")
	v := tp.AddNode("v")
	d := tp.AddNode("d")
	lsu, _ := tp.AddLink(s, u, 1, topo.LinkOpts{Capacity: 100e6})
	lsv, _ := tp.AddLink(s, v, 1, topo.LinkOpts{Capacity: 100e6})
	lud, _ := tp.AddLink(u, d, 1, topo.LinkOpts{Capacity: 100e6})
	lvd, _ := tp.AddLink(v, d, 1, topo.LinkOpts{Capacity: 100e6})
	pfx := mustPfx("10.100.0.0/16")
	tp.AddPrefix(pfx, "p", topo.Attachment{Node: d})

	sched := event.NewScheduler()
	net := New(tp, sched, time.Second)
	ts := fib.NewTable(s)
	if err := ts.Install(fib.Route{Prefix: pfx, NextHops: []fib.NextHop{
		{Node: u, Link: lsu, Weight: 2},
		{Node: v, Link: lsv, Weight: 1},
	}}); err != nil {
		t.Fatal(err)
	}
	tu := fib.NewTable(u)
	if err := tu.Install(fib.Route{Prefix: pfx, NextHops: []fib.NextHop{{Node: d, Link: lud, Weight: 1}}}); err != nil {
		t.Fatal(err)
	}
	tv := fib.NewTable(v)
	if err := tv.Install(fib.Route{Prefix: pfx, NextHops: []fib.NextHop{{Node: d, Link: lvd, Weight: 1}}}); err != nil {
		t.Fatal(err)
	}
	td := fib.NewTable(d)
	if err := td.Install(fib.Route{Prefix: pfx, Local: true}); err != nil {
		t.Fatal(err)
	}
	net.SetTable(s, ts)
	net.SetTable(u, tu)
	net.SetTable(v, tv)
	net.SetTable(d, td)

	const flows = 3000
	for i := 0; i < flows; i++ {
		net.AddFlow(s, key("10.100.0.9", uint16(i)), 1e3)
	}
	sched.RunUntil(time.Second)
	rates := net.LinkRates()
	fracU := rates[lsu] / (rates[lsu] + rates[lsv])
	if math.Abs(fracU-2.0/3) > 0.03 {
		t.Fatalf("weighted ECMP split = %.3f, want ~0.667", fracU)
	}
}

func TestRerouteOnTableChange(t *testing.T) {
	tp := lineTopo()
	sched := event.NewScheduler()
	net := New(tp, sched, time.Second)
	installLineTables(t, net, tp)
	id := net.AddFlow(tp.MustNode("n1"), key("10.101.0.1", 7), 1e6)
	sched.RunUntil(5 * time.Second)
	if got := len(net.Flow(id).Path()); got != 3 {
		t.Fatalf("path len = %d, want 3 nodes", got)
	}

	// Break n1's route: p2 now unreachable from n1.
	n1 := tp.MustNode("n1")
	t1 := fib.NewTable(n1)
	net.SetTable(n1, t1)
	sched.RunUntil(6 * time.Second)
	if !net.Flow(id).Blocked() {
		t.Fatalf("flow should be blocked after route removal")
	}
	if r := net.Flow(id).Rate(); r != 0 {
		t.Fatalf("blocked flow has rate %v", r)
	}

	// Counters must stop increasing.
	l12, _ := tp.FindLink(n1, tp.MustNode("n2"))
	before := net.Octets(l12.ID)
	sched.RunUntil(10 * time.Second)
	if after := net.Octets(l12.ID); after != before {
		t.Fatalf("blocked flow kept counting: %d -> %d", before, after)
	}

	// Restore and verify delivery resumes.
	installLineTables(t, net, tp)
	sched.RunUntil(12 * time.Second)
	if net.Flow(id).Blocked() {
		t.Fatalf("flow still blocked after restore")
	}
	if r := net.Flow(id).Rate(); math.Abs(r-1e6) > 1 {
		t.Fatalf("restored rate = %v", r)
	}
}

func TestRemoveFlowFreesCapacity(t *testing.T) {
	tp := lineTopo()
	sched := event.NewScheduler()
	net := New(tp, sched, time.Second)
	installLineTables(t, net, tp)
	a := net.AddFlow(tp.MustNode("n1"), key("10.100.0.1", 1), 0)
	b := net.AddFlow(tp.MustNode("n1"), key("10.100.0.2", 2), 0)
	sched.RunUntil(time.Second)
	if r := net.Flow(a).Rate(); math.Abs(r-5e6) > 1 {
		t.Fatalf("pre-removal rate = %v", r)
	}
	net.RemoveFlow(b)
	sched.RunUntil(2 * time.Second)
	if r := net.Flow(a).Rate(); math.Abs(r-10e6) > 1 {
		t.Fatalf("post-removal rate = %v, want full 10e6", r)
	}
	if net.FlowCount() != 1 {
		t.Fatalf("FlowCount = %d", net.FlowCount())
	}
}

func TestDeliveredBytesAccumulate(t *testing.T) {
	tp := lineTopo()
	sched := event.NewScheduler()
	net := New(tp, sched, time.Second)
	installLineTables(t, net, tp)
	id := net.AddFlow(tp.MustNode("n1"), key("10.100.0.1", 1), 4e6)
	sched.RunUntil(8 * time.Second)
	net.advance()
	got := net.Flow(id).DeliveredBytes()
	want := 4e6 / 8 * 8 // 4 Mbit/s for 8 s = 4e6 bytes
	if math.Abs(got-want) > 1e3 {
		t.Fatalf("delivered = %v, want %v", got, want)
	}
}

func TestUtilisationNeverExceedsOne(t *testing.T) {
	tp := lineTopo()
	sched := event.NewScheduler()
	net := New(tp, sched, time.Second)
	installLineTables(t, net, tp)
	for i := 0; i < 50; i++ {
		net.AddFlow(tp.MustNode("n1"), key("10.101.0.3", uint16(i)), 1e6)
	}
	sched.RunUntil(2 * time.Second)
	if u := net.MaxUtilisation(); u > 1+1e-9 {
		t.Fatalf("utilisation = %v", u)
	}
	// 50 x 1 Mbit/s demand into a 6 Mbit/s bottleneck: total delivery
	// equals the bottleneck capacity.
	if tt := net.TotalThroughput(); math.Abs(tt-6e6) > 1 {
		t.Fatalf("total throughput = %v, want 6e6", tt)
	}
}

func BenchmarkReshare100Flows(b *testing.B) {
	tp := lineTopo()
	sched := event.NewScheduler()
	net := New(tp, sched, time.Second)
	tt := &testing.T{}
	installLineTables(tt, net, tp)
	for i := 0; i < 100; i++ {
		net.AddFlow(tp.MustNode("n1"), key("10.101.0.3", uint16(i)), 1e6)
	}
	sched.RunUntil(time.Second)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.mu.Lock()
		net.dirtyAll = true
		net.mu.Unlock()
		net.reshare()
	}
}
