package netsim

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"fibbing.net/fibbing/internal/event"
	"fibbing.net/fibbing/internal/fib"
	"fibbing.net/fibbing/internal/topo"
)

// twoIslands builds two link-disjoint diamonds (s1->{u1,v1}->d1 and
// s2->{u2,v2}->d2) in one topology, so the incidence graph has two
// bottleneck-dependency components and churn in one must never re-solve
// — or perturb — the other.
func twoIslands() *topo.Topology {
	t := topo.New()
	for _, island := range []string{"1", "2"} {
		s := t.AddNode("s" + island)
		u := t.AddNode("u" + island)
		v := t.AddNode("v" + island)
		d := t.AddNode("d" + island)
		t.AddLink(s, u, 1, topo.LinkOpts{Capacity: 10e6})
		t.AddLink(s, v, 2, topo.LinkOpts{Capacity: 10e6})
		t.AddLink(u, d, 1, topo.LinkOpts{Capacity: 10e6})
		t.AddLink(v, d, 1, topo.LinkOpts{Capacity: 10e6})
	}
	t.AddPrefix(mustPfx("10.50.0.0/16"), "dst1", topo.Attachment{Node: t.MustNode("d1")})
	t.AddPrefix(mustPfx("10.51.0.0/16"), "dst2", topo.Attachment{Node: t.MustNode("d2")})
	return t
}

// installIsland wires an island's tables: the ingress ECMPs over both
// middle routers so flows spread into distinct aggregates.
func installIsland(t *testing.T, net *Network, tp *topo.Topology, island, prefix string) {
	t.Helper()
	s, u, v, d := tp.MustNode("s"+island), tp.MustNode("u"+island), tp.MustNode("v"+island), tp.MustNode("d"+island)
	lsu, _ := tp.FindLink(s, u)
	lsv, _ := tp.FindLink(s, v)
	lud, _ := tp.FindLink(u, d)
	lvd, _ := tp.FindLink(v, d)
	ts := fib.NewTable(s)
	tu := fib.NewTable(u)
	tv := fib.NewTable(v)
	td := fib.NewTable(d)
	for _, err := range []error{
		ts.Install(fib.Route{Prefix: mustPfx(prefix), NextHops: []fib.NextHop{
			{Node: u, Link: lsu.ID, Weight: 1}, {Node: v, Link: lsv.ID, Weight: 1}}}),
		tu.Install(fib.Route{Prefix: mustPfx(prefix), NextHops: []fib.NextHop{{Node: d, Link: lud.ID, Weight: 1}}}),
		tv.Install(fib.Route{Prefix: mustPfx(prefix), NextHops: []fib.NextHop{{Node: d, Link: lvd.ID, Weight: 1}}}),
		td.Install(fib.Route{Prefix: mustPfx(prefix), Local: true}),
	} {
		if err != nil {
			t.Fatal(err)
		}
	}
	net.SetTable(s, ts)
	net.SetTable(u, tu)
	net.SetTable(v, tv)
	net.SetTable(d, td)
}

// TestChurnStormComponentScoped drives a join/leave/re-path/cap-change
// storm through island 1 and checks after every step that (a) the solves
// are component-scoped (incremental, not full), (b) every flow's rate —
// including island 2's, whose links are outside every dirty component —
// matches a from-scratch per-flow global max-min solve, so no stale rate
// survives anywhere.
func TestChurnStormComponentScoped(t *testing.T) {
	tp := twoIslands()
	sched := event.NewScheduler()
	net := New(tp, sched, time.Second)
	installIsland(t, net, tp, "1", "10.50.0.0/16")
	installIsland(t, net, tp, "2", "10.51.0.0/16")

	s1, s2 := tp.MustNode("s1"), tp.MustNode("s2")
	// Steady population on both islands.
	var island1 []FlowID
	for i := 0; i < 40; i++ {
		island1 = append(island1, net.AddFlow(s1, key("10.50.0.9", uint16(i)), 1e6))
	}
	var island2 []FlowID
	for i := 0; i < 40; i++ {
		island2 = append(island2, net.AddFlow(s2, key("10.51.0.9", uint16(1000+i)), 0))
	}
	sched.RunUntil(time.Second)
	if err := net.VerifyMaxMin(1e-9); err != nil {
		t.Fatal(err)
	}

	island2Rates := func() map[FlowID]float64 {
		out := make(map[FlowID]float64)
		for _, id := range island2 {
			out[id] = net.Flow(id).Rate()
		}
		return out
	}
	before := island2Rates()

	rng := rand.New(rand.NewSource(42))
	now := time.Second
	port := uint16(5000)
	for step := 0; step < 150; step++ {
		now += 10 * time.Millisecond
		sched.RunUntil(now)
		switch rng.Intn(4) {
		case 0: // join
			port++
			island1 = append(island1, net.AddFlow(s1, key("10.50.0.9", port), 1e6))
		case 1: // leave
			if len(island1) > 1 {
				i := rng.Intn(len(island1))
				net.RemoveFlow(island1[i])
				island1 = append(island1[:i], island1[i+1:]...)
			}
		case 2: // cap churn (greedy <-> capped)
			id := island1[rng.Intn(len(island1))]
			if rng.Intn(2) == 0 {
				net.SetFlowMaxRate(id, 0)
			} else {
				net.SetFlowMaxRate(id, float64(1+rng.Intn(4))*5e5)
			}
		case 3: // re-path storm: steer island 1's ingress route u <-> v
			u, v := tp.MustNode("u1"), tp.MustNode("v1")
			lsu, _ := tp.FindLink(s1, u)
			lsv, _ := tp.FindLink(s1, v)
			mid, lid := u, lsu.ID
			if rng.Intn(2) == 0 {
				mid, lid = v, lsv.ID
			}
			ns := net.tables[s1].Clone()
			if err := ns.Install(fib.Route{Prefix: mustPfx("10.50.0.0/16"),
				NextHops: []fib.NextHop{{Node: mid, Link: lid, Weight: 1}}}); err != nil {
				t.Fatal(err)
			}
			net.ApplyDiff(s1, ns, fib.DiffTables(s1, net.tables[s1], ns))
		}
		now += 10 * time.Millisecond
		sched.RunUntil(now)
		if err := net.VerifyMaxMin(1e-9); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}

	// Small ops (joins, leaves, cap churn) solve component-scoped; only
	// the whole-island re-path steers may honestly count as full (they
	// dirty the majority of the active incidence graph). Incremental
	// must therefore dominate.
	st := net.Stats()
	if st.ReshareIncremental == 0 {
		t.Fatal("no incremental reshare ran during the storm")
	}
	if st.ReshareIncremental < st.ReshareFull {
		t.Fatalf("incremental solves (%d) did not dominate full solves (%d)",
			st.ReshareIncremental, st.ReshareFull)
	}
	// Island 2's allocation never moved: its component was never dirty.
	after := island2Rates()
	for id, r := range before {
		if after[id] != r {
			t.Fatalf("island-2 flow %d rate moved %v -> %v during island-1 churn", id, r, after[id])
		}
	}
	// Aggregation compresses: 40 same-rate island-1 members span at most
	// the path diversity (2 paths x live cap buckets), never the flow count.
	if st.Aggregates >= st.Flows/2 {
		t.Fatalf("aggregation ineffective: %d aggregates for %d flows", st.Aggregates, st.Flows)
	}
}

// TestLinkFailureRepathStorm fails and heals island 1's s1-u1 link under
// load: every re-path must keep the global allocation exact.
func TestLinkFailureRepathStorm(t *testing.T) {
	tp := twoIslands()
	sched := event.NewScheduler()
	net := New(tp, sched, time.Second)
	installIsland(t, net, tp, "1", "10.50.0.0/16")
	installIsland(t, net, tp, "2", "10.51.0.0/16")
	s1 := tp.MustNode("s1")
	for i := 0; i < 30; i++ {
		net.AddFlow(s1, key("10.50.0.9", uint16(i)), 1e6)
	}
	sched.RunUntil(time.Second)

	u1 := tp.MustNode("u1")
	for i := 0; i < 6; i++ {
		up := i%2 == 1
		if err := net.SetLinkState(s1, u1, up); err != nil {
			t.Fatal(err)
		}
		sched.RunUntil(time.Second + time.Duration(i+1)*100*time.Millisecond)
		if err := net.VerifyMaxMin(1e-9); err != nil {
			t.Fatalf("flap %d (up=%v): %v", i, up, err)
		}
	}
}

// TestCapChangeInheritsPendingInvalidation reproduces the race between a
// link failure and a same-instant cap change: SetLinkState queues the
// flow's aggregate for re-tracing, then (before the recompute fires) an
// adaptive player's SetFlowMaxRate moves the flow to a cap-sibling built
// from the same — now stale — trace. The sibling must inherit the queued
// invalidation, or the flow keeps forwarding across the failed link.
func TestCapChangeInheritsPendingInvalidation(t *testing.T) {
	tp := diamondTopo()
	sched := event.NewScheduler()
	net := New(tp, sched, time.Second)
	for n, tab := range diamondTables(t, tp, "u") {
		net.SetTable(n, tab)
	}
	s, u := tp.MustNode("s"), tp.MustNode("u")
	id := net.AddFlow(s, key("10.50.0.1", 1), 1e6) // sole member of its aggregate
	sched.RunUntil(time.Second)
	if net.Flow(id).Blocked() {
		t.Fatal("flow blocked before the failure")
	}

	// Same instant, in event order: fail the link the flow crosses, then
	// change the cap before the recompute event fires.
	if err := net.SetLinkState(s, u, false); err != nil {
		t.Fatal(err)
	}
	net.SetFlowMaxRate(id, 2e6)
	sched.RunUntil(2 * time.Second)

	if !net.Flow(id).Blocked() {
		t.Fatal("flow still forwarding across the failed link: cap change lost the pending invalidation")
	}
	if r := net.Flow(id).Rate(); r != 0 {
		t.Fatalf("blocked flow has rate %v", r)
	}
	if err := net.VerifyMaxMin(1e-9); err != nil {
		t.Fatal(err)
	}
}

// TestAggregateCompression checks the memory story head on: 10k identical
// viewers collapse into the path-class count, and a single join re-solves
// without touching the population.
func TestAggregateCompression(t *testing.T) {
	tp := lineTopo()
	sched := event.NewScheduler()
	net := New(tp, sched, time.Second)
	installLineTables(t, net, tp)
	const viewers = 10_000
	for i := 0; i < viewers; i++ {
		net.AddFlow(tp.MustNode("n1"), key("10.100.0.7", uint16(i%60000)), 1e3)
	}
	// A second, link-disjoint component (n2->n3), so the crowd's joins
	// have something to be scoped against.
	net.AddFlow(tp.MustNode("n2"), key("10.101.0.7", 9), 1e6)
	sched.RunUntil(time.Second)
	if got := net.FlowCount(); got != viewers+1 {
		t.Fatalf("FlowCount = %d", got)
	}
	if aggs := net.AggregateCount(); aggs != 2 {
		t.Fatalf("%d aggregates for two path-classes, want 2", aggs)
	}
	if err := net.VerifyMaxMin(1e-9); err != nil {
		t.Fatal(err)
	}
	// All members share the bottleneck fairly: 10 Mbit/s over 10k caps of
	// 1 kbit/s each -> everyone at cap.
	if r := net.Flow(0).Rate(); math.Abs(r-1e3) > 1e-6 {
		t.Fatalf("rate = %v, want 1e3", r)
	}
	incBefore := net.Stats().ReshareIncremental
	id := net.AddFlow(tp.MustNode("n1"), key("10.100.0.8", 1), 0)
	sched.RunUntil(1100 * time.Millisecond)
	if inc := net.Stats().ReshareIncremental; inc == incBefore {
		t.Fatal("single join did not run an incremental reshare")
	}
	if err := net.VerifyMaxMin(1e-9); err != nil {
		t.Fatal(err)
	}
	net.RemoveFlow(id)
	sched.RunUntil(1200 * time.Millisecond)
	if err := net.VerifyMaxMin(1e-9); err != nil {
		t.Fatal(err)
	}
}
