package netsim

import (
	"fmt"
	"testing"
	"time"

	"fibbing.net/fibbing/internal/event"
	"fibbing.net/fibbing/internal/fib"
	"fibbing.net/fibbing/internal/topo"
)

// multiLineTopo builds k disjoint two-node lines a{i} -(10M)- b{i} with one
// prefix attached at each b{i}. Traffic on different lines shares no link,
// so the incidence graph has exactly k connected components.
func multiLineTopo(k int) *topo.Topology {
	t := topo.New()
	for i := 0; i < k; i++ {
		a := t.AddNode(fmt.Sprintf("a%d", i))
		b := t.AddNode(fmt.Sprintf("b%d", i))
		t.AddLink(a, b, 1, topo.LinkOpts{Capacity: 10e6})
		t.AddPrefix(mustPfx(fmt.Sprintf("10.%d.0.0/16", 100+i)), fmt.Sprintf("p%d", i), topo.Attachment{Node: b})
	}
	return t
}

// runMultiLine drives k disjoint lines with two greedy flows each at the
// given worker-pool width and returns the per-flow rates plus stats.
func runMultiLine(t *testing.T, k, workers int) ([]float64, Stats) {
	t.Helper()
	tp := multiLineTopo(k)
	sched := event.NewScheduler()
	sched.SetWorkers(workers)
	net := New(tp, sched, time.Second)
	var ids []FlowID
	for i := 0; i < k; i++ {
		a, b := tp.MustNode(fmt.Sprintf("a%d", i)), tp.MustNode(fmt.Sprintf("b%d", i))
		l, _ := tp.FindLink(a, b)
		pfx := mustPfx(fmt.Sprintf("10.%d.0.0/16", 100+i))
		ta := fib.NewTable(a)
		tb := fib.NewTable(b)
		if err := ta.Install(fib.Route{Prefix: pfx, NextHops: []fib.NextHop{{Node: b, Link: l.ID, Weight: 1}}}); err != nil {
			t.Fatal(err)
		}
		if err := tb.Install(fib.Route{Prefix: pfx, Local: true}); err != nil {
			t.Fatal(err)
		}
		net.SetTable(a, ta)
		net.SetTable(b, tb)
		dst := fmt.Sprintf("10.%d.0.1", 100+i)
		ids = append(ids, net.AddFlow(a, key(dst, uint16(2*i+1)), 0))
		ids = append(ids, net.AddFlow(a, key(dst, uint16(2*i+2)), 0))
	}
	sched.RunUntil(time.Second)
	if err := net.VerifyMaxMin(1e-9); err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	rates := make([]float64, len(ids))
	for i, id := range ids {
		rates[i] = net.Flow(id).Rate()
	}
	return rates, net.Stats()
}

// TestReshareComponents checks that disjoint traffic regions are solved as
// independent components and that the partition, the telemetry, and the
// resulting rates are identical at every worker-pool width.
func TestReshareComponents(t *testing.T) {
	const k = 5
	seqRates, seqStats := runMultiLine(t, k, 1)
	parRates, parStats := runMultiLine(t, k, 4)

	// The initial full solve covers all k disjoint lines at once, so at
	// least one solve must have split into k components.
	if seqStats.ReshareComponents < k {
		t.Fatalf("ReshareComponents = %d, want >= %d", seqStats.ReshareComponents, k)
	}
	if seqStats.ReshareComponents != parStats.ReshareComponents {
		t.Fatalf("component counts diverge across widths: seq=%d par=%d",
			seqStats.ReshareComponents, parStats.ReshareComponents)
	}
	for i := range seqRates {
		if seqRates[i] != parRates[i] {
			t.Fatalf("flow %d rate diverges across widths: seq=%v par=%v", i, seqRates[i], parRates[i])
		}
		if seqRates[i] != 5e6 {
			t.Fatalf("flow %d rate = %v, want 5e6 (two greedy flows on a 10M line)", i, seqRates[i])
		}
	}
}
