package netsim

// Verification aid for the aggregate traffic plane: a from-scratch,
// per-flow global max-min solve (the pre-aggregation algorithm, one share
// per flow) compared against the live aggregate allocation. The zoo
// property tests call it after every churn step; it is deliberately naive
// and O(flows x links) — the point is to be an independent oracle.

import (
	"fmt"
	"math"

	"fibbing.net/fibbing/internal/topo"
)

// VerifyMaxMin recomputes max-min fair rates per flow from scratch and
// compares them with the allocated aggregate rates. rel is the relative
// tolerance: |allocated - reference| <= rel * max(1, |reference|). Flows
// still awaiting their first trace (added at this very instant) are
// skipped — they carry no rate yet by definition.
//
// When the plane is quiescent (no recompute outstanding), the oracle also
// re-traces every flow from the live tables and requires the aggregate's
// classification to match: a stale path — an invalidation the plane lost
// — fails here even though the fair-share arithmetic over the stale
// incidence would be self-consistent.
func (n *Network) VerifyMaxMin(rel float64) error {
	n.mu.Lock()
	defer n.mu.Unlock()

	quiescent := !n.recompute && !n.invalidAll && len(n.invalid) == 0 && len(n.pending) == 0

	type refFlow struct {
		f    *Flow
		cap  float64
		path []topo.LinkID
		rate float64
	}
	type refLink struct {
		capacity float64
		members  []*refFlow
	}
	var active []*refFlow
	links := make(map[topo.LinkID]*refLink)
	for _, a := range n.aggByID {
		for _, f := range a.members {
			if quiescent {
				if tr := n.traceFlow(f); !a.sameTrace(tr) {
					return fmt.Errorf("netsim: flow %d classified on a stale trace (blocked=%v nodes=%v, fresh trace blocked=%v nodes=%v)",
						f.ID, a.blocked, a.nodes, tr.blocked, tr.nodes)
				}
			}
			if a.blocked {
				if a.rate != 0 {
					return fmt.Errorf("netsim: blocked flow %d has rate %v", f.ID, a.rate)
				}
				continue
			}
			rf := &refFlow{f: f, cap: f.MaxRate, path: a.capLinks}
			active = append(active, rf)
			for _, lid := range a.capLinks {
				rl := links[lid]
				if rl == nil {
					rl = &refLink{capacity: n.topo.Link(lid).Capacity}
					links[lid] = rl
				}
				rl.members = append(rl.members, rf)
			}
		}
	}

	// Per-flow progressive filling, the seed algorithm verbatim.
	frozen := make(map[*refFlow]bool, len(active))
	for iter := 0; iter <= len(active); iter++ {
		if len(frozen) == len(active) {
			break
		}
		share := math.Inf(1)
		for _, rl := range links {
			remaining := rl.capacity
			cnt := 0
			for _, rf := range rl.members {
				if frozen[rf] {
					remaining -= rf.rate
				} else {
					cnt++
				}
			}
			if cnt == 0 {
				continue
			}
			if s := remaining / float64(cnt); s < share {
				share = s
			}
		}
		if share < 0 {
			share = 0
		}
		progressed := false
		for _, rf := range active {
			if frozen[rf] {
				continue
			}
			if rf.cap > 0 && rf.cap <= share {
				rf.rate = rf.cap
				frozen[rf] = true
				progressed = true
			}
		}
		if progressed {
			continue
		}
		if math.IsInf(share, 1) {
			for _, rf := range active {
				if frozen[rf] {
					continue
				}
				rf.rate = rf.cap
				if rf.rate == 0 {
					rf.rate = uncappedRate
				}
				frozen[rf] = true
			}
			break
		}
		for _, rl := range links {
			remaining := rl.capacity
			cnt := 0
			for _, rf := range rl.members {
				if frozen[rf] {
					remaining -= rf.rate
				} else {
					cnt++
				}
			}
			if cnt == 0 {
				continue
			}
			if remaining/float64(cnt) <= share+shareEps(share) {
				for _, rf := range rl.members {
					if !frozen[rf] {
						rf.rate = share
						frozen[rf] = true
					}
				}
			}
		}
	}

	for _, rf := range active {
		got := rf.f.agg.rate
		if diff := math.Abs(got - rf.rate); diff > rel*math.Max(1, math.Abs(rf.rate)) {
			return fmt.Errorf("netsim: flow %d allocated %v, per-flow global solve says %v (diff %v)",
				rf.f.ID, got, rf.rate, diff)
		}
	}
	return nil
}
