package netsim

import (
	"testing"
	"time"

	"fibbing.net/fibbing/internal/event"
	"fibbing.net/fibbing/internal/fib"
	"fibbing.net/fibbing/internal/topo"
)

// diamondTopo builds s -> {u, v} -> d with a prefix at d, so s has two
// candidate next hops towards it.
func diamondTopo() *topo.Topology {
	t := topo.New()
	s := t.AddNode("s")
	u := t.AddNode("u")
	v := t.AddNode("v")
	d := t.AddNode("d")
	t.AddLink(s, u, 1, topo.LinkOpts{Capacity: 10e6})
	t.AddLink(s, v, 1, topo.LinkOpts{Capacity: 10e6})
	t.AddLink(u, d, 1, topo.LinkOpts{Capacity: 10e6})
	t.AddLink(v, d, 1, topo.LinkOpts{Capacity: 10e6})
	t.AddPrefix(mustPfx("10.50.0.0/16"), "dst", topo.Attachment{Node: d})
	t.AddPrefix(mustPfx("10.60.0.0/16"), "other", topo.Attachment{Node: d})
	return t
}

func diamondTables(t *testing.T, tp *topo.Topology, via string) map[topo.NodeID]*fib.Table {
	t.Helper()
	s, d := tp.MustNode("s"), tp.MustNode("d")
	mid := tp.MustNode(via)
	l1, _ := tp.FindLink(s, mid)
	l2, _ := tp.FindLink(mid, d)
	ts := fib.NewTable(s)
	tm := fib.NewTable(mid)
	td := fib.NewTable(d)
	for _, err := range []error{
		ts.Install(fib.Route{Prefix: mustPfx("10.50.0.0/16"), NextHops: []fib.NextHop{{Node: mid, Link: l1.ID, Weight: 1}}}),
		ts.Install(fib.Route{Prefix: mustPfx("10.60.0.0/16"), NextHops: []fib.NextHop{{Node: mid, Link: l1.ID, Weight: 1}}}),
		tm.Install(fib.Route{Prefix: mustPfx("10.50.0.0/16"), NextHops: []fib.NextHop{{Node: d, Link: l2.ID, Weight: 1}}}),
		tm.Install(fib.Route{Prefix: mustPfx("10.60.0.0/16"), NextHops: []fib.NextHop{{Node: d, Link: l2.ID, Weight: 1}}}),
		td.Install(fib.Route{Prefix: mustPfx("10.50.0.0/16"), Local: true}),
		td.Install(fib.Route{Prefix: mustPfx("10.60.0.0/16"), Local: true}),
	} {
		if err != nil {
			t.Fatal(err)
		}
	}
	return map[topo.NodeID]*fib.Table{s: ts, mid: tm, d: td}
}

// TestApplyDiffRepathsOnlyAffectedFlows steers the 10.50/16 route at the
// ingress from u to v via a diff and checks that only the flow towards
// 10.50/16 moved; the 10.60/16 flow keeps its path.
func TestApplyDiffRepathsOnlyAffectedFlows(t *testing.T) {
	tp := diamondTopo()
	sched := event.NewScheduler()
	net := New(tp, sched, time.Second)
	for n, tab := range diamondTables(t, tp, "u") {
		net.SetTable(n, tab)
	}
	s := tp.MustNode("s")
	fDst := net.AddFlow(s, key("10.50.0.1", 1), 1e6)
	fOther := net.AddFlow(s, key("10.60.0.1", 2), 1e6)
	sched.RunUntil(time.Second)

	u, v := tp.MustNode("u"), tp.MustNode("v")
	if p := net.Flow(fDst).Path(); len(p) != 3 || p[1] != u {
		t.Fatalf("initial path %v, want via u", p)
	}

	// New ingress table: 10.50/16 moves to v, 10.60/16 untouched.
	d := tp.MustNode("d")
	lsv, _ := tp.FindLink(s, v)
	lvd, _ := tp.FindLink(v, d)
	tv := fib.NewTable(v)
	if err := tv.Install(fib.Route{Prefix: mustPfx("10.50.0.0/16"), NextHops: []fib.NextHop{{Node: d, Link: lvd.ID, Weight: 1}}}); err != nil {
		t.Fatal(err)
	}
	net.SetTable(v, tv)
	sched.RunUntil(1100 * time.Millisecond)

	ns := net.tables[s].Clone()
	if err := ns.Install(fib.Route{Prefix: mustPfx("10.50.0.0/16"), NextHops: []fib.NextHop{{Node: v, Link: lsv.ID, Weight: 1}}}); err != nil {
		t.Fatal(err)
	}
	diff := fib.DiffTables(s, net.tables[s], ns)
	if len(diff.Changes) != 1 {
		t.Fatalf("diff = %v, want one change", diff)
	}
	otherPathBefore := append([]topo.NodeID(nil), net.Flow(fOther).Path()...)
	net.ApplyDiff(s, ns, diff)
	sched.RunUntil(2 * time.Second)

	if p := net.Flow(fDst).Path(); len(p) != 3 || p[1] != v {
		t.Fatalf("post-diff path %v, want via v", p)
	}
	after := net.Flow(fOther).Path()
	if len(after) != len(otherPathBefore) {
		t.Fatalf("unaffected flow re-pathed: %v -> %v", otherPathBefore, after)
	}
	for i := range after {
		if after[i] != otherPathBefore[i] {
			t.Fatalf("unaffected flow re-pathed: %v -> %v", otherPathBefore, after)
		}
	}
}

// TestApplyDiffUnblocksFlows verifies that blocked flows are always
// re-traced: a flow with no route starts blocked and recovers when a diff
// installs the missing route anywhere.
func TestApplyDiffUnblocksFlows(t *testing.T) {
	tp := diamondTopo()
	sched := event.NewScheduler()
	net := New(tp, sched, time.Second)
	tables := diamondTables(t, tp, "u")
	s := tp.MustNode("s")
	// Withhold the ingress table: the flow has nowhere to go.
	for n, tab := range tables {
		if n != s {
			net.SetTable(n, tab)
		}
	}
	f := net.AddFlow(s, key("10.50.0.1", 1), 1e6)
	sched.RunUntil(time.Second)
	if !net.Flow(f).Blocked() {
		t.Fatal("flow with no ingress route not blocked")
	}
	diff := fib.DiffTables(s, nil, tables[s])
	net.ApplyDiff(s, tables[s], diff)
	sched.RunUntil(2 * time.Second)
	if net.Flow(f).Blocked() {
		t.Fatal("flow still blocked after diff installed its route")
	}
	if r := net.Flow(f).Rate(); r != 1e6 {
		t.Fatalf("rate = %v, want 1e6", r)
	}
}

// TestLinkFailureInvalidatesCrossingFlowsOnly fails u-d: the flow through
// u must block, the flow through v must keep flowing untouched.
func TestLinkFailureInvalidatesCrossingFlowsOnly(t *testing.T) {
	tp := diamondTopo()
	sched := event.NewScheduler()
	net := New(tp, sched, time.Second)
	s, u, v, d := tp.MustNode("s"), tp.MustNode("u"), tp.MustNode("v"), tp.MustNode("d")
	// Ingress splits: 10.50/16 via u, 10.60/16 via v.
	lsu, _ := tp.FindLink(s, u)
	lsv, _ := tp.FindLink(s, v)
	lud, _ := tp.FindLink(u, d)
	lvd, _ := tp.FindLink(v, d)
	ts := fib.NewTable(s)
	tu := fib.NewTable(u)
	tv := fib.NewTable(v)
	td := fib.NewTable(d)
	for _, err := range []error{
		ts.Install(fib.Route{Prefix: mustPfx("10.50.0.0/16"), NextHops: []fib.NextHop{{Node: u, Link: lsu.ID, Weight: 1}}}),
		ts.Install(fib.Route{Prefix: mustPfx("10.60.0.0/16"), NextHops: []fib.NextHop{{Node: v, Link: lsv.ID, Weight: 1}}}),
		tu.Install(fib.Route{Prefix: mustPfx("10.50.0.0/16"), NextHops: []fib.NextHop{{Node: d, Link: lud.ID, Weight: 1}}}),
		tv.Install(fib.Route{Prefix: mustPfx("10.60.0.0/16"), NextHops: []fib.NextHop{{Node: d, Link: lvd.ID, Weight: 1}}}),
		td.Install(fib.Route{Prefix: mustPfx("10.50.0.0/16"), Local: true}),
		td.Install(fib.Route{Prefix: mustPfx("10.60.0.0/16"), Local: true}),
	} {
		if err != nil {
			t.Fatal(err)
		}
	}
	for n, tab := range map[topo.NodeID]*fib.Table{s: ts, u: tu, v: tv, d: td} {
		net.SetTable(n, tab)
	}
	fU := net.AddFlow(s, key("10.50.0.1", 1), 1e6)
	fV := net.AddFlow(s, key("10.60.0.1", 2), 1e6)
	sched.RunUntil(time.Second)

	if err := net.SetLinkState(u, d, false); err != nil {
		t.Fatal(err)
	}
	sched.RunUntil(2 * time.Second)
	if !net.Flow(fU).Blocked() {
		t.Fatal("flow across the failed link not blocked")
	}
	if net.Flow(fV).Blocked() || net.Flow(fV).Rate() != 1e6 {
		t.Fatalf("disjoint flow perturbed: blocked=%v rate=%v", net.Flow(fV).Blocked(), net.Flow(fV).Rate())
	}
	if err := net.SetLinkState(u, d, true); err != nil {
		t.Fatal(err)
	}
	sched.RunUntil(3 * time.Second)
	if net.Flow(fU).Blocked() {
		t.Fatal("flow still blocked after heal")
	}
}
