// Package netsim is the data-plane substrate of the emulation: a
// discrete-event fluid simulator. Flows enter at ingress routers, follow
// the per-flow ECMP path selected by the routers' FIBs, and share link
// capacity max-min fairly (the fluid limit of long-lived TCP). Per-link
// octet counters feed the SNMP agents; sampled throughput series reproduce
// the paper's Figure 2.
//
// It replaces the paper's Mininet emulation (kernel forwarding + iperf):
// link throughput over time is fully determined by routing and fair
// sharing, both modelled explicitly here.
//
// The traffic plane is aggregate-based: flows with the same ingress, rate
// cap, traced path and per-hop FIB matches collapse into one Aggregate
// carrying a member weight, so memory and fair-sharing cost scale with the
// number of distinct path-classes instead of the number of viewers.
// AddFlow/RemoveFlow/SetFlowMaxRate are O(1) joins and leaves, and the
// fluid integration (advance) walks aggregates, not flows.
//
// Both planes move by delta. Routing: ApplyDiff consumes a router's
// fib.Diff and re-traces only the aggregates whose per-hop matched
// prefixes the diff can have re-pathed (plus blocked aggregates, which any
// change may unblock). Sharing: a link<->aggregate incidence index tracks
// which links changed membership; reshare closes the dirty link set over
// the bottleneck-dependency component (the connected component of the
// incidence graph) and re-runs weighted max-min progressive filling only
// there, falling back to a full solve when more than half the active links
// are dirty — the data-plane sibling of spf.Incremental's dirty region.
package netsim

import (
	"cmp"
	"fmt"
	"slices"
	"sync"
	"time"

	"fibbing.net/fibbing/internal/event"
	"fibbing.net/fibbing/internal/fib"
	"fibbing.net/fibbing/internal/metrics"
	"fibbing.net/fibbing/internal/topo"
)

// FlowID identifies a flow within one Network.
type FlowID int64

// Flow is one fluid flow: the identity of a demand source plus its
// membership in the aggregate that currently carries it. Flows do not own
// rates or paths — those live on the aggregate, shared by every member.
type Flow struct {
	ID      FlowID
	Key     fib.FlowKey
	Ingress topo.NodeID
	// MaxRate caps the flow's rate in bit/s (application-limited, e.g. a
	// video stream's bitrate); 0 means greedy (TCP bulk transfer).
	MaxRate float64

	agg     *Aggregate
	carried float64 // bits delivered in aggregates already left
	joinRef float64 // agg.perFlowBits when this flow joined
	gone    bool    // removed while still awaiting its first trace
}

// Rate returns the currently allocated rate in bit/s.
func (f *Flow) Rate() float64 {
	if f.agg == nil {
		return 0
	}
	return f.agg.rate
}

// DeliveredBytes returns the volume delivered so far.
func (f *Flow) DeliveredBytes() float64 { return f.deliveredBits() / 8 }

func (f *Flow) deliveredBits() float64 {
	bits := f.carried
	if f.agg != nil {
		bits += f.agg.perFlowBits - f.joinRef
	}
	return bits
}

// Path returns the node path the flow currently takes (nil while blocked
// or not yet routed).
func (f *Flow) Path() []topo.NodeID {
	if f.agg == nil || f.agg.blocked {
		return nil
	}
	return f.agg.nodes
}

// Blocked reports whether the flow currently has no route.
func (f *Flow) Blocked() bool { return f.agg != nil && f.agg.blocked }

// Stats is the traffic plane's cost telemetry.
type Stats struct {
	// ReshareFull counts global max-min solves (all aggregates);
	// ReshareIncremental counts component-scoped solves.
	ReshareFull        uint64
	ReshareIncremental uint64
	// ReshareComponents counts the connected incidence components solved
	// across all reshares. Components are independent max-min problems and
	// fan out across the scheduler's worker pool; the count is the same at
	// every pool width (the partition depends only on the incidence graph).
	ReshareComponents uint64
	// Aggregates and Flows are the current population sizes; their ratio
	// is the compression the aggregate plane achieves.
	Aggregates int
	Flows      int
}

// Network is the fluid data plane. All mutation happens on the event
// scheduler's goroutine; the mutex guards the read-only snapshots taken by
// concurrent observers (the SNMP agent running under Go's testing harness).
type Network struct {
	mu sync.Mutex

	topo  *topo.Topology
	sched *event.Scheduler

	// tables is the live routing state; replaced entries re-route flows.
	tables map[topo.NodeID]*fib.Table

	flows  map[FlowID]*Flow
	nextID FlowID

	// Aggregate plane: aggregates indexed by class signature (chained on
	// the rare hash collision) and by id, plus the link<->aggregate
	// incidence index over capacitated links.
	aggs    map[uint64][]*Aggregate
	aggByID map[int64]*Aggregate
	nextAgg int64
	links   map[topo.LinkID]*linkState

	// pending flows await their first trace at the next recompute.
	pending []*Flow

	// invalid aggregates are re-traced member by member at the next
	// recompute; invalidAll forces a re-trace of everything (SetTable).
	invalid    map[int64]*Aggregate
	invalidAll bool

	// dirty is the set of capacitated links whose aggregate membership
	// changed since the last reshare; dirtyAll forces a global solve.
	// The >50%-dirty fallback (the analogue of spf.MaxDirtyFraction)
	// measures against len(links), the active incidence graph.
	dirty    map[topo.LinkID]bool
	dirtyAll bool

	stats Stats

	counters map[topo.LinkID]*metrics.Counter // octets forwarded
	series   map[topo.LinkID]*metrics.Series  // sampled byte/s
	lastOct  map[topo.LinkID]uint64

	lastUpdate time.Duration
	recompute  bool // a reroute+reshare is scheduled for this instant

	linkDown map[topo.LinkID]bool

	sampleEvery time.Duration

	// DropSeries, when true, disables throughput series recording
	// (benchmarks that only need counters).
	DropSeries bool
}

// New builds a network over a topology. Routing tables start empty; feed
// them with SetTable (e.g. from an ospf.Domain's OnFIBChange callback).
func New(t *topo.Topology, sched *event.Scheduler, sampleEvery time.Duration) *Network {
	if sampleEvery <= 0 {
		sampleEvery = time.Second
	}
	n := &Network{
		topo:        t,
		sched:       sched,
		tables:      make(map[topo.NodeID]*fib.Table),
		flows:       make(map[FlowID]*Flow),
		aggs:        make(map[uint64][]*Aggregate),
		aggByID:     make(map[int64]*Aggregate),
		links:       make(map[topo.LinkID]*linkState),
		invalid:     make(map[int64]*Aggregate),
		dirty:       make(map[topo.LinkID]bool),
		counters:    make(map[topo.LinkID]*metrics.Counter),
		series:      make(map[topo.LinkID]*metrics.Series),
		lastOct:     make(map[topo.LinkID]uint64),
		linkDown:    make(map[topo.LinkID]bool),
		sampleEvery: sampleEvery,
	}
	for _, l := range t.Links() {
		n.counters[l.ID] = &metrics.Counter{}
		n.series[l.ID] = &metrics.Series{
			Name: fmt.Sprintf("%s-%s", t.Name(l.From), t.Name(l.To)),
		}
	}
	sched.NewTicker(sampleEvery, n.sample)
	return n
}

// Topology returns the simulated topology.
func (n *Network) Topology() *topo.Topology { return n.topo }

// Stats returns the traffic plane's cost counters.
func (n *Network) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	s := n.stats
	s.Aggregates = len(n.aggByID)
	s.Flows = len(n.flows)
	return s
}

// SetTable installs a router's FIB and schedules a re-route of all flows.
// Safe to call from OnFIBChange inside scheduler events. ApplyDiff is the
// cheaper delta-aware alternative.
func (n *Network) SetTable(node topo.NodeID, t *fib.Table) {
	n.mu.Lock()
	n.tables[node] = t
	n.invalidAll = true
	n.mu.Unlock()
	n.scheduleRecompute()
}

// ApplyDiff installs a router's FIB that changed by the given diff and
// invalidates only the aggregates the diff can have re-pathed: those whose
// path crosses the router and whose matched prefix at that hop overlaps a
// changed prefix, plus every blocked aggregate (any change may have opened
// a path). Invalidated aggregates re-trace their members at the next
// recompute; members whose trace is unchanged stay put without touching
// the fair-share state.
func (n *Network) ApplyDiff(node topo.NodeID, t *fib.Table, d *fib.Diff) {
	n.mu.Lock()
	n.tables[node] = t
	changed := false
	for _, a := range n.aggByID {
		if _, ok := n.invalid[a.id]; ok {
			changed = true
			continue
		}
		if a.blocked || a.touchedBy(node, d) {
			n.invalid[a.id] = a
			changed = true
		}
	}
	n.mu.Unlock()
	if changed {
		n.scheduleRecompute()
	}
}

// AddFlow injects a flow now and returns its ID: an O(1) join — the flow
// is traced and bucketed into its aggregate at the next recompute instant.
func (n *Network) AddFlow(ingress topo.NodeID, key fib.FlowKey, maxRate float64) FlowID {
	n.advance()
	n.mu.Lock()
	id := n.nextID
	n.nextID++
	f := &Flow{ID: id, Key: key, Ingress: ingress, MaxRate: maxRate}
	n.flows[id] = f
	n.pending = append(n.pending, f)
	n.mu.Unlock()
	n.scheduleRecompute()
	return id
}

// SetFlowMaxRate changes a flow's application-limited rate cap (0 = greedy):
// the flow leaves its aggregate and joins the sibling with the new cap
// (same path), dirtying only the links along it. Adaptive-bitrate players
// use this when they switch rungs.
func (n *Network) SetFlowMaxRate(id FlowID, maxRate float64) {
	n.advance()
	n.mu.Lock()
	f, ok := n.flows[id]
	changed := ok && f.MaxRate != maxRate
	if changed {
		f.MaxRate = maxRate
		if a := f.agg; a != nil {
			// The old aggregate's trace may be queued for re-tracing (a
			// diff or link failure invalidated it, the recompute has not
			// fired yet). The cap-sibling inherits that trace verbatim,
			// so it must inherit the invalidation too — leave() drops the
			// old aggregate (and its queue entry) when f was the last
			// member.
			_, wasInvalid := n.invalid[a.id]
			tr := a.trace
			n.leave(f)
			n.rebucket(f, tr)
			if wasInvalid {
				n.invalid[f.agg.id] = f.agg
			}
		}
	}
	n.mu.Unlock()
	if changed {
		n.scheduleRecompute()
	}
}

// RemoveFlow terminates a flow: an O(1) leave from its aggregate.
func (n *Network) RemoveFlow(id FlowID) {
	n.advance()
	n.mu.Lock()
	f := n.flows[id]
	if f != nil {
		delete(n.flows, id)
		if f.agg != nil {
			n.leave(f)
		} else {
			f.gone = true
		}
	}
	n.mu.Unlock()
	if f != nil {
		n.scheduleRecompute()
	}
}

// Flow returns a live flow (nil if finished/unknown). The returned struct
// is owned by the network; read it only from scheduler context.
func (n *Network) Flow(id FlowID) *Flow {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.flows[id]
}

// Delivered returns the volume (bytes) a flow has delivered so far; ok is
// false when the flow has finished. It is the accessor demand sources
// (video sessions) poll, so they never hold flow structs themselves.
// Like Octets, it advances the fluid model first so the value is current.
func (n *Network) Delivered(id FlowID) (bytes float64, ok bool) {
	n.advance()
	n.mu.Lock()
	defer n.mu.Unlock()
	f := n.flows[id]
	if f == nil {
		return 0, false
	}
	return f.deliveredBits() / 8, true
}

// FlowCount returns the number of live flows.
func (n *Network) FlowCount() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.flows)
}

// AggregateCount returns the number of live aggregates (path-classes).
func (n *Network) AggregateCount() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.aggByID)
}

// Octets returns the octet counter of a directed link (SNMP ifOutOctets of
// the transmitting interface). Advances the fluid model first so the value
// is current.
func (n *Network) Octets(link topo.LinkID) uint64 {
	n.advance()
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.counters[link].Value()
}

// Series returns the sampled throughput series (byte/s) of a link.
func (n *Network) Series(link topo.LinkID) *metrics.Series {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.series[link]
}

// SeriesBetween returns the series for the directed link a->b.
func (n *Network) SeriesBetween(a, b string) (*metrics.Series, error) {
	na, ok := n.topo.NodeByName(a)
	if !ok {
		return nil, fmt.Errorf("netsim: no node %q", a)
	}
	nb, ok := n.topo.NodeByName(b)
	if !ok {
		return nil, fmt.Errorf("netsim: no node %q", b)
	}
	l, ok := n.topo.FindLink(na, nb)
	if !ok {
		return nil, fmt.Errorf("netsim: no link %s->%s", a, b)
	}
	return n.Series(l.ID), nil
}

// SetLinkState fails or heals both directions of a link in the data
// plane: aggregates whose current path crosses a failed link are blocked
// until routing steers them elsewhere (the control plane learns of the
// failure separately through its own hello timeouts). Only aggregates
// crossing the link — plus, on heal, blocked aggregates that may now have
// a path — are re-traced.
func (n *Network) SetLinkState(a, b topo.NodeID, up bool) error {
	l, ok := n.topo.FindLink(a, b)
	if !ok {
		return fmt.Errorf("netsim: no link %d-%d", a, b)
	}
	n.advance()
	n.mu.Lock()
	n.linkDown[l.ID] = !up
	if l.Reverse != topo.NoLink {
		n.linkDown[l.Reverse] = !up
	}
	for _, ag := range n.aggByID {
		switch {
		case !up && (ag.uses(l.ID) || ag.uses(l.Reverse)):
			n.invalid[ag.id] = ag
		case up && ag.blocked:
			n.invalid[ag.id] = ag
		}
	}
	n.mu.Unlock()
	n.scheduleRecompute()
	return nil
}

// scheduleRecompute debounces rerouting/resharing to once per instant.
// Invalidations accumulate until the event fires.
func (n *Network) scheduleRecompute() {
	if n.recompute {
		return
	}
	n.recompute = true
	n.sched.At(n.sched.Now(), func() {
		n.recompute = false
		n.advance()
		n.reroute()
		n.reshare()
	})
}

// advance integrates delivered volume into counters up to the current
// time, one step per aggregate instead of per flow x per link.
func (n *Network) advance() {
	now := n.sched.Now()
	dt := now - n.lastUpdate
	if dt <= 0 {
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	secs := dt.Seconds()
	for _, a := range n.aggByID {
		if a.rate <= 0 {
			continue
		}
		bits := a.rate * secs
		a.perFlowBits += bits
		octets := uint64(bits / 8 * float64(a.weight))
		for _, lid := range a.links {
			n.counters[lid].Add(octets)
		}
	}
	n.lastUpdate = now
}

// reroute re-traces invalidated aggregates member by member from the
// current tables, and buckets pending flows into their aggregates.
// Members whose trace is unchanged stay in place without dirtying any
// link; movers leave and join, dirtying exactly the links of both paths.
func (n *Network) reroute() {
	n.mu.Lock()
	defer n.mu.Unlock()
	var work []*Aggregate
	if n.invalidAll {
		n.invalidAll = false
		n.dirtyAll = true
		for _, a := range n.aggByID {
			work = append(work, a)
		}
		clear(n.invalid)
	} else {
		for _, a := range n.invalid {
			work = append(work, a)
		}
		clear(n.invalid)
	}
	slices.SortFunc(work, func(x, y *Aggregate) int { return cmp.Compare(x.id, y.id) })
	for _, a := range work {
		if a.weight == 0 {
			continue // emptied while queued
		}
		ids := make([]FlowID, 0, len(a.members))
		for id := range a.members {
			ids = append(ids, id)
		}
		slices.Sort(ids)
		for _, id := range ids {
			f := a.members[id]
			tr := n.traceFlow(f)
			if a.sameTrace(tr) {
				continue
			}
			n.leave(f)
			n.rebucket(f, tr)
		}
	}
	for _, f := range n.pending {
		if f.gone {
			continue
		}
		n.rebucket(f, n.traceFlow(f))
	}
	n.pending = nil
}

// sample appends a throughput point (byte/s over the last interval) to
// every link's series.
func (n *Network) sample() {
	n.advance()
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.DropSeries {
		return
	}
	now := n.sched.Now()
	for id, c := range n.counters {
		cur := c.Value()
		rate := metrics.Rate(n.lastOct[id], cur, n.sampleEvery)
		n.lastOct[id] = cur
		n.series[id].Add(now, rate)
	}
}

// LinkRates returns the instantaneous offered rate (bit/s) per link,
// summing allocated aggregate rates. Useful for assertions.
func (n *Network) LinkRates() map[topo.LinkID]float64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make(map[topo.LinkID]float64)
	for _, a := range n.aggByID {
		if a.rate <= 0 {
			continue
		}
		for _, lid := range a.links {
			out[lid] += a.rate * float64(a.weight)
		}
	}
	return out
}

// MaxUtilisation returns max over capacitated links of rate/capacity.
func (n *Network) MaxUtilisation() float64 {
	rates := n.LinkRates()
	max := 0.0
	for id, r := range rates {
		l := n.topo.Link(id)
		if l.Capacity <= 0 {
			continue
		}
		if u := r / l.Capacity; u > max {
			max = u
		}
	}
	return max
}

// TotalThroughput sums all flows' current rates (bit/s).
func (n *Network) TotalThroughput() float64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	sum := 0.0
	for _, a := range n.aggByID {
		sum += a.rate * float64(a.weight)
	}
	return sum
}
