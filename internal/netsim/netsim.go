// Package netsim is the data-plane substrate of the emulation: a
// discrete-event fluid simulator. Flows enter at ingress routers, follow
// the per-flow ECMP path selected by the routers' FIBs, and share link
// capacity max-min fairly (the fluid limit of long-lived TCP). Per-link
// octet counters feed the SNMP agents; sampled throughput series reproduce
// the paper's Figure 2.
//
// It replaces the paper's Mininet emulation (kernel forwarding + iperf):
// link throughput over time is fully determined by routing and fair
// sharing, both modelled explicitly here.
//
// Re-routing is selective: ApplyDiff consumes a router's fib.Diff and
// re-traces only flows whose current path crosses that router and whose
// destination the diff affects (plus blocked flows, which any change may
// unblock). Fair-share rates are still recomputed globally — rates
// couple all flows through shared links, paths do not.
package netsim

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"fibbing.net/fibbing/internal/event"
	"fibbing.net/fibbing/internal/fib"
	"fibbing.net/fibbing/internal/metrics"
	"fibbing.net/fibbing/internal/topo"
)

// FlowID identifies a flow within one Network.
type FlowID int64

// Flow is one fluid flow.
type Flow struct {
	ID      FlowID
	Key     fib.FlowKey
	Ingress topo.NodeID
	// MaxRate caps the flow's rate in bit/s (application-limited, e.g. a
	// video stream's bitrate); 0 means greedy (TCP bulk transfer).
	MaxRate float64

	rate      float64 // currently allocated rate, bit/s
	bits      float64 // delivered volume, bits
	path      []topo.LinkID
	pathNodes []topo.NodeID
	blocked   bool // no route: delivers nothing
}

// Rate returns the currently allocated rate in bit/s.
func (f *Flow) Rate() float64 { return f.rate }

// DeliveredBytes returns the volume delivered so far.
func (f *Flow) DeliveredBytes() float64 { return f.bits / 8 }

// Path returns the node path the flow currently takes.
func (f *Flow) Path() []topo.NodeID { return f.pathNodes }

// Blocked reports whether the flow currently has no route.
func (f *Flow) Blocked() bool { return f.blocked }

// Network is the fluid data plane. All mutation happens on the event
// scheduler's goroutine; the mutex guards the read-only snapshots taken by
// concurrent observers (the SNMP agent running under Go's testing harness).
type Network struct {
	mu sync.Mutex

	topo  *topo.Topology
	sched *event.Scheduler

	// tables is the live routing state; replaced entries re-route flows.
	tables map[topo.NodeID]*fib.Table

	flows  map[FlowID]*Flow
	nextID FlowID

	counters map[topo.LinkID]*metrics.Counter // octets forwarded
	series   map[topo.LinkID]*metrics.Series  // sampled byte/s
	lastOct  map[topo.LinkID]uint64

	lastUpdate time.Duration
	recompute  bool // a reroute+reshare is scheduled for this instant

	// Selective re-pathing state: only invalidated flows are re-traced on
	// the next recompute (fair sharing is always recomputed globally).
	// invalidAll forces a re-trace of everything (legacy SetTable path).
	invalid    map[FlowID]bool
	invalidAll bool

	linkDown map[topo.LinkID]bool

	sampleEvery time.Duration

	// DropSeries, when true, disables throughput series recording
	// (benchmarks that only need counters).
	DropSeries bool
}

// New builds a network over a topology. Routing tables start empty; feed
// them with SetTable (e.g. from an ospf.Domain's OnFIBChange callback).
func New(t *topo.Topology, sched *event.Scheduler, sampleEvery time.Duration) *Network {
	if sampleEvery <= 0 {
		sampleEvery = time.Second
	}
	n := &Network{
		topo:        t,
		sched:       sched,
		tables:      make(map[topo.NodeID]*fib.Table),
		flows:       make(map[FlowID]*Flow),
		counters:    make(map[topo.LinkID]*metrics.Counter),
		series:      make(map[topo.LinkID]*metrics.Series),
		lastOct:     make(map[topo.LinkID]uint64),
		invalid:     make(map[FlowID]bool),
		linkDown:    make(map[topo.LinkID]bool),
		sampleEvery: sampleEvery,
	}
	for _, l := range t.Links() {
		n.counters[l.ID] = &metrics.Counter{}
		n.series[l.ID] = &metrics.Series{
			Name: fmt.Sprintf("%s-%s", t.Name(l.From), t.Name(l.To)),
		}
	}
	sched.NewTicker(sampleEvery, n.sample)
	return n
}

// Topology returns the simulated topology.
func (n *Network) Topology() *topo.Topology { return n.topo }

// SetTable installs a router's FIB and schedules a re-route of all flows.
// Safe to call from OnFIBChange inside scheduler events. ApplyDiff is the
// cheaper delta-aware alternative.
func (n *Network) SetTable(node topo.NodeID, t *fib.Table) {
	n.mu.Lock()
	n.tables[node] = t
	n.invalidAll = true
	n.mu.Unlock()
	n.scheduleRecompute()
}

// ApplyDiff installs a router's FIB that changed by the given diff and
// invalidates only the flows the diff can have re-pathed: flows whose
// current path crosses the router and whose destination's longest-prefix
// match is covered by a changed entry, plus every currently blocked flow
// (any change may have opened a path for it). Fair sharing is still
// recomputed globally afterwards.
func (n *Network) ApplyDiff(node topo.NodeID, t *fib.Table, d *fib.Diff) {
	n.mu.Lock()
	n.tables[node] = t
	changed := false
	for id, f := range n.flows {
		if n.invalid[id] {
			changed = true
			continue
		}
		switch {
		case f.blocked:
			n.invalid[id] = true
			changed = true
		case flowCrosses(f, node) && d.Affects(t, f.Key.Dst):
			n.invalid[id] = true
			changed = true
		}
	}
	n.mu.Unlock()
	if changed {
		n.scheduleRecompute()
	}
}

// flowCrosses reports whether the flow's current path visits the node.
func flowCrosses(f *Flow, node topo.NodeID) bool {
	for _, v := range f.pathNodes {
		if v == node {
			return true
		}
	}
	return false
}

// AddFlow injects a flow now and returns its ID. Only the new flow needs
// a path; existing flows keep theirs and just re-share capacity.
func (n *Network) AddFlow(ingress topo.NodeID, key fib.FlowKey, maxRate float64) FlowID {
	n.advance()
	n.mu.Lock()
	id := n.nextID
	n.nextID++
	n.flows[id] = &Flow{ID: id, Key: key, Ingress: ingress, MaxRate: maxRate}
	n.invalid[id] = true
	n.mu.Unlock()
	n.scheduleRecompute()
	return id
}

// SetFlowMaxRate changes a flow's application-limited rate cap (0 = greedy)
// and re-runs the fair-share allocation. Adaptive-bitrate players use this
// when they switch rungs.
func (n *Network) SetFlowMaxRate(id FlowID, maxRate float64) {
	n.advance()
	n.mu.Lock()
	f, ok := n.flows[id]
	if ok {
		f.MaxRate = maxRate
	}
	n.mu.Unlock()
	if ok {
		n.scheduleRecompute()
	}
}

// RemoveFlow terminates a flow.
func (n *Network) RemoveFlow(id FlowID) {
	n.advance()
	n.mu.Lock()
	delete(n.flows, id)
	n.mu.Unlock()
	n.scheduleRecompute()
}

// Flow returns a live flow (nil if finished/unknown). The returned struct
// is owned by the network; read it only from scheduler context.
func (n *Network) Flow(id FlowID) *Flow {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.flows[id]
}

// FlowCount returns the number of live flows.
func (n *Network) FlowCount() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.flows)
}

// Octets returns the octet counter of a directed link (SNMP ifOutOctets of
// the transmitting interface). Advances the fluid model first so the value
// is current.
func (n *Network) Octets(link topo.LinkID) uint64 {
	n.advance()
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.counters[link].Value()
}

// Series returns the sampled throughput series (byte/s) of a link.
func (n *Network) Series(link topo.LinkID) *metrics.Series {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.series[link]
}

// SeriesBetween returns the series for the directed link a->b.
func (n *Network) SeriesBetween(a, b string) (*metrics.Series, error) {
	na, ok := n.topo.NodeByName(a)
	if !ok {
		return nil, fmt.Errorf("netsim: no node %q", a)
	}
	nb, ok := n.topo.NodeByName(b)
	if !ok {
		return nil, fmt.Errorf("netsim: no node %q", b)
	}
	l, ok := n.topo.FindLink(na, nb)
	if !ok {
		return nil, fmt.Errorf("netsim: no link %s->%s", a, b)
	}
	return n.Series(l.ID), nil
}

// SetLinkState fails or heals both directions of a link in the data
// plane: flows whose current path crosses a failed link are blocked until
// routing steers them elsewhere (the control plane learns of the failure
// separately through its own hello timeouts). Only flows crossing the
// link — plus, on heal, blocked flows that may now have a path — are
// re-traced.
func (n *Network) SetLinkState(a, b topo.NodeID, up bool) error {
	l, ok := n.topo.FindLink(a, b)
	if !ok {
		return fmt.Errorf("netsim: no link %d-%d", a, b)
	}
	n.advance()
	n.mu.Lock()
	n.linkDown[l.ID] = !up
	if l.Reverse != topo.NoLink {
		n.linkDown[l.Reverse] = !up
	}
	for id, f := range n.flows {
		switch {
		case !up && (flowUsesLink(f, l.ID) || flowUsesLink(f, l.Reverse)):
			n.invalid[id] = true
		case up && f.blocked:
			n.invalid[id] = true
		}
	}
	n.mu.Unlock()
	n.scheduleRecompute()
	return nil
}

// flowUsesLink reports whether the flow's current path uses the link.
func flowUsesLink(f *Flow, link topo.LinkID) bool {
	if link == topo.NoLink {
		return false
	}
	for _, lid := range f.path {
		if lid == link {
			return true
		}
	}
	return false
}

// scheduleRecompute debounces rerouting/resharing to once per instant.
// Invalidations accumulate until the event fires.
func (n *Network) scheduleRecompute() {
	if n.recompute {
		return
	}
	n.recompute = true
	n.sched.At(n.sched.Now(), func() {
		n.recompute = false
		n.advance()
		n.reroute()
		n.reshare()
	})
}

// advance integrates flow volume into counters up to the current time.
func (n *Network) advance() {
	now := n.sched.Now()
	dt := now - n.lastUpdate
	if dt <= 0 {
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	secs := dt.Seconds()
	for _, f := range n.flows {
		if f.rate <= 0 {
			continue
		}
		bits := f.rate * secs
		f.bits += bits
		octets := uint64(bits / 8)
		for _, l := range f.path {
			n.counters[l].Add(octets)
		}
	}
	n.lastUpdate = now
}

// reroute re-traces invalidated flows from the current tables. Flows not
// invalidated keep their paths: a table change at a router off their path
// (or one that left their destination's route untouched) cannot move them.
func (n *Network) reroute() {
	n.mu.Lock()
	defer n.mu.Unlock()
	plane := &fib.Plane{Tables: n.tables}
	for id, f := range n.flows {
		if !n.invalidAll && !n.invalid[id] {
			continue
		}
		n.retrace(plane, f)
	}
	n.invalidAll = false
	clear(n.invalid)
}

// retrace recomputes one flow's path. Callers hold n.mu.
func (n *Network) retrace(plane *fib.Plane, f *Flow) {
	nodes, err := plane.Trace(f.Ingress, f.Key)
	if err != nil {
		f.blocked = true
		f.path = nil
		f.pathNodes = nodes
		return
	}
	f.blocked = false
	f.pathNodes = nodes
	f.path = f.path[:0]
	for i := 0; i+1 < len(nodes); i++ {
		l, ok := n.topo.FindLink(nodes[i], nodes[i+1])
		if !ok || n.linkDown[l.ID] {
			f.blocked = true
			f.path = nil
			break
		}
		f.path = append(f.path, l.ID)
	}
}

// reshare runs max-min fair allocation (progressive filling) with
// per-flow caps.
func (n *Network) reshare() {
	n.mu.Lock()
	defer n.mu.Unlock()

	type linkState struct {
		cap      float64
		unfrozen []*Flow
	}
	links := make(map[topo.LinkID]*linkState)
	var active []*Flow
	for _, f := range n.flows {
		if f.blocked {
			f.rate = 0
			continue
		}
		active = append(active, f)
		for _, lid := range f.path {
			l := n.topo.Link(lid)
			if l.Capacity <= 0 {
				continue
			}
			st := links[lid]
			if st == nil {
				st = &linkState{cap: l.Capacity}
				links[lid] = st
			}
			st.unfrozen = append(st.unfrozen, f)
		}
	}
	sort.Slice(active, func(i, j int) bool { return active[i].ID < active[j].ID })

	frozen := make(map[FlowID]bool)
	for iter := 0; iter < len(active)+1; iter++ {
		if len(frozen) == len(active) {
			break
		}
		// Fair share candidate: the tightest link.
		share := math.Inf(1)
		for _, st := range links {
			remaining := st.cap
			cnt := 0
			for _, f := range st.unfrozen {
				if frozen[f.ID] {
					remaining -= f.rate
				} else {
					cnt++
				}
			}
			if cnt == 0 {
				continue
			}
			if s := remaining / float64(cnt); s < share {
				share = s
			}
		}
		if share < 0 {
			share = 0
		}
		// Application-limited flows below the share freeze at their cap.
		progressed := false
		for _, f := range active {
			if frozen[f.ID] {
				continue
			}
			if f.MaxRate > 0 && f.MaxRate <= share {
				f.rate = f.MaxRate
				frozen[f.ID] = true
				progressed = true
			}
		}
		if progressed {
			continue // shares relax; recompute
		}
		if math.IsInf(share, 1) {
			// Remaining flows cross no capacitated link: rate = cap or
			// "infinite" (clamped to a sentinel of 1 Tbit/s).
			for _, f := range active {
				if frozen[f.ID] {
					continue
				}
				f.rate = f.MaxRate
				if f.rate == 0 {
					f.rate = 1e12
				}
				frozen[f.ID] = true
			}
			break
		}
		// Freeze flows on bottleneck links at the fair share.
		for lid, st := range links {
			remaining := st.cap
			cnt := 0
			for _, f := range st.unfrozen {
				if frozen[f.ID] {
					remaining -= f.rate
				} else {
					cnt++
				}
			}
			if cnt == 0 {
				continue
			}
			if remaining/float64(cnt) <= share+1e-9 {
				for _, f := range st.unfrozen {
					if !frozen[f.ID] {
						f.rate = share
						frozen[f.ID] = true
					}
				}
			}
			_ = lid
		}
	}
}

// sample appends a throughput point (byte/s over the last interval) to
// every link's series.
func (n *Network) sample() {
	n.advance()
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.DropSeries {
		return
	}
	now := n.sched.Now()
	for id, c := range n.counters {
		cur := c.Value()
		rate := metrics.Rate(n.lastOct[id], cur, n.sampleEvery)
		n.lastOct[id] = cur
		n.series[id].Add(now, rate)
	}
}

// LinkRates returns the instantaneous offered rate (bit/s) per link,
// summing allocated flow rates. Useful for assertions.
func (n *Network) LinkRates() map[topo.LinkID]float64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make(map[topo.LinkID]float64)
	for _, f := range n.flows {
		for _, lid := range f.path {
			out[lid] += f.rate
		}
	}
	return out
}

// MaxUtilisation returns max over capacitated links of rate/capacity.
func (n *Network) MaxUtilisation() float64 {
	rates := n.LinkRates()
	max := 0.0
	for id, r := range rates {
		l := n.topo.Link(id)
		if l.Capacity <= 0 {
			continue
		}
		if u := r / l.Capacity; u > max {
			max = u
		}
	}
	return max
}

// TotalThroughput sums all flows' current rates (bit/s).
func (n *Network) TotalThroughput() float64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	sum := 0.0
	for _, f := range n.flows {
		sum += f.rate
	}
	return sum
}
