package fib

// This file is the FIB half of the delta pipeline: routers emit Diffs
// (per-prefix route changes) instead of whole tables, tables apply them,
// and the data plane asks a Diff which destinations lost or changed their
// next hops so it can re-path only the flows that care.

import (
	"fmt"
	"net/netip"
	"strings"

	"fibbing.net/fibbing/internal/topo"
)

// RouteChange is one FIB entry mutation: an upsert of Route, or the
// removal of Prefix when Remove is set.
type RouteChange struct {
	Prefix netip.Prefix
	Route  Route // ignored when Remove
	Remove bool
}

// Diff is an ordered batch of route changes for one router's table.
type Diff struct {
	Router  topo.NodeID
	Changes []RouteChange
}

// NewDiff returns a diff builder for router with capacity for n changes
// preallocated, so hot-path builders (the per-SPF-run diff) size the
// change list once instead of growing it append by append.
func NewDiff(router topo.NodeID, n int) *Diff {
	return &Diff{Router: router, Changes: make([]RouteChange, 0, n)}
}

// Empty reports whether the diff carries no changes.
func (d *Diff) Empty() bool { return d == nil || len(d.Changes) == 0 }

// Upsert appends an install/replace change.
func (d *Diff) Upsert(r Route) {
	d.Changes = append(d.Changes, RouteChange{Prefix: r.Prefix, Route: r})
}

// Delete appends a removal change.
func (d *Diff) Delete(p netip.Prefix) {
	d.Changes = append(d.Changes, RouteChange{Prefix: p, Remove: true})
}

// String renders the diff for logs: "+prefix via ..." / "-prefix".
func (d *Diff) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fib diff @%d:", d.Router)
	for _, c := range d.Changes {
		if c.Remove {
			fmt.Fprintf(&b, " -%v", c.Prefix)
		} else {
			fmt.Fprintf(&b, " +%v", c.Prefix)
		}
	}
	return b.String()
}

// Equal reports whether two routes are identical entry for entry. Both
// routes must be Normalized (Install normalizes), which Table guarantees
// for every stored route.
func (r Route) Equal(o Route) bool {
	if r.Prefix != o.Prefix || r.Distance != o.Distance || r.Local != o.Local ||
		len(r.NextHops) != len(o.NextHops) {
		return false
	}
	for i := range r.NextHops {
		if r.NextHops[i] != o.NextHops[i] {
			return false
		}
	}
	return true
}

// Clone returns a table with the same router identity, salt, and routes.
// Route values are copied (next-hop slices included), so mutating the
// clone never perturbs snapshots of the original held by observers.
func (t *Table) Clone() *Table {
	c := NewTable(t.Router)
	c.Salt = t.Salt
	t.lpm.Walk(func(p netip.Prefix, r Route) bool {
		r.NextHops = append([]NextHop(nil), r.NextHops...)
		c.lpm.Insert(p, r)
		return true
	})
	return c
}

// ApplyDiff applies every change in order. Upserts are validated like
// Install; removals of absent prefixes are no-ops.
func (t *Table) ApplyDiff(d *Diff) error {
	if d.Empty() {
		return nil
	}
	for _, c := range d.Changes {
		if c.Remove {
			t.lpm.Remove(c.Prefix)
			continue
		}
		if err := t.Install(c.Route); err != nil {
			return err
		}
	}
	return nil
}

// DiffTables returns the changes that turn old into new (both walked in
// prefix order, so the diff is deterministic). Either table may be nil,
// meaning empty.
func DiffTables(router topo.NodeID, old, new *Table) *Diff {
	d := &Diff{Router: router}
	var oldRoutes, newRoutes []Route
	if old != nil {
		oldRoutes = old.Routes()
	}
	if new != nil {
		newRoutes = new.Routes()
	}
	i, j := 0, 0
	for i < len(oldRoutes) && j < len(newRoutes) {
		a, b := oldRoutes[i], newRoutes[j]
		switch {
		case a.Prefix == b.Prefix:
			if !a.Equal(b) {
				d.Upsert(b)
			}
			i++
			j++
		case prefixLess(a.Prefix, b.Prefix):
			d.Delete(a.Prefix)
			i++
		default:
			d.Upsert(b)
			j++
		}
	}
	for ; i < len(oldRoutes); i++ {
		d.Delete(oldRoutes[i].Prefix)
	}
	for ; j < len(newRoutes); j++ {
		d.Upsert(newRoutes[j])
	}
	return d
}

func prefixLess(a, b netip.Prefix) bool {
	if a.Addr() != b.Addr() {
		return a.Addr().Less(b.Addr())
	}
	return a.Bits() < b.Bits()
}
