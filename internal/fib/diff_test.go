package fib

import (
	"net/netip"
	"testing"
)

func mustPrefix(s string) netip.Prefix { return netip.MustParsePrefix(s) }

func TestDiffTablesAndApply(t *testing.T) {
	old := NewTable(1)
	for _, r := range []Route{
		{Prefix: mustPrefix("10.0.0.0/16"), NextHops: []NextHop{{Node: 2, Link: 1, Weight: 1}}, Distance: 5},
		{Prefix: mustPrefix("10.1.0.0/16"), NextHops: []NextHop{{Node: 3, Link: 2, Weight: 2}}, Distance: 7},
		{Prefix: mustPrefix("10.2.0.0/16"), Local: true},
	} {
		if err := old.Install(r); err != nil {
			t.Fatal(err)
		}
	}
	new := NewTable(1)
	for _, r := range []Route{
		// 10.0/16 unchanged, 10.1/16 reweighted, 10.2/16 gone, 10.3/16 added.
		{Prefix: mustPrefix("10.0.0.0/16"), NextHops: []NextHop{{Node: 2, Link: 1, Weight: 1}}, Distance: 5},
		{Prefix: mustPrefix("10.1.0.0/16"), NextHops: []NextHop{{Node: 3, Link: 2, Weight: 5}}, Distance: 7},
		{Prefix: mustPrefix("10.3.0.0/16"), NextHops: []NextHop{{Node: 4, Link: 3, Weight: 1}}, Distance: 2},
	} {
		if err := new.Install(r); err != nil {
			t.Fatal(err)
		}
	}

	d := DiffTables(1, old, new)
	if len(d.Changes) != 3 {
		t.Fatalf("diff has %d changes, want 3: %v", len(d.Changes), d)
	}
	applied := old.Clone()
	if err := applied.ApplyDiff(d); err != nil {
		t.Fatal(err)
	}
	if got, want := applied.String(), new.String(); got != want {
		t.Fatalf("applied table:\n%s\nwant:\n%s", got, want)
	}
	// The original must be untouched by the clone's mutation.
	if _, ok := old.Get(mustPrefix("10.3.0.0/16")); ok {
		t.Fatal("Clone aliases the original table")
	}
	if !DiffTables(1, new, applied).Empty() {
		t.Fatal("tables differ after applying their own diff")
	}
	if !DiffTables(1, new, new).Empty() {
		t.Fatal("self-diff not empty")
	}
}

func TestDiffTablesNilOld(t *testing.T) {
	new := NewTable(9)
	if err := new.Install(Route{Prefix: mustPrefix("10.0.0.0/8"), Local: true}); err != nil {
		t.Fatal(err)
	}
	d := DiffTables(9, nil, new)
	if len(d.Changes) != 1 || d.Changes[0].Remove {
		t.Fatalf("nil-old diff: %v", d)
	}
	fresh := NewTable(9)
	if err := fresh.ApplyDiff(d); err != nil {
		t.Fatal(err)
	}
	if fresh.String() != new.String() {
		t.Fatal("diff from nil does not rebuild the table")
	}
}
