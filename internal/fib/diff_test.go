package fib

import (
	"net/netip"
	"testing"
)

func mustPrefix(s string) netip.Prefix { return netip.MustParsePrefix(s) }

func TestDiffTablesAndApply(t *testing.T) {
	old := NewTable(1)
	for _, r := range []Route{
		{Prefix: mustPrefix("10.0.0.0/16"), NextHops: []NextHop{{Node: 2, Link: 1, Weight: 1}}, Distance: 5},
		{Prefix: mustPrefix("10.1.0.0/16"), NextHops: []NextHop{{Node: 3, Link: 2, Weight: 2}}, Distance: 7},
		{Prefix: mustPrefix("10.2.0.0/16"), Local: true},
	} {
		if err := old.Install(r); err != nil {
			t.Fatal(err)
		}
	}
	new := NewTable(1)
	for _, r := range []Route{
		// 10.0/16 unchanged, 10.1/16 reweighted, 10.2/16 gone, 10.3/16 added.
		{Prefix: mustPrefix("10.0.0.0/16"), NextHops: []NextHop{{Node: 2, Link: 1, Weight: 1}}, Distance: 5},
		{Prefix: mustPrefix("10.1.0.0/16"), NextHops: []NextHop{{Node: 3, Link: 2, Weight: 5}}, Distance: 7},
		{Prefix: mustPrefix("10.3.0.0/16"), NextHops: []NextHop{{Node: 4, Link: 3, Weight: 1}}, Distance: 2},
	} {
		if err := new.Install(r); err != nil {
			t.Fatal(err)
		}
	}

	d := DiffTables(1, old, new)
	if len(d.Changes) != 3 {
		t.Fatalf("diff has %d changes, want 3: %v", len(d.Changes), d)
	}
	applied := old.Clone()
	if err := applied.ApplyDiff(d); err != nil {
		t.Fatal(err)
	}
	if got, want := applied.String(), new.String(); got != want {
		t.Fatalf("applied table:\n%s\nwant:\n%s", got, want)
	}
	// The original must be untouched by the clone's mutation.
	if _, ok := old.Get(mustPrefix("10.3.0.0/16")); ok {
		t.Fatal("Clone aliases the original table")
	}
	if !DiffTables(1, new, applied).Empty() {
		t.Fatal("tables differ after applying their own diff")
	}
	if !DiffTables(1, new, new).Empty() {
		t.Fatal("self-diff not empty")
	}
}

func TestDiffTablesNilOld(t *testing.T) {
	new := NewTable(9)
	if err := new.Install(Route{Prefix: mustPrefix("10.0.0.0/8"), Local: true}); err != nil {
		t.Fatal(err)
	}
	d := DiffTables(9, nil, new)
	if len(d.Changes) != 1 || d.Changes[0].Remove {
		t.Fatalf("nil-old diff: %v", d)
	}
	fresh := NewTable(9)
	if err := fresh.ApplyDiff(d); err != nil {
		t.Fatal(err)
	}
	if fresh.String() != new.String() {
		t.Fatal("diff from nil does not rebuild the table")
	}
}

func TestDiffAffects(t *testing.T) {
	tbl := NewTable(1)
	if err := tbl.Install(Route{Prefix: mustPrefix("10.0.0.0/8"), NextHops: []NextHop{{Node: 2, Weight: 1}}}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Install(Route{Prefix: mustPrefix("10.1.0.0/16"), NextHops: []NextHop{{Node: 3, Weight: 1}}}); err != nil {
		t.Fatal(err)
	}

	inTen1 := netip.MustParseAddr("10.1.2.3")
	inTen9 := netip.MustParseAddr("10.9.2.3")
	outside := netip.MustParseAddr("192.168.0.1")

	moreSpecific := &Diff{Changes: []RouteChange{{Prefix: mustPrefix("10.1.0.0/16")}}}
	if !moreSpecific.Affects(tbl, inTen1) {
		t.Fatal("change to the current LPM match must affect the flow")
	}
	if moreSpecific.Affects(tbl, inTen9) {
		t.Fatal("change to a non-covering prefix must not affect the flow")
	}
	lessSpecific := &Diff{Changes: []RouteChange{{Prefix: mustPrefix("10.0.0.0/8")}}}
	if lessSpecific.Affects(tbl, inTen1) {
		t.Fatal("change shadowed by a more-specific match must not affect the flow")
	}
	if !lessSpecific.Affects(tbl, inTen9) {
		t.Fatal("change to the covering /8 must affect flows matched by it")
	}
	// A removed more-specific prefix shifts the flow to the /8: the diff
	// names the removed prefix, which is more specific than the new match.
	removed := &Diff{Changes: []RouteChange{{Prefix: mustPrefix("10.9.0.0/16"), Remove: true}}}
	if !removed.Affects(tbl, inTen9) {
		t.Fatal("removal of the previous LPM match must affect the flow")
	}
	if removed.Affects(tbl, outside) {
		t.Fatal("unrelated destination affected")
	}
	var empty *Diff
	if empty.Affects(tbl, inTen1) || !empty.Empty() {
		t.Fatal("nil diff affects nothing")
	}
}
