package fib

import (
	"math"
	"net/netip"
	"testing"
	"testing/quick"

	"fibbing.net/fibbing/internal/topo"
)

func mustPfx(s string) netip.Prefix { return netip.MustParsePrefix(s) }
func mustAddr(s string) netip.Addr  { return netip.MustParseAddr(s) }

func TestInstallAndLookup(t *testing.T) {
	tb := NewTable(1)
	err := tb.Install(Route{
		Prefix:   mustPfx("10.66.0.0/16"),
		NextHops: []NextHop{{Node: 2, Link: 0, Weight: 1}},
		Distance: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	r, ok := tb.Lookup(mustAddr("10.66.1.1"))
	if !ok || len(r.NextHops) != 1 || r.NextHops[0].Node != 2 {
		t.Fatalf("Lookup = %+v, %v", r, ok)
	}
	if _, ok := tb.Lookup(mustAddr("10.67.0.1")); ok {
		t.Fatalf("should miss")
	}
}

func TestInstallRejectsBadRoutes(t *testing.T) {
	tb := NewTable(1)
	if err := tb.Install(Route{Prefix: mustPfx("10.0.0.0/8")}); err == nil {
		t.Fatalf("route without next hops accepted")
	}
	if err := tb.Install(Route{
		Prefix:   mustPfx("10.0.0.0/8"),
		NextHops: []NextHop{{Node: 2, Weight: 0}},
	}); err == nil {
		t.Fatalf("zero-weight next hop accepted")
	}
	if err := tb.Install(Route{Prefix: netip.Prefix{}, Local: true}); err == nil {
		t.Fatalf("invalid prefix accepted")
	}
	if err := tb.Install(Route{Prefix: mustPfx("10.0.0.0/8"), Local: true}); err != nil {
		t.Fatalf("local route rejected: %v", err)
	}
}

func TestNormalizeMergesDuplicates(t *testing.T) {
	r := Route{
		Prefix: mustPfx("10.0.0.0/8"),
		NextHops: []NextHop{
			{Node: 5, Link: 7, Weight: 1},
			{Node: 2, Link: 3, Weight: 1},
			{Node: 5, Link: 7, Weight: 1},
		},
	}
	r.Normalize()
	if len(r.NextHops) != 2 {
		t.Fatalf("Normalize = %+v", r.NextHops)
	}
	if r.NextHops[0].Node != 2 || r.NextHops[1].Node != 5 || r.NextHops[1].Weight != 2 {
		t.Fatalf("Normalize = %+v", r.NextHops)
	}
}

func TestRatios(t *testing.T) {
	r := Route{
		Prefix: mustPfx("10.0.0.0/8"),
		NextHops: []NextHop{
			{Node: 1, Weight: 2},
			{Node: 2, Weight: 1},
		},
	}
	ratios := r.Ratios()
	if math.Abs(ratios[1]-2.0/3.0) > 1e-9 || math.Abs(ratios[2]-1.0/3.0) > 1e-9 {
		t.Fatalf("Ratios = %v", ratios)
	}
}

func TestFlowHashDeterministicAndSaltSensitive(t *testing.T) {
	k := FlowKey{
		Src: mustAddr("10.1.0.1"), Dst: mustAddr("10.66.0.1"),
		SrcPort: 1234, DstPort: 80, Proto: 6,
	}
	if k.Hash(1) != k.Hash(1) {
		t.Fatalf("hash not deterministic")
	}
	if k.Hash(1) == k.Hash(2) {
		t.Fatalf("salt has no effect")
	}
	k2 := k
	k2.SrcPort = 1235
	if k.Hash(1) == k2.Hash(1) {
		t.Fatalf("port has no effect")
	}
}

// TestSelectWeightedDistribution verifies the headline data-plane property:
// a route with weights 2:1 splits flows approximately 2/3 : 1/3.
func TestSelectWeightedDistribution(t *testing.T) {
	tb := NewTable(1)
	err := tb.Install(Route{
		Prefix: mustPfx("10.66.0.0/16"),
		NextHops: []NextHop{
			{Node: 100, Weight: 2},
			{Node: 200, Weight: 1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[topo.NodeID]int{}
	const flows = 30000
	for i := 0; i < flows; i++ {
		k := FlowKey{
			Src: mustAddr("10.1.0.9"), Dst: mustAddr("10.66.0.1"),
			SrcPort: uint16(i), DstPort: 80, Proto: 6,
		}
		nh, _, ok := tb.Select(k.Dst, k)
		if !ok {
			t.Fatal("Select failed")
		}
		counts[nh.Node]++
	}
	frac := float64(counts[100]) / flows
	if math.Abs(frac-2.0/3.0) > 0.02 {
		t.Fatalf("weighted split = %.3f, want ~0.667 (counts %v)", frac, counts)
	}
}

func TestSelectEvenDistribution(t *testing.T) {
	tb := NewTable(3)
	err := tb.Install(Route{
		Prefix: mustPfx("10.66.0.0/16"),
		NextHops: []NextHop{
			{Node: 1, Weight: 1},
			{Node: 2, Weight: 1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	const flows = 20000
	for i := 0; i < flows; i++ {
		k := FlowKey{Src: mustAddr("10.1.0.1"), Dst: mustAddr("10.66.0.1"),
			SrcPort: uint16(i), DstPort: 5000, Proto: 17}
		nh, _, _ := tb.Select(k.Dst, k)
		if nh.Node == 1 {
			count++
		}
	}
	frac := float64(count) / flows
	if math.Abs(frac-0.5) > 0.02 {
		t.Fatalf("even split = %.3f", frac)
	}
}

func TestSelectLocal(t *testing.T) {
	tb := NewTable(1)
	if err := tb.Install(Route{Prefix: mustPfx("10.66.0.0/16"), Local: true}); err != nil {
		t.Fatal(err)
	}
	k := FlowKey{Src: mustAddr("1.1.1.1"), Dst: mustAddr("10.66.0.1")}
	nh, r, ok := tb.Select(k.Dst, k)
	if !ok || !r.Local || nh != (NextHop{}) {
		t.Fatalf("local select = %+v, %+v, %v", nh, r, ok)
	}
}

func TestSaltVariesPerRouter(t *testing.T) {
	if NewTable(1).Salt == NewTable(2).Salt {
		t.Fatalf("salts should differ per router")
	}
}

func planeFor(t *testing.T) *Plane {
	t.Helper()
	// 0 -> {1,2} -> 3, destination local at 3.
	p := NewPlane()
	pfx := mustPfx("10.66.0.0/16")
	t0 := NewTable(0)
	if err := t0.Install(Route{Prefix: pfx, NextHops: []NextHop{
		{Node: 1, Weight: 1}, {Node: 2, Weight: 1}}}); err != nil {
		t.Fatal(err)
	}
	t1 := NewTable(1)
	if err := t1.Install(Route{Prefix: pfx, NextHops: []NextHop{{Node: 3, Weight: 1}}}); err != nil {
		t.Fatal(err)
	}
	t2 := NewTable(2)
	if err := t2.Install(Route{Prefix: pfx, NextHops: []NextHop{{Node: 3, Weight: 1}}}); err != nil {
		t.Fatal(err)
	}
	t3 := NewTable(3)
	if err := t3.Install(Route{Prefix: pfx, Local: true}); err != nil {
		t.Fatal(err)
	}
	p.Tables[0], p.Tables[1], p.Tables[2], p.Tables[3] = t0, t1, t2, t3
	return p
}

func TestTraceDelivers(t *testing.T) {
	p := planeFor(t)
	k := FlowKey{Src: mustAddr("10.0.0.1"), Dst: mustAddr("10.66.0.5"), SrcPort: 42, DstPort: 80, Proto: 6}
	path, err := p.Trace(0, k)
	if err != nil {
		t.Fatal(err)
	}
	if path[0] != 0 || path[len(path)-1] != 3 || len(path) != 3 {
		t.Fatalf("path = %v", path)
	}
}

func TestTraceSpreadsFlows(t *testing.T) {
	p := planeFor(t)
	via := map[topo.NodeID]int{}
	for i := 0; i < 1000; i++ {
		k := FlowKey{Src: mustAddr("10.0.0.1"), Dst: mustAddr("10.66.0.5"),
			SrcPort: uint16(i), DstPort: 80, Proto: 6}
		path, err := p.Trace(0, k)
		if err != nil {
			t.Fatal(err)
		}
		via[path[1]]++
	}
	if via[1] == 0 || via[2] == 0 {
		t.Fatalf("ECMP not exercised: %v", via)
	}
}

func TestTraceDetectsLoop(t *testing.T) {
	p := NewPlane()
	pfx := mustPfx("10.66.0.0/16")
	ta, tb := NewTable(0), NewTable(1)
	if err := ta.Install(Route{Prefix: pfx, NextHops: []NextHop{{Node: 1, Weight: 1}}}); err != nil {
		t.Fatal(err)
	}
	if err := tb.Install(Route{Prefix: pfx, NextHops: []NextHop{{Node: 0, Weight: 1}}}); err != nil {
		t.Fatal(err)
	}
	p.Tables[0], p.Tables[1] = ta, tb
	k := FlowKey{Src: mustAddr("1.1.1.1"), Dst: mustAddr("10.66.0.1")}
	if _, err := p.Trace(0, k); err == nil {
		t.Fatalf("loop not detected")
	}
}

func TestTraceMissingRoute(t *testing.T) {
	p := NewPlane()
	p.Tables[0] = NewTable(0)
	k := FlowKey{Src: mustAddr("1.1.1.1"), Dst: mustAddr("10.66.0.1")}
	if _, err := p.Trace(0, k); err == nil {
		t.Fatalf("missing route not reported")
	}
}

// Property: Select always returns one of the installed next hops, for any
// flow key.
func TestSelectAlwaysValid(t *testing.T) {
	tb := NewTable(9)
	if err := tb.Install(Route{
		Prefix: mustPfx("0.0.0.0/0"),
		NextHops: []NextHop{
			{Node: 1, Weight: 3}, {Node: 2, Weight: 1}, {Node: 3, Weight: 5},
		},
	}); err != nil {
		t.Fatal(err)
	}
	f := func(sp, dp uint16, proto uint8, a, b, c, d byte) bool {
		k := FlowKey{
			Src:     netip.AddrFrom4([4]byte{a, b, c, d}),
			Dst:     netip.AddrFrom4([4]byte{d, c, b, a}),
			SrcPort: sp, DstPort: dp, Proto: proto,
		}
		nh, _, ok := tb.Select(k.Dst, k)
		return ok && (nh.Node == 1 || nh.Node == 2 || nh.Node == 3)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSelect(b *testing.B) {
	tb := NewTable(1)
	if err := tb.Install(Route{
		Prefix:   mustPfx("10.66.0.0/16"),
		NextHops: []NextHop{{Node: 1, Weight: 2}, {Node: 2, Weight: 1}},
	}); err != nil {
		b.Fatal(err)
	}
	k := FlowKey{Src: mustAddr("10.0.0.1"), Dst: mustAddr("10.66.0.1"), SrcPort: 42, DstPort: 80, Proto: 6}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tb.Select(k.Dst, k)
	}
}
