// Package fib implements per-router forwarding tables: longest-prefix-match
// routes with weighted equal-cost next-hop sets, and the per-flow ECMP hash
// that routers use to pick one next hop per flow.
//
// Weighted next hops are the data-plane half of Fibbing's uneven
// load-balancing: a router that computed three equal-cost paths, two of
// which resolve to the same physical next hop, installs that next hop with
// Weight 2 and splits traffic 2/3 : 1/3 with plain ECMP hashing.
//
// Tables also move by delta (diff.go): routers emit Diffs (per-prefix
// RouteChanges), ApplyDiff patches a table in place, and DiffTables
// derives the delta between two tables. The data plane decides which
// path-classes a diff can have re-pathed by overlapping the changed
// prefixes with each class's per-hop matched prefix (netsim's
// Aggregate.touchedBy).
package fib

import (
	"cmp"
	"fmt"
	"hash/fnv"
	"net/netip"
	"slices"
	"strings"

	"fibbing.net/fibbing/internal/lpm"
	"fibbing.net/fibbing/internal/topo"
)

// NextHop is one forwarding alternative with its ECMP weight
// (the number of equal-cost RIB paths that resolved to it).
type NextHop struct {
	Node   topo.NodeID
	Link   topo.LinkID
	Weight int
}

// Route is one FIB entry.
type Route struct {
	Prefix   netip.Prefix
	NextHops []NextHop
	// Distance is the IGP cost of the route (diagnostics only).
	Distance int64
	// Local marks a directly attached destination: the router delivers
	// instead of forwarding.
	Local bool
}

// TotalWeight returns the sum of next-hop weights.
func (r Route) TotalWeight() int {
	total := 0
	for _, nh := range r.NextHops {
		total += nh.Weight
	}
	return total
}

// Ratios returns each next hop's traffic fraction under ideal hashing.
func (r Route) Ratios() map[topo.NodeID]float64 {
	total := r.TotalWeight()
	out := make(map[topo.NodeID]float64, len(r.NextHops))
	if total == 0 {
		return out
	}
	for _, nh := range r.NextHops {
		out[nh.Node] += float64(nh.Weight) / float64(total)
	}
	return out
}

// Normalize sorts next hops by node then link, and merges duplicates by
// summing weights. Returns the route for chaining.
func (r *Route) Normalize() *Route {
	slices.SortFunc(r.NextHops, func(a, b NextHop) int {
		if c := cmp.Compare(a.Node, b.Node); c != 0 {
			return c
		}
		return cmp.Compare(a.Link, b.Link)
	})
	merged := r.NextHops[:0]
	for _, nh := range r.NextHops {
		if n := len(merged); n > 0 && merged[n-1].Node == nh.Node && merged[n-1].Link == nh.Link {
			merged[n-1].Weight += nh.Weight
			continue
		}
		merged = append(merged, nh)
	}
	r.NextHops = merged
	return r
}

// Table is one router's FIB.
type Table struct {
	Router topo.NodeID
	// Salt decorrelates ECMP hashing across routers, avoiding the
	// classic hash-polarisation artefact where every router picks the
	// same member of its ECMP group.
	Salt uint64
	lpm  *lpm.Table[Route]
}

// NewTable returns an empty FIB for a router. The salt is derived from the
// router ID.
func NewTable(router topo.NodeID) *Table {
	return &Table{Router: router, Salt: 0x9e3779b97f4a7c15 * (uint64(router) + 1), lpm: lpm.New[Route]()}
}

// Install adds or replaces the route for route.Prefix. Routes with no next
// hops and Local unset are rejected.
func (t *Table) Install(route Route) error {
	if !route.Prefix.IsValid() {
		return fmt.Errorf("fib: invalid prefix")
	}
	if len(route.NextHops) == 0 && !route.Local {
		return fmt.Errorf("fib: route to %v has no next hops", route.Prefix)
	}
	for _, nh := range route.NextHops {
		if nh.Weight < 1 {
			return fmt.Errorf("fib: route to %v has next hop with weight %d", route.Prefix, nh.Weight)
		}
	}
	route.Normalize()
	t.lpm.Insert(route.Prefix, route)
	return nil
}

// Remove deletes the route for the exact prefix.
func (t *Table) Remove(p netip.Prefix) bool { return t.lpm.Remove(p) }

// Len returns the number of installed routes.
func (t *Table) Len() int { return t.lpm.Len() }

// Lookup longest-prefix-matches dst.
func (t *Table) Lookup(dst netip.Addr) (Route, bool) {
	r, _, ok := t.lpm.Lookup(dst)
	return r, ok
}

// Get returns the route installed for the exact prefix.
func (t *Table) Get(p netip.Prefix) (Route, bool) { return t.lpm.Get(p) }

// Routes returns all installed routes in prefix order.
func (t *Table) Routes() []Route {
	out := make([]Route, 0, t.lpm.Len())
	t.lpm.Walk(func(_ netip.Prefix, r Route) bool {
		out = append(out, r)
		return true
	})
	return out
}

// FlowKey identifies a transport flow; ECMP hashes it so a flow's packets
// always take the same path (no reordering).
type FlowKey struct {
	Src, Dst         netip.Addr
	SrcPort, DstPort uint16
	Proto            uint8
}

// Hash computes the FNV-1a hash of the flow key mixed with a router salt,
// passed through an avalanche finalizer. The finalizer matters: FNV-1a's
// low bit is the parity of the input's low bits, so without it a flow
// population whose ports and addresses increment in lockstep can land
// entirely in one bucket of `hash % 2` — every flow on one ECMP member.
func (k FlowKey) Hash(salt uint64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(salt >> (8 * i))
	}
	h.Write(buf[:])
	src, _ := k.Src.MarshalBinary()
	dst, _ := k.Dst.MarshalBinary()
	h.Write(src)
	h.Write(dst)
	buf[0] = byte(k.SrcPort >> 8)
	buf[1] = byte(k.SrcPort)
	buf[2] = byte(k.DstPort >> 8)
	buf[3] = byte(k.DstPort)
	buf[4] = k.Proto
	h.Write(buf[:5])
	return mix64(h.Sum64())
}

// mix64 is the splitmix64/murmur3 finalizer: full avalanche so every
// output bit depends on every input bit.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Select picks the next hop for a flow: the flow hash indexes the weighted
// next-hop list, so a next hop with weight w receives w/total of flows.
func (t *Table) Select(dst netip.Addr, key FlowKey) (NextHop, Route, bool) {
	r, ok := t.Lookup(dst)
	if !ok || len(r.NextHops) == 0 {
		return NextHop{}, r, ok && r.Local
	}
	total := r.TotalWeight()
	x := int(key.Hash(t.Salt) % uint64(total))
	for _, nh := range r.NextHops {
		x -= nh.Weight
		if x < 0 {
			return nh, r, true
		}
	}
	// Unreachable given TotalWeight > 0.
	return r.NextHops[len(r.NextHops)-1], r, true
}

// String renders the table like "show ip route".
func (t *Table) String() string {
	var b strings.Builder
	t.lpm.Walk(func(p netip.Prefix, r Route) bool {
		fmt.Fprintf(&b, "%v metric %d", p, r.Distance)
		if r.Local {
			b.WriteString(" local")
		}
		for _, nh := range r.NextHops {
			fmt.Fprintf(&b, " via node%d(w%d)", nh.Node, nh.Weight)
		}
		b.WriteByte('\n')
		return true
	})
	return b.String()
}

// Plane is the set of all routers' FIBs; it can trace a flow hop by hop.
type Plane struct {
	Tables map[topo.NodeID]*Table
}

// NewPlane returns an empty forwarding plane.
func NewPlane() *Plane {
	return &Plane{Tables: make(map[topo.NodeID]*Table)}
}

// WalkTrace walks a flow hop by hop from the ingress router, invoking
// visit at every consulted router with the matched route and the chosen
// next hop (zero NextHop when the route is Local — the delivery hop).
// The walk ends on delivery (nil error), on a lookup miss, missing table,
// forwarding loop or the hop limit (descriptive error), or when visit
// returns false (nil error; the visitor keeps its own verdict). It is the
// single implementation of the forwarding walk: Trace and the data
// plane's aggregate classifier are both built on it.
func (p *Plane) WalkTrace(ingress topo.NodeID, key FlowKey, visit func(cur topo.NodeID, route Route, nh NextHop) bool) error {
	const maxHops = 64
	cur := ingress
	seen := map[topo.NodeID]bool{ingress: true}
	for hop := 0; hop < maxHops; hop++ {
		tbl, ok := p.Tables[cur]
		if !ok {
			return fmt.Errorf("fib: no table for node %d", cur)
		}
		nh, route, ok := tbl.Select(key.Dst, key)
		if !ok {
			return fmt.Errorf("fib: node %d has no route to %v", cur, key.Dst)
		}
		if route.Local {
			visit(cur, route, NextHop{})
			return nil
		}
		if !visit(cur, route, nh) {
			return nil
		}
		if seen[nh.Node] {
			return fmt.Errorf("fib: forwarding loop at node %d", nh.Node)
		}
		seen[nh.Node] = true
		cur = nh.Node
	}
	return fmt.Errorf("fib: hop limit exceeded towards %v", key.Dst)
}

// Trace walks a flow from the ingress router until some router reports the
// destination Local, returning the node path (ingress first, delivering
// router last). It fails on lookup misses, missing tables, and loops.
func (p *Plane) Trace(ingress topo.NodeID, key FlowKey) ([]topo.NodeID, error) {
	path := []topo.NodeID{ingress}
	err := p.WalkTrace(ingress, key, func(_ topo.NodeID, route Route, nh NextHop) bool {
		if !route.Local {
			path = append(path, nh.Node)
		}
		return true
	})
	return path, err
}
