package ospf

import (
	"cmp"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"slices"
	"strings"
	"time"
)

// LSDB is a router's link-state database.
type LSDB struct {
	entries map[Key]*LSA
	// installedAt records the local virtual time each instance arrived,
	// for aging (effective age = Header.Age + time since installation).
	installedAt map[Key]time.Duration
	now         func() time.Duration
}

// NewLSDB returns an empty database. The clock (used for aging) may be
// nil, in which case ages are static.
func NewLSDB() *LSDB {
	return &LSDB{
		entries:     make(map[Key]*LSA),
		installedAt: make(map[Key]time.Duration),
	}
}

// SetClock wires the database to a virtual clock for aging.
func (db *LSDB) SetClock(now func() time.Duration) { db.now = now }

// Get returns the stored instance for a key.
func (db *LSDB) Get(k Key) (*LSA, bool) {
	l, ok := db.entries[k]
	return l, ok
}

// Install stores an LSA unconditionally (freshness decisions are the
// router's job). The LSA is stored as-is; callers must not mutate it after.
func (db *LSDB) Install(l *LSA) {
	k := l.Header.Key()
	db.entries[k] = l
	if db.now != nil {
		db.installedAt[k] = db.now()
	}
}

// EffectiveAge returns the instance's current age in seconds: the age it
// carried on arrival plus the time it has sat in this database, saturating
// at MaxAgeSeconds (OSPF aging semantics).
func (db *LSDB) EffectiveAge(k Key) uint16 {
	l, ok := db.entries[k]
	if !ok {
		return MaxAgeSeconds
	}
	age := uint32(l.Header.Age)
	if db.now != nil {
		if at, ok := db.installedAt[k]; ok {
			age += uint32((db.now() - at) / time.Second)
		}
	}
	if age > uint32(MaxAgeSeconds) {
		return MaxAgeSeconds
	}
	return uint16(age)
}

// Expired returns the keys of all instances that have reached MaxAge and
// must be purged (their originator has stopped refreshing them).
func (db *LSDB) Expired() []Key {
	var out []Key
	for k := range db.entries {
		if db.EffectiveAge(k) >= MaxAgeSeconds {
			out = append(out, k)
		}
	}
	slices.SortFunc(out, keyCompare)
	return out
}

// Remove deletes the instance for a key.
func (db *LSDB) Remove(k Key) {
	delete(db.entries, k)
	delete(db.installedAt, k)
}

// Len returns the number of stored LSAs.
func (db *LSDB) Len() int { return len(db.entries) }

// All returns all LSAs sorted by key (deterministic iteration).
func (db *LSDB) All() []*LSA {
	out := make([]*LSA, 0, len(db.entries))
	for _, l := range db.entries {
		out = append(out, l)
	}
	slices.SortFunc(out, func(a, b *LSA) int { return keyCompare(a.Header.Key(), b.Header.Key()) })
	return out
}

// ByType returns all LSAs of one type, sorted by key.
func (db *LSDB) ByType(t LSAType) []*LSA {
	var out []*LSA
	for _, l := range db.entries {
		if l.Header.Type == t {
			out = append(out, l)
		}
	}
	slices.SortFunc(out, func(a, b *LSA) int { return keyCompare(a.Header.Key(), b.Header.Key()) })
	return out
}

func keyCompare(a, b Key) int {
	if c := cmp.Compare(a.Type, b.Type); c != 0 {
		return c
	}
	if c := cmp.Compare(a.AdvRouter, b.AdvRouter); c != 0 {
		return c
	}
	return cmp.Compare(a.LSID, b.LSID)
}

// Digest returns a hash over (key, seq, age-class) of every entry; two
// routers with equal digests hold the same database instance-for-instance.
// Age is folded in only as "maxage or not" so that pure aging drift does
// not break convergence checks.
func (db *LSDB) Digest() [32]byte {
	keys := make([]Key, 0, len(db.entries))
	for k := range db.entries {
		keys = append(keys, k)
	}
	slices.SortFunc(keys, keyCompare)
	h := sha256.New()
	var buf [14]byte
	for _, k := range keys {
		l := db.entries[k]
		buf[0] = byte(k.Type)
		binary.BigEndian.PutUint32(buf[1:], uint32(k.AdvRouter))
		binary.BigEndian.PutUint32(buf[5:], k.LSID)
		binary.BigEndian.PutUint32(buf[9:], l.Header.Seq)
		buf[13] = 0
		if l.Header.Age >= MaxAgeSeconds {
			buf[13] = 1
		}
		h.Write(buf[:])
	}
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// String renders the database for debugging.
func (db *LSDB) String() string {
	var b strings.Builder
	for _, l := range db.All() {
		fmt.Fprintf(&b, "%s seq=%d age=%d", l.Header.Key(), l.Header.Seq, l.Header.Age)
		switch l.Header.Type {
		case TypeRouter:
			for _, rl := range l.RouterLinks {
				fmt.Fprintf(&b, " ->%d(%d)", rl.Neighbor, rl.Metric)
			}
		case TypePrefix:
			fmt.Fprintf(&b, " %v metric=%d", l.Prefix, l.Metric)
		case TypeFake:
			fmt.Fprintf(&b, " %v metric=%d attach=%d cost=%d via=%d",
				l.Prefix, l.Metric, l.AttachedTo, l.AttachCost, l.ForwardVia)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
