package ospf

import (
	"testing"
	"time"

	"fibbing.net/fibbing/internal/event"
	"fibbing.net/fibbing/internal/topo"
)

func newSched() *event.Scheduler { return event.NewScheduler() }

// TestLSAAgingExpiresStaleLies verifies MaxAge expiry: a lie injected with
// a nearly-expired age ages out everywhere and routing reverts — the
// protocol's self-healing against a crashed controller that never
// refreshes or withdraws its lies.
func TestLSAAgingExpiresStaleLies(t *testing.T) {
	tp, d := startFig1(t)
	inj := d.Router(tp.MustNode("R3"))
	lie := fig1cLies(tp)[0] // fB
	lie.Header.Age = MaxAgeSeconds - 30
	if err := inj.OriginateForeign(lie); err != nil {
		t.Fatal(err)
	}
	if _, err := d.RunUntilConverged(d.Scheduler().Now() + 60*time.Second); err != nil {
		t.Fatal(err)
	}
	if got := blueRoute(t, tp, d, "B"); got["R3"] != 1 {
		t.Fatalf("lie not active: %v", got)
	}

	// 30 virtual seconds later the lie reaches MaxAge; the next sweep
	// (60 s period) purges it on every router.
	d.Scheduler().RunUntil(d.Scheduler().Now() + 150*time.Second)
	if _, err := d.RunUntilConverged(d.Scheduler().Now() + 60*time.Second); err != nil {
		t.Fatal(err)
	}
	if got := blueRoute(t, tp, d, "B"); len(got) != 1 || got["R2"] != 1 {
		t.Fatalf("expired lie still routing: %v", got)
	}
	for n, r := range d.Routers() {
		if len(r.DB().ByType(TypeFake)) != 0 {
			t.Fatalf("%s still stores the expired lie", tp.Name(n))
		}
	}
}

// TestRefreshKeepsOwnLSAsAlive verifies the counterpart: self-originated
// LSAs are re-floods before MaxAge, so a healthy network never expires
// its own state.
func TestRefreshKeepsOwnLSAsAlive(t *testing.T) {
	tp := topo.Fig1(topo.Fig1Opts{})
	d := NewDomain(tp, newSched(), Config{
		RefreshPeriod: 100 * time.Second, // refresh well before MaxAge
		AgeSweep:      60 * time.Second,
	})
	d.Start()
	if _, err := d.RunUntilConverged(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Run one virtual hour: ages would hit MaxAge without refresh.
	d.Scheduler().RunUntil(3700 * time.Second)
	if _, err := d.RunUntilConverged(d.Scheduler().Now() + 120*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := d.ConvergedIdentically(); err != nil {
		t.Fatal(err)
	}
	// All routing state intact.
	if got := blueRoute(t, tp, d, "A"); len(got) != 1 || got["B"] != 1 {
		t.Fatalf("routing decayed: %v", got)
	}
	// Seq numbers advanced by the refreshes.
	b := d.Router(tp.MustNode("B"))
	lsa, ok := b.DB().Get(Key{Type: TypeRouter, AdvRouter: b.ID(), LSID: 0})
	if !ok || lsa.Header.Seq < 30 {
		t.Fatalf("refresh did not advance seq: %+v", lsa)
	}
}

// TestEffectiveAgeSaturates checks the aging arithmetic.
func TestEffectiveAgeSaturates(t *testing.T) {
	db := NewLSDB()
	now := time.Duration(0)
	db.SetClock(func() time.Duration { return now })
	l := &LSA{Header: Header{Type: TypePrefix, AdvRouter: 1, LSID: 0, Seq: 1, Age: 100}}
	db.Install(l)
	k := l.Header.Key()
	if got := db.EffectiveAge(k); got != 100 {
		t.Fatalf("age = %d, want 100", got)
	}
	now = 50 * time.Second
	if got := db.EffectiveAge(k); got != 150 {
		t.Fatalf("age = %d, want 150", got)
	}
	now = 100000 * time.Second
	if got := db.EffectiveAge(k); got != MaxAgeSeconds {
		t.Fatalf("age = %d, want saturation at %d", got, MaxAgeSeconds)
	}
	if exp := db.Expired(); len(exp) != 1 || exp[0] != k {
		t.Fatalf("Expired = %v", exp)
	}
	if got := db.EffectiveAge(Key{Type: TypeRouter, AdvRouter: 9}); got != MaxAgeSeconds {
		t.Fatalf("missing key age = %d", got)
	}
}
