package ospf

import (
	"testing"
	"time"

	"fibbing.net/fibbing/internal/event"
	"fibbing.net/fibbing/internal/topo"
)

// TestConvergenceUnderPacketLoss floods the Fig1 domain with 30% packet
// loss: retransmissions must still converge every LSDB identically.
func TestConvergenceUnderPacketLoss(t *testing.T) {
	tp := topo.Fig1(topo.Fig1Opts{})
	d := NewDomain(tp, event.NewScheduler(), Config{RxmtInterval: 500 * time.Millisecond})
	d.LossRate = 0.3
	d.Start()
	if _, err := d.RunUntilConverged(300 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := d.ConvergedIdentically(); err != nil {
		t.Fatal(err)
	}
	// Routing must be correct despite the losses.
	r := d.Router(tp.MustNode("A"))
	route, ok := r.FIB().Lookup(topo.Fig1BluePrefix.Addr())
	if !ok || len(route.NextHops) != 1 {
		t.Fatalf("A's route after lossy flooding: %+v, %v", route, ok)
	}
	// Loss must have actually caused retransmissions (more packets than
	// a clean run).
	clean := NewDomain(topo.Fig1(topo.Fig1Opts{}), event.NewScheduler(), Config{})
	clean.Start()
	if _, err := clean.RunUntilConverged(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	if d.Stats().PacketsSent <= clean.Stats().PacketsSent {
		t.Fatalf("lossy run sent %d packets, clean %d: retransmission untested",
			d.Stats().PacketsSent, clean.Stats().PacketsSent)
	}
}

// TestLieInjectionUnderPacketLoss verifies the Fibbing-specific path also
// survives loss: the fake LSA reaches B through retransmissions.
func TestLieInjectionUnderPacketLoss(t *testing.T) {
	tp := topo.Fig1(topo.Fig1Opts{})
	d := NewDomain(tp, event.NewScheduler(), Config{RxmtInterval: 500 * time.Millisecond})
	d.LossRate = 0.25
	d.Start()
	if _, err := d.RunUntilConverged(300 * time.Second); err != nil {
		t.Fatal(err)
	}
	inj := d.Router(tp.MustNode("R3"))
	if err := inj.OriginateForeign(fig1cLies(tp)[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := d.RunUntilConverged(d.Scheduler().Now() + 300*time.Second); err != nil {
		t.Fatal(err)
	}
	got := blueRoute(t, tp, d, "B")
	if got["R2"] != 1 || got["R3"] != 1 {
		t.Fatalf("B after lossy lie injection = %v", got)
	}
}

// TestFakeNextHopSurvivesLinkFailure pins the failure semantics of lies:
// when the link to a fake node's forwarding address dies, the lying
// router must stop using the fake path (no blackhole) and fall back to
// its real next hops; when the link heals, the fake path returns.
func TestFakeNextHopSurvivesLinkFailure(t *testing.T) {
	tp, d := startFig1(t)
	inj := d.Router(tp.MustNode("R3"))
	if err := inj.OriginateForeign(fig1cLies(tp)[0]); err != nil { // fB via R3
		t.Fatal(err)
	}
	if _, err := d.RunUntilConverged(d.Scheduler().Now() + 60*time.Second); err != nil {
		t.Fatal(err)
	}
	if got := blueRoute(t, tp, d, "B"); got["R3"] != 1 {
		t.Fatalf("precondition: fB not active: %v", got)
	}

	// Fail B-R3: the fake's forwarding address becomes unreachable.
	if err := d.SetLinkState(tp.MustNode("B"), tp.MustNode("R3"), false); err != nil {
		t.Fatal(err)
	}
	d.Scheduler().RunUntil(d.Scheduler().Now() + 10*time.Second)
	if _, err := d.RunUntilConverged(d.Scheduler().Now() + 60*time.Second); err != nil {
		t.Fatal(err)
	}
	got := blueRoute(t, tp, d, "B")
	if len(got) != 1 || got["R2"] != 1 {
		t.Fatalf("B after forwarding-address failure = %v, want R2 only", got)
	}

	// Heal: the fake path comes back without controller action.
	if err := d.SetLinkState(tp.MustNode("B"), tp.MustNode("R3"), true); err != nil {
		t.Fatal(err)
	}
	d.Scheduler().RunUntil(d.Scheduler().Now() + 10*time.Second)
	if _, err := d.RunUntilConverged(d.Scheduler().Now() + 60*time.Second); err != nil {
		t.Fatal(err)
	}
	got = blueRoute(t, tp, d, "B")
	if got["R2"] != 1 || got["R3"] != 1 {
		t.Fatalf("B after heal = %v, want R2+R3", got)
	}
}

// TestImpliedAck reproduces the retransmission livelock scenario directly:
// a router holding a stale instance keeps retransmitting it to a neighbor
// that already has a newer one; the neighbor's newer reply must clear the
// sender's retransmission state.
func TestImpliedAck(t *testing.T) {
	tp, d := startFig1(t)
	b := d.Router(tp.MustNode("B"))
	r2 := d.Router(tp.MustNode("R2"))

	// Simulate divergence: R2 holds a newer instance of B's router LSA
	// than B is flooding (as happens after partition heal).
	stale, ok := b.db.Get(Key{Type: TypeRouter, AdvRouter: b.id, LSID: 0})
	if !ok {
		t.Fatal("B has no router LSA")
	}
	newer := stale.Clone()
	newer.Header.Seq += 5
	r2.db.Install(newer)

	// B floods its stale instance directly to R2.
	var nbr *neighbor
	for _, n := range b.nbrs {
		if n.id == r2.id {
			nbr = n
		}
	}
	b.sendUpdate(nbr, stale)
	if _, err := d.RunUntilConverged(d.Scheduler().Now() + 60*time.Second); err != nil {
		t.Fatalf("livelock: %v", err)
	}
	if len(nbr.unacked) != 0 {
		t.Fatalf("unacked entries left: %d", len(nbr.unacked))
	}
	// B must have adopted the newer instance.
	if got, _ := b.db.Get(Key{Type: TypeRouter, AdvRouter: b.id, LSID: 0}); got.Header.Seq < newer.Header.Seq {
		t.Fatalf("B still at seq %d", got.Header.Seq)
	}
}
