package ospf

import (
	"net/netip"
	"testing"
	"time"

	"fibbing.net/fibbing/internal/event"
	"fibbing.net/fibbing/internal/fib"
	"fibbing.net/fibbing/internal/topo"
)

type fibFlowKey = fib.FlowKey

// startFig1 builds and converges a Fig1 IGP domain.
func startFig1(t testing.TB) (*topo.Topology, *Domain) {
	t.Helper()
	tp := topo.Fig1(topo.Fig1Opts{})
	sched := event.NewScheduler()
	d := NewDomain(tp, sched, Config{})
	d.Start()
	if _, err := d.RunUntilConverged(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := d.ConvergedIdentically(); err != nil {
		t.Fatal(err)
	}
	if len(d.Errors) > 0 {
		t.Fatalf("protocol errors: %v", d.Errors)
	}
	return tp, d
}

func blueAddr() netip.Addr { return netip.MustParseAddr("10.66.0.1") }

// nhNodes returns the next-hop node names and weights for a router's blue
// prefix route.
func blueRoute(t testing.TB, tp *topo.Topology, d *Domain, router string) map[string]int {
	t.Helper()
	r := d.Router(tp.MustNode(router))
	route, ok := r.FIB().Lookup(blueAddr())
	if !ok {
		t.Fatalf("%s has no route to blue", router)
	}
	out := map[string]int{}
	for _, nh := range route.NextHops {
		out[tp.Name(nh.Node)] += nh.Weight
	}
	return out
}

// TestFig1aRouting pins the paper's Figure 1a at the protocol level: after
// plain IGP convergence A forwards to blue via B, and B via R2, overlapping
// on B-R2-C.
func TestFig1aRouting(t *testing.T) {
	tp, d := startFig1(t)
	want := map[string]map[string]int{
		"A":  {"B": 1},
		"B":  {"R2": 1},
		"R1": {"R4": 1},
		"R2": {"C": 1},
		"R3": {"C": 1},
		"R4": {"C": 1},
	}
	for router, nhs := range want {
		got := blueRoute(t, tp, d, router)
		if len(got) != len(nhs) {
			t.Fatalf("%s blue next hops = %v, want %v", router, got, nhs)
		}
		for n, w := range nhs {
			if got[n] != w {
				t.Fatalf("%s blue next hops = %v, want %v", router, got, nhs)
			}
		}
	}
	// C must hold a local route.
	c := d.Router(tp.MustNode("C"))
	route, ok := c.FIB().Lookup(blueAddr())
	if !ok || !route.Local {
		t.Fatalf("C's blue route = %+v, %v; want local", route, ok)
	}
}

func TestLoopbacksRouted(t *testing.T) {
	tp, d := startFig1(t)
	// Every router can reach every other router's loopback.
	for _, from := range tp.Nodes() {
		for _, to := range tp.Nodes() {
			if from.ID == to.ID {
				continue
			}
			r := d.Router(from.ID)
			route, ok := r.FIB().Lookup(Loopback(to.ID))
			if !ok {
				t.Fatalf("%s has no route to %s's loopback", from.Name, to.Name)
			}
			if route.Local {
				t.Fatalf("%s thinks %s's loopback is local", from.Name, to.Name)
			}
		}
	}
}

func TestPlaneTraceDelivers(t *testing.T) {
	tp, d := startFig1(t)
	plane := d.Plane()
	key := fibKey(blueAddr(), 1234)
	path, err := plane.Trace(tp.MustNode("A"), key)
	if err != nil {
		t.Fatal(err)
	}
	wantPath := []string{"A", "B", "R2", "C"}
	if len(path) != len(wantPath) {
		t.Fatalf("path = %v", names(tp, path))
	}
	for i, n := range wantPath {
		if tp.Name(path[i]) != n {
			t.Fatalf("path = %v, want %v", names(tp, path), wantPath)
		}
	}
}

// fig1cLies returns the paper's Figure 1c lies: fB (total cost 2 via R3)
// and two copies of fA (total cost 3 via R1).
func fig1cLies(tp *topo.Topology) []*LSA {
	blue := topo.Fig1BluePrefix
	a := NodeRouterID(tp.MustNode("A"))
	b := NodeRouterID(tp.MustNode("B"))
	r1 := NodeRouterID(tp.MustNode("R1"))
	r3 := NodeRouterID(tp.MustNode("R3"))
	return []*LSA{
		{
			Header: Header{Type: TypeFake, AdvRouter: ControllerIDBase, LSID: 1, Seq: 1},
			Prefix: blue, Metric: 1, AttachedTo: b, AttachCost: 1, ForwardVia: r3,
		},
		{
			Header: Header{Type: TypeFake, AdvRouter: ControllerIDBase, LSID: 2, Seq: 1},
			Prefix: blue, Metric: 2, AttachedTo: a, AttachCost: 1, ForwardVia: r1,
		},
		{
			Header: Header{Type: TypeFake, AdvRouter: ControllerIDBase, LSID: 3, Seq: 1},
			Prefix: blue, Metric: 2, AttachedTo: a, AttachCost: 1, ForwardVia: r1,
		},
	}
}

// TestFig1cFakeTopology reproduces the paper's Figure 1c/1d control plane:
// after injecting fB, B load-balances evenly over R2 and R3; after
// injecting two fA nodes, A splits 1:2 between B and R1. No other router
// changes its route.
func TestFig1cFakeTopology(t *testing.T) {
	tp, d := startFig1(t)
	inj := d.Router(tp.MustNode("R3")) // controller connects to R3, as in the demo

	lies := fig1cLies(tp)
	// First lie: ECMP at B.
	if err := inj.OriginateForeign(lies[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := d.RunUntilConverged(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	got := blueRoute(t, tp, d, "B")
	if got["R2"] != 1 || got["R3"] != 1 || len(got) != 2 {
		t.Fatalf("B after fB = %v, want R2:1 R3:1", got)
	}
	if a := blueRoute(t, tp, d, "A"); len(a) != 1 || a["B"] != 1 {
		t.Fatalf("A changed unexpectedly after fB: %v", a)
	}

	// Second and third lies: uneven split at A.
	if err := inj.OriginateForeign(lies[1]); err != nil {
		t.Fatal(err)
	}
	if err := inj.OriginateForeign(lies[2]); err != nil {
		t.Fatal(err)
	}
	if _, err := d.RunUntilConverged(120 * time.Second); err != nil {
		t.Fatal(err)
	}
	gotA := blueRoute(t, tp, d, "A")
	if gotA["B"] != 1 || gotA["R1"] != 2 || len(gotA) != 2 {
		t.Fatalf("A after 2xfA = %v, want B:1 R1:2", gotA)
	}
	// Downstream routers unchanged.
	for router, want := range map[string]string{"R1": "R4", "R2": "C", "R3": "C", "R4": "C"} {
		got := blueRoute(t, tp, d, router)
		if len(got) != 1 || got[want] != 1 {
			t.Fatalf("%s changed unexpectedly: %v", router, got)
		}
	}
	if err := d.ConvergedIdentically(); err != nil {
		t.Fatal(err)
	}
	if len(d.Errors) > 0 {
		t.Fatalf("protocol errors: %v", d.Errors)
	}
}

// TestFakeWithdrawal verifies that flushing lies (MaxAge re-origination)
// restores the original routing.
func TestFakeWithdrawal(t *testing.T) {
	tp, d := startFig1(t)
	inj := d.Router(tp.MustNode("R3"))
	lies := fig1cLies(tp)
	for _, l := range lies {
		if err := inj.OriginateForeign(l); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.RunUntilConverged(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Withdraw all lies.
	for _, l := range lies {
		w := l.Clone()
		w.Header.Age = MaxAgeSeconds
		if err := inj.OriginateForeign(w); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.RunUntilConverged(120 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := blueRoute(t, tp, d, "B"); len(got) != 1 || got["R2"] != 1 {
		t.Fatalf("B after withdrawal = %v, want R2 only", got)
	}
	if got := blueRoute(t, tp, d, "A"); len(got) != 1 || got["B"] != 1 {
		t.Fatalf("A after withdrawal = %v, want B only", got)
	}
	// Fake LSAs must be gone from every database.
	for n, r := range d.Routers() {
		if len(r.DB().ByType(TypeFake)) != 0 {
			t.Fatalf("%s still holds fake LSAs", tp.Name(n))
		}
	}
}

// TestLinkFailureReroute fails B-R2 and verifies B reroutes to blue via R3
// after the dead interval.
func TestLinkFailureReroute(t *testing.T) {
	tp, d := startFig1(t)
	if err := d.SetLinkState(tp.MustNode("B"), tp.MustNode("R2"), false); err != nil {
		t.Fatal(err)
	}
	// Let hellos time out (dead interval 4s) and the network reconverge.
	d.Scheduler().RunUntil(d.Scheduler().Now() + 10*time.Second)
	if _, err := d.RunUntilConverged(d.Scheduler().Now() + 60*time.Second); err != nil {
		t.Fatal(err)
	}
	if got := blueRoute(t, tp, d, "B"); len(got) != 1 || got["R3"] != 1 {
		t.Fatalf("B after B-R2 failure = %v, want R3", got)
	}
	// Heal: hellos re-form the adjacency and routing reverts.
	if err := d.SetLinkState(tp.MustNode("B"), tp.MustNode("R2"), true); err != nil {
		t.Fatal(err)
	}
	d.Scheduler().RunUntil(d.Scheduler().Now() + 10*time.Second)
	if _, err := d.RunUntilConverged(d.Scheduler().Now() + 60*time.Second); err != nil {
		t.Fatal(err)
	}
	if got := blueRoute(t, tp, d, "B"); len(got) != 1 || got["R2"] != 1 {
		t.Fatalf("B after heal = %v, want R2", got)
	}
}

func TestOriginateForeignRejectsStale(t *testing.T) {
	tp, d := startFig1(t)
	inj := d.Router(tp.MustNode("R3"))
	l := fig1cLies(tp)[0]
	if err := inj.OriginateForeign(l); err != nil {
		t.Fatal(err)
	}
	if err := inj.OriginateForeign(l.Clone()); err == nil {
		t.Fatalf("same-seq re-origination accepted")
	}
	bad := l.Clone()
	bad.Header.AdvRouter = 0
	if err := inj.OriginateForeign(bad); err == nil {
		t.Fatalf("LSA without origin accepted")
	}
}

func TestInvalidForwardingAddressReported(t *testing.T) {
	tp, d := startFig1(t)
	inj := d.Router(tp.MustNode("R3"))
	lie := &LSA{
		Header:     Header{Type: TypeFake, AdvRouter: ControllerIDBase, LSID: 9, Seq: 1},
		Prefix:     topo.Fig1BluePrefix,
		Metric:     1,
		AttachedTo: NodeRouterID(tp.MustNode("B")),
		AttachCost: 1,
		ForwardVia: NodeRouterID(tp.MustNode("R4")), // not B's neighbor
	}
	if err := inj.OriginateForeign(lie); err != nil {
		t.Fatal(err)
	}
	if _, err := d.RunUntilConverged(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(d.Errors) == 0 {
		t.Fatalf("invalid forwarding address not reported")
	}
	// B's routing must be unaffected by the invalid lie.
	if got := blueRoute(t, tp, d, "B"); len(got) != 1 || got["R2"] != 1 {
		t.Fatalf("B = %v after invalid lie", got)
	}
}

func TestStatsAccumulate(t *testing.T) {
	_, d := startFig1(t)
	s := d.Stats()
	if s.PacketsSent == 0 || s.BytesSent == 0 || s.SPFRuns == 0 {
		t.Fatalf("stats empty: %+v", s)
	}
	// LSDB: 7 router LSAs + 7 loopback prefix LSAs + 1 blue prefix LSA.
	if s.LSDBSize != 15 {
		t.Fatalf("LSDB size = %d, want 15", s.LSDBSize)
	}
}

func TestConvergenceOnRandomTopology(t *testing.T) {
	tp := topo.RandomConnected(topo.RandomOpts{Nodes: 20, Degree: 3, Prefixes: 2, Seed: 3})
	sched := event.NewScheduler()
	d := NewDomain(tp, sched, Config{})
	d.Start()
	if _, err := d.RunUntilConverged(120 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := d.ConvergedIdentically(); err != nil {
		t.Fatal(err)
	}
	// All routers agree on routes to both prefixes.
	for _, p := range tp.Prefixes() {
		addr := HostAddr(p.Prefix, 0)
		for n, r := range d.Routers() {
			if _, ok := r.FIB().Lookup(addr); !ok {
				t.Fatalf("%s has no route to %v", tp.Name(n), p.Prefix)
			}
		}
	}
}

func fibKey(dst netip.Addr, port uint16) fibFlowKey {
	return fibFlowKey{Src: netip.MustParseAddr("10.0.0.1"), Dst: dst, SrcPort: port, DstPort: 80, Proto: 6}
}

func names(tp *topo.Topology, ids []topo.NodeID) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = tp.Name(id)
	}
	return out
}

func BenchmarkFloodingConvergenceFig1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tp := topo.Fig1(topo.Fig1Opts{})
		d := NewDomain(tp, event.NewScheduler(), Config{})
		d.Start()
		if _, err := d.RunUntilConverged(60 * time.Second); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFloodingConvergence50(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tp := topo.RandomConnected(topo.RandomOpts{Nodes: 50, Degree: 3, Prefixes: 1, Seed: 1})
		d := NewDomain(tp, event.NewScheduler(), Config{})
		d.Start()
		if _, err := d.RunUntilConverged(300 * time.Second); err != nil {
			b.Fatal(err)
		}
	}
}
