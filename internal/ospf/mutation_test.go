package ospf

import (
	"math/rand"
	"net/netip"
	"testing"
	"time"
)

// Decoders face attacker-controlled bytes in a real deployment; they must
// reject garbage with errors, never panic or over-read.

func TestDecodeLSANeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	valid := (&LSA{
		Header: Header{Type: TypeFake, AdvRouter: ControllerIDBase, LSID: 1, Seq: 1},
		Prefix: netip.MustParsePrefix("10.66.0.0/16"),
		Metric: 2, AttachedTo: 3, AttachCost: 1, ForwardVia: 6,
	}).Encode()
	for i := 0; i < 20000; i++ {
		buf := append([]byte(nil), valid...)
		// Mutate 1-4 random bytes.
		for m := 0; m <= rng.Intn(4); m++ {
			buf[rng.Intn(len(buf))] ^= byte(1 << rng.Intn(8))
		}
		// Random truncation sometimes.
		if rng.Intn(3) == 0 {
			buf = buf[:rng.Intn(len(buf)+1)]
		}
		_, _ = DecodeLSA(buf) // must not panic
	}
	// Pure noise as well.
	for i := 0; i < 5000; i++ {
		buf := make([]byte, rng.Intn(64))
		rng.Read(buf)
		_, _ = DecodeLSA(buf)
	}
}

func TestDecodePacketNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	lsa := &LSA{
		Header: Header{Type: TypePrefix, AdvRouter: 2, LSID: 0, Seq: 9},
		Prefix: netip.MustParsePrefix("10.0.0.0/8"),
	}
	valid := (&Packet{Type: PktLSUpdate, From: 2, LSAs: []*LSA{lsa, lsa}}).Encode()
	for i := 0; i < 20000; i++ {
		buf := append([]byte(nil), valid...)
		for m := 0; m <= rng.Intn(4); m++ {
			buf[rng.Intn(len(buf))] ^= byte(1 << rng.Intn(8))
		}
		if rng.Intn(3) == 0 {
			buf = buf[:rng.Intn(len(buf)+1)]
		}
		_, _ = DecodePacket(buf)
	}
	for i := 0; i < 5000; i++ {
		buf := make([]byte, rng.Intn(96))
		rng.Read(buf)
		_, _ = DecodePacket(buf)
	}
}

// TestRouterSurvivesGarbagePackets feeds mutated packets into a live
// router: protocol errors must be recorded, the domain must stay healthy.
func TestRouterSurvivesGarbagePackets(t *testing.T) {
	tp, d := startFig1(t)
	b := d.Router(tp.MustNode("B"))
	a := d.Router(tp.MustNode("A"))
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 500; i++ {
		buf := make([]byte, rng.Intn(64))
		rng.Read(buf)
		b.HandlePacket(a.ID(), buf)
	}
	if len(d.Errors) == 0 {
		t.Fatalf("garbage produced no protocol errors")
	}
	d.Errors = nil
	// The network still works.
	if _, err := d.RunUntilConverged(d.Scheduler().Now() + 60*time.Second); err != nil {
		t.Fatal(err)
	}
	if got := blueRoute(t, tp, d, "B"); got["R2"] != 1 {
		t.Fatalf("routing damaged by garbage: %v", got)
	}
}
