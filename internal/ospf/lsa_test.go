package ospf

import (
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"

	"fibbing.net/fibbing/internal/topo"
)

func TestRouterLSARoundTrip(t *testing.T) {
	l := &LSA{
		Header: Header{Type: TypeRouter, Age: 7, AdvRouter: 3, LSID: 0, Seq: 42},
		RouterLinks: []RouterLink{
			{Neighbor: 1, Metric: 2},
			{Neighbor: 9, Metric: 100},
		},
	}
	enc := l.Encode()
	got, err := DecodeLSA(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Header.Type != TypeRouter || got.Header.AdvRouter != 3 || got.Header.Seq != 42 || got.Header.Age != 7 {
		t.Fatalf("header = %+v", got.Header)
	}
	if len(got.RouterLinks) != 2 || got.RouterLinks[1] != (RouterLink{Neighbor: 9, Metric: 100}) {
		t.Fatalf("links = %+v", got.RouterLinks)
	}
}

func TestPrefixLSARoundTrip(t *testing.T) {
	l := &LSA{
		Header: Header{Type: TypePrefix, AdvRouter: 7, LSID: 1, Seq: 3},
		Prefix: netip.MustParsePrefix("10.66.0.0/16"),
		Metric: 5,
	}
	got, err := DecodeLSA(l.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Prefix != l.Prefix || got.Metric != 5 {
		t.Fatalf("got %+v", got)
	}
}

func TestFakeLSARoundTrip(t *testing.T) {
	l := &LSA{
		Header:     Header{Type: TypeFake, AdvRouter: uint32ID(ControllerIDBase), LSID: 2, Seq: 1},
		Prefix:     netip.MustParsePrefix("10.66.0.0/16"),
		Metric:     2,
		AttachedTo: 2,
		AttachCost: 1,
		ForwardVia: 5,
	}
	got, err := DecodeLSA(l.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.AttachedTo != 2 || got.AttachCost != 1 || got.ForwardVia != 5 || got.Metric != 2 {
		t.Fatalf("got %+v", got)
	}
	if got.Header.AdvRouter != ControllerIDBase {
		t.Fatalf("adv router = %v", got.Header.AdvRouter)
	}
}

func uint32ID(r RouterID) RouterID { return r }

func TestIPv6PrefixLSA(t *testing.T) {
	l := &LSA{
		Header: Header{Type: TypePrefix, AdvRouter: 1, LSID: 9, Seq: 1},
		Prefix: netip.MustParsePrefix("2001:db8::/32"),
		Metric: 1,
	}
	got, err := DecodeLSA(l.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Prefix != l.Prefix {
		t.Fatalf("v6 prefix = %v", got.Prefix)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	l := &LSA{
		Header: Header{Type: TypePrefix, AdvRouter: 7, LSID: 1, Seq: 3},
		Prefix: netip.MustParsePrefix("10.66.0.0/16"),
		Metric: 5,
	}
	enc := l.Encode()

	// Flip a body byte: checksum must catch it.
	bad := append([]byte(nil), enc...)
	bad[len(bad)-1] ^= 0xFF
	if _, err := DecodeLSA(bad); err == nil {
		t.Fatalf("corrupted body accepted")
	}

	// Truncate.
	if _, err := DecodeLSA(enc[:10]); err == nil {
		t.Fatalf("truncated LSA accepted")
	}
	if _, err := DecodeLSA(enc[:len(enc)-1]); err == nil {
		t.Fatalf("short LSA accepted")
	}

	// Unknown type.
	bad2 := append([]byte(nil), enc...)
	bad2[0] = 99
	if _, err := DecodeLSA(bad2); err == nil {
		t.Fatalf("unknown type accepted")
	}
}

func TestAgeExcludedFromChecksum(t *testing.T) {
	l := &LSA{
		Header: Header{Type: TypePrefix, AdvRouter: 7, LSID: 1, Seq: 3},
		Prefix: netip.MustParsePrefix("10.0.0.0/8"),
	}
	enc := l.Encode()
	// Bump the age in place, as an aging router would.
	enc[2], enc[3] = 0x0E, 0x10 // age 3600
	got, err := DecodeLSA(enc)
	if err != nil {
		t.Fatalf("aged LSA rejected: %v", err)
	}
	if got.Header.Age != MaxAgeSeconds {
		t.Fatalf("age = %d", got.Header.Age)
	}
}

func TestFletcher16(t *testing.T) {
	if Fletcher16(nil) != 0 {
		t.Fatalf("empty checksum != 0")
	}
	a := Fletcher16([]byte{1, 2, 3})
	b := Fletcher16([]byte{1, 2, 4})
	c := Fletcher16([]byte{1, 3, 2}) // order matters for Fletcher
	if a == b || a == c {
		t.Fatalf("checksum collisions on trivial changes: %x %x %x", a, b, c)
	}
}

func TestHeaderNewer(t *testing.T) {
	base := Header{Seq: 5, Age: 10}
	if !(Header{Seq: 6}).Newer(base) {
		t.Fatalf("higher seq should be newer")
	}
	if (Header{Seq: 4}).Newer(base) {
		t.Fatalf("lower seq should not be newer")
	}
	if (Header{Seq: 5, Age: 20}).Newer(base) {
		t.Fatalf("same seq, non-maxage should not be newer")
	}
	if !(Header{Seq: 5, Age: MaxAgeSeconds}).Newer(base) {
		t.Fatalf("maxage at same seq should supersede (withdrawal)")
	}
	if (Header{Seq: 5, Age: 10}).Newer(Header{Seq: 5, Age: MaxAgeSeconds}) {
		t.Fatalf("young instance should not supersede maxage at same seq")
	}
}

func TestPacketRoundTrip(t *testing.T) {
	lsa := &LSA{
		Header: Header{Type: TypePrefix, AdvRouter: 1, LSID: 0, Seq: 1},
		Prefix: netip.MustParsePrefix("10.0.1.0/24"),
	}
	for _, pkt := range []*Packet{
		{Type: PktHello, From: 3},
		{Type: PktLSUpdate, From: 4, LSAs: []*LSA{lsa, lsa}},
		{Type: PktLSAck, From: 5, Acks: []Header{{Type: TypePrefix, AdvRouter: 1, LSID: 0, Seq: 1}}},
	} {
		got, err := DecodePacket(pkt.Encode())
		if err != nil {
			t.Fatalf("%v: %v", pkt.Type, err)
		}
		if got.Type != pkt.Type || got.From != pkt.From {
			t.Fatalf("header mismatch: %+v", got)
		}
		if len(got.LSAs) != len(pkt.LSAs) || len(got.Acks) != len(pkt.Acks) {
			t.Fatalf("payload mismatch: %+v", got)
		}
	}
}

func TestDecodePacketRejectsGarbage(t *testing.T) {
	if _, err := DecodePacket(nil); err == nil {
		t.Fatalf("nil accepted")
	}
	if _, err := DecodePacket([]byte{9, 0, 0, 0, 1, 0, 0}); err == nil {
		t.Fatalf("unknown type accepted")
	}
	// Update claiming 1 LSA with no payload.
	if _, err := DecodePacket([]byte{byte(PktLSUpdate), 0, 0, 0, 1, 0, 1}); err == nil {
		t.Fatalf("truncated update accepted")
	}
}

// Property: random router LSAs survive an encode/decode round trip.
func TestLSARoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := &LSA{Header: Header{
			Type:      TypeRouter,
			Age:       uint16(rng.Intn(3600)),
			AdvRouter: RouterID(rng.Uint32()),
			LSID:      rng.Uint32(),
			Seq:       rng.Uint32(),
		}}
		for i := 0; i < rng.Intn(20); i++ {
			l.RouterLinks = append(l.RouterLinks, RouterLink{
				Neighbor: RouterID(rng.Uint32()),
				Metric:   rng.Uint32(),
			})
		}
		got, err := DecodeLSA(l.Encode())
		if err != nil {
			return false
		}
		if got.Header.AdvRouter != l.Header.AdvRouter || got.Header.Seq != l.Header.Seq {
			return false
		}
		if len(got.RouterLinks) != len(l.RouterLinks) {
			return false
		}
		for i := range l.RouterLinks {
			if got.RouterLinks[i] != l.RouterLinks[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRouterIDMapping(t *testing.T) {
	for _, n := range []topo.NodeID{0, 1, 255, 1000} {
		if RouterNode(NodeRouterID(n)) != n {
			t.Fatalf("round trip failed for %d", n)
		}
	}
	if NodeRouterID(0) == 0 {
		t.Fatalf("RouterID 0 must stay invalid")
	}
	if !ControllerIDBase.IsController() || NodeRouterID(5).IsController() {
		t.Fatalf("controller ID classification wrong")
	}
}

func TestLoopbackAddressing(t *testing.T) {
	a, b := Loopback(0), Loopback(1)
	if a == b {
		t.Fatalf("loopbacks collide")
	}
	if !LoopbackPrefix(0).Contains(a) {
		t.Fatalf("loopback prefix does not contain loopback")
	}
	if LoopbackPrefix(0).Bits() != 32 {
		t.Fatalf("loopback prefix not /32")
	}
}

func TestHostAddr(t *testing.T) {
	p := netip.MustParsePrefix("10.66.0.0/16")
	seen := map[netip.Addr]bool{}
	for i := 0; i < 100; i++ {
		a := HostAddr(p, i)
		if !p.Contains(a) {
			t.Fatalf("host addr %v outside prefix", a)
		}
		if seen[a] {
			t.Fatalf("duplicate host addr %v", a)
		}
		seen[a] = true
	}
}

func BenchmarkLSAEncode(b *testing.B) {
	l := &LSA{
		Header:      Header{Type: TypeRouter, AdvRouter: 3, Seq: 42},
		RouterLinks: []RouterLink{{1, 2}, {9, 100}, {4, 7}},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Encode()
	}
}

func BenchmarkLSADecode(b *testing.B) {
	l := &LSA{
		Header:      Header{Type: TypeRouter, AdvRouter: 3, Seq: 42},
		RouterLinks: []RouterLink{{1, 2}, {9, 100}, {4, 7}},
	}
	enc := l.Encode()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeLSA(enc); err != nil {
			b.Fatal(err)
		}
	}
}
