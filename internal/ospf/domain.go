package ospf

import (
	"fmt"
	"math/rand"
	"time"

	"fibbing.net/fibbing/internal/event"
	"fibbing.net/fibbing/internal/fib"
	"fibbing.net/fibbing/internal/topo"
)

// Domain is one IGP flooding domain: all routers of a topology, their
// adjacencies, and the virtual-time transport connecting them.
type Domain struct {
	topo  *topo.Topology
	sched *event.Scheduler
	cfg   Config

	routers map[topo.NodeID]*Router

	// linkDown marks administratively failed links (both directions are
	// keyed individually so asymmetric failures are expressible).
	linkDown map[topo.LinkID]bool

	inflight   int // undelivered or in-processing protocol messages
	spfPending int

	// LossRate drops protocol packets at random (deterministic rng) to
	// exercise the retransmission machinery. Hellos are never dropped so
	// adjacencies stay up; set it before Start.
	LossRate float64
	lossRng  *rand.Rand

	// OnFIBChange, when set, is invoked whenever a router installs a new
	// FIB (the data-plane simulator subscribes to reroute flows).
	OnFIBChange func(n topo.NodeID, t *fib.Table)

	// OnFIBDelta, when set, additionally receives the diff that produced
	// the new table, so subscribers can re-path only the flows whose
	// destinations changed (netsim.Network.ApplyDiff). Routers only emit
	// non-empty diffs: a recomputation that reproduces the same routes is
	// silent.
	OnFIBDelta func(n topo.NodeID, t *fib.Table, d *fib.Diff)

	// OnAdjacencyChange, when set, is invoked when a router declares a
	// neighbor dead (after the dead interval) or re-forms a previously
	// dead adjacency. The link is directed detector -> neighbor; a
	// symmetric failure fires once per endpoint. This is the IGP-visible
	// topology feed a fibbing controller gets for free by participating
	// in flooding — failure news at dead-interval timescale (the
	// internal/bfd liveness engine is the fast alternative).
	OnAdjacencyChange func(l topo.Link, up bool)

	// Errors collects protocol-level errors (bad packets, invalid lies).
	Errors []error

	// bufPool recycles packet encode buffers: a delivered packet's bytes
	// are dead once HandlePacket returns (DecodePacket copies every field
	// out), so flooding stops churning the allocator. The pool is touched
	// only from scheduler events — never from SPF compute phases — so no
	// locking is needed.
	bufPool [][]byte

	defaultDelay time.Duration
}

// getBuf returns an empty slice with recycled capacity for AppendEncode.
func (d *Domain) getBuf() []byte {
	if n := len(d.bufPool); n > 0 {
		b := d.bufPool[n-1]
		d.bufPool[n-1] = nil
		d.bufPool = d.bufPool[:n-1]
		return b[:0]
	}
	return nil
}

func (d *Domain) putBuf(b []byte) {
	if cap(b) > 0 {
		d.bufPool = append(d.bufPool, b)
	}
}

// NewDomain builds the IGP domain for a topology: one router per non-host
// node and one adjacency per directed link between routers. It does not
// start the protocol; call Start.
func NewDomain(t *topo.Topology, sched *event.Scheduler, cfg Config) *Domain {
	d := &Domain{
		topo:         t,
		sched:        sched,
		cfg:          cfg.withDefaults(),
		routers:      make(map[topo.NodeID]*Router),
		linkDown:     make(map[topo.LinkID]bool),
		defaultDelay: time.Millisecond,
	}
	for _, n := range t.Nodes() {
		if n.Host {
			continue
		}
		d.routers[n.ID] = newRouter(d, n.ID, d.cfg)
	}
	for _, l := range t.Links() {
		if d.routers[l.From] == nil || d.routers[l.To] == nil {
			continue // host access links carry no IGP
		}
		d.routers[l.From].addNeighbor(l)
	}
	return d
}

// Router returns the router at a node (nil for hosts).
func (d *Domain) Router(n topo.NodeID) *Router { return d.routers[n] }

// Routers returns all routers keyed by node.
func (d *Domain) Routers() map[topo.NodeID]*Router { return d.routers }

// Scheduler returns the domain's event scheduler.
func (d *Domain) Scheduler() *event.Scheduler { return d.sched }

// Topology returns the domain's topology.
func (d *Domain) Topology() *topo.Topology { return d.topo }

// Start brings the protocol up: every router originates its Router LSA,
// the loopback prefix, and Prefix LSAs for topology prefixes attached to
// it; hello and refresh timers start ticking.
func (d *Domain) Start() {
	// Walk routers in topology-node order, not map order: origination and
	// ticker phase are output-visible, and two runs of the same scenario
	// must schedule identical event sequences.
	for _, n := range d.topo.Nodes() {
		r := d.routers[n.ID]
		if r == nil {
			continue
		}
		r.originateRouterLSA()
		r.originatePrefix(0, topo.Prefix{Prefix: LoopbackPrefix(r.node)}, 0)
		d.sched.NewTicker(d.cfg.HelloInterval, r.helloTick)
		d.sched.NewTicker(d.cfg.RefreshPeriod, r.refreshOwn)
		d.sched.NewTicker(d.cfg.AgeSweep, r.ageSweep)
	}
	for i, p := range d.topo.Prefixes() {
		for _, a := range p.Attachments {
			r := d.routers[a.Node]
			if r == nil {
				continue
			}
			// LSID 0 is the loopback; topology prefixes start at 1.
			r.originatePrefix(uint32(i)+1, p, a.Cost)
		}
	}
}

// deliver schedules a packet for processing at the receiving router after
// the link's propagation delay. Packets on failed links are dropped.
func (d *Domain) deliver(from RouterID, n *neighbor, data []byte, counts bool) {
	if d.linkDown[n.link.ID] {
		d.putBuf(data)
		return
	}
	if d.LossRate > 0 && counts {
		if d.lossRng == nil {
			d.lossRng = rand.New(rand.NewSource(0xf1bb))
		}
		if d.lossRng.Float64() < d.LossRate {
			d.putBuf(data) // lost on the wire; retransmission recovers it
			return
		}
	}
	delay := n.link.Delay
	if delay <= 0 {
		delay = d.defaultDelay
	}
	if counts {
		d.inflight++
	}
	to := d.routers[n.node]
	d.sched.After(delay, func() {
		if counts {
			d.inflight--
		}
		if to != nil && !d.linkDown[n.link.ID] {
			to.HandlePacket(from, data)
		}
		d.putBuf(data)
	})
}

func (d *Domain) protocolError(at RouterID, err error) {
	d.Errors = append(d.Errors, fmt.Errorf("router %d: %w", at, err))
}

func (d *Domain) adjacencyChanged(l topo.Link, up bool) {
	if d.OnAdjacencyChange != nil {
		d.OnAdjacencyChange(l, up)
	}
}

func (d *Domain) fibChanged(n topo.NodeID, t *fib.Table, diff *fib.Diff) {
	if d.OnFIBDelta != nil {
		d.OnFIBDelta(n, t, diff)
	} else if d.OnFIBChange != nil {
		d.OnFIBChange(n, t)
	}
}

// SetLinkWeight reconfigures the IGP metric of the link a->b (and its
// reverse) and makes both routers re-originate their Router LSAs — the
// per-device reconfiguration step of traditional weight-based TE. The
// whole network re-floods and re-runs SPF, which is exactly the cost the
// paper's §1 argues makes weight changes too slow for flash crowds.
func (d *Domain) SetLinkWeight(a, b topo.NodeID, w int64) error {
	l, ok := d.topo.FindLink(a, b)
	if !ok {
		return fmt.Errorf("ospf: no link %d-%d", a, b)
	}
	d.topo.SetWeight(l.ID, w)
	if l.Reverse != topo.NoLink {
		d.topo.SetWeight(l.Reverse, w)
	}
	for _, end := range [2]topo.NodeID{a, b} {
		r := d.routers[end]
		if r == nil {
			continue
		}
		for _, n := range r.nbrs {
			if n.link.ID == l.ID || n.link.ID == l.Reverse {
				n.link.Weight = w
			}
		}
		r.originateRouterLSA()
	}
	return nil
}

// SetLinkState administratively fails or heals both directions of a link.
// Failure is detected by the dead-interval timeout, as in a real IGP
// without BFD.
func (d *Domain) SetLinkState(a, b topo.NodeID, up bool) error {
	l, ok := d.topo.FindLink(a, b)
	if !ok {
		return fmt.Errorf("ospf: no link %d-%d", a, b)
	}
	d.linkDown[l.ID] = !up
	if l.Reverse != topo.NoLink {
		d.linkDown[l.Reverse] = !up
	}
	return nil
}

// LinkBlocked reports whether a directed link is administratively failed
// (packets on it are silently dropped). Liveness probes (internal/bfd)
// use it as the transport ground truth instead of exchanging real
// packets through the flooding machinery.
func (d *Domain) LinkBlocked(id topo.LinkID) bool { return d.linkDown[id] }

// Converged reports whether no protocol messages are in flight, no SPF
// runs are pending, and every flooded LSA has been acknowledged (so lost
// updates with pending retransmissions count as not converged). Hello
// traffic does not affect convergence.
func (d *Domain) Converged() bool {
	if d.inflight != 0 || d.spfPending != 0 {
		return false
	}
	for _, r := range d.routers {
		for _, n := range r.nbrs {
			if n.up && len(n.unacked) > 0 {
				return false
			}
		}
	}
	return true
}

// RunUntilConverged steps the scheduler until the domain converges or the
// virtual clock passes limit. It returns the convergence time.
func (d *Domain) RunUntilConverged(limit time.Duration) (time.Duration, error) {
	for !d.Converged() {
		if !d.sched.StepBatch() {
			break
		}
		if d.sched.Now() > limit {
			return d.sched.Now(), fmt.Errorf("ospf: not converged after %v (inflight=%d spf=%d)",
				limit, d.inflight, d.spfPending)
		}
	}
	return d.sched.Now(), nil
}

// ConvergedIdentically verifies that every router holds the same LSDB.
func (d *Domain) ConvergedIdentically() error {
	var ref [32]byte
	var refNode topo.NodeID = topo.NoNode
	for n, r := range d.routers {
		dig := r.db.Digest()
		if refNode == topo.NoNode {
			ref, refNode = dig, n
			continue
		}
		if dig != ref {
			return fmt.Errorf("ospf: LSDB of %s differs from %s",
				d.topo.Name(n), d.topo.Name(refNode))
		}
	}
	return nil
}

// Plane snapshots all routers' FIBs into a forwarding plane for tracing.
func (d *Domain) Plane() *fib.Plane {
	p := fib.NewPlane()
	for n, r := range d.routers {
		p.Tables[n] = r.FIB()
	}
	return p
}

// ControlPlaneStats aggregates protocol counters for the overhead
// experiments.
type ControlPlaneStats struct {
	PacketsSent uint64
	BytesSent   uint64
	SPFRuns     uint64
	// SPFFullRuns and SPFIncrementalRuns split SPFRuns by strategy: full
	// graph rebuilds versus delta-pipeline recomputations.
	SPFFullRuns        uint64
	SPFIncrementalRuns uint64
	LSDBSize           int
}

// Stats sums protocol counters over all routers.
func (d *Domain) Stats() ControlPlaneStats {
	var s ControlPlaneStats
	for _, r := range d.routers {
		s.PacketsSent += r.PacketsSent
		s.BytesSent += r.BytesSent
		s.SPFRuns += r.spfRuns
		s.SPFFullRuns += r.spfFullRuns
		s.SPFIncrementalRuns += r.spfIncRuns
		if r.db.Len() > s.LSDBSize {
			s.LSDBSize = r.db.Len()
		}
	}
	return s
}
