package ospf

import (
	"fmt"
	"time"

	"fibbing.net/fibbing/internal/event"
	"fibbing.net/fibbing/internal/fib"
	"fibbing.net/fibbing/internal/spf"
	"fibbing.net/fibbing/internal/topo"
)

// Config carries the protocol timers. Zero values select defaults suited
// to the demo's time scale.
type Config struct {
	HelloInterval time.Duration // default 1s
	DeadInterval  time.Duration // default 4 * HelloInterval
	RxmtInterval  time.Duration // retransmission of unacked LSAs, default 1s
	SPFDelay      time.Duration // debounce between LSDB change and SPF, default 10ms
	RefreshPeriod time.Duration // re-origination of self LSAs, default 1800s
	AgeSweep      time.Duration // purge of MaxAge LSAs, default 60s
}

func (c Config) withDefaults() Config {
	if c.HelloInterval <= 0 {
		c.HelloInterval = time.Second
	}
	if c.DeadInterval <= 0 {
		c.DeadInterval = 4 * c.HelloInterval
	}
	if c.RxmtInterval <= 0 {
		c.RxmtInterval = time.Second
	}
	if c.SPFDelay <= 0 {
		c.SPFDelay = 10 * time.Millisecond
	}
	if c.RefreshPeriod <= 0 {
		c.RefreshPeriod = 1800 * time.Second
	}
	if c.AgeSweep <= 0 {
		c.AgeSweep = 60 * time.Second
	}
	return c
}

// neighbor is the per-adjacency state.
type neighbor struct {
	id        RouterID
	node      topo.NodeID
	link      topo.Link // directed link self -> neighbor
	up        bool
	lastHello time.Duration
	unacked   map[Key]*pendingLSA
}

type pendingLSA struct {
	lsa    *LSA
	handle event.Handle
}

// Router is one IGP speaker. Routers are owned by a Domain and driven by
// its event scheduler; they are not safe for concurrent use.
type Router struct {
	dom  *Domain
	node topo.NodeID
	id   RouterID
	cfg  Config

	nbrs map[RouterID]*neighbor
	db   *LSDB
	fib  *fib.Table

	ownSeq       map[Key]uint32
	spfScheduled bool
	spfRuns      uint64

	// Stats for the control-plane overhead experiments.
	PacketsSent, PacketsRcvd uint64
	BytesSent                uint64
}

func newRouter(dom *Domain, node topo.NodeID, cfg Config) *Router {
	r := &Router{
		dom:    dom,
		node:   node,
		id:     NodeRouterID(node),
		cfg:    cfg,
		nbrs:   make(map[RouterID]*neighbor),
		db:     NewLSDB(),
		fib:    fib.NewTable(node),
		ownSeq: make(map[Key]uint32),
	}
	r.db.SetClock(dom.sched.Now)
	return r
}

// ageSweep purges LSAs that reached MaxAge without a refresh — their
// originator is gone (crashed router, departed controller).
func (r *Router) ageSweep() {
	changed := false
	for _, k := range r.db.Expired() {
		r.db.Remove(k)
		changed = true
	}
	if changed {
		r.scheduleSPF()
	}
}

// ID returns the router's protocol identifier.
func (r *Router) ID() RouterID { return r.id }

// Node returns the router's topology node.
func (r *Router) Node() topo.NodeID { return r.node }

// FIB returns the router's forwarding table. The table is replaced
// atomically on SPF runs, so holding the pointer across events is safe for
// reading a consistent snapshot.
func (r *Router) FIB() *fib.Table { return r.fib }

// DB returns the router's link-state database (read-only for callers).
func (r *Router) DB() *LSDB { return r.db }

// SPFRuns returns how many times this router recomputed routes.
func (r *Router) SPFRuns() uint64 { return r.spfRuns }

// Neighbors returns the IDs of adjacent routers that are currently up.
func (r *Router) Neighbors() []RouterID {
	var out []RouterID
	for id, n := range r.nbrs {
		if n.up {
			out = append(out, id)
		}
	}
	return out
}

func (r *Router) addNeighbor(link topo.Link) {
	id := NodeRouterID(link.To)
	r.nbrs[id] = &neighbor{
		id:      id,
		node:    link.To,
		link:    link,
		up:      true,
		unacked: make(map[Key]*pendingLSA),
	}
}

// --- Origination -------------------------------------------------------

func (r *Router) nextSeq(k Key) uint32 {
	r.ownSeq[k]++
	return r.ownSeq[k]
}

// originateRouterLSA (re)builds and floods this router's Router LSA from
// its live adjacencies.
func (r *Router) originateRouterLSA() {
	l := &LSA{Header: Header{Type: TypeRouter, AdvRouter: r.id, LSID: 0}}
	for _, n := range r.nbrs {
		if !n.up {
			continue
		}
		l.RouterLinks = append(l.RouterLinks, RouterLink{
			Neighbor: n.id,
			Metric:   uint32(n.link.Weight),
		})
	}
	r.originate(l)
}

// originatePrefix floods a Prefix LSA for a locally attached prefix.
// lsid must be unique per prefix within this router.
func (r *Router) originatePrefix(lsid uint32, p topo.Prefix, cost int64) {
	r.originate(&LSA{
		Header: Header{Type: TypePrefix, AdvRouter: r.id, LSID: lsid},
		Prefix: p.Prefix,
		Metric: uint32(cost),
	})
}

// originate assigns the next sequence number, installs locally, floods,
// and schedules SPF.
func (r *Router) originate(l *LSA) {
	k := l.Header.Key()
	l.Header.Seq = r.nextSeq(k)
	r.db.Install(l)
	r.floodExcept(l, 0)
	r.scheduleSPF()
}

// OriginateForeign floods an LSA on behalf of another origin (the Fibbing
// controller's injection point uses this: the controller computes the LSA,
// the attached router floods it). Sequence numbers are managed by the
// caller via the LSA's Seq field; the local freshness check still applies.
func (r *Router) OriginateForeign(l *LSA) error {
	if l.Header.AdvRouter == 0 {
		return fmt.Errorf("ospf: foreign LSA without advertising router")
	}
	if old, ok := r.db.Get(l.Header.Key()); ok && !l.Header.Newer(old.Header) {
		return fmt.Errorf("ospf: foreign LSA %s not newer than stored seq %d",
			l.Header.Key(), old.Header.Seq)
	}
	r.installAndFlood(l, 0)
	return nil
}

// refreshOwn re-floods all self-originated LSAs with bumped sequence
// numbers (periodic refresh, as real OSPF does every 30 minutes).
func (r *Router) refreshOwn() {
	for _, l := range r.db.All() {
		if l.Header.AdvRouter != r.id {
			continue
		}
		c := l.Clone()
		r.originate(c)
	}
}

// --- Flooding ----------------------------------------------------------

func (r *Router) floodExcept(l *LSA, except RouterID) {
	for _, n := range r.nbrs {
		if !n.up || n.id == except {
			continue
		}
		r.sendUpdate(n, l)
	}
}

func (r *Router) sendUpdate(n *neighbor, l *LSA) {
	pkt := &Packet{Type: PktLSUpdate, From: r.id, LSAs: []*LSA{l}}
	r.send(n, pkt)
	// Track for retransmission until acked. MaxAge flushes are also
	// retransmitted; the ack carries the seq so either instance clears it.
	k := l.Header.Key()
	if old, ok := n.unacked[k]; ok {
		r.dom.sched.Cancel(old.handle)
	}
	p := &pendingLSA{lsa: l}
	p.handle = r.dom.sched.After(r.cfg.RxmtInterval, func() { r.retransmit(n, k) })
	n.unacked[k] = p
}

func (r *Router) retransmit(n *neighbor, k Key) {
	p, ok := n.unacked[k]
	if !ok || !n.up {
		return
	}
	pkt := &Packet{Type: PktLSUpdate, From: r.id, LSAs: []*LSA{p.lsa}}
	r.send(n, pkt)
	p.handle = r.dom.sched.After(r.cfg.RxmtInterval, func() { r.retransmit(n, k) })
}

func (r *Router) sendAck(n *neighbor, hs ...Header) {
	r.send(n, &Packet{Type: PktLSAck, From: r.id, Acks: hs})
}

func (r *Router) send(n *neighbor, pkt *Packet) {
	data := pkt.Encode()
	r.PacketsSent++
	r.BytesSent += uint64(len(data))
	r.dom.deliver(r.id, n, data, pkt.Type != PktHello)
}

// HandlePacket processes one received protocol message (wire format).
func (r *Router) HandlePacket(from RouterID, data []byte) {
	pkt, err := DecodePacket(data)
	if err != nil {
		r.dom.protocolError(r.id, err)
		return
	}
	if pkt.From != from {
		r.dom.protocolError(r.id, fmt.Errorf("ospf: source mismatch %d != %d", pkt.From, from))
		return
	}
	n, ok := r.nbrs[from]
	if !ok {
		r.dom.protocolError(r.id, fmt.Errorf("ospf: packet from non-neighbor %d", from))
		return
	}
	r.PacketsRcvd++
	switch pkt.Type {
	case PktHello:
		r.handleHello(n)
	case PktLSUpdate:
		r.handleUpdate(n, pkt)
	case PktLSAck:
		r.handleAck(n, pkt)
	}
}

func (r *Router) handleHello(n *neighbor) {
	n.lastHello = r.dom.sched.Now()
	if !n.up {
		// Adjacency comes back: advertise it and resync the neighbor by
		// sending our full database (simplified database exchange).
		n.up = true
		r.originateRouterLSA()
		for _, l := range r.db.All() {
			r.sendUpdate(n, l)
		}
	}
}

func (r *Router) handleUpdate(n *neighbor, pkt *Packet) {
	for _, l := range pkt.LSAs {
		// Implied acknowledgment (as in OSPF): receiving an instance at
		// least as fresh as one we are retransmitting to this neighbor
		// proves the neighbor has it — stop retransmitting, or a
		// stale-for-newer exchange ping-pongs forever.
		if p, ok := n.unacked[l.Header.Key()]; ok && p.lsa.Header.Seq <= l.Header.Seq {
			r.dom.sched.Cancel(p.handle)
			delete(n.unacked, l.Header.Key())
		}
		old, have := r.db.Get(l.Header.Key())
		switch {
		case !have && l.Header.Age >= MaxAgeSeconds:
			// Flush for an LSA we do not have: just ack.
			r.sendAck(n, l.Header)
		case !have || l.Header.Newer(old.Header):
			r.sendAck(n, l.Header)
			r.installAndFlood(l, n.id)
		case l.Header.Seq == old.Header.Seq:
			// Duplicate: ack, do not re-flood.
			r.sendAck(n, l.Header)
		default:
			// Neighbor is behind: send it our newer instance.
			r.sendUpdate(n, old)
		}
	}
}

func (r *Router) installAndFlood(l *LSA, except RouterID) {
	if l.Header.Age >= MaxAgeSeconds {
		// Flush: remove after re-flooding the flush itself.
		r.db.Remove(l.Header.Key())
	} else {
		r.db.Install(l)
	}
	r.floodExcept(l, except)
	r.scheduleSPF()
}

func (r *Router) handleAck(n *neighbor, pkt *Packet) {
	for _, h := range pkt.Acks {
		k := h.Key()
		if p, ok := n.unacked[k]; ok && p.lsa.Header.Seq <= h.Seq {
			r.dom.sched.Cancel(p.handle)
			delete(n.unacked, k)
		}
	}
}

// --- Liveness ----------------------------------------------------------

func (r *Router) helloTick() {
	now := r.dom.sched.Now()
	for _, n := range r.nbrs {
		if n.up && now-n.lastHello > r.cfg.DeadInterval && n.lastHello >= 0 {
			n.up = false
			for k, p := range n.unacked {
				r.dom.sched.Cancel(p.handle)
				delete(n.unacked, k)
			}
			r.originateRouterLSA()
		}
		// Hellos are sent even on down adjacencies so a healed link
		// re-forms the adjacency.
		r.send(n, &Packet{Type: PktHello, From: r.id})
	}
}

// --- Route computation -------------------------------------------------

func (r *Router) scheduleSPF() {
	if r.spfScheduled {
		return
	}
	r.spfScheduled = true
	r.dom.spfPending++
	r.dom.sched.After(r.cfg.SPFDelay, func() {
		r.spfScheduled = false
		r.dom.spfPending--
		r.computeRoutes()
	})
}

// computeRoutes rebuilds the FIB from the LSDB: SPF over the router graph
// (with Fibbing fake nodes grafted in), then per-prefix best-path and
// next-hop resolution.
func (r *Router) computeRoutes() {
	r.spfRuns++
	g, index, nodes := r.buildGraph()
	selfIdx, ok := index[r.id]
	if !ok {
		return // we have not originated our own Router LSA yet
	}
	tree := spf.Compute(g, selfIdx, nil)

	table := fib.NewTable(r.node)

	// Group announcements per prefix. A Prefix LSA announces from its
	// advertising router; a Fake LSA announces from its fake node.
	type announcer struct {
		idx    topo.NodeID // graph index of the announcing node
		metric uint32
		fake   *LSA
	}
	byPrefix := make(map[string][]announcer)
	prefixOf := make(map[string]topo.Prefix)
	for _, l := range r.db.ByType(TypePrefix) {
		aIdx, ok := index[l.Header.AdvRouter]
		if !ok {
			continue
		}
		k := l.Prefix.String()
		byPrefix[k] = append(byPrefix[k], announcer{idx: aIdx, metric: l.Metric})
		prefixOf[k] = topo.Prefix{Prefix: l.Prefix}
	}
	for fakeIdx, l := range nodes.fakes {
		k := l.Prefix.String()
		byPrefix[k] = append(byPrefix[k], announcer{idx: fakeIdx, metric: l.Metric, fake: l})
		prefixOf[k] = topo.Prefix{Prefix: l.Prefix}
	}

	for k, anns := range byPrefix {
		p := prefixOf[k].Prefix
		best := spf.Infinity
		local := false
		for _, a := range anns {
			if a.fake == nil && a.idx == selfIdx {
				local = true
				break
			}
			if !tree.Reachable(a.idx) {
				continue
			}
			if d := tree.Dist[a.idx] + int64(a.metric); d < best {
				best = d
			}
		}
		if local {
			if err := table.Install(fib.Route{Prefix: p, Local: true}); err != nil {
				r.dom.protocolError(r.id, err)
			}
			continue
		}
		if best == spf.Infinity {
			continue
		}

		// Next-hop synthesis. Real announcers and remote fakes
		// contribute a deduplicated set of first hops (standard ECMP);
		// each fake attached to *this* router contributes one extra
		// RIB path to its forwarding address — Fibbing's uneven
		// splitting.
		setNH := make(map[topo.NodeID]bool)
		extra := make(map[topo.NodeID]int)
		for _, a := range anns {
			if !tree.Reachable(a.idx) || tree.Dist[a.idx]+int64(a.metric) != best {
				continue
			}
			if a.fake != nil && a.fake.AttachedTo == r.id {
				via := RouterNode(a.fake.ForwardVia)
				if _, ok := r.dom.topo.FindLink(r.node, via); !ok {
					r.dom.protocolError(r.id, fmt.Errorf(
						"ospf: fake LSA %s forwards via non-neighbor %d",
						a.fake.Header.Key(), a.fake.ForwardVia))
					continue
				}
				// A fake next hop is only usable while the adjacency to
				// its forwarding address is up — otherwise the lie would
				// blackhole traffic after a link failure.
				if nb := r.nbrs[a.fake.ForwardVia]; nb == nil || !nb.up {
					continue
				}
				extra[via]++
				continue
			}
			for _, nh := range tree.NextHops(a.idx) {
				node, ok := nodes.toNode(nh.Node)
				if !ok {
					continue
				}
				setNH[node] = true
			}
		}
		var nhs []fib.NextHop
		for node := range setNH {
			l, ok := r.dom.topo.FindLink(r.node, node)
			if !ok {
				continue
			}
			nhs = append(nhs, fib.NextHop{Node: node, Link: l.ID, Weight: 1})
		}
		for node, w := range extra {
			l, _ := r.dom.topo.FindLink(r.node, node)
			nhs = append(nhs, fib.NextHop{Node: node, Link: l.ID, Weight: w})
		}
		if len(nhs) == 0 {
			continue
		}
		if err := table.Install(fib.Route{Prefix: p, NextHops: nhs, Distance: best}); err != nil {
			r.dom.protocolError(r.id, err)
		}
	}

	r.fib = table
	r.dom.fibChanged(r.node, table)
}

// graphNodes tracks the mapping between graph indices and protocol
// entities: real routers occupy indices [0, len(index)); fake nodes are
// appended after them.
type graphNodes struct {
	ids   []RouterID           // graph index -> RouterID, for real routers
	fakes map[topo.NodeID]*LSA // graph index -> fake LSA
}

// toNode resolves a graph index of a *real* router to its topology node.
func (gn *graphNodes) toNode(idx topo.NodeID) (topo.NodeID, bool) {
	if int(idx) >= len(gn.ids) {
		return 0, false
	}
	return RouterNode(gn.ids[idx]), true
}

// buildGraph materialises the LSDB into an SPF graph: real links require
// the two-way check (both endpoints advertise each other); fake nodes hang
// off their attachment router with the advertised attach cost.
func (r *Router) buildGraph() (*spf.Graph, map[RouterID]topo.NodeID, *graphNodes) {
	routerLSAs := r.db.ByType(TypeRouter)
	index := make(map[RouterID]topo.NodeID, len(routerLSAs))
	gn := &graphNodes{fakes: make(map[topo.NodeID]*LSA)}
	for _, l := range routerLSAs {
		index[l.Header.AdvRouter] = topo.NodeID(len(gn.ids))
		gn.ids = append(gn.ids, l.Header.AdvRouter)
	}
	g := spf.NewGraph(len(gn.ids))
	advertises := func(from, to RouterID) bool {
		for _, l := range routerLSAs {
			if l.Header.AdvRouter != from {
				continue
			}
			for _, rl := range l.RouterLinks {
				if rl.Neighbor == to {
					return true
				}
			}
		}
		return false
	}
	for _, l := range routerLSAs {
		u := index[l.Header.AdvRouter]
		for _, rl := range l.RouterLinks {
			v, ok := index[rl.Neighbor]
			if !ok {
				continue
			}
			if !advertises(rl.Neighbor, l.Header.AdvRouter) {
				continue // two-way check failed
			}
			g.AddEdge(u, spf.Edge{To: v, Weight: int64(rl.Metric), Link: topo.NoLink})
		}
	}
	for _, l := range r.db.ByType(TypeFake) {
		attach, ok := index[l.AttachedTo]
		if !ok {
			continue
		}
		fakeIdx := g.AddNode()
		g.AddEdge(attach, spf.Edge{To: fakeIdx, Weight: int64(l.AttachCost), Link: topo.NoLink})
		gn.fakes[fakeIdx] = l
	}
	return g, index, gn
}
