package ospf

import (
	"cmp"
	"fmt"
	"net/netip"
	"slices"
	"time"

	"fibbing.net/fibbing/internal/event"
	"fibbing.net/fibbing/internal/fib"
	"fibbing.net/fibbing/internal/spf"
	"fibbing.net/fibbing/internal/topo"
)

// Config carries the protocol timers. Zero values select defaults suited
// to the demo's time scale.
type Config struct {
	HelloInterval time.Duration // default 1s
	DeadInterval  time.Duration // default 4 * HelloInterval
	RxmtInterval  time.Duration // retransmission of unacked LSAs, default 1s
	SPFDelay      time.Duration // debounce between LSDB change and SPF, default 10ms
	RefreshPeriod time.Duration // re-origination of self LSAs, default 1800s
	AgeSweep      time.Duration // purge of MaxAge LSAs, default 60s
}

func (c Config) withDefaults() Config {
	if c.HelloInterval <= 0 {
		c.HelloInterval = time.Second
	}
	if c.DeadInterval <= 0 {
		c.DeadInterval = 4 * c.HelloInterval
	}
	if c.RxmtInterval <= 0 {
		c.RxmtInterval = time.Second
	}
	if c.SPFDelay <= 0 {
		c.SPFDelay = 10 * time.Millisecond
	}
	if c.RefreshPeriod <= 0 {
		c.RefreshPeriod = 1800 * time.Second
	}
	if c.AgeSweep <= 0 {
		c.AgeSweep = 60 * time.Second
	}
	return c
}

// neighbor is the per-adjacency state.
type neighbor struct {
	id        RouterID
	node      topo.NodeID
	link      topo.Link // directed link self -> neighbor
	up        bool
	wasDown   bool // declared dead at least once (gates the up callback)
	lastHello time.Duration
	unacked   map[Key]*pendingLSA
}

type pendingLSA struct {
	lsa    *LSA
	handle event.Handle
}

// Router is one IGP speaker. Routers are owned by a Domain and driven by
// its event scheduler; they are not safe for concurrent use.
type Router struct {
	dom  *Domain
	node topo.NodeID
	id   RouterID
	cfg  Config

	nbrs map[RouterID]*neighbor
	// nbrList holds the same adjacencies sorted by router ID: every
	// output-visible iteration (flooding, hellos, LSA origination) walks
	// the list so two runs of the same scenario emit identical event
	// sequences (Go map order is randomised per process).
	nbrList []*neighbor
	db      *LSDB
	fib     *fib.Table

	ownSeq       map[Key]uint32
	spfScheduled bool
	spfRuns      uint64

	// spfCompute/spfCommit are the two phases of the debounced SPF event,
	// built once so re-arming the debounce allocates no closures. The
	// compute phase is router-local (it may run on a worker goroutine
	// alongside other routers' computes); the commit phase publishes the
	// buffered results to the domain in FIFO order.
	spfCompute, spfCommit func()

	// Compute-phase emission buffers, flushed by spfCommit. The compute
	// phase must not write shared domain state (Errors, subscribers), so
	// FIB deltas and protocol errors raised during route computation are
	// parked here.
	pendingTable *fib.Table
	pendingDiff  *fib.Diff
	pendingErrs  []error

	// flushed remembers recently MaxAged LSAs (key -> seq/instant of the
	// flush) so a neighbor's crossing retransmission of an older positive
	// instance cannot resurrect a withdrawn LSA — the stand-in for real
	// OSPF's "retain the MaxAge LSA until every neighbor acked it".
	// Without it, heavy lie churn (the controller replacing one large
	// plan with another) ping-pongs flush/reinstall floods forever.
	flushed map[Key]flushMark

	// Delta pipeline state: LSDB mutations logged since the last SPF run,
	// and the incrementally maintained graph/tree they are replayed onto.
	changeLog   []lsaChange
	cache       *spfCache
	spfFullRuns uint64 // recomputations that rebuilt everything
	spfIncRuns  uint64 // recomputations served by the delta pipeline

	// Stats for the control-plane overhead experiments.
	PacketsSent, PacketsRcvd uint64
	BytesSent                uint64
}

// flushMark records one flushed LSA: the sequence number of the MaxAge
// instance and when it was seen (for pruning).
type flushMark struct {
	seq uint32
	at  time.Duration
}

func newRouter(dom *Domain, node topo.NodeID, cfg Config) *Router {
	r := &Router{
		dom:     dom,
		node:    node,
		id:      NodeRouterID(node),
		cfg:     cfg,
		nbrs:    make(map[RouterID]*neighbor),
		db:      NewLSDB(),
		fib:     fib.NewTable(node),
		ownSeq:  make(map[Key]uint32),
		flushed: make(map[Key]flushMark),
	}
	r.db.SetClock(dom.sched.Now)
	r.spfCompute = func() {
		r.spfScheduled = false
		r.computeRoutes()
	}
	r.spfCommit = func() {
		r.dom.spfPending--
		r.flushSPF()
	}
	return r
}

// flushSPF publishes the compute phase's buffered emissions: protocol
// errors first (matching the sequential emission order — errors surface
// before the diff that followed them), then the FIB delta.
func (r *Router) flushSPF() {
	for _, err := range r.pendingErrs {
		r.dom.protocolError(r.id, err)
	}
	r.pendingErrs = r.pendingErrs[:0]
	if r.pendingDiff != nil {
		t, d := r.pendingTable, r.pendingDiff
		r.pendingTable, r.pendingDiff = nil, nil
		r.dom.fibChanged(r.node, t, d)
	}
}

// spfError buffers a protocol error raised inside the SPF compute phase.
func (r *Router) spfError(err error) {
	r.pendingErrs = append(r.pendingErrs, err)
}

// ageSweep purges LSAs that reached MaxAge without a refresh — their
// originator is gone (crashed router, departed controller) — and prunes
// flush tombstones old enough that no retransmission of the withdrawn
// instance can still be in flight.
func (r *Router) ageSweep() {
	changed := false
	for _, k := range r.db.Expired() {
		r.dbRemove(k)
		changed = true
	}
	if changed {
		r.scheduleSPF()
	}
	now := r.dom.sched.Now()
	for k, m := range r.flushed {
		if now-m.at >= r.cfg.AgeSweep {
			delete(r.flushed, k)
		}
	}
}

// ID returns the router's protocol identifier.
func (r *Router) ID() RouterID { return r.id }

// Node returns the router's topology node.
func (r *Router) Node() topo.NodeID { return r.node }

// FIB returns the router's forwarding table. The table is replaced
// atomically on SPF runs, so holding the pointer across events is safe for
// reading a consistent snapshot.
func (r *Router) FIB() *fib.Table { return r.fib }

// DB returns the router's link-state database (read-only for callers).
func (r *Router) DB() *LSDB { return r.db }

// SPFRuns returns how many times this router recomputed routes.
func (r *Router) SPFRuns() uint64 { return r.spfRuns }

// SPFFullRuns returns how many recomputations rebuilt the graph and ran a
// full Dijkstra (cache misses and fallbacks).
func (r *Router) SPFFullRuns() uint64 { return r.spfFullRuns }

// SPFIncrementalRuns returns how many recomputations were served by the
// delta pipeline (incrementally patched tree, per-prefix recompute).
func (r *Router) SPFIncrementalRuns() uint64 { return r.spfIncRuns }

// Neighbors returns the IDs of adjacent routers that are currently up,
// in ascending router-ID order.
func (r *Router) Neighbors() []RouterID {
	var out []RouterID
	for _, n := range r.nbrList {
		if n.up {
			out = append(out, n.id)
		}
	}
	return out
}

func (r *Router) addNeighbor(link topo.Link) {
	id := NodeRouterID(link.To)
	n := &neighbor{
		id:      id,
		node:    link.To,
		link:    link,
		up:      true,
		unacked: make(map[Key]*pendingLSA),
	}
	r.nbrs[id] = n
	r.nbrList = append(r.nbrList, n)
	slices.SortFunc(r.nbrList, func(a, b *neighbor) int { return cmp.Compare(a.id, b.id) })
}

// --- Origination -------------------------------------------------------

func (r *Router) nextSeq(k Key) uint32 {
	r.ownSeq[k]++
	return r.ownSeq[k]
}

// originateRouterLSA (re)builds and floods this router's Router LSA from
// its live adjacencies.
func (r *Router) originateRouterLSA() {
	l := &LSA{Header: Header{Type: TypeRouter, AdvRouter: r.id, LSID: 0}}
	for _, n := range r.nbrList {
		if !n.up {
			continue
		}
		l.RouterLinks = append(l.RouterLinks, RouterLink{
			Neighbor: n.id,
			Metric:   uint32(n.link.Weight),
		})
	}
	r.originate(l)
}

// originatePrefix floods a Prefix LSA for a locally attached prefix.
// lsid must be unique per prefix within this router.
func (r *Router) originatePrefix(lsid uint32, p topo.Prefix, cost int64) {
	r.originate(&LSA{
		Header: Header{Type: TypePrefix, AdvRouter: r.id, LSID: lsid},
		Prefix: p.Prefix,
		Metric: uint32(cost),
	})
}

// originate assigns the next sequence number, installs locally, floods,
// and schedules SPF.
func (r *Router) originate(l *LSA) {
	k := l.Header.Key()
	l.Header.Seq = r.nextSeq(k)
	r.dbInstall(l)
	r.floodExcept(l, 0)
	r.scheduleSPF()
}

// OriginateForeign floods an LSA on behalf of another origin (the Fibbing
// controller's injection point uses this: the controller computes the LSA,
// the attached router floods it). Sequence numbers are managed by the
// caller via the LSA's Seq field; the local freshness check still applies.
func (r *Router) OriginateForeign(l *LSA) error {
	if l.Header.AdvRouter == 0 {
		return fmt.Errorf("ospf: foreign LSA without advertising router")
	}
	if old, ok := r.db.Get(l.Header.Key()); ok && !l.Header.Newer(old.Header) {
		return fmt.Errorf("ospf: foreign LSA %s not newer than stored seq %d",
			l.Header.Key(), old.Header.Seq)
	}
	r.installAndFlood(l, 0)
	return nil
}

// refreshOwn re-floods all self-originated LSAs with bumped sequence
// numbers (periodic refresh, as real OSPF does every 30 minutes).
func (r *Router) refreshOwn() {
	for _, l := range r.db.All() {
		if l.Header.AdvRouter != r.id {
			continue
		}
		c := l.Clone()
		r.originate(c)
	}
}

// --- Flooding ----------------------------------------------------------

func (r *Router) floodExcept(l *LSA, except RouterID) {
	for _, n := range r.nbrList {
		if !n.up || n.id == except {
			continue
		}
		r.sendUpdate(n, l)
	}
}

func (r *Router) sendUpdate(n *neighbor, l *LSA) {
	pkt := &Packet{Type: PktLSUpdate, From: r.id, LSAs: []*LSA{l}}
	r.send(n, pkt)
	// Track for retransmission until acked. MaxAge flushes are also
	// retransmitted; the ack carries the seq so either instance clears it.
	k := l.Header.Key()
	if old, ok := n.unacked[k]; ok {
		r.dom.sched.Cancel(old.handle)
	}
	p := &pendingLSA{lsa: l}
	p.handle = r.dom.sched.After(r.cfg.RxmtInterval, func() { r.retransmit(n, k) })
	n.unacked[k] = p
}

func (r *Router) retransmit(n *neighbor, k Key) {
	p, ok := n.unacked[k]
	if !ok || !n.up {
		return
	}
	pkt := &Packet{Type: PktLSUpdate, From: r.id, LSAs: []*LSA{p.lsa}}
	r.send(n, pkt)
	p.handle = r.dom.sched.After(r.cfg.RxmtInterval, func() { r.retransmit(n, k) })
}

func (r *Router) sendAck(n *neighbor, hs ...Header) {
	r.send(n, &Packet{Type: PktLSAck, From: r.id, Acks: hs})
}

func (r *Router) send(n *neighbor, pkt *Packet) {
	data := pkt.AppendEncode(r.dom.getBuf())
	r.PacketsSent++
	r.BytesSent += uint64(len(data))
	r.dom.deliver(r.id, n, data, pkt.Type != PktHello)
}

// HandlePacket processes one received protocol message (wire format).
func (r *Router) HandlePacket(from RouterID, data []byte) {
	pkt, err := DecodePacket(data)
	if err != nil {
		r.dom.protocolError(r.id, err)
		return
	}
	if pkt.From != from {
		r.dom.protocolError(r.id, fmt.Errorf("ospf: source mismatch %d != %d", pkt.From, from))
		return
	}
	n, ok := r.nbrs[from]
	if !ok {
		r.dom.protocolError(r.id, fmt.Errorf("ospf: packet from non-neighbor %d", from))
		return
	}
	r.PacketsRcvd++
	switch pkt.Type {
	case PktHello:
		r.handleHello(n)
	case PktLSUpdate:
		r.handleUpdate(n, pkt)
	case PktLSAck:
		r.handleAck(n, pkt)
	}
}

func (r *Router) handleHello(n *neighbor) {
	n.lastHello = r.dom.sched.Now()
	if !n.up {
		// Adjacency comes back: advertise it and resync the neighbor by
		// sending our full database (simplified database exchange).
		n.up = true
		r.originateRouterLSA()
		for _, l := range r.db.All() {
			r.sendUpdate(n, l)
		}
		if n.wasDown {
			n.wasDown = false
			r.dom.adjacencyChanged(n.link, true)
		}
	}
}

func (r *Router) handleUpdate(n *neighbor, pkt *Packet) {
	for _, l := range pkt.LSAs {
		// Implied acknowledgment (as in OSPF): receiving an instance at
		// least as fresh as one we are retransmitting to this neighbor
		// proves the neighbor has it — stop retransmitting, or a
		// stale-for-newer exchange ping-pongs forever.
		if p, ok := n.unacked[l.Header.Key()]; ok && p.lsa.Header.Seq <= l.Header.Seq {
			r.dom.sched.Cancel(p.handle)
			delete(n.unacked, l.Header.Key())
		}
		old, have := r.db.Get(l.Header.Key())
		switch {
		case !have && l.Header.Age >= MaxAgeSeconds:
			// Flush for an LSA we do not have: remember it and ack, so a
			// positive instance still retransmitting somewhere cannot
			// resurrect the withdrawal.
			r.noteFlush(l.Header)
			r.sendAck(n, l.Header)
		case !have && l.Header.Seq <= r.flushed[l.Header.Key()].seq:
			// A stale retransmission of an instance we already flushed:
			// ack it away instead of resurrecting the withdrawn LSA.
			r.sendAck(n, l.Header)
		case !have || l.Header.Newer(old.Header):
			r.sendAck(n, l.Header)
			r.installAndFlood(l, n.id)
		case l.Header.Seq == old.Header.Seq:
			// Duplicate: ack, do not re-flood.
			r.sendAck(n, l.Header)
		default:
			// Neighbor is behind: send it our newer instance.
			r.sendUpdate(n, old)
		}
	}
}

func (r *Router) installAndFlood(l *LSA, except RouterID) {
	k := l.Header.Key()
	if l.Header.Age >= MaxAgeSeconds {
		// Flush: remove after re-flooding the flush itself.
		r.noteFlush(l.Header)
		r.dbRemove(k)
	} else {
		// A genuinely newer instance supersedes any flush tombstone.
		if m, ok := r.flushed[k]; ok && l.Header.Seq > m.seq {
			delete(r.flushed, k)
		}
		r.dbInstall(l)
	}
	r.floodExcept(l, except)
	r.scheduleSPF()
}

// noteFlush records a MaxAge instance in the tombstone map.
func (r *Router) noteFlush(h Header) {
	k := h.Key()
	if m, ok := r.flushed[k]; !ok || h.Seq > m.seq {
		r.flushed[k] = flushMark{seq: h.Seq, at: r.dom.sched.Now()}
	}
}

func (r *Router) handleAck(n *neighbor, pkt *Packet) {
	for _, h := range pkt.Acks {
		k := h.Key()
		if p, ok := n.unacked[k]; ok && p.lsa.Header.Seq <= h.Seq {
			r.dom.sched.Cancel(p.handle)
			delete(n.unacked, k)
		}
	}
}

// --- Liveness ----------------------------------------------------------

func (r *Router) helloTick() {
	now := r.dom.sched.Now()
	for _, n := range r.nbrList {
		if n.up && now-n.lastHello > r.cfg.DeadInterval && n.lastHello >= 0 {
			n.up = false
			n.wasDown = true
			for k, p := range n.unacked {
				r.dom.sched.Cancel(p.handle)
				delete(n.unacked, k)
			}
			r.originateRouterLSA()
			r.dom.adjacencyChanged(n.link, false)
		}
		// Hellos are sent even on down adjacencies so a healed link
		// re-forms the adjacency.
		r.send(n, &Packet{Type: PktHello, From: r.id})
	}
}

// --- Route computation -------------------------------------------------

// scheduleSPF arms the debounced recomputation as a two-phase parallel
// event: when several routers' debounce windows expire at the same
// instant (the common case after a flood round — every router schedules
// at flood-arrival + SPFDelay), the scheduler fans their compute phases
// out to the worker pool and then commits (FIB deltas, protocol errors,
// spfPending bookkeeping) sequentially in FIFO order, so the output is
// byte-identical to the sequential core.
func (r *Router) scheduleSPF() {
	if r.spfScheduled {
		return
	}
	r.spfScheduled = true
	r.dom.spfPending++
	r.dom.sched.AfterParallel(r.cfg.SPFDelay, r.spfCompute, r.spfCommit)
}

// computeRoutes updates the FIB from the LSDB. The default path is the
// delta pipeline: replay the logged LSDB mutations onto the cached SPF
// graph, patch the shortest-path tree incrementally, recompute routes only
// for prefixes whose announcers were touched, and emit the result as a
// fib.Diff. It falls back to recomputeFull when no cache exists, the
// replay detects an inconsistency, or tombstoned slots dominate the cache.
func (r *Router) computeRoutes() {
	r.spfRuns++
	changes := r.changeLog
	r.changeLog = nil
	if r.cache == nil {
		r.recomputeFull()
		return
	}
	c := r.cache
	eff := &effects{dirtyPrefixes: make(map[string]bool)}
	for _, ch := range changes {
		r.applyChange(c, ch, eff)
		if eff.rebuild {
			r.recomputeFull()
			return
		}
	}
	if len(c.slots) > 2*c.live+16 {
		// Tombstones dominate after heavy churn: compact via a rebuild.
		r.recomputeFull()
		return
	}
	if len(eff.edges) == 0 && len(eff.dirtyPrefixes) == 0 {
		return // sequence-number noise only: routing cannot have changed
	}
	selfIdx, ok := c.index[r.id]
	if !ok {
		r.cache = nil // our own LSA vanished; resync on the next run
		return
	}

	touchedAll := false
	var touchedSet map[topo.NodeID]bool
	if len(eff.edges) > 0 {
		tree, touched, full := spf.Incremental(c.g, c.tree, eff.edges, nil)
		c.tree = tree
		if full {
			// The dirty region was too large: Incremental ran a whole
			// Dijkstra. Count it as a full run so the telemetry split
			// reflects what actually executed.
			touchedAll = true
			r.spfFullRuns++
		} else {
			touchedSet = make(map[topo.NodeID]bool, len(touched))
			for _, v := range touched {
				touchedSet[v] = true
			}
			r.spfIncRuns++
		}
	} else {
		r.spfIncRuns++ // prefix-only change: no SPF work at all
	}

	anns, prefixOf := r.collectAnnouncers(c)
	// Iterate prefixes in sorted order: the diff's change order and any
	// routeFor error order are output-visible, and map order is not
	// reproducible across runs.
	keys := make([]string, 0, len(anns))
	for k := range anns {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	diff := fib.NewDiff(r.node, len(keys))
	for _, k := range keys {
		alist := anns[k]
		if !touchedAll && !eff.dirtyPrefixes[k] && !announcerTouched(alist, touchedSet) {
			continue
		}
		p := prefixOf[k]
		route, ok := r.routeFor(c, p, alist, selfIdx)
		old, had := r.fib.Get(p)
		switch {
		case ok && (!had || !route.Equal(old)):
			diff.Upsert(route)
		case !ok && had:
			diff.Delete(p)
		}
	}
	// Prefixes whose last announcement vanished from the LSDB.
	gone := make([]string, 0, len(eff.dirtyPrefixes))
	for k := range eff.dirtyPrefixes {
		if _, still := anns[k]; !still {
			gone = append(gone, k)
		}
	}
	slices.Sort(gone)
	for _, k := range gone {
		p, err := netip.ParsePrefix(k)
		if err != nil {
			continue
		}
		if _, had := r.fib.Get(p); had {
			diff.Delete(p)
		}
	}
	if diff.Empty() {
		return
	}
	table := r.fib.Clone()
	if err := table.ApplyDiff(diff); err != nil {
		r.spfError(err)
		r.recomputeFull()
		return
	}
	r.fib = table
	r.pendingTable, r.pendingDiff = table, diff
}

// announcerTouched reports whether any announcer sits in the touched set.
func announcerTouched(anns []announcer, touched map[topo.NodeID]bool) bool {
	for _, a := range anns {
		if touched[a.idx] {
			return true
		}
	}
	return false
}

// buildFullState computes a fresh cache and a from-scratch table directly
// from the LSDB: the ground truth the delta pipeline must reproduce. ok is
// false before the router originated its own Router LSA. It mutates no
// router state, so equivalence tests use it as the reference oracle.
func (r *Router) buildFullState() (c *spfCache, table *fib.Table, ok bool) {
	c = r.buildCache()
	selfIdx, ok := c.index[r.id]
	if !ok {
		return nil, nil, false
	}
	c.tree = spf.Compute(c.g, selfIdx, nil)
	table = fib.NewTable(r.node)
	anns, prefixOf := r.collectAnnouncers(c)
	for k, alist := range anns {
		route, ok := r.routeFor(c, prefixOf[k], alist, selfIdx)
		if !ok {
			continue
		}
		if err := table.Install(route); err != nil {
			r.spfError(err)
		}
	}
	return c, table, true
}

// recomputeFull rebuilds the cache from the LSDB, runs a full Dijkstra,
// recomputes every prefix, and emits the whole-table difference as a diff
// so the data plane still re-paths selectively.
func (r *Router) recomputeFull() {
	c, table, ok := r.buildFullState()
	if !ok {
		r.cache = nil
		return // we have not originated our own Router LSA yet
	}
	r.cache = c
	r.spfFullRuns++
	diff := fib.DiffTables(r.node, r.fib, table)
	r.fib = table
	if !diff.Empty() {
		r.pendingTable, r.pendingDiff = table, diff
	}
}
