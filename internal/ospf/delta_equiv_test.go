package ospf

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"fibbing.net/fibbing/internal/event"
	"fibbing.net/fibbing/internal/topo"
)

// The delta pipeline's contract: after any sequence of topology and lie
// mutations, every router's incrementally maintained FIB is byte-identical
// to a from-scratch recompute of its LSDB (buildFullState). 50 seeded
// random mutation sequences sweep the topology zoo with link failures,
// heals, weight changes, and lie installs/withdraws.

// equivTopology builds the zoo member for one sequence.
func equivTopology(i int) (*topo.Topology, string) {
	switch i % 6 {
	case 0:
		return topo.Fig1(topo.Fig1Opts{}), "fig1"
	case 1:
		return topo.Abilene(10e6, time.Millisecond), "abilene"
	case 2:
		return topo.FatTree(topo.FatTreeOpts{K: 4, Capacity: 10e6, MaxWeight: 3, Seed: int64(i)}), "fattree4"
	case 3:
		return topo.Ring(topo.RingOpts{N: 9, Capacity: 10e6, Chords: 2, Seed: int64(i)}), "ring9"
	case 4:
		return topo.Waxman(topo.WaxmanOpts{Nodes: 16, Capacity: 10e6, MaxWeight: 5, Seed: int64(i)}), "waxman16"
	default:
		return topo.RandomConnected(topo.RandomOpts{
			Nodes: 12, Degree: 3, MaxWeight: 5, Prefixes: 2, Capacity: 10e6, Seed: int64(i),
		}), "random12"
	}
}

// routerLinks lists symmetric links between two routers (one direction).
func routerLinks(tp *topo.Topology) []topo.Link {
	var out []topo.Link
	for _, l := range tp.Links() {
		if tp.Node(l.From).Host || tp.Node(l.To).Host {
			continue
		}
		if l.Reverse != topo.NoLink && l.Reverse < l.ID {
			continue // one direction per symmetric pair
		}
		out = append(out, l)
	}
	return out
}

func assertFIBsMatchFull(t *testing.T, label string, d *Domain) {
	t.Helper()
	for n, r := range d.Routers() {
		_, want, ok := r.buildFullState()
		if !ok {
			continue
		}
		if got := r.FIB().String(); got != want.String() {
			t.Fatalf("%s: router %s FIB diverges from full recompute:\nincremental:\n%s\nfull:\n%s",
				label, d.Topology().Name(n), got, want.String())
		}
	}
}

// TestRouterLSARemoveReAddOneWindow regression-tests the cache against a
// Router LSA that is flushed and re-originated within one SPF debounce
// window: the change log then carries a removal whose final-database view
// already holds the re-added instance, which must not leave a live
// phantom copy of the router on the tombstoned slot.
func TestRouterLSARemoveReAddOneWindow(t *testing.T) {
	tp := topo.Fig1(topo.Fig1Opts{})
	sched := event.NewScheduler()
	d := NewDomain(tp, sched, Config{})
	d.Start()
	if _, err := d.RunUntilConverged(sched.Now() + 60*time.Second); err != nil {
		t.Fatal(err)
	}
	a := d.Router(tp.MustNode("A"))
	victim := NodeRouterID(tp.MustNode("R2"))
	k := Key{Type: TypeRouter, AdvRouter: victim, LSID: 0}
	old, ok := a.db.Get(k)
	if !ok {
		t.Fatal("no Router LSA for R2 at A")
	}
	// Remove and re-add before the debounced SPF fires.
	a.dbRemove(k)
	readd := old.Clone()
	readd.Header.Seq++
	a.dbInstall(readd)
	a.computeRoutes()
	// A later weight change flushes out any phantom slot: with a live
	// duplicate of R2 in the cached graph, the stale copy would keep
	// offering the old cheaper path.
	if err := d.SetLinkWeight(tp.MustNode("B"), tp.MustNode("R2"), 9); err != nil {
		t.Fatal(err)
	}
	if _, err := d.RunUntilConverged(sched.Now() + 60*time.Second); err != nil {
		t.Fatal(err)
	}
	assertFIBsMatchFull(t, "after remove+re-add and reweight", d)
}

func TestDeltaPipelineEquivalence(t *testing.T) {
	var totalInc, totalFull uint64
	for seq := 0; seq < 50; seq++ {
		tp, name := equivTopology(seq)
		rng := rand.New(rand.NewSource(int64(1000 + seq)))
		sched := event.NewScheduler()
		d := NewDomain(tp, sched, Config{})
		d.Start()
		if _, err := d.RunUntilConverged(sched.Now() + 120*time.Second); err != nil {
			t.Fatalf("seq %d (%s): %v", seq, name, err)
		}
		assertFIBsMatchFull(t, fmt.Sprintf("seq %d (%s) after start", seq, name), d)

		links := routerLinks(tp)
		prefixes := tp.Prefixes()
		// Routers eligible as injection points and lie attachments.
		var routers []topo.NodeID
		for _, n := range tp.Nodes() {
			if !n.Host {
				routers = append(routers, n.ID)
			}
		}
		var downLinks []topo.Link
		type liveLie struct {
			lsa *LSA
			at  topo.NodeID
		}
		var lies []liveLie
		lsid := uint32(1)

		for step := 0; step < 8; step++ {
			label := fmt.Sprintf("seq %d (%s) step %d", seq, name, step)
			switch op := rng.Intn(5); {
			case op == 0: // weight change
				l := links[rng.Intn(len(links))]
				if err := d.SetLinkWeight(l.From, l.To, 1+rng.Int63n(9)); err != nil {
					t.Fatalf("%s: %v", label, err)
				}
			case op == 1 && len(downLinks) < 2: // link failure
				l := links[rng.Intn(len(links))]
				if err := d.SetLinkState(l.From, l.To, false); err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				downLinks = append(downLinks, l)
			case op == 2 && len(downLinks) > 0: // heal
				l := downLinks[len(downLinks)-1]
				downLinks = downLinks[:len(downLinks)-1]
				if err := d.SetLinkState(l.From, l.To, true); err != nil {
					t.Fatalf("%s: %v", label, err)
				}
			case op == 3 || len(lies) == 0: // lie install
				attach := routers[rng.Intn(len(routers))]
				nbrs := d.Router(attach).Neighbors()
				if len(nbrs) == 0 {
					continue
				}
				via := nbrs[rng.Intn(len(nbrs))]
				p := prefixes[rng.Intn(len(prefixes))]
				lsa := &LSA{
					Header:     Header{Type: TypeFake, AdvRouter: ControllerIDBase, LSID: lsid, Seq: 1},
					Prefix:     p.Prefix,
					Metric:     uint32(rng.Intn(4)),
					AttachedTo: NodeRouterID(attach),
					AttachCost: uint32(rng.Intn(3)),
					ForwardVia: via,
				}
				lsid++
				at := routers[rng.Intn(len(routers))]
				if err := d.Router(at).OriginateForeign(lsa.Clone()); err != nil {
					t.Fatalf("%s: inject: %v", label, err)
				}
				lies = append(lies, liveLie{lsa: lsa, at: at})
			default: // lie withdraw
				i := rng.Intn(len(lies))
				lie := lies[i]
				lies = append(lies[:i], lies[i+1:]...)
				w := lie.lsa.Clone()
				w.Header.Seq++
				w.Header.Age = MaxAgeSeconds
				if err := d.Router(lie.at).OriginateForeign(w); err != nil {
					t.Fatalf("%s: withdraw: %v", label, err)
				}
			}
			if _, err := d.RunUntilConverged(sched.Now() + 120*time.Second); err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			assertFIBsMatchFull(t, label, d)
		}
		s := d.Stats()
		totalInc += s.SPFIncrementalRuns
		totalFull += s.SPFFullRuns
	}
	if totalInc == 0 {
		t.Fatal("the incremental path was never exercised")
	}
	t.Logf("SPF runs: %d incremental, %d full", totalInc, totalFull)
}
