// Package ospf implements the link-state IGP substrate of the emulation: a
// from-scratch OSPF-like protocol with binary LSA encoding, a link-state
// database, reliable flooding over point-to-point adjacencies, and
// SPF-driven route computation into per-router FIBs.
//
// The protocol is deliberately OSPF-shaped rather than OSPF-compatible:
// it keeps the parts Fibbing relies on — flooded LSAs with sequence
// numbers and aging, Fletcher checksums, two-way connectivity checks,
// ECMP SPF, and external-style LSAs with a forwarding address (our Fake
// LSAs, playing the role of the Type-5 LSAs the real Fibbing controller
// injects) — and drops the parts irrelevant to the paper (areas, DR
// election, broadcast networks).
//
// Route computation is delta-driven (see delta.go): LSDB mutations are
// logged, replayed onto a cached SPF graph, the shortest-path tree is
// patched with spf.Incremental, and only affected prefixes are
// recomputed, leaving the router as a fib.Diff through Domain.OnFIBDelta.
package ospf

import (
	"encoding/binary"
	"fmt"
	"net/netip"

	"fibbing.net/fibbing/internal/topo"
)

// RouterID identifies a router in the IGP. Topology node n maps to
// RouterID n+1; 0 is invalid. Fibbing controllers originate LSAs from IDs
// in the ControllerIDBase range, which never collide with topology nodes.
type RouterID uint32

// ControllerIDBase is the first RouterID reserved for Fibbing controllers.
const ControllerIDBase RouterID = 0xFFFF0000

// NodeRouterID maps a topology node to its RouterID.
func NodeRouterID(n topo.NodeID) RouterID { return RouterID(n) + 1 }

// RouterNode maps a RouterID back to its topology node.
func RouterNode(id RouterID) topo.NodeID { return topo.NodeID(id) - 1 }

// IsController reports whether the ID belongs to a Fibbing controller.
func (id RouterID) IsController() bool { return id >= ControllerIDBase }

// LSAType discriminates the LSA kinds of the protocol.
type LSAType uint8

const (
	// TypeRouter describes one router's links (our Router-LSA).
	TypeRouter LSAType = 1
	// TypePrefix announces a destination prefix at a cost from its
	// advertising router (collapsing OSPF's stub/external distinction).
	TypePrefix LSAType = 2
	// TypeFake is the Fibbing lie: a fake node attached to a real router,
	// announcing a prefix, with a forwarding address that the attached
	// router resolves to a physical next hop. It plays the role of the
	// Type-5 AS-external LSAs injected by the real Fibbing controller.
	TypeFake LSAType = 3
)

func (t LSAType) String() string {
	switch t {
	case TypeRouter:
		return "router"
	case TypePrefix:
		return "prefix"
	case TypeFake:
		return "fake"
	default:
		return fmt.Sprintf("lsa(%d)", uint8(t))
	}
}

// MaxAgeSeconds is the age at which an LSA is flushed; originating an LSA
// directly at MaxAge withdraws it (premature aging, as in OSPF).
const MaxAgeSeconds uint16 = 3600

// Header is the common LSA header. The tuple (Type, AdvRouter, LSID)
// identifies an LSA instance; (Seq, Age) order instances by freshness.
type Header struct {
	Type      LSAType
	Age       uint16
	AdvRouter RouterID
	LSID      uint32
	Seq       uint32
	Checksum  uint16
}

// Key identifies an LSA in the database.
type Key struct {
	Type      LSAType
	AdvRouter RouterID
	LSID      uint32
}

// Key returns the database key of the header.
func (h Header) Key() Key {
	return Key{Type: h.Type, AdvRouter: h.AdvRouter, LSID: h.LSID}
}

func (k Key) String() string {
	return fmt.Sprintf("%s/%d/%d", k.Type, k.AdvRouter, k.LSID)
}

// Newer reports whether h is fresher than old, per simplified OSPF rules:
// higher sequence wins; at equal sequence, a MaxAge instance supersedes a
// younger one (this implements withdrawal).
func (h Header) Newer(old Header) bool {
	if h.Seq != old.Seq {
		return h.Seq > old.Seq
	}
	return h.Age >= MaxAgeSeconds && old.Age < MaxAgeSeconds
}

// LSA is the decoded form of any LSA.
type LSA struct {
	Header Header

	// RouterLinks is set for TypeRouter.
	RouterLinks []RouterLink

	// Prefix and Metric are set for TypePrefix and TypeFake.
	Prefix netip.Prefix
	Metric uint32

	// Fake-specific fields (TypeFake).
	// AttachedTo is the real router the fake node hangs off.
	AttachedTo RouterID
	// AttachCost is the metric of the fake link AttachedTo -> fake node.
	// The total cost of the lie seen by AttachedTo is AttachCost+Metric.
	AttachCost uint32
	// ForwardVia is the physical neighbor of AttachedTo that traffic
	// sent "to the fake node" is actually forwarded to (the Type-5
	// forwarding address of real Fibbing).
	ForwardVia RouterID
}

// RouterLink is one adjacency advertised in a Router LSA.
type RouterLink struct {
	Neighbor RouterID
	Metric   uint32
}

// Clone returns a deep copy.
func (l *LSA) Clone() *LSA {
	c := *l
	c.RouterLinks = append([]RouterLink(nil), l.RouterLinks...)
	return &c
}

// --- Wire codec -------------------------------------------------------

// header layout: type(1) flags(1) age(2) advRouter(4) lsid(4) seq(4)
// length(2) checksum(2) = 20 bytes, followed by the body.
const headerLen = 20

const (
	flagV6 = 1 << 0 // prefix address is 16 bytes instead of 4
)

// Encode serialises the LSA. The checksum is computed over the body with
// the Fletcher-16 algorithm used by OSPF and stored in the header (the Age
// field is excluded from the checksum so aging does not require
// re-checksumming, as in OSPF).
func (l *LSA) Encode() []byte { return l.AppendEncode(nil) }

// AppendEncode serialises the LSA onto dst and returns the extended
// slice. The flooding hot path passes recycled buffers so steady-state
// LSA exchange allocates nothing.
func (l *LSA) AppendEncode(dst []byte) []byte {
	start := len(dst)
	var zeros [headerLen]byte
	dst = append(dst, zeros[:]...)
	dst = l.appendBody(dst)
	buf := dst[start:]
	body := buf[headerLen:]
	buf[0] = byte(l.Header.Type)
	if l.Header.Type != TypeRouter && l.Prefix.Addr().Is6() {
		buf[1] |= flagV6
	}
	binary.BigEndian.PutUint16(buf[2:], l.Header.Age)
	binary.BigEndian.PutUint32(buf[4:], uint32(l.Header.AdvRouter))
	binary.BigEndian.PutUint32(buf[8:], l.Header.LSID)
	binary.BigEndian.PutUint32(buf[12:], l.Header.Seq)
	binary.BigEndian.PutUint16(buf[16:], uint16(len(buf)))
	binary.BigEndian.PutUint16(buf[18:], Fletcher16(body))
	return dst
}

func (l *LSA) appendBody(dst []byte) []byte {
	switch l.Header.Type {
	case TypeRouter:
		var hdr [2]byte
		binary.BigEndian.PutUint16(hdr[:], uint16(len(l.RouterLinks)))
		dst = append(dst, hdr[:]...)
		for _, rl := range l.RouterLinks {
			var e [8]byte
			binary.BigEndian.PutUint32(e[:], uint32(rl.Neighbor))
			binary.BigEndian.PutUint32(e[4:], rl.Metric)
			dst = append(dst, e[:]...)
		}
		return dst
	case TypePrefix:
		dst = appendAddr(dst, l.Prefix.Addr())
		dst = append(dst, byte(l.Prefix.Bits()))
		var m [4]byte
		binary.BigEndian.PutUint32(m[:], l.Metric)
		return append(dst, m[:]...)
	case TypeFake:
		dst = appendAddr(dst, l.Prefix.Addr())
		dst = append(dst, byte(l.Prefix.Bits()))
		var m [16]byte
		binary.BigEndian.PutUint32(m[:], l.Metric)
		binary.BigEndian.PutUint32(m[4:], uint32(l.AttachedTo))
		binary.BigEndian.PutUint32(m[8:], l.AttachCost)
		binary.BigEndian.PutUint32(m[12:], uint32(l.ForwardVia))
		return append(dst, m[:]...)
	default:
		panic(fmt.Sprintf("ospf: encoding unknown LSA type %d", l.Header.Type))
	}
}

// appendAddr appends the address bytes without the intermediate slice
// AsSlice would allocate (4 bytes for v4, 16 for v6, as on the wire).
func appendAddr(dst []byte, a netip.Addr) []byte {
	if a.Is4() {
		b := a.As4()
		return append(dst, b[:]...)
	}
	b := a.As16()
	return append(dst, b[:]...)
}

// DecodeLSA parses one encoded LSA, verifying length and checksum.
func DecodeLSA(buf []byte) (*LSA, error) {
	if len(buf) < headerLen {
		return nil, fmt.Errorf("ospf: LSA truncated (%d bytes)", len(buf))
	}
	l := &LSA{}
	l.Header.Type = LSAType(buf[0])
	flags := buf[1]
	l.Header.Age = binary.BigEndian.Uint16(buf[2:])
	l.Header.AdvRouter = RouterID(binary.BigEndian.Uint32(buf[4:]))
	l.Header.LSID = binary.BigEndian.Uint32(buf[8:])
	l.Header.Seq = binary.BigEndian.Uint32(buf[12:])
	length := int(binary.BigEndian.Uint16(buf[16:]))
	l.Header.Checksum = binary.BigEndian.Uint16(buf[18:])
	if length != len(buf) {
		return nil, fmt.Errorf("ospf: LSA length field %d != buffer %d", length, len(buf))
	}
	body := buf[headerLen:]
	if got := Fletcher16(body); got != l.Header.Checksum {
		return nil, fmt.Errorf("ospf: LSA checksum mismatch (got %04x, want %04x)", got, l.Header.Checksum)
	}
	addrLen := 4
	if flags&flagV6 != 0 {
		addrLen = 16
	}
	switch l.Header.Type {
	case TypeRouter:
		if len(body) < 2 {
			return nil, fmt.Errorf("ospf: router LSA body truncated")
		}
		n := int(binary.BigEndian.Uint16(body))
		if len(body) != 2+8*n {
			return nil, fmt.Errorf("ospf: router LSA body size %d for %d links", len(body), n)
		}
		l.RouterLinks = make([]RouterLink, n)
		for i := 0; i < n; i++ {
			off := 2 + 8*i
			l.RouterLinks[i] = RouterLink{
				Neighbor: RouterID(binary.BigEndian.Uint32(body[off:])),
				Metric:   binary.BigEndian.Uint32(body[off+4:]),
			}
		}
	case TypePrefix:
		if len(body) != addrLen+5 {
			return nil, fmt.Errorf("ospf: prefix LSA body size %d", len(body))
		}
		p, err := decodePrefix(body, addrLen)
		if err != nil {
			return nil, err
		}
		l.Prefix = p
		l.Metric = binary.BigEndian.Uint32(body[addrLen+1:])
	case TypeFake:
		if len(body) != addrLen+5+12 {
			return nil, fmt.Errorf("ospf: fake LSA body size %d", len(body))
		}
		p, err := decodePrefix(body, addrLen)
		if err != nil {
			return nil, err
		}
		l.Prefix = p
		off := addrLen + 1
		l.Metric = binary.BigEndian.Uint32(body[off:])
		l.AttachedTo = RouterID(binary.BigEndian.Uint32(body[off+4:]))
		l.AttachCost = binary.BigEndian.Uint32(body[off+8:])
		l.ForwardVia = RouterID(binary.BigEndian.Uint32(body[off+12:]))
	default:
		return nil, fmt.Errorf("ospf: unknown LSA type %d", buf[0])
	}
	return l, nil
}

func decodePrefix(body []byte, addrLen int) (netip.Prefix, error) {
	addr, ok := netip.AddrFromSlice(body[:addrLen])
	if !ok {
		return netip.Prefix{}, fmt.Errorf("ospf: bad prefix address")
	}
	bits := int(body[addrLen])
	if bits > addr.BitLen() {
		return netip.Prefix{}, fmt.Errorf("ospf: bad prefix length %d", bits)
	}
	return netip.PrefixFrom(addr, bits).Masked(), nil
}

// Fletcher16 computes the Fletcher checksum over data, as used by OSPF for
// LSA integrity (RFC 905 variant without the check-octet placement).
func Fletcher16(data []byte) uint16 {
	var c0, c1 uint32
	for _, b := range data {
		c0 = (c0 + uint32(b)) % 255
		c1 = (c1 + c0) % 255
	}
	return uint16(c1<<8 | c0)
}

// --- Protocol packets --------------------------------------------------

// PacketType discriminates protocol messages exchanged over adjacencies.
type PacketType uint8

const (
	// PktHello maintains adjacency liveness.
	PktHello PacketType = 1
	// PktLSUpdate carries one or more LSAs (flooding).
	PktLSUpdate PacketType = 2
	// PktLSAck acknowledges received LSAs by header.
	PktLSAck PacketType = 3
)

// Packet is one protocol message.
type Packet struct {
	Type PacketType
	From RouterID
	// LSAs is set for PktLSUpdate (full LSAs).
	LSAs []*LSA
	// Acks is set for PktLSAck (headers only).
	Acks []Header
}

// Encode serialises the packet: type(1) from(4) count(2) then
// length-prefixed LSAs or fixed-size ack headers.
func (p *Packet) Encode() []byte { return p.AppendEncode(nil) }

// AppendEncode serialises the packet onto dst and returns the extended
// slice; the domain's buffer pool feeds it recycled capacity.
func (p *Packet) AppendEncode(dst []byte) []byte {
	var hdr [7]byte
	hdr[0] = byte(p.Type)
	binary.BigEndian.PutUint32(hdr[1:], uint32(p.From))
	switch p.Type {
	case PktHello:
		return append(dst, hdr[:]...)
	case PktLSUpdate:
		binary.BigEndian.PutUint16(hdr[5:], uint16(len(p.LSAs)))
		out := append(dst, hdr[:]...)
		for _, l := range p.LSAs {
			// Length-prefix backfilled after encoding in place.
			lenAt := len(out)
			out = append(out, 0, 0)
			start := len(out)
			out = l.AppendEncode(out)
			binary.BigEndian.PutUint16(out[lenAt:], uint16(len(out)-start))
		}
		return out
	case PktLSAck:
		binary.BigEndian.PutUint16(hdr[5:], uint16(len(p.Acks)))
		out := append(dst, hdr[:]...)
		for _, h := range p.Acks {
			var a [13]byte
			a[0] = byte(h.Type)
			binary.BigEndian.PutUint32(a[1:], uint32(h.AdvRouter))
			binary.BigEndian.PutUint32(a[5:], h.LSID)
			binary.BigEndian.PutUint32(a[9:], h.Seq)
			out = append(out, a[:]...)
		}
		return out
	default:
		panic(fmt.Sprintf("ospf: encoding unknown packet type %d", p.Type))
	}
}

// DecodePacket parses one protocol message.
func DecodePacket(buf []byte) (*Packet, error) {
	if len(buf) < 7 {
		return nil, fmt.Errorf("ospf: packet truncated")
	}
	p := &Packet{
		Type: PacketType(buf[0]),
		From: RouterID(binary.BigEndian.Uint32(buf[1:])),
	}
	n := int(binary.BigEndian.Uint16(buf[5:]))
	rest := buf[7:]
	switch p.Type {
	case PktHello:
		if len(rest) != 0 {
			return nil, fmt.Errorf("ospf: hello with payload")
		}
	case PktLSUpdate:
		for i := 0; i < n; i++ {
			if len(rest) < 2 {
				return nil, fmt.Errorf("ospf: update truncated")
			}
			ll := int(binary.BigEndian.Uint16(rest))
			rest = rest[2:]
			if len(rest) < ll {
				return nil, fmt.Errorf("ospf: update LSA truncated")
			}
			l, err := DecodeLSA(rest[:ll])
			if err != nil {
				return nil, err
			}
			p.LSAs = append(p.LSAs, l)
			rest = rest[ll:]
		}
		if len(rest) != 0 {
			return nil, fmt.Errorf("ospf: update trailing bytes")
		}
	case PktLSAck:
		if len(rest) != 13*n {
			return nil, fmt.Errorf("ospf: ack size %d for %d acks", len(rest), n)
		}
		for i := 0; i < n; i++ {
			a := rest[13*i:]
			p.Acks = append(p.Acks, Header{
				Type:      LSAType(a[0]),
				AdvRouter: RouterID(binary.BigEndian.Uint32(a[1:])),
				LSID:      binary.BigEndian.Uint32(a[5:]),
				Seq:       binary.BigEndian.Uint32(a[9:]),
			})
		}
	default:
		return nil, fmt.Errorf("ospf: unknown packet type %d", buf[0])
	}
	return p, nil
}
