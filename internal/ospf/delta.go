package ospf

// This file is the IGP stage of the delta pipeline. Every LSDB mutation is
// logged between SPF runs; when the debounced recomputation fires, the log
// is replayed onto a cached SPF graph as edge-level GraphChanges, the
// shortest-path tree is patched with spf.Incremental, and only prefixes
// whose announcers were touched (or whose LSAs changed) have their routes
// recomputed. The result leaves the router as a fib.Diff instead of a
// whole table, which the data plane uses to re-path only affected flows.
//
// The cached graph uses stable slot indices: a router or fake node keeps
// its graph index for as long as it lives, and freed slots are tombstoned
// (no edges) rather than compacted, so previous trees stay addressable.
// A full rebuild (fresh cache + full Dijkstra + whole-table diff) remains
// the fallback for cache misses, inconsistencies, and degenerate slot
// growth.

import (
	"cmp"
	"fmt"
	"net/netip"
	"slices"

	"fibbing.net/fibbing/internal/fib"
	"fibbing.net/fibbing/internal/spf"
	"fibbing.net/fibbing/internal/topo"
)

// lsaChange records one LSDB mutation between SPF runs. old and new are
// the stored instances (nil for install of a fresh key / removal).
type lsaChange struct {
	old, new *LSA
}

// noteDBChange appends to the change log unless the mutation is
// semantically neutral (a sequence-number refresh of identical content),
// which keeps periodic re-origination from triggering any SPF work.
func (r *Router) noteDBChange(old, new *LSA) {
	if old == nil && new == nil {
		return
	}
	if old != nil && new != nil && lsaContentEqual(old, new) {
		return
	}
	r.changeLog = append(r.changeLog, lsaChange{old: old, new: new})
}

// dbInstall stores an LSA and logs the transition.
func (r *Router) dbInstall(l *LSA) {
	old, _ := r.db.Get(l.Header.Key())
	r.db.Install(l)
	r.noteDBChange(old, l)
}

// dbRemove deletes an LSA and logs the transition.
func (r *Router) dbRemove(k Key) {
	old, ok := r.db.Get(k)
	if !ok {
		return
	}
	r.db.Remove(k)
	r.noteDBChange(old, nil)
}

// lsaContentEqual compares the routing-relevant payload of two instances
// of the same key. Router links are compared as multisets: origination
// iterates a map, so identical adjacency sets may serialise in any order.
func lsaContentEqual(a, b *LSA) bool {
	if a.Header.Type != b.Header.Type {
		return false
	}
	switch a.Header.Type {
	case TypeRouter:
		if len(a.RouterLinks) != len(b.RouterLinks) {
			return false
		}
		as := append([]RouterLink(nil), a.RouterLinks...)
		bs := append([]RouterLink(nil), b.RouterLinks...)
		compare := func(a, b RouterLink) int {
			if c := cmp.Compare(a.Neighbor, b.Neighbor); c != 0 {
				return c
			}
			return cmp.Compare(a.Metric, b.Metric)
		}
		slices.SortFunc(as, compare)
		slices.SortFunc(bs, compare)
		for i := range as {
			if as[i] != bs[i] {
				return false
			}
		}
		return true
	case TypePrefix:
		return a.Prefix == b.Prefix && a.Metric == b.Metric
	case TypeFake:
		return a.Prefix == b.Prefix && a.Metric == b.Metric &&
			a.AttachedTo == b.AttachedTo && a.AttachCost == b.AttachCost &&
			a.ForwardVia == b.ForwardVia
	}
	return false
}

// --- Cached SPF state ---------------------------------------------------

type slotKind uint8

const (
	slotFree slotKind = iota
	slotRouter
	slotFake
)

// slot describes what occupies one graph index.
type slot struct {
	kind   slotKind
	router RouterID // kind == slotRouter
	fake   *LSA     // kind == slotFake
}

// spfCache is the incrementally maintained SPF state of one router.
type spfCache struct {
	g       *spf.Graph
	slots   []slot
	index   map[RouterID]topo.NodeID // live router -> slot
	fakeIdx map[Key]topo.NodeID      // fake LSA key -> slot
	live    int
	tree    *spf.Tree // rooted at this router's own slot
}

func (c *spfCache) allocSlot(s slot) topo.NodeID {
	idx := c.g.AddNode()
	c.slots = append(c.slots, s)
	c.live++
	return idx
}

func (c *spfCache) freeSlot(idx topo.NodeID) {
	c.slots[idx] = slot{}
	c.live--
}

// routerNode resolves a graph index of a real router to its topology node.
func (c *spfCache) routerNode(idx topo.NodeID) (topo.NodeID, bool) {
	if int(idx) >= len(c.slots) || c.slots[idx].kind != slotRouter {
		return 0, false
	}
	return RouterNode(c.slots[idx].router), true
}

// routerLSA fetches the current Router LSA of id (LSID 0 by construction).
func (r *Router) routerLSA(id RouterID) *LSA {
	l, ok := r.db.Get(Key{Type: TypeRouter, AdvRouter: id, LSID: 0})
	if !ok {
		return nil
	}
	return l
}

func listsNeighbor(l *LSA, id RouterID) bool {
	if l == nil {
		return false
	}
	for _, rl := range l.RouterLinks {
		if rl.Neighbor == id {
			return true
		}
	}
	return false
}

// buildCache materialises the LSDB into a fresh cache: real routers first
// (two-way-checked adjacencies), then one leaf slot per fake LSA. Fakes
// whose attachment router is unknown keep a slot but no edge, so a later
// appearance of the router links them incrementally.
func (r *Router) buildCache() *spfCache {
	c := &spfCache{
		g:       spf.NewGraph(0),
		index:   make(map[RouterID]topo.NodeID),
		fakeIdx: make(map[Key]topo.NodeID),
	}
	routerLSAs := r.db.ByType(TypeRouter)
	byRouter := make(map[RouterID]*LSA, len(routerLSAs))
	for _, l := range routerLSAs {
		c.index[l.Header.AdvRouter] = c.allocSlot(slot{kind: slotRouter, router: l.Header.AdvRouter})
		byRouter[l.Header.AdvRouter] = l
	}
	for _, l := range routerLSAs {
		u := c.index[l.Header.AdvRouter]
		for _, rl := range l.RouterLinks {
			v, ok := c.index[rl.Neighbor]
			if !ok {
				continue
			}
			if !listsNeighbor(byRouter[rl.Neighbor], l.Header.AdvRouter) {
				continue // two-way check failed
			}
			c.g.AddEdge(u, spf.Edge{To: v, Weight: int64(rl.Metric), Link: topo.NoLink})
		}
	}
	for _, l := range r.db.ByType(TypeFake) {
		idx := c.allocSlot(slot{kind: slotFake, fake: l})
		c.fakeIdx[l.Header.Key()] = idx
		if attach, ok := c.index[l.AttachedTo]; ok {
			c.g.AddEdge(attach, spf.Edge{To: idx, Weight: int64(l.AttachCost), Link: topo.NoLink})
		}
	}
	return c
}

// effects accumulates what a change-log replay did to the cache.
type effects struct {
	edges         []spf.GraphChange
	dirtyPrefixes map[string]bool
	rebuild       bool // cache inconsistent: fall back to a full rebuild
}

// applyChange replays one LSDB mutation onto the cached graph.
func (r *Router) applyChange(c *spfCache, ch lsaChange, eff *effects) {
	l := ch.new
	if l == nil {
		l = ch.old
	}
	switch l.Header.Type {
	case TypeRouter:
		x := l.Header.AdvRouter
		added, removed := ch.old == nil, ch.new == nil
		if added {
			if _, dup := c.index[x]; dup {
				eff.rebuild = true
				return
			}
			c.index[x] = c.allocSlot(slot{kind: slotRouter, router: x})
		}
		if _, ok := c.index[x]; !ok {
			eff.rebuild = true // change for a router the cache never saw
			return
		}
		// Adjacencies of X against every neighbor mentioned before or
		// after: presence, weight, and the two-way check can all flip.
		pairs := make(map[RouterID]bool)
		if ch.old != nil {
			for _, rl := range ch.old.RouterLinks {
				pairs[rl.Neighbor] = true
			}
		}
		if ch.new != nil {
			for _, rl := range ch.new.RouterLinks {
				pairs[rl.Neighbor] = true
			}
		}
		if removed {
			// Clear the slot's edges explicitly instead of reconciling
			// from the LSDB: when X was removed and re-added within one
			// debounce window, the database already holds the re-added
			// instance, and deriving from it would re-install edges on
			// the slot we are about to tombstone (the re-add then wires
			// a fresh slot, leaving a live phantom copy of X).
			xi := c.index[x]
			for y := range pairs {
				yi, ok := c.index[y]
				if !ok {
					continue
				}
				if c.g.ReplaceEdges(xi, yi, nil) {
					eff.edges = append(eff.edges, spf.GraphChange{From: xi, To: yi})
				}
				if c.g.ReplaceEdges(yi, xi, nil) {
					eff.edges = append(eff.edges, spf.GraphChange{From: yi, To: xi})
				}
			}
			c.freeSlot(xi)
			delete(c.index, x)
		} else {
			for y := range pairs {
				r.reconcileAdjacency(c, x, y, eff)
			}
		}
		if added || removed {
			// Prefixes announced by X appear or disappear with it.
			for _, pl := range r.db.ByType(TypePrefix) {
				if pl.Header.AdvRouter == x {
					eff.dirtyPrefixes[pl.Prefix.String()] = true
				}
			}
		}
		// Fakes hanging off X: their edge follows X's slot, and their
		// usability follows our adjacency state (a lie's forwarding
		// address is gated on the neighbor being up), so mark their
		// prefixes dirty on any change. When X was just removed, its
		// tombstoned slot keeps a stale out-edge to the fake: harmless,
		// because the slot has no in-edges left and the removal of those
		// in-edges dirties the fake transitively.
		for _, fi := range c.fakeIdx {
			f := c.slots[fi].fake
			if f == nil || f.AttachedTo != x {
				continue
			}
			eff.dirtyPrefixes[f.Prefix.String()] = true
			if attachIdx, ok := c.index[x]; ok {
				if c.g.ReplaceEdges(attachIdx, fi, []spf.Edge{{Weight: int64(f.AttachCost), Link: topo.NoLink}}) {
					eff.edges = append(eff.edges, spf.GraphChange{From: attachIdx, To: fi})
				}
			}
		}
	case TypePrefix:
		if ch.old != nil {
			eff.dirtyPrefixes[ch.old.Prefix.String()] = true
		}
		if ch.new != nil {
			eff.dirtyPrefixes[ch.new.Prefix.String()] = true
		}
	case TypeFake:
		k := l.Header.Key()
		if ch.old != nil {
			idx, ok := c.fakeIdx[k]
			if !ok {
				eff.rebuild = true
				return
			}
			eff.dirtyPrefixes[ch.old.Prefix.String()] = true
			if attach, aok := c.index[ch.old.AttachedTo]; aok {
				if c.g.ReplaceEdges(attach, idx, nil) {
					eff.edges = append(eff.edges, spf.GraphChange{From: attach, To: idx})
				}
			}
			if ch.new == nil {
				c.freeSlot(idx)
				delete(c.fakeIdx, k)
				return
			}
			c.slots[idx].fake = ch.new
		} else {
			c.fakeIdx[k] = c.allocSlot(slot{kind: slotFake, fake: ch.new})
		}
		idx := c.fakeIdx[k]
		eff.dirtyPrefixes[ch.new.Prefix.String()] = true
		if attach, ok := c.index[ch.new.AttachedTo]; ok {
			if c.g.ReplaceEdges(attach, idx, []spf.Edge{{Weight: int64(ch.new.AttachCost), Link: topo.NoLink}}) {
				eff.edges = append(eff.edges, spf.GraphChange{From: attach, To: idx})
			}
		}
	}
}

// reconcileAdjacency re-derives the graph edges between routers x and y
// from their current LSAs (two-way check included) and records a
// GraphChange per direction that differed.
func (r *Router) reconcileAdjacency(c *spfCache, x, y RouterID, eff *effects) {
	if x == y {
		return
	}
	xi, xok := c.index[x]
	yi, yok := c.index[y]
	if !xok || !yok {
		return // a missing slot has no edges to reconcile
	}
	xl, yl := r.routerLSA(x), r.routerLSA(y)
	var xy, yx []spf.Edge
	if listsNeighbor(yl, x) && xl != nil {
		for _, rl := range xl.RouterLinks {
			if rl.Neighbor == y {
				xy = append(xy, spf.Edge{Weight: int64(rl.Metric), Link: topo.NoLink})
			}
		}
	}
	if listsNeighbor(xl, y) && yl != nil {
		for _, rl := range yl.RouterLinks {
			if rl.Neighbor == x {
				yx = append(yx, spf.Edge{Weight: int64(rl.Metric), Link: topo.NoLink})
			}
		}
	}
	if c.g.ReplaceEdges(xi, yi, xy) {
		eff.edges = append(eff.edges, spf.GraphChange{From: xi, To: yi})
	}
	if c.g.ReplaceEdges(yi, xi, yx) {
		eff.edges = append(eff.edges, spf.GraphChange{From: yi, To: xi})
	}
}

// --- Route computation over the cache -----------------------------------

// announcer is one source of a prefix: a Prefix LSA's advertising router,
// or a fake node.
type announcer struct {
	idx    topo.NodeID // graph slot of the announcing node
	metric uint32
	fake   *LSA
}

// collectAnnouncers groups announcements per prefix string.
func (r *Router) collectAnnouncers(c *spfCache) (map[string][]announcer, map[string]netip.Prefix) {
	byPrefix := make(map[string][]announcer)
	prefixOf := make(map[string]netip.Prefix)
	for _, l := range r.db.ByType(TypePrefix) {
		aIdx, ok := c.index[l.Header.AdvRouter]
		if !ok {
			continue
		}
		k := l.Prefix.String()
		byPrefix[k] = append(byPrefix[k], announcer{idx: aIdx, metric: l.Metric})
		prefixOf[k] = l.Prefix
	}
	// Fakes are walked via the LSDB's sorted key order, not the fakeIdx
	// map, so the per-prefix announcer lists (and any errors routeFor
	// raises while scanning them) are ordered identically on every run.
	for _, l := range r.db.ByType(TypeFake) {
		fi, ok := c.fakeIdx[l.Header.Key()]
		if !ok {
			continue
		}
		l = c.slots[fi].fake
		k := l.Prefix.String()
		byPrefix[k] = append(byPrefix[k], announcer{idx: fi, metric: l.Metric, fake: l})
		prefixOf[k] = l.Prefix
	}
	return byPrefix, prefixOf
}

// routeFor computes the route this router installs for one prefix: best
// distance across announcers, deduplicated real ECMP next hops, plus one
// extra weighted path per locally attached fake (Fibbing's uneven
// splitting). ok is false when no route is installable.
func (r *Router) routeFor(c *spfCache, p netip.Prefix, anns []announcer, selfIdx topo.NodeID) (fib.Route, bool) {
	tree := c.tree
	best := spf.Infinity
	local := false
	for _, a := range anns {
		if a.fake == nil && a.idx == selfIdx {
			local = true
			break
		}
		if !tree.Reachable(a.idx) {
			continue
		}
		if d := tree.Dist[a.idx] + int64(a.metric); d < best {
			best = d
		}
	}
	if local {
		return fib.Route{Prefix: p, Local: true}, true
	}
	if best == spf.Infinity {
		return fib.Route{}, false
	}
	setNH := make(map[topo.NodeID]bool)
	extra := make(map[topo.NodeID]int)
	for _, a := range anns {
		if !tree.Reachable(a.idx) || tree.Dist[a.idx]+int64(a.metric) != best {
			continue
		}
		if a.fake != nil && a.fake.AttachedTo == r.id {
			via := RouterNode(a.fake.ForwardVia)
			if _, ok := r.dom.topo.FindLink(r.node, via); !ok {
				r.spfError(fmt.Errorf(
					"ospf: fake LSA %s forwards via non-neighbor %d",
					a.fake.Header.Key(), a.fake.ForwardVia))
				continue
			}
			// A fake next hop is only usable while the adjacency to its
			// forwarding address is up — otherwise the lie would blackhole
			// traffic after a link failure.
			if nb := r.nbrs[a.fake.ForwardVia]; nb == nil || !nb.up {
				continue
			}
			extra[via]++
			continue
		}
		for _, nh := range tree.NextHops(a.idx) {
			node, ok := c.routerNode(nh.Node)
			if !ok {
				continue
			}
			setNH[node] = true
		}
	}
	var nhs []fib.NextHop
	for node := range setNH {
		l, ok := r.dom.topo.FindLink(r.node, node)
		if !ok {
			continue
		}
		nhs = append(nhs, fib.NextHop{Node: node, Link: l.ID, Weight: 1})
	}
	for node, w := range extra {
		l, _ := r.dom.topo.FindLink(r.node, node)
		nhs = append(nhs, fib.NextHop{Node: node, Link: l.ID, Weight: w})
	}
	if len(nhs) == 0 {
		return fib.Route{}, false
	}
	route := fib.Route{Prefix: p, NextHops: nhs, Distance: best}
	route.Normalize()
	return route, true
}
