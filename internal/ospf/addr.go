package ospf

import (
	"net/netip"

	"fibbing.net/fibbing/internal/topo"
)

// Addressing scheme of the emulated network.
//
// Every router owns a loopback /32 in 10.0.0.0/16, derived from its node
// ID. Routers originate a Prefix LSA for their loopback, so management
// traffic (SNMP polling, controller sessions) is routable like in a real
// deployment. Destination prefixes come from the topology (for Figure 1,
// the blue prefix 10.66.0.0/16 at C).

// Loopback returns the loopback address of a node: 10.0.hi.lo with
// hi.lo = node ID + 1 (so node 0 gets 10.0.0.1).
func Loopback(n topo.NodeID) netip.Addr {
	v := uint16(n) + 1
	return netip.AddrFrom4([4]byte{10, 0, byte(v >> 8), byte(v)})
}

// LoopbackPrefix returns the /32 covering a node's loopback.
func LoopbackPrefix(n topo.NodeID) netip.Prefix {
	return netip.PrefixFrom(Loopback(n), 32)
}

// HostAddr synthesises the i-th host address inside a destination prefix
// (i starts at 0). It is used to give simulated clients distinct addresses
// within the prefix the flash crowd targets.
func HostAddr(p netip.Prefix, i int) netip.Addr {
	a := p.Addr().As4()
	// Skip the network address; wrap within the host space of a /16-ish
	// prefix. Two low bytes give 65534 usable hosts, ample for the demo.
	v := uint32(a[2])<<8 | uint32(a[3])
	v += uint32(i%65534) + 1
	a[2], a[3] = byte(v>>8), byte(v)
	return netip.AddrFrom4(a)
}
