package te

import (
	"fmt"
	"math"
	"slices"

	"fibbing.net/fibbing/internal/topo"
)

// MinMaxResult is the solution of the min-max link-utilisation
// multicommodity-flow problem (the optimum the paper's §2 references).
type MinMaxResult struct {
	// MaxUtilisation is the optimal value θ* = max_e load_e / cap_e.
	MaxUtilisation float64
	// Flow is, per destination prefix name, the flow on every directed
	// link (bit/s), cycle-free.
	Flow map[string]map[topo.LinkID]float64
	// Splits gives, per destination and router, the fraction of that
	// router's traffic to the destination sent to each next hop. This is
	// the input Fibbing turns into duplicated fake nodes.
	Splits map[string]map[topo.NodeID]map[topo.NodeID]float64
}

// SolveMinMax computes the optimal min-max link utilisation routing for
// the demand set using an arc-flow LP per destination (commodities to the
// same destination aggregate). Demands to prefixes with multiple
// attachments may be absorbed at any attachment.
//
// The LP is solved in normalised units: every capacity and demand volume
// is divided by ProblemScale(t, demands) before the tableau is built and
// the flows are multiplied back afterwards, so the solve — and therefore
// the splits Fibbing realises — is invariant under uniform rescaling of
// the traffic (Mbit/s and 100 Gbit/s versions of the same relative
// problem produce the same routing). θ* is dimensionless and needs no
// rescaling.
//
// Host nodes never transit: their links are excluded from the flow graph
// except as demand entry points is not needed because demands enter at
// routers directly.
func SolveMinMax(t *topo.Topology, demands []topo.Demand) (*MinMaxResult, error) {
	p, err := buildMinMax(t, demands)
	if err != nil {
		return nil, err
	}
	sol, obj, status := p.bld.Solve()
	if status != Optimal {
		return nil, fmt.Errorf("te: min-max LP %v", status)
	}
	return p.extract(t, sol, obj), nil
}

// minMaxCommodity is one destination prefix's aggregated demand.
type minMaxCommodity struct {
	name    string
	sinks   map[topo.NodeID]bool
	ingress map[topo.NodeID]float64
}

// minMaxProblem is a built min-max LP plus the metadata needed to turn
// its solution vector back into flows and splits.
type minMaxProblem struct {
	bld    *LPBuilder
	links  []topo.Link
	order  []string
	byName map[string]*minMaxCommodity
	x      map[string][]int
	scale  float64
}

// buildMinMax assembles the min-max LP for the demand set without solving
// it, so cold (Solve) and warm (SolveFromBasis) paths share one build.
func buildMinMax(t *topo.Topology, demands []topo.Demand) (*minMaxProblem, error) {
	// Collect commodities: destination prefix -> ingress -> volume.
	byName := make(map[string]*minMaxCommodity)
	var order []string
	for _, d := range demands {
		p, ok := t.PrefixByName(d.PrefixName)
		if !ok {
			return nil, fmt.Errorf("te: unknown prefix %q", d.PrefixName)
		}
		c := byName[d.PrefixName]
		if c == nil {
			c = &minMaxCommodity{
				name:    d.PrefixName,
				sinks:   make(map[topo.NodeID]bool),
				ingress: make(map[topo.NodeID]float64),
			}
			for _, a := range p.Attachments {
				c.sinks[a.Node] = true
			}
			byName[d.PrefixName] = c
			order = append(order, d.PrefixName)
		}
		if c.sinks[d.Ingress] {
			continue // demand at the attachment is delivered locally
		}
		c.ingress[d.Ingress] += d.Volume
	}
	slices.Sort(order)

	// Router-router links only, with finite capacity required.
	var links []topo.Link
	for _, l := range t.Links() {
		if t.Node(l.From).Host || t.Node(l.To).Host {
			continue
		}
		links = append(links, l)
	}
	if len(links) == 0 {
		return nil, fmt.Errorf("te: no router links")
	}

	scale := ProblemScale(t, demands)

	bld := NewLPBuilder()
	theta := bld.AddVar(1) // minimise θ

	// x[k][i]: flow of commodity k on links[i].
	x := make(map[string][]int, len(order))
	for _, name := range order {
		vars := make([]int, len(links))
		for i := range links {
			vars[i] = bld.AddVar(0)
		}
		x[name] = vars
	}

	// Conservation: for every commodity and every non-sink router:
	// out - in = ingress volume at that router.
	for _, name := range order {
		c := byName[name]
		for _, n := range t.Nodes() {
			if n.Host || c.sinks[n.ID] {
				continue
			}
			terms := map[int]float64{}
			for i, l := range links {
				if l.From == n.ID {
					terms[x[name][i]] += 1
				}
				if l.To == n.ID {
					terms[x[name][i]] -= 1
				}
			}
			if len(terms) == 0 {
				if c.ingress[n.ID] > 0 {
					return nil, fmt.Errorf("te: ingress %s has no links", t.Name(n.ID))
				}
				continue
			}
			bld.AddEq(terms, c.ingress[n.ID]/scale)
		}
	}

	// Capacity: Σ_k x_k,e <= cap_e · θ.
	for i, l := range links {
		if l.Capacity <= 0 {
			continue // uncapacitated
		}
		terms := map[int]float64{theta: -l.Capacity / scale}
		for _, name := range order {
			terms[x[name][i]] += 1
		}
		bld.AddLe(terms, 0)
	}

	return &minMaxProblem{
		bld:    bld,
		links:  links,
		order:  order,
		byName: byName,
		x:      x,
		scale:  scale,
	}, nil
}

// extract converts an optimal solution vector of the built LP back into a
// MinMaxResult in bit/s.
func (p *minMaxProblem) extract(t *topo.Topology, sol []float64, obj float64) *MinMaxResult {
	links, order, byName, x, scale := p.links, p.order, p.byName, p.x, p.scale
	res := &MinMaxResult{
		MaxUtilisation: obj,
		Flow:           make(map[string]map[topo.LinkID]float64, len(order)),
		Splits:         make(map[string]map[topo.NodeID]map[topo.NodeID]float64, len(order)),
	}
	for _, name := range order {
		// Per-link flow below SolverRelTol of the commodity's own volume
		// is solver noise, whatever the absolute traffic scale; keeping it
		// would fabricate spurious split ratios for the quantiser to
		// honour with real ECMP weights.
		volume := 0.0
		for _, v := range byName[name].ingress {
			volume += v / scale
		}
		eps := SolverRelTol * volume
		if eps == 0 {
			eps = SolverRelTol // zero-volume commodity: any flow is noise
		}
		flow := make(map[topo.LinkID]float64, len(links))
		for i, l := range links {
			if v := sol[x[name][i]]; v > eps {
				flow[l.ID] = v
			}
		}
		removeCycles(t, links, flow, eps)
		res.Splits[name] = extractSplits(t, links, flow, eps)
		for id := range flow {
			flow[id] *= scale // back to bit/s
		}
		res.Flow[name] = flow
	}
	return res
}

// removeCycles cancels flow cycles in place (LP optima may contain
// zero-impact circulations that would confuse split extraction). eps is
// the caller's noise threshold: flow at or below it is treated as absent.
func removeCycles(t *topo.Topology, links []topo.Link, flow map[topo.LinkID]float64, eps float64) {
	out := make(map[topo.NodeID][]topo.Link)
	rebuild := func() {
		for k := range out {
			delete(out, k)
		}
		for _, l := range links {
			if flow[l.ID] > eps {
				out[l.From] = append(out[l.From], l)
			}
		}
	}
	for iter := 0; iter < len(links)+1; iter++ {
		rebuild()
		cycle := findCycle(out)
		if cycle == nil {
			return
		}
		min := math.Inf(1)
		for _, l := range cycle {
			if flow[l.ID] < min {
				min = flow[l.ID]
			}
		}
		for _, l := range cycle {
			flow[l.ID] -= min
			if flow[l.ID] <= eps {
				delete(flow, l.ID)
			}
		}
	}
}

// findCycle returns the links of one directed cycle in the support graph,
// or nil.
func findCycle(out map[topo.NodeID][]topo.Link) []topo.Link {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	state := map[topo.NodeID]int{}
	var stack []topo.Link
	var found []topo.Link
	var dfs func(u topo.NodeID) bool
	dfs = func(u topo.NodeID) bool {
		state[u] = grey
		for _, l := range out[u] {
			switch state[l.To] {
			case grey:
				// Unwind the stack to the cycle start.
				found = append(found, l)
				for i := len(stack) - 1; i >= 0; i-- {
					found = append(found, stack[i])
					if stack[i].From == l.To {
						break
					}
				}
				return true
			case white:
				stack = append(stack, l)
				if dfs(l.To) {
					return true
				}
				stack = stack[:len(stack)-1]
			}
		}
		state[u] = black
		return false
	}
	for u := range out {
		if state[u] == white {
			stack = stack[:0]
			if dfs(u) {
				return found
			}
		}
	}
	return nil
}

// extractSplits converts per-link flow into per-router next-hop fractions,
// ignoring flow at or below the caller's noise threshold eps.
func extractSplits(t *topo.Topology, links []topo.Link, flow map[topo.LinkID]float64, eps float64) map[topo.NodeID]map[topo.NodeID]float64 {
	outFlow := make(map[topo.NodeID]map[topo.NodeID]float64)
	totals := make(map[topo.NodeID]float64)
	for _, l := range links {
		v := flow[l.ID]
		if v <= eps {
			continue
		}
		if outFlow[l.From] == nil {
			outFlow[l.From] = make(map[topo.NodeID]float64)
		}
		outFlow[l.From][l.To] += v
		totals[l.From] += v
	}
	splits := make(map[topo.NodeID]map[topo.NodeID]float64, len(outFlow))
	for u, nh := range outFlow {
		s := make(map[topo.NodeID]float64, len(nh))
		for v, f := range nh {
			s[v] = f / totals[u]
		}
		splits[u] = s
	}
	return splits
}

// MaxUtilOfLoads computes max_e load_e/cap_e for a load map.
func MaxUtilOfLoads(t *topo.Topology, loads map[topo.LinkID]float64) float64 {
	max := 0.0
	for id, load := range loads {
		l := t.Link(id)
		if l.Capacity <= 0 {
			continue
		}
		if u := load / l.Capacity; u > max {
			max = u
		}
	}
	return max
}
