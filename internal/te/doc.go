// Package te implements the traffic-engineering machinery surrounding
// Fibbing: the optimisation targets the controller's strategies realise
// with lies, and the baseline schemes the paper argues against.
//
// # The solver family
//
// The package contains five solvers; the planner and the experiments use
// each for a different job:
//
//   - SolveLP (simplex.go) is the substrate: a dense two-phase primal
//     simplex with Bland's anti-cycling rule, assembled via LPBuilder.
//     Everything LP-shaped goes through it; nothing else in the
//     repository links an external solver.
//   - SolveMinMax (minmax.go) is the paper's §2 optimum: the min-max
//     link-utilisation multicommodity-flow LP, one arc-flow commodity
//     per destination prefix. Its Splits output is what
//     fibbing.SplitsToDAG quantises into ECMP weights — the lp-optimal
//     strategy's whole pipeline. The controller guards it with
//     MaxLPRouters because the dense tableau grows quadratically.
//   - SolveGreedy (greedy.go) is the anytime middle ground: chunked
//     greedy path placement under a Fortz-Thorup congestion cost,
//     within tens of percent of the LP at a fraction of the cost. The
//     experiments use it to show the optimum is not an artifact of
//     solver sophistication.
//   - OptimizeWeights (weightopt.go) is the "traditional TE" baseline:
//     local search over IGP link weights. It exists to be slow and
//     disruptive — every weight change is a network-wide reconvergence
//     event — which is the paper's argument for Fibbing.
//   - PlaceTunnels (rsvpte.go) is the MPLS RSVP-TE baseline: CSPF
//     tunnel placement with explicit signalling/state/encapsulation
//     accounting, the control- and data-plane overhead §2 holds against
//     tunnels.
//
// LinkLoads/IGPLoads/LoadsWithLies (loads.go) propagate a demand set
// over route views to per-link bit/s loads — the shared evaluator under
// the planner's predictions and every experiment. EstimateDemands
// (estimate.go) inverts that propagation: non-negative multiplicative
// updates recover ingress demands from observed link loads when no
// server-side notifications exist.
//
// # Numerical conditioning
//
// All volumes and capacities are bit/s, so production problems carry
// coefficients of 1e9-1e11. The package is scale-invariant by
// construction (see scale.go): SolveMinMax normalises every problem by
// ProblemScale (a power of two, so rescaling is exact) before building
// the tableau, and every tolerance in the solvers is relative —
// SolverRelTol against the magnitudes being compared, FeasibilityRelTol
// against the right-hand side for the phase-1 feasibility verdict.
// Solving the same relative problem at 1 Mbit/s and 100 Gbit/s yields
// the same θ*, the same splits, and therefore the same lies.
package te
