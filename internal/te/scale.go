package te

// Numerical conditioning for the TE solvers.
//
// Demand volumes and link capacities arrive in bit/s, so a production
// scenario hands the LP coefficients of magnitude 1e9-1e11 while the
// simplex manipulates pivot elements of magnitude 1. Absolute tolerances
// (is this reduced cost zero? is this pivot element usable?) that are
// calibrated for O(1) problems silently misjudge such tableaus: pivots on
// noise-sized elements corrupt the basis and the solver terminates at a
// wrong "optimum". The cure is scale invariance, applied twice over:
//
//   - SolveMinMax divides every capacity and demand volume by
//     ProblemScale before building the LP, so the solver always sees an
//     O(1) problem regardless of absolute traffic magnitudes, and
//     multiplies the flows back afterwards. The scale factor is a power
//     of two, so the round trip is exact in binary floating point.
//   - SolveLP itself measures the magnitudes it is handed (objective,
//     right-hand side, pivot columns) and applies its tolerances
//     relative to them, so even directly-built ill-conditioned problems
//     solve correctly.
//
// The knobs below are the package's tolerance family. They are consts,
// not variables: every solver result in tests and production is meant to
// be reproducible from source.

import (
	"math"

	"fibbing.net/fibbing/internal/topo"
)

// SolverRelTol is the base relative tolerance of the LP machinery: a
// quantity is treated as zero when it is below SolverRelTol times the
// magnitude of the values it is compared against. It is also the
// relative cutoff under which SolveMinMax discards per-link flow as
// solver noise (relative to the commodity's total volume).
const SolverRelTol = 1e-9

// FeasibilityRelTol is the phase-1 feasibility slack of the simplex,
// relative to the largest right-hand-side magnitude: an LP whose
// artificial variables cannot be driven below this fraction of the
// problem scale is reported Infeasible.
const FeasibilityRelTol = 1e-6

// ProblemScale returns the normalisation factor SolveMinMax divides
// capacities and demand volumes by before building the LP: the largest
// power of two not exceeding the problem's dominant magnitude (the
// maximum over finite link capacities and demand volumes). A power of
// two makes the divide-then-multiply round trip exact — mantissas are
// untouched, only exponents shift. Degenerate inputs (no capacitated
// links, no positive demand) scale by 1.
func ProblemScale(t *topo.Topology, demands []topo.Demand) float64 {
	max := 0.0
	for _, l := range t.Links() {
		if l.Capacity > max && !math.IsInf(l.Capacity, 1) {
			max = l.Capacity
		}
	}
	for _, d := range demands {
		if d.Volume > max && !math.IsInf(d.Volume, 1) {
			max = d.Volume
		}
	}
	return powerOfTwoScale(max)
}

// powerOfTwoScale returns the largest power of two <= v, or 1 when v is
// not a positive finite number.
func powerOfTwoScale(v float64) float64 {
	if v <= 0 || math.IsInf(v, 1) || math.IsNaN(v) {
		return 1
	}
	// Frexp: v = frac * 2^exp with frac in [0.5, 1), so 2^(exp-1) <= v.
	_, exp := math.Frexp(v)
	return math.Ldexp(1, exp-1)
}
