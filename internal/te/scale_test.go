package te

// Scale-invariance tests: the planner numerics used to stall above
// ~1 Gbit/s demand volumes (wrong simplex optima at large coefficient
// magnitudes — the old ROADMAP ceiling). These tests pin the fix: the
// min-max solve must produce the same relative answer whether volumes
// are expressed in Mbit/s or 100 Gbit/s, and the raw simplex must
// survive badly-conditioned tableaus.

import (
	"fmt"
	"math"
	"testing"
	"time"

	"fibbing.net/fibbing/internal/fibbing"
	"fibbing.net/fibbing/internal/topo"
)

func TestProblemScalePowerOfTwo(t *testing.T) {
	tp := topo.Abilene(10e9, 0)
	demands := []topo.Demand{
		{Ingress: tp.MustNode("Seattle"), PrefixName: "cdn-east", Volume: 9e9},
	}
	s := ProblemScale(tp, demands)
	if s <= 0 || math.Log2(s) != math.Trunc(math.Log2(s)) {
		t.Fatalf("scale %v is not a positive power of two", s)
	}
	if s > 10e9 || 2*s <= 10e9 {
		t.Fatalf("scale %v is not the largest power of two <= 10e9", s)
	}
}

func TestProblemScaleDegenerate(t *testing.T) {
	tp := topo.New()
	a := tp.AddNode("a")
	b := tp.AddNode("b")
	tp.AddLink(a, b, 1, topo.LinkOpts{}) // uncapacitated
	if s := ProblemScale(tp, nil); s != 1 {
		t.Fatalf("degenerate scale = %v, want 1", s)
	}
}

// TestMinMaxScaleInvariance solves proportionally-scaled versions of the
// same Abilene problem across five orders of magnitude: θ* must be
// identical (it is dimensionless) and the flows must scale linearly.
func TestMinMaxScaleInvariance(t *testing.T) {
	solve := func(scale float64) *MinMaxResult {
		tp := topo.Abilene(10*scale, 0)
		demands := []topo.Demand{
			{Ingress: tp.MustNode("Seattle"), PrefixName: "cdn-east", Volume: 9 * scale},
			{Ingress: tp.MustNode("LosAngeles"), PrefixName: "cdn-east", Volume: 6 * scale},
			{Ingress: tp.MustNode("Chicago"), PrefixName: "cdn-west", Volume: 7 * scale},
		}
		res, err := SolveMinMax(tp, demands)
		if err != nil {
			t.Fatalf("scale %g: %v", scale, err)
		}
		return res
	}
	ref := solve(1e6)
	for _, scale := range []float64{1e7, 1e8, 1e9, 1e10, 1e11} {
		res := solve(scale)
		if d := math.Abs(res.MaxUtilisation - ref.MaxUtilisation); d > 1e-6 {
			t.Errorf("scale %g: θ* = %v, want %v (Δ %g)", scale, res.MaxUtilisation, ref.MaxUtilisation, d)
		}
		// Total flow per commodity must scale linearly with the volumes.
		for name, flow := range res.Flow {
			sum := 0.0
			for _, v := range flow {
				sum += v
			}
			refSum := 0.0
			for _, v := range ref.Flow[name] {
				refSum += v
			}
			want := refSum * scale / 1e6
			if want > 0 && math.Abs(sum-want)/want > 1e-6 {
				t.Errorf("scale %g: commodity %s total flow %g, want %g", scale, name, sum, want)
			}
		}
		// No spurious splits: every split fraction must be realisable.
		for name, routers := range res.Splits {
			for u, nh := range routers {
				for v, f := range nh {
					if f < 1e-6 {
						t.Errorf("scale %g: %s router %d -> %d: noise split %g survived", scale, name, u, v, f)
					}
				}
			}
		}
	}
}

// TestSimplexMixedMagnitudes exercises SolveLP on tableaus whose
// coefficients span 1e-3..1e11 — the conditioning regime where absolute
// tolerances silently corrupt the basis.
func TestSimplexMixedMagnitudes(t *testing.T) {
	t.Run("mixed-rows", func(t *testing.T) {
		// minimise -x s.t. 1e11 x + s1 = 1e11, 1e-3 x + s2 = 2e-3:
		// x <= 1 binds, optimum x = 1.
		c := []float64{-1, 0, 0}
		a := [][]float64{
			{1e11, 1, 0},
			{1e-3, 0, 1},
		}
		b := []float64{1e11, 2e-3}
		x, obj, status := SolveLP(c, a, b)
		if status != Optimal {
			t.Fatalf("status %v", status)
		}
		if math.Abs(x[0]-1) > 1e-6 || math.Abs(obj-(-1)) > 1e-6 {
			t.Fatalf("x = %v obj = %v, want x[0]=1 obj=-1", x, obj)
		}
	})
	t.Run("mixed-columns", func(t *testing.T) {
		// minimise -x - y s.t. 1e-3 x + 1e11 y + s = 1e11, x + s2 = 5:
		// x = 5, y = (1e11 - 5e-3)/1e11 ≈ 1.
		c := []float64{-1, -1, 0, 0}
		a := [][]float64{
			{1e-3, 1e11, 1, 0},
			{1, 0, 0, 1},
		}
		b := []float64{1e11, 5}
		x, _, status := SolveLP(c, a, b)
		if status != Optimal {
			t.Fatalf("status %v", status)
		}
		if math.Abs(x[0]-5) > 1e-6 || math.Abs(x[1]-1) > 1e-6 {
			t.Fatalf("x = %v, want [5, ~1]", x)
		}
	})
	t.Run("uniformly-scaled", func(t *testing.T) {
		// The same LP at 1x and 1e9x row scaling must agree: minimise
		// -x-2y s.t. x+y <= 4, y <= 3 -> x=1, y=3, obj=-7.
		for _, rowScale := range []float64{1, 1e9} {
			c := []float64{-1, -2, 0, 0}
			a := [][]float64{
				{rowScale, rowScale, rowScale, 0},
				{0, rowScale, 0, rowScale},
			}
			b := []float64{4 * rowScale, 3 * rowScale}
			x, obj, status := SolveLP(c, a, b)
			if status != Optimal {
				t.Fatalf("rowScale %g: status %v", rowScale, status)
			}
			if math.Abs(x[0]-1) > 1e-6 || math.Abs(x[1]-3) > 1e-6 || math.Abs(obj-(-7)) > 1e-6 {
				t.Fatalf("rowScale %g: x = %v obj = %v, want [1 3] -7", rowScale, x, obj)
			}
		}
	})
	t.Run("feasibility-at-scale", func(t *testing.T) {
		// x + y = 1e9 with x, y >= 0 is feasible; the phase-1 residual
		// at this magnitude is roundoff and must not read as Infeasible.
		c := []float64{1, 1}
		a := [][]float64{{1, 1}}
		b := []float64{1e9}
		_, obj, status := SolveLP(c, a, b)
		if status != Optimal {
			t.Fatalf("status %v, want optimal", status)
		}
		if math.Abs(obj-1e9)/1e9 > 1e-6 {
			t.Fatalf("obj = %v, want 1e9", obj)
		}
	})
}

// TestMinMaxGbitAbilene is the direct regression for the old ROADMAP
// ceiling: on Abilene with 10 Gbit/s links and Gbit-scale demands the LP
// used to terminate at a wrong vertex (θ* = 1.5 instead of 0.75).
func TestMinMaxGbitAbilene(t *testing.T) {
	for _, capacity := range []float64{1e9, 10e9} {
		tp := topo.Abilene(capacity, time.Millisecond)
		demands := []topo.Demand{
			{Ingress: tp.MustNode("Seattle"), PrefixName: "cdn-east", Volume: 0.9 * capacity},
			{Ingress: tp.MustNode("LosAngeles"), PrefixName: "cdn-east", Volume: 0.6 * capacity},
			{Ingress: tp.MustNode("Chicago"), PrefixName: "cdn-west", Volume: 0.7 * capacity},
		}
		res, err := SolveMinMax(tp, demands)
		if err != nil {
			t.Fatalf("capacity %s: %v", topo.FormatBits(capacity), err)
		}
		if math.Abs(res.MaxUtilisation-0.75) > 1e-6 {
			t.Fatalf("capacity %s: θ* = %v, want 0.75", topo.FormatBits(capacity), res.MaxUtilisation)
		}
	}
}

// TestEstimateDemandsAtScale checks the demand estimator recovers
// Gbit-scale demands (its internal cutoffs used to be absolute).
func TestEstimateDemandsAtScale(t *testing.T) {
	for _, scale := range []float64{1, 1e9} {
		scale := scale
		t.Run(fmt.Sprintf("scale=%g", scale), func(t *testing.T) {
			tp := topo.Abilene(10e6*scale, 0)
			truth := []topo.Demand{
				{Ingress: tp.MustNode("Seattle"), PrefixName: "cdn-east", Volume: 4e6 * scale},
				{Ingress: tp.MustNode("Denver"), PrefixName: "cdn-east", Volume: 2e6 * scale},
			}
			v, err := fibbing.IGPView(tp, "cdn-east")
			if err != nil {
				t.Fatal(err)
			}
			views := map[string]map[topo.NodeID]fibbing.RouteView{"cdn-east": v}
			observed, err := LinkLoads(tp, views, truth)
			if err != nil {
				t.Fatal(err)
			}
			cands := []DemandCandidate{
				{Ingress: tp.MustNode("Seattle"), PrefixName: "cdn-east"},
				{Ingress: tp.MustNode("Denver"), PrefixName: "cdn-east"},
			}
			est, err := EstimateDemands(tp, views, cands, observed, 0)
			if err != nil {
				t.Fatal(err)
			}
			if e := EstimationError(est, truth); e > 1e-3 {
				t.Fatalf("estimation error %v at scale %g", e, scale)
			}
		})
	}
}
