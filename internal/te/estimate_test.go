package te

import (
	"testing"

	"fibbing.net/fibbing/internal/fibbing"
	"fibbing.net/fibbing/internal/topo"
)

func fig1Views(t *testing.T, tp *topo.Topology) map[string]map[topo.NodeID]fibbing.RouteView {
	t.Helper()
	v, err := fibbing.IGPView(tp, topo.Fig1BluePrefixName)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]map[topo.NodeID]fibbing.RouteView{topo.Fig1BluePrefixName: v}
}

// TestEstimateRecoversFig1Demands generates loads from known demands,
// inverts them, and compares: the Fig1 system is overdetermined (distinct
// ingress links), so recovery should be near exact.
func TestEstimateRecoversFig1Demands(t *testing.T) {
	tp := topo.Fig1(topo.Fig1Opts{})
	truth := []topo.Demand{
		{Ingress: tp.MustNode("B"), PrefixName: topo.Fig1BluePrefixName, Volume: 9e6},
		{Ingress: tp.MustNode("A"), PrefixName: topo.Fig1BluePrefixName, Volume: 4e6},
	}
	views := fig1Views(t, tp)
	loads, err := LinkLoads(tp, views, truth)
	if err != nil {
		t.Fatal(err)
	}
	cands := []DemandCandidate{
		{Ingress: tp.MustNode("B"), PrefixName: topo.Fig1BluePrefixName},
		{Ingress: tp.MustNode("A"), PrefixName: topo.Fig1BluePrefixName},
	}
	est, err := EstimateDemands(tp, views, cands, loads, 0)
	if err != nil {
		t.Fatal(err)
	}
	if e := EstimationError(est, truth); e > 0.02 {
		t.Fatalf("estimation error %.3f: est %+v", e, est)
	}
}

// TestEstimateWithExtraCandidates includes a candidate with zero true
// volume: the estimator must drive it towards zero rather than smear load
// onto it.
func TestEstimateWithExtraCandidates(t *testing.T) {
	tp := topo.Fig1(topo.Fig1Opts{})
	truth := []topo.Demand{
		{Ingress: tp.MustNode("B"), PrefixName: topo.Fig1BluePrefixName, Volume: 8e6},
	}
	views := fig1Views(t, tp)
	loads, err := LinkLoads(tp, views, truth)
	if err != nil {
		t.Fatal(err)
	}
	cands := []DemandCandidate{
		{Ingress: tp.MustNode("B"), PrefixName: topo.Fig1BluePrefixName},
		{Ingress: tp.MustNode("R1"), PrefixName: topo.Fig1BluePrefixName}, // no true traffic
	}
	est, err := EstimateDemands(tp, views, cands, loads, 500)
	if err != nil {
		t.Fatal(err)
	}
	if est[0].Volume < 7.8e6 || est[0].Volume > 8.2e6 {
		t.Fatalf("B estimate = %v, want ~8e6", est[0].Volume)
	}
	if est[1].Volume > 0.2e6 {
		t.Fatalf("phantom demand = %v, want ~0", est[1].Volume)
	}
}

// TestEstimateOnRandomTopology round-trips random demands through random
// routing.
func TestEstimateOnRandomTopology(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		tp := topo.RandomConnected(topo.RandomOpts{
			Nodes: 12, Degree: 3, MaxWeight: 4, Prefixes: 1, Capacity: 10e6, Seed: seed,
		})
		views, err := fibbing.IGPView(tp, "d0")
		if err != nil {
			t.Fatal(err)
		}
		vb := map[string]map[topo.NodeID]fibbing.RouteView{"d0": views}
		truth := topo.RandomDemands(tp, 3, 1e6, 5e6, seed)
		// Deduplicate ingresses (candidates must be unique unknowns).
		seen := map[topo.NodeID]bool{}
		var uniq []topo.Demand
		for _, d := range truth {
			if !seen[d.Ingress] {
				seen[d.Ingress] = true
				uniq = append(uniq, d)
			}
		}
		loads, err := LinkLoads(tp, vb, uniq)
		if err != nil {
			t.Fatal(err)
		}
		cands := make([]DemandCandidate, len(uniq))
		for i, d := range uniq {
			cands[i] = DemandCandidate{Ingress: d.Ingress, PrefixName: d.PrefixName}
		}
		est, err := EstimateDemands(tp, vb, cands, loads, 500)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Ambiguity is possible when paths fully overlap, but the routed
		// loads of the estimate must reproduce the observations.
		reLoads, err := LinkLoads(tp, vb, est)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for l, v := range loads {
			if diff := reLoads[l] - v; diff > 0.05*v+1 || diff < -0.05*v-1 {
				t.Fatalf("seed %d: link %d predicted %v, observed %v", seed, l, reLoads[l], v)
			}
		}
	}
}

func TestEstimateErrors(t *testing.T) {
	tp := topo.Fig1(topo.Fig1Opts{})
	views := fig1Views(t, tp)
	if _, err := EstimateDemands(tp, views, nil, nil, 0); err == nil {
		t.Fatalf("no candidates accepted")
	}
	if _, err := EstimateDemands(tp, views, []DemandCandidate{
		{Ingress: tp.MustNode("A"), PrefixName: "nope"},
	}, nil, 0); err == nil {
		t.Fatalf("unknown prefix accepted")
	}
}
