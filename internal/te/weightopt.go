package te

import (
	"fmt"
	"math"

	"fibbing.net/fibbing/internal/fibbing"
	"fibbing.net/fibbing/internal/topo"
)

// WeightOptResult reports an IGP weight-optimisation run — the traditional
// TE scheme the paper calls too slow and too disruptive for flash crowds.
type WeightOptResult struct {
	// Weights is the best weight per directed link.
	Weights map[topo.LinkID]int64
	// Cost is the Fortz-Thorup congestion cost of the best setting.
	Cost float64
	// MaxUtilisation under the best setting.
	MaxUtilisation float64
	// WeightChanges counts how many individual link weights differ from
	// the starting configuration: each one is a per-device
	// reconfiguration step with a network-wide reconvergence — the
	// "too slow" overhead.
	WeightChanges int
	// Evaluations counts objective evaluations (search effort).
	Evaluations int
}

// FortzThorupCost is the classic piecewise-linear congestion cost of a
// utilisation value (Fortz & Thorup, INFOCOM 2000).
func FortzThorupCost(util float64) float64 {
	switch {
	case util < 1.0/3:
		return util
	case util < 2.0/3:
		return 3*util - 2.0/3
	case util < 0.9:
		return 10*util - 16.0/3
	case util < 1.0:
		return 70*util - 178.0/3
	case util < 1.1:
		return 500*util - 1468.0/3
	default:
		return 5000*util - 16318.0/3
	}
}

// networkCost evaluates the summed Fortz-Thorup cost of routing demands
// over ECMP shortest paths under the current weights.
func networkCost(t *topo.Topology, demands []topo.Demand) (cost, maxUtil float64, err error) {
	loads, err := IGPLoads(t, demands)
	if err != nil {
		return 0, 0, err
	}
	for id, load := range loads {
		l := t.Link(id)
		if l.Capacity <= 0 {
			continue
		}
		u := load / l.Capacity
		cost += FortzThorupCost(u)
		if u > maxUtil {
			maxUtil = u
		}
	}
	return cost, maxUtil, nil
}

// OptimizeWeights runs a local search over integer link weights: for each
// symmetric link in turn it tries a set of candidate weights, keeps the
// best improvement, and repeats until a full pass yields no improvement or
// maxPasses is reached. The search mutates a clone; the input topology is
// untouched.
func OptimizeWeights(t *topo.Topology, demands []topo.Demand, maxWeight int64, maxPasses int) (*WeightOptResult, error) {
	if maxWeight < 2 {
		return nil, fmt.Errorf("te: maxWeight must be >= 2")
	}
	work := t.Clone()
	res := &WeightOptResult{Weights: make(map[topo.LinkID]int64)}

	cost, maxUtil, err := networkCost(work, demands)
	if err != nil {
		return nil, err
	}
	res.Evaluations++

	// Candidate weights per link: sparse geometric ladder keeps the
	// search cheap while covering the range.
	var candidates []int64
	for w := int64(1); w <= maxWeight; {
		candidates = append(candidates, w)
		if w < 4 {
			w++
		} else {
			w += w / 2
		}
	}

	for pass := 0; pass < maxPasses; pass++ {
		improved := false
		for _, l := range work.Links() {
			if l.Reverse != topo.NoLink && l.Reverse < l.ID {
				continue // handle each symmetric pair once
			}
			if work.Node(l.From).Host || work.Node(l.To).Host {
				continue
			}
			orig := work.Link(l.ID).Weight
			bestW, bestCost, bestUtil := orig, cost, maxUtil
			for _, w := range candidates {
				if w == orig {
					continue
				}
				setPair(work, l, w)
				c, u, err := networkCost(work, demands)
				res.Evaluations++
				if err == nil && c < bestCost-1e-12 {
					bestW, bestCost, bestUtil = w, c, u
				}
			}
			setPair(work, l, bestW)
			if bestW != orig {
				cost, maxUtil = bestCost, bestUtil
				improved = true
			}
		}
		if !improved {
			break
		}
	}

	for _, l := range work.Links() {
		res.Weights[l.ID] = work.Link(l.ID).Weight
		if work.Link(l.ID).Weight != t.Link(l.ID).Weight {
			res.WeightChanges++
		}
	}
	res.Cost = cost
	res.MaxUtilisation = maxUtil
	return res, nil
}

func setPair(t *topo.Topology, l topo.Link, w int64) {
	t.SetWeight(l.ID, w)
	if l.Reverse != topo.NoLink {
		t.SetWeight(l.Reverse, w)
	}
}

// ECMPOnlyUtilisation evaluates the max utilisation of plain ECMP routing
// (the no-reaction baseline of Figure 1b).
func ECMPOnlyUtilisation(t *topo.Topology, demands []topo.Demand) (float64, error) {
	loads, err := IGPLoads(t, demands)
	if err != nil {
		return 0, err
	}
	return MaxUtilOfLoads(t, loads), nil
}

// FibbingUtilisation computes the utilisation Fibbing achieves when
// realising the LP-optimal splits with denominator-bounded ECMP weights:
// solve the LP, quantise the splits (ApproxWeights), compile lies, and
// route the demands over the augmented network. The gap to the LP optimum
// is purely the ratio-quantisation error.
type FibbingRealisation struct {
	Optimal       float64 // LP optimum θ*
	Realised      float64 // utilisation with quantised ECMP weights
	Lies          int
	PerPrefixLies map[string][]fibbing.Lie
}

// RealizeMinMax runs the full pipeline LP -> splits -> weights -> lies.
func RealizeMinMax(t *topo.Topology, demands []topo.Demand, maxDenom int) (*FibbingRealisation, error) {
	opt, err := SolveMinMax(t, demands)
	if err != nil {
		return nil, err
	}
	out := &FibbingRealisation{
		Optimal:       opt.MaxUtilisation,
		PerPrefixLies: make(map[string][]fibbing.Lie),
	}
	for name, splits := range opt.Splits {
		dag, err := fibbing.SplitsToDAG(splits, maxDenom)
		if err != nil {
			return nil, err
		}
		// Attachment routers deliver locally; they need no constraint.
		if p, ok := t.PrefixByName(name); ok {
			for _, a := range p.Attachments {
				delete(dag, a.Node)
			}
		}
		// Prefer minimal equal-cost additions (cheap, provably
		// non-disruptive); fall back to global pinning when the optimum
		// removes IGP paths.
		aug, err := fibbing.AugmentAddPaths(t, name, dag)
		if err != nil {
			aug, err = fibbing.AugmentPinAll(t, name, dag)
			if err != nil {
				return nil, err
			}
			aug, err = fibbing.ReduceLies(t, name, aug, dag)
			if err != nil {
				return nil, err
			}
		}
		out.PerPrefixLies[name] = aug.Lies
		out.Lies += len(aug.Lies)
	}
	loads, err := LoadsWithLies(t, out.PerPrefixLies, demands)
	if err != nil {
		return nil, err
	}
	out.Realised = MaxUtilOfLoads(t, loads)
	if math.IsNaN(out.Realised) {
		return nil, fmt.Errorf("te: realised utilisation is NaN")
	}
	return out, nil
}
