// Warm-started min-max solves. The planner re-solves the same LP over
// and over — every alarm, every standby recompute, every debounced
// demand bump — and between consecutive solves only the demand volumes
// (right-hand sides) usually change. MinMaxSolver keeps the previous
// optimal basis keyed by the problem's structure and re-enters phase-2
// simplex from it, which typically converges in a handful of pivots
// instead of the full two-phase iteration count. Any failure to reuse
// the basis falls back to a cold solve, so the warm path can only be
// faster, never different: a property test asserts warm and cold reach
// identical objectives and flows within SolverRelTol across the zoo.
package te

import (
	"fmt"
	"sync"

	"fibbing.net/fibbing/internal/topo"
)

// WarmLPStats counts how a MinMaxSolver satisfied its solves.
type WarmLPStats struct {
	// Warm solves re-entered simplex from the previous optimal basis.
	Warm uint64 `json:"warm"`
	// Cold solves ran the full two-phase method from scratch.
	Cold uint64 `json:"cold"`
	// Fallback counts warm attempts that had to restart cold (singular
	// refactorisation, infeasible basic point, or a stalled re-solve).
	// Each such solve is also counted in Cold.
	Fallback uint64 `json:"fallback"`
}

// MinMaxSolver is SolveMinMax with basis reuse across invocations. The
// zero value is ready to use; methods are safe for concurrent callers.
type MinMaxSolver struct {
	mu    sync.Mutex
	key   string
	basis []int
	stats WarmLPStats
}

// NewMinMaxSolver returns an empty solver (first solve is cold).
func NewMinMaxSolver() *MinMaxSolver { return &MinMaxSolver{} }

// Solve computes the same optimum as SolveMinMax, warm-starting from the
// previous solve's basis when the LP structure (links, commodities,
// sinks, capacity presence) is unchanged. Demand-volume and capacity
// *value* changes keep the structure and ride the warm path; anything
// that changes the tableau layout — a failed link, a new prefix, a new
// ingress pattern — misses the key and solves cold.
func (s *MinMaxSolver) Solve(t *topo.Topology, demands []topo.Demand) (*MinMaxResult, error) {
	p, err := buildMinMax(t, demands)
	if err != nil {
		return nil, err
	}
	key := p.bld.StructureKey()

	s.mu.Lock()
	var start []int
	if s.key == key && len(s.basis) > 0 {
		start = append([]int(nil), s.basis...)
	}
	s.mu.Unlock()

	if start != nil {
		if sol, obj, status, basis, ok := p.bld.SolveFromBasis(start); ok && status == Optimal {
			s.mu.Lock()
			s.stats.Warm++
			s.key, s.basis = key, basis
			s.mu.Unlock()
			return p.extract(t, sol, obj), nil
		}
		s.mu.Lock()
		s.stats.Fallback++
		s.mu.Unlock()
	}

	sol, obj, status, basis := p.bld.SolveBasis()
	if status != Optimal {
		return nil, fmt.Errorf("te: min-max LP %v", status)
	}
	s.mu.Lock()
	s.stats.Cold++
	if basis != nil {
		s.key, s.basis = key, basis
	} else {
		// Redundant rows kept an artificial basic: this structure cannot
		// seed warm starts, so forget any stale basis.
		s.key, s.basis = "", nil
	}
	s.mu.Unlock()
	return p.extract(t, sol, obj), nil
}

// Stats returns a snapshot of the solve counters.
func (s *MinMaxSolver) Stats() WarmLPStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}
