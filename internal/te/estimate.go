package te

import (
	"fmt"
	"math"

	"fibbing.net/fibbing/internal/fibbing"
	"fibbing.net/fibbing/internal/topo"
)

// Demand estimation from link loads. The demo's controller learns demands
// from server notifications; a controller without that luxury must invert
// the routing: observed link loads are a linear function of the unknown
// ingress demands (loads = R * demands, with R the per-prefix routing
// fractions, which the controller knows exactly — it computes them).
//
// EstimateDemands solves the non-negative inversion with multiplicative
// (Richardson-Lucy style) updates, which preserve non-negativity and
// converge for consistent systems. With fewer unknowns than observed
// links (the common case) the estimate recovers the true demands.

// DemandCandidate names one unknown: traffic entering at Ingress towards
// PrefixName.
type DemandCandidate struct {
	Ingress    topo.NodeID
	PrefixName string
}

// EstimateDemands estimates the volume of each candidate demand from
// observed directed-link loads (bit/s), given the per-prefix route views
// the traffic follows. iterations <= 0 defaults to 200; the iteration
// stops early once the largest multiplicative update falls below 1e-9
// (a relative criterion, so convergence is identical at any traffic
// scale).
func EstimateDemands(t *topo.Topology,
	viewsByPrefix map[string]map[topo.NodeID]fibbing.RouteView,
	candidates []DemandCandidate,
	observed map[topo.LinkID]float64,
	iterations int) ([]topo.Demand, error) {

	if len(candidates) == 0 {
		return nil, fmt.Errorf("te: no demand candidates")
	}
	if iterations <= 0 {
		iterations = 200
	}

	// Routing matrix: frac[i][link] = fraction of candidate i's volume
	// crossing the link, computed by propagating a unit demand.
	frac := make([]map[topo.LinkID]float64, len(candidates))
	for i, c := range candidates {
		views, ok := viewsByPrefix[c.PrefixName]
		if !ok {
			return nil, fmt.Errorf("te: no route views for prefix %q", c.PrefixName)
		}
		loads, err := LinkLoads(t, map[string]map[topo.NodeID]fibbing.RouteView{c.PrefixName: views},
			[]topo.Demand{{Ingress: c.Ingress, PrefixName: c.PrefixName, Volume: 1}})
		if err != nil {
			return nil, fmt.Errorf("te: candidate %d unroutable: %w", i, err)
		}
		frac[i] = loads
	}

	// Initial guess: spread total observed volume evenly. The guess (and
	// every tolerance below) is derived from the observation's own
	// magnitude, so estimation behaves identically at Kbit/s and 100
	// Gbit/s. With nothing observed the answer is zero demands and the
	// iteration is skipped outright.
	total, maxObs := 0.0, 0.0
	for _, v := range observed {
		total += v
		if v > maxObs {
			maxObs = v
		}
	}
	x := make([]float64, len(candidates))
	if maxObs > 0 {
		for i := range x {
			x[i] = total / float64(len(candidates))
		}
	} else {
		iterations = 0
	}
	predEps := 1e-12 * maxObs

	predicted := func() map[topo.LinkID]float64 {
		out := make(map[topo.LinkID]float64)
		for i, f := range frac {
			for l, p := range f {
				out[l] += x[i] * p
			}
		}
		return out
	}

	for iter := 0; iter < iterations; iter++ {
		pred := predicted()
		maxRel := 0.0
		for i, f := range frac {
			num, den := 0.0, 0.0
			for l, p := range f {
				if pred[l] <= predEps {
					continue
				}
				num += p * observed[l] / pred[l]
				den += p
			}
			if den <= 0 {
				continue
			}
			ratio := num / den
			if r := math.Abs(ratio - 1); r > maxRel {
				maxRel = r
			}
			x[i] *= ratio
		}
		if maxRel < 1e-9 {
			break
		}
	}

	out := make([]topo.Demand, len(candidates))
	for i, c := range candidates {
		out[i] = topo.Demand{Ingress: c.Ingress, PrefixName: c.PrefixName, Volume: x[i]}
	}
	return out, nil
}

// EstimationError reports the max relative error between estimated and
// true demand vectors (same candidate order), for evaluation.
func EstimationError(estimated, truth []topo.Demand) float64 {
	max := 0.0
	for i := range estimated {
		if i >= len(truth) || truth[i].Volume <= 0 {
			continue
		}
		if r := math.Abs(estimated[i].Volume-truth[i].Volume) / truth[i].Volume; r > max {
			max = r
		}
	}
	return max
}
