package te

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSolveLPBasic(t *testing.T) {
	// min -x - 2y  s.t. x + y + s1 = 4, x + 3y + s2 = 6, all >= 0.
	// Optimum at x=3, y=1: obj = -5.
	c := []float64{-1, -2, 0, 0}
	a := [][]float64{
		{1, 1, 1, 0},
		{1, 3, 0, 1},
	}
	b := []float64{4, 6}
	x, obj, status := SolveLP(c, a, b)
	if status != Optimal {
		t.Fatalf("status = %v", status)
	}
	if math.Abs(obj-(-5)) > 1e-6 {
		t.Fatalf("obj = %v, want -5 (x=%v)", obj, x)
	}
	if math.Abs(x[0]-3) > 1e-6 || math.Abs(x[1]-1) > 1e-6 {
		t.Fatalf("x = %v, want [3 1 ...]", x)
	}
}

func TestSolveLPInfeasible(t *testing.T) {
	// x = 1 and x = 2 simultaneously.
	c := []float64{1}
	a := [][]float64{{1}, {1}}
	b := []float64{1, 2}
	_, _, status := SolveLP(c, a, b)
	if status != Infeasible {
		t.Fatalf("status = %v, want infeasible", status)
	}
}

func TestSolveLPUnbounded(t *testing.T) {
	// min -x s.t. x - y = 0: x can grow forever.
	c := []float64{-1, 0}
	a := [][]float64{{1, -1}}
	b := []float64{0}
	_, _, status := SolveLP(c, a, b)
	if status != Unbounded {
		t.Fatalf("status = %v, want unbounded", status)
	}
}

func TestSolveLPNegativeRHS(t *testing.T) {
	// -x + s = -2  =>  x - s = 2, min x  =>  x=2.
	c := []float64{1, 0}
	a := [][]float64{{-1, 1}}
	b := []float64{-2}
	x, obj, status := SolveLP(c, a, b)
	if status != Optimal || math.Abs(obj-2) > 1e-6 {
		t.Fatalf("x=%v obj=%v status=%v", x, obj, status)
	}
}

func TestSolveLPRedundantRows(t *testing.T) {
	// Duplicate constraint rows must not break phase 1.
	c := []float64{1, 1}
	a := [][]float64{
		{1, 1},
		{1, 1},
		{2, 2},
	}
	b := []float64{2, 2, 4}
	x, obj, status := SolveLP(c, a, b)
	if status != Optimal {
		t.Fatalf("status = %v", status)
	}
	if math.Abs(obj-2) > 1e-6 {
		t.Fatalf("obj = %v, x = %v", obj, x)
	}
}

func TestSolveLPEmpty(t *testing.T) {
	x, obj, status := SolveLP([]float64{1, 2}, nil, nil)
	if status != Optimal || obj != 0 || len(x) != 2 {
		t.Fatalf("empty LP: %v %v %v", x, obj, status)
	}
}

func TestLPBuilder(t *testing.T) {
	// max x + y s.t. x <= 2, y <= 3, x + y <= 4  =>  min -(x+y) = -4.
	bld := NewLPBuilder()
	x := bld.AddVar(-1)
	y := bld.AddVar(-1)
	bld.AddLe(map[int]float64{x: 1}, 2)
	bld.AddLe(map[int]float64{y: 1}, 3)
	bld.AddLe(map[int]float64{x: 1, y: 1}, 4)
	sol, obj, status := bld.Solve()
	if status != Optimal || math.Abs(obj-(-4)) > 1e-6 {
		t.Fatalf("obj = %v (%v), sol = %v", obj, status, sol)
	}
	if sol[x]+sol[y] < 4-1e-6 {
		t.Fatalf("sol = %v", sol)
	}
	if bld.NumVars() != 2 {
		t.Fatalf("NumVars = %d", bld.NumVars())
	}
}

func TestLPBuilderEquality(t *testing.T) {
	// min x + y s.t. x + y = 5, x - y = 1  =>  x=3, y=2.
	bld := NewLPBuilder()
	x := bld.AddVar(1)
	y := bld.AddVar(1)
	bld.AddEq(map[int]float64{x: 1, y: 1}, 5)
	bld.AddEq(map[int]float64{x: 1, y: -1}, 1)
	sol, obj, status := bld.Solve()
	if status != Optimal || math.Abs(obj-5) > 1e-6 {
		t.Fatalf("status %v obj %v", status, obj)
	}
	if math.Abs(sol[x]-3) > 1e-6 || math.Abs(sol[y]-2) > 1e-6 {
		t.Fatalf("sol = %v", sol)
	}
}

func TestLPBuilderUnknownVarPanics(t *testing.T) {
	bld := NewLPBuilder()
	defer func() {
		if recover() == nil {
			t.Fatalf("want panic")
		}
	}()
	bld.AddEq(map[int]float64{3: 1}, 1)
}

// Property: for random feasible bounded LPs of the transportation kind,
// the solution satisfies all constraints within tolerance.
func TestSimplexFeasibilityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(4) // variables
		m := 2 + rng.Intn(3) // <= constraints
		bld := NewLPBuilder()
		vars := make([]int, n)
		for i := range vars {
			vars[i] = bld.AddVar(rng.Float64()*2 - 1)
		}
		rows := make([]map[int]float64, m)
		rhs := make([]float64, m)
		for i := 0; i < m; i++ {
			terms := map[int]float64{}
			for _, v := range vars {
				terms[v] = rng.Float64() // nonnegative coefs => bounded
			}
			rhs[i] = 1 + rng.Float64()*10
			rows[i] = terms
			bld.AddLe(terms, rhs[i])
		}
		// Nonnegative objective coefficients could make some vars 0; mix
		// of signs is fine because constraints bound everything.
		sol, _, status := bld.Solve()
		if status != Optimal {
			// With all-nonnegative constraint coefficients and finite
			// rhs, negative objective coefficients keep it bounded.
			return false
		}
		for i, terms := range rows {
			sum := 0.0
			for v, coef := range terms {
				if sol[v] < -1e-9 {
					return false
				}
				sum += coef * sol[v]
			}
			if sum > rhs[i]+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSimplexMedium(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n, m := 60, 30
	bld0 := func() *LPBuilder {
		bld := NewLPBuilder()
		vars := make([]int, n)
		for i := range vars {
			vars[i] = bld.AddVar(rng.Float64() - 0.5)
		}
		for i := 0; i < m; i++ {
			terms := map[int]float64{}
			for _, v := range vars {
				terms[v] = rng.Float64()
			}
			bld.AddLe(terms, 5+rng.Float64()*10)
		}
		return bld
	}
	lp := bld0()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, status := lp.Solve(); status != Optimal {
			b.Fatal(status)
		}
	}
}

// TestBealeCyclingExample is the classic degenerate LP on which naive
// pivoting cycles forever; Bland's rule must terminate at the optimum
// (objective -0.05).
func TestBealeCyclingExample(t *testing.T) {
	// min -0.75 x1 + 150 x2 - 0.02 x3 + 6 x4
	// s.t. 0.25 x1 - 60 x2 - 0.04 x3 + 9 x4 <= 0
	//      0.50 x1 - 90 x2 - 0.02 x3 + 3 x4 <= 0
	//      x3 <= 1
	bld := NewLPBuilder()
	x1 := bld.AddVar(-0.75)
	x2 := bld.AddVar(150)
	x3 := bld.AddVar(-0.02)
	x4 := bld.AddVar(6)
	bld.AddLe(map[int]float64{x1: 0.25, x2: -60, x3: -0.04, x4: 9}, 0)
	bld.AddLe(map[int]float64{x1: 0.5, x2: -90, x3: -0.02, x4: 3}, 0)
	bld.AddLe(map[int]float64{x3: 1}, 1)
	sol, obj, status := bld.Solve()
	if status != Optimal {
		t.Fatalf("status = %v", status)
	}
	if math.Abs(obj-(-0.05)) > 1e-9 {
		t.Fatalf("obj = %v, want -0.05 (sol %v)", obj, sol)
	}
}

// TestSimplexDegenerateTies exercises a heavily degenerate system (many
// redundant binding constraints) where ratio-test ties occur constantly.
func TestSimplexDegenerateTies(t *testing.T) {
	bld := NewLPBuilder()
	x := bld.AddVar(-1)
	y := bld.AddVar(-1)
	for i := 0; i < 6; i++ {
		bld.AddLe(map[int]float64{x: 1, y: 1}, 2) // same constraint 6 times
	}
	bld.AddLe(map[int]float64{x: 1}, 1)
	bld.AddLe(map[int]float64{y: 1}, 1)
	sol, obj, status := bld.Solve()
	if status != Optimal || math.Abs(obj-(-2)) > 1e-9 {
		t.Fatalf("obj = %v (%v), sol = %v", obj, status, sol)
	}
}
