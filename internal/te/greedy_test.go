package te

import (
	"math"
	"testing"

	"fibbing.net/fibbing/internal/topo"
)

func TestGreedyFig1NearOptimal(t *testing.T) {
	tp, demands := fig1Stress()
	g, err := SolveGreedy(tp, demands, 8)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := SolveMinMax(tp, demands)
	if err != nil {
		t.Fatal(err)
	}
	if g.MaxUtilisation < opt.MaxUtilisation-1e-9 {
		t.Fatalf("greedy %v beats LP %v (impossible)", g.MaxUtilisation, opt.MaxUtilisation)
	}
	// On Fig1 with 8 chunks the greedy should be within 25% of optimal.
	if g.MaxUtilisation > opt.MaxUtilisation*1.25+1e-9 {
		t.Fatalf("greedy %v too far from optimum %v", g.MaxUtilisation, opt.MaxUtilisation)
	}
	if g.Chunks != 16 {
		t.Fatalf("chunks = %d, want 16", g.Chunks)
	}
}

func TestGreedyBeatsPlainECMP(t *testing.T) {
	tp, demands := fig1Stress()
	igp, err := ECMPOnlyUtilisation(tp, demands)
	if err != nil {
		t.Fatal(err)
	}
	g, err := SolveGreedy(tp, demands, 8)
	if err != nil {
		t.Fatal(err)
	}
	if g.MaxUtilisation >= igp {
		t.Fatalf("greedy %v did not beat ECMP %v", g.MaxUtilisation, igp)
	}
}

func TestGreedySplitsAreDistributions(t *testing.T) {
	tp := topo.RandomConnected(topo.RandomOpts{
		Nodes: 14, Degree: 3, MaxWeight: 5, Prefixes: 2, Capacity: 10e6, Seed: 5,
	})
	demands := topo.RandomDemands(tp, 6, 1e6, 4e6, 5)
	g, err := SolveGreedy(tp, demands, 8)
	if err != nil {
		t.Fatal(err)
	}
	for name, splits := range g.Splits {
		for u, s := range splits {
			sum := 0.0
			for v, f := range s {
				if f < -1e-9 || f > 1+1e-9 {
					t.Fatalf("%s: fraction %v at %d->%d", name, f, u, v)
				}
				sum += f
			}
			if math.Abs(sum-1) > 1e-6 {
				t.Fatalf("%s: splits at %d sum to %v", name, u, sum)
			}
		}
	}
}

func TestGreedyLocalDemandSkipped(t *testing.T) {
	tp := topo.Fig1(topo.Fig1Opts{})
	g, err := SolveGreedy(tp, []topo.Demand{
		{Ingress: tp.MustNode("C"), PrefixName: topo.Fig1BluePrefixName, Volume: 5e6},
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if g.Chunks != 0 || g.MaxUtilisation != 0 {
		t.Fatalf("local demand placed: %+v", g)
	}
}

func TestGreedyUnknownPrefix(t *testing.T) {
	tp := topo.Fig1(topo.Fig1Opts{})
	if _, err := SolveGreedy(tp, []topo.Demand{
		{Ingress: tp.MustNode("A"), PrefixName: "nope", Volume: 1},
	}, 4); err == nil {
		t.Fatalf("unknown prefix accepted")
	}
}

func BenchmarkGreedyVsLP(b *testing.B) {
	tp := topo.RandomConnected(topo.RandomOpts{
		Nodes: 20, Degree: 3, MaxWeight: 5, Prefixes: 3, Capacity: 10e6, Seed: 7,
	})
	demands := topo.RandomDemands(tp, 10, 1e6, 3e6, 7)
	b.Run("greedy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := SolveGreedy(tp, demands, 8); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("lp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := SolveMinMax(tp, demands); err != nil {
				b.Fatal(err)
			}
		}
	})
}
