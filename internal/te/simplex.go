// The dense two-phase primal simplex underneath SolveMinMax and the
// LPBuilder. All tolerances are relative to the magnitudes of the tableau
// entries they judge (see scale.go), so the solver keeps working on
// ill-conditioned inputs — coefficients spanning 1e-3..1e11 — instead of
// pivoting on noise and terminating at a wrong vertex.

package te

import (
	"fmt"
	"math"
	"slices"
	"strconv"
)

// SimplexStatus reports the outcome of an LP solve.
type SimplexStatus int

const (
	// Optimal means an optimal basic feasible solution was found.
	Optimal SimplexStatus = iota
	// Infeasible means the constraints admit no solution.
	Infeasible
	// Unbounded means the objective decreases without bound.
	Unbounded
	// Stalled means the solver hit its iteration bound without
	// converging (numerical cycling on a degenerate basis). Callers
	// treat it like any other failed solve and fall back.
	Stalled
)

func (s SimplexStatus) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case Stalled:
		return "stalled"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

const simplexEps = SolverRelTol

// SolveLP minimises c·x subject to A·x = b, x >= 0, using the two-phase
// primal simplex method with Bland's anti-cycling rule. A is dense with
// one row per equality constraint. Inequalities must be converted by the
// caller by adding slack variables (see LPBuilder).
//
// Tolerances are relative: feasibility is judged against the largest
// right-hand-side magnitude (FeasibilityRelTol) and pivot decisions
// against the magnitudes of the entries involved (SolverRelTol), so the
// solve is invariant under uniform rescaling of the problem.
func SolveLP(c []float64, a [][]float64, b []float64) ([]float64, float64, SimplexStatus) {
	x, obj, status, _ := solveLP(c, a, b)
	return x, obj, status
}

// solveLP is SolveLP plus the final basis (one column index per row;
// artificial columns appear as indices >= len(c) on redundant rows).
func solveLP(c []float64, a [][]float64, b []float64) ([]float64, float64, SimplexStatus, []int) {
	m := len(a)
	if m == 0 {
		return make([]float64, len(c)), 0, Optimal, []int{}
	}
	n := len(c)
	for i := range a {
		if len(a[i]) != n {
			panic(fmt.Sprintf("te: row %d has %d cols, want %d", i, len(a[i]), n))
		}
	}
	if len(b) != m {
		panic("te: len(b) != rows")
	}

	// Normalise to b >= 0.
	A := make([][]float64, m)
	B := make([]float64, m)
	for i := range a {
		A[i] = append([]float64(nil), a[i]...)
		B[i] = b[i]
		if B[i] < 0 {
			for j := range A[i] {
				A[i][j] = -A[i][j]
			}
			B[i] = -B[i]
		}
	}

	// Phase 1: artificial variables n..n+m-1, minimise their sum.
	total := n + m
	tab := make([][]float64, m)
	basis := make([]int, m)
	for i := 0; i < m; i++ {
		tab[i] = make([]float64, total+1)
		copy(tab[i], A[i])
		tab[i][n+i] = 1
		tab[i][total] = B[i]
		basis[i] = n + i
	}
	phase1 := make([]float64, total)
	for j := n; j < total; j++ {
		phase1[j] = 1
	}
	switch runSimplex(tab, basis, phase1, total) {
	case simplexStalled:
		return nil, 0, Stalled, nil
	case simplexUnbounded:
		return nil, 0, Unbounded, nil // cannot happen in phase 1, defensive
	}
	// Check feasibility, relative to the problem's right-hand-side
	// magnitude: residual artificial mass that is pure roundoff at scale
	// 1e9 must not read as infeasibility (and would, against an absolute
	// cutoff).
	bScale := 1.0
	for _, bi := range B {
		if bi > bScale {
			bScale = bi
		}
	}
	sum := 0.0
	for i, bi := range basis {
		if bi >= n {
			sum += tab[i][total]
		}
	}
	if sum > FeasibilityRelTol*bScale {
		return nil, 0, Infeasible, nil
	}
	// Drive remaining artificial variables out of the basis. The pivot
	// element must be significant relative to its row, not in absolute
	// terms: a 1e-9 entry in a row of 1e9-sized coefficients is noise,
	// and pivoting on it would blow the tableau up.
	for i, bi := range basis {
		if bi < n {
			continue
		}
		rowScale := 1.0
		for j := 0; j < n; j++ {
			if v := math.Abs(tab[i][j]); v > rowScale {
				rowScale = v
			}
		}
		pivoted := false
		for j := 0; j < n; j++ {
			if math.Abs(tab[i][j]) > simplexEps*rowScale {
				pivot(tab, basis, i, j, total)
				pivoted = true
				break
			}
		}
		if !pivoted {
			// Redundant row; harmless (stays with artificial at 0).
			_ = i
		}
	}

	// Phase 2: original objective, artificial columns frozen at zero.
	phase2 := make([]float64, total)
	copy(phase2, c)
	for j := n; j < total; j++ {
		phase2[j] = math.Inf(1) // never re-enter
	}
	switch runSimplex(tab, basis, phase2, total) {
	case simplexStalled:
		return nil, 0, Stalled, nil
	case simplexUnbounded:
		return nil, 0, Unbounded, nil
	}

	x := make([]float64, n)
	for i, bi := range basis {
		if bi < n {
			x[bi] = tab[i][total]
		}
	}
	obj := 0.0
	for j := 0; j < n; j++ {
		obj += c[j] * x[j]
	}
	return x, obj, Optimal, basis
}

// warmSolveLP re-solves min c·x, A·x = b, x >= 0 starting from a prior
// optimal basis instead of a two-phase cold start. start is the column
// set from a previous solveLP of a structurally identical problem (same
// variable/constraint layout — see LPBuilder.StructureKey); coefficient
// and right-hand-side values are free to differ, because the tableau is
// refactorised onto the stored columns by Gauss-Jordan elimination before
// phase-2 simplex resumes. ok = false means the basis could not be
// reused — singular on the new coefficients, basic solution infeasible,
// or the re-solve failed — and the caller must fall back to a cold solve.
func warmSolveLP(c []float64, a [][]float64, b []float64, start []int) ([]float64, float64, SimplexStatus, []int, bool) {
	m := len(a)
	n := len(c)
	if len(start) != m {
		return nil, 0, Infeasible, nil, false
	}
	for _, j := range start {
		if j < 0 || j >= n {
			return nil, 0, Infeasible, nil, false
		}
	}
	if m == 0 {
		return make([]float64, n), 0, Optimal, []int{}, true
	}
	// Copy, normalised to b >= 0 (matching solveLP's row convention).
	tab := make([][]float64, m)
	for i := range a {
		tab[i] = make([]float64, n+1)
		copy(tab[i], a[i])
		tab[i][n] = b[i]
		if b[i] < 0 {
			for j := range tab[i] {
				tab[i][j] = -tab[i][j]
			}
		}
	}
	bScale := 1.0
	for i := range tab {
		if v := math.Abs(tab[i][n]); v > bScale {
			bScale = v
		}
	}
	// Refactorise: drive every stored basis column to a unit column,
	// choosing the largest remaining pivot per column. Pivot significance
	// is judged relative to the chosen row's magnitude, like the
	// artificial drive-out in solveLP: a noise-sized pivot would blow the
	// tableau up rather than reproduce the old basis.
	basis := make([]int, m)
	used := make([]bool, m)
	for _, col := range start {
		best, bestV := -1, 0.0
		for i := 0; i < m; i++ {
			if used[i] {
				continue
			}
			if v := math.Abs(tab[i][col]); v > bestV {
				best, bestV = i, v
			}
		}
		if best == -1 {
			return nil, 0, Infeasible, nil, false // duplicate or vanished column
		}
		rowScale := 1.0
		for j := 0; j < n; j++ {
			if v := math.Abs(tab[best][j]); v > rowScale {
				rowScale = v
			}
		}
		if bestV <= simplexEps*rowScale {
			return nil, 0, Infeasible, nil, false // singular on the new coefficients
		}
		pivot(tab, basis, best, col, n)
		used[best] = true
	}
	// The refactorised basic solution must be (near-)feasible; clamp pure
	// roundoff negatives, bail on real ones.
	for i := 0; i < m; i++ {
		if tab[i][n] < 0 {
			if tab[i][n] < -FeasibilityRelTol*bScale {
				return nil, 0, Infeasible, nil, false
			}
			tab[i][n] = 0
		}
	}
	// Phase 2 directly: no artificials exist, so total is just n.
	switch runSimplex(tab, basis, c, n) {
	case simplexStalled:
		return nil, 0, Stalled, nil, false
	case simplexUnbounded:
		return nil, 0, Unbounded, nil, false
	}
	x := make([]float64, n)
	for i, bi := range basis {
		x[bi] = tab[i][n]
	}
	obj := 0.0
	for j := 0; j < n; j++ {
		obj += c[j] * x[j]
	}
	return x, obj, Optimal, basis, true
}

// simplexOutcome is runSimplex's termination reason.
type simplexOutcome int

const (
	simplexOptimal simplexOutcome = iota
	simplexUnbounded
	simplexStalled
)

// runSimplex performs primal simplex iterations on the tableau in place.
func runSimplex(tab [][]float64, basis []int, c []float64, total int) simplexOutcome {
	m := len(tab)
	// Generous bound on pivots: Bland's rule terminates in exact
	// arithmetic, but floating-point ties can stall large degenerate
	// problems; those report Stalled rather than spinning forever.
	limit := 200 * (m + total)
	if limit < 200000 {
		limit = 200000
	}
	// Reduced costs are computed on demand: z_j - c_j using the basis.
	// Every "is this zero?" decision below is made relative to the
	// magnitude of the terms that produced the value — an absolute
	// epsilon misreads cancellation noise as signal once coefficients
	// leave O(1).
	for iter := 0; ; iter++ {
		if iter > limit {
			return simplexStalled
		}
		// Entering column (Bland: smallest index with negative reduced cost).
		enter := -1
		for j := 0; j < total; j++ {
			if math.IsInf(c[j], 1) {
				continue // frozen artificial
			}
			rc := c[j]
			rcScale := math.Abs(c[j])
			for i := 0; i < m; i++ {
				cb := c[basis[i]]
				if math.IsInf(cb, 1) {
					cb = 0 // artificial in basis sits at value 0
				}
				term := cb * tab[i][j]
				rc -= term
				if v := math.Abs(term); v > rcScale {
					rcScale = v
				}
			}
			if rcScale < 1 {
				rcScale = 1
			}
			if rc < -simplexEps*rcScale {
				enter = j
				break
			}
		}
		if enter == -1 {
			return simplexOptimal
		}
		// Leaving row (Bland: min ratio, ties by smallest basis index).
		// Pivot eligibility is relative to the column's largest entry:
		// pivoting on an element that is noise at the column's scale
		// corrupts the basis.
		colScale := 1.0
		for i := 0; i < m; i++ {
			if v := math.Abs(tab[i][enter]); v > colScale {
				colScale = v
			}
		}
		pivotEps := simplexEps * colScale
		leave := -1
		best := math.Inf(1)
		for i := 0; i < m; i++ {
			if tab[i][enter] > pivotEps {
				ratio := tab[i][total] / tab[i][enter]
				if leave == -1 {
					best, leave = ratio, i
					continue
				}
				ratioEps := simplexEps * math.Max(1, math.Max(math.Abs(best), math.Abs(ratio)))
				if ratio < best-ratioEps ||
					(math.Abs(ratio-best) <= ratioEps && basis[i] < basis[leave]) {
					best = ratio
					leave = i
				}
			}
		}
		if leave == -1 {
			return simplexUnbounded
		}
		pivot(tab, basis, leave, enter, total)
	}
}

func pivot(tab [][]float64, basis []int, row, col, total int) {
	p := tab[row][col]
	for j := 0; j <= total; j++ {
		tab[row][j] /= p
	}
	for i := range tab {
		if i == row {
			continue
		}
		f := tab[i][col]
		if f == 0 {
			continue
		}
		for j := 0; j <= total; j++ {
			tab[i][j] -= f * tab[row][j]
		}
	}
	basis[row] = col
}

// LPBuilder assembles an LP incrementally: named variables, equality and
// <= constraints (slacks added automatically), and a linear objective.
type LPBuilder struct {
	nvars int
	obj   []float64
	rows  [][]float64 // sparse as (idx,coef) pairs flattened at Build
	types []byte      // 'e' or 'l'
	rhs   []float64
	terms [][]lpTerm
}

type lpTerm struct {
	idx  int
	coef float64
}

// NewLPBuilder returns an empty builder.
func NewLPBuilder() *LPBuilder { return &LPBuilder{} }

// AddVar adds a variable with the given objective coefficient and returns
// its index.
func (bld *LPBuilder) AddVar(objCoef float64) int {
	bld.nvars++
	bld.obj = append(bld.obj, objCoef)
	return bld.nvars - 1
}

// NumVars returns the number of variables added so far.
func (bld *LPBuilder) NumVars() int { return bld.nvars }

// AddEq adds Σ coef_i x_i = rhs.
func (bld *LPBuilder) AddEq(terms map[int]float64, rhs float64) {
	bld.addRow('e', terms, rhs)
}

// AddLe adds Σ coef_i x_i <= rhs.
func (bld *LPBuilder) AddLe(terms map[int]float64, rhs float64) {
	bld.addRow('l', terms, rhs)
}

func (bld *LPBuilder) addRow(kind byte, terms map[int]float64, rhs float64) {
	row := make([]lpTerm, 0, len(terms))
	for idx, coef := range terms {
		if idx < 0 || idx >= bld.nvars {
			panic("te: constraint references unknown variable")
		}
		if coef != 0 {
			row = append(row, lpTerm{idx, coef})
		}
	}
	bld.terms = append(bld.terms, row)
	bld.types = append(bld.types, kind)
	bld.rhs = append(bld.rhs, rhs)
}

// dense materialises the problem in standard form, adding one slack per
// <= row after the declared variables.
func (bld *LPBuilder) dense() (c []float64, a [][]float64, b []float64) {
	slacks := 0
	for _, t := range bld.types {
		if t == 'l' {
			slacks++
		}
	}
	n := bld.nvars + slacks
	c = make([]float64, n)
	copy(c, bld.obj)
	a = make([][]float64, len(bld.terms))
	b = append([]float64(nil), bld.rhs...)
	si := bld.nvars
	for i, row := range bld.terms {
		a[i] = make([]float64, n)
		for _, t := range row {
			a[i][t.idx] += t.coef
		}
		if bld.types[i] == 'l' {
			a[i][si] = 1
			si++
		}
	}
	return c, a, b
}

// Solve materialises the dense problem (adding slacks for <= rows) and
// runs SolveLP. The returned vector contains only the original variables.
func (bld *LPBuilder) Solve() ([]float64, float64, SimplexStatus) {
	c, a, b := bld.dense()
	x, obj, status := SolveLP(c, a, b)
	if status != Optimal {
		return nil, 0, status
	}
	return x[:bld.nvars], obj, status
}

// SolveBasis is Solve plus the final simplex basis, for warm-starting a
// later solve of a structurally identical problem via SolveFromBasis. The
// basis is nil when it cannot seed a warm start — the solve failed, or an
// artificial variable stayed basic on a redundant row (the warm tableau
// has no artificial columns to refactorise onto).
func (bld *LPBuilder) SolveBasis() ([]float64, float64, SimplexStatus, []int) {
	c, a, b := bld.dense()
	x, obj, status, basis := solveLP(c, a, b)
	if status != Optimal {
		return nil, 0, status, nil
	}
	for _, bi := range basis {
		if bi >= len(c) {
			basis = nil
			break
		}
	}
	return x[:bld.nvars], obj, status, basis
}

// SolveFromBasis solves the problem warm, re-entering phase-2 simplex
// from a basis returned by a previous SolveBasis of a problem with the
// same StructureKey. Coefficient and right-hand-side values may differ.
// ok = false means the basis was unusable (structure drifted, singular
// refactorisation, infeasible basic point, or a failed re-solve); the
// caller should fall back to SolveBasis.
func (bld *LPBuilder) SolveFromBasis(start []int) ([]float64, float64, SimplexStatus, []int, bool) {
	c, a, b := bld.dense()
	x, obj, status, basis, ok := warmSolveLP(c, a, b, start)
	if !ok || status != Optimal {
		return nil, 0, status, nil, false
	}
	return x[:bld.nvars], obj, status, basis, true
}

// StructureKey canonically encodes the problem's shape — the variable
// count and, per row, its type and sorted variable indices — ignoring
// coefficient and right-hand-side values. Two builds with equal keys have
// identical tableau layouts, so a simplex basis from one is meaningful in
// the other (values may differ; SolveFromBasis refactorises).
func (bld *LPBuilder) StructureKey() string {
	sb := make([]byte, 0, 16*len(bld.terms))
	sb = strconv.AppendInt(sb, int64(bld.nvars), 10)
	var idx []int
	for i, row := range bld.terms {
		sb = append(sb, '|', bld.types[i], ':')
		idx = idx[:0]
		for _, t := range row {
			idx = append(idx, t.idx)
		}
		// addRow fills rows from map iteration, so sort for a canonical
		// encoding.
		slices.Sort(idx)
		for _, v := range idx {
			sb = strconv.AppendInt(sb, int64(v), 10)
			sb = append(sb, ',')
		}
	}
	return string(sb)
}
