package te

import (
	"cmp"
	"fmt"
	"slices"

	"fibbing.net/fibbing/internal/spf"
	"fibbing.net/fibbing/internal/topo"
)

// GreedyResult is the outcome of the greedy chunked path heuristic — the
// middle ground between plain ECMP and the LP optimum: much cheaper than
// the LP, fractional like Fibbing, but with no optimality guarantee.
type GreedyResult struct {
	MaxUtilisation float64
	// Splits per destination prefix and router, same shape as
	// MinMaxResult.Splits (feedable into fibbing.SplitsToDAG).
	Splits map[string]map[topo.NodeID]map[topo.NodeID]float64
	// Chunks is the number of placed demand chunks.
	Chunks int
}

// SolveGreedy splits every demand into `chunks` equal slices and routes
// each slice, largest demands first, on the path that minimises the
// resulting bottleneck utilisation (ties broken by IGP cost). It is the
// classic greedy multipath heuristic: fast, anytime, and usually within
// tens of percent of the LP optimum.
func SolveGreedy(t *topo.Topology, demands []topo.Demand, chunks int) (*GreedyResult, error) {
	if chunks < 1 {
		chunks = 8
	}
	// Directed router links and their running loads.
	loads := make(map[topo.LinkID]float64)

	type slice struct {
		d      topo.Demand
		volume float64
	}
	var parts []slice
	order := make([]int, len(demands))
	for i := range order {
		order[i] = i
	}
	slices.SortFunc(order, func(a, b int) int { return cmp.Compare(demands[b].Volume, demands[a].Volume) })
	for _, i := range order {
		d := demands[i]
		for c := 0; c < chunks; c++ {
			parts = append(parts, slice{d: d, volume: d.Volume / float64(chunks)})
		}
	}

	// Per-destination flow recording for split extraction.
	flows := make(map[string]map[topo.LinkID]float64)

	res := &GreedyResult{Splits: make(map[string]map[topo.NodeID]map[topo.NodeID]float64)}
	for _, s := range parts {
		p, ok := t.PrefixByName(s.d.PrefixName)
		if !ok {
			return nil, fmt.Errorf("te: unknown prefix %q", s.d.PrefixName)
		}
		sinks := make(map[topo.NodeID]bool, len(p.Attachments))
		for _, a := range p.Attachments {
			sinks[a.Node] = true
		}
		if sinks[s.d.Ingress] {
			continue
		}
		path := greedyPath(t, loads, s.d.Ingress, sinks, s.volume)
		if path == nil {
			return nil, fmt.Errorf("te: no path for slice of %q from %s",
				s.d.PrefixName, t.Name(s.d.Ingress))
		}
		if flows[s.d.PrefixName] == nil {
			flows[s.d.PrefixName] = make(map[topo.LinkID]float64)
		}
		for i := 0; i+1 < len(path); i++ {
			l, _ := t.FindLink(path[i], path[i+1])
			loads[l.ID] += s.volume
			flows[s.d.PrefixName][l.ID] += s.volume
		}
		res.Chunks++
	}

	var links []topo.Link
	for _, l := range t.Links() {
		if !t.Node(l.From).Host && !t.Node(l.To).Host {
			links = append(links, l)
		}
	}
	for name, flow := range flows {
		maxFlow := 0.0
		for _, v := range flow {
			if v > maxFlow {
				maxFlow = v
			}
		}
		eps := SolverRelTol * maxFlow // scale-relative noise floor
		removeCycles(t, links, flow, eps)
		res.Splits[name] = extractSplits(t, links, flow, eps)
	}
	res.MaxUtilisation = MaxUtilOfLoads(t, loads)
	return res, nil
}

// greedyPath finds the ingress->sink path minimising the post-placement
// bottleneck utilisation, approximated by running Dijkstra with edge cost
// = quantised utilisation-after-placement (lexicographic max-min is
// approximated by a steep convex penalty), tie-broken by IGP weight.
func greedyPath(t *topo.Topology, loads map[topo.LinkID]float64, src topo.NodeID, sinks map[topo.NodeID]bool, volume float64) []topo.NodeID {
	g := spf.NewGraph(t.NumNodes())
	for _, l := range t.Links() {
		if t.Node(l.From).Host || t.Node(l.To).Host {
			continue
		}
		cost := l.Weight
		if l.Capacity > 0 {
			util := (loads[l.ID] + volume) / l.Capacity
			// Convex penalty: cheap below 50%, prohibitive near and
			// above capacity. Scaled so the penalty dominates weights.
			penalty := int64(FortzThorupCost(util) * 1000)
			cost = l.Weight + penalty
		}
		g.AddEdge(l.From, spf.Edge{To: l.To, Weight: cost, Link: l.ID})
	}
	tree := spf.ComputeRouters(g, t, src)
	best := spf.Infinity
	var bestSink topo.NodeID = topo.NoNode
	for s := range sinks {
		if tree.Reachable(s) && tree.Dist[s] < best {
			best, bestSink = tree.Dist[s], s
		}
	}
	if bestSink == topo.NoNode {
		return nil
	}
	paths := tree.Paths(bestSink, 1)
	if len(paths) == 0 {
		return nil
	}
	return paths[0]
}
