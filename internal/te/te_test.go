package te

import (
	"math"
	"testing"

	"fibbing.net/fibbing/internal/fibbing"
	"fibbing.net/fibbing/internal/topo"
)

// fig1Stress returns the Fig1 topology with demands that saturate the
// pre-Fibbing bottleneck: 8 Mbit/s from each source over 16 Mbit/s links,
// making B-R2 run at utilisation 1.0 before the controller reacts.
func fig1Stress() (*topo.Topology, []topo.Demand) {
	t := topo.Fig1(topo.Fig1Opts{})
	return t, topo.Fig1Demands(t, 8e6)
}

// TestFig1bLinkLoads pins the paper's Figure 1b: with demands of 100
// relative units at A and B, plain IGP routing loads A-B with 100 and
// B-R2, R2-C with 200.
func TestFig1bLinkLoads(t *testing.T) {
	tp := topo.Fig1(topo.Fig1Opts{})
	demands := topo.Fig1Demands(tp, 100)
	loads, err := IGPLoads(tp, demands)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"A->B": 100, "B->R2": 200, "R2->C": 200,
	}
	got := map[string]float64{}
	for id, v := range loads {
		if v < 1e-9 {
			continue
		}
		l := tp.Link(id)
		got[tp.Name(l.From)+"->"+tp.Name(l.To)] = v
	}
	if len(got) != len(want) {
		t.Fatalf("loads = %v, want %v", got, want)
	}
	for k, v := range want {
		if math.Abs(got[k]-v) > 1e-9 {
			t.Fatalf("load %s = %v, want %v", k, got[k], v)
		}
	}
}

// TestFig1dLinkLoads pins Figure 1d: with the paper's three lies, the
// loads become 33.3 on A-B and 66.7 on every other used link.
func TestFig1dLinkLoads(t *testing.T) {
	tp := topo.Fig1(topo.Fig1Opts{})
	demands := topo.Fig1Demands(tp, 100)
	dag := fibbing.Fig1DAG(tp)
	aug, err := fibbing.AugmentAddPaths(tp, topo.Fig1BluePrefixName, dag)
	if err != nil {
		t.Fatal(err)
	}
	loads, err := LoadsWithLies(tp,
		map[string][]fibbing.Lie{topo.Fig1BluePrefixName: aug.Lies}, demands)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"A->B":   100.0 / 3,
		"A->R1":  200.0 / 3,
		"R1->R4": 200.0 / 3,
		"R4->C":  200.0 / 3,
		"B->R2":  200.0 / 3,
		"R2->C":  200.0 / 3,
		"B->R3":  200.0 / 3,
		"R3->C":  200.0 / 3,
	}
	got := map[string]float64{}
	for id, v := range loads {
		if v < 1e-9 {
			continue
		}
		l := tp.Link(id)
		got[tp.Name(l.From)+"->"+tp.Name(l.To)] = v
	}
	if len(got) != len(want) {
		t.Fatalf("loads = %v, want %v", got, want)
	}
	for k, v := range want {
		if math.Abs(got[k]-v) > 1e-6 {
			t.Fatalf("load %s = %v, want %v", k, got[k], v)
		}
	}
	// The paper's headline: max load drops from 200 to 66.7 while the
	// same total traffic is delivered.
	max := 0.0
	for _, v := range got {
		if v > max {
			max = v
		}
	}
	if math.Abs(max-200.0/3) > 1e-6 {
		t.Fatalf("max load = %v, want 66.7", max)
	}
}

// TestMinMaxFig1Optimal verifies the LP recovers the paper's optimal
// solution: max link load 66.7 relative units, with A splitting 1/3 : 2/3
// and B splitting evenly — exactly Figure 1d.
func TestMinMaxFig1Optimal(t *testing.T) {
	tp, demands := fig1Stress()
	res, err := SolveMinMax(tp, demands)
	if err != nil {
		t.Fatal(err)
	}
	// θ* = (2/3 · 16 Mbit/s... ) demands 8+8 = 16 Mbit/s over three
	// C-facing links of 16 Mbit/s: optimal max load 16/3 Mbit/s each =
	// utilisation 1/3.
	if math.Abs(res.MaxUtilisation-1.0/3) > 1e-6 {
		t.Fatalf("θ* = %v, want 1/3", res.MaxUtilisation)
	}
	splits := res.Splits[topo.Fig1BluePrefixName]
	a, b := tp.MustNode("A"), tp.MustNode("B")
	r1, r2, r3 := tp.MustNode("R1"), tp.MustNode("R2"), tp.MustNode("R3")
	if sa := splits[a]; math.Abs(sa[r1]-2.0/3) > 1e-6 || math.Abs(sa[tp.MustNode("B")]-1.0/3) > 1e-6 {
		t.Fatalf("A splits = %v, want 1/3 B, 2/3 R1", sa)
	}
	if sb := splits[b]; math.Abs(sb[r2]-0.5) > 1e-6 || math.Abs(sb[r3]-0.5) > 1e-6 {
		t.Fatalf("B splits = %v, want even", sb)
	}
}

// TestFibbingRealisesOptimum is the §2 claim: the full pipeline
// LP -> quantised splits -> lies achieves the LP optimum on Figure 1
// (the ratios 1/3:2/3 and 1/2:1/2 quantise exactly).
func TestFibbingRealisesOptimum(t *testing.T) {
	tp, demands := fig1Stress()
	fb, err := RealizeMinMax(tp, demands, 16)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fb.Realised-fb.Optimal) > 1e-6 {
		t.Fatalf("realised %v != optimal %v", fb.Realised, fb.Optimal)
	}
	if fb.Lies == 0 {
		t.Fatalf("no lies computed")
	}
}

// TestWeightOptWorseThanFibbing is the paper's argument against weight
// optimisation: even the best even-split ECMP weights cannot reach the
// fractional optimum (B must carry 4/3 of one source's volume evenly: best
// even split leaves max utilisation 3/8 > 1/3), and they require multiple
// per-device weight changes.
func TestWeightOptWorseThanFibbing(t *testing.T) {
	tp, demands := fig1Stress()
	igpUtil, err := ECMPOnlyUtilisation(tp, demands)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(igpUtil-1.0) > 1e-9 {
		t.Fatalf("pre-reaction utilisation = %v, want 1.0", igpUtil)
	}
	w, err := OptimizeWeights(tp, demands, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	if w.MaxUtilisation >= igpUtil {
		t.Fatalf("weight optimisation did not improve: %v >= %v", w.MaxUtilisation, igpUtil)
	}
	if w.MaxUtilisation < 1.0/3-1e-9 {
		t.Fatalf("weight optimisation beat the LP optimum: %v", w.MaxUtilisation)
	}
	if w.WeightChanges == 0 {
		t.Fatalf("improvement without weight changes?")
	}
	if w.Evaluations == 0 {
		t.Fatalf("no evaluations recorded")
	}
}

func TestOptimizeWeightsValidation(t *testing.T) {
	tp, demands := fig1Stress()
	if _, err := OptimizeWeights(tp, demands, 1, 1); err == nil {
		t.Fatalf("maxWeight 1 accepted")
	}
	// Input topology must not be mutated.
	before := tp.String()
	if _, err := OptimizeWeights(tp, demands, 10, 1); err != nil {
		t.Fatal(err)
	}
	if tp.String() != before {
		t.Fatalf("OptimizeWeights mutated its input")
	}
}

func TestPlaceTunnelsSpreads(t *testing.T) {
	tp := topo.Fig1(topo.Fig1Opts{})
	demands := []topo.Demand{
		{Ingress: tp.MustNode("B"), PrefixName: topo.Fig1BluePrefixName, Volume: 10.1e6},
		{Ingress: tp.MustNode("A"), PrefixName: topo.Fig1BluePrefixName, Volume: 10e6},
	}
	res, err := PlaceTunnels(tp, demands)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Unplaced) != 0 {
		t.Fatalf("unplaced demands: %v", res.Unplaced)
	}
	if len(res.Tunnels) < 2 {
		t.Fatalf("tunnels = %d", len(res.Tunnels))
	}
	// B's larger demand takes B-R2-C; A's cannot fit there and must
	// detour via R1-R4.
	if res.MaxUtilisation > 1.0 {
		t.Fatalf("RSVP overloaded a link: %v", res.MaxUtilisation)
	}
	if res.SignalingMessages == 0 || res.StateEntries == 0 {
		t.Fatalf("overhead counters empty: %+v", res)
	}
	if res.EncapBytesPerPacket != 4 {
		t.Fatalf("MPLS encap = %d", res.EncapBytesPerPacket)
	}
}

func TestPlaceTunnelsSplitsWhenNoSinglePathFits(t *testing.T) {
	tp := topo.Fig1(topo.Fig1Opts{})
	// 20 Mbit/s cannot fit any single 16 Mbit/s path: must split.
	demands := []topo.Demand{
		{Ingress: tp.MustNode("A"), PrefixName: topo.Fig1BluePrefixName, Volume: 20e6},
	}
	res, err := PlaceTunnels(tp, demands)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Unplaced) != 0 {
		t.Fatalf("unplaced: %v", res.Unplaced)
	}
	if len(res.Tunnels) < 2 {
		t.Fatalf("demand was not split: %d tunnels", len(res.Tunnels))
	}
	var total float64
	for _, tun := range res.Tunnels {
		total += tun.Bandwidth
	}
	if math.Abs(total-20e6) > 1 {
		t.Fatalf("split tunnels carry %v, want 20e6", total)
	}
}

func TestPlaceTunnelsLocalDemandFree(t *testing.T) {
	tp := topo.Fig1(topo.Fig1Opts{})
	demands := []topo.Demand{
		{Ingress: tp.MustNode("C"), PrefixName: topo.Fig1BluePrefixName, Volume: 5e6},
	}
	res, err := PlaceTunnels(tp, demands)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tunnels) != 0 {
		t.Fatalf("local demand created tunnels: %+v", res.Tunnels)
	}
}

func TestCompareOverheads(t *testing.T) {
	tp, demands := fig1Stress()
	cmp, err := CompareOverheads(tp, demands, 16)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.FibbingLies == 0 || cmp.FibbingLSABytes == 0 {
		t.Fatalf("fibbing overhead empty: %+v", cmp)
	}
	if cmp.Tunnels == 0 || cmp.SignalingMessages == 0 {
		t.Fatalf("rsvp overhead empty: %+v", cmp)
	}
	if cmp.FibbingEncapBytes != 0 {
		t.Fatalf("fibbing must not encapsulate")
	}
	if cmp.TunnelEncapBytes == 0 {
		t.Fatalf("rsvp-te must encapsulate")
	}
	if math.Abs(cmp.FibbingRealised-cmp.FibbingOptimal) > 1e-6 {
		t.Fatalf("fibbing missed the optimum on Fig1: %+v", cmp)
	}
}

func TestMinMaxRejectsUnknownPrefix(t *testing.T) {
	tp := topo.Fig1(topo.Fig1Opts{})
	_, err := SolveMinMax(tp, []topo.Demand{{Ingress: tp.MustNode("A"), PrefixName: "nope", Volume: 1}})
	if err == nil {
		t.Fatalf("unknown prefix accepted")
	}
}

func TestMinMaxOnRandomTopologies(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		tp := topo.RandomConnected(topo.RandomOpts{
			Nodes: 12, Degree: 3, MaxWeight: 5, Prefixes: 2, Capacity: 10e6, Seed: seed,
		})
		demands := topo.RandomDemands(tp, 6, 1e6, 3e6, seed)
		res, err := SolveMinMax(tp, demands)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Optimality sanity: the LP must never exceed the plain-IGP
		// utilisation.
		igp, err := ECMPOnlyUtilisation(tp, demands)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.MaxUtilisation > igp+1e-6 {
			t.Fatalf("seed %d: LP %v worse than IGP %v", seed, res.MaxUtilisation, igp)
		}
		// Flow conservation: per prefix, flow out of each ingress is at
		// least its demand share... verified indirectly: splits are
		// valid distributions.
		for _, splits := range res.Splits {
			for u, s := range splits {
				sum := 0.0
				for _, f := range s {
					if f < -1e-9 || f > 1+1e-9 {
						t.Fatalf("seed %d: split fraction out of range at %d: %v", seed, u, s)
					}
					sum += f
				}
				if math.Abs(sum-1) > 1e-6 {
					t.Fatalf("seed %d: splits at %d sum to %v", seed, u, sum)
				}
			}
		}
	}
}

func TestFortzThorupCostShape(t *testing.T) {
	// Monotone increasing and convex on sample points.
	xs := []float64{0, 0.2, 0.4, 0.6, 0.8, 0.95, 1.05, 1.2}
	prev := -1.0
	for _, x := range xs {
		c := FortzThorupCost(x)
		if c <= prev {
			t.Fatalf("cost not increasing at %v", x)
		}
		prev = c
	}
	if FortzThorupCost(1.2) < 100 {
		t.Fatalf("overload not heavily penalised")
	}
}

func BenchmarkTESolvers(b *testing.B) {
	tp, demands := fig1Stress()
	b.Run("lp-minmax", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := SolveMinMax(tp, demands); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("weight-local-search", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := OptimizeWeights(tp, demands, 10, 2); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("rsvp-cspf", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := PlaceTunnels(tp, demands); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("fibbing-realize", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := RealizeMinMax(tp, demands, 16); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkMinMaxRandom(b *testing.B) {
	tp := topo.RandomConnected(topo.RandomOpts{
		Nodes: 20, Degree: 3, MaxWeight: 5, Prefixes: 3, Capacity: 10e6, Seed: 7,
	})
	demands := topo.RandomDemands(tp, 10, 1e6, 3e6, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveMinMax(tp, demands); err != nil {
			b.Fatal(err)
		}
	}
}
